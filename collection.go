package crowdfill

import (
	"errors"
	"fmt"
	"net/http"
	gosync "sync"
	"sync/atomic"

	"crowdfill/internal/client"
	"crowdfill/internal/model"
	"crowdfill/internal/server"
	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
)

// Collection is one live data-collection run: the back-end server (master
// table, Central Client, trace, estimator) plus its network surface. Workers
// join over WebSocket (Handler) or in-process (Connect).
type Collection struct {
	ns      *server.NetServer
	schema  *model.Schema
	nextID  int64
	mu      gosync.Mutex
	workers []*Worker
}

// NewCollection validates the spec and starts a collection (the candidate
// table is seeded from the constraint template immediately).
func NewCollection(s Spec) (*Collection, error) {
	cfg, err := s.Build()
	if err != nil {
		return nil, err
	}
	core, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Collection{ns: server.NewNetServer(core, nil), schema: cfg.Schema}, nil
}

// Handler returns the WebSocket endpoint workers connect to
// (ws://…/?worker=<id>).
func (c *Collection) Handler() http.Handler { return c.ns.Handler() }

// ListenAndServe serves the WebSocket endpoint on addr (blocking).
func (c *Collection) ListenAndServe(addr string) error { return c.ns.ListenAndServe(addr) }

// Done reports whether enough data has been collected (the final table
// satisfies the constraint).
func (c *Collection) Done() bool { return c.ns.Done() }

// Columns returns the schema's column names.
func (c *Collection) Columns() []string {
	out := make([]string, c.schema.NumColumns())
	for i, col := range c.schema.Columns {
		out[i] = col.Name
	}
	return out
}

// Result returns the current final table as rows of column values.
func (c *Collection) Result() [][]string {
	var rows [][]string
	c.ns.WithCore(func(core *server.Core) {
		for _, r := range core.FinalTable() {
			row := make([]string, len(r.Vec))
			for i, cell := range r.Vec {
				if cell.Set {
					row[i] = cell.Val
				}
			}
			rows = append(rows, row)
		}
	})
	return rows
}

// Status summarizes collection progress.
type Status struct {
	Done          bool
	FinalRows     int
	CandidateRows int
	Clients       int
	Messages      int
}

// Status returns a snapshot of collection progress.
func (c *Collection) Status() Status {
	var st Status
	c.ns.WithCore(func(core *server.Core) {
		st = Status{
			Done:          core.Done(),
			FinalRows:     len(core.FinalTable()),
			CandidateRows: core.Master().Table().Len(),
			Clients:       core.Clients(),
			Messages:      len(core.Trace()),
		}
	})
	return st
}

// ComputePay runs the compensation calculation (§5.2) over the run so far
// and returns per-worker amounts.
func (c *Collection) ComputePay() (map[string]float64, error) {
	var out map[string]float64
	var err error
	c.ns.WithCore(func(core *server.Core) {
		alloc, aerr := core.ComputePay()
		if aerr != nil {
			err = aerr
			return
		}
		out = alloc.PerWorker
	})
	return out, err
}

// Close shuts down every in-process worker connection and the server's
// broadcast plane (its log dispatcher and any remaining connection writers).
func (c *Collection) Close() {
	// Detach the worker list under the lock, then tear down outside it:
	// runner.Close and Shutdown both block on connection writers, and
	// Shutdown takes the broadcast plane's locks.
	c.mu.Lock()
	workers := c.workers
	c.workers = nil
	c.mu.Unlock()
	for _, w := range workers {
		w.runner.Close()
	}
	c.ns.Shutdown()
}

// Connect joins an in-process worker to the collection and returns its
// action handle.
func (c *Collection) Connect(workerID string) (*Worker, error) {
	if workerID == "" {
		return nil, errors.New("crowdfill: worker id required")
	}
	cl, err := client.New(client.Config{
		ID:     fmt.Sprintf("%s#%d", workerID, atomic.AddInt64(&c.nextID, 1)),
		Worker: workerID,
		Schema: c.schema,
	})
	if err != nil {
		return nil, err
	}
	serverSide, clientSide := transport.Pipe(1024)
	go c.ns.ServeConn(serverSide, workerID)
	w := &Worker{
		id:     workerID,
		schema: c.schema,
		runner: client.NewRunner(cl, clientSide),
	}
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	return w, nil
}

// Row is a worker-visible candidate-table row.
type Row struct {
	ID string
	// Cells holds one value per column; empty cells are "".
	Cells []string
	// Up and Down are the row's vote counts.
	Up, Down int
	// Complete reports whether every cell is filled.
	Complete bool
}

// Worker is an in-process worker connection: the worker-client runtime plus
// its link to the collection.
type Worker struct {
	id     string
	schema *model.Schema
	runner *client.Runner
}

// ID returns the worker identity.
func (w *Worker) ID() string { return w.id }

// Done reports whether the server declared the collection finished.
func (w *Worker) Done() bool { return w.runner.Done() }

// Close disconnects the worker.
func (w *Worker) Close() error { return w.runner.Close() }

// Epoch returns the worker's replica change epoch. Read the epoch before
// inspecting Rows; if the inspection did not find what it wanted, pass the
// epoch to WaitChange to sleep until the next server batch lands.
func (w *Worker) Epoch() uint64 { return w.runner.Epoch() }

// WaitChange blocks until the replica has changed since epoch (or the link
// closed) and returns the current epoch. Epoch/WaitChange replace polling
// loops over Rows: the read-epoch-then-scan-then-wait pattern has no missed
// wakeups because the epoch is bumped after every applied batch.
func (w *Worker) WaitChange(epoch uint64) uint64 { return w.runner.WaitChange(epoch) }

// Rows returns the worker's current view of the candidate table, sorted by
// row id.
func (w *Worker) Rows() []Row {
	var out []Row
	w.runner.View(func(c *client.Client) {
		for _, r := range c.Rows(nil) {
			row := Row{
				ID:       string(r.ID),
				Cells:    make([]string, len(r.Vec)),
				Up:       r.Up,
				Down:     r.Down,
				Complete: r.Vec.IsComplete(),
			}
			for i, cell := range r.Vec {
				if cell.Set {
					row.Cells[i] = cell.Val
				}
			}
			out = append(out, row)
		}
	})
	return out
}

// Estimates returns the latest per-action compensation estimates the server
// broadcast: one value per column (for fills) plus upvote/downvote values.
// Nil before the first broadcast.
func (w *Worker) Estimates() (perColumn []float64, upvote, downvote float64, ok bool) {
	w.runner.View(func(c *client.Client) {
		if est := c.Estimates(); est != nil {
			perColumn = append([]float64(nil), est.PerColumn...)
			upvote, downvote, ok = est.Upvote, est.Downvote, true
		}
	})
	return perColumn, upvote, downvote, ok
}

// Fill fills the named column of a row with a value (validated against the
// schema). Completing a row automatically upvotes it (§3.4).
func (w *Worker) Fill(rowID, column, value string) error {
	return w.runner.Do(func(c *client.Client) ([]sync.Message, error) {
		return c.FillByName(model.RowID(rowID), column, value)
	})
}

// Upvote endorses a complete row.
func (w *Worker) Upvote(rowID string) error {
	return w.runner.Do(func(c *client.Client) ([]sync.Message, error) {
		m, err := c.Upvote(model.RowID(rowID))
		if err != nil {
			return nil, err
		}
		return []sync.Message{m}, nil
	})
}

// Downvote refutes a partial or complete row.
func (w *Worker) Downvote(rowID string) error {
	return w.runner.Do(func(c *client.Client) ([]sync.Message, error) {
		m, err := c.Downvote(model.RowID(rowID))
		if err != nil {
			return nil, err
		}
		return []sync.Message{m}, nil
	})
}
