module crowdfill

go 1.22
