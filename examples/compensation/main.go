// Compensation: reproduce the paper's §6 compensation analysis on one
// representative run — per-worker pay under dual-weighted allocation, the
// accuracy of the estimates workers saw during collection (Figure 5), the
// dual-vs-uniform comparison, and the earning-rate curves (Figure 6).
//
// Run with: go run ./examples/compensation [seed]
package main

import (
	"fmt"
	"log"
	"os"
	"strconv"

	"crowdfill"
)

func main() {
	seed := int64(crowdfill.PaperSeed)
	if len(os.Args) > 1 {
		var err error
		seed, err = strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			log.Fatalf("bad seed %q: %v", os.Args[1], err)
		}
	}
	res, err := crowdfill.SimulatePaper(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("run:", crowdfill.ResultSummary(res))
	fmt.Println()
	fmt.Println(crowdfill.ReportWorkerCompensation(res))
	fmt.Println(crowdfill.ReportEstimationAccuracy(res))

	cmp, err := crowdfill.ReportSchemeComparison(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(cmp)

	curves, err := crowdfill.ReportEarningRates(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(curves)
}
