// Quickstart: collect a tiny key/value table with two in-process workers.
//
// The collection is configured with a cardinality constraint (2 rows) and
// the paper's majority-of-3 scoring: a row enters the final table once it is
// complete and has net-positive votes from at least two votes. Alice fills
// the table; Bob verifies her entries by upvoting them; the server detects
// completion and both workers are paid from the $4 budget.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"crowdfill"
)

func main() {
	coll, err := crowdfill.NewCollection(crowdfill.Spec{
		Name:        "Capital",
		Columns:     []crowdfill.Column{{Name: "country"}, {Name: "capital"}},
		Key:         []string{"country"},
		Scoring:     crowdfill.Scoring{Kind: "majority", K: 3},
		Cardinality: 2,
		Budget:      4,
		Scheme:      "uniform",
	})
	if err != nil {
		log.Fatal(err)
	}
	defer coll.Close()

	alice, err := coll.Connect("alice")
	if err != nil {
		log.Fatal(err)
	}
	bob, err := coll.Connect("bob")
	if err != nil {
		log.Fatal(err)
	}

	// Alice fills both rows. The Central Client seeded two empty rows from
	// the cardinality constraint; completing a row auto-upvotes it.
	facts := map[string]string{"France": "Paris", "Japan": "Tokyo"}
	for country, capital := range facts {
		rowID := waitForRow(alice, func(r crowdfill.Row) bool { return r.Cells[0] == "" })
		must(alice.Fill(rowID, "country", country))
		rowID = waitForRow(alice, func(r crowdfill.Row) bool {
			return r.Cells[0] == country && r.Cells[1] == ""
		})
		must(alice.Fill(rowID, "capital", capital))
	}

	// Bob endorses every complete row he hasn't voted on; the third vote
	// (auto-upvote + Bob's) makes each row final.
	for country := range facts {
		rowID := waitForRow(bob, func(r crowdfill.Row) bool {
			return r.Complete && r.Cells[0] == country
		})
		must(bob.Upvote(rowID))
	}

	for !coll.Done() {
		time.Sleep(time.Millisecond)
	}
	fmt.Println("columns:", coll.Columns())
	for _, row := range coll.Result() {
		fmt.Println("row:", row)
	}
	pay, err := coll.ComputePay()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pay: alice=$%.2f bob=$%.2f\n", pay["alice"], pay["bob"])
}

// waitForRow polls the worker's table view until a row matches.
func waitForRow(w *crowdfill.Worker, match func(crowdfill.Row) bool) string {
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); {
		for _, r := range w.Rows() {
			if match(r) {
				return r.ID
			}
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("row never appeared")
	return ""
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
