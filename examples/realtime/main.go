// Realtime: a live CrowdFill deployment in miniature — the back-end server
// listens on a real TCP port, and three worker processes (goroutines here)
// connect over genuine WebSockets, collaborating on the same evolving table
// exactly as browser clients would in the paper's §3 architecture.
//
// Run with: go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"crowdfill"
)

func main() {
	spec := crowdfill.Spec{
		Name:        "Landmark",
		Columns:     []crowdfill.Column{{Name: "landmark"}, {Name: "city"}},
		Key:         []string{"landmark"},
		Scoring:     crowdfill.Scoring{Kind: "majority", K: 3},
		Cardinality: 3,
		Budget:      6,
		Scheme:      "column-weighted",
	}
	coll, err := crowdfill.NewCollection(spec)
	if err != nil {
		log.Fatal(err)
	}

	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() { _ = http.Serve(lis, coll.Handler()) }()
	url := "ws://" + lis.Addr().String()
	fmt.Println("back-end server listening on", url)

	facts := map[string]string{
		"Eiffel Tower": "Paris",
		"Big Ben":      "London",
		"Colosseum":    "Rome",
	}

	var wg sync.WaitGroup
	// Two fillers split the entities; one verifier upvotes everything right.
	wg.Add(3)
	go filler(&wg, url, "filler-1", spec, facts, []string{"Eiffel Tower", "Big Ben"})
	go filler(&wg, url, "filler-2", spec, facts, []string{"Colosseum"})
	go verifier(&wg, url, "verifier", spec, facts)
	wg.Wait()

	fmt.Println("columns:", coll.Columns())
	for _, row := range coll.Result() {
		fmt.Println("row:", row)
	}
	pay, err := coll.ComputePay()
	if err != nil {
		log.Fatal(err)
	}
	for worker, amount := range pay {
		fmt.Printf("pay: %-10s $%.2f\n", worker, amount)
	}
}

func filler(wg *sync.WaitGroup, url, name string, spec crowdfill.Spec, facts map[string]string, mine []string) {
	defer wg.Done()
	w, err := crowdfill.ConnectWS(url, name, spec)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	for _, landmark := range mine {
		waitRow(w, func(r crowdfill.Row) bool { return r.Cells[0] == "" && r.Cells[1] == "" },
			func(id string) error { return w.Fill(id, "landmark", landmark) })
		waitRow(w, func(r crowdfill.Row) bool { return r.Cells[0] == landmark && r.Cells[1] == "" },
			func(id string) error { return w.Fill(id, "city", facts[landmark]) })
	}
	for !w.Done() {
		time.Sleep(time.Millisecond)
	}
}

func verifier(wg *sync.WaitGroup, url, name string, spec crowdfill.Spec, facts map[string]string) {
	defer wg.Done()
	w, err := crowdfill.ConnectWS(url, name, spec)
	if err != nil {
		log.Fatal(err)
	}
	defer w.Close()
	endorsed := map[string]bool{}
	for !w.Done() {
		for _, r := range w.Rows() {
			if !r.Complete || endorsed[r.Cells[0]] {
				continue
			}
			if facts[r.Cells[0]] == r.Cells[1] {
				if err := w.Upvote(r.ID); err == nil {
					endorsed[r.Cells[0]] = true
				}
			} else if err := w.Downvote(r.ID); err == nil {
				endorsed[r.Cells[0]] = true
			}
		}
		time.Sleep(time.Millisecond)
	}
}

// waitRow retries act on the first row matching cond until it succeeds
// (rows churn while other workers race on the same table).
func waitRow(w *crowdfill.Worker, cond func(crowdfill.Row) bool, act func(string) error) {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, r := range w.Rows() {
			if cond(r) {
				if err := act(r.ID); err == nil {
					return
				} else if strings.Contains(err.Error(), "finished") {
					return
				}
			}
		}
		time.Sleep(time.Millisecond)
	}
	log.Fatal("timed out waiting for a row")
}
