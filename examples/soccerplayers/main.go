// Soccerplayers: the paper's running example end to end, with a simulated
// crowd.
//
// The table is SoccerPlayer(name, nationality, position, caps, goals, dob)
// with key (name, nationality) — §6's experimental schema. The constraint
// combines the §2.3 examples: a values template (one forward from any
// country, one player from Brazil, one from Spain) refined with the
// predicates extension: the forward and the Brazilian need ≥20 goals, and
// the Spaniard ≥85 caps (the paper's thresholds, scaled to the synthetic
// ground truth whose caps top out at 99), padded to 12 rows by a
// cardinality constraint. A five-worker simulated crowd
// collects the data; the run reports the final table and who earned what.
//
// Run with: go run ./examples/soccerplayers
package main

import (
	"fmt"
	"log"

	"crowdfill"
)

func main() {
	spec := crowdfill.Spec{
		Name: "SoccerPlayer",
		Columns: []crowdfill.Column{
			{Name: "name"},
			{Name: "nationality"},
			{Name: "position", Domain: []string{"GK", "DF", "MF", "FW"}},
			{Name: "caps", Type: "int"},
			{Name: "goals", Type: "int"},
			{Name: "dob", Type: "date"},
		},
		Key:     []string{"name", "nationality"},
		Scoring: crowdfill.Scoring{Kind: "majority", K: 3},
		// §2.3's predicates template: cells are "" (any), "=v"/bare value
		// (values constraint), or comparisons (predicates constraint).
		Template: [][]string{
			{"", "", "=FW", "", ">=20", ""},
			{"", "=Brazil", "", "", ">=20", ""},
			{"", "=Spain", "", ">=85", "", ""},
		},
		Cardinality: 12,
		Budget:      10,
		Scheme:      "dual-weighted",
	}

	res, err := crowdfill.Simulate(crowdfill.SimOptions{
		Spec:        spec,
		TruthRows:   220,
		SoccerTruth: true,
		Seed:        11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("run:", crowdfill.ResultSummary(res))
	fmt.Println()
	fmt.Println(crowdfill.ReportOverallEffectiveness(res))
	fmt.Println(crowdfill.ReportWorkerCompensation(res))

	fmt.Println("final table:")
	fmt.Println(crowdfill.RenderFinalTable(res))
}
