// Audit: the bookkeeping-trace workflow end to end. A simulated collection
// runs to completion, its trace (every worker action plus the Central
// Client's log, §3.3) is exported, and an offline replay rebuilds the final
// table and recomputes compensation — including what each worker would have
// earned under a different allocation scheme, and an itemized pay statement.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"
	"sort"

	"crowdfill"
)

func main() {
	res, err := crowdfill.SimulatePaper(crowdfill.PaperSeed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("live run:", crowdfill.ResultSummary(res))

	trace, err := crowdfill.ExportSimTrace(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported trace: %d bytes\n\n", len(trace))

	spec := crowdfill.Spec{
		Name: "SoccerPlayer",
		Columns: []crowdfill.Column{
			{Name: "name"}, {Name: "nationality"},
			{Name: "position", Domain: []string{"GK", "DF", "MF", "FW"}},
			{Name: "caps", Type: "int"}, {Name: "goals", Type: "int"},
			{Name: "dob", Type: "date"},
		},
		Key:         []string{"name", "nationality"},
		Scoring:     crowdfill.Scoring{Kind: "majority", K: 3},
		Cardinality: 20,
		Budget:      10,
		Scheme:      "dual-weighted",
	}

	// Replay under the original scheme, then reinterpret uniformly — the
	// §6 scheme comparison, performed entirely offline.
	for _, scheme := range []string{"", "uniform"} {
		audit, err := crowdfill.Audit(spec, trace, scheme)
		if err != nil {
			log.Fatal(err)
		}
		name := scheme
		if name == "" {
			name = "dual-weighted (original)"
		}
		fmt.Printf("audit under %s: %d messages, %d final rows\n",
			name, audit.Messages, audit.FinalRows)
		workers := make([]string, 0, len(audit.Pay))
		for w := range audit.Pay {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		for _, w := range workers {
			fmt.Printf("  %-10s $%.2f\n", w, audit.Pay[w])
		}
		fmt.Println()
	}

	// The itemized statement answers "why did worker5 earn that".
	audit, err := crowdfill.Audit(spec, trace, "")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(audit.Statements["worker5"])
}
