package crowdfill

import (
	"strings"
	"testing"
	"time"
)

func kvSpec() Spec {
	return Spec{
		Name:        "KV",
		Columns:     []Column{{Name: "k"}, {Name: "v"}},
		Key:         []string{"k"},
		Scoring:     Scoring{Kind: "majority", K: 3},
		Cardinality: 2,
		Budget:      4,
		Scheme:      "uniform",
	}
}

// waitFor polls cond for up to 10 seconds.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached in time")
}

// fillRow has a worker claim an empty row and complete it with key/value.
func fillRow(t *testing.T, w *Worker, key, val string) {
	t.Helper()
	waitFor(t, func() bool {
		for _, r := range w.Rows() {
			if r.Cells[0] == "" && r.Cells[1] == "" {
				if err := w.Fill(r.ID, "k", key); err == nil {
					return true
				}
			}
		}
		return false
	})
	waitFor(t, func() bool {
		for _, r := range w.Rows() {
			if r.Cells[0] == key && r.Cells[1] == "" {
				if err := w.Fill(r.ID, "v", val); err == nil {
					return true
				}
			}
		}
		return false
	})
}

func TestCollectionInProcess(t *testing.T) {
	coll, err := NewCollection(kvSpec())
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	defer coll.Close()
	if got := coll.Columns(); len(got) != 2 || got[0] != "k" {
		t.Fatalf("Columns = %v", got)
	}

	alice, err := coll.Connect("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := coll.Connect("bob")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(alice.Rows()) == 2 })

	fillRow(t, alice, "x", "1")
	fillRow(t, alice, "y", "2")

	// Bob upvotes both complete rows.
	for _, key := range []string{"x", "y"} {
		key := key
		waitFor(t, func() bool {
			for _, r := range bob.Rows() {
				if r.Complete && r.Cells[0] == key {
					if err := bob.Upvote(r.ID); err == nil {
						return true
					}
				}
			}
			return false
		})
	}
	waitFor(t, func() bool { return coll.Done() && alice.Done() && bob.Done() })

	st := coll.Status()
	if !st.Done || st.FinalRows != 2 {
		t.Fatalf("Status = %+v", st)
	}
	rows := coll.Result()
	if len(rows) != 2 {
		t.Fatalf("Result = %v", rows)
	}
	pay, err := coll.ComputePay()
	if err != nil {
		t.Fatalf("ComputePay: %v", err)
	}
	if pay["alice"] <= 0 || pay["bob"] <= 0 {
		t.Fatalf("pay = %v", pay)
	}
	total := pay["alice"] + pay["bob"]
	if total > 4.0001 {
		t.Fatalf("total pay %v exceeds budget", total)
	}
	// Estimates were broadcast.
	if _, _, _, ok := alice.Estimates(); !ok {
		t.Fatalf("alice never received estimates")
	}
}

func TestCollectionValidatesSpec(t *testing.T) {
	bad := kvSpec()
	bad.Columns = nil
	if _, err := NewCollection(bad); err == nil {
		t.Fatalf("invalid spec should fail")
	}
}

func TestConnectValidatesWorker(t *testing.T) {
	coll, err := NewCollection(kvSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	if _, err := coll.Connect(""); err == nil {
		t.Fatalf("empty worker id should fail")
	}
}

func TestWorkerDownvote(t *testing.T) {
	coll, err := NewCollection(kvSpec())
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	alice, _ := coll.Connect("alice")
	bob, _ := coll.Connect("bob")
	waitFor(t, func() bool { return len(alice.Rows()) == 2 })
	fillRow(t, alice, "junk", "0")
	waitFor(t, func() bool {
		for _, r := range bob.Rows() {
			if r.Complete && r.Cells[0] == "junk" {
				if err := bob.Downvote(r.ID); err == nil {
					return true
				}
			}
		}
		return false
	})
	waitFor(t, func() bool {
		for _, r := range alice.Rows() {
			if r.Cells[0] == "junk" && r.Down >= 1 {
				return true
			}
		}
		return false
	})
}

func TestSimulatePaper(t *testing.T) {
	res, err := SimulatePaper(1)
	if err != nil {
		t.Fatalf("SimulatePaper: %v", err)
	}
	if !res.Done || res.FinalRows != 20 {
		t.Fatalf("paper sim = %s", ResultSummary(res))
	}
	if s := ResultSummary(res); !strings.Contains(s, "rows=20") {
		t.Fatalf("summary = %q", s)
	}
}

func TestSimulateCustomSpec(t *testing.T) {
	res, err := Simulate(SimOptions{
		Spec: Spec{
			Name:        "Gadget",
			Columns:     []Column{{Name: "id"}, {Name: "kind", Domain: []string{"a", "b"}}},
			Key:         []string{"id"},
			Scoring:     Scoring{Kind: "majority", K: 3},
			Cardinality: 5,
			Budget:      5,
			Scheme:      "column-weighted",
		},
		TruthRows: 60,
		Seed:      3,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if !res.Done {
		t.Fatalf("custom sim did not converge: %s", ResultSummary(res))
	}
	if res.FinalRows < 5 {
		t.Fatalf("final rows = %d", res.FinalRows)
	}
}

func TestSchemeName(t *testing.T) {
	if got, err := SchemeName("dual"); err != nil || got != "dual-weighted" {
		t.Fatalf("SchemeName = %q, %v", got, err)
	}
	if _, err := SchemeName("lottery"); err == nil {
		t.Fatalf("bad scheme should fail")
	}
}
