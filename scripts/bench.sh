#!/bin/sh
# Runs the hot-path and experiment benchmarks and writes the scaling
# acceptance metrics: BENCH_fanout.json (end-to-end server fan-out),
# BENCH_e2e.json (ingest→deliver latency percentiles and allocations over
# real loopback WebSockets), BENCH_broadcast.json (per-message
# handle+publish cost on the broadcast log, with allocations),
# BENCH_planner.json (PRI repair cost per message, full-rebuild spec vs
# delta-driven incremental, across probable-set and template sizes), and
# BENCH_conns.json (connection-scale envelope: goroutines/conn, bytes/conn,
# and publish p50/p99 with 1k-10k mostly-idle connections attached), and
# BENCH_metrics.json (observability overhead: the same e2e latency benchmark
# with the metrics plane disabled vs enabled, one process per arm because
# CROWDFILL_METRICS is read once at process start).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_fanout.json
EOUT=BENCH_e2e.json
BOUT=BENCH_broadcast.json
POUT=BENCH_planner.json
COUT=BENCH_conns.json
MOUT=BENCH_metrics.json
RAW=$(mktemp)
ERAW=$(mktemp)
BRAW=$(mktemp)
PRAW=$(mktemp)
CRAW=$(mktemp)
MRAWOFF=$(mktemp)
MRAWON=$(mktemp)
trap 'rm -f "$RAW" "$ERAW" "$BRAW" "$PRAW" "$CRAW" "$MRAWOFF" "$MRAWON"' EXIT

echo "== server fan-out =="
go test -run '^$' -bench 'BenchmarkAblationServerFanout' -benchmem -benchtime "${FANOUT_BENCHTIME:-10x}" . | tee "$RAW"

echo "== end-to-end fan-out latency (loopback WebSockets) =="
# count>1 + per-metric minimum below: tail latency on a shared box swings 2x
# run to run from scheduler and GC warmup, so the committed artifact records
# the noise floor — the number a code regression actually moves.
go test -run '^$' -bench 'BenchmarkFanoutLatency' -benchmem -benchtime "${E2E_BENCHTIME:-500x}" -count "${E2E_COUNT:-3}" . | tee "$ERAW"

echo "== metrics overhead (CROWDFILL_METRICS off vs on) =="
# One client count is enough to price the instrumentation; the off arm must
# be a separate process because ProcessMetrics latches the env var once.
CROWDFILL_METRICS=off go test -run '^$' -bench 'BenchmarkFanoutLatency/clients=8' -benchmem -benchtime "${METRICS_BENCHTIME:-500x}" -count "${METRICS_COUNT:-3}" . | tee "$MRAWOFF"
CROWDFILL_METRICS=on go test -run '^$' -bench 'BenchmarkFanoutLatency/clients=8' -benchmem -benchtime "${METRICS_BENCHTIME:-500x}" -count "${METRICS_COUNT:-3}" . | tee "$MRAWON"

echo "== broadcast handle+publish =="
go test -run '^$' -bench 'BenchmarkBroadcastHandlePublish' -benchmem -benchtime "${BROADCAST_BENCHTIME:-10000x}" ./internal/server/ | tee "$BRAW"

echo "== probable rows =="
go test -run '^$' -bench 'BenchmarkProbable' -benchtime "${PROBABLE_BENCHTIME:-20x}" ./internal/constraint/

echo "== planner repair (full vs incremental) =="
go test -run '^$' -bench 'BenchmarkPlannerRepair' -benchmem -benchtime "${PLANNER_BENCHTIME:-200x}" ./internal/constraint/ | tee "$PRAW"

echo "== connection scale (idle herd + 1% publishers) =="
go test -run '^$' -bench 'BenchmarkConnScale' -benchtime "${CONNS_BENCHTIME:-10x}" -timeout 30m . | tee "$CRAW"

echo "== experiments E1-E6 =="
go test -run '^$' -bench 'BenchmarkE[1-6]' -benchtime 1x .

# go test -benchmem rows interleave values with their units (and benchmarks
# may report extra custom metrics, shifting columns), so pick each value by
# the unit that follows it rather than by position.
extract() {
    awk -v bench="$2" '
$1 ~ "^" bench "/" {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    ns = allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"clients\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s}", parts[2], ns, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$1"
}

extract "$RAW" BenchmarkAblationServerFanout > "$OUT"
echo "wrote $OUT"

# The e2e latency benchmark reports the latency distribution as custom
# p50/p95/p99 metrics alongside the standard ns/op and allocs/op columns;
# pick every value by the unit following it, keeping the minimum across the
# -count repetitions per client count (allocs/op is deterministic, so the
# minimum is just its value).
awk '
$1 ~ "^BenchmarkFanoutLatency/" {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    c = parts[2]
    ns = allocs = p50 = p95 = p99 = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "p50-ns") p50 = $i
        if ($(i+1) == "p95-ns") p95 = $i
        if ($(i+1) == "p99-ns") p99 = $i
    }
    if (!(c in seen)) {
        seen[c] = 1; ord[n++] = c
        mns[c] = ns; mal[c] = allocs; m50[c] = p50; m95[c] = p95; m99[c] = p99
        next
    }
    if (ns != "" && ns + 0 < mns[c] + 0) mns[c] = ns
    if (allocs != "" && allocs + 0 < mal[c] + 0) mal[c] = allocs
    if (p50 != "" && p50 + 0 < m50[c] + 0) m50[c] = p50
    if (p95 != "" && p95 + 0 < m95[c] + 0) m95[c] = p95
    if (p99 != "" && p99 + 0 < m99[c] + 0) m99[c] = p99
}
function val(v) { return v == "" ? "null" : v }
END {
    printf "[\n"
    for (i = 0; i < n; i++) {
        c = ord[i]
        printf "  {\"clients\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s, \"p50_ns\": %s, \"p95_ns\": %s, \"p99_ns\": %s}%s\n", c, val(mns[c]), val(mal[c]), val(m50[c]), val(m95[c]), val(m99[c]), i + 1 < n ? "," : ""
    }
    printf "]\n"
}
' "$ERAW" > "$EOUT"
echo "wrote $EOUT"

extract "$BRAW" BenchmarkBroadcastHandlePublish > "$BOUT"
echo "wrote $BOUT"

# Planner sub-benchmarks carry three name parameters
# (mode=<full|incr>/rows=<n>/tmpl=<n>); parse them individually.
awk '
$1 ~ "^BenchmarkPlannerRepair/" {
    split($1, segs, "/")
    split(segs[2], m, "=")
    split(segs[3], r, "=")
    split(segs[4], tp, "=")
    sub(/-.*/, "", tp[2])
    ns = allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"mode\": \"%s\", \"rows\": %s, \"tmpl\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s}", m[2], r[2], tp[2], ns, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$PRAW" > "$POUT"
echo "wrote $POUT"

# Connection-scale rows carry four custom metrics; a skipped run (fd limit
# too low) produces an empty array rather than a stale file.
awk '
$1 ~ "^BenchmarkConnScale/" {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    ns = gpc = bpc = p50 = p99 = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "goroutines/conn") gpc = $i
        if ($(i+1) == "bytes/conn") bpc = $i
        if ($(i+1) == "p50-ns") p50 = $i
        if ($(i+1) == "p99-ns") p99 = $i
    }
    if (n++) printf ",\n"
    printf "  {\"conns\": %s, \"ns_per_op\": %s, \"goroutines_per_conn\": %s, \"bytes_per_conn\": %s, \"p50_ns\": %s, \"p99_ns\": %s}", parts[2], ns, gpc, bpc, p50, p99
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$CRAW" > "$COUT"
echo "wrote $COUT"

# Metrics-overhead arms: same per-unit parsing and per-metric minimum across
# -count repetitions as the e2e artifact, one object per arm.
mextract() {
    awk -v arm="$2" '
$1 ~ "^BenchmarkFanoutLatency/" {
    ns = allocs = p50 = p95 = p99 = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "p50-ns") p50 = $i
        if ($(i+1) == "p95-ns") p95 = $i
        if ($(i+1) == "p99-ns") p99 = $i
    }
    if (!seen) {
        seen = 1
        mns = ns; mal = allocs; m50 = p50; m95 = p95; m99 = p99
        next
    }
    if (ns != "" && ns + 0 < mns + 0) mns = ns
    if (allocs != "" && allocs + 0 < mal + 0) mal = allocs
    if (p50 != "" && p50 + 0 < m50 + 0) m50 = p50
    if (p95 != "" && p95 + 0 < m95 + 0) m95 = p95
    if (p99 != "" && p99 + 0 < m99 + 0) m99 = p99
}
function val(v) { return v == "" ? "null" : v }
END {
    printf "  {\"metrics\": \"%s\", \"clients\": 8, \"ns_per_op\": %s, \"allocs_per_op\": %s, \"p50_ns\": %s, \"p95_ns\": %s, \"p99_ns\": %s}", arm, val(mns), val(mal), val(m50), val(m95), val(m99)
}
' "$1"
}
{
    printf "[\n"
    mextract "$MRAWOFF" off
    printf ",\n"
    mextract "$MRAWON" on
    printf "\n]\n"
} > "$MOUT"
echo "wrote $MOUT"
