#!/bin/sh
# Runs the hot-path and experiment benchmarks and writes BENCH_fanout.json
# with the server fan-out numbers (the scaling acceptance metric).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_fanout.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT

echo "== server fan-out =="
go test -run '^$' -bench 'BenchmarkAblationServerFanout' -benchtime "${FANOUT_BENCHTIME:-5x}" . | tee "$RAW"

echo "== probable rows =="
go test -run '^$' -bench 'BenchmarkProbable' -benchtime "${PROBABLE_BENCHTIME:-20x}" ./internal/constraint/

echo "== experiments E1-E6 =="
go test -run '^$' -bench 'BenchmarkE[1-6]' -benchtime 1x .

awk '
/^BenchmarkAblationServerFanout\// {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    if (n++) printf ",\n"
    printf "  {\"clients\": %s, \"ns_per_op\": %s}", parts[2], $3
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$RAW" > "$OUT"
echo "wrote $OUT"
