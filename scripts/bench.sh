#!/bin/sh
# Runs the hot-path and experiment benchmarks and writes the scaling
# acceptance metrics: BENCH_fanout.json (end-to-end server fan-out) and
# BENCH_broadcast.json (per-message handle+publish cost on the broadcast log,
# with allocations).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_fanout.json
BOUT=BENCH_broadcast.json
RAW=$(mktemp)
BRAW=$(mktemp)
trap 'rm -f "$RAW" "$BRAW"' EXIT

echo "== server fan-out =="
go test -run '^$' -bench 'BenchmarkAblationServerFanout' -benchmem -benchtime "${FANOUT_BENCHTIME:-10x}" . | tee "$RAW"

echo "== broadcast handle+publish =="
go test -run '^$' -bench 'BenchmarkBroadcastHandlePublish' -benchmem -benchtime "${BROADCAST_BENCHTIME:-10000x}" ./internal/server/ | tee "$BRAW"

echo "== probable rows =="
go test -run '^$' -bench 'BenchmarkProbable' -benchtime "${PROBABLE_BENCHTIME:-20x}" ./internal/constraint/

echo "== experiments E1-E6 =="
go test -run '^$' -bench 'BenchmarkE[1-6]' -benchtime 1x .

# go test -benchmem rows interleave values with their units (and benchmarks
# may report extra custom metrics, shifting columns), so pick each value by
# the unit that follows it rather than by position.
extract() {
    awk -v bench="$2" '
$1 ~ "^" bench "/" {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    ns = allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"clients\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s}", parts[2], ns, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$1"
}

extract "$RAW" BenchmarkAblationServerFanout > "$OUT"
echo "wrote $OUT"

extract "$BRAW" BenchmarkBroadcastHandlePublish > "$BOUT"
echo "wrote $BOUT"
