#!/bin/sh
# Runs the hot-path and experiment benchmarks and writes the scaling
# acceptance metrics: BENCH_fanout.json (end-to-end server fan-out),
# BENCH_e2e.json (ingest→deliver latency percentiles and allocations over
# real loopback WebSockets), BENCH_broadcast.json (per-message
# handle+publish cost on the broadcast log, with allocations), and
# BENCH_planner.json (PRI repair cost per message, full-rebuild spec vs
# delta-driven incremental, across probable-set and template sizes).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_fanout.json
EOUT=BENCH_e2e.json
BOUT=BENCH_broadcast.json
POUT=BENCH_planner.json
RAW=$(mktemp)
ERAW=$(mktemp)
BRAW=$(mktemp)
PRAW=$(mktemp)
trap 'rm -f "$RAW" "$ERAW" "$BRAW" "$PRAW"' EXIT

echo "== server fan-out =="
go test -run '^$' -bench 'BenchmarkAblationServerFanout' -benchmem -benchtime "${FANOUT_BENCHTIME:-10x}" . | tee "$RAW"

echo "== end-to-end fan-out latency (loopback WebSockets) =="
go test -run '^$' -bench 'BenchmarkFanoutLatency' -benchmem -benchtime "${E2E_BENCHTIME:-500x}" . | tee "$ERAW"

echo "== broadcast handle+publish =="
go test -run '^$' -bench 'BenchmarkBroadcastHandlePublish' -benchmem -benchtime "${BROADCAST_BENCHTIME:-10000x}" ./internal/server/ | tee "$BRAW"

echo "== probable rows =="
go test -run '^$' -bench 'BenchmarkProbable' -benchtime "${PROBABLE_BENCHTIME:-20x}" ./internal/constraint/

echo "== planner repair (full vs incremental) =="
go test -run '^$' -bench 'BenchmarkPlannerRepair' -benchmem -benchtime "${PLANNER_BENCHTIME:-200x}" ./internal/constraint/ | tee "$PRAW"

echo "== experiments E1-E6 =="
go test -run '^$' -bench 'BenchmarkE[1-6]' -benchtime 1x .

# go test -benchmem rows interleave values with their units (and benchmarks
# may report extra custom metrics, shifting columns), so pick each value by
# the unit that follows it rather than by position.
extract() {
    awk -v bench="$2" '
$1 ~ "^" bench "/" {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    ns = allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"clients\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s}", parts[2], ns, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$1"
}

extract "$RAW" BenchmarkAblationServerFanout > "$OUT"
echo "wrote $OUT"

# The e2e latency benchmark reports the latency distribution as custom
# p50/p95/p99 metrics alongside the standard ns/op and allocs/op columns;
# pick every value by the unit following it.
awk '
$1 ~ "^BenchmarkFanoutLatency/" {
    split($1, parts, "=")
    sub(/-.*/, "", parts[2])
    ns = allocs = p50 = p95 = p99 = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
        if ($(i+1) == "p50-ns") p50 = $i
        if ($(i+1) == "p95-ns") p95 = $i
        if ($(i+1) == "p99-ns") p99 = $i
    }
    if (n++) printf ",\n"
    printf "  {\"clients\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s, \"p50_ns\": %s, \"p95_ns\": %s, \"p99_ns\": %s}", parts[2], ns, allocs, p50, p95, p99
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$ERAW" > "$EOUT"
echo "wrote $EOUT"

extract "$BRAW" BenchmarkBroadcastHandlePublish > "$BOUT"
echo "wrote $BOUT"

# Planner sub-benchmarks carry three name parameters
# (mode=<full|incr>/rows=<n>/tmpl=<n>); parse them individually.
awk '
$1 ~ "^BenchmarkPlannerRepair/" {
    split($1, segs, "/")
    split(segs[2], m, "=")
    split(segs[3], r, "=")
    split(segs[4], tp, "=")
    sub(/-.*/, "", tp[2])
    ns = allocs = "null"
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (n++) printf ",\n"
    printf "  {\"mode\": \"%s\", \"rows\": %s, \"tmpl\": %s, \"ns_per_op\": %s, \"allocs_per_op\": %s}", m[2], r[2], tp[2], ns, allocs
}
BEGIN { printf "[\n" }
END   { printf "\n]\n" }
' "$PRAW" > "$POUT"
echo "wrote $POUT"
