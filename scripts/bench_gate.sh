#!/bin/sh
# Regression gate for the end-to-end hot path: compares a freshly generated
# BENCH_e2e.json against the committed baseline (the BENCH_e2e.json at HEAD)
# and fails if, at any client count, p99 latency or allocs/op regressed by
# more than the tolerance (percent).
#
#   sh scripts/bench_gate.sh [new.json [baseline.json]]
#
# With no baseline argument the committed version is read via git show.
# Tolerances (integer percent) come from the environment:
#   P99_TOL   p99 latency tolerance, default 20
#   ALLOC_TOL allocs/op tolerance, default 20
# Latency is wall-clock and noisy on shared runners; allocation counts are
# deterministic. CI relaxes P99_TOL and keeps ALLOC_TOL tight.
set -eu
cd "$(dirname "$0")/.."

NEW=${1:-BENCH_e2e.json}
BASE=${2:-}

P99_TOL=${P99_TOL:-20}
ALLOC_TOL=${ALLOC_TOL:-20}

[ -f "$NEW" ] || { echo "bench_gate: $NEW not found (run scripts/bench.sh first)" >&2; exit 1; }

BASETMP=
if [ -z "$BASE" ]; then
    BASETMP=$(mktemp)
    trap 'rm -f "$BASETMP"' EXIT
    if ! git show "HEAD:BENCH_e2e.json" > "$BASETMP" 2>/dev/null; then
        echo "bench_gate: no committed BENCH_e2e.json baseline at HEAD; nothing to gate against"
        exit 0
    fi
    BASE=$BASETMP
fi

# Each artifact row is one JSON object per line; pull the fields positionally
# by key. Exit 1 if any client count regressed past tolerance.
awk -v p99tol="$P99_TOL" -v alloctol="$ALLOC_TOL" '
function field(line, key,    rest) {
    rest = line
    if (!match(rest, "\"" key "\": *[0-9.eE+-]+")) return ""
    rest = substr(rest, RSTART, RLENGTH)
    sub("\"" key "\": *", "", rest)
    return rest
}
/"clients"/ {
    c = field($0, "clients")
    if (FNR == NR) {
        basep99[c] = field($0, "p99_ns")
        basealloc[c] = field($0, "allocs_per_op")
        next
    }
    p99 = field($0, "p99_ns"); alloc = field($0, "allocs_per_op")
    if (!(c in basep99)) { printf "bench_gate: clients=%s missing from baseline\n", c; next }
    lim = basep99[c] * (1 + p99tol / 100.0)
    if (p99 + 0 > lim) {
        printf "bench_gate: FAIL clients=%s p99 %.0fns > baseline %.0fns +%d%%\n", c, p99, basep99[c], p99tol
        bad = 1
    } else {
        printf "bench_gate: ok   clients=%s p99 %.0fns (baseline %.0fns, +%d%% limit %.0fns)\n", c, p99, basep99[c], p99tol, lim
    }
    lim = basealloc[c] * (1 + alloctol / 100.0)
    if (alloc + 0 > lim) {
        printf "bench_gate: FAIL clients=%s allocs/op %.0f > baseline %.0f +%d%%\n", c, alloc, basealloc[c], alloctol
        bad = 1
    } else {
        printf "bench_gate: ok   clients=%s allocs/op %.0f (baseline %.0f, +%d%% limit %.0f)\n", c, alloc, basealloc[c], alloctol, lim
    }
}
END { exit bad }
' "$BASE" "$NEW"
