#!/bin/sh
# Regression gate for the end-to-end hot path: compares a freshly generated
# BENCH_e2e.json against the committed baseline (the BENCH_e2e.json at HEAD)
# and fails if, at any client count, p99 latency or allocs/op regressed by
# more than the tolerance (percent). Then gates BENCH_conns.json the same
# way: at every connection count, publish p99, bytes/conn, and
# goroutines/conn must stay within tolerance of the committed baseline.
#
#   sh scripts/bench_gate.sh [new.json [baseline.json]]
#
# With no baseline argument the committed version is read via git show.
# Tolerances (integer percent) come from the environment:
#   P99_TOL            e2e p99 latency tolerance, default 20
#   ALLOC_TOL          e2e allocs/op tolerance, default 20
#   CONNS_P99_TOL      conn-scale publish p99 tolerance, default P99_TOL
#   CONNS_MEM_TOL      bytes/conn and goroutines/conn tolerance, default 20
#   CONNS_GORO_ABS     absolute goroutines/conn floor below which the gate
#                      always passes, default 0.05 — with the readiness
#                      poller the baseline is ~0, where a relative
#                      percentage on measurement noise would flake
#   METRICS_P99_TOL    metrics-on p99 overhead over metrics-off, default 25
#   METRICS_ALLOC_DELTA  allocs/op the metrics plane may add, default 1
#
# The metrics-overhead gate is self-contained: it compares the off and on
# arms inside the fresh BENCH_metrics.json (no git baseline), holding the
# instrumentation to its allocation-free claim.
# Latency is wall-clock and noisy on shared runners; allocation counts and
# per-connection footprint are deterministic. CI relaxes the latency
# tolerances and keeps the deterministic ones tight.
set -eu
cd "$(dirname "$0")/.."

NEW=${1:-BENCH_e2e.json}
BASE=${2:-}

P99_TOL=${P99_TOL:-20}
ALLOC_TOL=${ALLOC_TOL:-20}
CONNS_P99_TOL=${CONNS_P99_TOL:-$P99_TOL}
CONNS_MEM_TOL=${CONNS_MEM_TOL:-20}
CONNS_GORO_ABS=${CONNS_GORO_ABS:-0.05}
METRICS_P99_TOL=${METRICS_P99_TOL:-25}
METRICS_ALLOC_DELTA=${METRICS_ALLOC_DELTA:-1}

[ -f "$NEW" ] || { echo "bench_gate: $NEW not found (run scripts/bench.sh first)" >&2; exit 1; }

BASETMP=
if [ -z "$BASE" ]; then
    BASETMP=$(mktemp)
    trap 'rm -f "$BASETMP"' EXIT
    if ! git show "HEAD:BENCH_e2e.json" > "$BASETMP" 2>/dev/null; then
        echo "bench_gate: no committed BENCH_e2e.json baseline at HEAD; nothing to gate against"
        exit 0
    fi
    BASE=$BASETMP
fi

# Each artifact row is one JSON object per line; pull the fields positionally
# by key. Exit 1 if any client count regressed past tolerance.
awk -v p99tol="$P99_TOL" -v alloctol="$ALLOC_TOL" '
function field(line, key,    rest) {
    rest = line
    if (!match(rest, "\"" key "\": *[0-9.eE+-]+")) return ""
    rest = substr(rest, RSTART, RLENGTH)
    sub("\"" key "\": *", "", rest)
    return rest
}
/"clients"/ {
    c = field($0, "clients")
    if (FNR == NR) {
        basep99[c] = field($0, "p99_ns")
        basealloc[c] = field($0, "allocs_per_op")
        next
    }
    p99 = field($0, "p99_ns"); alloc = field($0, "allocs_per_op")
    if (!(c in basep99)) { printf "bench_gate: clients=%s missing from baseline\n", c; next }
    lim = basep99[c] * (1 + p99tol / 100.0)
    if (p99 + 0 > lim) {
        printf "bench_gate: FAIL clients=%s p99 %.0fns > baseline %.0fns +%d%%\n", c, p99, basep99[c], p99tol
        bad = 1
    } else {
        printf "bench_gate: ok   clients=%s p99 %.0fns (baseline %.0fns, +%d%% limit %.0fns)\n", c, p99, basep99[c], p99tol, lim
    }
    lim = basealloc[c] * (1 + alloctol / 100.0)
    if (alloc + 0 > lim) {
        printf "bench_gate: FAIL clients=%s allocs/op %.0f > baseline %.0f +%d%%\n", c, alloc, basealloc[c], alloctol
        bad = 1
    } else {
        printf "bench_gate: ok   clients=%s allocs/op %.0f (baseline %.0f, +%d%% limit %.0f)\n", c, alloc, basealloc[c], alloctol, lim
    }
}
END { exit bad }
' "$BASE" "$NEW"

# Connection-scale gate. Only meaningful when this run produced rows (the
# benchmark skips below the needed fd limit) and a baseline is committed;
# an explicit positional NEW/BASE pair gates the e2e file only.
[ -n "${2:-}" ] && exit 0
conns_rows=1
CNEW=BENCH_conns.json
[ -f "$CNEW" ] && grep -q '"conns"' "$CNEW" || {
    echo "bench_gate: no fresh $CNEW rows; skipping connection-scale gate"
    conns_rows=
}
if [ -n "$conns_rows" ]; then
CBASETMP=$(mktemp)
trap 'rm -f "$CBASETMP" ${BASETMP:-}' EXIT
if ! git show "HEAD:$CNEW" > "$CBASETMP" 2>/dev/null || ! grep -q '"conns"' "$CBASETMP"; then
    echo "bench_gate: no committed $CNEW baseline at HEAD; nothing to gate against"
else
awk -v p99tol="$CONNS_P99_TOL" -v memtol="$CONNS_MEM_TOL" -v goroabs="$CONNS_GORO_ABS" '
function field(line, key,    rest) {
    rest = line
    if (!match(rest, "\"" key "\": *[0-9.eE+-]+")) return ""
    rest = substr(rest, RSTART, RLENGTH)
    sub("\"" key "\": *", "", rest)
    return rest
}
# gate compares got against base with a relative tolerance; floor, when
# nonzero, is an absolute value the limit never drops below (a near-zero
# baseline turns a relative percentage into a noise amplifier).
function gate(name, c, got, base, tol, floor,    lim) {
    if (base == "" || got == "") return
    lim = base * (1 + tol / 100.0)
    if (floor + 0 > lim) lim = floor + 0
    if (got + 0 > lim) {
        printf "bench_gate: FAIL conns=%s %s %.3f > baseline %.3f +%d%% (limit %.3f)\n", c, name, got, base, tol, lim
        bad = 1
    } else {
        printf "bench_gate: ok   conns=%s %s %.3f (baseline %.3f, +%d%% limit %.3f)\n", c, name, got, base, tol, lim
    }
}
/"conns"/ {
    c = field($0, "conns")
    if (FNR == NR) {
        basep99[c] = field($0, "p99_ns")
        basebytes[c] = field($0, "bytes_per_conn")
        basegoro[c] = field($0, "goroutines_per_conn")
        next
    }
    if (!(c in basep99)) { printf "bench_gate: conns=%s missing from baseline\n", c; next }
    gate("p99", c, field($0, "p99_ns"), basep99[c], p99tol, 0)
    gate("bytes/conn", c, field($0, "bytes_per_conn"), basebytes[c], memtol, 0)
    gate("goroutines/conn", c, field($0, "goroutines_per_conn"), basegoro[c], memtol, goroabs)
}
END { exit bad }
' "$CBASETMP" "$CNEW"
fi
fi

# Metrics-overhead gate: off vs on arms of the same run. The allocation
# delta is the hard invariant (the hot path is allocation-free by design);
# the p99 ratio catches a pathologically expensive instrument.
MNEW=BENCH_metrics.json
if [ ! -f "$MNEW" ] || ! grep -q '"metrics"' "$MNEW"; then
    echo "bench_gate: no fresh $MNEW rows; skipping metrics-overhead gate"
    exit 0
fi
awk -v p99tol="$METRICS_P99_TOL" -v allocdelta="$METRICS_ALLOC_DELTA" '
function field(line, key,    rest) {
    rest = line
    if (!match(rest, "\"" key "\": *[0-9.eE+-]+")) return ""
    rest = substr(rest, RSTART, RLENGTH)
    sub("\"" key "\": *", "", rest)
    return rest
}
/"metrics": "off"/ { offp99 = field($0, "p99_ns"); offalloc = field($0, "allocs_per_op") }
/"metrics": "on"/  { onp99  = field($0, "p99_ns"); onalloc  = field($0, "allocs_per_op") }
END {
    if (offp99 == "" || onp99 == "") { print "bench_gate: metrics arms incomplete; skipping"; exit 0 }
    lim = offalloc + allocdelta
    if (onalloc + 0 > lim) {
        printf "bench_gate: FAIL metrics-on allocs/op %.0f > off %.0f + %d\n", onalloc, offalloc, allocdelta
        bad = 1
    } else {
        printf "bench_gate: ok   metrics-on allocs/op %.0f (off %.0f, +%d limit %.0f)\n", onalloc, offalloc, allocdelta, lim
    }
    lim = offp99 * (1 + p99tol / 100.0)
    if (onp99 + 0 > lim) {
        printf "bench_gate: FAIL metrics-on p99 %.0fns > off %.0fns +%d%%\n", onp99, offp99, p99tol
        bad = 1
    } else {
        printf "bench_gate: ok   metrics-on p99 %.0fns (off %.0fns, +%d%% limit %.0fns)\n", onp99, offp99, p99tol, lim
    }
    exit bad
}
' "$MNEW"
