package crowdfill

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandBinariesEndToEnd builds the real binaries and drives a full
// session: crowdfill-server up, crowdfill-ctl create/start, two
// crowdfill-worker processes collecting over real WebSockets, then
// status/result/pay through the REST API.
func TestCommandBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs subprocesses")
	}
	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"./cmd/crowdfill-server", "./cmd/crowdfill-ctl", "./cmd/crowdfill-worker",
		"./cmd/crowdfill-replay")
	build.Dir = "."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	// Pick free ports for the API listener and the debug listener.
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	dlis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	debugAddr := dlis.Addr().String()
	dlis.Close()

	server := exec.Command(filepath.Join(bin, "crowdfill-server"),
		"-addr", addr, "-debug-addr", debugAddr)
	server.Stdout = os.Stderr
	server.Stderr = os.Stderr
	if err := server.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = server.Process.Kill()
		_, _ = server.Process.Wait()
	}()
	base := "http://" + addr
	waitHTTP(t, base+"/api/specs")

	// A small spec the workers can finish quickly.
	specPath := filepath.Join(bin, "spec.json")
	spec := `{
	 "name": "Gadget",
	 "columns": [
	   {"name": "id"},
	   {"name": "kind", "domain": ["a", "b"]},
	   {"name": "price", "type": "int"}
	 ],
	 "key": ["id"],
	 "scoring": {"kind": "majority", "k": 3},
	 "cardinality": 4,
	 "budget": 5,
	 "scheme": "column-weighted",
	 "maxVotesPerRow": 5
	}`
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}

	ctl := func(args ...string) string {
		cmd := exec.Command(filepath.Join(bin, "crowdfill-ctl"),
			append([]string{"-server", base}, args...)...)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ctl %v: %v\n%s", args, err, out)
		}
		return string(out)
	}
	out := ctl("-spec", specPath, "create")
	id := extractJSONField(t, out, "id")
	start := ctl("-id", id, "start")
	ws := extractJSONField(t, start, "ws")

	// Two worker processes with compatible ground truth and high speedup.
	var workers []*exec.Cmd
	for i := 1; i <= 2; i++ {
		w := exec.Command(filepath.Join(bin, "crowdfill-worker"),
			"-url", "ws://"+addr+ws,
			"-spec", specPath,
			"-worker", fmt.Sprintf("w%d", i),
			"-knowledge", "0.9",
			"-accuracy", "0.99",
			"-vote-accuracy", "0.99",
			"-vote-pref", "0.6",
			"-speedup", "300",
			"-truth-seed", "42",
			"-seed", fmt.Sprint(100+i),
		)
		w.Stdout = os.Stderr
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
	}
	defer func() {
		for _, w := range workers {
			_ = w.Process.Kill()
			_, _ = w.Process.Wait()
		}
	}()

	// Poll status until done.
	deadline := time.Now().Add(60 * time.Second)
	done := false
	for time.Now().Before(deadline) && !done {
		st := ctl("-id", id, "status")
		done = strings.Contains(st, `"done": true`)
		time.Sleep(200 * time.Millisecond)
	}
	if !done {
		t.Fatalf("collection did not finish")
	}
	result := ctl("-id", id, "result")
	if !strings.Contains(result, "rows") {
		t.Fatalf("result output:\n%s", result)
	}
	pay := ctl("-id", id, "pay")
	if !strings.Contains(pay, `"status": "paid"`) {
		t.Fatalf("pay output:\n%s", pay)
	}
	got := ctl("-id", id, "get")
	if !strings.Contains(got, "Gadget") {
		t.Fatalf("get output:\n%s", got)
	}

	// The debug listener saw the whole session: the Prometheus exposition
	// must show broadcast publishes and marketplace payments, pprof must be
	// mounted, and crowdfill-ctl's metrics/events commands must read the
	// same listener.
	debugBase := "http://" + debugAddr
	prom := httpGetBody(t, debugBase+"/debug/metrics")
	for _, series := range []string{
		"crowdfill_bcast_publish_total",
		"crowdfill_ws_bytes_out_total",
		"crowdfill_mkt_payments_total",
	} {
		if !strings.Contains(prom, series) {
			t.Fatalf("debug exposition missing %s:\n%s", series, prom)
		}
	}
	if !strings.Contains(httpGetBody(t, debugBase+"/debug/pprof/cmdline"), "crowdfill-server") {
		t.Fatalf("pprof cmdline does not name the server binary")
	}
	ctlMetrics := ctl("-debug", debugBase, "metrics")
	if !strings.Contains(ctlMetrics, "crowdfill_bcast_publish_total") {
		t.Fatalf("ctl metrics output missing publish counter:\n%s", ctlMetrics)
	}
	ctlEvents := ctl("-debug", debugBase, "events")
	if !strings.Contains(ctlEvents, `"total"`) {
		t.Fatalf("ctl events output missing recorder dump:\n%s", ctlEvents)
	}

	// Offline audit: fetch the trace, replay it, and check the recomputed
	// pay matches what the marketplace was told to pay.
	traceOut := ctl("-id", id, "trace")
	idx := strings.Index(traceOut, "{")
	tracePath := filepath.Join(bin, "trace.json")
	if err := os.WriteFile(tracePath, []byte(traceOut[idx:]), 0o644); err != nil {
		t.Fatal(err)
	}
	replayCmd := exec.Command(filepath.Join(bin, "crowdfill-replay"),
		"-spec", specPath, "-trace", tracePath, "-statement", "w1")
	replayOut, err := replayCmd.CombinedOutput()
	if err != nil {
		t.Fatalf("replay: %v\n%s", err, replayOut)
	}
	if !strings.Contains(string(replayOut), "final rows: 4") {
		t.Fatalf("replay output:\n%s", replayOut)
	}
	if !strings.Contains(string(replayOut), "pay statement for w1") {
		t.Fatalf("replay statement missing:\n%s", replayOut)
	}
}

// httpGetBody fetches a URL and returns its body, failing on any error.
func httpGetBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	return string(data)
}

// waitHTTP polls a URL until it answers.
func waitHTTP(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("server never came up at %s", url)
}

// extractJSONField pulls a string field out of crowdfill-ctl's pretty output
// (status line + JSON body).
func extractJSONField(t *testing.T, out, field string) string {
	t.Helper()
	idx := strings.Index(out, "{")
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(out[idx:]), &m); err != nil {
		t.Fatalf("parse output: %v\n%s", err, out)
	}
	v, ok := m[field].(string)
	if !ok {
		t.Fatalf("field %q missing in %v", field, m)
	}
	return v
}
