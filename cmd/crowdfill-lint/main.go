// Command crowdfill-lint runs the internal/analysis invariant suite over the
// module: publishedmut, lockscope and msgfield on every package, simdet on
// the simulation packages. It is the static half of `make verify`.
//
// Usage:
//
//	crowdfill-lint [-list] [import-path ...]
//
// With no arguments every buildable package in the module is checked.
// Findings print as file:line:col: [analyzer] message, and the exit status
// is 1 if any finding survives //lint:allow filtering.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"crowdfill/internal/analysis"
	"crowdfill/internal/analysis/bufown"
	"crowdfill/internal/analysis/lockscope"
	"crowdfill/internal/analysis/msgfield"
	"crowdfill/internal/analysis/publishedmut"
	"crowdfill/internal/analysis/simdet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crowdfill-lint [-list] [import-path ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := []*analysis.Analyzer{
		publishedmut.New(),
		lockscope.New(),
		bufown.New(),
		msgfield.New(),
		simdet.New(),
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	n, err := run(analyzers, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowdfill-lint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "crowdfill-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

// run analyzes the requested packages (all module packages when paths is
// empty) and returns the number of findings printed.
func run(analyzers []*analysis.Analyzer, paths []string) (int, error) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		paths, err = loader.ModulePackages()
		if err != nil {
			return 0, err
		}
	}

	// simdet's determinism rules only bind inside the simulation harness.
	simPkgs := make(map[string]bool, len(simdet.DefaultPackages))
	for _, p := range simdet.DefaultPackages {
		simPkgs[p] = true
	}

	findings := 0
	emit := func(name string, d analysis.Diagnostic) {
		pos := loader.Fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(loader.ModRoot(), file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", file, pos.Line, pos.Column, name, d.Message)
		findings++
	}

	for _, path := range paths {
		pkg, err := loader.LoadImportPath(path)
		if err != nil {
			return findings, fmt.Errorf("load %s: %w", path, err)
		}
		allows := analysis.CollectAllows(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			if a.Name == "simdet" && !simPkgs[path] {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg)
			if err != nil {
				return findings, err
			}
			kept, extras := analysis.Filter(pkg.Fset, allows, a.Name, diags)
			for _, d := range kept {
				emit(a.Name, d)
			}
			for _, d := range extras {
				emit(a.Name, d)
			}
		}
	}

	// Cross-package contracts (msgfield's accept-vs-replay comparison) fire
	// once the whole module has been seen. Finish findings are contract
	// breaks between packages and have no //lint:allow escape hatch.
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(func(d analysis.Diagnostic) { emit(a.Name, d) })
		}
	}
	return findings, nil
}
