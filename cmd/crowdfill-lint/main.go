// Command crowdfill-lint runs the internal/analysis invariant suite over the
// module: publishedmut, lockscope, bufown, msgfield, lockorder and hotalloc
// on every package, simdet on the simulation packages. It is the static half
// of `make verify`.
//
// Usage:
//
//	crowdfill-lint [-list] [-tests] [-json] [-github] [-time] [import-path ...]
//
// With no arguments every buildable package in the module is checked. The
// run is two-phase: every package loads (and type-checks) first, then the
// analyzers run with the whole module visible — the call-graph analyzers
// (lockscope, lockorder, hotalloc) need cross-package summaries. With -tests
// each package's in-package _test.go files are type-checked and analyzed
// alongside its regular sources.
//
// Findings print as "file:line:col: [analyzer] message" by default, as a
// JSON array with -json, and as GitHub Actions workflow commands
// ("::error file=...") with -github so CI findings annotate PR diffs. The
// exit status is 1 if any finding survives //lint:allow filtering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"crowdfill/internal/analysis"
	"crowdfill/internal/analysis/bufown"
	"crowdfill/internal/analysis/hotalloc"
	"crowdfill/internal/analysis/lockorder"
	"crowdfill/internal/analysis/lockscope"
	"crowdfill/internal/analysis/msgfield"
	"crowdfill/internal/analysis/publishedmut"
	"crowdfill/internal/analysis/simdet"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	tests := flag.Bool("tests", false, "also analyze in-package _test.go files")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array (file/line/col/analyzer/message)")
	github := flag.Bool("github", false, "emit findings as GitHub Actions ::error workflow commands")
	timing := flag.Bool("time", false, "report load/analyze wall times to stderr")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: crowdfill-lint [-list] [-tests] [-json] [-github] [-time] [import-path ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := []*analysis.Analyzer{
		publishedmut.New(),
		lockscope.New(),
		bufown.New(),
		msgfield.New(),
		simdet.New(),
		lockorder.New(),
		hotalloc.New(),
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	opts := options{tests: *tests, json: *jsonOut, github: *github, timing: *timing}
	n, err := run(analyzers, flag.Args(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crowdfill-lint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "crowdfill-lint: %d finding(s)\n", n)
		os.Exit(1)
	}
}

type options struct {
	tests  bool
	json   bool
	github bool
	timing bool
}

// finding is one emitted diagnostic, shaped for the -json output mode.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run analyzes the requested packages (all module packages when paths is
// empty) and returns the number of findings emitted.
func run(analyzers []*analysis.Analyzer, paths []string, opts options) (int, error) {
	start := time.Now()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		return 0, err
	}
	if len(paths) == 0 {
		paths, err = loader.ModulePackages()
		if err != nil {
			return 0, err
		}
	}

	// Phase 1: load everything, so the Shared state (and the call graph
	// built over it) covers the whole module before any analyzer runs.
	pkgs := make([]*analysis.Package, 0, len(paths))
	for _, path := range paths {
		var pkg *analysis.Package
		if opts.tests {
			pkg, err = loader.LoadImportPathTests(path)
		} else {
			pkg, err = loader.LoadImportPath(path)
		}
		if err != nil {
			return 0, fmt.Errorf("load %s: %w", path, err)
		}
		pkgs = append(pkgs, pkg)
	}
	shared := analysis.NewShared(pkgs)
	loaded := time.Now()

	// simdet's determinism rules only bind inside the simulation harness.
	simPkgs := make(map[string]bool, len(simdet.DefaultPackages))
	for _, p := range simdet.DefaultPackages {
		simPkgs[p] = true
	}

	var findings []finding
	emit := func(name string, d analysis.Diagnostic) {
		pos := loader.Fset.Position(d.Pos)
		file := pos.Filename
		if rel, err := filepath.Rel(loader.ModRoot(), file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
		findings = append(findings, finding{File: file, Line: pos.Line, Col: pos.Column, Analyzer: name, Message: d.Message})
	}

	// Phase 2: analyze. Allow filtering runs per package with the shared
	// directive instances, so suppressions consumed inside global analyses
	// (hotalloc's pruned call edges) are already marked used by the time
	// the stale-directive check sees them.
	for _, pkg := range pkgs {
		allows := shared.AllowsFor(pkg.Path)
		for _, a := range analyzers {
			if a.Name == "simdet" && !simPkgs[pkg.Path] {
				continue
			}
			diags, err := analysis.RunAnalyzer(a, pkg, shared)
			if err != nil {
				return 0, err
			}
			kept, extras := analysis.Filter(pkg.Fset, allows, a.Name, diags)
			for _, d := range kept {
				emit(a.Name, d)
			}
			for _, d := range extras {
				emit(a.Name, d)
			}
		}
	}

	// Cross-package contracts (msgfield's accept-vs-replay comparison) fire
	// once the whole module has been seen. Finish findings are contract
	// breaks between packages and have no //lint:allow escape hatch.
	for _, a := range analyzers {
		if a.Finish != nil {
			a.Finish(func(d analysis.Diagnostic) { emit(a.Name, d) })
		}
	}
	analyzed := time.Now()

	switch {
	case opts.json:
		out := findings
		if out == nil {
			out = []finding{} // emit [] rather than null
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			return 0, err
		}
		fmt.Println(string(data))
	case opts.github:
		for _, f := range findings {
			// GitHub's workflow-command parser terminates the message at a
			// newline; findings are single-line by construction.
			fmt.Printf("::error file=%s,line=%d,col=%d,title=crowdfill-lint %s::%s\n",
				f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	default:
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if opts.timing {
		fmt.Fprintf(os.Stderr, "crowdfill-lint: %d pkgs, load %s, analyze %s, total %s\n",
			len(pkgs), loaded.Sub(start).Round(time.Millisecond),
			analyzed.Sub(loaded).Round(time.Millisecond),
			time.Since(start).Round(time.Millisecond))
	}
	return len(findings), nil
}
