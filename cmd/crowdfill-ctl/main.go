// Command crowdfill-ctl is the REST control client for crowdfill-server:
// it creates table specifications, starts collections, polls status,
// retrieves results, and triggers worker payment.
//
// Usage:
//
//	crowdfill-ctl -server http://localhost:8080 create -spec spec.json
//	crowdfill-ctl -server http://localhost:8080 list
//	crowdfill-ctl -server http://localhost:8080 start  -id specs-000001
//	crowdfill-ctl -server http://localhost:8080 status -id specs-000001
//	crowdfill-ctl -server http://localhost:8080 result -id specs-000001
//	crowdfill-ctl -server http://localhost:8080 trace  -id specs-000001
//	crowdfill-ctl -server http://localhost:8080 pay    -id specs-000001
//
// The metrics and events commands read the server's debug listener
// (crowdfill-server -debug-addr) instead of the REST API:
//
//	crowdfill-ctl -debug http://localhost:6060 metrics
//	crowdfill-ctl -debug http://localhost:6060 events
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "front-end server URL")
	debug := flag.String("debug", "http://localhost:6060", "server debug listener URL (for metrics/events)")
	id := flag.String("id", "", "specification id")
	specPath := flag.String("spec", "", "table specification JSON file")
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		log.Fatal("crowdfill-ctl: need a command: create, list, get, start, status, result, trace, statements, pay, delete, metrics, events")
	}

	needID := func() string {
		if *id == "" {
			log.Fatalf("crowdfill-ctl: %s needs -id", cmd)
		}
		return *id
	}
	switch cmd {
	case "create":
		if *specPath == "" {
			log.Fatal("crowdfill-ctl: create needs -spec")
		}
		body, err := os.ReadFile(*specPath)
		if err != nil {
			log.Fatalf("crowdfill-ctl: %v", err)
		}
		do("POST", *server+"/api/specs", body)
	case "list":
		do("GET", *server+"/api/specs", nil)
	case "get":
		do("GET", *server+"/api/specs/"+needID(), nil)
	case "delete":
		do("DELETE", *server+"/api/specs/"+needID(), nil)
	case "start":
		do("POST", *server+"/api/specs/"+needID()+"/start", nil)
	case "status":
		do("GET", *server+"/api/specs/"+needID()+"/status", nil)
	case "result":
		do("GET", *server+"/api/specs/"+needID()+"/result", nil)
	case "trace":
		do("GET", *server+"/api/specs/"+needID()+"/trace", nil)
	case "statements":
		do("GET", *server+"/api/specs/"+needID()+"/statements", nil)
	case "pay":
		do("POST", *server+"/api/specs/"+needID()+"/pay", nil)
	case "metrics":
		do("GET", *debug+"/debug/metrics.json", nil)
	case "events":
		do("GET", *debug+"/debug/events", nil)
	default:
		log.Fatalf("crowdfill-ctl: unknown command %q", cmd)
	}
}

// do performs the request and pretty-prints the JSON response.
func do(method, url string, body []byte) {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		log.Fatalf("crowdfill-ctl: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("crowdfill-ctl: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatalf("crowdfill-ctl: %v", err)
	}
	var pretty bytes.Buffer
	if json.Indent(&pretty, data, "", "  ") == nil {
		data = pretty.Bytes()
	}
	fmt.Printf("%s %s -> %s\n%s\n", method, url, resp.Status, data)
	if resp.StatusCode >= 400 {
		os.Exit(1)
	}
}
