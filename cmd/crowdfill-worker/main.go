// Command crowdfill-worker runs one simulated worker against a live
// CrowdFill back-end over a real WebSocket connection. The worker behaves
// per the crowd model: it knows a seeded fraction of a synthetic ground
// truth, fills cells with configurable accuracy and think times, and votes
// on other workers' data.
//
// Usage:
//
//	crowdfill-worker -url ws://localhost:8080/ws/specs-000001 \
//	    -spec spec.json -worker w1 -knowledge 0.8 -accuracy 0.95 -speedup 20
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"time"

	"crowdfill/internal/client"
	"crowdfill/internal/crowd"
	"crowdfill/internal/spec"
	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
	"crowdfill/internal/wsock"
)

func main() {
	url := flag.String("url", "ws://localhost:8080/ws/specs-000001", "collection WebSocket endpoint")
	specPath := flag.String("spec", "", "table specification JSON (for the schema)")
	worker := flag.String("worker", "w1", "worker identity")
	knowledge := flag.Float64("knowledge", 0.8, "fraction of ground truth known")
	accuracy := flag.Float64("accuracy", 0.95, "fill accuracy")
	voteAcc := flag.Float64("vote-accuracy", 0.95, "vote accuracy")
	votePref := flag.Float64("vote-pref", 0.5, "preference for voting over filling")
	speedup := flag.Float64("speedup", 20, "divide think times by this factor")
	truthSeed := flag.Int64("truth-seed", 42, "ground truth seed (must match other workers)")
	truthRows := flag.Int("truth-rows", 220, "ground truth size")
	seed := flag.Int64("seed", time.Now().UnixNano(), "worker randomness seed")
	flag.Parse()

	if *specPath == "" {
		log.Fatal("crowdfill-worker: -spec is required")
	}
	data, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatalf("crowdfill-worker: %v", err)
	}
	var ts spec.TableSpec
	if err := json.Unmarshal(data, &ts); err != nil {
		log.Fatalf("crowdfill-worker: parse spec: %v", err)
	}
	schema, err := ts.Schema()
	if err != nil {
		log.Fatalf("crowdfill-worker: %v", err)
	}
	truth := crowd.Generic(*truthSeed, schema, *truthRows)

	w := crowd.NewWorker(crowd.Spec{
		Name:           *worker,
		Knowledge:      *knowledge,
		FillAccuracy:   *accuracy,
		VoteAccuracy:   *voteAcc,
		VotePreference: *votePref,
		ResearchProb:   0.4,
		ReconsiderProb: 0.15,
		Seed:           *seed,
	}, truth)
	log.Printf("crowdfill-worker: %s knows %d of %d entities", *worker, w.KnownRows(), len(truth.Rows))

	ws, err := wsock.Dial(*url + "?worker=" + *worker)
	if err != nil {
		log.Fatalf("crowdfill-worker: dial: %v", err)
	}
	cl, err := client.New(client.Config{ID: *worker, Worker: *worker, Schema: schema})
	if err != nil {
		log.Fatalf("crowdfill-worker: %v", err)
	}
	runner := client.NewRunner(cl, transport.WrapWS(ws))
	defer runner.Close()

	actions := 0
	for !runner.Done() {
		var d crowd.Decision
		runner.View(func(c *client.Client) { d = w.Decide(c) })
		think := time.Duration(float64(d.Think) / *speedup)
		select {
		case err := <-runner.Err():
			log.Printf("crowdfill-worker: connection: %v", err)
			return
		case <-time.After(think):
		}
		if runner.Done() {
			break
		}
		err := runner.Do(func(c *client.Client) ([]sync.Message, error) {
			switch d.Kind {
			case crowd.ActFill:
				return c.Fill(d.Row, d.Col, d.Value)
			case crowd.ActUpvote:
				m, err := c.Upvote(d.Row)
				if err != nil {
					return nil, err
				}
				return []sync.Message{m}, nil
			case crowd.ActDownvote:
				m, err := c.Downvote(d.Row)
				if err != nil {
					return nil, err
				}
				return []sync.Message{m}, nil
			case crowd.ActReconsider:
				row := c.Replica().Table().Get(d.Row)
				if row == nil {
					return nil, nil
				}
				vec := row.Vec.Clone()
				undo, err := c.UndoVote(vec)
				if err != nil {
					return nil, err
				}
				var re sync.Message
				if d.Up {
					re, err = c.Upvote(d.Row)
				} else {
					re, err = c.Downvote(d.Row)
				}
				if err != nil {
					return []sync.Message{undo}, nil
				}
				return []sync.Message{undo, re}, nil
			}
			return nil, nil
		})
		if err == nil && d.Kind != crowd.ActIdle {
			actions++
			if actions%10 == 0 {
				log.Printf("crowdfill-worker: %s performed %d actions", *worker, actions)
			}
		}
	}
	log.Printf("crowdfill-worker: %s done after %d actions", *worker, actions)
}
