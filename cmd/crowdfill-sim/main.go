// Command crowdfill-sim regenerates the paper's §6 evaluation (see
// EXPERIMENTS.md): the representative run's overall effectiveness (E1),
// per-worker compensation under dual-weighted allocation (E2), estimation
// accuracy / Figure 5 (E3), the allocation-scheme comparison (E4), the
// estimation-MAPE-by-scheme table (E5), and the earning-rate curves /
// Figure 6 (E6). It also runs the microtask-baseline comparison the paper
// proposes as future work.
//
// Usage:
//
//	crowdfill-sim                 # all experiments, default seed
//	crowdfill-sim -exp e3 -seed 4 # one experiment, custom seed
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"crowdfill/internal/exp"
	"crowdfill/internal/microtask"
)

// writeCSV writes one figure series when -csv is set.
func writeCSV(dir, name, content string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("crowdfill-sim: %v", err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		log.Fatalf("crowdfill-sim: %v", err)
	}
	log.Printf("crowdfill-sim: wrote %s", path)
}

func main() {
	which := flag.String("exp", "all", "experiment: e1..e12, baseline, or all")
	seed := flag.Int64("seed", exp.DefaultSeed, "representative-run seed")
	e5seeds := flag.Int("e5-runs", 3, "seeds for the multi-run E5 experiment")
	csvDir := flag.String("csv", "", "directory to write figure5.csv / figure6.csv series into")
	flag.Parse()

	want := func(name string) bool { return *which == "all" || strings.EqualFold(*which, name) }

	var res *exp.SimResult
	needRep := want("e1") || want("e2") || want("e3") || want("e4") || want("e6") || want("baseline")
	if needRep {
		var err error
		res, err = exp.Run(exp.RepresentativeConfig(*seed))
		if err != nil {
			log.Fatalf("crowdfill-sim: %v", err)
		}
		if !res.Done {
			log.Printf("crowdfill-sim: warning: seed %d did not converge within the virtual budget", *seed)
		}
	}
	if want("e1") {
		fmt.Println(exp.E1(res))
	}
	if want("e2") {
		fmt.Println(exp.E2(res))
	}
	if want("e3") {
		r := exp.E3(res)
		fmt.Println(r)
		writeCSV(*csvDir, "figure5.csv", r.CSV())
	}
	if want("e4") {
		r, err := exp.E4(res)
		if err != nil {
			log.Fatalf("crowdfill-sim: E4: %v", err)
		}
		fmt.Println(r)
	}
	if want("e5") {
		seeds := make([]int64, *e5seeds)
		for i := range seeds {
			seeds[i] = *seed + 20 + int64(i)
		}
		r, err := exp.E5(seeds)
		if err != nil {
			log.Fatalf("crowdfill-sim: E5: %v", err)
		}
		fmt.Println(r)
	}
	if want("e6") {
		r, err := exp.E6(res)
		if err != nil {
			log.Fatalf("crowdfill-sim: E6: %v", err)
		}
		fmt.Println(r)
		writeCSV(*csvDir, "figure6.csv", r.CSV())
	}
	if want("e7") {
		r, err := exp.E7(*seed)
		if err != nil {
			log.Fatalf("crowdfill-sim: E7: %v", err)
		}
		fmt.Println(r)
	}
	if want("e8") {
		r, err := exp.E8(*seed, nil)
		if err != nil {
			log.Fatalf("crowdfill-sim: E8: %v", err)
		}
		fmt.Println(r)
	}
	if want("e9") {
		r, err := exp.E9(*seed)
		if err != nil {
			log.Fatalf("crowdfill-sim: E9: %v", err)
		}
		fmt.Println(r)
	}
	if want("e10") {
		r, err := exp.E10(nil)
		if err != nil {
			log.Fatalf("crowdfill-sim: E10: %v", err)
		}
		fmt.Println(r)
	}
	if want("e11") {
		r, err := exp.E11(*seed, nil)
		if err != nil {
			log.Fatalf("crowdfill-sim: E11: %v", err)
		}
		fmt.Println(r)
	}
	if want("e12") {
		r, err := exp.E12(*seed)
		if err != nil {
			log.Fatalf("crowdfill-sim: E12: %v", err)
		}
		fmt.Println(r)
	}
	if want("baseline") {
		cfg := exp.RepresentativeConfig(*seed)
		mt, err := microtask.Run(microtask.Config{
			Truth:      cfg.Truth,
			Rows:       20,
			Workers:    cfg.Workers,
			PayPerTask: 0.05,
		}, *seed)
		if err != nil {
			log.Fatalf("crowdfill-sim: baseline: %v", err)
		}
		fmt.Println("EX  Microtask baseline comparison (§8 future work)")
		fmt.Printf("    %-28s %12s %12s\n", "", "table-fill", "microtask")
		fmt.Printf("    %-28s %12v %12v\n", "collection time", res.Duration.Round(1e9), mt.Duration.Round(1e9))
		fmt.Printf("    %-28s %11.0f%% %11.0f%%\n", "accuracy", res.Accuracy*100, mt.Accuracy*100)
		fmt.Printf("    %-28s %12d %12d\n", "worker messages / tasks", len(res.Core.Trace()), mt.Tasks)
		fmt.Printf("    %-28s %12d %12d\n", "duplicate-entity waste", 0, mt.DuplicateKeys)
		fmt.Printf("    %-28s %12.2f %12.2f\n", "cost ($)", res.Alloc.Allocated, mt.Cost)
		fmt.Println()
	}
}
