// Command crowdfill-replay audits a finished collection offline: it loads
// the bookkeeping trace (as served by the front-end's /trace endpoint),
// replays it through a fresh replica, re-derives the final table, and
// recomputes compensation under any allocation scheme — answering "why did
// worker X earn $Y" without the live system.
//
// Usage:
//
//	crowdfill-ctl -server http://host:8080 -id specs-000001 trace > trace.json
//	crowdfill-replay -spec spec.json -trace trace.json -budget 10 -scheme dual
//	crowdfill-replay -spec spec.json -trace trace.json -statement w1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"crowdfill/internal/model"
	"crowdfill/internal/pay"
	"crowdfill/internal/replay"
	"crowdfill/internal/spec"
	"crowdfill/internal/sync"
)

// traceFile matches the front-end's /trace payload.
type traceFile struct {
	Trace []sync.Message `json:"trace"`
	CCLog []sync.Message `json:"ccLog"`
}

func main() {
	specPath := flag.String("spec", "", "table specification JSON (schema + scoring)")
	tracePath := flag.String("trace", "", "trace JSON ({trace, ccLog}, as served by /trace)")
	budget := flag.Float64("budget", 0, "budget override (default: the spec's)")
	scheme := flag.String("scheme", "", "allocation scheme override (default: the spec's)")
	statement := flag.String("statement", "", "print the itemized pay statement for one worker")
	showTable := flag.Bool("table", false, "print the rebuilt candidate table")
	flag.Parse()

	if *specPath == "" || *tracePath == "" {
		log.Fatal("crowdfill-replay: -spec and -trace are required")
	}
	var ts spec.TableSpec
	if data, err := os.ReadFile(*specPath); err != nil {
		log.Fatalf("crowdfill-replay: %v", err)
	} else if err := json.Unmarshal(data, &ts); err != nil {
		log.Fatalf("crowdfill-replay: parse spec: %v", err)
	}
	cfg, err := ts.Build()
	if err != nil {
		log.Fatalf("crowdfill-replay: %v", err)
	}
	var tf traceFile
	if data, err := os.ReadFile(*tracePath); err != nil {
		log.Fatalf("crowdfill-replay: %v", err)
	} else if err := json.Unmarshal(data, &tf); err != nil {
		log.Fatalf("crowdfill-replay: parse trace: %v", err)
	}
	b := cfg.Budget
	if *budget > 0 {
		b = *budget
	}
	sch := cfg.Scheme
	if *scheme != "" {
		sch, err = pay.ParseScheme(*scheme)
		if err != nil {
			log.Fatalf("crowdfill-replay: %v", err)
		}
	}

	audit, err := replay.Run(replay.Input{
		Schema: cfg.Schema,
		Score:  cfg.Score,
		Budget: b,
		Scheme: sch,
		Trace:  tf.Trace,
		CCLog:  tf.CCLog,
	})
	if err != nil {
		log.Fatalf("crowdfill-replay: %v", err)
	}

	fmt.Printf("replayed %d messages (%d worker, %d central-client)\n",
		audit.Messages, len(tf.Trace), len(tf.CCLog))
	fmt.Printf("candidate rows: %d   final rows: %d\n",
		audit.Replica.Table().Len(), len(audit.Final))
	if *showTable {
		fmt.Println()
		fmt.Print(model.RenderTable(cfg.Schema, audit.Replica.Table().Rows()))
	}
	fmt.Println()
	fmt.Print(model.RenderFinal(cfg.Schema, audit.Final))
	fmt.Println()
	fmt.Printf("compensation (%s, $%.2f budget, $%.2f allocated):\n",
		sch, b, audit.Alloc.Allocated)
	for worker, amount := range audit.Alloc.PerWorker {
		fmt.Printf("  %-12s $%.2f\n", worker, amount)
	}
	if *statement != "" {
		cols := make([]string, cfg.Schema.NumColumns())
		for i, c := range cfg.Schema.Columns {
			cols[i] = c.Name
		}
		start := int64(0)
		if len(tf.CCLog) > 0 {
			start = tf.CCLog[0].TS
		}
		fmt.Println()
		fmt.Print(audit.Alloc.FormatStatement(*statement, tf.Trace, cols, start))
	}
}
