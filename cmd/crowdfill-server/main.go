// Command crowdfill-server runs the full CrowdFill server stack: the
// front-end REST API (table specifications, collection control, results,
// payment) backed by the embedded document store and the simulated
// marketplace, plus the per-collection back-end WebSocket endpoints.
//
// Usage:
//
//	crowdfill-server -addr :8080 -db crowdfill.json
//
// Then drive it with cmd/crowdfill-ctl (or plain curl):
//
//	crowdfill-ctl -server http://localhost:8080 create -spec spec.json
//	crowdfill-ctl -server http://localhost:8080 start -id specs-000001
//	crowdfill-worker -url ws://localhost:8080/ws/specs-000001 -spec spec.json -worker w1
//
// With -debug-addr a second listener exposes the operational plane:
// Prometheus metrics (/debug/metrics), a JSON snapshot (/debug/metrics.json),
// the flight-recorder dump (/debug/events), and net/http/pprof
// (/debug/pprof/). Kept off the main listener so the serving port never
// exposes profiling endpoints.
package main

import (
	"flag"
	"log"
	"net/http"

	"crowdfill/internal/docstore"
	"crowdfill/internal/frontend"
	"crowdfill/internal/marketplace"
	"crowdfill/internal/metrics"
)

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	debugAddr := flag.String("debug-addr", "", "debug listen address for /debug/metrics, /debug/events, /debug/pprof (empty = disabled)")
	db := flag.String("db", "", "document store path (empty = in-memory)")
	pool := flag.Int("pool", 100, "simulated marketplace worker pool size")
	maxWorkers := flag.Int("max-workers", 10, "max workers per collection HIT")
	seed := flag.Int64("seed", 1, "marketplace arrival seed")
	flag.Parse()

	// Operational events (client drops, repair overruns) reach the process
	// log through the flight recorder's sink.
	metrics.DefaultRecorder().SetLogf(log.Printf)

	store, err := docstore.Open(*db)
	if err != nil {
		log.Fatalf("crowdfill-server: %v", err)
	}
	market := marketplace.New(*seed, *pool, true)
	fe := frontend.New(store, market, *maxWorkers)

	if *debugAddr != "" {
		go func() {
			log.Printf("crowdfill-server: debug endpoints (metrics, events, pprof) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, metrics.Handler(nil, nil)); err != nil {
				log.Fatalf("crowdfill-server: debug listener: %v", err)
			}
		}()
	}

	log.Printf("crowdfill-server: REST API and WebSocket endpoints on %s", *addr)
	log.Printf("crowdfill-server: marketplace sandbox with %d pooled workers", *pool)
	if err := http.ListenAndServe(*addr, fe.Handler()); err != nil {
		log.Fatalf("crowdfill-server: %v", err)
	}
}
