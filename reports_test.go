package crowdfill

import (
	"net/http/httptest"
	"strings"
	gosync "sync"
	"testing"
)

// paperOnce caches the representative run for the report tests.
var (
	paperOnce gosync.Once
	paperRes  *SimResult
	paperErr  error
)

func paperRun(t *testing.T) *SimResult {
	t.Helper()
	paperOnce.Do(func() { paperRes, paperErr = SimulatePaper(PaperSeed) })
	if paperErr != nil {
		t.Fatal(paperErr)
	}
	return paperRes
}

func TestReportsRender(t *testing.T) {
	res := paperRun(t)
	cases := map[string]func() (string, error){
		"E1": func() (string, error) { return ReportOverallEffectiveness(res), nil },
		"E2": func() (string, error) { return ReportWorkerCompensation(res), nil },
		"E3": func() (string, error) { return ReportEstimationAccuracy(res), nil },
		"E4": func() (string, error) { return ReportSchemeComparison(res) },
		"E6": func() (string, error) { return ReportEarningRates(res) },
	}
	for name, fn := range cases {
		s, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !strings.Contains(s, name) || len(s) < 60 {
			t.Errorf("%s report looks wrong:\n%s", name, s)
		}
	}
}

func TestReportEstimationBySchemes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	s, err := ReportEstimationBySchemes([]int64{31})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "E5") || !strings.Contains(s, "uniform") {
		t.Fatalf("E5 report looks wrong:\n%s", s)
	}
}

// TestConnectWSOverHandler drives a tiny collection over real WebSockets
// through the public facade only.
func TestConnectWSOverHandler(t *testing.T) {
	s := kvSpec()
	s.Cardinality = 1
	coll, err := NewCollection(s)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	srv := httptest.NewServer(coll.Handler())
	defer srv.Close()
	url := "ws" + strings.TrimPrefix(srv.URL, "http")

	alice, err := ConnectWS(url, "alice", s)
	if err != nil {
		t.Fatalf("ConnectWS: %v", err)
	}
	defer alice.Close()
	bob, err := ConnectWS(url, "bob", s)
	if err != nil {
		t.Fatal(err)
	}
	defer bob.Close()
	if alice.ID() != "alice" {
		t.Fatalf("ID = %q", alice.ID())
	}

	waitFor(t, func() bool { return len(alice.Rows()) == 1 })
	fillRow(t, alice, "x", "1")
	waitFor(t, func() bool {
		for _, r := range bob.Rows() {
			if r.Complete {
				return bob.Upvote(r.ID) == nil
			}
		}
		return false
	})
	waitFor(t, func() bool { return coll.Done() && alice.Done() && bob.Done() })
	if rows := coll.Result(); len(rows) != 1 || rows[0][0] != "x" {
		t.Fatalf("result = %v", rows)
	}
}

func TestConnectWSErrors(t *testing.T) {
	if _, err := ConnectWS("ws://127.0.0.1:1", "w", kvSpec()); err == nil {
		t.Fatalf("refused dial should fail")
	}
	bad := kvSpec()
	bad.Columns = nil
	if _, err := ConnectWS("ws://127.0.0.1:1", "w", bad); err == nil {
		t.Fatalf("bad spec should fail before dialing")
	}
}

func TestSimulateOptionErrors(t *testing.T) {
	bad := kvSpec()
	bad.Budget = -1
	if _, err := Simulate(SimOptions{Spec: bad}); err == nil {
		t.Fatalf("bad spec should fail")
	}
	// SoccerTruth requires a matching column count.
	if _, err := Simulate(SimOptions{Spec: kvSpec(), SoccerTruth: true}); err == nil {
		t.Fatalf("SoccerTruth with 2-column schema should fail")
	}
}

func TestSimulateSoccerTruth(t *testing.T) {
	res, err := Simulate(SimOptions{
		Spec: Spec{
			Name: "SoccerPlayer",
			Columns: []Column{
				{Name: "name"}, {Name: "nationality"},
				{Name: "position", Domain: []string{"GK", "DF", "MF", "FW"}},
				{Name: "caps", Type: "int"}, {Name: "goals", Type: "int"},
				{Name: "dob", Type: "date"},
			},
			Key:         []string{"name", "nationality"},
			Scoring:     Scoring{Kind: "majority", K: 3},
			Cardinality: 6,
			Budget:      5,
			Scheme:      "uniform",
		},
		SoccerTruth: true,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done || res.FinalRows < 6 {
		t.Fatalf("soccer-truth sim: %s", ResultSummary(res))
	}
}

func TestAuditRoundTrip(t *testing.T) {
	res := paperRun(t)
	trace, err := ExportSimTrace(res)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{
		Name: "SoccerPlayer",
		Columns: []Column{
			{Name: "name"}, {Name: "nationality"},
			{Name: "position", Domain: []string{"GK", "DF", "MF", "FW"}},
			{Name: "caps", Type: "int"}, {Name: "goals", Type: "int"},
			{Name: "dob", Type: "date"},
		},
		Key:         []string{"name", "nationality"},
		Scoring:     Scoring{Kind: "majority", K: 3},
		Cardinality: 20,
		Budget:      10,
		Scheme:      "dual-weighted",
	}
	audit, err := Audit(spec, trace, "")
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if audit.FinalRows != res.FinalRows {
		t.Fatalf("audit final rows = %d, want %d", audit.FinalRows, res.FinalRows)
	}
	for w, want := range res.Alloc.PerWorker {
		if got := audit.Pay[w]; got < want-0.1 || got > want+0.1 {
			t.Fatalf("audit pay for %s = %v, live %v", w, got, want)
		}
		if st := audit.Statements[w]; !strings.Contains(st, "total") {
			t.Fatalf("statement for %s missing: %q", w, st)
		}
	}
	// Scheme reinterpretation changes the split but not the budget cap.
	uni, err := Audit(spec, trace, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, amt := range uni.Pay {
		sum += amt
	}
	if sum > 10+1e-9 {
		t.Fatalf("uniform audit exceeds budget: %v", sum)
	}
	// Error paths.
	if _, err := Audit(spec, []byte("{bad"), ""); err == nil {
		t.Fatalf("bad trace should fail")
	}
	if _, err := Audit(spec, trace, "lottery"); err == nil {
		t.Fatalf("bad scheme should fail")
	}
	bad := spec
	bad.Columns = nil
	if _, err := Audit(bad, trace, ""); err == nil {
		t.Fatalf("bad spec should fail")
	}
}

func TestCollectionExportTrace(t *testing.T) {
	s := kvSpec()
	s.Cardinality = 1
	coll, err := NewCollection(s)
	if err != nil {
		t.Fatal(err)
	}
	defer coll.Close()
	alice, err := coll.Connect("alice")
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(alice.Rows()) == 1 })
	fillRow(t, alice, "x", "1")
	waitFor(t, func() bool {
		data, err := coll.ExportTrace()
		if err != nil {
			return false
		}
		audit, err := Audit(s, data, "")
		return err == nil && audit.Messages >= 3 // 1 CC insert + 2 fills (+ auto)
	})
}
