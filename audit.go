package crowdfill

import (
	"encoding/json"
	"fmt"

	"crowdfill/internal/pay"
	"crowdfill/internal/replay"
	"crowdfill/internal/server"
	"crowdfill/internal/sync"
)

// traceExport is the JSON shape of an exported bookkeeping trace — the same
// shape the front-end's /trace endpoint serves and crowdfill-replay reads.
type traceExport struct {
	Trace []sync.Message `json:"trace"`
	CCLog []sync.Message `json:"ccLog"`
}

// ExportTrace serializes the collection's bookkeeping trace (paper §3.3):
// every worker message plus the Central Client's log, in server order. The
// bytes round-trip through Audit and cmd/crowdfill-replay.
func (c *Collection) ExportTrace() ([]byte, error) {
	var out traceExport
	c.ns.WithCore(func(core *server.Core) {
		out.Trace = append(out.Trace, core.Trace()...)
		out.CCLog = append(out.CCLog, core.CCLog()...)
	})
	return json.Marshal(out)
}

// ExportSimTrace serializes a simulation's bookkeeping trace in the same
// format.
func ExportSimTrace(res *SimResult) ([]byte, error) {
	return json.Marshal(traceExport{
		Trace: res.Core.Trace(),
		CCLog: res.Core.CCLog(),
	})
}

// AuditResult is the outcome of replaying a trace offline.
type AuditResult struct {
	// Messages counts replayed messages (worker + Central Client).
	Messages int
	// CandidateRows and FinalRows describe the rebuilt end state.
	CandidateRows int
	FinalRows     int
	// Final holds the re-derived final table as rows of column values.
	Final [][]string
	// Pay is the recomputed per-worker compensation.
	Pay map[string]float64
	// Statements itemizes each worker's paid actions.
	Statements map[string]string
}

// Audit replays an exported trace against a spec and recomputes the final
// table and compensation — answering "why did worker X earn $Y" without the
// live system. scheme optionally overrides the spec's allocation scheme
// ("" keeps it).
func Audit(s Spec, traceJSON []byte, scheme string) (*AuditResult, error) {
	cfg, err := s.Build()
	if err != nil {
		return nil, err
	}
	var tf traceExport
	if err := json.Unmarshal(traceJSON, &tf); err != nil {
		return nil, fmt.Errorf("crowdfill: parse trace: %w", err)
	}
	sch := cfg.Scheme
	if scheme != "" {
		sch, err = pay.ParseScheme(scheme)
		if err != nil {
			return nil, err
		}
	}
	audit, err := replay.Run(replay.Input{
		Schema: cfg.Schema,
		Score:  cfg.Score,
		Budget: cfg.Budget,
		Scheme: sch,
		Trace:  tf.Trace,
		CCLog:  tf.CCLog,
	})
	if err != nil {
		return nil, err
	}
	out := &AuditResult{
		Messages:      audit.Messages,
		CandidateRows: audit.Replica.Table().Len(),
		FinalRows:     len(audit.Final),
		Pay:           audit.Alloc.PerWorker,
		Statements:    make(map[string]string),
	}
	for _, r := range audit.Final {
		row := make([]string, len(r.Vec))
		for i, cell := range r.Vec {
			if cell.Set {
				row[i] = cell.Val
			}
		}
		out.Final = append(out.Final, row)
	}
	cols := make([]string, cfg.Schema.NumColumns())
	for i, c := range cfg.Schema.Columns {
		cols[i] = c.Name
	}
	start := int64(0)
	if len(tf.CCLog) > 0 {
		start = tf.CCLog[0].TS
	}
	for worker := range audit.Alloc.PerWorker {
		out.Statements[worker] = audit.Alloc.FormatStatement(worker, tf.Trace, cols, start)
	}
	return out, nil
}
