// Benchmarks regenerating every table and figure of the paper's §6
// evaluation (one benchmark per artifact; see DESIGN.md's experiment index
// and EXPERIMENTS.md for paper-vs-measured numbers), plus ablation
// benchmarks for the design choices the paper calls out. Run with:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks report their headline values as custom metrics
// (virtual minutes, accuracy, MAPE, ...), so a bench run doubles as an
// experiment reproduction.
package crowdfill

import (
	"fmt"
	"testing"

	"crowdfill/internal/constraint"
	"crowdfill/internal/crowd"
	"crowdfill/internal/exp"
	"crowdfill/internal/microtask"
	"crowdfill/internal/model"
	"crowdfill/internal/pay"
	gosync "sync"

	csync "crowdfill/internal/sync"
)

// repBench caches the representative run across benchmarks (they all analyze
// the same session, like the paper's E1-E4/Figure 5/Figure 6).
var (
	repBenchOnce gosync.Once
	repBenchRes  *exp.SimResult
	repBenchErr  error
)

func repBenchRun(b *testing.B) *exp.SimResult {
	b.Helper()
	repBenchOnce.Do(func() {
		repBenchRes, repBenchErr = exp.Run(exp.RepresentativeConfig(exp.DefaultSeed))
	})
	if repBenchErr != nil {
		b.Fatalf("representative run: %v", repBenchErr)
	}
	return repBenchRes
}

// BenchmarkE1OverallEffectiveness regenerates §6's in-text effectiveness
// table: a full five-worker collection of 20 soccer players per iteration.
func BenchmarkE1OverallEffectiveness(b *testing.B) {
	var last exp.E1Report
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(exp.RepresentativeConfig(exp.DefaultSeed))
		if err != nil {
			b.Fatal(err)
		}
		last = exp.E1(res)
	}
	b.ReportMetric(last.Duration.Minutes(), "virtual-min")
	b.ReportMetric(float64(last.CandidateRows), "candidate-rows")
	b.ReportMetric(last.Accuracy*100, "accuracy-%")
}

// BenchmarkE2WorkerCompensation regenerates the per-worker dual-weighted
// compensation table over the representative trace.
func BenchmarkE2WorkerCompensation(b *testing.B) {
	res := repBenchRun(b)
	var r exp.E2Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		alloc, err := res.Core.ComputePayWith(pay.DualWeighted)
		if err != nil {
			b.Fatal(err)
		}
		_ = alloc
	}
	r = exp.E2(res)
	lo, hi := r.Workers[0], r.Workers[len(r.Workers)-1]
	b.ReportMetric(lo.Actual, "min-pay-$")
	b.ReportMetric(hi.Actual, "max-pay-$")
}

// BenchmarkE3Figure5EstimationAccuracy regenerates Figure 5's MAPE values.
func BenchmarkE3Figure5EstimationAccuracy(b *testing.B) {
	res := repBenchRun(b)
	var r exp.E3Report
	for i := 0; i < b.N; i++ {
		r = exp.E3(res)
	}
	b.ReportMetric(r.MAPERaw, "mape-raw-%")
	b.ReportMetric(r.MAPECorrected, "mape-corrected-%")
}

// BenchmarkE4UniformComparison regenerates the in-text uniform-vs-dual
// comparison over the same trace.
func BenchmarkE4UniformComparison(b *testing.B) {
	res := repBenchRun(b)
	var r exp.E4Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.E4(res)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MaxRelDiff*100, "max-shift-%")
}

// BenchmarkE5EstimationMAPEByScheme regenerates the in-text ~3%/16%/25%
// MAPE-by-scheme comparison (many full simulations per iteration; slow).
func BenchmarkE5EstimationMAPEByScheme(b *testing.B) {
	var r exp.E5Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.E5([]int64{21, 22})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.MAPE[0], "uniform-%")
	b.ReportMetric(r.MAPE[1], "column-%")
	b.ReportMetric(r.MAPE[2], "dual-%")
}

// BenchmarkE6Figure6EarningRates regenerates Figure 6's earning-rate curves
// and stability metrics.
func BenchmarkE6Figure6EarningRates(b *testing.B) {
	res := repBenchRun(b)
	var r exp.E6Report
	for i := 0; i < b.N; i++ {
		var err error
		r, err = exp.E6(res)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.StabilityWeighted[0], "wtd-deviation")
	b.ReportMetric(r.StabilityUniform[0], "uni-deviation")
}

// BenchmarkEXMicrotaskBaseline runs the §8 future-work comparison: the same
// crowd collecting the same table through microtasks.
func BenchmarkEXMicrotaskBaseline(b *testing.B) {
	cfg := exp.RepresentativeConfig(exp.DefaultSeed)
	var last *microtask.Result
	for i := 0; i < b.N; i++ {
		res, err := microtask.Run(microtask.Config{
			Truth:      cfg.Truth,
			Rows:       20,
			Workers:    cfg.Workers,
			PayPerTask: 0.05,
		}, exp.DefaultSeed)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Duration.Minutes(), "virtual-min")
	b.ReportMetric(float64(last.DuplicateKeys), "duplicate-keys")
	b.ReportMetric(last.Accuracy*100, "accuracy-%")
}

// --- Ablation benchmarks (design choices called out in DESIGN.md) ---

// BenchmarkAblationPRIRepair measures the Central Client's incremental
// matching repair (§4.2) against growing candidate tables.
func BenchmarkAblationPRIRepair(b *testing.B) {
	for _, size := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("rows=%d", size), func(b *testing.B) {
			s := crowd.SoccerSchema()
			rep := csync.NewReplica(s)
			g := csync.NewIDGen("w")
			truth := crowd.SoccerPlayers(1, size+10)
			for i := 0; i < size; i++ {
				ins, _ := rep.Insert(g.Next())
				cur := ins.Row
				for col, cell := range truth.Rows[i] {
					m, err := rep.Fill(cur, col, cell.Val, g.Next())
					if err != nil {
						b.Fatal(err)
					}
					cur = m.NewRow
				}
			}
			p := constraint.NewPlanner(constraint.Cardinality(s, size), model.MajorityShortcut(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Repair(rep)
			}
		})
	}
}

// BenchmarkAblationEstimatorObserve measures the per-message estimator cost
// (§5.3) on a realistic mid-run state.
func BenchmarkAblationEstimatorObserve(b *testing.B) {
	res := repBenchRun(b)
	s := crowd.SoccerSchema()
	tmpl := constraint.Cardinality(s, 20)
	trace := res.Core.Trace()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := pay.NewEstimator(s, model.MajorityShortcut(3), pay.DualWeighted, 10, tmpl, 0)
		for _, m := range trace {
			e.Observe(m, res.Core.Master())
		}
	}
	b.ReportMetric(float64(len(trace)), "msgs/op")
}

// BenchmarkAblationComputePay measures the full §5.2 compensation
// calculation over the representative trace, per scheme.
func BenchmarkAblationComputePay(b *testing.B) {
	res := repBenchRun(b)
	for _, scheme := range []pay.Scheme{pay.Uniform, pay.ColumnWeighted, pay.DualWeighted} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := res.Core.ComputePayWith(scheme); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReplaceVsInPlace quantifies §2.4.1's key design choice:
// concurrent fills of different columns on the same row corrupt rows under
// naive in-place merging but never under CrowdFill's replace model.
func BenchmarkAblationReplaceVsInPlace(b *testing.B) {
	schema := model.MustSchema("T", []model.Column{{Name: "a"}, {Name: "b"}}, "a")
	corruptedInPlace, corruptedReplace := 0, 0
	trials := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Two clients fill different columns of the same empty row with
		// values from different intended entities.
		rep := csync.NewReplica(schema)
		rep.Apply(csync.Message{Type: csync.MsgInsert, Row: "cc-1"})
		m1 := csync.Message{Type: csync.MsgReplace, Row: "cc-1", NewRow: "c1-1",
			Vec: model.VectorOf("alice-key", ""), Col: 0, Val: "alice-key"}
		m2 := csync.Message{Type: csync.MsgReplace, Row: "cc-1", NewRow: "c2-1",
			Vec: model.VectorOf("", "bob-val"), Col: 1, Val: "bob-val"}
		rep.Apply(m1)
		rep.Apply(m2)
		// Replace model: both intents survive as separate rows.
		rep.Table().Each(func(r *model.Row) {
			if r.Vec[0].Set && r.Vec[1].Set {
				corruptedReplace++ // a merged row neither client intended
			}
		})
		// In-place emulation: the same two fills write into one row.
		merged := model.NewVector(2)
		merged[0] = model.Cell{Set: true, Val: "alice-key"}
		merged[1] = model.Cell{Set: true, Val: "bob-val"}
		if merged[0].Set && merged[1].Set {
			corruptedInPlace++
		}
		trials++
	}
	b.ReportMetric(float64(corruptedReplace)/float64(trials)*100, "replace-corrupt-%")
	b.ReportMetric(float64(corruptedInPlace)/float64(trials)*100, "inplace-corrupt-%")
}

// BenchmarkAblationSpammer measures the compensation scheme's spam
// resistance (§8's threat model): accuracy and the spammer's pay share.
func BenchmarkAblationSpammer(b *testing.B) {
	var res *exp.SimResult
	for i := 0; i < b.N; i++ {
		cfg := exp.RepresentativeConfig(3)
		cfg.Workers = append(cfg.Workers, crowd.Spec{Name: "spammer", Spammer: true, Seed: 999})
		var err error
		res, err = exp.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var spamPay, totalPay float64
	for _, w := range res.Workers {
		totalPay += w.Actual
		if w.Name == "spammer" {
			spamPay = w.Actual
		}
	}
	b.ReportMetric(res.Accuracy*100, "accuracy-%")
	if totalPay > 0 {
		b.ReportMetric(spamPay/totalPay*100, "spam-pay-share-%")
	}
}

// BenchmarkAblationServerFanout measures end-to-end message handling as the
// number of connected clients grows (§2.4's broadcast model): one iteration
// creates a collection of 48 empty rows, connects the clients, and fills all
// 48 keys round-robin through them.
func BenchmarkAblationServerFanout(b *testing.B) {
	for _, clients := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("clients=%d", clients), func(b *testing.B) {
			const rows = 48
			for i := 0; i < b.N; i++ {
				coll, err := NewCollection(Spec{
					Name:        "T",
					Columns:     []Column{{Name: "k"}, {Name: "v"}},
					Key:         []string{"k"},
					Cardinality: rows,
					Scoring:     Scoring{Kind: "majority", K: 3},
					Budget:      1,
				})
				if err != nil {
					b.Fatal(err)
				}
				workers := make([]*Worker, clients)
				for j := range workers {
					w, err := coll.Connect(fmt.Sprintf("w%d", j))
					if err != nil {
						b.Fatal(err)
					}
					workers[j] = w
				}
				// Epoch-before-scan, wait-after-miss: the epoch is read
				// before each inspection, so a batch applied between the scan
				// and the wait wakes the waiter instead of being missed.
				w0 := workers[0]
				for ep := w0.Epoch(); len(w0.Rows()) < rows; ep = w0.WaitChange(ep) {
				}
				for n := 0; n < rows; n++ {
					w := workers[n%clients]
					filled := false
					for !filled {
						ep := w.Epoch()
						for _, r := range w.Rows() {
							if r.Cells[0] == "" {
								if err := w.Fill(r.ID, "k", fmt.Sprintf("key-%d", n)); err == nil {
									filled = true
								}
								break
							}
						}
						if !filled {
							w.WaitChange(ep)
						}
					}
				}
				coll.Close()
			}
			b.ReportMetric(rows, "fills/op")
		})
	}
}
