package crowdfill

import (
	"crowdfill/internal/client"
	"crowdfill/internal/exp"
	"crowdfill/internal/model"
	"crowdfill/internal/transport"
	"crowdfill/internal/wsock"
)

// ConnectWS dials a collection served elsewhere (Collection.Handler or
// cmd/crowdfill-server) over WebSocket and returns a worker handle. url is
// the ws:// endpoint without the worker parameter; s must carry the same
// schema the server uses.
func ConnectWS(url, workerID string, s Spec) (*Worker, error) {
	schema, err := s.Schema()
	if err != nil {
		return nil, err
	}
	ws, err := wsock.Dial(url + "?worker=" + workerID)
	if err != nil {
		return nil, err
	}
	cl, err := client.New(client.Config{ID: workerID, Worker: workerID, Schema: schema})
	if err != nil {
		ws.Close()
		return nil, err
	}
	return &Worker{
		id:     workerID,
		schema: schema,
		runner: client.NewRunner(cl, transport.WrapWS(ws)),
	}, nil
}

// The Report* helpers render the paper's §6 evaluation artifacts from a
// simulation result (see DESIGN.md's experiment index).

// RenderFinalTable renders a simulation's final table as aligned text.
func RenderFinalTable(res *SimResult) string {
	core := res.Core
	return model.RenderFinal(core.Master().Schema(), core.FinalTable())
}

// RenderCandidateTable renders the end-of-run candidate table with vote
// counts, in the style of the paper's figures.
func RenderCandidateTable(res *SimResult) string {
	core := res.Core
	return model.RenderTable(core.Master().Schema(), core.Master().Table().Rows())
}

// ReportOverallEffectiveness renders E1 (§6 "overall effectiveness").
func ReportOverallEffectiveness(res *SimResult) string { return exp.E1(res).String() }

// ReportWorkerCompensation renders E2 (§6 per-worker compensation).
func ReportWorkerCompensation(res *SimResult) string { return exp.E2(res).String() }

// ReportEstimationAccuracy renders E3 (Figure 5).
func ReportEstimationAccuracy(res *SimResult) string { return exp.E3(res).String() }

// ReportSchemeComparison renders E4 (§6 allocation-scheme comparison).
func ReportSchemeComparison(res *SimResult) (string, error) {
	r, err := exp.E4(res)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// ReportEarningRates renders E6 (Figure 6).
func ReportEarningRates(res *SimResult) (string, error) {
	r, err := exp.E6(res)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// ReportEstimationBySchemes runs E5 (§6 MAPE by scheme) over the given seeds
// and renders it. Each seed contributes several workloads per scheme; this
// runs many simulations and takes a few seconds.
func ReportEstimationBySchemes(seeds []int64) (string, error) {
	r, err := exp.E5(seeds)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
