package crowdfill

import (
	"bytes"
	"testing"

	"crowdfill/internal/exp"
)

// TestSimTraceDeterministic runs the paper-representative simulation twice
// with the same seed and requires byte-identical exported traces — the
// property the simdet analyzer guards statically: all time comes from the
// simulated clock and all randomness from the seeded source, so a trace is
// fully reproducible from its seed.
func TestSimTraceDeterministic(t *testing.T) {
	const seed = 20140622 // SIGMOD'14

	run := func() []byte {
		res, err := exp.Run(exp.RepresentativeConfig(seed))
		if err != nil {
			t.Fatalf("sim run: %v", err)
		}
		data, err := ExportSimTrace(res)
		if err != nil {
			t.Fatalf("export trace: %v", err)
		}
		return data
	}

	first := run()
	second := run()
	if !bytes.Equal(first, second) {
		limit := 200
		if len(first) < limit {
			limit = len(first)
		}
		t.Fatalf("same-seed runs diverged: %d vs %d bytes\nfirst starts: %s",
			len(first), len(second), first[:limit])
	}
	if len(first) == 0 || bytes.Equal(first, []byte(`{"trace":null,"ccLog":null}`)) {
		t.Fatal("exported trace is empty; determinism check is vacuous")
	}
}
