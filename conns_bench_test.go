package crowdfill

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"slices"
	"strconv"
	gosync "sync"
	"syscall"
	"testing"
	"time"

	"crowdfill/internal/client"
	"crowdfill/internal/model"
	"crowdfill/internal/netpoll"
	csync "crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

// BenchmarkConnScale measures the server's connection-scale envelope: N
// mostly-idle loopback WebSocket connections (the flaky, watching crowd)
// plus a 1% active publisher mix toggling votes. Reported per sub-benchmark:
//
//	goroutines/conn  server-side goroutine cost per idle connection — ~0
//	                 on platforms with the readiness poller (reads are
//	                 dispatched by a fixed worker pool, writes by the
//	                 flusher pool), ~1 (the blocking reader loop) elsewhere
//	bytes/conn       server heap+stack bytes per idle connection
//	p50-ns, p99-ns   publish→deliver latency at an active observer while
//	                 every broadcast fans out to all N connections
//
// The sandbox caps RLIMIT_NOFILE at 20000, so one process cannot hold both
// ends of 10k TCP pairs: the idle herd's client sides live in a child
// process (the test binary re-executed, see TestMain), which also keeps the
// herd's drain goroutines and socket buffers out of this process's
// goroutine and memory deltas — the numbers are server-side cost only. The
// ladder's upper rungs need more descriptors than that cap allows — 19000 is
// the largest rung that fits (herd + active pairs + listener under 20000 in
// the server process); 20000 and 50000 skip here and run where the limit is
// raisable, producing artifact rows only on such hosts.
func BenchmarkConnScale(b *testing.B) {
	for _, n := range []int{1000, 5000, 10000, 19000, 20000, 50000} {
		b.Run(fmt.Sprintf("conns=%d", n), func(b *testing.B) {
			benchConnScale(b, n)
		})
	}
}

const (
	herdEnv     = "CROWDFILL_CONN_HERD"
	herdAddrEnv = "CROWDFILL_CONN_ADDR"
	herdNEnv    = "CROWDFILL_CONN_N"
)

// TestMain re-executes into herd-child mode when the environment says so;
// otherwise it runs the test binary normally.
func TestMain(m *testing.M) {
	if os.Getenv(herdEnv) != "" {
		runConnHerd()
		return
	}
	os.Exit(m.Run())
}

// raiseFDLimit lifts the soft open-file limit to the hard cap (helps CI
// runners that default the soft limit to 1024) and returns the result.
func raiseFDLimit() uint64 {
	var rl syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl); err != nil {
		return 0
	}
	if rl.Cur < rl.Max {
		rl.Cur = rl.Max
		syscall.Setrlimit(syscall.RLIMIT_NOFILE, &rl)
		syscall.Getrlimit(syscall.RLIMIT_NOFILE, &rl)
	}
	return rl.Cur
}

// runConnHerd is the child-process body: dial N idle connections to the
// parent's server, drain whatever broadcasts arrive, report readiness on
// stdout, and hold everything open until the parent closes our stdin.
func runConnHerd() {
	addr := os.Getenv(herdAddrEnv)
	n, err := strconv.Atoi(os.Getenv(herdNEnv))
	if err != nil || addr == "" {
		fmt.Fprintln(os.Stderr, "herd: bad CROWDFILL_CONN_ADDR/CROWDFILL_CONN_N")
		os.Exit(1)
	}
	raiseFDLimit()

	var wg gosync.WaitGroup
	sem := make(chan struct{}, 64) // dial parallelism
	errc := make(chan error, 1)
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			ws, derr := wsock.Dial(fmt.Sprintf("ws://%s/?worker=h%d", addr, i))
			if derr != nil {
				select {
				case errc <- fmt.Errorf("dial %d: %w", i, derr):
				default:
				}
				return
			}
			go func() {
				for {
					if _, rerr := ws.ReadTextLease(); rerr != nil {
						return
					}
				}
			}()
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "herd:", err)
		os.Exit(1)
	default:
	}
	fmt.Println("ready")
	io.Copy(io.Discard, os.Stdin) // parent closing stdin = shut down
	os.Exit(0)
}

func benchConnScale(b *testing.B, n int) {
	k := n / 100 // 1% active publisher mix
	if k < 2 {
		k = 2
	}
	if limit := raiseFDLimit(); limit < uint64(n+2*k+256) {
		b.Skipf("open-file limit %d too low for %d connections", limit, n)
	}

	coll, err := NewCollection(Spec{
		Name:        "T",
		Columns:     []Column{{Name: "k"}, {Name: "v"}},
		Key:         []string{"k"},
		Cardinality: k,
		Scoring:     Scoring{Kind: "majority", K: 3},
		Budget:      1,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv := &http.Server{Handler: coll.Handler()}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		coll.Close()
	}()

	// The 1% active mix: k real workers over loopback WebSockets.
	active := make([]*Worker, k)
	for j := range active {
		active[j] = dialWorker(b, coll, ln.Addr(), fmt.Sprintf("a%d", j))
	}
	for _, w := range active {
		for ep := w.Epoch(); len(w.Rows()) < k; ep = w.WaitChange(ep) {
		}
	}

	// Give each publisher its own partially-filled row to toggle: one filled
	// cell permits downvotes, the row stays partial (no auto-upvote) with
	// f(0,1)=0 under majority-3 scoring, so the Central Client stays quiet
	// and each toggle broadcasts exactly one replica-mutating message.
	rowIDs := make([]string, k)
	for j, r := range active[0].Rows() {
		rowIDs[j] = r.ID
	}
	for j, w := range active {
		if err := w.Fill(rowIDs[j], "k", fmt.Sprintf("key-%d", j)); err != nil {
			b.Fatal(err)
		}
	}
	filledAt := func(w *Worker) bool {
		rows := w.Rows()
		got := 0
		for _, r := range rows {
			if r.Cells[0] != "" {
				got++
			}
		}
		return got == k
	}
	for _, w := range active {
		for ep := w.Epoch(); !filledAt(w); ep = w.WaitChange(ep) {
		}
	}
	// A fill replaces the row under a new ID; re-resolve each publisher's
	// row by its key cell.
	for j := range rowIDs {
		want := fmt.Sprintf("key-%d", j)
		rowIDs[j] = ""
		for _, r := range active[j].Rows() {
			if r.Cells[0] == want {
				rowIDs[j] = r.ID
			}
		}
		if rowIDs[j] == "" {
			b.Fatalf("publisher %d: filled row not found", j)
		}
	}

	// Baseline before the herd joins: the deltas below are the server-side
	// cost of the idle connections alone (the herd's own goroutines, socket
	// buffers, and fds are in the child process).
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	g0 := runtime.NumGoroutine()

	child := exec.Command(os.Args[0], "-test.run", "^$")
	child.Env = append(os.Environ(),
		herdEnv+"=1",
		herdAddrEnv+"="+ln.Addr().String(),
		herdNEnv+"="+strconv.Itoa(n),
	)
	stdin, err := child.StdinPipe()
	if err != nil {
		b.Fatal(err)
	}
	stdout, err := child.StdoutPipe()
	if err != nil {
		b.Fatal(err)
	}
	child.Stderr = os.Stderr
	if err := child.Start(); err != nil {
		b.Fatal(err)
	}
	defer func() {
		stdin.Close() // herd shuts down on stdin EOF
		child.Wait()
	}()
	readyc := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, rerr := stdout.Read(buf)
		readyc <- rerr
	}()
	select {
	case rerr := <-readyc:
		if rerr != nil {
			b.Fatalf("herd child failed: %v", rerr)
		}
	case <-time.After(3 * time.Minute):
		b.Fatal("herd child never became ready")
	}
	deadline := time.Now().Add(time.Minute)
	for {
		st := coll.Status()
		if st.Clients >= n+k {
			break
		}
		if time.Now().After(deadline) {
			b.Fatalf("only %d of %d connections registered", st.Clients, n+k)
		}
		time.Sleep(10 * time.Millisecond)
	}

	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	g1 := runtime.NumGoroutine()
	goroutinesPerConn := float64(g1-g0) / float64(n)
	heap := int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	stack := int64(m1.StackInuse) - int64(m0.StackInuse)
	bytesPerConn := float64(heap+stack) / float64(n)

	// Sanity, not just telemetry. With the readiness poller the invariant is
	// zero per-connection goroutines — readers and writers are both fixed
	// pools — with a small absolute allowance for transient runtime
	// goroutines. On fallback platforms it is the blocking reader loop only,
	// never a per-connection writer.
	limit := 1.5
	if netpoll.OSSupported() {
		limit = 0.05
	}
	if goroutinesPerConn > limit {
		b.Fatalf("goroutines/conn = %.3f > %.2f; per-connection goroutines are back", goroutinesPerConn, limit)
	}

	// Publish ops: publishers rotate; the next publisher in the rotation is
	// the latency observer. exp tracks every active worker's expected replica
	// epoch (each op applies once locally at its origin and broadcasts once
	// to everyone else).
	exp := make([]uint64, k)
	for j, w := range active {
		exp[j] = w.runner.ReplicaEpoch()
	}
	vecs := make([]model.Vector, k)
	for j := range vecs {
		vecs[j] = model.VectorOf(fmt.Sprintf("key-%d", j), "")
	}
	undo := func(w *Worker, vec model.Vector) error {
		return w.runner.Do(func(c *client.Client) ([]csync.Message, error) {
			m, uerr := c.UndoVote(vec)
			if uerr != nil {
				return nil, uerr
			}
			return []csync.Message{m}, nil
		})
	}
	down := make([]bool, k)
	lats := make([]int64, b.N)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % k
		start := time.Now()
		var oerr error
		if !down[j] {
			oerr = active[j].Downvote(rowIDs[j])
		} else {
			oerr = undo(active[j], vecs[j])
		}
		if oerr != nil {
			b.Fatalf("op %d: %v", i, oerr)
		}
		down[j] = !down[j]
		for m := range exp {
			exp[m]++
		}
		obs := active[(j+1)%k]
		target := exp[(j+1)%k]
		for {
			ep := obs.Epoch()
			if obs.runner.ReplicaEpoch() >= target {
				break
			}
			obs.WaitChange(ep)
		}
		lats[i] = int64(time.Since(start))
	}
	b.StopTimer()

	slices.Sort(lats)
	pct := func(p float64) float64 {
		i := int(p * float64(len(lats)-1))
		return float64(lats[i])
	}
	b.ReportMetric(pct(0.50), "p50-ns")
	b.ReportMetric(pct(0.99), "p99-ns")
	b.ReportMetric(goroutinesPerConn, "goroutines/conn")
	b.ReportMetric(bytesPerConn, "bytes/conn")
}
