// Package transport provides the reliable, in-order duplex message links the
// formal model assumes (paper §2.4). Two implementations: an in-process pipe
// for tests and simulations, and an adapter over the wsock WebSocket layer
// for the live system. Both carry sync.Message values as JSON.
package transport

import (
	"errors"
	"net"
	gosync "sync"
	"syscall"
	"time"

	"crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

// Conn is one endpoint of a reliable in-order duplex message link.
type Conn interface {
	// Send transmits one message. It must not be called concurrently with
	// itself.
	Send(m sync.Message) error
	// SendPrepared transmits a message prepared once for many recipients:
	// implementations reuse the shared encoding (and, where the wire format
	// allows, the shared frame) instead of re-encoding per connection. Same
	// concurrency contract as Send.
	SendPrepared(p *sync.Prepared) error
	// SendPreparedBatch transmits several prepared messages as one coalesced
	// write where the wire format allows (writev-style: N frames, one
	// syscall), falling back to sequential sends otherwise. Delivery order
	// and wire bytes are exactly those of N SendPrepared calls. Same
	// concurrency contract as Send.
	SendPreparedBatch(ps []*sync.Prepared) error
	// SetWriteDeadline bounds how long subsequent sends may block; the zero
	// time clears the bound. A send that hits the deadline returns an error
	// and may leave the link mid-message, so callers must drop the
	// connection afterwards (the flusher pool's stalled-socket backstop).
	SetWriteDeadline(t time.Time) error
	// SetReadDeadline bounds how long subsequent receives may block; the
	// zero time clears the bound. A receive that hits the deadline returns
	// a timeout error (IsTimeout reports true). On the WebSocket transport
	// the stream may be left mid-frame, so callers must drop the connection
	// afterwards; on the pipe nothing is consumed and the link stays
	// usable, letting poller timeout tests run against both transports.
	SetReadDeadline(t time.Time) error
	// Recv blocks until the next message arrives or the link closes.
	Recv() (sync.Message, error)
	// RecvBatch blocks until at least one message arrives, then fills dst
	// with any further messages already available on the link without
	// blocking, and returns how many were stored. A receiver draining
	// bursts this way pays one wakeup for the whole burst instead of one
	// per message. Same concurrency contract as Recv (no concurrent calls
	// with Recv or itself); dst must be non-empty.
	RecvBatch(dst []sync.Message) (int, error)
	// Close shuts the link down; pending and future Recv calls fail.
	Close() error
}

// ErrPipeClosed is returned on operations over a closed pipe.
var ErrPipeClosed = errors.New("transport: pipe closed")

// ErrWriteTimeout is returned by a pipe send that hit its write deadline.
var ErrWriteTimeout = errors.New("transport: write deadline exceeded")

// ErrReadTimeout is returned by a pipe receive that hit its read deadline.
var ErrReadTimeout = errors.New("transport: read deadline exceeded")

// IsTimeout reports whether an error means a deadline expired — across both
// transports (the pipe's ErrWriteTimeout/ErrReadTimeout sentinels and the
// net.Error timeout a deadline'd socket operation returns). The flusher
// pool uses it to label the drop cause: a deadline hit is a stalled socket,
// a plain send error is a broken one.
func IsTimeout(err error) bool {
	if errors.Is(err, ErrWriteTimeout) || errors.Is(err, ErrReadTimeout) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// PollConn is the optional readiness-driven extension of Conn implemented
// by transports whose receive side can run without a blocking reader
// goroutine (DESIGN.md §15). The server probes for it with a type
// assertion; transports without it (the in-process pipe) keep the blocking
// loop.
type PollConn interface {
	Conn
	// StartPoll switches the receive side into non-blocking mode and
	// returns the raw descriptor handle for poller registration. onMsg is
	// the delivery callback PollRecv invokes once per decoded message; it
	// is stored once here so the per-dispatch path allocates nothing. The
	// switch is one-way: blocking Recv calls fail afterwards.
	StartPoll(onMsg func(m sync.Message) error) (syscall.RawConn, error)
	// PollRecv drains whatever is readable right now without blocking,
	// delivering decoded messages to the StartPoll callback. more=true
	// means the read budget ran out with data still pending (re-queue the
	// connection); a non-nil error is fatal and the caller must tear the
	// connection down. At most one goroutine may be in PollRecv at a time.
	PollRecv(scratch []byte) (more bool, err error)
	// OnClose registers fn to run exactly once when the connection closes
	// from either side — including a local Close by the write plane, which
	// silently removes the descriptor from the kernel interest set and
	// would otherwise strand the poller-side state. If the connection is
	// already closed, fn runs immediately.
	OnClose(fn func())
}

// pipeShared is the closure state both ends of a pipe share: closing either
// end closes the link exactly once.
type pipeShared struct {
	done chan struct{}
	once gosync.Once
}

func (s *pipeShared) close() { s.once.Do(func() { close(s.done) }) }

// pipeEnd is one side of an in-memory link.
type pipeEnd struct {
	in     chan sync.Message
	out    chan sync.Message
	shared *pipeShared
	// wdeadline bounds Send; owned by the sending goroutine (the Send
	// concurrency contract covers SetWriteDeadline too). rdeadline bounds
	// Recv symmetrically, owned by the receiving goroutine.
	wdeadline time.Time
	rdeadline time.Time
}

// Pipe returns the two endpoints of an in-process reliable in-order link
// with the given buffer capacity per direction.
func Pipe(buf int) (Conn, Conn) {
	ab := make(chan sync.Message, buf)
	ba := make(chan sync.Message, buf)
	shared := &pipeShared{done: make(chan struct{})}
	a := &pipeEnd{in: ba, out: ab, shared: shared}
	b := &pipeEnd{in: ab, out: ba, shared: shared}
	return a, b
}

func (p *pipeEnd) Send(m sync.Message) error {
	// Check closure first: with buffer space available, a two-way select
	// would otherwise pick between "closed" and "sent" at random.
	select {
	case <-p.shared.done:
		return ErrPipeClosed
	default:
	}
	if !p.wdeadline.IsZero() {
		if !time.Now().Before(p.wdeadline) {
			return ErrWriteTimeout
		}
		t := time.NewTimer(time.Until(p.wdeadline))
		defer t.Stop()
		select {
		case <-p.shared.done:
			return ErrPipeClosed
		case p.out <- m:
			return nil
		case <-t.C:
			return ErrWriteTimeout
		}
	}
	select {
	case <-p.shared.done:
		return ErrPipeClosed
	case p.out <- m:
		return nil
	}
}

// SendPrepared delivers the message value directly: in-process pipes never
// serialize, so a shared encoding has nothing to save.
func (p *pipeEnd) SendPrepared(prep *sync.Prepared) error { return p.Send(prep.Message()) }

// SendPreparedBatch delivers the message values in order; a pipe has no
// frame layer, so there is nothing to coalesce beyond the sequential sends.
func (p *pipeEnd) SendPreparedBatch(ps []*sync.Prepared) error {
	for _, prep := range ps {
		if err := p.Send(prep.Message()); err != nil {
			return err
		}
	}
	return nil
}

// SetWriteDeadline bounds Send; same concurrency contract as Send.
func (p *pipeEnd) SetWriteDeadline(t time.Time) error {
	p.wdeadline = t
	return nil
}

// SetReadDeadline bounds Recv; same concurrency contract as Recv. A
// timed-out pipe receive consumes nothing, so the link stays usable.
func (p *pipeEnd) SetReadDeadline(t time.Time) error {
	p.rdeadline = t
	return nil
}

func (p *pipeEnd) Recv() (sync.Message, error) {
	if !p.rdeadline.IsZero() {
		// Drain queued messages before the expiry check: data already on
		// the link beats a deadline, mirroring the closure-drain below.
		select {
		case m := <-p.in:
			return m, nil
		default:
		}
		if !time.Now().Before(p.rdeadline) {
			return sync.Message{}, ErrReadTimeout
		}
		t := time.NewTimer(time.Until(p.rdeadline))
		defer t.Stop()
		select {
		case <-p.shared.done:
			select {
			case m := <-p.in:
				return m, nil
			default:
				return sync.Message{}, ErrPipeClosed
			}
		case m := <-p.in:
			return m, nil
		case <-t.C:
			return sync.Message{}, ErrReadTimeout
		}
	}
	select {
	case <-p.shared.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-p.in:
			return m, nil
		default:
			return sync.Message{}, ErrPipeClosed
		}
	case m := <-p.in:
		return m, nil
	}
}

// RecvBatch blocks for the first message, then drains whatever else is
// already sitting in the channel buffer.
func (p *pipeEnd) RecvBatch(dst []sync.Message) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("transport: RecvBatch with empty dst")
	}
	m, err := p.Recv()
	if err != nil {
		return 0, err
	}
	dst[0] = m
	n := 1
	for n < len(dst) {
		select {
		case m := <-p.in:
			dst[n] = m
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *pipeEnd) Close() error {
	p.shared.close()
	return nil
}

// wsConn adapts a WebSocket connection to the message link interface. The
// encode buffer and the wsock read lease make steady-state Send and Recv
// allocation-free apart from what a decoded message itself retains.
type wsConn struct {
	ws   *wsock.Conn
	ebuf []byte // reusable encode buffer; safe because Send calls never overlap
	// fbuf collects the cached frames of one SendPreparedBatch call; reused
	// across batches under the same no-overlap contract as ebuf.
	fbuf []*wsock.PreparedFrame
	// pendingErr defers a read error hit mid-batch so RecvBatch can deliver
	// the messages decoded before it; the next receive call returns it.
	pendingErr error
	// pollFeed is the wsock-level delivery adapter built once by StartPoll
	// (decode lease → invoke the registered message callback), so the
	// readiness dispatch path passes a stored closure instead of
	// allocating one per call.
	pollFeed func(data []byte) error
}

// WrapWS returns a message link over an established WebSocket connection.
func WrapWS(ws *wsock.Conn) Conn { return &wsConn{ws: ws} }

func (w *wsConn) Send(m sync.Message) error {
	if err := sync.ValidateEncodable(m); err != nil {
		return err
	}
	w.ebuf = sync.AppendMessage(w.ebuf[:0], m)
	return w.ws.WriteText(w.ebuf)
}

// SendPrepared writes the shared RFC 6455 frame built once per broadcast
// (and cached inside the Prepared), so N recipients cost one JSON encode and
// one frame build instead of N of each.
func (w *wsConn) SendPrepared(p *sync.Prepared) error {
	frame, err := p.Frame(func(payload []byte) (any, error) {
		return wsock.NewPreparedText(payload), nil
	})
	if err != nil {
		return err
	}
	return w.ws.WritePrepared(frame.(*wsock.PreparedFrame))
}

// SendPreparedBatch coalesces the batch's cached RFC 6455 frames into one
// WebSocket-layer write: K adjacent broadcast records reaching one
// connection cost one syscall instead of K. Frame building is shared across
// recipients exactly as in SendPrepared.
func (w *wsConn) SendPreparedBatch(ps []*sync.Prepared) error {
	if len(ps) == 0 {
		return nil
	}
	frames := w.fbuf[:0]
	for _, p := range ps {
		frame, err := p.Frame(func(payload []byte) (any, error) {
			return wsock.NewPreparedText(payload), nil
		})
		if err != nil {
			return err
		}
		frames = append(frames, frame.(*wsock.PreparedFrame))
	}
	w.fbuf = frames[:0] // retain grown capacity, drop the frame refs' length
	return w.ws.WritePreparedBatch(frames)
}

// SetWriteDeadline bounds how long writes on the underlying socket may block.
func (w *wsConn) SetWriteDeadline(t time.Time) error { return w.ws.SetWriteDeadline(t) }

// SetReadDeadline bounds how long blocking reads on the underlying socket
// may block. A deadline hit may leave the stream mid-frame, so the
// connection must be dropped afterwards (same contract as write deadlines).
func (w *wsConn) SetReadDeadline(t time.Time) error { return w.ws.SetReadDeadline(t) }

// StartPoll switches the underlying WebSocket into non-blocking read mode
// and installs the message delivery chain: wsock lease → DecodeMessageInto
// → onMsg. The decoded Message is stack-scoped per delivery; DecodeMessageInto
// copies what it keeps out of the lease, so nothing aliases the read buffer
// past the callback.
func (w *wsConn) StartPoll(onMsg func(m sync.Message) error) (syscall.RawConn, error) {
	rc, err := w.ws.StartPoll()
	if err != nil {
		return nil, err
	}
	w.pollFeed = func(data []byte) error {
		var m sync.Message
		if derr := sync.DecodeMessageInto(data, &m); derr != nil {
			return derr
		}
		return onMsg(m)
	}
	return rc, nil
}

// PollRecv drains the socket through the incremental reassembly machine,
// delivering each completed message to the StartPoll callback.
func (w *wsConn) PollRecv(scratch []byte) (bool, error) {
	return w.ws.PollRead(scratch, w.pollFeed)
}

// OnClose forwards the close hook to the WebSocket layer, which fires it
// exactly once on either local or remote close.
func (w *wsConn) OnClose(fn func()) { w.ws.OnClose(fn) }

func (w *wsConn) Recv() (sync.Message, error) {
	var m sync.Message
	if err := w.recvInto(&m); err != nil {
		return sync.Message{}, err
	}
	return m, nil
}

// recvInto decodes the next message straight out of the wsock read lease;
// DecodeMessageInto copies everything it keeps, so the lease is not retained
// past this call.
func (w *wsConn) recvInto(m *sync.Message) error {
	if err := w.pendingErr; err != nil {
		w.pendingErr = nil
		return err
	}
	data, err := w.ws.ReadTextLease()
	if err != nil {
		return err
	}
	return sync.DecodeMessageInto(data, m)
}

// RecvBatch blocks for the first message, then decodes every further frame
// already buffered on the connection via the non-blocking lease. Errors hit
// after the first decode are deferred to the next receive call so the batch
// in hand is not lost.
func (w *wsConn) RecvBatch(dst []sync.Message) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("transport: RecvBatch with empty dst")
	}
	if err := w.recvInto(&dst[0]); err != nil {
		return 0, err
	}
	n := 1
	for n < len(dst) {
		data, ok, err := w.ws.TryReadTextLease()
		if err != nil {
			w.pendingErr = err
			break
		}
		if !ok {
			break
		}
		if err := sync.DecodeMessageInto(data, &dst[n]); err != nil {
			w.pendingErr = err
			break
		}
		n++
	}
	return n, nil
}

func (w *wsConn) Close() error { return w.ws.Close() }
