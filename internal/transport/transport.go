// Package transport provides the reliable, in-order duplex message links the
// formal model assumes (paper §2.4). Two implementations: an in-process pipe
// for tests and simulations, and an adapter over the wsock WebSocket layer
// for the live system. Both carry sync.Message values as JSON.
package transport

import (
	"errors"
	gosync "sync"

	"crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

// Conn is one endpoint of a reliable in-order duplex message link.
type Conn interface {
	// Send transmits one message. It must not be called concurrently with
	// itself.
	Send(m sync.Message) error
	// SendPrepared transmits a message prepared once for many recipients:
	// implementations reuse the shared encoding (and, where the wire format
	// allows, the shared frame) instead of re-encoding per connection. Same
	// concurrency contract as Send.
	SendPrepared(p *sync.Prepared) error
	// Recv blocks until the next message arrives or the link closes.
	Recv() (sync.Message, error)
	// RecvBatch blocks until at least one message arrives, then fills dst
	// with any further messages already available on the link without
	// blocking, and returns how many were stored. A receiver draining
	// bursts this way pays one wakeup for the whole burst instead of one
	// per message. Same concurrency contract as Recv (no concurrent calls
	// with Recv or itself); dst must be non-empty.
	RecvBatch(dst []sync.Message) (int, error)
	// Close shuts the link down; pending and future Recv calls fail.
	Close() error
}

// ErrPipeClosed is returned on operations over a closed pipe.
var ErrPipeClosed = errors.New("transport: pipe closed")

// pipeShared is the closure state both ends of a pipe share: closing either
// end closes the link exactly once.
type pipeShared struct {
	done chan struct{}
	once gosync.Once
}

func (s *pipeShared) close() { s.once.Do(func() { close(s.done) }) }

// pipeEnd is one side of an in-memory link.
type pipeEnd struct {
	in     chan sync.Message
	out    chan sync.Message
	shared *pipeShared
}

// Pipe returns the two endpoints of an in-process reliable in-order link
// with the given buffer capacity per direction.
func Pipe(buf int) (Conn, Conn) {
	ab := make(chan sync.Message, buf)
	ba := make(chan sync.Message, buf)
	shared := &pipeShared{done: make(chan struct{})}
	a := &pipeEnd{in: ba, out: ab, shared: shared}
	b := &pipeEnd{in: ab, out: ba, shared: shared}
	return a, b
}

func (p *pipeEnd) Send(m sync.Message) error {
	// Check closure first: with buffer space available, a two-way select
	// would otherwise pick between "closed" and "sent" at random.
	select {
	case <-p.shared.done:
		return ErrPipeClosed
	default:
	}
	select {
	case <-p.shared.done:
		return ErrPipeClosed
	case p.out <- m:
		return nil
	}
}

// SendPrepared delivers the message value directly: in-process pipes never
// serialize, so a shared encoding has nothing to save.
func (p *pipeEnd) SendPrepared(prep *sync.Prepared) error { return p.Send(prep.Message()) }

func (p *pipeEnd) Recv() (sync.Message, error) {
	select {
	case <-p.shared.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-p.in:
			return m, nil
		default:
			return sync.Message{}, ErrPipeClosed
		}
	case m := <-p.in:
		return m, nil
	}
}

// RecvBatch blocks for the first message, then drains whatever else is
// already sitting in the channel buffer.
func (p *pipeEnd) RecvBatch(dst []sync.Message) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("transport: RecvBatch with empty dst")
	}
	m, err := p.Recv()
	if err != nil {
		return 0, err
	}
	dst[0] = m
	n := 1
	for n < len(dst) {
		select {
		case m := <-p.in:
			dst[n] = m
			n++
		default:
			return n, nil
		}
	}
	return n, nil
}

func (p *pipeEnd) Close() error {
	p.shared.close()
	return nil
}

// wsConn adapts a WebSocket connection to the message link interface. The
// encode buffer and the wsock read lease make steady-state Send and Recv
// allocation-free apart from what a decoded message itself retains.
type wsConn struct {
	ws   *wsock.Conn
	ebuf []byte // reusable encode buffer; safe because Send calls never overlap
	// pendingErr defers a read error hit mid-batch so RecvBatch can deliver
	// the messages decoded before it; the next receive call returns it.
	pendingErr error
}

// WrapWS returns a message link over an established WebSocket connection.
func WrapWS(ws *wsock.Conn) Conn { return &wsConn{ws: ws} }

func (w *wsConn) Send(m sync.Message) error {
	if err := sync.ValidateEncodable(m); err != nil {
		return err
	}
	w.ebuf = sync.AppendMessage(w.ebuf[:0], m)
	return w.ws.WriteText(w.ebuf)
}

// SendPrepared writes the shared RFC 6455 frame built once per broadcast
// (and cached inside the Prepared), so N recipients cost one JSON encode and
// one frame build instead of N of each.
func (w *wsConn) SendPrepared(p *sync.Prepared) error {
	frame, err := p.Frame(func(payload []byte) (any, error) {
		return wsock.NewPreparedText(payload), nil
	})
	if err != nil {
		return err
	}
	return w.ws.WritePrepared(frame.(*wsock.PreparedFrame))
}

func (w *wsConn) Recv() (sync.Message, error) {
	var m sync.Message
	if err := w.recvInto(&m); err != nil {
		return sync.Message{}, err
	}
	return m, nil
}

// recvInto decodes the next message straight out of the wsock read lease;
// DecodeMessageInto copies everything it keeps, so the lease is not retained
// past this call.
func (w *wsConn) recvInto(m *sync.Message) error {
	if err := w.pendingErr; err != nil {
		w.pendingErr = nil
		return err
	}
	data, err := w.ws.ReadTextLease()
	if err != nil {
		return err
	}
	return sync.DecodeMessageInto(data, m)
}

// RecvBatch blocks for the first message, then decodes every further frame
// already buffered on the connection via the non-blocking lease. Errors hit
// after the first decode are deferred to the next receive call so the batch
// in hand is not lost.
func (w *wsConn) RecvBatch(dst []sync.Message) (int, error) {
	if len(dst) == 0 {
		return 0, errors.New("transport: RecvBatch with empty dst")
	}
	if err := w.recvInto(&dst[0]); err != nil {
		return 0, err
	}
	n := 1
	for n < len(dst) {
		data, ok, err := w.ws.TryReadTextLease()
		if err != nil {
			w.pendingErr = err
			break
		}
		if !ok {
			break
		}
		if err := sync.DecodeMessageInto(data, &dst[n]); err != nil {
			w.pendingErr = err
			break
		}
		n++
	}
	return n, nil
}

func (w *wsConn) Close() error { return w.ws.Close() }
