// Package transport provides the reliable, in-order duplex message links the
// formal model assumes (paper §2.4). Two implementations: an in-process pipe
// for tests and simulations, and an adapter over the wsock WebSocket layer
// for the live system. Both carry sync.Message values as JSON.
package transport

import (
	"errors"
	gosync "sync"

	"crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

// Conn is one endpoint of a reliable in-order duplex message link.
type Conn interface {
	// Send transmits one message. It must not be called concurrently with
	// itself.
	Send(m sync.Message) error
	// SendPrepared transmits a message prepared once for many recipients:
	// implementations reuse the shared encoding (and, where the wire format
	// allows, the shared frame) instead of re-encoding per connection. Same
	// concurrency contract as Send.
	SendPrepared(p *sync.Prepared) error
	// Recv blocks until the next message arrives or the link closes.
	Recv() (sync.Message, error)
	// Close shuts the link down; pending and future Recv calls fail.
	Close() error
}

// ErrPipeClosed is returned on operations over a closed pipe.
var ErrPipeClosed = errors.New("transport: pipe closed")

// pipeShared is the closure state both ends of a pipe share: closing either
// end closes the link exactly once.
type pipeShared struct {
	done chan struct{}
	once gosync.Once
}

func (s *pipeShared) close() { s.once.Do(func() { close(s.done) }) }

// pipeEnd is one side of an in-memory link.
type pipeEnd struct {
	in     chan sync.Message
	out    chan sync.Message
	shared *pipeShared
}

// Pipe returns the two endpoints of an in-process reliable in-order link
// with the given buffer capacity per direction.
func Pipe(buf int) (Conn, Conn) {
	ab := make(chan sync.Message, buf)
	ba := make(chan sync.Message, buf)
	shared := &pipeShared{done: make(chan struct{})}
	a := &pipeEnd{in: ba, out: ab, shared: shared}
	b := &pipeEnd{in: ab, out: ba, shared: shared}
	return a, b
}

func (p *pipeEnd) Send(m sync.Message) error {
	// Check closure first: with buffer space available, a two-way select
	// would otherwise pick between "closed" and "sent" at random.
	select {
	case <-p.shared.done:
		return ErrPipeClosed
	default:
	}
	select {
	case <-p.shared.done:
		return ErrPipeClosed
	case p.out <- m:
		return nil
	}
}

// SendPrepared delivers the message value directly: in-process pipes never
// serialize, so a shared encoding has nothing to save.
func (p *pipeEnd) SendPrepared(prep *sync.Prepared) error { return p.Send(prep.Message()) }

func (p *pipeEnd) Recv() (sync.Message, error) {
	select {
	case <-p.shared.done:
		// Drain anything already queued before reporting closure.
		select {
		case m := <-p.in:
			return m, nil
		default:
			return sync.Message{}, ErrPipeClosed
		}
	case m := <-p.in:
		return m, nil
	}
}

func (p *pipeEnd) Close() error {
	p.shared.close()
	return nil
}

// wsConn adapts a WebSocket connection to the message link interface.
type wsConn struct {
	ws *wsock.Conn
}

// WrapWS returns a message link over an established WebSocket connection.
func WrapWS(ws *wsock.Conn) Conn { return &wsConn{ws: ws} }

func (w *wsConn) Send(m sync.Message) error {
	data, err := sync.EncodeMessage(m)
	if err != nil {
		return err
	}
	return w.ws.WriteText(data)
}

// SendPrepared writes the shared RFC 6455 frame built once per broadcast
// (and cached inside the Prepared), so N recipients cost one JSON encode and
// one frame build instead of N of each.
func (w *wsConn) SendPrepared(p *sync.Prepared) error {
	frame, err := p.Frame(func(payload []byte) (any, error) {
		return wsock.NewPreparedText(payload), nil
	})
	if err != nil {
		return err
	}
	return w.ws.WritePrepared(frame.(*wsock.PreparedFrame))
}

func (w *wsConn) Recv() (sync.Message, error) {
	data, err := w.ws.ReadText()
	if err != nil {
		return sync.Message{}, err
	}
	return sync.DecodeMessage(data)
}

func (w *wsConn) Close() error { return w.ws.Close() }
