package transport

import (
	"errors"
	"testing"
	"time"

	"crowdfill/internal/sync"
)

// TestPipeSendPreparedBatch: the pipe delivers a prepared batch as the same
// ordered message sequence as individual sends.
func TestPipeSendPreparedBatch(t *testing.T) {
	a, b := Pipe(16)
	ps := make([]*sync.Prepared, 5)
	for i := range ps {
		ps[i] = sync.NewPrepared(sync.Message{Type: sync.MsgUpvote, Seq: int64(i)})
	}
	if err := a.SendPreparedBatch(ps); err != nil {
		t.Fatalf("SendPreparedBatch: %v", err)
	}
	for i := range ps {
		m, err := b.Recv()
		if err != nil || m.Seq != int64(i) {
			t.Fatalf("message %d: %+v, %v", i, m, err)
		}
	}
	a.Close()
	if err := a.SendPreparedBatch(ps); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("batch after close err = %v", err)
	}
}

// TestPipeWriteDeadline: a send into a full pipe fails with ErrWriteTimeout
// once the deadline passes, and clearing the deadline restores blocking sends.
func TestPipeWriteDeadline(t *testing.T) {
	a, _ := Pipe(1)
	if err := a.Send(sync.Message{Seq: 1}); err != nil {
		t.Fatal(err)
	}
	// Buffer full, nobody reading: the deadline must unblock the send.
	a.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	start := time.Now()
	err := a.Send(sync.Message{Seq: 2})
	if !errors.Is(err, ErrWriteTimeout) {
		t.Fatalf("send into full pipe err = %v, want ErrWriteTimeout", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("deadline send blocked %v", time.Since(start))
	}
	// An already-expired deadline fails immediately.
	a.SetWriteDeadline(time.Now().Add(-time.Second))
	if err := a.Send(sync.Message{Seq: 3}); !errors.Is(err, ErrWriteTimeout) {
		t.Fatalf("expired deadline err = %v", err)
	}
	// The zero time clears the bound.
	a.SetWriteDeadline(time.Time{})
	done := make(chan error, 1)
	go func() {
		done <- a.Send(sync.Message{Seq: 4})
	}()
	select {
	case err := <-done:
		t.Fatalf("cleared-deadline send returned early: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	a.Close()
	if err := <-done; !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("send unblocked by close err = %v", err)
	}
}

// TestWSSendPreparedBatch: over a real socket, a prepared batch arrives as
// the identical ordered message sequence the per-record path would deliver,
// and batches interleave cleanly with individual prepared sends.
func TestWSSendPreparedBatch(t *testing.T) {
	cli, srv := wsPair(t)
	ps := make([]*sync.Prepared, 6)
	for i := range ps {
		ps[i] = sync.NewPrepared(sync.Message{Type: sync.MsgUpvote, Row: "r-1", Seq: int64(i)})
	}
	if err := srv.SendPreparedBatch(ps); err != nil {
		t.Fatalf("SendPreparedBatch: %v", err)
	}
	if err := srv.SendPrepared(sync.NewPrepared(sync.Message{Type: sync.MsgDone, Seq: 99})); err != nil {
		t.Fatal(err)
	}
	// A second batch reusing the adapter's frame scratch.
	if err := srv.SendPreparedBatch(ps[:2]); err != nil {
		t.Fatalf("second batch: %v", err)
	}
	wantSeqs := []int64{0, 1, 2, 3, 4, 5, 99, 0, 1}
	for i, want := range wantSeqs {
		m, err := cli.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Seq != want {
			t.Fatalf("recv %d: Seq = %d, want %d", i, m.Seq, want)
		}
	}
}

// TestWSBatchWriteDeadline: a batched send on a stalled socket fails once the
// write deadline passes instead of blocking forever — the flusher pool's
// stalled-client backstop.
func TestWSBatchWriteDeadline(t *testing.T) {
	cli, srv := wsPair(t)
	defer cli.Close()
	srv.SetWriteDeadline(time.Now().Add(50 * time.Millisecond))
	// Nobody reads cli, so the kernel buffers eventually fill; keep batching
	// until the deadline surfaces.
	big := make([]byte, 1<<16)
	for i := range big {
		big[i] = 'v'
	}
	p := sync.NewPrepared(sync.Message{Type: sync.MsgInsert, Worker: string(big)})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if err := srv.SendPreparedBatch([]*sync.Prepared{p, p}); err != nil {
			return // deadline (or teardown) surfaced — the backstop works
		}
	}
	t.Fatal("batched sends never failed on a stalled socket with a write deadline")
}
