package transport

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	m := sync.Message{Type: sync.MsgInsert, Row: "x-1", Origin: "c1"}
	if err := a.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Type != m.Type || got.Row != m.Row {
		t.Fatalf("got %+v", got)
	}
	// And the other direction.
	if err := b.Send(sync.Message{Type: sync.MsgDone}); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || got.Type != sync.MsgDone {
		t.Fatalf("reverse recv = %+v, %v", got, err)
	}
}

func TestPipeOrdering(t *testing.T) {
	a, b := Pipe(100)
	for i := 0; i < 100; i++ {
		if err := a.Send(sync.Message{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := b.Recv()
		if err != nil || m.Seq != int64(i) {
			t.Fatalf("message %d: %+v, %v", i, m, err)
		}
	}
}

func TestPipeCloseDrainsThenFails(t *testing.T) {
	a, b := Pipe(4)
	a.Send(sync.Message{Seq: 1})
	a.Close()
	if m, err := b.Recv(); err != nil || m.Seq != 1 {
		t.Fatalf("queued message lost on close: %+v, %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("recv after close err = %v", err)
	}
	if err := b.Send(sync.Message{}); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("send after close err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWSAdapterRoundTrip(t *testing.T) {
	ready := make(chan Conn, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := wsock.Upgrade(w, r)
		if err != nil {
			return
		}
		ready <- WrapWS(ws)
	}))
	defer srv.Close()
	ws, err := wsock.Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	cli := WrapWS(ws)
	defer cli.Close()
	srvConn := <-ready
	defer srvConn.Close()

	m := sync.Message{
		Type: sync.MsgReplace, Row: "a-1", NewRow: "a-2",
		Vec: model.VectorOf("Messi", "", "FW"), Col: 2, Val: "FW",
		Origin: "c1", Worker: "w1", Seq: 3, TS: 99,
	}
	if err := cli.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := srvConn.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.NewRow != m.NewRow || !got.Vec.Equal(m.Vec) || got.TS != 99 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Snapshot payloads survive the wire.
	rep := sync.NewReplica(model.MustSchema("T", []model.Column{{Name: "a"}}))
	rep.Insert("s-1")
	if err := srvConn.Send(sync.Message{Type: sync.MsgSnapshot, Snapshot: rep.TakeSnapshot()}); err != nil {
		t.Fatal(err)
	}
	snap, err := cli.Recv()
	if err != nil || snap.Snapshot == nil || len(snap.Snapshot.Rows) != 1 {
		t.Fatalf("snapshot over wire = %+v, %v", snap, err)
	}
}

// wsPair establishes a client/server link over a real socket for tests that
// exercise the WebSocket adapter end to end.
func wsPair(t *testing.T) (cli, srv Conn) {
	t.Helper()
	ready := make(chan Conn, 1)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := wsock.Upgrade(w, r)
		if err != nil {
			return
		}
		ready <- WrapWS(ws)
	}))
	t.Cleanup(hs.Close)
	ws, err := wsock.Dial("ws" + strings.TrimPrefix(hs.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	cli = WrapWS(ws)
	t.Cleanup(func() { cli.Close() })
	srv = <-ready
	t.Cleanup(func() { srv.Close() })
	return cli, srv
}

func TestPipeRecvBatch(t *testing.T) {
	a, b := Pipe(16)
	for i := 0; i < 5; i++ {
		if err := a.Send(sync.Message{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]sync.Message, 8)
	n, err := b.RecvBatch(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("RecvBatch drained %d messages, want 5", n)
	}
	for i := 0; i < n; i++ {
		if dst[i].Seq != int64(i) {
			t.Fatalf("batch out of order: dst[%d].Seq = %d", i, dst[i].Seq)
		}
	}
	// A full dst stops the drain without losing messages.
	for i := 0; i < 3; i++ {
		a.Send(sync.Message{Seq: int64(10 + i)})
	}
	small := make([]sync.Message, 2)
	if n, err := b.RecvBatch(small); err != nil || n != 2 {
		t.Fatalf("bounded batch = %d, %v", n, err)
	}
	if m, err := b.Recv(); err != nil || m.Seq != 12 {
		t.Fatalf("message after bounded batch = %+v, %v", m, err)
	}
	a.Close()
	if _, err := b.RecvBatch(dst); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("RecvBatch after close err = %v", err)
	}
}

// TestWSRecvBatch: all messages sent before close arrive, in order, across
// however many batches the socket timing produces, and the close surfaces as
// an error only after the data is delivered.
func TestWSRecvBatch(t *testing.T) {
	cli, srv := wsPair(t)
	const total = 25
	for i := 0; i < total; i++ {
		if err := cli.Send(sync.Message{Type: sync.MsgUpvote, Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cli.Close()
	var got []sync.Message
	dst := make([]sync.Message, 8)
	for {
		n, err := srv.RecvBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			if len(got) != total {
				t.Fatalf("lost messages: got %d of %d before error %v", len(got), total, err)
			}
			break
		}
	}
	for i, m := range got {
		if m.Seq != int64(i) {
			t.Fatalf("out of order: got[%d].Seq = %d", i, m.Seq)
		}
	}
}

// TestWSSendRecvAllocs: the full transport hot path — append-encode, pooled
// single-write frame, lease read, in-place decode — is allocation-free in
// steady state for messages that retain nothing (vote messages, the
// dominant traffic). The client side includes masking; tolerance 1 covers
// the amortized mask-pool refill.
func TestWSSendRecvAllocs(t *testing.T) {
	cli, srv := wsPair(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Recv()
			if err != nil {
				return
			}
			if err := srv.Send(m); err != nil {
				return
			}
		}
	}()
	m := sync.Message{Type: sync.MsgUpvote, Seq: 42, TS: 7}
	roundTrip := func() {
		if err := cli.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm pooled buffers on both sides
	allocs := testing.AllocsPerRun(300, roundTrip)
	if allocs > 1 {
		t.Errorf("Send+Recv round trip allocs/op = %v, want <= 1", allocs)
	}
	cli.Close()
	<-done
}

// TestPipeReadDeadline: the receive side of the Send/Recv deadline symmetry.
// A timed-out pipe receive consumes nothing; data already queued beats an
// expired deadline; clearing the deadline restores indefinite blocking.
func TestPipeReadDeadline(t *testing.T) {
	a, b := Pipe(4)
	defer a.Close()

	// Expired deadline with an empty queue: immediate timeout.
	if err := b.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrReadTimeout) {
		t.Fatalf("Recv past deadline err = %v, want ErrReadTimeout", err)
	}
	if !IsTimeout(ErrReadTimeout) {
		t.Fatal("IsTimeout(ErrReadTimeout) = false")
	}

	// Queued data beats the expired deadline, and the timeout consumed
	// nothing beforehand.
	if err := a.Send(sync.Message{Seq: 7}); err != nil {
		t.Fatal(err)
	}
	if m, err := b.Recv(); err != nil || m.Seq != 7 {
		t.Fatalf("queued message after timeout = %+v, %v", m, err)
	}

	// A future deadline blocks until it fires.
	if err := b.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := b.Recv(); !errors.Is(err, ErrReadTimeout) {
		t.Fatalf("blocking Recv err = %v, want ErrReadTimeout", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("Recv returned before the deadline")
	}

	// The link survives timeouts: clear the deadline and deliver.
	if err := b.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		a.Send(sync.Message{Seq: 8})
	}()
	if m, err := b.Recv(); err != nil || m.Seq != 8 {
		t.Fatalf("Recv after clearing deadline = %+v, %v", m, err)
	}
}

// TestWSReadDeadline: the WebSocket adapter forwards read deadlines to the
// socket, and the resulting error is classified by IsTimeout.
func TestWSReadDeadline(t *testing.T) {
	cli, srv := wsPair(t)
	_ = cli
	if err := srv.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	_, err := srv.Recv()
	if err == nil {
		t.Fatal("Recv with no traffic returned a message")
	}
	if !IsTimeout(err) {
		t.Fatalf("IsTimeout(%v) = false, want true", err)
	}
}

// TestWSPollConn: the adapter-level readiness contract — StartPoll exposes a
// descriptor, PollRecv delivers decoded messages through the registered
// callback, blocking Recv is refused afterwards, and a peer close surfaces
// as an error with the OnClose hook fired.
func TestWSPollConn(t *testing.T) {
	cli, srv := wsPair(t)
	pc, ok := srv.(PollConn)
	if !ok {
		t.Fatal("wsConn does not implement PollConn")
	}
	var got []sync.Message
	rc, err := pc.StartPoll(func(m sync.Message) error {
		got = append(got, m)
		return nil
	})
	if err != nil {
		t.Fatalf("StartPoll: %v", err)
	}
	if rc == nil {
		t.Fatal("StartPoll returned a nil RawConn")
	}
	if _, err := srv.Recv(); err == nil {
		t.Fatal("blocking Recv permitted in poll mode")
	}
	fired := make(chan struct{})
	pc.OnClose(func() { close(fired) })

	for i := 0; i < 3; i++ {
		if err := cli.Send(sync.Message{Type: sync.MsgUpvote, Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	scratch := make([]byte, 32<<10)
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < 3 {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of 3 messages", len(got))
		}
		more, err := pc.PollRecv(scratch)
		if err != nil {
			t.Fatalf("PollRecv: %v", err)
		}
		if !more {
			time.Sleep(time.Millisecond)
		}
	}
	for i, m := range got {
		if m.Type != sync.MsgUpvote || m.Seq != int64(i) {
			t.Fatalf("message %d = %+v", i, m)
		}
	}

	cli.Close()
	for {
		if time.Now().After(deadline) {
			t.Fatal("peer close never surfaced")
		}
		if _, err := pc.PollRecv(scratch); err != nil {
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("OnClose hook never fired")
	}
}
