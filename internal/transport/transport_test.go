package transport

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	m := sync.Message{Type: sync.MsgInsert, Row: "x-1", Origin: "c1"}
	if err := a.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Type != m.Type || got.Row != m.Row {
		t.Fatalf("got %+v", got)
	}
	// And the other direction.
	if err := b.Send(sync.Message{Type: sync.MsgDone}); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || got.Type != sync.MsgDone {
		t.Fatalf("reverse recv = %+v, %v", got, err)
	}
}

func TestPipeOrdering(t *testing.T) {
	a, b := Pipe(100)
	for i := 0; i < 100; i++ {
		if err := a.Send(sync.Message{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := b.Recv()
		if err != nil || m.Seq != int64(i) {
			t.Fatalf("message %d: %+v, %v", i, m, err)
		}
	}
}

func TestPipeCloseDrainsThenFails(t *testing.T) {
	a, b := Pipe(4)
	a.Send(sync.Message{Seq: 1})
	a.Close()
	if m, err := b.Recv(); err != nil || m.Seq != 1 {
		t.Fatalf("queued message lost on close: %+v, %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("recv after close err = %v", err)
	}
	if err := b.Send(sync.Message{}); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("send after close err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWSAdapterRoundTrip(t *testing.T) {
	ready := make(chan Conn, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := wsock.Upgrade(w, r)
		if err != nil {
			return
		}
		ready <- WrapWS(ws)
	}))
	defer srv.Close()
	ws, err := wsock.Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	cli := WrapWS(ws)
	defer cli.Close()
	srvConn := <-ready
	defer srvConn.Close()

	m := sync.Message{
		Type: sync.MsgReplace, Row: "a-1", NewRow: "a-2",
		Vec: model.VectorOf("Messi", "", "FW"), Col: 2, Val: "FW",
		Origin: "c1", Worker: "w1", Seq: 3, TS: 99,
	}
	if err := cli.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := srvConn.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.NewRow != m.NewRow || !got.Vec.Equal(m.Vec) || got.TS != 99 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Snapshot payloads survive the wire.
	rep := sync.NewReplica(model.MustSchema("T", []model.Column{{Name: "a"}}))
	rep.Insert("s-1")
	if err := srvConn.Send(sync.Message{Type: sync.MsgSnapshot, Snapshot: rep.TakeSnapshot()}); err != nil {
		t.Fatal(err)
	}
	snap, err := cli.Recv()
	if err != nil || snap.Snapshot == nil || len(snap.Snapshot.Rows) != 1 {
		t.Fatalf("snapshot over wire = %+v, %v", snap, err)
	}
}

// wsPair establishes a client/server link over a real socket for tests that
// exercise the WebSocket adapter end to end.
func wsPair(t *testing.T) (cli, srv Conn) {
	t.Helper()
	ready := make(chan Conn, 1)
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := wsock.Upgrade(w, r)
		if err != nil {
			return
		}
		ready <- WrapWS(ws)
	}))
	t.Cleanup(hs.Close)
	ws, err := wsock.Dial("ws" + strings.TrimPrefix(hs.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	cli = WrapWS(ws)
	t.Cleanup(func() { cli.Close() })
	srv = <-ready
	t.Cleanup(func() { srv.Close() })
	return cli, srv
}

func TestPipeRecvBatch(t *testing.T) {
	a, b := Pipe(16)
	for i := 0; i < 5; i++ {
		if err := a.Send(sync.Message{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]sync.Message, 8)
	n, err := b.RecvBatch(dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("RecvBatch drained %d messages, want 5", n)
	}
	for i := 0; i < n; i++ {
		if dst[i].Seq != int64(i) {
			t.Fatalf("batch out of order: dst[%d].Seq = %d", i, dst[i].Seq)
		}
	}
	// A full dst stops the drain without losing messages.
	for i := 0; i < 3; i++ {
		a.Send(sync.Message{Seq: int64(10 + i)})
	}
	small := make([]sync.Message, 2)
	if n, err := b.RecvBatch(small); err != nil || n != 2 {
		t.Fatalf("bounded batch = %d, %v", n, err)
	}
	if m, err := b.Recv(); err != nil || m.Seq != 12 {
		t.Fatalf("message after bounded batch = %+v, %v", m, err)
	}
	a.Close()
	if _, err := b.RecvBatch(dst); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("RecvBatch after close err = %v", err)
	}
}

// TestWSRecvBatch: all messages sent before close arrive, in order, across
// however many batches the socket timing produces, and the close surfaces as
// an error only after the data is delivered.
func TestWSRecvBatch(t *testing.T) {
	cli, srv := wsPair(t)
	const total = 25
	for i := 0; i < total; i++ {
		if err := cli.Send(sync.Message{Type: sync.MsgUpvote, Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	cli.Close()
	var got []sync.Message
	dst := make([]sync.Message, 8)
	for {
		n, err := srv.RecvBatch(dst)
		got = append(got, dst[:n]...)
		if err != nil {
			if len(got) != total {
				t.Fatalf("lost messages: got %d of %d before error %v", len(got), total, err)
			}
			break
		}
	}
	for i, m := range got {
		if m.Seq != int64(i) {
			t.Fatalf("out of order: got[%d].Seq = %d", i, m.Seq)
		}
	}
}

// TestWSSendRecvAllocs: the full transport hot path — append-encode, pooled
// single-write frame, lease read, in-place decode — is allocation-free in
// steady state for messages that retain nothing (vote messages, the
// dominant traffic). The client side includes masking; tolerance 1 covers
// the amortized mask-pool refill.
func TestWSSendRecvAllocs(t *testing.T) {
	cli, srv := wsPair(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			m, err := srv.Recv()
			if err != nil {
				return
			}
			if err := srv.Send(m); err != nil {
				return
			}
		}
	}()
	m := sync.Message{Type: sync.MsgUpvote, Seq: 42, TS: 7}
	roundTrip := func() {
		if err := cli.Send(m); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // warm pooled buffers on both sides
	allocs := testing.AllocsPerRun(300, roundTrip)
	if allocs > 1 {
		t.Errorf("Send+Recv round trip allocs/op = %v, want <= 1", allocs)
	}
	cli.Close()
	<-done
}
