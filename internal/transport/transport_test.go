package transport

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
	"crowdfill/internal/wsock"
)

func TestPipeRoundTrip(t *testing.T) {
	a, b := Pipe(4)
	m := sync.Message{Type: sync.MsgInsert, Row: "x-1", Origin: "c1"}
	if err := a.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.Type != m.Type || got.Row != m.Row {
		t.Fatalf("got %+v", got)
	}
	// And the other direction.
	if err := b.Send(sync.Message{Type: sync.MsgDone}); err != nil {
		t.Fatal(err)
	}
	if got, err := a.Recv(); err != nil || got.Type != sync.MsgDone {
		t.Fatalf("reverse recv = %+v, %v", got, err)
	}
}

func TestPipeOrdering(t *testing.T) {
	a, b := Pipe(100)
	for i := 0; i < 100; i++ {
		if err := a.Send(sync.Message{Seq: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		m, err := b.Recv()
		if err != nil || m.Seq != int64(i) {
			t.Fatalf("message %d: %+v, %v", i, m, err)
		}
	}
}

func TestPipeCloseDrainsThenFails(t *testing.T) {
	a, b := Pipe(4)
	a.Send(sync.Message{Seq: 1})
	a.Close()
	if m, err := b.Recv(); err != nil || m.Seq != 1 {
		t.Fatalf("queued message lost on close: %+v, %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("recv after close err = %v", err)
	}
	if err := b.Send(sync.Message{}); !errors.Is(err, ErrPipeClosed) {
		t.Fatalf("send after close err = %v", err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestWSAdapterRoundTrip(t *testing.T) {
	ready := make(chan Conn, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ws, err := wsock.Upgrade(w, r)
		if err != nil {
			return
		}
		ready <- WrapWS(ws)
	}))
	defer srv.Close()
	ws, err := wsock.Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		t.Fatal(err)
	}
	cli := WrapWS(ws)
	defer cli.Close()
	srvConn := <-ready
	defer srvConn.Close()

	m := sync.Message{
		Type: sync.MsgReplace, Row: "a-1", NewRow: "a-2",
		Vec: model.VectorOf("Messi", "", "FW"), Col: 2, Val: "FW",
		Origin: "c1", Worker: "w1", Seq: 3, TS: 99,
	}
	if err := cli.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	got, err := srvConn.Recv()
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if got.NewRow != m.NewRow || !got.Vec.Equal(m.Vec) || got.TS != 99 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Snapshot payloads survive the wire.
	rep := sync.NewReplica(model.MustSchema("T", []model.Column{{Name: "a"}}))
	rep.Insert("s-1")
	if err := srvConn.Send(sync.Message{Type: sync.MsgSnapshot, Snapshot: rep.TakeSnapshot()}); err != nil {
		t.Fatal(err)
	}
	snap, err := cli.Recv()
	if err != nil || snap.Snapshot == nil || len(snap.Snapshot.Rows) != 1 {
		t.Fatalf("snapshot over wire = %+v, %v", snap, err)
	}
}
