package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram of int64 samples (latencies in
// nanoseconds, sizes in bytes or records). Buckets are chosen at
// registration and never change, so Observe is a short bounded scan plus
// three atomic adds — no locking, no allocation. Each bucket counts samples
// ≤ its upper bound and > the previous bound (Prometheus `le` semantics); an
// implicit +Inf bucket catches the overflow.
//
// Bucket counts, sum, and count are updated with independent atomics, so a
// concurrent snapshot may observe a sample in the bucket array before it is
// reflected in count (or vice versa). The skew is bounded by the number of
// in-flight Observe calls — the standard lock-free histogram contract.
type Histogram struct {
	bounds []int64         // ascending upper bounds; implicit +Inf after the last
	counts []atomic.Uint64 // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	sum    atomic.Int64
	count  atomic.Uint64
}

func newHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one sample.
//
//lint:hotpath
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// BucketValue is one histogram bucket's snapshot: the count of samples at or
// below UpperBound (and above the previous bound). UpperBound is
// math.MaxInt64 for the +Inf bucket.
type BucketValue struct {
	UpperBound int64  `json:"le"`
	Count      uint64 `json:"count"`
}

// HistogramValue is one histogram's snapshot, with quantile estimates
// precomputed for human consumption (crowdfill-ctl, JSON dashboards).
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   uint64        `json:"count"`
	Sum     int64         `json:"sum"`
	Buckets []BucketValue `json:"buckets"`
	P50     int64         `json:"p50"`
	P90     int64         `json:"p90"`
	P99     int64         `json:"p99"`
}

func (h *Histogram) snapshot(name string) HistogramValue {
	hv := HistogramValue{
		Name:    name,
		Count:   h.count.Load(),
		Sum:     h.sum.Load(),
		Buckets: make([]BucketValue, len(h.counts)),
	}
	for i := range h.counts {
		ub := int64(math.MaxInt64)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		hv.Buckets[i] = BucketValue{UpperBound: ub, Count: h.counts[i].Load()}
	}
	hv.P50 = hv.Quantile(0.50)
	hv.P90 = hv.Quantile(0.90)
	hv.P99 = hv.Quantile(0.99)
	return hv
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the bucket containing the target rank, the standard
// fixed-bucket estimate. Samples in the +Inf bucket are attributed to the
// last finite bound (the estimate saturates there). Returns 0 for an empty
// histogram.
func (hv HistogramValue) Quantile(q float64) int64 {
	// Total from the bucket array itself so the estimate is internally
	// consistent even when Count is mid-update.
	var total uint64
	for _, b := range hv.Buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i, b := range hv.Buckets {
		if b.Count == 0 {
			continue
		}
		cum += b.Count
		if float64(cum) < rank {
			continue
		}
		if b.UpperBound == math.MaxInt64 {
			// Overflow bucket: saturate at the last finite bound.
			if i == 0 {
				return 0
			}
			return hv.Buckets[i-1].UpperBound
		}
		lower := int64(0)
		if i > 0 {
			lower = hv.Buckets[i-1].UpperBound
		}
		within := rank - float64(cum-b.Count)
		frac := within / float64(b.Count)
		return lower + int64(frac*float64(b.UpperBound-lower))
	}
	return hv.Buckets[len(hv.Buckets)-1].UpperBound
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at start
// and growing by factor (start, start*factor, ...), rounded to integers.
// Registration-time helper; allocates.
func ExpBuckets(start int64, factor float64, n int) []int64 {
	bounds := make([]int64, 0, n)
	v := float64(start)
	for i := 0; i < n; i++ {
		b := int64(math.Round(v))
		if len(bounds) > 0 && b <= bounds[len(bounds)-1] {
			b = bounds[len(bounds)-1] + 1
		}
		bounds = append(bounds, b)
		v *= factor
	}
	return bounds
}

// Standard bucket layouts. Latency spans 1µs–4.3s in nanoseconds; sizes span
// 64B–16MB; counts span 1–16384 (batch sizes, action deltas, cursor lag).
var (
	LatencyBuckets = ExpBuckets(1_000, 4, 12)
	SizeBuckets    = ExpBuckets(64, 4, 10)
	CountBuckets   = ExpBuckets(1, 4, 8)
)
