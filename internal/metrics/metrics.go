// Package metrics is CrowdFill's dependency-free runtime instrumentation
// plane: a registry of atomic counters, gauges, and fixed-bucket histograms
// with a consistent Snapshot API, Prometheus text exposition, and a
// fixed-size flight recorder for operational events (recorder.go). It is
// built only on the standard library, in the same spirit as the hand-rolled
// codec and the lint engine.
//
// Two disciplines shape the API:
//
//   - Observation is allocation-free. Counter.Inc/Add, Gauge.Set/Add, and
//     Histogram.Observe are //lint:hotpath roots — the hotalloc analyzer
//     proves they allocate nothing, so server hot paths (publish, flush,
//     frame I/O) may call them freely. Registration (Registry.Counter and
//     friends) allocates and locks; it happens once at construction time,
//     never per event.
//
//   - Instruments are process-shareable. Registering the same name twice
//     returns the same instrument (get-or-create), so every collection in a
//     multi-collection process accumulates into one set of process-wide
//     series; tests that need isolation build their own Registry.
//
// Naming follows Prometheus conventions: a `crowdfill_` prefix, `_total`
// suffix on counters, an explicit unit suffix on histograms (`_ns`,
// `_bytes`, `_records`). A name may carry a single `{key="value"}` label
// suffix (e.g. `crowdfill_client_drops_total{cause="cursor-lag"}`); labeled
// series of one base name share HELP/TYPE headers in the exposition.
package metrics

import (
	"math"
	"sort"
	gosync "sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//lint:hotpath
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
//
//lint:hotpath
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//lint:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (negative to decrease).
//
//lint:hotpath
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomic float64 value (monetary totals). Add is a CAS
// loop; it is not meant for hot paths.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by delta.
func (g *FloatGauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// cacheLine is the assumed cache-line size for shard padding. 64 bytes is
// right for every platform this targets; being wrong only costs false
// sharing, not correctness.
const cacheLine = 64

// paddedCell is one shard's counter, padded out to a full cache line so
// adjacent shards never share a line (the whole point of sharding).
type paddedCell struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// ShardedCounter is a counter split across cache-line-padded shards for
// write-heavy hot paths with many concurrent writers (frame and byte counts
// across hundreds of connection goroutines). Writers pick a shard
// explicitly — a stable per-connection or per-worker index — so the hot Add
// involves no runtime pinning, no hashing, and no contention between
// writers on different shards. Value folds the shards at read time.
type ShardedCounter struct {
	cells []paddedCell
	mask  uint32
}

// newShardedCounter sizes the shard array to the next power of two ≥ n (≥ 2)
// so shard selection is a mask, not a modulo.
func newShardedCounter(n int) *ShardedCounter {
	size := 2
	for size < n {
		size <<= 1
	}
	return &ShardedCounter{cells: make([]paddedCell, size), mask: uint32(size - 1)}
}

// Add adds n to the given shard. Any shard value is safe: it is masked into
// range, so callers may use a free-running connection sequence number.
//
//lint:hotpath
func (c *ShardedCounter) Add(shard uint32, n uint64) {
	c.cells[shard&c.mask].v.Add(n)
}

// Inc adds one to the given shard.
//
//lint:hotpath
func (c *ShardedCounter) Inc(shard uint32) {
	c.cells[shard&c.mask].v.Add(1)
}

// Value sums all shards. The fold is not a snapshot-consistent point read
// across shards, which is fine for monitoring (each shard is individually
// monotone).
func (c *ShardedCounter) Value() uint64 {
	var sum uint64
	for i := range c.cells {
		sum += c.cells[i].v.Load()
	}
	return sum
}

// Shards returns the shard count (a power of two).
func (c *ShardedCounter) Shards() int { return len(c.cells) }

// Registry holds named instruments. The zero value is not usable; call
// NewRegistry. Registration is get-or-create: the same name always returns
// the same instrument, and registering a name under two different kinds
// panics (a programming error, caught at construction time).
type Registry struct {
	mu       gosync.Mutex
	kinds    map[string]string
	help     map[string]string
	counters map[string]*Counter
	gauges   map[string]*Gauge
	floats   map[string]*FloatGauge
	sharded  map[string]*ShardedCounter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:    make(map[string]string),
		help:     make(map[string]string),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		floats:   make(map[string]*FloatGauge),
		sharded:  make(map[string]*ShardedCounter),
		hists:    make(map[string]*Histogram),
	}
}

// defaultRegistry is the process-wide registry (Default). Instruments of
// every collection in the process accumulate here unless a component was
// given its own registry.
var (
	defaultRegistry     *Registry
	defaultRegistryOnce gosync.Once
)

// Default returns the process-wide registry.
func Default() *Registry {
	defaultRegistryOnce.Do(func() { defaultRegistry = NewRegistry() })
	return defaultRegistry
}

// claim records name under kind, panicking if it is already registered as a
// different kind. Callers hold r.mu.
func (r *Registry) claim(name, kind, help string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic("metrics: " + name + " already registered as " + prev + ", not " + kind)
	}
	r.kinds[name] = kind
	if help != "" {
		r.help[name] = help
	}
}

// Counter returns the counter registered under name, creating it if needed.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "counter", help)
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "gauge", help)
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the float gauge registered under name, creating it if
// needed.
func (r *Registry) FloatGauge(name, help string) *FloatGauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "float", help)
	g, ok := r.floats[name]
	if !ok {
		g = &FloatGauge{}
		r.floats[name] = g
	}
	return g
}

// ShardedCounter returns the sharded counter registered under name, creating
// it with at least shards shards if needed. An existing instrument keeps its
// original shard count.
func (r *Registry) ShardedCounter(name, help string, shards int) *ShardedCounter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "sharded", help)
	c, ok := r.sharded[name]
	if !ok {
		c = newShardedCounter(shards)
		r.sharded[name] = c
	}
	return c
}

// Histogram returns the histogram registered under name, creating it with
// the given bucket upper bounds (ascending; an implicit +Inf bucket is
// appended) if needed. An existing instrument keeps its original buckets.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.claim(name, "histogram", help)
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue is one counter's snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeValue is one gauge's snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// FloatValue is one float gauge's snapshot.
type FloatValue struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Snapshot is a point-in-time view of every instrument in a registry,
// sorted by name within each kind. Sharded counters appear folded among
// Counters.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Floats     []FloatValue     `json:"floats,omitempty"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot captures the current value of every instrument. Values are read
// atomically per instrument; the snapshot as a whole is not a consistent
// cut, which is the normal monitoring contract.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s Snapshot
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, c := range r.sharded {
		s.Counters = append(s.Counters, CounterValue{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: name, Value: g.Value()})
	}
	for name, g := range r.floats {
		s.Floats = append(s.Floats, FloatValue{Name: name, Value: g.Value()})
	}
	for name, h := range r.hists {
		s.Histograms = append(s.Histograms, h.snapshot(name))
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Floats, func(i, j int) bool { return s.Floats[i].Name < s.Floats[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}
