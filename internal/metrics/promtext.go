package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// WritePrometheus writes the registry's current state in the Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers per base metric name,
// one sample line per series, histogram buckets as cumulative `le` series
// with `_sum` and `_count`. Series are sorted by name, so the output is
// deterministic for a given state — the golden-output tests rely on that.
func WritePrometheus(w io.Writer, r *Registry) error {
	s := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for name, h := range r.help {
		base, _ := splitName(name)
		if _, ok := help[base]; !ok {
			help[base] = h
		}
	}
	r.mu.Unlock()

	pw := &promWriter{w: w, help: help}
	for _, c := range s.Counters {
		pw.header(c.Name, "counter")
		pw.printf("%s %d\n", c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		pw.header(g.Name, "gauge")
		pw.printf("%s %d\n", g.Name, g.Value)
	}
	for _, g := range s.Floats {
		pw.header(g.Name, "gauge")
		pw.printf("%s %g\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		pw.header(h.Name, "histogram")
		base, labels := splitName(h.Name)
		var cum uint64
		for _, b := range h.Buckets {
			cum += b.Count
			le := "+Inf"
			if b.UpperBound != math.MaxInt64 {
				le = fmt.Sprintf("%d", b.UpperBound)
			}
			pw.printf("%s %d\n", seriesName(base+"_bucket", labels, "le", le), cum)
		}
		pw.printf("%s %d\n", seriesName(base+"_sum", labels, "", ""), h.Sum)
		pw.printf("%s %d\n", seriesName(base+"_count", labels, "", ""), h.Count)
	}
	return pw.err
}

type promWriter struct {
	w        io.Writer
	help     map[string]string
	lastBase string
	err      error
}

// header emits the HELP/TYPE block once per base name (labeled series of one
// base name are adjacent in the sorted snapshot).
func (pw *promWriter) header(name, kind string) {
	base, _ := splitName(name)
	if base == pw.lastBase {
		return
	}
	pw.lastBase = base
	if help := pw.help[base]; help != "" {
		pw.printf("# HELP %s %s\n", base, help)
	}
	pw.printf("# TYPE %s %s\n", base, kind)
}

func (pw *promWriter) printf(format string, args ...any) {
	if pw.err != nil {
		return
	}
	_, pw.err = fmt.Fprintf(pw.w, format, args...)
}

// splitName separates a series name into its base name and label suffix
// ("x_total{cause=\"lag\"}" → "x_total", `cause="lag"`).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// seriesName assembles a series name from a base, existing labels, and an
// optional extra label pair.
func seriesName(base, labels, extraKey, extraVal string) string {
	if extraKey != "" {
		pair := extraKey + `="` + extraVal + `"`
		if labels == "" {
			labels = pair
		} else {
			labels = labels + "," + pair
		}
	}
	if labels == "" {
		return base
	}
	return base + "{" + labels + "}"
}
