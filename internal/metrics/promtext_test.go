package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestPrometheusGolden locks the text exposition down byte for byte: header
// grouping for labeled series, cumulative histogram buckets, sorted order.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("crowdfill_pub_total", "publish calls").Add(3)
	r.Counter(`crowdfill_drops_total{cause="cursor-lag"}`, "client drops by cause").Add(2)
	r.Counter(`crowdfill_drops_total{cause="send-error"}`, "client drops by cause").Inc()
	r.Gauge("crowdfill_conns", "registered connections").Set(7)
	r.FloatGauge("crowdfill_paid_dollars", "bonuses paid").Set(1.5)
	sc := r.ShardedCounter("crowdfill_bytes_total", "bytes out", 4)
	sc.Add(0, 100)
	sc.Add(1, 23)
	h := r.Histogram("crowdfill_lat_ns", "publish latency", []int64{10, 100})
	h.Observe(5)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000)

	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	want := `# HELP crowdfill_bytes_total bytes out
# TYPE crowdfill_bytes_total counter
crowdfill_bytes_total 123
# HELP crowdfill_drops_total client drops by cause
# TYPE crowdfill_drops_total counter
crowdfill_drops_total{cause="cursor-lag"} 2
crowdfill_drops_total{cause="send-error"} 1
# HELP crowdfill_pub_total publish calls
# TYPE crowdfill_pub_total counter
crowdfill_pub_total 3
# HELP crowdfill_conns registered connections
# TYPE crowdfill_conns gauge
crowdfill_conns 7
# HELP crowdfill_paid_dollars bonuses paid
# TYPE crowdfill_paid_dollars gauge
crowdfill_paid_dollars 1.5
# HELP crowdfill_lat_ns publish latency
# TYPE crowdfill_lat_ns histogram
crowdfill_lat_ns_bucket{le="10"} 2
crowdfill_lat_ns_bucket{le="100"} 3
crowdfill_lat_ns_bucket{le="+Inf"} 4
crowdfill_lat_ns_sum 5060
crowdfill_lat_ns_count 4
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDebugHandler drives the three debug endpoints end to end.
func TestDebugHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("crowdfill_pub_total", "publish calls").Add(9)
	rec := NewRecorder(8)
	rec.Record(EvEvictLag, "net-00007", "")
	srv := httptest.NewServer(Handler(r, rec))
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}

	if body := get("/debug/metrics"); !strings.Contains(body, "crowdfill_pub_total 9") {
		t.Errorf("/debug/metrics missing counter:\n%s", body)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(get("/debug/metrics.json")), &snap); err != nil {
		t.Fatalf("metrics.json did not parse: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 9 {
		t.Errorf("metrics.json counters = %+v", snap.Counters)
	}
	var dump struct {
		Total  uint64  `json:"total"`
		Events []Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(get("/debug/events")), &dump); err != nil {
		t.Fatalf("events did not parse: %v", err)
	}
	if dump.Total != 1 || len(dump.Events) != 1 || dump.Events[0].Kind != EvEvictLag {
		t.Errorf("events dump = %+v", dump)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline empty")
	}
}
