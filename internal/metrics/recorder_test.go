package metrics

import (
	"fmt"
	"strings"
	gosync "sync"
	"testing"
)

// TestRecorderRing checks order, wraparound, and the total count.
func TestRecorderRing(t *testing.T) {
	r := NewRecorder(4)
	for i := 1; i <= 6; i++ {
		r.Record(EvSendError, fmt.Sprintf("c%d", i), "boom")
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(i + 3) // events 3,4,5,6 survive
		if ev.Seq != wantSeq {
			t.Errorf("event %d seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if i > 0 && ev.At < evs[i-1].At {
			t.Errorf("event %d At went backwards", i)
		}
	}
	if r.Total() != 6 {
		t.Errorf("Total() = %d, want 6", r.Total())
	}
}

// TestRecorderSink checks the logf sink receives one line per event, outside
// the ring lock.
func TestRecorderSink(t *testing.T) {
	r := NewRecorder(8)
	var mu gosync.Mutex
	var lines []string
	r.SetLogf(func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	})
	r.Record(EvEvictLag, "net-00001", "")
	r.Record(EvRepairOverrun, "cc", "iteration cap hit")
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("sink got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], EvEvictLag) || !strings.Contains(lines[0], "net-00001") {
		t.Errorf("sink line 0 = %q", lines[0])
	}
}

// TestRecorderConcurrent hammers Record and Events under -race.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg gosync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Record(EvSendError, "c", "x")
			}
		}()
	}
	for i := 0; i < 50; i++ {
		_ = r.Events()
	}
	wg.Wait()
	if r.Total() != 2000 {
		t.Fatalf("Total() = %d, want 2000", r.Total())
	}
	if len(r.Events()) != 16 {
		t.Fatalf("ring kept %d events, want 16", len(r.Events()))
	}
}
