package metrics

import (
	"math"
	gosync "sync"
	"testing"
)

// TestConcurrentInstruments hammers one counter, one sharded counter, one
// gauge, and one histogram from many goroutines while snapshots run
// concurrently, then checks exact totals. Run under -race this is the
// data-race gate for the whole observe surface.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	sc := r.ShardedCounter("test_sharded_total", "sharded ops", 8)
	g := r.Gauge("test_depth", "depth")
	h := r.Histogram("test_lat_ns", "latency", LatencyBuckets)

	const workers = 8
	const perWorker = 10_000
	var wg gosync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(shard uint32) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				sc.Add(shard, 2)
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i))
			}
		}(uint32(w))
	}
	// Concurrent snapshots must not race with observers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := sc.Value(); got != 2*workers*perWorker {
		t.Errorf("sharded counter = %d, want %d", got, 2*workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestShardedCounterMerge checks that per-shard writes land in distinct
// cells and fold to the exact total, including shard indexes beyond the
// cell count (masked into range).
func TestShardedCounterMerge(t *testing.T) {
	sc := newShardedCounter(4)
	if sc.Shards() != 4 {
		t.Fatalf("Shards() = %d, want 4", sc.Shards())
	}
	for shard := uint32(0); shard < 4; shard++ {
		for i := uint32(0); i <= shard; i++ {
			sc.Inc(shard)
		}
	}
	// 1+2+3+4 increments across shards 0..3.
	if got := sc.Value(); got != 10 {
		t.Fatalf("Value() = %d, want 10", got)
	}
	// Out-of-range shard indexes mask into range rather than panicking.
	sc.Add(4, 5) // masks to shard 0
	if got := sc.Value(); got != 15 {
		t.Fatalf("Value() after masked add = %d, want 15", got)
	}
	// Rounding up to a power of two.
	if got := newShardedCounter(5).Shards(); got != 8 {
		t.Fatalf("newShardedCounter(5).Shards() = %d, want 8", got)
	}
}

// TestHistogramBuckets checks the `le` boundary semantics: a sample equal to
// a bound lands in that bound's bucket; one past it lands in the next.
func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]int64{10, 100, 1000})
	samples := []int64{0, 5, 10, 11, 100, 101, 1000, 1001, 50_000}
	for _, v := range samples {
		h.Observe(v)
	}
	hv := h.snapshot("x")
	wantCounts := []uint64{3, 2, 2, 2} // ≤10: {0,5,10}; ≤100: {11,100}; ≤1000: {101,1000}; +Inf: {1001,50000}
	for i, want := range wantCounts {
		if hv.Buckets[i].Count != want {
			t.Errorf("bucket %d count = %d, want %d", i, hv.Buckets[i].Count, want)
		}
	}
	if hv.Count != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", hv.Count, len(samples))
	}
	var wantSum int64
	for _, v := range samples {
		wantSum += v
	}
	if hv.Sum != wantSum {
		t.Errorf("sum = %d, want %d", hv.Sum, wantSum)
	}
	if hv.Buckets[3].UpperBound != math.MaxInt64 {
		t.Errorf("last bucket bound = %d, want MaxInt64", hv.Buckets[3].UpperBound)
	}
}

// TestHistogramQuantile feeds a uniform distribution and checks the
// interpolated quantile estimates stay within one bucket of truth, plus the
// saturation and empty edge cases.
func TestHistogramQuantile(t *testing.T) {
	h := newHistogram(ExpBuckets(1, 2, 14)) // 1,2,4,...,8192
	// Uniform 1..1000: true p50 = 500, p90 = 900, p99 = 990.
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	hv := h.snapshot("x")
	checks := []struct {
		q          float64
		truth      int64
		loose, hi  int64 // acceptable range given bucket resolution
	}{
		{0.50, 500, 256, 512},
		{0.90, 900, 512, 1024},
		{0.99, 990, 512, 1024},
	}
	for _, c := range checks {
		got := hv.Quantile(c.q)
		if got < c.loose || got > c.hi {
			t.Errorf("Quantile(%v) = %d, want within [%d,%d] (truth %d)", c.q, got, c.loose, c.hi, c.truth)
		}
	}

	// Interpolation inside one bucket: all mass in (4,8], uniform.
	h2 := newHistogram([]int64{4, 8, 16})
	for v := int64(5); v <= 8; v++ {
		h2.Observe(v)
	}
	hv2 := h2.snapshot("x")
	if got := hv2.Quantile(0.5); got < 4 || got > 8 {
		t.Errorf("single-bucket Quantile(0.5) = %d, want in [4,8]", got)
	}

	// Overflow saturation: everything past the last finite bound estimates
	// as that bound.
	h3 := newHistogram([]int64{10})
	h3.Observe(1_000_000)
	if got := h3.snapshot("x").Quantile(0.99); got != 10 {
		t.Errorf("overflow Quantile = %d, want 10 (saturated)", got)
	}

	// Empty histogram.
	if got := newHistogram([]int64{1}).snapshot("x").Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}
}

// TestRegistryGetOrCreate checks instrument identity and the cross-kind
// panic.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "")
	b := r.Counter("dup_total", "")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("dup_total", "")
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1000, 4, 12)
	if len(b) != 12 || b[0] != 1000 || b[1] != 4000 {
		t.Fatalf("unexpected buckets: %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("buckets not ascending at %d: %v", i, b)
		}
	}
}
