package metrics

import (
	gosync "sync"
	"time"
)

// Event kinds recorded by the serving stack. Kinds are plain strings so
// components may add their own; these are the ones the server emits.
const (
	EvEvictLag      = "evict-lag"      // client dropped: cursor lagged behind the broadcast log
	EvSendError     = "send-error"     // client dropped: transport send failed
	EvWriteDeadline = "write-deadline" // client dropped: send hit the flusher write deadline
	EvReject        = "reject"         // inbound message rejected (connection stays up)
	EvRepairOverrun = "repair-overrun" // central-client repair hit its iteration cap
)

// Event is one operational event: what happened, to whom, and when (At is
// monotonic nanoseconds since the recorder started, immune to wall-clock
// steps; WallNano is the wall-clock stamp for humans).
type Event struct {
	Seq      uint64 `json:"seq"`
	At       int64  `json:"at_ns"`
	WallNano int64  `json:"wall_ns"`
	Kind     string `json:"kind"`
	Actor    string `json:"actor,omitempty"`
	Detail   string `json:"detail,omitempty"`
}

// Recorder is a fixed-size flight recorder: a ring of the last N operational
// events. It is the durable, structured replacement for fire-and-forget logf
// strings — the ring is the source of truth (dumpable over the debug
// endpoint), and an optional logf sink still receives one line per event.
// Record is a short critical section plus an out-of-lock sink call; it is
// intended for cold paths (drops, evictions, overruns), never for per-message
// work, and must not be called while holding a serving-plane lock (the sink
// may block).
type Recorder struct {
	mu    gosync.Mutex
	start time.Time
	seq   uint64
	ring  []Event
	logf  func(format string, args ...any)
}

// NewRecorder returns a recorder keeping the last n events (minimum 1).
func NewRecorder(n int) *Recorder {
	if n < 1 {
		n = 1
	}
	return &Recorder{start: time.Now(), ring: make([]Event, 0, n)}
}

// defaultRecorderSize bounds the process-wide recorder. 1024 events cover
// hours of normal operation; under an event storm the ring holds the most
// recent window, which is the window an operator debugging the storm wants.
const defaultRecorderSize = 1024

var (
	defaultRecorder     *Recorder
	defaultRecorderOnce gosync.Once
)

// DefaultRecorder returns the process-wide flight recorder.
func DefaultRecorder() *Recorder {
	defaultRecorderOnce.Do(func() { defaultRecorder = NewRecorder(defaultRecorderSize) })
	return defaultRecorder
}

// SetLogf installs (or replaces) the log sink invoked once per recorded
// event, outside the recorder's lock. nil removes the sink.
func (r *Recorder) SetLogf(fn func(format string, args ...any)) {
	r.mu.Lock()
	r.logf = fn
	r.mu.Unlock()
}

// Record appends one event to the ring, evicting the oldest when full, and
// forwards it to the log sink.
func (r *Recorder) Record(kind, actor, detail string) {
	now := time.Now()
	r.mu.Lock()
	r.seq++
	ev := Event{
		Seq:      r.seq,
		At:       int64(now.Sub(r.start)),
		WallNano: now.UnixNano(),
		Kind:     kind,
		Actor:    actor,
		Detail:   detail,
	}
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, ev)
	} else {
		r.ring[(r.seq-1)%uint64(cap(r.ring))] = ev
	}
	logf := r.logf
	r.mu.Unlock()
	if logf != nil {
		logf("crowdfill: event %s actor=%s %s", kind, actor, detail)
	}
}

// Events returns the recorded events, oldest first. The slice is the
// caller's.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.ring))
	if len(r.ring) < cap(r.ring) {
		return append(out, r.ring...)
	}
	// Full ring: the oldest event sits just past the newest write position.
	head := int(r.seq % uint64(cap(r.ring)))
	out = append(out, r.ring[head:]...)
	out = append(out, r.ring[:head]...)
	return out
}

// Total returns how many events have ever been recorded (≥ len(Events())).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}
