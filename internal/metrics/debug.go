package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// Handler returns the debug HTTP handler crowdfill-server mounts behind its
// opt-in -debug-addr listener:
//
//	GET /debug/metrics       Prometheus text exposition
//	GET /debug/metrics.json  JSON Snapshot (with quantile estimates)
//	GET /debug/events        flight-recorder dump, oldest event first
//	GET /debug/pprof/...     net/http/pprof (profile, heap, goroutine, ...)
//
// nil r or rec fall back to the process-wide Default registry and recorder.
// The handler is read-only and unauthenticated; the listener is meant for a
// loopback or otherwise private address.
func Handler(r *Registry, rec *Recorder) http.Handler {
	if r == nil {
		r = Default()
	}
	if rec == nil {
		rec = DefaultRecorder()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
	mux.HandleFunc("/debug/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Total  uint64  `json:"total"`
			Events []Event `json:"events"`
		}{Total: rec.Total(), Events: rec.Events()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
