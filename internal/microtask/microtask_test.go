package microtask

import (
	"testing"
	"time"

	"crowdfill/internal/crowd"
	"crowdfill/internal/exp"
)

func baselineWorkers() []crowd.Spec {
	sec := func(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }
	mk := func(name string, seed int64) crowd.Spec {
		return crowd.Spec{
			Name: name, Knowledge: 0.8, FillAccuracy: 0.96, VoteAccuracy: 0.95,
			FillTime: []time.Duration{sec(10), sec(6), sec(4), sec(7), sec(7), sec(12)},
			VoteTime: sec(4), Seed: seed,
		}
	}
	return []crowd.Spec{mk("w1", 1), mk("w2", 2), mk("w3", 3), mk("w4", 4)}
}

func TestBaselineCollects(t *testing.T) {
	truth := crowd.SoccerPlayers(42, 220)
	res, err := Run(Config{
		Truth:       truth,
		Rows:        10,
		Replication: 3,
		Workers:     baselineWorkers(),
		PayPerTask:  0.03,
	}, 7)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Done {
		t.Fatalf("baseline did not finish: %+v", res)
	}
	if res.Rows < 10 {
		t.Fatalf("rows = %d, want >= 10", res.Rows)
	}
	if res.Accuracy < 0.7 {
		t.Fatalf("accuracy = %.2f", res.Accuracy)
	}
	if res.Tasks <= 0 || res.Cost <= 0 {
		t.Fatalf("tasks/cost = %d/%.2f", res.Tasks, res.Cost)
	}
	if res.Cost != float64(res.Tasks)*0.03 {
		t.Fatalf("cost accounting wrong")
	}
	if res.Duration <= 0 {
		t.Fatalf("duration = %v", res.Duration)
	}
}

func TestBaselineDeterministic(t *testing.T) {
	truth := crowd.SoccerPlayers(42, 100)
	cfg := Config{Truth: truth, Rows: 6, Workers: baselineWorkers(), PayPerTask: 0.05}
	a, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tasks != b.Tasks || a.Duration != b.Duration || a.DuplicateKeys != b.DuplicateKeys {
		t.Fatalf("same seed differs: %+v vs %+v", a, b)
	}
}

func TestBaselineValidation(t *testing.T) {
	if _, err := Run(Config{}, 1); err == nil {
		t.Fatalf("empty config should fail")
	}
	truth := crowd.SoccerPlayers(42, 10)
	if _, err := Run(Config{Truth: truth, Rows: 0, Workers: baselineWorkers()}, 1); err == nil {
		t.Fatalf("zero rows should fail")
	}
}

// TestBaselineDuplicateWaste: with narrow knowledge pools, blind workers
// repeatedly contribute the same entities — waste the shared-table approach
// avoids by construction (the comparison the paper proposes in §8).
func TestBaselineDuplicateWaste(t *testing.T) {
	truth := crowd.SoccerPlayers(42, 25) // small pool -> heavy overlap
	workers := baselineWorkers()
	for i := range workers {
		workers[i].Knowledge = 1.0
	}
	res, err := Run(Config{
		Truth: truth, Rows: 15, Workers: workers, PayPerTask: 0.02,
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.DuplicateKeys == 0 {
		t.Fatalf("expected duplicate-key waste in the microtask model, got none")
	}
}

// TestTableFillBeatsMicrotaskOnWaste is the §8 comparison experiment in
// miniature: on the same crowd, CrowdFill's table-filling wastes no work on
// duplicate entities while the microtask baseline does.
func TestTableFillBeatsMicrotaskOnWaste(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison experiment")
	}
	seed := int64(5)
	tfCfg := exp.RepresentativeConfig(seed)
	tf, err := exp.Run(tfCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.Done {
		t.Skipf("table-fill run did not converge for this seed")
	}
	mt, err := Run(Config{
		Truth:      tfCfg.Truth,
		Rows:       20,
		Workers:    tfCfg.Workers,
		PayPerTask: 0.05,
	}, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !mt.Done {
		t.Skipf("baseline did not converge for this seed")
	}
	// Duplicate-entity waste exists only in the microtask model; the
	// candidate table can exceed the target for other reasons (voting
	// churn) but never from blind duplicate keys.
	t.Logf("table-fill: %v, %d candidate rows; microtask: %v, %d tasks, %d duplicates",
		tf.Duration, tf.CandidateRows, mt.Duration, mt.Tasks, mt.DuplicateKeys)
	if mt.DuplicateKeys == 0 {
		t.Logf("note: no duplicates this seed; waste comparison inconclusive")
	}
}
