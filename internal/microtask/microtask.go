// Package microtask implements the microtask-based baseline CrowdFill is
// contrasted against (paper §1 and §7: CrowdDB / Deco-style collection, §8's
// future-work comparison). Collection is decomposed into specific questions
// — "name a new entity", "fill attribute A of entity K", "is this row
// correct?" — assigned to workers who never see each other's answers. The
// baseline reuses the same simulated-crowd model and virtual clock as the
// table-filling system, so latency, cost, and quality compare directly.
package microtask

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"crowdfill/internal/crowd"
	"crowdfill/internal/model"
	"crowdfill/internal/simclock"
)

// Config parameterizes one baseline run.
type Config struct {
	// Truth is the shared ground truth.
	Truth *crowd.Dataset
	// Rows is the number of distinct verified rows to collect.
	Rows int
	// Replication is the votes required per row (majority decides);
	// defaults to 3.
	Replication int
	// Workers reuse the crowd specs (accuracy, knowledge, think times).
	Workers []crowd.Spec
	// PayPerTask is the fixed microtask price (the classical pricing
	// model, as opposed to CrowdFill's budget split).
	PayPerTask float64
	// MaxVirtual bounds the run (default 8h).
	MaxVirtual time.Duration
}

// Result summarizes a baseline run.
type Result struct {
	Done     bool
	Duration time.Duration
	// Rows is the number of verified, distinct-key rows collected.
	Rows int
	// Accuracy is the fraction of collected rows matching ground truth.
	Accuracy float64
	// Tasks is the total number of microtasks answered.
	Tasks int
	// DuplicateKeys counts new-entity answers discarded because another
	// worker had already contributed the same key — waste that CrowdFill's
	// shared table view avoids by construction.
	DuplicateKeys int
	// Cost is Tasks × PayPerTask.
	Cost float64
}

// task kinds.
type taskKind int

const (
	taskNewEntity taskKind = iota
	taskFill
	taskVerify
)

type task struct {
	kind taskKind
	// row under construction (indexed into rows).
	row int
	col int
}

// rowState tracks one entity being collected.
type rowState struct {
	vec      model.Vector
	truth    model.Vector // resolved ground truth for the key ("" key = none)
	fake     bool         // key not present in the ground truth
	yes, no  int
	verified bool
	dead     bool
}

// Run executes the baseline simulation.
func Run(cfg Config, seed int64) (*Result, error) {
	if cfg.Truth == nil || cfg.Rows <= 0 || len(cfg.Workers) == 0 {
		return nil, errors.New("microtask: config needs truth, rows, and workers")
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.MaxVirtual == 0 {
		cfg.MaxVirtual = 8 * time.Hour
	}
	schema := cfg.Truth.Schema
	clk := simclock.NewSim(0)
	rng := rand.New(rand.NewSource(seed))

	workers := make([]*crowd.Worker, len(cfg.Workers))
	for i, spec := range cfg.Workers {
		workers[i] = crowd.NewWorker(spec, cfg.Truth)
	}

	var (
		rows     []*rowState
		queue    []task
		seenKeys = map[string]bool{}
		res      = &Result{}
		doneAt   = int64(-1)
	)
	kc := schema.KeyColumns()

	verifiedCount := func() int {
		n := 0
		for _, r := range rows {
			if r.verified && !r.dead {
				n++
			}
		}
		return n
	}
	// Seed the queue: one new-entity question per needed row. More are
	// issued as duplicates and failures surface.
	for i := 0; i < cfg.Rows; i++ {
		queue = append(queue, task{kind: taskNewEntity})
	}

	// answer resolves one task for one worker, possibly extending the queue.
	answer := func(w *crowd.Worker, t task) {
		res.Tasks++
		switch t.kind {
		case taskNewEntity:
			truth := pickEntity(w, rng, cfg.Truth)
			if truth == nil {
				// The worker knows nothing fresh; reissue for someone else.
				queue = append(queue, t)
				return
			}
			key := truth.Project(kc).Encode()
			if seenKeys[key] {
				// Blind duplicate — the microtask model's fundamental waste.
				res.DuplicateKeys++
				queue = append(queue, t)
				return
			}
			seenKeys[key] = true
			rs := &rowState{vec: model.NewVector(schema.NumColumns()), truth: truth}
			for _, k := range kc {
				rs.vec[k] = truth[k] // key answers assumed typo-free here; fills carry the error model
			}
			rows = append(rows, rs)
			for col := range schema.Columns {
				if !rs.vec[col].Set {
					queue = append(queue, task{kind: taskFill, row: len(rows) - 1, col: col})
				}
			}
		case taskFill:
			rs := rows[t.row]
			if rs.dead || rs.vec[t.col].Set {
				return
			}
			val := workerValue(w, rng, rs.truth, t.col)
			rs.vec[t.col] = model.Cell{Set: true, Val: val}
			if rs.vec.IsComplete() {
				for i := 0; i < cfg.Replication; i++ {
					queue = append(queue, task{kind: taskVerify, row: t.row})
				}
			}
		case taskVerify:
			rs := rows[t.row]
			if rs.dead || rs.verified {
				return
			}
			correct := rs.truth != nil && rs.vec.Equal(rs.truth)
			judge := correct
			if rng.Float64() >= w.Spec.VoteAccuracy {
				judge = !judge
			}
			if judge {
				rs.yes++
			} else {
				rs.no++
			}
			if rs.yes+rs.no >= cfg.Replication {
				if rs.yes > rs.no {
					rs.verified = true
				} else {
					// Majority rejected: retire the row and restart the
					// entity from scratch (the microtask system cannot
					// repair individual cells without another round-trip).
					rs.dead = true
					key := rs.truth.Project(kc).Encode()
					delete(seenKeys, key)
					queue = append(queue, task{kind: taskNewEntity})
				}
			}
		}
	}

	// Worker loops: pull the next queued task after a think time.
	maxNs := int64(cfg.MaxVirtual)
	var loop func(i int)
	loop = func(i int) {
		if doneAt >= 0 || clk.Now() > maxNs {
			return
		}
		if len(queue) == 0 {
			clk.After(2*time.Second, func() { loop(i) })
			return
		}
		t := queue[0]
		queue = queue[1:]
		think := taskThink(workers[i], t)
		clk.After(think, func() {
			if doneAt >= 0 {
				return
			}
			answer(workers[i], t)
			if verifiedCount() >= cfg.Rows {
				doneAt = clk.Now()
				return
			}
			loop(i)
		})
	}
	for i := range workers {
		i := i
		clk.After(time.Duration(i)*577*time.Millisecond, func() { loop(i) })
	}
	for clk.Pending() > 0 && doneAt < 0 && clk.Now() <= maxNs {
		clk.Step()
	}

	res.Done = doneAt >= 0
	if doneAt >= 0 {
		res.Duration = time.Duration(doneAt)
	} else {
		res.Duration = time.Duration(clk.Now())
	}
	correct := 0
	for _, r := range rows {
		if !r.verified || r.dead {
			continue
		}
		res.Rows++
		if cfg.Truth.Contains(r.vec) {
			correct++
		}
	}
	if res.Rows > 0 {
		res.Accuracy = float64(correct) / float64(res.Rows)
	}
	res.Cost = float64(res.Tasks) * cfg.PayPerTask
	return res, nil
}

// pickEntity returns a truth row the worker knows; the microtask worker
// cannot see what others contributed, so no dedup is possible here.
func pickEntity(w *crowd.Worker, rng *rand.Rand, truth *crowd.Dataset) model.Vector {
	known := w.KnownRows()
	if known == 0 {
		return nil
	}
	// Sample among the worker's known rows via the dataset: reuse the
	// public surface only (KnownRows + deterministic resampling).
	idx := rng.Intn(len(truth.Rows))
	for i := 0; i < len(truth.Rows); i++ {
		row := truth.Rows[(idx+i)%len(truth.Rows)]
		if workerKnows(w, row, truth) {
			return row
		}
	}
	return nil
}

// workerKnows approximates membership in the worker's knowledge subset by
// re-deriving it from the spec seed (same procedure as crowd.NewWorker).
func workerKnows(w *crowd.Worker, row model.Vector, truth *crowd.Dataset) bool {
	// The crowd package samples knowledge at construction; here a simple
	// proxy keeps the baseline self-contained: knowledge fraction applied
	// by stable hash of (seed, key).
	h := int64(1)
	for _, c := range row {
		for _, b := range []byte(c.Val) {
			h = h*1000003 + int64(b)
		}
	}
	h = h*31 + w.Spec.Seed
	if h < 0 {
		h = -h
	}
	return float64(h%1000)/1000 < w.Spec.Knowledge
}

// workerValue answers a fill microtask with the worker's accuracy model.
func workerValue(w *crowd.Worker, rng *rand.Rand, truth model.Vector, col int) string {
	if truth == nil {
		return "unknown"
	}
	if rng.Float64() < w.Spec.FillAccuracy {
		return truth[col].Val
	}
	// A plausible wrong value: perturb numerically or append a typo.
	val := truth[col].Val
	if len(val) > 0 && val[0] >= '0' && val[0] <= '9' {
		return fmt.Sprint(1 + rng.Intn(150))
	}
	return val + "e"
}

// taskThink maps task kinds onto the worker's think-time model.
func taskThink(w *crowd.Worker, t task) time.Duration {
	mean := 8 * time.Second
	switch t.kind {
	case taskNewEntity:
		if len(w.Spec.FillTime) > 0 && w.Spec.FillTime[0] > 0 {
			mean = w.Spec.FillTime[0]
		}
	case taskFill:
		if t.col < len(w.Spec.FillTime) && w.Spec.FillTime[t.col] > 0 {
			mean = w.Spec.FillTime[t.col]
		}
	case taskVerify:
		// Verifying a whole row reads every attribute; slower than one
		// CrowdFill vote.
		mean = 2 * w.Spec.VoteTime
		if mean == 0 {
			mean = 8 * time.Second
		}
	}
	return jitter(w, mean)
}

// jitter mirrors the crowd package's lognormal think-time model.
func jitter(w *crowd.Worker, mean time.Duration) time.Duration {
	return w.Jitter(mean)
}
