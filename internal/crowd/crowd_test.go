package crowd

import (
	"strconv"
	"testing"
	"time"

	"crowdfill/internal/client"
	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

func TestSoccerPlayersDataset(t *testing.T) {
	d := SoccerPlayers(42, 220)
	if len(d.Rows) != 220 {
		t.Fatalf("rows = %d, want 220", len(d.Rows))
	}
	seen := map[string]bool{}
	for _, r := range d.Rows {
		if !r.IsComplete() {
			t.Fatalf("truth row incomplete: %v", r)
		}
		k := r.KeyOf(d.Schema)
		if seen[k] {
			t.Fatalf("duplicate key: %v", r)
		}
		seen[k] = true
		caps, err := strconv.Atoi(r[3].Val)
		if err != nil || caps < 80 || caps > 99 {
			t.Fatalf("caps out of the paper's [80,99] range: %v", r)
		}
		if _, err := d.Schema.CheckValue(2, r[2].Val); err != nil {
			t.Fatalf("position out of domain: %v", r)
		}
		if _, err := model.CanonicalValue(model.TypeDate, r[5].Val); err != nil {
			t.Fatalf("bad dob: %v", r)
		}
		if r[2].Val == "GK" && r[4].Val != "0" {
			t.Fatalf("goalkeeper with goals: %v", r)
		}
	}
}

func TestSoccerPlayersDeterministic(t *testing.T) {
	a := SoccerPlayers(7, 50)
	b := SoccerPlayers(7, 50)
	for i := range a.Rows {
		if !a.Rows[i].Equal(b.Rows[i]) {
			t.Fatalf("same seed differs at %d", i)
		}
	}
	c := SoccerPlayers(8, 50)
	same := true
	for i := range a.Rows {
		if !a.Rows[i].Equal(c.Rows[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds should differ")
	}
}

func TestGenericDataset(t *testing.T) {
	s := model.MustSchema("P", []model.Column{
		{Name: "sku", Type: model.TypeString},
		{Name: "cat", Type: model.TypeString, Domain: []string{"a", "b"}},
		{Name: "price", Type: model.TypeFloat},
		{Name: "when", Type: model.TypeDate},
	}, "sku")
	d := Generic(3, s, 60)
	if len(d.Rows) != 60 {
		t.Fatalf("rows = %d", len(d.Rows))
	}
	for _, r := range d.Rows {
		for col := range s.Columns {
			if _, err := s.CheckValue(col, r[col].Val); err != nil {
				t.Fatalf("invalid generated value: %v", err)
			}
		}
	}
}

func TestLookupByKeyAndContains(t *testing.T) {
	d := SoccerPlayers(42, 30)
	row := d.Rows[7]
	partial := model.NewVector(len(row))
	for _, k := range d.Schema.KeyColumns() {
		partial[k] = row[k]
	}
	got := d.LookupByKey(partial)
	if got == nil || !got.Equal(row) {
		t.Fatalf("LookupByKey failed: %v", got)
	}
	if !d.Contains(row) {
		t.Fatalf("Contains failed")
	}
	fake := row.With(0, "Nobody Atall")
	if d.LookupByKey(fake) != nil {
		t.Fatalf("fake key should not resolve")
	}
	if d.Contains(fake) {
		t.Fatalf("fake row should not be contained")
	}
}

// simClient builds a client pre-loaded with rows via server-style messages.
func simClient(t testing.TB, d *Dataset, rows ...model.Vector) *client.Client {
	t.Helper()
	c, err := client.New(client.Config{ID: "c1", Worker: "w1", Schema: d.Schema})
	if err != nil {
		t.Fatal(err)
	}
	g := sync.NewIDGen("cc")
	for _, vec := range rows {
		ins := g.Next()
		if err := c.HandleServer(sync.Message{Type: sync.MsgInsert, Row: ins, Origin: "cc"}); err != nil {
			t.Fatal(err)
		}
		cur := ins
		for col, cell := range vec {
			if !cell.Set {
				continue
			}
			next := g.Next()
			if err := c.HandleServer(sync.Message{
				Type: sync.MsgReplace, Row: cur, NewRow: next,
				Vec: partialUpTo(vec, col), Col: col, Val: cell.Val, Origin: "cc",
			}); err != nil {
				t.Fatal(err)
			}
			cur = next
		}
	}
	return c
}

// partialUpTo returns vec restricted to columns <= col (matching successive
// fills in order).
func partialUpTo(vec model.Vector, col int) model.Vector {
	out := model.NewVector(len(vec))
	for i := 0; i <= col; i++ {
		out[i] = vec[i]
	}
	return out
}

func TestWorkerKnowledgeSampling(t *testing.T) {
	d := SoccerPlayers(42, 200)
	all := NewWorker(Spec{Name: "w", Knowledge: 1.0, Seed: 1}, d)
	if all.KnownRows() != 200 {
		t.Fatalf("full knowledge = %d rows", all.KnownRows())
	}
	none := NewWorker(Spec{Name: "w", Knowledge: 0, Seed: 1}, d)
	if none.KnownRows() != 0 {
		t.Fatalf("zero knowledge = %d rows", none.KnownRows())
	}
	half := NewWorker(Spec{Name: "w", Knowledge: 0.5, Seed: 1}, d)
	if half.KnownRows() < 60 || half.KnownRows() > 140 {
		t.Fatalf("half knowledge = %d rows", half.KnownRows())
	}
}

func TestWorkerFillsKnownEntity(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 1, FillAccuracy: 1, VoteAccuracy: 1, Seed: 3}, d)
	c := simClient(t, d, model.NewVector(6)) // one empty row
	dec := w.Decide(c)
	if dec.Kind != ActFill || dec.Col != 0 {
		t.Fatalf("expected a name fill, got %+v", dec)
	}
	// The value is a real player name (accuracy 1).
	found := false
	for _, r := range d.Rows {
		if r[0].Val == dec.Value {
			found = true
		}
	}
	if !found {
		t.Fatalf("filled name %q not in truth", dec.Value)
	}
	if dec.Think <= 0 {
		t.Fatalf("think time must be positive")
	}
}

func TestWorkerContinuesPartialRow(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 1, FillAccuracy: 1, VoteAccuracy: 1, Seed: 3}, d)
	truth := d.Rows[4]
	partial := model.NewVector(6)
	partial[0] = truth[0]
	partial[1] = truth[1]
	c := simClient(t, d, partial)
	dec := w.Decide(c)
	if dec.Kind != ActFill {
		t.Fatalf("expected fill, got %+v", dec)
	}
	if dec.Col != 2 || dec.Value != truth[2].Val {
		t.Fatalf("expected correct position fill, got %+v (truth %v)", dec, truth)
	}
}

func TestWorkerVotesOnCompleteRows(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 1, FillAccuracy: 1, VoteAccuracy: 1,
		VotePreference: 1, Seed: 3}, d)
	// A correct complete row and a corrupted one.
	good := d.Rows[0]
	bad := d.Rows[1].With(3, "55")
	c := simClient(t, d, good, bad)
	upSeen, downSeen := false, false
	for i := 0; i < 50 && !(upSeen && downSeen); i++ {
		dec := w.Decide(c)
		switch dec.Kind {
		case ActUpvote:
			row := c.Replica().Table().Get(dec.Row)
			if !row.Vec.Equal(good) {
				t.Fatalf("upvoted the corrupted row")
			}
			upSeen = true
		case ActDownvote:
			row := c.Replica().Table().Get(dec.Row)
			if !row.Vec.Equal(bad) {
				t.Fatalf("downvoted the correct row")
			}
			downSeen = true
		}
	}
	if !upSeen || !downSeen {
		t.Fatalf("expected both votes to be proposed (up=%v down=%v)", upSeen, downSeen)
	}
}

func TestWorkerSkipsDecidedRows(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 1, FillAccuracy: 1, VoteAccuracy: 1,
		VotePreference: 1, Seed: 3}, d)
	c := simClient(t, d, d.Rows[0])
	// Mark the row decided with two external upvotes.
	up := sync.Message{Type: sync.MsgUpvote, Vec: d.Rows[0].Clone(), Origin: "c9", Worker: "w9"}
	c.HandleServer(up)
	c.HandleServer(up)
	for i := 0; i < 20; i++ {
		if dec := w.Decide(c); dec.Kind == ActUpvote {
			t.Fatalf("worker should not pile onto a decided row")
		}
	}
}

func TestWorkerNeverVotesWithZeroPreference(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w3", Knowledge: 1, FillAccuracy: 1, VoteAccuracy: 1,
		VotePreference: 0, Seed: 3}, d)
	// Only a votable row exists (complete, unvoted by this worker).
	c := simClient(t, d, d.Rows[2])
	for i := 0; i < 30; i++ {
		if dec := w.Decide(c); dec.Kind == ActUpvote || dec.Kind == ActDownvote {
			t.Fatalf("zero-preference worker voted: %+v", dec)
		}
	}
}

func TestWorkerResearchDownvotesFabrication(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 0, FillAccuracy: 1, VoteAccuracy: 1,
		VotePreference: 1, ResearchProb: 1, Seed: 3}, d)
	fake := d.Rows[0].With(0, "Invented Person")
	c := simClient(t, d, fake)
	sawDown := false
	for i := 0; i < 30 && !sawDown; i++ {
		if dec := w.Decide(c); dec.Kind == ActDownvote {
			sawDown = true
		}
	}
	if !sawDown {
		t.Fatalf("research should downvote a fabricated row")
	}
}

func TestWorkerReconsiders(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 1, FillAccuracy: 1, VoteAccuracy: 1,
		VotePreference: 1, ReconsiderProb: 1, Seed: 3}, d)
	good := d.Rows[0]
	c := simClient(t, d, good)
	rows := c.Rows(nil)
	// The worker mistakenly downvoted the correct row; an external up and
	// down make it contested.
	if _, err := c.Downvote(rows[0].ID); err != nil {
		t.Fatal(err)
	}
	c.HandleServer(sync.Message{Type: sync.MsgUpvote, Vec: good.Clone(), Origin: "c9"})
	sawReconsider := false
	for i := 0; i < 30; i++ {
		dec := w.Decide(c)
		if dec.Kind == ActReconsider {
			if !dec.Up {
				t.Fatalf("reconsideration should flip to an upvote")
			}
			sawReconsider = true
			break
		}
	}
	if !sawReconsider {
		t.Fatalf("worker never reconsidered the contested row")
	}
}

func TestSpammerBehavior(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "spam", Spammer: true, Seed: 3}, d)
	c := simClient(t, d, model.NewVector(6))
	dec := w.Decide(c)
	if dec.Kind != ActFill {
		t.Fatalf("spammer should fill the empty table, got %+v", dec)
	}
	if dec.Think > 3*time.Second {
		t.Fatalf("spammers are fast, got think=%v", dec.Think)
	}
	// Spam values are syntactically valid for the schema.
	if _, err := d.Schema.CheckValue(dec.Col, dec.Value); err != nil {
		t.Fatalf("spam value invalid: %v", err)
	}
}

func TestWorkerIdlesOnUnknownTable(t *testing.T) {
	d := SoccerPlayers(42, 20)
	w := NewWorker(Spec{Name: "w1", Knowledge: 0, FillAccuracy: 1, VoteAccuracy: 1, Seed: 3}, d)
	c := simClient(t, d, model.NewVector(6))
	dec := w.Decide(c)
	if dec.Kind != ActIdle {
		t.Fatalf("knowledge-free worker should idle, got %+v", dec)
	}
	if dec.Think <= 0 {
		t.Fatalf("idle must still wait")
	}
}

func TestJitterMeanPreserving(t *testing.T) {
	d := SoccerPlayers(42, 5)
	w := NewWorker(Spec{Name: "w", Seed: 9, LatencySigma: 0.6}, d)
	var sum time.Duration
	const n = 5000
	for i := 0; i < n; i++ {
		v := w.jitter(10 * time.Second)
		if v <= 0 {
			t.Fatalf("nonpositive think time")
		}
		sum += v
	}
	mean := sum / n
	if mean < 8*time.Second || mean > 12*time.Second {
		t.Fatalf("lognormal jitter mean = %v, want ~10s", mean)
	}
}

func TestWorkerDefaultTimes(t *testing.T) {
	d := SoccerPlayers(42, 10)
	w := NewWorker(Spec{Name: "w", Knowledge: 1, FillAccuracy: 1, Seed: 1}, d)
	// No FillTime/VoteTime configured: defaults apply.
	if got := w.fillMean(0); got != 8*time.Second {
		t.Fatalf("default fill mean = %v", got)
	}
	if got := w.voteMean(); got != 4*time.Second {
		t.Fatalf("default vote mean = %v", got)
	}
	w2 := NewWorker(Spec{Name: "w", FillTime: []time.Duration{time.Second}, VoteTime: 2 * time.Second, Seed: 1}, d)
	if got := w2.fillMean(0); got != time.Second {
		t.Fatalf("configured fill mean = %v", got)
	}
	if got := w2.fillMean(5); got != 8*time.Second {
		t.Fatalf("out-of-range fill mean = %v", got)
	}
	if got := w2.voteMean(); got != 2*time.Second {
		t.Fatalf("configured vote mean = %v", got)
	}
	if got := w2.Jitter(10 * time.Second); got <= 0 {
		t.Fatalf("Jitter = %v", got)
	}
}

func TestWrongValueStaysValid(t *testing.T) {
	d := SoccerPlayers(42, 10)
	w := NewWorker(Spec{Name: "w", Knowledge: 1, FillAccuracy: 0, Seed: 1}, d)
	// Accuracy zero: every valueFor call goes through wrongValue; results
	// must still validate against the schema (domains, types).
	truth := d.Rows[0]
	for col := range d.Schema.Columns {
		for i := 0; i < 20; i++ {
			v := w.valueFor(truth, col)
			if _, err := d.Schema.CheckValue(col, v); err != nil {
				t.Fatalf("wrong value invalid for column %d: %v", col, err)
			}
		}
	}
	// Domain columns avoid the correct value when alternatives exist.
	same := 0
	for i := 0; i < 50; i++ {
		if w.valueFor(truth, 2) == truth[2].Val {
			same++
		}
	}
	if same > 5 {
		t.Fatalf("wrong position equals truth %d/50 times", same)
	}
}

func TestTruthSupportsAndConflicts(t *testing.T) {
	d := SoccerPlayers(42, 10)
	w := NewWorker(Spec{Name: "w", Knowledge: 1, Seed: 1}, d)
	truth := d.Rows[3]
	partial := model.NewVector(6)
	partial[0] = truth[0]
	if !w.truthSupports(partial) {
		t.Fatalf("real partial should be supported")
	}
	fake := partial.With(0, "Madeup Person")
	if w.truthSupports(fake) {
		t.Fatalf("fabricated partial should not be supported")
	}
	// conflictsWithKnowledge needs a complete key.
	if w.conflictsWithKnowledge(partial) {
		t.Fatalf("key-incomplete rows cannot conflict")
	}
	keyed := model.NewVector(6)
	keyed[0], keyed[1] = truth[0], truth[1]
	keyed[3] = model.Cell{Set: true, Val: "1"} // wrong caps
	if !w.conflictsWithKnowledge(keyed) {
		t.Fatalf("wrong caps should conflict with knowledge")
	}
	good := keyed.With(3, truth[3].Val)
	if w.conflictsWithKnowledge(good) {
		t.Fatalf("consistent partial should not conflict")
	}
}

func TestSpammerVotes(t *testing.T) {
	d := SoccerPlayers(42, 10)
	w := NewWorker(Spec{Name: "spam", Spammer: true, Seed: 5}, d)
	// A complete table (nothing to fill): the spammer votes randomly or idles.
	c := simClient(t, d, d.Rows[0], d.Rows[1])
	votes, idles := 0, 0
	for i := 0; i < 100; i++ {
		switch w.Decide(c).Kind {
		case ActUpvote, ActDownvote:
			votes++
		case ActIdle:
			idles++
		case ActFill:
			t.Fatalf("nothing to fill")
		}
	}
	if votes == 0 {
		t.Fatalf("spammer never voted (idles=%d)", idles)
	}
}

func TestMatchKnown(t *testing.T) {
	d := SoccerPlayers(42, 10)
	w := NewWorker(Spec{Name: "w", Knowledge: 1, Seed: 1}, d)
	truth := d.Rows[2]
	partial := model.NewVector(6)
	partial[1] = truth[1]
	partial[2] = truth[2]
	got := w.matchKnown(partial)
	if got == nil || !partial.Subset(got) {
		t.Fatalf("matchKnown = %v", got)
	}
	impossible := partial.With(0, "Nobody Real")
	if w.matchKnown(impossible) != nil {
		t.Fatalf("impossible vector matched")
	}
}
