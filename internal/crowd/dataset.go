// Package crowd provides the simulated crowd that replaces the paper's human
// Mechanical Turk workers (see DESIGN.md's substitution table): seeded
// ground-truth datasets and per-worker behavior models (knowledge subsets,
// per-column accuracy and think times, voting reliability, spammers). The
// workers exercise exactly the worker-client code path the live system uses.
package crowd

import (
	"fmt"
	"math/rand"

	"crowdfill/internal/model"
)

// Dataset is a ground truth: a schema plus complete, key-unique rows that
// simulated workers partially know.
type Dataset struct {
	Schema *model.Schema
	Rows   []model.Vector
}

var firstNames = []string{
	"Lionel", "Diego", "Zico", "Romario", "Rivaldo", "Thierry", "Dennis",
	"Marco", "Paolo", "Andrea", "Xavi", "Andres", "Iker", "Sergio", "David",
	"Steven", "Frank", "Wayne", "Michael", "Gary", "Miroslav", "Bastian",
	"Philipp", "Manuel", "Arjen", "Robin", "Wesley", "Clarence", "Edwin",
	"Patrick", "Didier", "Samuel", "Yaya", "George", "Abedi", "Roger",
	"Hugo", "Carlos", "Javier", "Gabriel",
}

var lastNames = []string{
	"Mesta", "Maradol", "Zicon", "Romaro", "Rivaldez", "Henrique", "Bergkamp",
	"Vanbast", "Maldini", "Pirlo", "Hernandez", "Iniesta", "Casill", "Ramos",
	"Villa", "Gerrard", "Lampard", "Rooney", "Owen", "Lineker", "Klose",
	"Schwein", "Lahm", "Neuer", "Robben", "Persie", "Sneijder", "Seedorf",
	"Sarvan", "Kluivert", "Drogba", "Etoo", "Toure", "Weah", "Pele",
	"Milla", "Sanchez", "Valderr", "Zanetti", "Batista",
}

// nationalities weight the paper's focus countries (Brazil, Spain,
// Argentina, ...) higher so the §2.3 example constraints ("a player from
// Brazil", "a player from Spain") are comfortably satisfiable from worker
// knowledge.
var nationalities = []string{
	"Argentina", "Argentina", "Argentina", "Brazil", "Brazil", "Brazil",
	"Spain", "Spain", "Spain", "England", "England", "Germany", "Germany",
	"Netherlands", "Italy", "France", "Portugal", "Uruguay", "Colombia",
	"Chile", "Mexico", "Cameroon", "Ghana", "Nigeria", "Ivory Coast",
	"Japan", "South Korea", "USA", "Belgium", "Croatia", "Sweden",
	"Denmark", "Poland",
}

var positions = []string{"GK", "DF", "MF", "FW"}

// SoccerSchema returns the paper's §6 experimental schema:
// SoccerPlayer(name, nationality, position, caps, goals, dob) with key
// (name, nationality).
func SoccerSchema() *model.Schema {
	return model.MustSchema("SoccerPlayer", []model.Column{
		{Name: "name", Type: model.TypeString},
		{Name: "nationality", Type: model.TypeString},
		{Name: "position", Type: model.TypeString, Domain: positions},
		{Name: "caps", Type: model.TypeInt},
		{Name: "goals", Type: model.TypeInt},
		{Name: "dob", Type: model.TypeDate},
	}, "name", "nationality")
}

// SoccerPlayers generates n synthetic players with caps in [80, 99] — the
// paper estimates more than 200 real players fall in that range, so n
// defaults well above any collected table size. Deterministic per seed.
func SoccerPlayers(seed int64, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	s := SoccerSchema()
	d := &Dataset{Schema: s}
	seen := make(map[string]bool)
	for len(d.Rows) < n {
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		nat := nationalities[rng.Intn(len(nationalities))]
		key := name + "|" + nat
		if seen[key] {
			continue
		}
		seen[key] = true
		pos := positions[rng.Intn(len(positions))]
		caps := 80 + rng.Intn(20) // [80, 99] per the paper's task
		goals := rng.Intn(60)
		if pos == "GK" {
			goals = 0
		}
		dob := fmt.Sprintf("%04d-%02d-%02d", 1950+rng.Intn(50), 1+rng.Intn(12), 1+rng.Intn(28))
		d.Rows = append(d.Rows, model.VectorOf(
			name, nat, pos, fmt.Sprint(caps), fmt.Sprint(goals), dob))
	}
	return d
}

// Generic generates a key-unique ground truth for an arbitrary schema
// (used by the varied-workload estimation experiments, §6).
func Generic(seed int64, s *model.Schema, n int) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Schema: s}
	seen := make(map[string]bool)
	for attempt := 0; len(d.Rows) < n && attempt < n*100; attempt++ {
		vec := model.NewVector(s.NumColumns())
		for i, col := range s.Columns {
			vec[i] = model.Cell{Set: true, Val: randomValue(rng, col)}
		}
		k := vec.KeyOf(s)
		if seen[k] {
			continue
		}
		seen[k] = true
		d.Rows = append(d.Rows, vec)
	}
	return d
}

func randomValue(rng *rand.Rand, col model.Column) string {
	if len(col.Domain) > 0 {
		return col.Domain[rng.Intn(len(col.Domain))]
	}
	switch col.Type {
	case model.TypeInt:
		return fmt.Sprint(rng.Intn(1000))
	case model.TypeFloat:
		return fmt.Sprintf("%.2f", rng.Float64()*1000)
	case model.TypeDate:
		return fmt.Sprintf("%04d-%02d-%02d", 1950+rng.Intn(70), 1+rng.Intn(12), 1+rng.Intn(28))
	default:
		return fmt.Sprintf("%s-%s-%d",
			firstNames[rng.Intn(len(firstNames))],
			lastNames[rng.Intn(len(lastNames))],
			rng.Intn(10000))
	}
}

// LookupByKey returns the truth row whose key cells match v's (which must
// have all key cells set), or nil.
func (d *Dataset) LookupByKey(v model.Vector) model.Vector {
	want := v.Project(d.Schema.KeyColumns())
	for _, row := range d.Rows {
		if want.Subset(row) {
			return row
		}
	}
	return nil
}

// Contains reports whether v exactly equals some truth row.
func (d *Dataset) Contains(v model.Vector) bool {
	for _, row := range d.Rows {
		if row.Equal(v) {
			return true
		}
	}
	return false
}
