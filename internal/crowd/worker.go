package crowd

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"crowdfill/internal/client"
	"crowdfill/internal/model"
)

// Spec parameterizes one simulated worker.
type Spec struct {
	// Name is the worker identity.
	Name string
	// Knowledge is the fraction of the ground truth this worker knows.
	Knowledge float64
	// FillAccuracy is the probability a fill uses the correct value.
	FillAccuracy float64
	// VoteAccuracy is the probability a vote matches the worker's own
	// knowledge-based judgement.
	VoteAccuracy float64
	// VotePreference is the probability of voting when both voting and
	// filling are possible.
	VotePreference float64
	// FillTime holds per-column mean think times (defaults applied when
	// short); VoteTime is the mean think time for votes.
	FillTime []time.Duration
	VoteTime time.Duration
	// ReconsiderProb is the probability that the worker re-researches a
	// contested row they already voted on (upvotes and downvotes both
	// present) and, if their vote now looks wrong, undoes it and votes the
	// other way — the paper's §8 vote-undo extension put to work. Without
	// reconsideration, a tied row can exhaust all eligible voters and
	// deadlock at score zero.
	ReconsiderProb float64
	// ResearchProb is the probability that, facing a complete row whose
	// entity the worker doesn't know, they "research" it (the human
	// analogue: a web search) and vote against the full ground truth.
	// Without research, rows only the entering worker knows could never
	// attract the votes completion requires.
	ResearchProb float64
	// DecidedNet is the net-vote margin at which workers consider a row
	// settled and stop piling votes on (default 2, matching majority-of-3
	// scoring; a majority-of-5 run needs 4). Mirrors how the data-entry
	// interface communicates how much verification a row still needs.
	DecidedNet int
	// FocusFill makes the worker prefer filling the most-complete row
	// first (the §8 recommendation strategy) instead of picking among
	// possible fills at random.
	FocusFill bool
	// LatencySigma is the lognormal spread of think times around their
	// means (0 means the default 0.6). Human latencies are heavy-tailed;
	// the spread is what makes the weighted schemes' medians hard to
	// estimate online (§6's scheme-dependent estimation accuracy).
	LatencySigma float64
	// Spammer makes the worker enter fast garbage and vote randomly
	// (the §8 threat model; used by the spammer-impact experiments).
	Spammer bool
	// Seed randomizes this worker independently.
	Seed int64
}

// ActionKind classifies a worker decision.
type ActionKind int

const (
	// ActIdle means nothing to do right now; try again later.
	ActIdle ActionKind = iota
	// ActFill fills Row's column Col with Value.
	ActFill
	// ActUpvote / ActDownvote vote on Row.
	ActUpvote
	ActDownvote
	// ActReconsider undoes the worker's earlier vote on Row and casts the
	// opposite one (Up gives the new direction).
	ActReconsider
)

// Decision is one step of worker behavior: what to do and how long the
// worker "thinks" before the action's message is generated. Think times are
// what the compensation scheme's latency statistics measure (§5.2.2).
type Decision struct {
	Kind  ActionKind
	Row   model.RowID
	Col   int
	Value string
	Up    bool // ActReconsider: the new vote direction
	Think time.Duration
}

// Worker is the behavior model bound to one worker identity. It is driven by
// the simulation harness: Decide inspects the worker's client view and
// produces the next Decision; the harness executes it against the client and
// schedules the resulting messages.
type Worker struct {
	Spec  Spec
	truth *Dataset
	rng   *rand.Rand
	known []model.Vector
}

// NewWorker binds a spec to the ground truth, sampling the worker's
// knowledge subset.
func NewWorker(spec Spec, truth *Dataset) *Worker {
	rng := rand.New(rand.NewSource(spec.Seed))
	w := &Worker{Spec: spec, truth: truth, rng: rng}
	for _, row := range truth.Rows {
		if rng.Float64() < spec.Knowledge {
			w.known = append(w.known, row)
		}
	}
	// Shuffle so different workers walk their knowledge in different orders;
	// otherwise everyone starts the same "next" entity and collides.
	rng.Shuffle(len(w.known), func(i, j int) { w.known[i], w.known[j] = w.known[j], w.known[i] })
	return w
}

// KnownRows returns how many ground-truth rows the worker knows.
func (w *Worker) KnownRows() int { return len(w.known) }

func (w *Worker) fillMean(col int) time.Duration {
	if col < len(w.Spec.FillTime) && w.Spec.FillTime[col] > 0 {
		return w.Spec.FillTime[col]
	}
	return 8 * time.Second
}

func (w *Worker) voteMean() time.Duration {
	if w.Spec.VoteTime > 0 {
		return w.Spec.VoteTime
	}
	return 4 * time.Second
}

// jitter draws a lognormal think time with the given mean: heavy-tailed,
// like human response latencies.
func (w *Worker) jitter(mean time.Duration) time.Duration {
	sigma := w.Spec.LatencySigma
	if sigma == 0 {
		sigma = 0.6
	}
	// E[exp(sigma*Z - sigma^2/2)] = 1, so the mean is preserved.
	f := math.Exp(sigma*w.rng.NormFloat64() - sigma*sigma/2)
	return time.Duration(float64(mean) * f)
}

// Jitter draws a think time around mean using the worker's latency model
// (exported for the microtask baseline, which shares the crowd model).
func (w *Worker) Jitter(mean time.Duration) time.Duration { return w.jitter(mean) }

// Decide picks the worker's next action given their current table view.
func (w *Worker) Decide(c *client.Client) Decision {
	if w.Spec.Spammer {
		return w.decideSpammer(c)
	}
	rows := c.Rows(w.rng) // randomized presentation, as in the UI (§3.4)

	type vote struct {
		row *model.Row
		up  bool
	}
	var votes []vote
	var fills []Decision
	var reconsiders []Decision

	// Transparency: workers see every entity already started and avoid
	// entering duplicates (one of the table-filling approach's advantages
	// the paper's §1 calls out).
	kc0 := w.truth.Schema.KeyColumns()[0]
	taken := make(map[string]bool)
	for _, r := range rows {
		if r.Vec[kc0].Set {
			taken[r.Vec[kc0].Val] = true
		}
	}

	for _, r := range rows {
		// Voting opportunities. Rows already clearly decided attract no
		// further piling-on: an extra vote on a settled row earns nothing
		// under contribution-based pay, and the displayed estimates steer
		// real workers the same way.
		decidedNet := w.Spec.DecidedNet
		if decidedNet == 0 {
			decidedNet = 2
		}
		decidedUp := r.Up-r.Down >= decidedNet
		decidedDown := r.Down-r.Up >= decidedNet
		if r.Vec.IsPartial() && !c.VotedOn(r.Vec) && !decidedDown {
			if r.Vec.IsComplete() {
				if truth := w.lookupKnown(r.Vec); truth != nil {
					up := truth.Equal(r.Vec)
					if !(up && decidedUp) {
						votes = append(votes, vote{row: r, up: up})
					}
				} else if !decidedUp && w.rng.Float64() < w.Spec.ResearchProb {
					// Research an unknown entity against the full truth:
					// a fabricated key earns a downvote.
					full := w.truth.LookupByKey(r.Vec)
					votes = append(votes, vote{row: r, up: full != nil && full.Equal(r.Vec)})
				}
			} else if w.conflictsWithKnowledge(r.Vec) {
				votes = append(votes, vote{row: r, up: false})
			} else if w.rng.Float64() < w.Spec.ResearchProb && !w.truthSupports(r.Vec) {
				// Research a suspicious partial row (e.g. a typo'd name no
				// search would confirm): downvote data no truth supports.
				votes = append(votes, vote{row: r, up: false})
			}
		}
		// Filling opportunities.
		if d, ok := w.fillFor(r, taken); ok {
			fills = append(fills, d)
		}
		// Reconsideration opportunities: a contested complete row this
		// worker voted on.
		if r.Vec.IsComplete() && r.Up > 0 && r.Down > 0 && c.VoteDirection(r.Vec) != 0 &&
			w.rng.Float64() < w.Spec.ReconsiderProb {
			full := w.truth.LookupByKey(r.Vec)
			judge := full != nil && full.Equal(r.Vec)
			if w.rng.Float64() >= w.Spec.VoteAccuracy {
				judge = !judge
			}
			votedUp := c.VoteDirection(r.Vec) > 0
			if judge != votedUp {
				reconsiders = append(reconsiders, Decision{
					Kind: ActReconsider, Row: r.ID, Up: judge,
					Think: w.jitter(2 * w.voteMean()),
				})
			}
		}
	}

	// VotePreference zero means the worker never votes (the paper's §6 run
	// had such a worker); otherwise voting wins by preference, or by
	// default when no fill is possible.
	wantsVote := w.Spec.VotePreference > 0 &&
		(len(fills) == 0 || w.rng.Float64() < w.Spec.VotePreference)
	switch {
	case len(votes) > 0 && wantsVote:
		v := votes[w.rng.Intn(len(votes))]
		up := v.up
		if w.rng.Float64() >= w.Spec.VoteAccuracy {
			up = !up
		}
		kind := ActDownvote
		if up {
			kind = ActUpvote
		}
		// Upvotes only apply to complete rows; an "accidental" upvote of a
		// partial row becomes a skipped turn.
		if up && !v.row.Vec.IsComplete() {
			return Decision{Kind: ActIdle, Think: w.jitter(w.voteMean())}
		}
		return Decision{Kind: kind, Row: v.row.ID, Think: w.jitter(w.voteMean())}
	case len(fills) > 0:
		if w.Spec.FocusFill {
			// Recommendation strategy (§8): complete the nearest-finished
			// row first, accelerating verification.
			best := fills[0]
			bestSet := -1
			for _, d := range fills {
				if row := c.Replica().Table().Get(d.Row); row != nil {
					if n := row.Vec.CountSet(); n > bestSet {
						bestSet = n
						best = d
					}
				}
			}
			return best
		}
		return fills[w.rng.Intn(len(fills))]
	case len(reconsiders) > 0:
		return reconsiders[w.rng.Intn(len(reconsiders))]
	default:
		return Decision{Kind: ActIdle, Think: w.jitter(5 * time.Second)}
	}
}

// fillFor proposes a fill on row r, if this worker can contribute to it.
// taken holds first-key-column values already present in the table.
func (w *Worker) fillFor(r *model.Row, taken map[string]bool) (Decision, bool) {
	if r.Vec.IsComplete() {
		return Decision{}, false
	}
	if r.Vec.IsEmpty() {
		// Start a new entity the worker knows and nobody has started. The
		// transparency of table-filling makes the "nobody has started" check
		// possible: the taken set holds every visible leading key value.
		truth := w.pickFreshTruth(taken)
		if truth == nil {
			return Decision{}, false
		}
		col := w.truth.Schema.KeyColumns()[0]
		return Decision{
			Kind:  ActFill,
			Row:   r.ID,
			Col:   col,
			Value: w.valueFor(truth, col),
			Think: w.jitter(w.fillMean(col)),
		}, true
	}
	truth := w.matchKnownFresh(r.Vec, taken)
	if truth == nil {
		return Decision{}, false
	}
	// Fill the first empty column (schema order: keys tend first).
	for col := range r.Vec {
		if !r.Vec[col].Set {
			return Decision{
				Kind:  ActFill,
				Row:   r.ID,
				Col:   col,
				Value: w.valueFor(truth, col),
				Think: w.jitter(w.fillMean(col)),
			}, true
		}
	}
	return Decision{}, false
}

// valueFor returns the truth value with probability FillAccuracy, otherwise
// a plausible wrong value of the right type.
func (w *Worker) valueFor(truth model.Vector, col int) string {
	correct := truth[col].Val
	if w.rng.Float64() < w.Spec.FillAccuracy {
		return correct
	}
	return w.wrongValue(col, correct)
}

func (w *Worker) wrongValue(col int, correct string) string {
	c := w.truth.Schema.Columns[col]
	if len(c.Domain) > 0 {
		for i := 0; i < 8; i++ {
			v := c.Domain[w.rng.Intn(len(c.Domain))]
			if v != correct {
				return v
			}
		}
		return correct
	}
	switch c.Type {
	case model.TypeInt:
		return fmt.Sprint(1 + w.rng.Intn(150))
	case model.TypeFloat:
		return fmt.Sprintf("%.2f", w.rng.Float64()*100)
	case model.TypeDate:
		return fmt.Sprintf("%04d-%02d-%02d", 1950+w.rng.Intn(50), 1+w.rng.Intn(12), 1+w.rng.Intn(28))
	default:
		return correct + "e" // a typo
	}
}

// lookupKnown finds the known truth row with the same key as v (which must
// have its key complete), or nil if this worker cannot judge it.
func (w *Worker) lookupKnown(v model.Vector) model.Vector {
	want := v.Project(w.truth.Schema.KeyColumns())
	for _, row := range w.known {
		if want.Subset(row) {
			return row
		}
	}
	return nil
}

// matchKnown finds a known truth row consistent with every set cell of v.
func (w *Worker) matchKnown(v model.Vector) model.Vector {
	for _, row := range w.known {
		if v.Subset(row) {
			return row
		}
	}
	return nil
}

// matchKnownFresh finds a known truth row consistent with v, avoiding
// entities already visible in the table when v's leading key cell is still
// open (otherwise the worker would keep re-entering the same entity into
// every template-seeded row and thrash forever).
func (w *Worker) matchKnownFresh(v model.Vector, taken map[string]bool) model.Vector {
	kc0 := w.truth.Schema.KeyColumns()[0]
	keyPinned := v[kc0].Set
	for _, row := range w.known {
		if !v.Subset(row) {
			continue
		}
		if keyPinned || !taken[row[kc0].Val] {
			return row
		}
	}
	return nil
}

// truthSupports reports whether any ground-truth row is consistent with all
// of v's set cells (the research check for suspicious partial rows).
func (w *Worker) truthSupports(v model.Vector) bool {
	for _, row := range w.truth.Rows {
		if v.Subset(row) {
			return true
		}
	}
	return false
}

// conflictsWithKnowledge reports whether v's key is known but some set value
// contradicts the truth — a downvoting opportunity on a partial row.
func (w *Worker) conflictsWithKnowledge(v model.Vector) bool {
	if !v.KeyComplete(w.truth.Schema) {
		return false
	}
	truth := w.lookupKnown(v)
	if truth == nil {
		return false
	}
	return !v.Subset(truth)
}

// pickFreshTruth returns a known truth row whose leading key value is not
// already visible in the table.
func (w *Worker) pickFreshTruth(taken map[string]bool) model.Vector {
	kc0 := w.truth.Schema.KeyColumns()[0]
	for _, row := range w.known {
		if !taken[row[kc0].Val] {
			return row
		}
	}
	return nil
}

// decideSpammer fabricates fast garbage fills and random votes.
func (w *Worker) decideSpammer(c *client.Client) Decision {
	rows := c.Rows(w.rng)
	for _, r := range rows {
		if r.Vec.IsPartial() && !c.VotedOn(r.Vec) && w.rng.Float64() < 0.3 {
			kind := ActDownvote
			if r.Vec.IsComplete() && w.rng.Float64() < 0.5 {
				kind = ActUpvote
			}
			return Decision{Kind: kind, Row: r.ID, Think: w.jitter(time.Second)}
		}
		for col := range r.Vec {
			if !r.Vec[col].Set {
				return Decision{
					Kind:  ActFill,
					Row:   r.ID,
					Col:   col,
					Value: w.wrongValue(col, ""),
					Think: w.jitter(time.Second),
				}
			}
		}
	}
	return Decision{Kind: ActIdle, Think: w.jitter(2 * time.Second)}
}
