// Package replay rebuilds a collection from its bookkeeping trace (paper
// §3.3: the back-end stores a complete trace of worker actions). Because the
// trace carries every primitive operation in server-processing order,
// replaying it through a fresh replica reproduces the candidate table, the
// final table, and — under any allocation scheme — the exact compensation.
// That makes the trace an audit artifact: "why did worker X earn $Y" is
// answerable offline, without the live system.
package replay

import (
	"errors"
	"fmt"
	"sort"

	"crowdfill/internal/model"
	"crowdfill/internal/pay"
	"crowdfill/internal/sync"
)

// Rebuild replays the interleaved CC log and worker trace (ordered by the
// server-assigned timestamps) into a fresh replica.
func Rebuild(schema *model.Schema, trace, ccLog []sync.Message) (*sync.Replica, error) {
	if schema == nil {
		return nil, errors.New("replay: schema required")
	}
	msgs := make([]sync.Message, 0, len(trace)+len(ccLog))
	msgs = append(msgs, trace...)
	msgs = append(msgs, ccLog...)
	sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].TS < msgs[j].TS })
	rep := sync.NewReplica(schema)
	for i, m := range msgs {
		switch m.Type {
		case sync.MsgInsert, sync.MsgReplace, sync.MsgUpvote, sync.MsgDownvote,
			sync.MsgUnupvote, sync.MsgUndownvote:
			if err := rep.Apply(m); err != nil {
				return nil, fmt.Errorf("replay: message %d (%v at ts %d): %w", i, m.Type, m.TS, err)
			}
		default:
			return nil, fmt.Errorf("replay: unexpected %v message in trace", m.Type)
		}
	}
	return rep, nil
}

// Audit is the outcome of replaying and re-deriving a collection.
type Audit struct {
	// Replica is the rebuilt end-of-run state.
	Replica *sync.Replica
	// Final is the re-derived final table.
	Final []*model.Row
	// Alloc is the recomputed compensation.
	Alloc *pay.Allocation
	// Messages counts replayed messages (worker + CC).
	Messages int
}

// Input configures an audit.
type Input struct {
	Schema *model.Schema
	Score  model.ScoreFunc
	Budget float64
	Scheme pay.Scheme
	Trace  []sync.Message
	CCLog  []sync.Message
	// JoinTime optionally carries worker join times; absent entries fall
	// back to the collection start (the first message's timestamp).
	JoinTime map[string]int64
}

// Run replays the trace, re-derives the final table, checks the Lemma 3
// invariants on the rebuilt replica, and recomputes compensation.
func Run(in Input) (*Audit, error) {
	if in.Score == nil {
		in.Score = model.DefaultScore
	}
	rep, err := Rebuild(in.Schema, in.Trace, in.CCLog)
	if err != nil {
		return nil, err
	}
	if err := rep.CheckLemma3(); err != nil {
		return nil, fmt.Errorf("replay: rebuilt replica inconsistent: %w", err)
	}
	final := model.FinalTable(rep.Table(), in.Score)
	start := int64(0)
	if len(in.CCLog) > 0 {
		start = in.CCLog[0].TS
	} else if len(in.Trace) > 0 {
		start = in.Trace[0].TS
	}
	alloc, err := pay.Compute(pay.Input{
		Schema:   in.Schema,
		Budget:   in.Budget,
		Scheme:   in.Scheme,
		Final:    final,
		Trace:    in.Trace,
		CCLog:    in.CCLog,
		JoinTime: in.JoinTime,
		Start:    start,
	})
	if err != nil {
		return nil, err
	}
	return &Audit{
		Replica:  rep,
		Final:    final,
		Alloc:    alloc,
		Messages: len(in.Trace) + len(in.CCLog),
	}, nil
}
