package replay

import (
	"math"
	"testing"

	"crowdfill/internal/exp"
	"crowdfill/internal/model"
	"crowdfill/internal/pay"
	"crowdfill/internal/sync"
)

// TestReplayReproducesRun is the audit guarantee: rebuilding a finished
// collection from its trace reproduces the master replica byte-for-byte,
// the same final table, and the same compensation.
func TestReplayReproducesRun(t *testing.T) {
	res, err := exp.Run(exp.RepresentativeConfig(exp.DefaultSeed))
	if err != nil {
		t.Fatal(err)
	}
	core := res.Core
	audit, err := Run(Input{
		Schema:   core.Master().Schema(),
		Score:    model.MajorityShortcut(3),
		Budget:   10,
		Scheme:   pay.DualWeighted,
		Trace:    core.Trace(),
		CCLog:    core.CCLog(),
		JoinTime: core.JoinTimes(),
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if audit.Replica.SnapshotText() != core.Master().SnapshotText() {
		t.Fatalf("rebuilt replica differs from the live master")
	}
	if len(audit.Final) != res.FinalRows {
		t.Fatalf("rebuilt final rows = %d, want %d", len(audit.Final), res.FinalRows)
	}
	// Compensation recomputes — but the start baseline differs (the audit
	// anchors on the first CC message rather than the server's construction
	// time), which shifts only the first-action gap of each worker. Totals
	// must still be close, and per-worker within a few cents.
	for w, want := range res.Alloc.PerWorker {
		got := audit.Alloc.PerWorker[w]
		if math.Abs(got-want) > 0.1 {
			t.Fatalf("worker %s pay %v, live run paid %v", w, got, want)
		}
	}
	if audit.Messages != len(core.Trace())+len(core.CCLog()) {
		t.Fatalf("messages = %d", audit.Messages)
	}
}

// TestReplayExactWithSameBaseline: feeding the exact join times and start
// reproduces compensation to the cent.
func TestReplayExactWithSameBaseline(t *testing.T) {
	res, err := exp.Run(exp.RepresentativeConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	core := res.Core
	rep, err := Rebuild(core.Master().Schema(), core.Trace(), core.CCLog())
	if err != nil {
		t.Fatal(err)
	}
	final := model.FinalTable(rep.Table(), model.MajorityShortcut(3))
	alloc, err := pay.Compute(pay.Input{
		Schema:   core.Master().Schema(),
		Budget:   10,
		Scheme:   pay.DualWeighted,
		Final:    final,
		Trace:    core.Trace(),
		CCLog:    core.CCLog(),
		JoinTime: core.JoinTimes(),
		Start:    core.StartTime(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range res.Alloc.PerWorker {
		if got := alloc.PerWorker[w]; math.Abs(got-want) > 1e-9 {
			t.Fatalf("worker %s pay %v != live %v", w, got, want)
		}
	}
}

func TestReplayErrors(t *testing.T) {
	if _, err := Rebuild(nil, nil, nil); err == nil {
		t.Errorf("nil schema should fail")
	}
	s := model.MustSchema("T", []model.Column{{Name: "a"}}, "a")
	// Snapshot messages don't belong in traces.
	if _, err := Rebuild(s, []sync.Message{{Type: sync.MsgSnapshot}}, nil); err == nil {
		t.Errorf("snapshot in trace should fail")
	}
	// A duplicate insert makes the replay inconsistent.
	bad := []sync.Message{
		{Type: sync.MsgInsert, Row: "x", TS: 1},
		{Type: sync.MsgInsert, Row: "x", TS: 2},
	}
	if _, err := Rebuild(s, bad, nil); err == nil {
		t.Errorf("duplicate insert should fail")
	}
}

// TestReplaySchemeReinterpretation: an auditor can re-run the same trace
// under a different allocation scheme (the E4 experiment, offline).
func TestReplaySchemeReinterpretation(t *testing.T) {
	res, err := exp.Run(exp.RepresentativeConfig(exp.DefaultSeed))
	if err != nil {
		t.Fatal(err)
	}
	core := res.Core
	uni, err := Run(Input{
		Schema:   core.Master().Schema(),
		Score:    model.MajorityShortcut(3),
		Budget:   10,
		Scheme:   pay.Uniform,
		Trace:    core.Trace(),
		CCLog:    core.CCLog(),
		JoinTime: core.JoinTimes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	liveUni, err := core.ComputePayWith(pay.Uniform)
	if err != nil {
		t.Fatal(err)
	}
	for w, want := range liveUni.PerWorker {
		if got := uni.Alloc.PerWorker[w]; math.Abs(got-want) > 0.1 {
			t.Fatalf("uniform reinterpretation differs for %s: %v vs %v", w, got, want)
		}
	}
}
