// Package docstore is an embedded JSON document store — the stand-in for the
// MongoDB/MongoLab database the paper's front-end server used (§3.2). It
// provides named collections of JSON documents with generated ids, equality
// and comparison filters, and atomic whole-store persistence to a single
// file. Exactly what storing table specifications and collected results
// needs; nothing more.
package docstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	gosync "sync"
)

// ErrNotFound is returned when a document id does not exist.
var ErrNotFound = errors.New("docstore: document not found")

// Doc is one stored document: its id plus the raw JSON body.
type Doc struct {
	ID   string
	Body json.RawMessage
}

// Decode unmarshals the document body into out.
func (d Doc) Decode(out any) error { return json.Unmarshal(d.Body, out) }

// Store is a collection namespace, optionally persisted to one JSON file.
type Store struct {
	mu    gosync.RWMutex
	path  string
	colls map[string]*collData
}

type collData struct {
	Seq  int64                      `json:"seq"`
	Docs map[string]json.RawMessage `json:"docs"`
}

// Open loads (or initializes) a store. An empty path keeps the store purely
// in memory.
func Open(path string) (*Store, error) {
	s := &Store{path: path, colls: make(map[string]*collData)}
	if path == "" {
		return s, nil
	}
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return s, nil
	}
	if err != nil {
		return nil, fmt.Errorf("docstore: open: %w", err)
	}
	if err := json.Unmarshal(data, &s.colls); err != nil {
		return nil, fmt.Errorf("docstore: corrupt store file %s: %w", path, err)
	}
	for _, c := range s.colls {
		if c.Docs == nil {
			c.Docs = make(map[string]json.RawMessage)
		}
	}
	return s, nil
}

// Collection returns a handle on the named collection, creating it if new.
func (s *Store) Collection(name string) *Collection {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.colls[name]; !ok {
		s.colls[name] = &collData{Docs: make(map[string]json.RawMessage)}
	}
	return &Collection{store: s, name: name}
}

// Collections lists existing collection names, sorted.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.colls))
	for name := range s.colls {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// flushLocked writes the store to disk atomically (tmp file + rename).
// Callers hold the write lock.
func (s *Store) flushLocked() error {
	if s.path == "" {
		return nil
	}
	data, err := json.MarshalIndent(s.colls, "", " ")
	if err != nil {
		return fmt.Errorf("docstore: marshal: %w", err)
	}
	tmp := s.path + ".tmp"
	if err := os.MkdirAll(filepath.Dir(s.path), 0o755); err != nil {
		return fmt.Errorf("docstore: mkdir: %w", err)
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("docstore: write: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("docstore: rename: %w", err)
	}
	return nil
}

// Flush persists the store (no-op for memory-only stores).
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flushLocked()
}

// Collection is a handle on one named collection.
type Collection struct {
	store *Store
	name  string
}

func (c *Collection) data() *collData { return c.store.colls[c.name] }

// Insert stores a new document and returns its generated id.
func (c *Collection) Insert(doc any) (string, error) {
	body, err := json.Marshal(doc)
	if err != nil {
		return "", fmt.Errorf("docstore: marshal doc: %w", err)
	}
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	d := c.data()
	d.Seq++
	id := fmt.Sprintf("%s-%06d", c.name, d.Seq)
	d.Docs[id] = body
	return id, c.store.flushLocked()
}

// Put stores or replaces the document with the given id.
func (c *Collection) Put(id string, doc any) error {
	body, err := json.Marshal(doc)
	if err != nil {
		return fmt.Errorf("docstore: marshal doc: %w", err)
	}
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	c.data().Docs[id] = body
	return c.store.flushLocked()
}

// Get decodes the document with the given id into out.
func (c *Collection) Get(id string, out any) error {
	c.store.mu.RLock()
	body, ok := c.data().Docs[id]
	c.store.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	return json.Unmarshal(body, out)
}

// Delete removes the document with the given id.
func (c *Collection) Delete(id string) error {
	c.store.mu.Lock()
	defer c.store.mu.Unlock()
	d := c.data()
	if _, ok := d.Docs[id]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, id)
	}
	delete(d.Docs, id)
	return c.store.flushLocked()
}

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.store.mu.RLock()
	defer c.store.mu.RUnlock()
	return len(c.data().Docs)
}

// All returns every document, sorted by id.
func (c *Collection) All() []Doc {
	c.store.mu.RLock()
	defer c.store.mu.RUnlock()
	out := make([]Doc, 0, len(c.data().Docs))
	for id, body := range c.data().Docs {
		out = append(out, Doc{ID: id, Body: append(json.RawMessage(nil), body...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Find returns the documents whose top-level fields match the filter, sorted
// by id. Filter values compare for equality; a nested map of the form
// {"$gt": v} / {"$gte": v} / {"$lt": v} / {"$lte": v} / {"$ne": v} compares
// (numbers numerically, everything else as strings).
func (c *Collection) Find(filter map[string]any) ([]Doc, error) {
	all := c.All()
	if len(filter) == 0 {
		return all, nil
	}
	var out []Doc
	for _, doc := range all {
		var fields map[string]any
		if err := json.Unmarshal(doc.Body, &fields); err != nil {
			continue // non-object documents never match field filters
		}
		ok, err := matches(fields, filter)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, doc)
		}
	}
	return out, nil
}

func matches(fields, filter map[string]any) (bool, error) {
	for key, want := range filter {
		got, ok := fields[key]
		if !ok {
			return false, nil
		}
		if op, isOp := want.(map[string]any); isOp {
			ok, err := matchOps(got, op)
			if err != nil || !ok {
				return false, err
			}
			continue
		}
		if !looseEqual(got, want) {
			return false, nil
		}
	}
	return true, nil
}

func matchOps(got any, ops map[string]any) (bool, error) {
	for op, operand := range ops {
		cmp, comparable := compareValues(got, operand)
		switch op {
		case "$ne":
			if looseEqual(got, operand) {
				return false, nil
			}
		case "$gt":
			if !comparable || cmp <= 0 {
				return false, nil
			}
		case "$gte":
			if !comparable || cmp < 0 {
				return false, nil
			}
		case "$lt":
			if !comparable || cmp >= 0 {
				return false, nil
			}
		case "$lte":
			if !comparable || cmp > 0 {
				return false, nil
			}
		default:
			return false, fmt.Errorf("docstore: unknown filter operator %q", op)
		}
	}
	return true, nil
}

// looseEqual compares JSON-decoded values, treating all numbers as float64.
func looseEqual(a, b any) bool {
	if fa, ok := toFloat(a); ok {
		if fb, ok2 := toFloat(b); ok2 {
			return fa == fb
		}
		return false
	}
	return fmt.Sprint(a) == fmt.Sprint(b)
}

// compareValues orders two values: numerically when both are numbers,
// lexicographically when both are strings.
func compareValues(a, b any) (int, bool) {
	if fa, ok := toFloat(a); ok {
		fb, ok2 := toFloat(b)
		if !ok2 {
			return 0, false
		}
		switch {
		case fa < fb:
			return -1, true
		case fa > fb:
			return 1, true
		}
		return 0, true
	}
	sa, aok := a.(string)
	sb, bok := b.(string)
	if aok && bok {
		return strings.Compare(sa, sb), true
	}
	return 0, false
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	}
	return 0, false
}
