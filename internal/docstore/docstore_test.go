package docstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

type widget struct {
	Name  string  `json:"name"`
	Price float64 `json:"price"`
	Tag   string  `json:"tag,omitempty"`
}

func TestInsertGetDelete(t *testing.T) {
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	c := s.Collection("widgets")
	id, err := c.Insert(widget{Name: "bolt", Price: 1.5})
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	var got widget
	if err := c.Get(id, &got); err != nil || got.Name != "bolt" || got.Price != 1.5 {
		t.Fatalf("Get = %+v, %v", got, err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if err := c.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := c.Get(id, &got); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: %v", err)
	}
	if err := c.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestPutOverwrites(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("w")
	if err := c.Put("fixed", widget{Name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Put("fixed", widget{Name: "b"}); err != nil {
		t.Fatal(err)
	}
	var got widget
	if err := c.Get("fixed", &got); err != nil || got.Name != "b" {
		t.Fatalf("Put overwrite failed: %+v %v", got, err)
	}
}

func TestIDsUniqueAndSorted(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("w")
	var ids []string
	for i := 0; i < 20; i++ {
		id, err := c.Insert(widget{Name: "x"})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	all := c.All()
	if len(all) != 20 {
		t.Fatalf("All = %d docs", len(all))
	}
	for i := range all {
		if all[i].ID != ids[i] {
			t.Fatalf("All order: got %s at %d, want %s", all[i].ID, i, ids[i])
		}
	}
}

func TestFindFilters(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("w")
	c.Insert(widget{Name: "bolt", Price: 1.5, Tag: "metal"})
	c.Insert(widget{Name: "nut", Price: 0.5, Tag: "metal"})
	c.Insert(widget{Name: "washer", Price: 0.25, Tag: "rubber"})

	cases := []struct {
		name   string
		filter map[string]any
		want   int
	}{
		{"equality", map[string]any{"tag": "metal"}, 2},
		{"equality-number", map[string]any{"price": 0.5}, 1},
		{"no-match", map[string]any{"tag": "wood"}, 0},
		{"missing-field", map[string]any{"ghost": 1}, 0},
		{"gt", map[string]any{"price": map[string]any{"$gt": 0.4}}, 2},
		{"gte", map[string]any{"price": map[string]any{"$gte": 0.5}}, 2},
		{"lt", map[string]any{"price": map[string]any{"$lt": 0.5}}, 1},
		{"lte", map[string]any{"price": map[string]any{"$lte": 0.5}}, 2},
		{"ne", map[string]any{"tag": map[string]any{"$ne": "metal"}}, 1},
		{"combined", map[string]any{"tag": "metal", "price": map[string]any{"$lt": 1.0}}, 1},
		{"string-gt", map[string]any{"name": map[string]any{"$gt": "n"}}, 2},
		{"empty", nil, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := c.Find(tc.filter)
			if err != nil {
				t.Fatalf("Find: %v", err)
			}
			if len(got) != tc.want {
				t.Fatalf("Find = %d docs, want %d", len(got), tc.want)
			}
		})
	}
	if _, err := c.Find(map[string]any{"price": map[string]any{"$weird": 1}}); err == nil {
		t.Fatalf("unknown operator should fail")
	}
	// Type-mismatched comparison never matches.
	got, err := c.Find(map[string]any{"name": map[string]any{"$gt": 5}})
	if err != nil || len(got) != 0 {
		t.Fatalf("mismatched comparison = %v, %v", got, err)
	}
}

func TestPersistenceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "store.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	c := s.Collection("w")
	id, err := c.Insert(widget{Name: "bolt", Price: 2})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var got widget
	if err := s2.Collection("w").Get(id, &got); err != nil || got.Name != "bolt" {
		t.Fatalf("reopened Get = %+v, %v", got, err)
	}
	// New inserts after reopen must not collide with existing ids.
	id2, err := s2.Collection("w").Insert(widget{Name: "nut"})
	if err != nil {
		t.Fatal(err)
	}
	if id2 == id {
		t.Fatalf("id collision after reopen")
	}
	if got := s2.Collections(); len(got) != 1 || got[0] != "w" {
		t.Fatalf("Collections = %v", got)
	}
}

func TestOpenCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")
	if err := writeFile(path, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatalf("corrupt store should fail to open")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

func TestInsertUnmarshalableFails(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("w")
	if _, err := c.Insert(make(chan int)); err == nil {
		t.Fatalf("unmarshalable doc should fail")
	}
	if err := c.Put("x", make(chan int)); err == nil {
		t.Fatalf("unmarshalable Put should fail")
	}
}

// TestPropertyInsertedAlwaysFindable: quick-check that any stored string
// document can be found again by its field value.
func TestPropertyInsertedAlwaysFindable(t *testing.T) {
	s, _ := Open("")
	c := s.Collection("w")
	f := func(name string) bool {
		id, err := c.Insert(map[string]string{"name": name})
		if err != nil {
			return false
		}
		var got map[string]string
		if err := c.Get(id, &got); err != nil || got["name"] != name {
			return false
		}
		docs, err := c.Find(map[string]any{"name": name})
		if err != nil {
			return false
		}
		for _, d := range docs {
			var m map[string]string
			if d.Decode(&m) == nil && m["name"] == name {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
