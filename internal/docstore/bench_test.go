package docstore

import (
	"fmt"
	"testing"
)

func BenchmarkInsert(b *testing.B) {
	s, _ := Open("") // memory-only: measures the data structure, not fsync
	c := s.Collection("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(map[string]any{"name": "x", "n": i}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindEquality(b *testing.B) {
	s, _ := Open("")
	c := s.Collection("bench")
	for i := 0; i < 1000; i++ {
		c.Insert(map[string]any{"name": fmt.Sprintf("doc%d", i), "n": i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := c.Find(map[string]any{"name": "doc500"})
		if err != nil || len(docs) != 1 {
			b.Fatal("find broken")
		}
	}
}

func BenchmarkFindRange(b *testing.B) {
	s, _ := Open("")
	c := s.Collection("bench")
	for i := 0; i < 1000; i++ {
		c.Insert(map[string]any{"n": i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := c.Find(map[string]any{"n": map[string]any{"$gte": 900}})
		if err != nil || len(docs) != 100 {
			b.Fatal("range find broken")
		}
	}
}
