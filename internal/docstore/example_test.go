package docstore_test

import (
	"fmt"

	"crowdfill/internal/docstore"
)

// Example stores table-specification documents the way the front-end server
// does, then filters them.
func Example() {
	store, _ := docstore.Open("") // in-memory; pass a path to persist
	specs := store.Collection("specs")

	id, _ := specs.Insert(map[string]any{"name": "SoccerPlayer", "budget": 10.0})
	specs.Insert(map[string]any{"name": "Gadget", "budget": 5.0})

	var got map[string]any
	specs.Get(id, &got)
	fmt.Println(got["name"])

	rich, _ := specs.Find(map[string]any{"budget": map[string]any{"$gte": 8.0}})
	fmt.Println(len(rich), "spec(s) with budget >= 8")
	// Output:
	// SoccerPlayer
	// 1 spec(s) with budget >= 8
}
