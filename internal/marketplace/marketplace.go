// Package marketplace simulates the crowdsourcing marketplace CrowdFill's
// front-end server talks to (paper §3.2, Amazon Mechanical Turk in the
// original). It models externally-hosted HITs, a worker pool with seeded
// arrivals, task acceptance, and bonus payments — in sandbox mode (the
// paper's experiments also ran against the MTurk developer sandbox, where
// compensation is computed but not actually paid).
package marketplace

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	gosync "sync"
	"time"

	"crowdfill/internal/metrics"
	"crowdfill/internal/simclock"
)

// Errors surfaced by marketplace operations.
var (
	ErrNoSuchHIT   = errors.New("marketplace: no such HIT")
	ErrHITExpired  = errors.New("marketplace: HIT expired")
	ErrHITFull     = errors.New("marketplace: all assignments taken")
	ErrBadAmount   = errors.New("marketplace: non-positive payment")
	ErrUnknownWork = errors.New("marketplace: unknown worker")
)

// HIT is one externally-hosted task batch ("Human Intelligence Task").
type HIT struct {
	ID string
	// Title and ExternalURL describe the task; workers accepting it are
	// redirected to the back-end server (§3.1 step 3).
	Title       string
	ExternalURL string
	// MaxAssignments caps concurrent workers.
	MaxAssignments int
	// Accepted lists workers who took the task.
	Accepted []string
	Expired  bool
	Created  time.Time
}

// Payment is one bonus-payment ledger entry.
type Payment struct {
	Worker string
	Amount float64
	Reason string
}

// Marketplace is the simulated marketplace.
type Marketplace struct {
	mu      gosync.Mutex
	rng     *rand.Rand
	clock   simclock.Clock
	sandbox bool
	seq     int64
	hits    map[string]*HIT
	// pool holds worker identities who may accept tasks.
	pool    []string
	nextW   int
	ledger  []Payment
	balance map[string]float64
	stats   mktStats
}

// mktStats is the marketplace's slice of the process metrics: HIT lifecycle
// and payment activity, visible on the same /debug endpoints as the serving
// plane. Counters and gauges only — the marketplace is simdet-scoped, so it
// takes no clock or randomness from the instruments.
type mktStats struct {
	hits      *metrics.Counter
	accepts   *metrics.Counter
	expiries  *metrics.Counter
	payments  *metrics.Counter
	totalPaid *metrics.FloatGauge
}

func newMktStats(r *metrics.Registry) mktStats {
	return mktStats{
		hits:      r.Counter("crowdfill_mkt_hits_total", "HITs created"),
		accepts:   r.Counter("crowdfill_mkt_accepts_total", "task acceptances"),
		expiries:  r.Counter("crowdfill_mkt_expiries_total", "HITs expired"),
		payments:  r.Counter("crowdfill_mkt_payments_total", "bonus payments recorded"),
		totalPaid: r.FloatGauge("crowdfill_mkt_paid_total", "sum of recorded bonus payments"),
	}
}

// New returns a marketplace with a pool of n simulated workers. sandbox
// marks payments as not-real (they are recorded either way).
func New(seed int64, poolSize int, sandbox bool) *Marketplace {
	m := &Marketplace{
		rng:     rand.New(rand.NewSource(seed)),
		clock:   simclock.Real{},
		sandbox: sandbox,
		hits:    make(map[string]*HIT),
		balance: make(map[string]float64),
		stats:   newMktStats(metrics.Default()),
	}
	for i := 0; i < poolSize; i++ {
		m.pool = append(m.pool, fmt.Sprintf("turker-%04d", i+1))
	}
	// Shuffle so arrival order isn't the numeric order.
	m.rng.Shuffle(len(m.pool), func(i, j int) { m.pool[i], m.pool[j] = m.pool[j], m.pool[i] })
	return m
}

// Sandbox reports whether payments are simulated-only.
func (m *Marketplace) Sandbox() bool { return m.sandbox }

// SetClock replaces the time source for HIT creation stamps. Deterministic
// runs inject a simclock.Sim-backed clock; the default is the wall clock.
func (m *Marketplace) SetClock(c simclock.Clock) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.clock = c
}

// CreateHIT publishes a task with an external question URL (§3.2: the
// marketplace must allow externally-hosted questions and bonus payments).
func (m *Marketplace) CreateHIT(title, externalURL string, maxAssignments int) (*HIT, error) {
	if maxAssignments <= 0 {
		return nil, errors.New("marketplace: need at least one assignment")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	h := &HIT{
		ID:             fmt.Sprintf("HIT-%06d", m.seq),
		Title:          title,
		ExternalURL:    externalURL,
		MaxAssignments: maxAssignments,
		Created:        time.Unix(0, m.clock.Now()),
	}
	m.hits[h.ID] = h
	m.stats.hits.Inc()
	return h, nil
}

// GetHIT returns a copy of the HIT.
func (m *Marketplace) GetHIT(id string) (HIT, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hits[id]
	if !ok {
		return HIT{}, fmt.Errorf("%w: %s", ErrNoSuchHIT, id)
	}
	cp := *h
	cp.Accepted = append([]string(nil), h.Accepted...)
	return cp, nil
}

// Accept simulates the next pool worker accepting the HIT, returning the
// worker identity to redirect to the back-end server.
func (m *Marketplace) Accept(hitID string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hits[hitID]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoSuchHIT, hitID)
	}
	if h.Expired {
		return "", fmt.Errorf("%w: %s", ErrHITExpired, hitID)
	}
	if len(h.Accepted) >= h.MaxAssignments {
		return "", fmt.Errorf("%w: %s", ErrHITFull, hitID)
	}
	if m.nextW >= len(m.pool) {
		return "", errors.New("marketplace: worker pool exhausted")
	}
	w := m.pool[m.nextW]
	m.nextW++
	h.Accepted = append(h.Accepted, w)
	m.balance[w] += 0 // materialize the worker in the ledger index
	m.stats.accepts.Inc()
	return w, nil
}

// Expire closes a HIT to further acceptances.
func (m *Marketplace) Expire(hitID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.hits[hitID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNoSuchHIT, hitID)
	}
	h.Expired = true
	m.stats.expiries.Inc()
	return nil
}

// Register adds an out-of-band worker to the ledger — the paper's own
// experiments recruited workers locally rather than through the live
// marketplace, and such workers still need bonus payments.
func (m *Marketplace) Register(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.balance[worker]; !ok {
		m.balance[worker] = 0
	}
}

// PayBonus records a bonus payment to a worker (§3.1 step 5).
func (m *Marketplace) PayBonus(worker string, amount float64, reason string) error {
	if amount <= 0 {
		return fmt.Errorf("%w: %f to %s", ErrBadAmount, amount, worker)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.balance[worker]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownWork, worker)
	}
	m.ledger = append(m.ledger, Payment{Worker: worker, Amount: amount, Reason: reason})
	m.balance[worker] += amount
	m.stats.payments.Inc()
	m.stats.totalPaid.Add(amount)
	return nil
}

// Balance returns the worker's accumulated bonuses.
func (m *Marketplace) Balance(worker string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.balance[worker]
}

// Ledger returns a copy of all payments, in order.
func (m *Marketplace) Ledger() []Payment {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Payment(nil), m.ledger...)
}

// TotalPaid sums all recorded payments.
func (m *Marketplace) TotalPaid() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	for _, p := range m.ledger {
		sum += p.Amount
	}
	return sum
}

// Workers lists workers who have accepted any task, sorted.
func (m *Marketplace) Workers() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.balance))
	for w := range m.balance {
		out = append(out, w)
	}
	sort.Strings(out)
	return out
}
