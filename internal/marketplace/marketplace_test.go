package marketplace

import (
	"errors"
	"testing"
)

func TestHITLifecycle(t *testing.T) {
	m := New(1, 5, true)
	if !m.Sandbox() {
		t.Fatalf("sandbox flag lost")
	}
	h, err := m.CreateHIT("Collect soccer players", "/ws/abc", 3)
	if err != nil {
		t.Fatalf("CreateHIT: %v", err)
	}
	if h.ID == "" || h.ExternalURL != "/ws/abc" {
		t.Fatalf("HIT = %+v", h)
	}
	if _, err := m.CreateHIT("x", "y", 0); err == nil {
		t.Fatalf("zero assignments should fail")
	}

	// Three workers accept; the fourth is rejected.
	seen := map[string]bool{}
	for i := 0; i < 3; i++ {
		w, err := m.Accept(h.ID)
		if err != nil {
			t.Fatalf("Accept %d: %v", i, err)
		}
		if seen[w] {
			t.Fatalf("worker %s accepted twice", w)
		}
		seen[w] = true
	}
	if _, err := m.Accept(h.ID); !errors.Is(err, ErrHITFull) {
		t.Fatalf("full HIT err = %v", err)
	}
	got, err := m.GetHIT(h.ID)
	if err != nil || len(got.Accepted) != 3 {
		t.Fatalf("GetHIT = %+v, %v", got, err)
	}
	if _, err := m.GetHIT("nope"); !errors.Is(err, ErrNoSuchHIT) {
		t.Fatalf("missing HIT err = %v", err)
	}
}

func TestExpire(t *testing.T) {
	m := New(1, 5, true)
	h, _ := m.CreateHIT("x", "y", 5)
	if err := m.Expire(h.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Accept(h.ID); !errors.Is(err, ErrHITExpired) {
		t.Fatalf("expired accept err = %v", err)
	}
	if err := m.Expire("nope"); !errors.Is(err, ErrNoSuchHIT) {
		t.Fatalf("expire missing err = %v", err)
	}
}

func TestPayments(t *testing.T) {
	m := New(1, 3, true)
	h, _ := m.CreateHIT("x", "y", 3)
	w, err := m.Accept(h.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PayBonus(w, 2.5, "run 1"); err != nil {
		t.Fatalf("PayBonus: %v", err)
	}
	if err := m.PayBonus(w, 1.0, "run 2"); err != nil {
		t.Fatal(err)
	}
	if got := m.Balance(w); got != 3.5 {
		t.Fatalf("Balance = %v", got)
	}
	if got := m.TotalPaid(); got != 3.5 {
		t.Fatalf("TotalPaid = %v", got)
	}
	if got := m.Ledger(); len(got) != 2 || got[0].Reason != "run 1" {
		t.Fatalf("Ledger = %+v", got)
	}
	if err := m.PayBonus(w, 0, "zero"); !errors.Is(err, ErrBadAmount) {
		t.Fatalf("zero payment err = %v", err)
	}
	if err := m.PayBonus("stranger", 1, "x"); !errors.Is(err, ErrUnknownWork) {
		t.Fatalf("unknown worker err = %v", err)
	}
	if got := m.Workers(); len(got) != 1 || got[0] != w {
		t.Fatalf("Workers = %v", got)
	}
}

func TestPoolExhaustion(t *testing.T) {
	m := New(1, 2, true)
	h, _ := m.CreateHIT("x", "y", 10)
	if _, err := m.Accept(h.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Accept(h.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Accept(h.ID); err == nil {
		t.Fatalf("pool exhaustion should fail")
	}
}

func TestArrivalOrderSeeded(t *testing.T) {
	a := New(7, 10, true)
	b := New(7, 10, true)
	ha, _ := a.CreateHIT("x", "y", 10)
	hb, _ := b.CreateHIT("x", "y", 10)
	for i := 0; i < 5; i++ {
		wa, _ := a.Accept(ha.ID)
		wb, _ := b.Accept(hb.ID)
		if wa != wb {
			t.Fatalf("same seed should give same arrival order: %s vs %s", wa, wb)
		}
	}
}

func TestRegisterOutOfBandWorker(t *testing.T) {
	m := New(1, 2, true)
	m.Register("local-volunteer")
	if err := m.PayBonus("local-volunteer", 1.5, "direct"); err != nil {
		t.Fatalf("PayBonus after Register: %v", err)
	}
	// Register is idempotent and never clears a balance.
	m.Register("local-volunteer")
	if got := m.Balance("local-volunteer"); got != 1.5 {
		t.Fatalf("Balance = %v", got)
	}
}
