package model

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Cell is one table cell: either empty (Set=false) or holding a canonical
// value.
type Cell struct {
	Set bool   `json:"set"`
	Val string `json:"val,omitempty"`
}

// Vector is the value of a row: one cell per schema column. In the paper's
// notation a Vector is the "value" r̄ of a row r, or a value-vector v over a
// subset of columns (unset cells mark the columns outside the subset).
type Vector []Cell

// NewVector returns an all-empty vector of width n.
func NewVector(n int) Vector { return make(Vector, n) }

// VectorOf builds a vector from raw cell values where "" means empty.
// Values are stored as given (callers validate/canonicalize via Schema).
func VectorOf(vals ...string) Vector {
	v := make(Vector, len(vals))
	for i, s := range vals {
		if s != "" {
			v[i] = Cell{Set: true, Val: s}
		}
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	copy(w, v)
	return w
}

// With returns a copy of v with column col filled in with val.
func (v Vector) With(col int, val string) Vector {
	w := v.Clone()
	w[col] = Cell{Set: true, Val: val}
	return w
}

// IsEmpty reports whether no cell is set (an "empty row").
func (v Vector) IsEmpty() bool { return v.CountSet() == 0 }

// IsPartial reports whether at least one cell is set (a "partial row"; note a
// complete row is also partial by the paper's definition).
func (v Vector) IsPartial() bool { return v.CountSet() > 0 }

// IsComplete reports whether every cell is set (a "complete row").
func (v Vector) IsComplete() bool { return v.CountSet() == len(v) }

// CountSet returns the number of set cells.
func (v Vector) CountSet() int {
	n := 0
	for _, c := range v {
		if c.Set {
			n++
		}
	}
	return n
}

// Equal reports whether v and w have identical cells.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Set != w[i].Set {
			return false
		}
		if v[i].Set && v[i].Val != w[i].Val {
			return false
		}
	}
	return true
}

// Subset reports v ⊆ w: every set cell of v is set in w with an equal value.
func (v Vector) Subset(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Set && (!w[i].Set || v[i].Val != w[i].Val) {
			return false
		}
	}
	return true
}

// Superset reports v ⊇ w.
func (v Vector) Superset(w Vector) bool { return w.Subset(v) }

// Project returns the sub-vector of v restricted to the given column indexes:
// cells outside cols are cleared.
func (v Vector) Project(cols []int) Vector {
	w := NewVector(len(v))
	for _, c := range cols {
		w[c] = v[c]
	}
	return w
}

// KeyComplete reports whether all primary-key cells (per the schema) are set.
func (v Vector) KeyComplete(s *Schema) bool {
	for _, k := range s.KeyColumns() {
		if !v[k].Set {
			return false
		}
	}
	return true
}

// KeyOf returns an opaque comparable key string for the primary-key cells of
// v. Only meaningful when KeyComplete is true.
func (v Vector) KeyOf(s *Schema) string {
	var b strings.Builder
	for _, k := range s.KeyColumns() {
		writeCell(&b, v[k])
	}
	return b.String()
}

// Encode returns an opaque comparable key string uniquely identifying the
// whole vector (used to index the upvote/downvote histories UH and DH).
func (v Vector) Encode() string {
	var b strings.Builder
	for _, c := range v {
		writeCell(&b, c)
	}
	return b.String()
}

func writeCell(b *strings.Builder, c Cell) {
	if !c.Set {
		b.WriteByte('_')
		b.WriteByte('|')
		return
	}
	b.WriteString(strconv.Itoa(len(c.Val)))
	b.WriteByte(':')
	b.WriteString(c.Val)
	b.WriteByte('|')
}

// String renders v for logs and test failures, e.g. "(Messi, Argentina, ·, 83)".
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, c := range v {
		if c.Set {
			parts[i] = c.Val
		} else {
			parts[i] = "·"
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// MarshalJSON encodes the vector as a compact array where null means empty.
func (v Vector) MarshalJSON() ([]byte, error) {
	arr := make([]*string, len(v))
	for i, c := range v {
		if c.Set {
			val := c.Val
			arr[i] = &val
		}
	}
	return json.Marshal(arr)
}

// UnmarshalJSON decodes the array-with-nulls form produced by MarshalJSON.
func (v *Vector) UnmarshalJSON(data []byte) error {
	var arr []*string
	if err := json.Unmarshal(data, &arr); err != nil {
		return fmt.Errorf("model: vector: %w", err)
	}
	w := make(Vector, len(arr))
	for i, p := range arr {
		if p != nil {
			w[i] = Cell{Set: true, Val: *p}
		}
	}
	*v = w
	return nil
}
