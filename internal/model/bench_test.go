package model

import (
	"fmt"
	"testing"
)

// benchCandidate builds an n-row candidate table with ~10% incomplete rows.
func benchCandidate(n int) *Candidate {
	s := MustSchema("T", []Column{
		{Name: "k"}, {Name: "a"}, {Name: "b"}, {Name: "c"},
	}, "k")
	c := NewCandidate(s)
	for i := 0; i < n; i++ {
		vec := VectorOf(fmt.Sprintf("k%d", i), "x", "y", fmt.Sprint(i%7))
		if i%10 == 0 {
			vec[3] = Cell{}
		}
		c.Put(&Row{ID: RowID(fmt.Sprintf("r-%06d", i)), Vec: vec, Up: i % 4, Down: i % 3})
	}
	return c
}

func BenchmarkFinalTable(b *testing.B) {
	for _, n := range []int{20, 200, 2000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			c := benchCandidate(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				FinalTable(c, DefaultScore)
			}
		})
	}
}

func BenchmarkVectorEncode(b *testing.B) {
	v := VectorOf("Lionel Messi", "Argentina", "FW", "83", "37")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Encode()
	}
}

func BenchmarkVectorSubset(b *testing.B) {
	full := VectorOf("Lionel Messi", "Argentina", "FW", "83", "37")
	sub := VectorOf("Lionel Messi", "", "FW", "", "")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sub.Subset(full) {
			b.Fatal("subset broken")
		}
	}
}

func BenchmarkRenderTable(b *testing.B) {
	c := benchCandidate(50)
	rows := c.Rows()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RenderTable(c.Schema(), rows)
	}
}
