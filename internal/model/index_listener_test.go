package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// shadowListener reconstructs the probable set purely from delta callbacks,
// so the test can prove the delta stream is sound (no duplicate adds, no
// removes of absent rows) and complete (replaying it yields exactly the set).
type shadowListener struct {
	t      *testing.T
	rows   map[RowID]*Row
	resets int
}

func (l *shadowListener) ProbableAdded(r *Row) {
	if _, ok := l.rows[r.ID]; ok {
		l.t.Fatalf("duplicate ProbableAdded for %s", r.ID)
	}
	l.rows[r.ID] = r
}

func (l *shadowListener) ProbableRemoved(r *Row) {
	if _, ok := l.rows[r.ID]; !ok {
		l.t.Fatalf("ProbableRemoved for absent row %s", r.ID)
	}
	delete(l.rows, r.ID)
}

func (l *shadowListener) ProbableUpdated(r *Row) {
	if _, ok := l.rows[r.ID]; !ok {
		l.t.Fatalf("ProbableUpdated for absent row %s", r.ID)
	}
}

func (l *shadowListener) IndexReset() {
	l.rows = make(map[RowID]*Row)
	l.resets++
}

// TestDeltaListenerTracksProbable drives a TableIndex through a randomized op
// mix (adds, vote changes, removals, full resets) and checks after every
// flush that the listener-reconstructed probable set matches the index's,
// which debug mode in turn checks against the from-scratch recomputation.
func TestDeltaListenerTracksProbable(t *testing.T) {
	s := MustSchema("KV", []Column{
		{Name: "k", Type: TypeString},
		{Name: "v", Type: TypeString},
	}, "k")
	c := NewCandidate(s)
	idx := NewTableIndex(c, MajorityShortcut(3))
	idx.SetDebug(true)
	sh := &shadowListener{t: t, rows: make(map[RowID]*Row)}
	idx.SetDeltaListener(sh)

	rng := rand.New(rand.NewSource(3))
	cells := []string{"", "a", "b", "c"}
	nextID := 0

	check := func(step int) {
		t.Helper()
		prob := idx.Probable()
		if len(prob) != len(sh.rows) {
			t.Fatalf("step %d: listener holds %d rows, index %d", step, len(sh.rows), len(prob))
		}
		for _, r := range prob {
			if sh.rows[r.ID] != r {
				t.Fatalf("step %d: listener missing probable row %s", step, r.ID)
			}
		}
	}

	for step := 0; step < 600; step++ {
		rows := c.Rows()
		switch op := rng.Intn(10); {
		case op < 4 || len(rows) == 0: // add a row
			nextID++
			r := &Row{
				ID:  RowID(fmt.Sprintf("r-%03d", nextID)),
				Vec: VectorOf(cells[rng.Intn(len(cells))], cells[rng.Intn(len(cells))]),
			}
			c.Put(r)
			idx.RowAdded(r)
		case op < 8: // vote change
			r := rows[rng.Intn(len(rows))]
			if rng.Intn(2) == 0 {
				r.Up++
			} else {
				r.Down++
			}
			idx.RowVotesChanged(r)
		case op < 9: // remove
			r := rows[rng.Intn(len(rows))]
			c.Delete(r.ID)
			idx.RowRemoved(r)
		default: // full rebuild
			idx.TableReset(c)
			if sh.resets == 0 {
				t.Fatalf("step %d: TableReset did not fire IndexReset", step)
			}
		}
		check(step)
	}
	if sh.resets == 0 {
		t.Fatal("op mix never exercised IndexReset")
	}
}
