package model

import (
	"fmt"
	"math/rand"
	"testing"
)

// shadowListener reconstructs the probable set purely from delta callbacks,
// so the test can prove the delta stream is sound (no duplicate adds, no
// removes of absent rows) and complete (replaying it yields exactly the set).
type shadowListener struct {
	t      *testing.T
	rows   map[RowID]*Row
	resets int
}

func (l *shadowListener) ProbableAdded(r *Row) {
	if _, ok := l.rows[r.ID]; ok {
		l.t.Fatalf("duplicate ProbableAdded for %s", r.ID)
	}
	l.rows[r.ID] = r
}

func (l *shadowListener) ProbableRemoved(r *Row) {
	if _, ok := l.rows[r.ID]; !ok {
		l.t.Fatalf("ProbableRemoved for absent row %s", r.ID)
	}
	delete(l.rows, r.ID)
}

func (l *shadowListener) ProbableUpdated(r *Row) {
	if _, ok := l.rows[r.ID]; !ok {
		l.t.Fatalf("ProbableUpdated for absent row %s", r.ID)
	}
}

func (l *shadowListener) IndexReset() {
	l.rows = make(map[RowID]*Row)
	l.resets++
}

// TestDeltaListenerTracksProbable drives a TableIndex through a randomized op
// mix (adds, vote changes, removals, full resets) and checks after every
// flush that the listener-reconstructed probable set matches the index's,
// which debug mode in turn checks against the from-scratch recomputation.
func TestDeltaListenerTracksProbable(t *testing.T) {
	s := MustSchema("KV", []Column{
		{Name: "k", Type: TypeString},
		{Name: "v", Type: TypeString},
	}, "k")
	c := NewCandidate(s)
	idx := NewTableIndex(c, MajorityShortcut(3))
	idx.SetDebug(true)
	sh := &shadowListener{t: t, rows: make(map[RowID]*Row)}
	idx.AddDeltaListener(sh)

	rng := rand.New(rand.NewSource(3))
	cells := []string{"", "a", "b", "c"}
	nextID := 0

	check := func(step int) {
		t.Helper()
		prob := idx.Probable()
		if len(prob) != len(sh.rows) {
			t.Fatalf("step %d: listener holds %d rows, index %d", step, len(sh.rows), len(prob))
		}
		for _, r := range prob {
			if sh.rows[r.ID] != r {
				t.Fatalf("step %d: listener missing probable row %s", step, r.ID)
			}
		}
	}

	for step := 0; step < 600; step++ {
		rows := c.Rows()
		switch op := rng.Intn(10); {
		case op < 4 || len(rows) == 0: // add a row
			nextID++
			r := &Row{
				ID:  RowID(fmt.Sprintf("r-%03d", nextID)),
				Vec: VectorOf(cells[rng.Intn(len(cells))], cells[rng.Intn(len(cells))]),
			}
			c.Put(r)
			idx.RowAdded(r)
		case op < 8: // vote change
			r := rows[rng.Intn(len(rows))]
			if rng.Intn(2) == 0 {
				r.Up++
			} else {
				r.Down++
			}
			idx.RowVotesChanged(r)
		case op < 9: // remove
			r := rows[rng.Intn(len(rows))]
			c.Delete(r.ID)
			idx.RowRemoved(r)
		default: // full rebuild
			idx.TableReset(c)
			if sh.resets == 0 {
				t.Fatalf("step %d: TableReset did not fire IndexReset", step)
			}
		}
		check(step)
	}
	if sh.resets == 0 {
		t.Fatal("op mix never exercised IndexReset")
	}
}

// logEvent is one delta callback observed by a loggingListener.
type logEvent struct {
	listener string
	kind     string
	row      RowID
}

// loggingListener wraps a shadowListener and appends every callback to a
// shared log so tests can assert cross-listener delivery order.
type loggingListener struct {
	shadowListener
	name string
	log  *[]logEvent
}

func (l *loggingListener) ProbableAdded(r *Row) {
	*l.log = append(*l.log, logEvent{l.name, "add", r.ID})
	l.shadowListener.ProbableAdded(r)
}

func (l *loggingListener) ProbableRemoved(r *Row) {
	*l.log = append(*l.log, logEvent{l.name, "remove", r.ID})
	l.shadowListener.ProbableRemoved(r)
}

func (l *loggingListener) ProbableUpdated(r *Row) {
	*l.log = append(*l.log, logEvent{l.name, "update", r.ID})
	l.shadowListener.ProbableUpdated(r)
}

func (l *loggingListener) IndexReset() {
	*l.log = append(*l.log, logEvent{l.name, "reset", ""})
	l.shadowListener.IndexReset()
}

// TestTwoDeltaListeners registers two listeners and checks the multicast
// contract: every delta is delivered to both, in registration order, with
// each delta fully delivered before the next begins — so both shadows track
// the probable set exactly and the shared log alternates a/b pairwise.
func TestTwoDeltaListeners(t *testing.T) {
	s := MustSchema("KV", []Column{
		{Name: "k", Type: TypeString},
		{Name: "v", Type: TypeString},
	}, "k")
	c := NewCandidate(s)
	idx := NewTableIndex(c, MajorityShortcut(3))
	idx.SetDebug(true)

	var log []logEvent
	a := &loggingListener{shadowListener: shadowListener{t: t, rows: make(map[RowID]*Row)}, name: "a", log: &log}
	b := &loggingListener{shadowListener: shadowListener{t: t, rows: make(map[RowID]*Row)}, name: "b", log: &log}
	idx.AddDeltaListener(a)
	idx.AddDeltaListener(b)

	rng := rand.New(rand.NewSource(7))
	cells := []string{"", "a", "b", "c"}
	nextID := 0

	check := func(step int) {
		t.Helper()
		prob := idx.Probable()
		for _, sh := range []*loggingListener{a, b} {
			if len(prob) != len(sh.rows) {
				t.Fatalf("step %d: listener %s holds %d rows, index %d", step, sh.name, len(sh.rows), len(prob))
			}
			for _, r := range prob {
				if sh.rows[r.ID] != r {
					t.Fatalf("step %d: listener %s missing probable row %s", step, sh.name, r.ID)
				}
			}
		}
		if len(log)%2 != 0 {
			t.Fatalf("step %d: odd event count %d — a delta skipped a listener", step, len(log))
		}
		for i := 0; i < len(log); i += 2 {
			ea, eb := log[i], log[i+1]
			if ea.listener != "a" || eb.listener != "b" {
				t.Fatalf("step %d: events %d/%d delivered out of registration order: %+v %+v", step, i, i+1, ea, eb)
			}
			if ea.kind != eb.kind || ea.row != eb.row {
				t.Fatalf("step %d: events %d/%d diverge between listeners: %+v %+v", step, i, i+1, ea, eb)
			}
		}
		log = log[:0]
	}

	for step := 0; step < 400; step++ {
		rows := c.Rows()
		switch op := rng.Intn(10); {
		case op < 4 || len(rows) == 0:
			nextID++
			r := &Row{
				ID:  RowID(fmt.Sprintf("r-%03d", nextID)),
				Vec: VectorOf(cells[rng.Intn(len(cells))], cells[rng.Intn(len(cells))]),
			}
			c.Put(r)
			idx.RowAdded(r)
		case op < 8:
			r := rows[rng.Intn(len(rows))]
			if rng.Intn(2) == 0 {
				r.Up++
			} else {
				r.Down++
			}
			idx.RowVotesChanged(r)
		case op < 9:
			r := rows[rng.Intn(len(rows))]
			c.Delete(r.ID)
			idx.RowRemoved(r)
		default:
			idx.TableReset(c)
		}
		check(step)
	}
	if a.resets == 0 || b.resets == 0 {
		t.Fatal("op mix never exercised IndexReset")
	}

	// RemoveDeltaListener detaches by identity: after removal only b keeps
	// receiving deltas.
	idx.RemoveDeltaListener(a)
	aRows := len(a.rows)
	nextID++
	// Partial row with zero votes: probable by rule 1 (score 0), so both
	// listeners would see it — but a has been detached.
	r := &Row{ID: RowID(fmt.Sprintf("r-%03d", nextID)), Vec: VectorOf("z", "")}
	c.Put(r)
	idx.RowAdded(r)
	idx.Version()
	if len(a.rows) != aRows {
		t.Fatal("removed listener still receives deltas")
	}
	if b.rows[r.ID] != r {
		t.Fatal("remaining listener missed delta after RemoveDeltaListener")
	}
}
