package model

import "fmt"

// ScoreFunc aggregates a row's upvote and downvote counts into a score
// (paper §2.1). A positive score suggests the row is acceptable, negative
// not acceptable, zero undecided. Valid functions satisfy f(0,0)=0, are
// monotonically increasing in up and decreasing in down.
type ScoreFunc func(up, down int) int

// DefaultScore is the paper's default scoring function f(u,d) = u − d.
func DefaultScore(up, down int) int { return up - down }

// MajorityShortcut returns the paper's "majority of k or more" scheme with
// shortcutting: f(u,d) = u−d once u+d ≥ k−1, else 0. The paper's running
// example is MajorityShortcut(3): u−d if u+d ≥ 2, else 0.
//
// Note a formal subtlety: the vote-count threshold makes this function
// non-monotone in upvotes for k > 3 (e.g. k=5 gives f(0,3)=0 but
// f(1,3)=−2, so an upvote lowers the score), violating the model's §2.1
// requirements; ValidateScore rejects it. Use NetMargin for heavier
// verification requirements.
func MajorityShortcut(k int) ScoreFunc {
	if k < 1 {
		k = 1
	}
	return func(up, down int) int {
		if up+down >= k-1 {
			return up - down
		}
		return 0
	}
}

// NetMargin returns the monotone heavy-verification scheme
// f(u,d) = u−d when |u−d| ≥ k, else 0: a row needs a net margin of k
// agreeing votes before it is accepted (or rejected). Unlike
// MajorityShortcut with large k, NetMargin satisfies the model's
// monotonicity requirements for every k ≥ 1.
func NetMargin(k int) ScoreFunc {
	if k < 1 {
		k = 1
	}
	return func(up, down int) int {
		d := up - down
		if d >= k || d <= -k {
			return d
		}
		return 0
	}
}

// MinUpvotes returns the smallest u such that f(u, 0) > 0, i.e. the number of
// upvotes an uncontested row needs to enter the final table. Returns limit+1
// if no u ≤ limit suffices.
func MinUpvotes(f ScoreFunc, limit int) int {
	for u := 0; u <= limit; u++ {
		if f(u, 0) > 0 {
			return u
		}
	}
	return limit + 1
}

// ValidateScore checks the model's requirements on f over vote counts up to
// maxVotes: f(0,0)=0, monotone non-decreasing in u, non-increasing in d.
func ValidateScore(f ScoreFunc, maxVotes int) error {
	if f == nil {
		return fmt.Errorf("model: nil scoring function")
	}
	if f(0, 0) != 0 {
		return fmt.Errorf("model: scoring function must have f(0,0)=0, got %d", f(0, 0))
	}
	for u := 0; u <= maxVotes; u++ {
		for d := 0; d <= maxVotes; d++ {
			if u < maxVotes && f(u+1, d) < f(u, d) {
				return fmt.Errorf("model: scoring function not monotone in upvotes at (%d,%d)", u, d)
			}
			if d < maxVotes && f(u, d+1) > f(u, d) {
				return fmt.Errorf("model: scoring function not monotone in downvotes at (%d,%d)", u, d)
			}
		}
	}
	return nil
}
