// Package model implements CrowdFill's formal model of tables (paper §2.1–2.2):
// schemas, value vectors, candidate rows with vote counts, scoring functions,
// and the derivation of a final table from a candidate table.
package model

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Type is the data type of a column.
type Type int

const (
	// TypeString accepts any non-empty string value.
	TypeString Type = iota
	// TypeInt accepts base-10 integers.
	TypeInt
	// TypeFloat accepts decimal numbers.
	TypeFloat
	// TypeDate accepts ISO dates (YYYY-MM-DD).
	TypeDate
)

// String returns the lowercase name of the type.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeDate:
		return "date"
	}
	return fmt.Sprintf("type(%d)", int(t))
}

// ParseType converts a type name ("string", "int", "float", "date") to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "text":
		return TypeString, nil
	case "int", "integer":
		return TypeInt, nil
	case "float", "double", "number":
		return TypeFloat, nil
	case "date":
		return TypeDate, nil
	}
	return TypeString, fmt.Errorf("model: unknown type %q", s)
}

// Column is one column definition: a name, a data type, and an optional
// domain (set of allowed values).
type Column struct {
	Name   string   `json:"name"`
	Type   Type     `json:"type"`
	Domain []string `json:"domain,omitempty"`
}

// Schema describes the table being collected: column definitions plus the
// primary key. By default (empty Key), all columns together form the key,
// i.e. the final table must simply have no duplicate rows.
type Schema struct {
	Name    string   `json:"name"`
	Columns []Column `json:"columns"`
	// Key holds indexes into Columns of the primary-key columns.
	Key []int `json:"key,omitempty"`
}

// NewSchema builds a schema and validates it. keyCols name the primary-key
// columns; if none are given, all columns form the key.
func NewSchema(name string, cols []Column, keyCols ...string) (*Schema, error) {
	s := &Schema{Name: name, Columns: cols}
	for _, kc := range keyCols {
		idx := -1
		for i, c := range cols {
			if c.Name == kc {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("model: key column %q not in schema", kc)
		}
		s.Key = append(s.Key, idx)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error, for tests and examples.
func MustSchema(name string, cols []Column, keyCols ...string) *Schema {
	s, err := NewSchema(name, cols, keyCols...)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks structural well-formedness of the schema.
func (s *Schema) Validate() error {
	if s == nil {
		return errors.New("model: nil schema")
	}
	if s.Name == "" {
		return errors.New("model: schema needs a name")
	}
	if len(s.Columns) == 0 {
		return errors.New("model: schema needs at least one column")
	}
	seen := make(map[string]bool, len(s.Columns))
	for i, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("model: column %d has no name", i)
		}
		if seen[c.Name] {
			return fmt.Errorf("model: duplicate column name %q", c.Name)
		}
		seen[c.Name] = true
		for _, dv := range c.Domain {
			if _, err := CanonicalValue(c.Type, dv); err != nil {
				return fmt.Errorf("model: column %q domain value %q: %w", c.Name, dv, err)
			}
		}
	}
	seenKey := make(map[int]bool, len(s.Key))
	for _, k := range s.Key {
		if k < 0 || k >= len(s.Columns) {
			return fmt.Errorf("model: key column index %d out of range", k)
		}
		if seenKey[k] {
			return fmt.Errorf("model: duplicate key column index %d", k)
		}
		seenKey[k] = true
	}
	return nil
}

// NumColumns returns the number of columns.
func (s *Schema) NumColumns() int { return len(s.Columns) }

// ColumnIndex returns the index of the named column, or -1.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// KeyColumns returns the indexes of the primary-key columns. When no explicit
// key was declared, all columns form the key.
func (s *Schema) KeyColumns() []int {
	if len(s.Key) > 0 {
		return s.Key
	}
	all := make([]int, len(s.Columns))
	for i := range all {
		all[i] = i
	}
	return all
}

// IsKeyColumn reports whether column index i belongs to the primary key.
func (s *Schema) IsKeyColumn(i int) bool {
	for _, k := range s.KeyColumns() {
		if k == i {
			return true
		}
	}
	return false
}

// CheckValue validates and canonicalizes a value for column col.
func (s *Schema) CheckValue(col int, v string) (string, error) {
	if col < 0 || col >= len(s.Columns) {
		return "", fmt.Errorf("model: column index %d out of range", col)
	}
	c := s.Columns[col]
	cv, err := CanonicalValue(c.Type, v)
	if err != nil {
		return "", fmt.Errorf("model: column %q: %w", c.Name, err)
	}
	if len(c.Domain) > 0 {
		ok := false
		for _, dv := range c.Domain {
			cd, _ := CanonicalValue(c.Type, dv)
			if cd == cv {
				ok = true
				break
			}
		}
		if !ok {
			return "", fmt.Errorf("model: column %q: value %q not in domain", c.Name, v)
		}
	}
	return cv, nil
}

// CanonicalValue parses raw according to t and returns its canonical string
// form, so that equal values compare equal as strings ("07" and "7" both
// canonicalize to "7" for ints).
func CanonicalValue(t Type, raw string) (string, error) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return "", errors.New("empty value")
	}
	switch t {
	case TypeString:
		return raw, nil
	case TypeInt:
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return "", fmt.Errorf("not an integer: %q", raw)
		}
		return strconv.FormatInt(n, 10), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return "", fmt.Errorf("not a number: %q", raw)
		}
		return strconv.FormatFloat(f, 'g', -1, 64), nil
	case TypeDate:
		d, err := time.Parse("2006-01-02", raw)
		if err != nil {
			return "", fmt.Errorf("not a date (want YYYY-MM-DD): %q", raw)
		}
		return d.Format("2006-01-02"), nil
	}
	return "", fmt.Errorf("unknown type %v", t)
}

// CompareTyped compares two canonical values of type t, returning -1, 0, or 1.
// Used by predicates constraints.
func CompareTyped(t Type, a, b string) int {
	switch t {
	case TypeInt:
		x, _ := strconv.ParseInt(a, 10, 64)
		y, _ := strconv.ParseInt(b, 10, 64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	case TypeFloat:
		x, _ := strconv.ParseFloat(a, 64)
		y, _ := strconv.ParseFloat(b, 64)
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	default: // strings and dates compare lexicographically (ISO dates sort correctly)
		return strings.Compare(a, b)
	}
}
