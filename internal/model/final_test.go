package model

import (
	"strings"
	"testing"
	"testing/quick"
)

// paperCandidate builds the example candidate table from §2.2 of the paper.
func paperCandidate(t testing.TB) *Candidate {
	t.Helper()
	s := soccerSchema(t)
	c := NewCandidate(s)
	rows := []struct {
		id       string
		vec      Vector
		up, down int
	}{
		{"r-01", VectorOf("Lionel Messi", "Argentina", "FW", "83", "37"), 2, 0},
		{"r-02", VectorOf("Ronaldinho", "Brazil", "MF", "97", "33"), 3, 0},
		{"r-03", VectorOf("Ronaldinho", "Brazil", "FW", "97", "33"), 2, 1},
		{"r-04", VectorOf("Iker Casillas", "Spain", "GK", "150", "0"), 2, 0},
		{"r-05", VectorOf("David Beckham", "England", "MF", "115", "17"), 1, 0},
		{"r-06", VectorOf("Neymar", "Brazil", "FW", "", ""), 0, 1},
		{"r-07", VectorOf("Zinedine Zidane", "", "", "", ""), 0, 0},
		{"r-08", VectorOf("", "France", "DF", "", ""), 0, 0},
		{"r-09", NewVector(5), 0, 0},
		{"r-10", NewVector(5), 0, 0},
	}
	for _, r := range rows {
		c.Put(&Row{ID: RowID(r.id), Vec: r.vec, Up: r.up, Down: r.down})
	}
	return c
}

// TestFinalTablePaperExample checks the §2.2 derivation: Messi, Ronaldinho
// (the MF copy, higher score), and Casillas survive; Beckham has score zero
// (1 upvote under majority-of-3), incomplete rows are dropped.
func TestFinalTablePaperExample(t *testing.T) {
	c := paperCandidate(t)
	f := MajorityShortcut(3)
	final := FinalTable(c, f)
	if len(final) != 3 {
		t.Fatalf("final table has %d rows, want 3: %v", len(final), final)
	}
	want := map[string]Vector{
		"r-01": VectorOf("Lionel Messi", "Argentina", "FW", "83", "37"),
		"r-02": VectorOf("Ronaldinho", "Brazil", "MF", "97", "33"),
		"r-04": VectorOf("Iker Casillas", "Spain", "GK", "150", "0"),
	}
	for _, r := range final {
		w, ok := want[string(r.ID)]
		if !ok {
			t.Errorf("unexpected final row %v", r)
			continue
		}
		if !r.Vec.Equal(w) {
			t.Errorf("row %s = %v, want %v", r.ID, r.Vec, w)
		}
	}
}

func TestFinalTableKeyUniqueness(t *testing.T) {
	c := paperCandidate(t)
	final := FinalTable(c, MajorityShortcut(3))
	seen := map[string]bool{}
	for _, r := range final {
		k := r.Vec.KeyOf(c.Schema())
		if seen[k] {
			t.Fatalf("duplicate key in final table: %v", r)
		}
		seen[k] = true
	}
}

func TestFinalTableTieBreakDeterministic(t *testing.T) {
	s := MustSchema("T", []Column{{Name: "k"}, {Name: "v"}}, "k")
	c := NewCandidate(s)
	c.Put(&Row{ID: "b-1", Vec: VectorOf("x", "1"), Up: 2, Down: 0})
	c.Put(&Row{ID: "a-1", Vec: VectorOf("x", "2"), Up: 2, Down: 0})
	final := FinalTable(c, DefaultScore)
	if len(final) != 1 || final[0].ID != "a-1" {
		t.Fatalf("tie-break should pick lowest row id, got %v", final)
	}
}

func TestFinalTableDefaultScore(t *testing.T) {
	s := MustSchema("T", []Column{{Name: "k"}, {Name: "v"}}, "k")
	c := NewCandidate(s)
	c.Put(&Row{ID: "r-1", Vec: VectorOf("x", "1"), Up: 1, Down: 0})
	c.Put(&Row{ID: "r-2", Vec: VectorOf("y", "2"), Up: 1, Down: 1})
	c.Put(&Row{ID: "r-3", Vec: VectorOf("z", "3"), Up: 0, Down: 0})
	final := FinalTable(c, DefaultScore)
	// Only r-1 has positive score under u-d.
	if len(final) != 1 || final[0].ID != "r-1" {
		t.Fatalf("FinalTable = %v, want only r-1", final)
	}
}

func TestFinalVectors(t *testing.T) {
	c := paperCandidate(t)
	vecs := FinalVectors(c, MajorityShortcut(3))
	if len(vecs) != 3 {
		t.Fatalf("FinalVectors len = %d, want 3", len(vecs))
	}
	for _, v := range vecs {
		if !v.IsComplete() {
			t.Fatalf("final vector not complete: %v", v)
		}
	}
}

// TestFinalTablePropertyHighestScorePerKey: property check that for every
// final row no other complete candidate row with the same key scores higher.
func TestFinalTablePropertyHighestScorePerKey(t *testing.T) {
	s := MustSchema("T", []Column{{Name: "k", Type: TypeInt}, {Name: "v", Type: TypeInt}}, "k")
	f := func(seed int64) bool {
		c := NewCandidate(s)
		r := seed
		next := func(n int64) int64 {
			r = (r*6364136223846793005 + 1442695040888963407) % 1_000_003
			v := r % n
			if v < 0 {
				v = -v
			}
			return v
		}
		nrows := int(next(20)) + 1
		for i := 0; i < nrows; i++ {
			var vec Vector
			if next(5) == 0 {
				vec = VectorOf(itoa(next(4)), "") // incomplete
			} else {
				vec = VectorOf(itoa(next(4)), itoa(next(10)))
			}
			c.Put(&Row{ID: RowID(itoa(int64(i))), Vec: vec, Up: int(next(4)), Down: int(next(4))})
		}
		final := FinalTable(c, DefaultScore)
		for _, fr := range final {
			score := fr.Up - fr.Down
			if score <= 0 || !fr.Vec.IsComplete() {
				return false
			}
			ok := true
			c.Each(func(row *Row) {
				if row.Vec.IsComplete() && row.Vec.KeyOf(s) == fr.Vec.KeyOf(s) && row.Up-row.Down > score {
					ok = false
				}
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int64) string {
	if n < 0 {
		n = -n
	}
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{digits[n%10]}, buf...)
		n /= 10
	}
	return string(buf)
}

func TestScoreFuncs(t *testing.T) {
	if err := ValidateScore(DefaultScore, 6); err != nil {
		t.Errorf("DefaultScore invalid: %v", err)
	}
	m3 := MajorityShortcut(3)
	if err := ValidateScore(m3, 6); err != nil {
		t.Errorf("MajorityShortcut(3) invalid: %v", err)
	}
	cases := []struct{ u, d, want int }{
		{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, // fewer than 2 votes -> 0
		{2, 0, 2}, {1, 1, 0}, {0, 2, -2}, {3, 1, 2},
	}
	for _, tc := range cases {
		if got := m3(tc.u, tc.d); got != tc.want {
			t.Errorf("m3(%d,%d) = %d, want %d", tc.u, tc.d, got, tc.want)
		}
	}
	if got := MinUpvotes(m3, 10); got != 2 {
		t.Errorf("MinUpvotes(m3) = %d, want 2", got)
	}
	if got := MinUpvotes(DefaultScore, 10); got != 1 {
		t.Errorf("MinUpvotes(default) = %d, want 1", got)
	}
	if got := MinUpvotes(func(u, d int) int { return 0 }, 5); got != 6 {
		t.Errorf("MinUpvotes(zero fn) = %d, want limit+1", got)
	}
	if err := ValidateScore(nil, 3); err == nil {
		t.Errorf("ValidateScore(nil) should fail")
	}
	if err := ValidateScore(func(u, d int) int { return 1 }, 3); err == nil {
		t.Errorf("ValidateScore(f(0,0)=1) should fail")
	}
	if err := ValidateScore(func(u, d int) int { return -u + d }, 3); err == nil {
		t.Errorf("ValidateScore(anti-monotone) should fail")
	}
	if got := MajorityShortcut(0)(1, 0); got != 1 {
		t.Errorf("MajorityShortcut(0) should clamp k to 1")
	}
}

func TestCandidateBasics(t *testing.T) {
	s := soccerSchema(t)
	c := NewCandidate(s)
	if c.Len() != 0 || c.Schema() != s {
		t.Fatalf("empty candidate wrong")
	}
	r := &Row{ID: "x-1", Vec: NewVector(5)}
	c.Put(r)
	if !c.Has("x-1") || c.Get("x-1") != r || c.Len() != 1 {
		t.Fatalf("Put/Get/Has wrong")
	}
	clone := c.Clone()
	c.Delete("x-1")
	if c.Has("x-1") || !clone.Has("x-1") {
		t.Fatalf("Delete/Clone aliasing wrong")
	}
	if clone.Get("x-1") == r {
		t.Fatalf("Clone must deep-copy rows")
	}
}

func TestCandidateRowsSorted(t *testing.T) {
	s := soccerSchema(t)
	c := NewCandidate(s)
	for _, id := range []string{"c-1", "a-1", "b-1"} {
		c.Put(&Row{ID: RowID(id), Vec: NewVector(5)})
	}
	rows := c.Rows()
	if rows[0].ID != "a-1" || rows[1].ID != "b-1" || rows[2].ID != "c-1" {
		t.Fatalf("Rows not sorted: %v", rows)
	}
}

func TestCandidateSnapshotCanonical(t *testing.T) {
	s := soccerSchema(t)
	a, b := NewCandidate(s), NewCandidate(s)
	// Insert in different orders; snapshots must agree.
	rows := []*Row{
		{ID: "a-1", Vec: VectorOf("x", "", "", "", "")},
		{ID: "b-1", Vec: NewVector(5), Up: 1},
	}
	a.Put(rows[0].Clone())
	a.Put(rows[1].Clone())
	b.Put(rows[1].Clone())
	b.Put(rows[0].Clone())
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ:\n%s\nvs\n%s", a.Snapshot(), b.Snapshot())
	}
}

func TestRenderTable(t *testing.T) {
	c := paperCandidate(t)
	out := RenderTable(c.Schema(), c.Rows())
	if !strings.Contains(out, "Lionel Messi") || !strings.Contains(out, "↑") {
		t.Fatalf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != c.Len()+2 { // header + separator + rows
		t.Fatalf("render lines = %d, want %d:\n%s", len(lines), c.Len()+2, out)
	}
	// Empty cells print as the placeholder dot.
	if !strings.Contains(out, "·") {
		t.Fatalf("render missing empty-cell placeholder:\n%s", out)
	}
}

func TestRenderFinal(t *testing.T) {
	c := paperCandidate(t)
	out := RenderFinal(c.Schema(), FinalTable(c, MajorityShortcut(3)))
	if strings.Contains(out, "↑") {
		t.Fatalf("final render should omit vote columns:\n%s", out)
	}
	if !strings.Contains(out, "Iker Casillas") {
		t.Fatalf("final render missing row:\n%s", out)
	}
}

// TestValueIndexConsistency: the byValue index tracks Put/Delete including
// id-reuse with changed values.
func TestValueIndexConsistency(t *testing.T) {
	s := MustSchema("T", []Column{{Name: "a"}, {Name: "b"}}, "a")
	c := NewCandidate(s)
	v1 := VectorOf("x", "1")
	v2 := VectorOf("x", "2")
	c.Put(&Row{ID: "r-1", Vec: v1})
	c.Put(&Row{ID: "r-2", Vec: v1.Clone()})
	c.Put(&Row{ID: "r-3", Vec: v2})

	count := func(v Vector) int {
		n := 0
		c.EachWithValue(v, func(*Row) { n++ })
		return n
	}
	if got := count(v1); got != 2 {
		t.Fatalf("v1 bucket = %d, want 2", got)
	}
	if got := count(v2); got != 1 {
		t.Fatalf("v2 bucket = %d, want 1", got)
	}
	// Overwriting r-1 with a new vector moves it between buckets.
	c.Put(&Row{ID: "r-1", Vec: v2.Clone()})
	if got := count(v1); got != 1 {
		t.Fatalf("v1 bucket after overwrite = %d, want 1", got)
	}
	if got := count(v2); got != 2 {
		t.Fatalf("v2 bucket after overwrite = %d, want 2", got)
	}
	// Deletes clean the buckets up.
	c.Delete("r-1")
	c.Delete("r-3")
	if got := count(v2); got != 0 {
		t.Fatalf("v2 bucket after deletes = %d, want 0", got)
	}
	c.Delete("ghost") // no-op
	// Clones carry a working index too.
	clone := c.Clone()
	n := 0
	clone.EachWithValue(v1, func(*Row) { n++ })
	if n != 1 {
		t.Fatalf("clone v1 bucket = %d, want 1", n)
	}
}
