package model

import (
	"fmt"
	"sort"
)

// KeyStat summarizes the rows sharing one complete primary key, as the
// probable-rows rules need them (paper §4.1).
type KeyStat struct {
	// Positive reports whether any row with this key has a positive score.
	Positive bool
	// MaxAny is the highest positive score among rows with this key
	// (complete or not); 0 when Positive is false.
	MaxAny int
	// Best is the final-table winner: the complete positive row with the
	// highest score, ties broken by lowest row id. Nil if none qualifies.
	Best *Row
	// BestScore is Best's score (0 when Best is nil).
	BestScore int
}

// TableIndex incrementally maintains the probable-row set and the final-table
// winners of a candidate table, so the server's per-message hot path
// (PRI repair, completion detection, compensation estimation) does not rescan
// the whole table on every message. It is driven by change notifications
// (RowAdded / RowRemoved / RowVotesChanged / TableReset — the sync.Replica
// observer surface): each notification marks the touched primary key dirty,
// and queries lazily recompute only the dirty key groups. Since a row's
// probable status depends only on rows sharing its key (or on the row alone
// when its key is incomplete), this keeps per-message work proportional to
// the touched key groups, not the table.
//
// The index assumes the operation model's discipline: row vectors are never
// mutated in place (fills replace rows wholesale), so a row's key never
// changes between RowAdded and RowRemoved.
//
// TableIndex is not safe for concurrent use; callers serialize access the
// same way they serialize replica mutation.
type TableIndex struct {
	c *Candidate
	f ScoreFunc
	s *Schema

	byKey map[string]map[RowID]*Row // key-complete rows grouped by key
	free  map[RowID]*Row            // rows with an incomplete primary key

	stats    map[string]*KeyStat
	probable map[RowID]*Row
	final    map[string]*Row // key -> final-table winner

	// Dirty tracking is a dedup map plus an insertion-ordered queue; flush
	// walks the queue, never the map, so its cost is O(dirty entries) even
	// after a burst has grown the map's capacity (Go map iteration costs
	// O(capacity), which would otherwise leak the burst size into every
	// later flush).
	dirtyKeys  map[string]struct{}
	dirtyKeyQ  []string
	dirtyFree  map[RowID]struct{}
	dirtyFreeQ []RowID
	pending    bool // a structural change happened since the last flush

	version     uint64
	sortedProb  []*Row
	sortedFinal []*Row

	listeners []ProbableDeltaListener

	debug bool
}

// ProbableDeltaListener observes probable-set changes as the index maintains
// itself, so derived aggregates (e.g. the compensation estimator's
// denominator tallies) can be updated from deltas instead of rescanning the
// probable rows per query. Callbacks fire while the index flushes (or, for
// ProbableRemoved, while a row leaves the table); implementations must not
// call back into the index's query methods from inside a callback.
type ProbableDeltaListener interface {
	// ProbableAdded fires when a row enters the probable set.
	ProbableAdded(*Row)
	// ProbableRemoved fires when a row leaves the probable set.
	ProbableRemoved(*Row)
	// ProbableUpdated fires when a row stays probable through a recompute of
	// its key group; its vote counts may have changed (its vector cannot —
	// fills replace rows wholesale). May fire spuriously.
	ProbableUpdated(*Row)
	// IndexReset fires when the index rebuilds from scratch (table reset).
	// The listener must drop all derived state; the rebuild re-delivers a
	// ProbableAdded per surviving probable row.
	IndexReset()
}

// AddDeltaListener appends a probable-set delta listener to the index's
// delivery registry. Several independent aggregates follow the same delta
// stream (the estimator's denominator tallies, the planner's persistent
// template adjacency), so the registry is a multicast with documented
// semantics:
//
//   - Each delta is delivered to every registered listener, in registration
//     order, before the next delta is produced — listeners therefore observe
//     identical, identically-ordered streams.
//   - Pending index changes are flushed before registration, so a new
//     listener observes only deltas applied after attachment; callers seed
//     initial state from Probable().
//   - Listeners must not register or remove listeners, and must not call
//     back into the index's query methods, from inside a callback.
func (x *TableIndex) AddDeltaListener(l ProbableDeltaListener) {
	x.flush()
	x.listeners = append(x.listeners, l)
}

// RemoveDeltaListener detaches a previously-registered listener (identified
// by interface identity). Removing a listener that is not registered is a
// no-op. Delivery order of the remaining listeners is preserved.
func (x *TableIndex) RemoveDeltaListener(l ProbableDeltaListener) {
	x.flush()
	for i, have := range x.listeners {
		if have == l {
			x.listeners = append(x.listeners[:i], x.listeners[i+1:]...)
			return
		}
	}
}

// --- multicast dispatch helpers ---

func (x *TableIndex) notifyAdded(r *Row) {
	for _, l := range x.listeners {
		l.ProbableAdded(r)
	}
}

func (x *TableIndex) notifyRemoved(r *Row) {
	for _, l := range x.listeners {
		l.ProbableRemoved(r)
	}
}

func (x *TableIndex) notifyUpdated(r *Row) {
	for _, l := range x.listeners {
		l.ProbableUpdated(r)
	}
}

func (x *TableIndex) notifyReset() {
	for _, l := range x.listeners {
		l.IndexReset()
	}
}

// NewTableIndex builds an index over the table's current contents and keeps
// it maintained through the observer callbacks. Attach it to the replica that
// owns the table (e.g. rep.SetObserver(idx)) so mutations reach it.
func NewTableIndex(c *Candidate, f ScoreFunc) *TableIndex {
	x := &TableIndex{f: f}
	x.TableReset(c)
	return x
}

// SetDebug enables the opt-in cross-check mode: after every recompute the
// incremental results are compared against the from-scratch ProbableRows and
// FinalTable, panicking on divergence. For tests and debugging only.
func (x *TableIndex) SetDebug(on bool) { x.debug = on }

// Version returns a counter that increases whenever the probable set or the
// final-table winners change. Cheap change detection for broadcast coalescing.
func (x *TableIndex) Version() uint64 {
	x.flush()
	return x.version
}

// Probable returns the current probable rows sorted by id. The returned slice
// is a shared cache: callers must not modify it and must not hold it across
// further table mutations.
func (x *TableIndex) Probable() []*Row {
	x.flush()
	if x.sortedProb == nil {
		x.sortedProb = make([]*Row, 0, len(x.probable))
		for _, r := range x.probable {
			x.sortedProb = append(x.sortedProb, r)
		}
		sort.Slice(x.sortedProb, func(i, j int) bool { return x.sortedProb[i].ID < x.sortedProb[j].ID })
	}
	return x.sortedProb
}

// FinalTable returns the current final table sorted by row id. Same sharing
// caveats as Probable.
func (x *TableIndex) FinalTable() []*Row {
	x.flush()
	if x.sortedFinal == nil {
		x.sortedFinal = make([]*Row, 0, len(x.final))
		for _, r := range x.final {
			x.sortedFinal = append(x.sortedFinal, r)
		}
		sort.Slice(x.sortedFinal, func(i, j int) bool { return x.sortedFinal[i].ID < x.sortedFinal[j].ID })
	}
	return x.sortedFinal
}

// KeyStat returns the maintained statistics for one primary-key value (as
// produced by Vector.KeyOf). The second result is false when no key-complete
// row with that key exists.
func (x *TableIndex) KeyStat(key string) (KeyStat, bool) {
	x.flush()
	st, ok := x.stats[key]
	if !ok {
		return KeyStat{}, false
	}
	return *st, true
}

// markKeyDirty queues key k for recomputation at the next flush.
func (x *TableIndex) markKeyDirty(k string) {
	if _, ok := x.dirtyKeys[k]; !ok {
		x.dirtyKeys[k] = struct{}{}
		x.dirtyKeyQ = append(x.dirtyKeyQ, k)
	}
}

// markFreeDirty queues key-incomplete row id for recomputation.
func (x *TableIndex) markFreeDirty(id RowID) {
	if _, ok := x.dirtyFree[id]; !ok {
		x.dirtyFree[id] = struct{}{}
		x.dirtyFreeQ = append(x.dirtyFreeQ, id)
	}
}

// --- observer surface (sync.Replica drives these) ---

// RowAdded registers a row newly inserted into the table.
func (x *TableIndex) RowAdded(r *Row) {
	if r.Vec.KeyComplete(x.s) {
		k := r.Vec.KeyOf(x.s)
		g := x.byKey[k]
		if g == nil {
			g = make(map[RowID]*Row)
			x.byKey[k] = g
		}
		g[r.ID] = r
		x.markKeyDirty(k)
	} else {
		x.free[r.ID] = r
		x.markFreeDirty(r.ID)
	}
}

// RowRemoved registers a row deleted from the table.
func (x *TableIndex) RowRemoved(r *Row) {
	if _, ok := x.probable[r.ID]; ok {
		delete(x.probable, r.ID)
		x.pending = true
		x.sortedProb = nil
		x.notifyRemoved(r)
	}
	if r.Vec.KeyComplete(x.s) {
		k := r.Vec.KeyOf(x.s)
		if g := x.byKey[k]; g != nil {
			delete(g, r.ID)
			if len(g) == 0 {
				delete(x.byKey, k)
			}
		}
		x.markKeyDirty(k)
	} else {
		delete(x.free, r.ID)
		// The queue may keep a stale entry; flush skips ids absent from the
		// dedup map.
		delete(x.dirtyFree, r.ID)
	}
}

// RowVotesChanged registers a change to a row's vote counts.
func (x *TableIndex) RowVotesChanged(r *Row) {
	if r.Vec.KeyComplete(x.s) {
		x.markKeyDirty(r.Vec.KeyOf(x.s))
	} else {
		x.markFreeDirty(r.ID)
	}
}

// TableReset rebuilds the index from scratch over a (possibly new) table,
// e.g. after a snapshot load replaces the replica state wholesale.
func (x *TableIndex) TableReset(c *Candidate) {
	x.c = c
	x.s = c.Schema()
	x.notifyReset()
	x.byKey = make(map[string]map[RowID]*Row)
	x.free = make(map[RowID]*Row)
	x.stats = make(map[string]*KeyStat)
	x.probable = make(map[RowID]*Row)
	x.final = make(map[string]*Row)
	x.dirtyKeys = make(map[string]struct{})
	x.dirtyKeyQ = x.dirtyKeyQ[:0]
	x.dirtyFree = make(map[RowID]struct{})
	x.dirtyFreeQ = x.dirtyFreeQ[:0]
	x.sortedProb, x.sortedFinal = nil, nil
	x.version++
	c.Each(func(r *Row) { x.RowAdded(r) })
	x.flush()
}

// --- incremental recomputation ---

// flush recomputes every dirty key group and dirty free row, bumping the
// version when membership or winners changed.
func (x *TableIndex) flush() {
	if len(x.dirtyKeys) == 0 && len(x.dirtyFree) == 0 && !x.pending {
		return
	}
	changed := x.pending
	x.pending = false

	for _, id := range x.dirtyFreeQ {
		if _, dirty := x.dirtyFree[id]; !dirty {
			continue // removed from the dirty set since it was queued
		}
		delete(x.dirtyFree, id)
		r, ok := x.free[id]
		want := ok && x.f(r.Up, r.Down) == 0 //lint:allow hotalloc x.f is the configured probability scorer, a pure arithmetic function
		if prev, in := x.probable[id]; in != want {
			if want {
				x.probable[id] = r
				x.notifyAdded(r)
			} else {
				delete(x.probable, id)
				x.notifyRemoved(prev)
			}
			changed = true
		}
	}
	x.dirtyFreeQ = x.dirtyFreeQ[:0]

	for _, k := range x.dirtyKeyQ {
		if _, dirty := x.dirtyKeys[k]; !dirty {
			continue
		}
		delete(x.dirtyKeys, k)
		if x.flushKey(k) {
			changed = true
		}
	}
	x.dirtyKeyQ = x.dirtyKeyQ[:0]

	if changed {
		x.version++
		x.sortedProb, x.sortedFinal = nil, nil
	}
	if x.debug {
		x.crossCheck() //lint:allow hotalloc debug-only full recomputation, tests enable it
	}
}

// flushKey recomputes one key group's stats, probable membership, and final
// winner; reports whether anything changed.
func (x *TableIndex) flushKey(k string) bool {
	group := x.byKey[k]
	changed := false

	if len(group) == 0 {
		if _, had := x.stats[k]; had {
			delete(x.stats, k)
		}
		if _, had := x.final[k]; had {
			delete(x.final, k)
			changed = true
		}
		return changed
	}

	st := &KeyStat{} //lint:allow hotalloc one small stat record per flushed dirty key, retained in the stats table
	for _, r := range group {
		score := x.f(r.Up, r.Down) //lint:allow hotalloc x.f is the configured probability scorer, a pure arithmetic function
		if score <= 0 {
			continue
		}
		st.Positive = true
		if score > st.MaxAny {
			st.MaxAny = score
		}
		if r.Vec.IsComplete() {
			if st.Best == nil || score > st.BestScore ||
				(score == st.BestScore && r.ID < st.Best.ID) {
				st.Best, st.BestScore = r, score
			}
		}
	}
	x.stats[k] = st

	if old := x.final[k]; old != st.Best {
		if st.Best == nil {
			delete(x.final, k)
		} else {
			x.final[k] = st.Best
		}
		changed = true
	}

	for _, r := range group {
		score := x.f(r.Up, r.Down) //lint:allow hotalloc x.f is the configured probability scorer, a pure arithmetic function
		var want bool
		switch {
		case score == 0:
			want = !st.Positive
		case score > 0:
			want = r.Vec.IsComplete() && st.Best == r
		}
		_, in := x.probable[r.ID]
		switch {
		case in != want && want:
			x.probable[r.ID] = r
			x.notifyAdded(r)
			changed = true
		case in != want:
			delete(x.probable, r.ID)
			x.notifyRemoved(r)
			changed = true
		case in:
			// Still probable, but the group was dirty: its votes may have
			// moved, which denominator aggregates care about.
			x.notifyUpdated(r)
		}
	}
	return changed
}

// crossCheck compares the maintained sets against the from-scratch reference
// implementations, panicking on any divergence (debug mode only).
func (x *TableIndex) crossCheck() {
	ref := ProbableRows(x.c, x.f)
	if len(ref) != len(x.probable) {
		panic(fmt.Sprintf("model: TableIndex probable divergence: incremental %d rows, scratch %d", len(x.probable), len(ref)))
	}
	for _, r := range ref {
		if x.probable[r.ID] != r {
			panic(fmt.Sprintf("model: TableIndex probable divergence at row %s", r.ID))
		}
	}
	refFinal := FinalTable(x.c, x.f)
	if len(refFinal) != len(x.final) {
		panic(fmt.Sprintf("model: TableIndex final divergence: incremental %d rows, scratch %d", len(x.final), len(refFinal)))
	}
	for _, r := range refFinal {
		if x.final[r.Vec.KeyOf(x.s)] != r {
			panic(fmt.Sprintf("model: TableIndex final divergence at row %s", r.ID))
		}
	}
}
