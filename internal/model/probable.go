package model

import "sort"

// ProbableRows computes the set of probable rows of a candidate table (paper
// §4.1) from scratch: rows that, given the current state, may still
// contribute to the final table. A row r is probable iff one of:
//
//  1. some primary-key cell is empty and f(u_r,d_r) = 0;
//  2. all key cells are filled, f(u_r,d_r) = 0, and no other row with the
//     same key has a positive score;
//  3. r is complete with a positive score, no same-key row scores higher,
//     and r wins the deterministic tie-break (lowest row id) among equals.
//
// The result is sorted by row id. This is the reference implementation the
// incrementally-maintained TableIndex is cross-checked against; the
// constraint package's Probable delegates here.
func ProbableRows(c *Candidate, f ScoreFunc) []*Row {
	s := c.Schema()

	// Pass 1: per-key best positive score among complete rows, and whether
	// any row with the key has a positive score at all.
	type keyInfo struct {
		maxScore int  // highest positive score among complete rows
		best     *Row // deterministic winner at maxScore
		positive bool // some row with this key scores > 0
	}
	keys := make(map[string]*keyInfo)
	c.Each(func(r *Row) {
		if !r.Vec.KeyComplete(s) {
			return
		}
		k := r.Vec.KeyOf(s)
		info := keys[k]
		if info == nil {
			info = &keyInfo{}
			keys[k] = info
		}
		score := f(r.Up, r.Down)
		if score > 0 {
			info.positive = true
			if r.Vec.IsComplete() {
				if info.best == nil || score > info.maxScore ||
					(score == info.maxScore && r.ID < info.best.ID) {
					info.maxScore = score
					info.best = r
				}
			}
		}
	})

	var out []*Row
	c.Each(func(r *Row) {
		score := f(r.Up, r.Down)
		if !r.Vec.KeyComplete(s) {
			if score == 0 {
				out = append(out, r)
			}
			return
		}
		info := keys[r.Vec.KeyOf(s)]
		if score == 0 {
			if !info.positive {
				out = append(out, r)
			}
			return
		}
		if score > 0 && r.Vec.IsComplete() && info.best == r {
			out = append(out, r)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
