package model

import (
	"strings"
	"testing"
)

// soccerSchema returns the paper's running-example schema
// SoccerPlayer(name, nationality, position, caps, goals) with key
// (name, nationality).
func soccerSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema("SoccerPlayer", []Column{
		{Name: "name", Type: TypeString},
		{Name: "nationality", Type: TypeString},
		{Name: "position", Type: TypeString, Domain: []string{"GK", "DF", "MF", "FW"}},
		{Name: "caps", Type: TypeInt},
		{Name: "goals", Type: TypeInt},
	}, "name", "nationality")
	if err != nil {
		t.Fatalf("NewSchema: %v", err)
	}
	return s
}

func TestNewSchemaValid(t *testing.T) {
	s := soccerSchema(t)
	if got := s.NumColumns(); got != 5 {
		t.Fatalf("NumColumns = %d, want 5", got)
	}
	if got := s.KeyColumns(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("KeyColumns = %v, want [0 1]", got)
	}
	if !s.IsKeyColumn(0) || !s.IsKeyColumn(1) || s.IsKeyColumn(2) {
		t.Fatalf("IsKeyColumn wrong: key cols are 0,1")
	}
}

func TestNewSchemaUnknownKeyColumn(t *testing.T) {
	_, err := NewSchema("T", []Column{{Name: "a", Type: TypeString}}, "nope")
	if err == nil || !strings.Contains(err.Error(), "key column") {
		t.Fatalf("want key-column error, got %v", err)
	}
}

func TestSchemaValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		s    *Schema
		want string
	}{
		{"nil", nil, "nil schema"},
		{"noname", &Schema{Columns: []Column{{Name: "a"}}}, "needs a name"},
		{"nocols", &Schema{Name: "T"}, "at least one column"},
		{"dupcol", &Schema{Name: "T", Columns: []Column{{Name: "a"}, {Name: "a"}}}, "duplicate column"},
		{"emptycol", &Schema{Name: "T", Columns: []Column{{Name: ""}}}, "has no name"},
		{"badkey", &Schema{Name: "T", Columns: []Column{{Name: "a"}}, Key: []int{3}}, "out of range"},
		{"dupkey", &Schema{Name: "T", Columns: []Column{{Name: "a"}, {Name: "b"}}, Key: []int{0, 0}}, "duplicate key"},
		{"baddomain", &Schema{Name: "T", Columns: []Column{{Name: "a", Type: TypeInt, Domain: []string{"xyz"}}}}, "domain"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.s.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestDefaultKeyIsAllColumns(t *testing.T) {
	s := MustSchema("T", []Column{{Name: "a"}, {Name: "b"}, {Name: "c"}})
	if got := s.KeyColumns(); len(got) != 3 {
		t.Fatalf("default key = %v, want all 3 columns", got)
	}
}

func TestColumnIndex(t *testing.T) {
	s := soccerSchema(t)
	if got := s.ColumnIndex("caps"); got != 3 {
		t.Fatalf("ColumnIndex(caps) = %d, want 3", got)
	}
	if got := s.ColumnIndex("missing"); got != -1 {
		t.Fatalf("ColumnIndex(missing) = %d, want -1", got)
	}
}

func TestCanonicalValue(t *testing.T) {
	cases := []struct {
		typ     Type
		in      string
		want    string
		wantErr bool
	}{
		{TypeString, "  Messi ", "Messi", false},
		{TypeString, "", "", true},
		{TypeInt, "083", "83", false},
		{TypeInt, "-5", "-5", false},
		{TypeInt, "abc", "", true},
		{TypeInt, "1.5", "", true},
		{TypeFloat, "1.50", "1.5", false},
		{TypeFloat, "x", "", true},
		{TypeDate, "1987-06-24", "1987-06-24", false},
		{TypeDate, "24/06/1987", "", true},
	}
	for _, tc := range cases {
		got, err := CanonicalValue(tc.typ, tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("CanonicalValue(%v, %q): want error, got %q", tc.typ, tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("CanonicalValue(%v, %q): %v", tc.typ, tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("CanonicalValue(%v, %q) = %q, want %q", tc.typ, tc.in, got, tc.want)
		}
	}
}

func TestCheckValueDomain(t *testing.T) {
	s := soccerSchema(t)
	if _, err := s.CheckValue(2, "FW"); err != nil {
		t.Fatalf("CheckValue(position, FW): %v", err)
	}
	if _, err := s.CheckValue(2, "XX"); err == nil {
		t.Fatalf("CheckValue(position, XX): want domain error")
	}
	if got, err := s.CheckValue(3, "097"); err != nil || got != "97" {
		t.Fatalf("CheckValue(caps, 097) = %q, %v; want 97", got, err)
	}
	if _, err := s.CheckValue(99, "x"); err == nil {
		t.Fatalf("CheckValue out-of-range column: want error")
	}
}

func TestParseTypeRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeString, TypeInt, TypeFloat, TypeDate} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%q) = %v, %v", typ.String(), got, err)
		}
	}
	if _, err := ParseType("blob"); err == nil {
		t.Errorf("ParseType(blob): want error")
	}
}

func TestCompareTyped(t *testing.T) {
	if CompareTyped(TypeInt, "9", "10") >= 0 {
		t.Errorf("int compare 9 < 10 failed")
	}
	if CompareTyped(TypeFloat, "2.5", "2.5") != 0 {
		t.Errorf("float compare equality failed")
	}
	if CompareTyped(TypeString, "a", "b") >= 0 {
		t.Errorf("string compare failed")
	}
	if CompareTyped(TypeDate, "1987-06-24", "1990-01-01") >= 0 {
		t.Errorf("date compare failed")
	}
}

func TestNetMargin(t *testing.T) {
	m := NetMargin(3)
	if err := ValidateScore(m, 8); err != nil {
		t.Fatalf("NetMargin(3) invalid: %v", err)
	}
	cases := []struct{ u, d, want int }{
		{0, 0, 0}, {2, 0, 0}, {3, 0, 3}, {4, 1, 3}, {0, 3, -3}, {1, 3, 0}, {5, 1, 4},
	}
	for _, tc := range cases {
		if got := m(tc.u, tc.d); got != tc.want {
			t.Errorf("NetMargin(3)(%d,%d) = %d, want %d", tc.u, tc.d, got, tc.want)
		}
	}
	if got := MinUpvotes(m, 10); got != 3 {
		t.Errorf("MinUpvotes = %d", got)
	}
	if NetMargin(0)(1, 0) != 1 {
		t.Errorf("NetMargin clamps k to 1")
	}
	// The documented subtlety: the paper's shortcut scheme breaks
	// monotonicity beyond k=3.
	if err := ValidateScore(MajorityShortcut(5), 8); err == nil {
		t.Errorf("MajorityShortcut(5) should fail validation")
	}
}
