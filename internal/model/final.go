package model

import "sort"

// FinalTable derives the final table S from candidate table c (paper §2.2):
// S contains each complete row r with f(u_r, d_r) > 0 whose score is the
// highest among rows with the same primary key. Ties are broken
// deterministically by lowest row id. Rows are returned sorted by id.
// The result respects the primary-key constraint by construction.
func FinalTable(c *Candidate, f ScoreFunc) []*Row {
	s := c.Schema()
	best := make(map[string]*Row)
	c.Each(func(r *Row) {
		if !r.Vec.IsComplete() {
			return
		}
		score := f(r.Up, r.Down)
		if score <= 0 {
			return
		}
		k := r.Vec.KeyOf(s)
		cur, ok := best[k]
		if !ok {
			best[k] = r
			return
		}
		curScore := f(cur.Up, cur.Down)
		if score > curScore || (score == curScore && r.ID < cur.ID) {
			best[k] = r
		}
	})
	out := make([]*Row, 0, len(best))
	for _, r := range best {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FinalVectors is FinalTable projected to row values.
func FinalVectors(c *Candidate, f ScoreFunc) []Vector {
	rows := FinalTable(c, f)
	out := make([]Vector, len(rows))
	for i, r := range rows {
		out[i] = r.Vec
	}
	return out
}
