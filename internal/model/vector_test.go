package model

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorStates(t *testing.T) {
	empty := NewVector(3)
	if !empty.IsEmpty() || empty.IsPartial() || empty.IsComplete() {
		t.Fatalf("empty vector state wrong")
	}
	partial := VectorOf("a", "", "c")
	if partial.IsEmpty() || !partial.IsPartial() || partial.IsComplete() {
		t.Fatalf("partial vector state wrong")
	}
	complete := VectorOf("a", "b", "c")
	if !complete.IsComplete() || !complete.IsPartial() {
		t.Fatalf("complete vector state wrong (a complete row is also partial)")
	}
	if got := partial.CountSet(); got != 2 {
		t.Fatalf("CountSet = %d, want 2", got)
	}
}

func TestVectorSubset(t *testing.T) {
	full := VectorOf("Messi", "Argentina", "FW", "83", "37")
	sub := VectorOf("Messi", "", "FW", "", "")
	if !sub.Subset(full) {
		t.Fatalf("%v should be ⊆ %v", sub, full)
	}
	if full.Subset(sub) {
		t.Fatalf("%v should not be ⊆ %v", full, sub)
	}
	if !full.Superset(sub) {
		t.Fatalf("Superset inverse failed")
	}
	other := VectorOf("Messi", "", "MF", "", "")
	if other.Subset(full) {
		t.Fatalf("differing value should break subset")
	}
	if NewVector(4).Subset(full) {
		t.Fatalf("width mismatch should break subset")
	}
	// Reflexivity and the empty vector.
	if !full.Subset(full) {
		t.Fatalf("subset not reflexive")
	}
	if !NewVector(5).Subset(full) {
		t.Fatalf("empty vector should be subset of anything same width")
	}
}

func TestVectorWithDoesNotAlias(t *testing.T) {
	v := VectorOf("a", "", "")
	w := v.With(1, "b")
	if v[1].Set {
		t.Fatalf("With mutated the receiver")
	}
	if !w[1].Set || w[1].Val != "b" || !w[0].Set {
		t.Fatalf("With result wrong: %v", w)
	}
}

func TestVectorEncodeInjective(t *testing.T) {
	// Vectors that could collide under naive joining must encode distinctly.
	pairs := [][2]Vector{
		{VectorOf("ab", ""), VectorOf("a", "b")},
		{VectorOf("a|b", ""), VectorOf("a", "b")},
		{VectorOf("", "ab"), VectorOf("ab", "")},
		{VectorOf("1:a", ""), VectorOf("a", "")},
	}
	for _, p := range pairs {
		if p[0].Encode() == p[1].Encode() {
			t.Errorf("Encode collision: %v vs %v -> %q", p[0], p[1], p[0].Encode())
		}
	}
	v := VectorOf("x", "y")
	if v.Encode() != v.Clone().Encode() {
		t.Errorf("Encode not stable under Clone")
	}
}

func TestVectorEncodeInjectiveQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() Vector {
		v := NewVector(3)
		alphabet := []string{"", "a", "b", "|", ":", "ab", "a|b", "1:a", "_"}
		for i := range v {
			s := alphabet[rng.Intn(len(alphabet))]
			if s != "" {
				v[i] = Cell{Set: true, Val: s}
			}
		}
		return v
	}
	f := func() bool {
		a, b := gen(), gen()
		if a.Equal(b) {
			return a.Encode() == b.Encode()
		}
		return a.Encode() != b.Encode()
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVectorProjectAndKey(t *testing.T) {
	s := soccerSchema(t)
	v := VectorOf("Messi", "Argentina", "FW", "83", "37")
	key := v.Project(s.KeyColumns())
	if key.CountSet() != 2 || !key[0].Set || !key[1].Set {
		t.Fatalf("Project(key) = %v", key)
	}
	if !v.KeyComplete(s) {
		t.Fatalf("KeyComplete should hold")
	}
	partial := VectorOf("Messi", "", "FW", "", "")
	if partial.KeyComplete(s) {
		t.Fatalf("KeyComplete should fail with empty nationality")
	}
	v2 := VectorOf("Messi", "Argentina", "MF", "", "")
	if v.KeyOf(s) != v2.KeyOf(s) {
		t.Fatalf("KeyOf should agree on same key values")
	}
	v3 := VectorOf("Messi", "Brazil", "FW", "83", "37")
	if v.KeyOf(s) == v3.KeyOf(s) {
		t.Fatalf("KeyOf should differ on different nationality")
	}
}

func TestVectorJSONRoundTrip(t *testing.T) {
	v := VectorOf("Messi", "", "FW", "", "37")
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var w Vector
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !v.Equal(w) {
		t.Fatalf("round trip changed vector: %v -> %v", v, w)
	}
	var bad Vector
	if err := json.Unmarshal([]byte(`{"x":1}`), &bad); err == nil {
		t.Fatalf("unmarshal of non-array should fail")
	}
}

func TestVectorString(t *testing.T) {
	v := VectorOf("a", "", "c")
	if got := v.String(); got != "(a, ·, c)" {
		t.Fatalf("String = %q", got)
	}
}
