package model

import (
	"fmt"
	"strings"
)

// RenderTable renders rows as an aligned text table in the paper's figure
// style: one column per schema column plus ↑/↓ vote-count columns. Empty
// cells print as "·". Intended for CLIs, examples, and debugging output.
func RenderTable(s *Schema, rows []*Row) string {
	headers := make([]string, 0, s.NumColumns()+2)
	for _, c := range s.Columns {
		headers = append(headers, c.Name)
	}
	headers = append(headers, "↑", "↓")

	cells := make([][]string, 0, len(rows)+1)
	cells = append(cells, headers)
	for _, r := range rows {
		line := make([]string, 0, len(headers))
		for _, c := range r.Vec {
			if c.Set {
				line = append(line, c.Val)
			} else {
				line = append(line, "·")
			}
		}
		line = append(line, fmt.Sprint(r.Up), fmt.Sprint(r.Down))
		cells = append(cells, line)
	}

	widths := make([]int, len(headers))
	for _, line := range cells {
		for i, cell := range line {
			if w := displayWidth(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}

	var b strings.Builder
	for li, line := range cells {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(line)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)))
			}
		}
		b.WriteByte('\n')
		if li == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// displayWidth counts runes (the vote arrows are multi-byte but single-width).
func displayWidth(s string) int { return len([]rune(s)) }

// RenderFinal renders a final table (no vote columns; final scores are
// implied by membership).
func RenderFinal(s *Schema, rows []*Row) string {
	headers := make([]string, 0, s.NumColumns())
	for _, c := range s.Columns {
		headers = append(headers, c.Name)
	}
	cells := [][]string{headers}
	for _, r := range rows {
		line := make([]string, 0, len(headers))
		for _, c := range r.Vec {
			if c.Set {
				line = append(line, c.Val)
			} else {
				line = append(line, "·")
			}
		}
		cells = append(cells, line)
	}
	widths := make([]int, len(headers))
	for _, line := range cells {
		for i, cell := range line {
			if w := displayWidth(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}
	var b strings.Builder
	for li, line := range cells {
		for i, cell := range line {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(line)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(cell)))
			}
		}
		b.WriteByte('\n')
		if li == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total-2))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
