package model

import (
	"fmt"
	"slices"
	"strings"
)

// RowID identifies a row. Fill operations mint a globally-unique new id for
// the row they construct (paper §2.4); ids are "<origin>-<counter>" strings.
type RowID string

// Row is a candidate-table row: an identifier, a value vector, and upvote /
// downvote counts.
type Row struct {
	ID   RowID  `json:"id"`
	Vec  Vector `json:"vec"`
	Up   int    `json:"up"`
	Down int    `json:"down"`
}

// Clone deep-copies the row.
func (r *Row) Clone() *Row {
	return &Row{ID: r.ID, Vec: r.Vec.Clone(), Up: r.Up, Down: r.Down}
}

// String renders the row for logs and test failures.
func (r *Row) String() string {
	return fmt.Sprintf("%s%v ↑%d ↓%d", r.ID, r.Vec, r.Up, r.Down)
}

// Candidate is a candidate table R: a set of rows annotated with vote counts.
// It is a plain data structure; the replica logic in internal/sync applies
// the primitive-operation semantics. A value index accelerates the
// equality lookups vote application needs (upvotes touch every row whose
// value equals the voted vector).
type Candidate struct {
	schema *Schema
	rows   map[RowID]*Row
	// byValue indexes row ids by Vector.Encode. Callers must not mutate a
	// stored row's vector in place (the operation model never does: fills
	// replace rows wholesale).
	byValue map[string]map[RowID]*Row
}

// NewCandidate returns an empty candidate table over schema s.
func NewCandidate(s *Schema) *Candidate {
	return &Candidate{
		schema:  s,
		rows:    make(map[RowID]*Row),
		byValue: make(map[string]map[RowID]*Row),
	}
}

// Schema returns the table's schema.
func (c *Candidate) Schema() *Schema { return c.schema }

// Len returns the number of rows.
func (c *Candidate) Len() int { return len(c.rows) }

// Get returns the row with the given id, or nil.
func (c *Candidate) Get(id RowID) *Row { return c.rows[id] }

// Has reports whether a row with the given id exists.
func (c *Candidate) Has(id RowID) bool { _, ok := c.rows[id]; return ok }

// Put inserts or replaces a row object.
func (c *Candidate) Put(r *Row) {
	if old, ok := c.rows[r.ID]; ok {
		c.unindex(old)
	}
	c.rows[r.ID] = r
	k := r.Vec.Encode()
	bucket := c.byValue[k]
	if bucket == nil {
		bucket = make(map[RowID]*Row)
		c.byValue[k] = bucket
	}
	bucket[r.ID] = r
}

// Delete removes the row with the given id, if present.
func (c *Candidate) Delete(id RowID) {
	if old, ok := c.rows[id]; ok {
		c.unindex(old)
		delete(c.rows, id)
	}
}

func (c *Candidate) unindex(r *Row) {
	k := r.Vec.Encode()
	if bucket := c.byValue[k]; bucket != nil {
		delete(bucket, r.ID)
		if len(bucket) == 0 {
			delete(c.byValue, k)
		}
	}
}

// EachWithValue calls fn for every row whose value equals v, using the value
// index (vote application's equality case, §2.4).
func (c *Candidate) EachWithValue(v Vector, fn func(*Row)) {
	for _, r := range c.byValue[v.Encode()] {
		fn(r)
	}
}

// Rows returns all rows sorted by id (deterministic iteration order).
func (c *Candidate) Rows() []*Row {
	out := make([]*Row, 0, len(c.rows))
	for _, r := range c.rows {
		out = append(out, r)
	}
	// slices.SortFunc, not sort.Slice: this runs on every table view, and
	// the generic sort skips sort.Slice's reflect-based swapper.
	slices.SortFunc(out, func(a, b *Row) int { return strings.Compare(string(a.ID), string(b.ID)) })
	return out
}

// Each calls fn for every row in unspecified order; fn must not add or
// delete rows.
func (c *Candidate) Each(fn func(*Row)) {
	for _, r := range c.rows {
		fn(r)
	}
}

// Clone deep-copies the table (including the value index).
func (c *Candidate) Clone() *Candidate {
	out := NewCandidate(c.schema)
	for _, r := range c.rows {
		out.Put(r.Clone())
	}
	return out
}

// Snapshot renders a canonical textual form of the table (rows sorted by id),
// used to compare replicas in convergence tests.
func (c *Candidate) Snapshot() string {
	var b strings.Builder
	for _, r := range c.Rows() {
		fmt.Fprintf(&b, "%s=%s u%d d%d\n", r.ID, r.Vec.Encode(), r.Up, r.Down)
	}
	return b.String()
}
