package model_test

import (
	"fmt"

	"crowdfill/internal/model"
)

// ExampleFinalTable reproduces the paper's §2.2 derivation: from a candidate
// table with votes, the final table keeps each key's best positively-scored
// complete row.
func ExampleFinalTable() {
	s := model.MustSchema("SoccerPlayer", []model.Column{
		{Name: "name"}, {Name: "nationality"}, {Name: "position"},
		{Name: "caps", Type: model.TypeInt}, {Name: "goals", Type: model.TypeInt},
	}, "name", "nationality")
	c := model.NewCandidate(s)
	c.Put(&model.Row{ID: "r-1", Vec: model.VectorOf("Lionel Messi", "Argentina", "FW", "83", "37"), Up: 2})
	c.Put(&model.Row{ID: "r-2", Vec: model.VectorOf("Ronaldinho", "Brazil", "MF", "97", "33"), Up: 3})
	c.Put(&model.Row{ID: "r-3", Vec: model.VectorOf("Ronaldinho", "Brazil", "FW", "97", "33"), Up: 2, Down: 1})
	c.Put(&model.Row{ID: "r-4", Vec: model.VectorOf("David Beckham", "England", "MF", "115", "17"), Up: 1})

	majority3 := model.MajorityShortcut(3)
	for _, row := range model.FinalTable(c, majority3) {
		fmt.Println(row.Vec)
	}
	// Output:
	// (Lionel Messi, Argentina, FW, 83, 37)
	// (Ronaldinho, Brazil, MF, 97, 33)
}

// ExampleVector_Subset shows the subsumption relation votes and constraints
// are built on.
func ExampleVector_Subset() {
	partial := model.VectorOf("Lionel Messi", "", "FW", "", "")
	full := model.VectorOf("Lionel Messi", "Argentina", "FW", "83", "37")
	fmt.Println(partial.Subset(full))
	fmt.Println(full.Subset(partial))
	// Output:
	// true
	// false
}
