// Package bufown guards the read-buffer lease protocol (DESIGN.md §11): the
// slice returned by wsock.Conn.ReadTextLease/TryReadTextLease aliases the
// connection's reusable read buffer and is valid only until the next read
// call on that connection. A caller that retains the lease past that point
// sees the bytes of some later frame — a silent corruption, not a crash — so
// the rule is enforced statically.
//
// The analysis is intraprocedural, mirroring lockscope's walk: it tracks
// variables bound to lease-returning calls (and their aliases through plain
// assignments, slicings, and append-with-lease-as-base), and flags
//
//   - returning a lease (or a slice of one) from the function;
//   - storing a lease in a struct field, package-level variable, or
//     slice/map element;
//   - sending a lease on a channel or capturing one in a go statement;
//   - using a lease after a later read call on any connection invalidated it
//     (loop bodies are walked twice so back-edge invalidations are seen).
//
// Passing a lease to a function call is allowed — the protocol requires
// callees to copy what they keep (DecodeMessageInto does), and the built-in
// copy patterns (append to a fresh slice, string conversion) are how callers
// take ownership.
package bufown

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"crowdfill/internal/analysis"
)

// leaseMethods return a slice aliasing the connection's read buffer.
var leaseMethods = map[string]bool{
	"ReadTextLease":    true,
	"TryReadTextLease": true,
}

// invalidatingMethods end every outstanding lease on call: any read that
// advances the connection reuses the backing buffer.
var invalidatingMethods = map[string]bool{
	"ReadText": true, "ReadTextLease": true, "TryReadTextLease": true,
	"Recv": true, "RecvBatch": true,
}

// New returns the bufown analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "bufown",
		Doc: "flags leased read buffers (wsock ReadTextLease/TryReadTextLease) " +
			"escaping the caller or being used after a later read invalidated " +
			"the lease",
		Run: run,
	}
}

// leaseInfo is the per-variable lease state; the map is copied by value into
// branches so branch-local invalidation does not leak out.
type leaseInfo struct {
	stale bool
}

type leaseState map[types.Object]leaseInfo

func clone(st leaseState) leaseState {
	cp := make(leaseState, len(st))
	for k, v := range st {
		cp[k] = v
	}
	return cp
}

type checker struct {
	pass *analysis.Pass
	// seen dedups diagnostics: loop bodies are walked twice, and the second
	// pass must only add back-edge findings, not repeat first-pass ones.
	seen map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, seen: make(map[string]bool)}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walkStmts(fd.Body.List, leaseState{})
			}
		}
	}
	return nil
}

func (c *checker) reportf(pos token.Pos, msg string) {
	key := fmt.Sprintf("%d:%s", pos, msg)
	if c.seen[key] {
		return
	}
	c.seen[key] = true
	c.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}

func (c *checker) walkStmts(stmts []ast.Stmt, st leaseState) {
	for _, s := range stmts {
		c.walkStmt(s, st)
	}
}

func (c *checker) walkStmt(s ast.Stmt, st leaseState) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.handleAssign(s, st)
	case *ast.DeclStmt:
		c.handleDecl(s, st)
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkStaleUses(r, st)
			if obj := c.aliasedLease(r, st); obj != nil {
				c.reportf(r.Pos(), "returning a leased read buffer (valid only until the next read on the connection); copy it first")
			}
		}
	case *ast.SendStmt:
		c.checkStaleUses(s.Chan, st)
		c.checkStaleUses(s.Value, st)
		if obj := c.aliasedLease(s.Value, st); obj != nil {
			c.reportf(s.Value.Pos(), "leased read buffer sent on a channel (outlives the lease); copy it first")
		}
	case *ast.GoStmt:
		ast.Inspect(s.Call, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
					if _, tracked := st[obj]; tracked {
						c.reportf(id.Pos(), "leased read buffer captured by a spawned goroutine (outlives the lease); copy it first")
					}
				}
			}
			return true
		})
	case *ast.ExprStmt:
		c.checkStaleUses(s.X, st)
		if c.containsInvalidatingCall(s.X) {
			invalidate(st)
		}
	case *ast.DeferStmt:
		c.checkStaleUses(s.Call, st)
	case *ast.BlockStmt:
		c.walkStmts(s.List, st)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		c.checkStaleUses(s.Cond, st)
		c.walkStmts(s.Body.List, clone(st))
		if s.Else != nil {
			c.walkStmt(s.Else, clone(st))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Cond != nil {
			c.checkStaleUses(s.Cond, st)
		}
		// Two passes over the body: the second sees the state the first
		// produced, so a lease taken in iteration k and used in iteration
		// k+1 (after the loop's own read call invalidated it) is caught.
		body := clone(st)
		for i := 0; i < 2; i++ {
			c.walkStmts(s.Body.List, body)
			if s.Post != nil {
				c.walkStmt(s.Post, body)
			}
		}
	case *ast.RangeStmt:
		c.checkStaleUses(s.X, st)
		body := clone(st)
		for i := 0; i < 2; i++ {
			c.walkStmts(s.Body.List, body)
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, st)
		}
		if s.Tag != nil {
			c.checkStaleUses(s.Tag, st)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, clone(st))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, clone(st))
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				if cl.Comm != nil {
					c.walkStmt(cl.Comm, clone(st))
				}
				c.walkStmts(cl.Body, clone(st))
			}
		}
	default:
		if s != nil {
			c.checkStaleUsesNode(s, st)
		}
	}
}

// handleAssign processes one assignment: stale checks on the right, then
// invalidation from any read call, then left-hand binding — fresh leases,
// alias propagation, and escape detection for non-local destinations.
func (c *checker) handleAssign(a *ast.AssignStmt, st leaseState) {
	for _, r := range a.Rhs {
		c.checkStaleUses(r, st)
	}
	// Capture alias sources before invalidation/rebinding mutates the state:
	// `a, b = b, a` style swaps read the pre-assignment state.
	srcs := make([]types.Object, len(a.Rhs))
	for i, r := range a.Rhs {
		srcs[i] = c.aliasedLease(r, st)
	}
	fresh := false
	for _, r := range a.Rhs {
		if c.containsInvalidatingCall(r) {
			invalidate(st)
			fresh = fresh || c.isLeaseCall(r)
		}
	}
	// Multi-value lease bind: data, ... := conn.ReadTextLease().
	if fresh && len(a.Rhs) == 1 && len(a.Lhs) >= 1 {
		if obj := c.lhsLocalObj(a.Lhs[0]); obj != nil {
			st[obj] = leaseInfo{}
		} else if !isBlank(a.Lhs[0]) {
			c.reportf(a.Lhs[0].Pos(), "leased read buffer stored outside the function (the lease ends at the next read); copy it first")
		}
		return
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		src := srcs[i]
		if obj := c.lhsLocalObj(lhs); obj != nil {
			if src != nil {
				st[obj] = st[src] // alias carries the source's staleness
			} else {
				delete(st, obj) // rebound to a non-lease value
			}
			continue
		}
		if src != nil && !isBlank(lhs) {
			c.reportf(lhs.Pos(), "leased read buffer stored outside the function (the lease ends at the next read); copy it first")
		}
	}
}

// handleDecl processes `var x = <lease expr>` declarations.
func (c *checker) handleDecl(d *ast.DeclStmt, st leaseState) {
	gd, ok := d.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			c.checkStaleUses(v, st)
		}
		if len(vs.Values) == 1 && c.isLeaseCall(vs.Values[0]) {
			invalidate(st)
			if len(vs.Names) >= 1 {
				if obj := c.pass.TypesInfo.Defs[vs.Names[0]]; obj != nil {
					st[obj] = leaseInfo{}
				}
			}
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			if src := c.aliasedLease(vs.Values[i], st); src != nil {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					st[obj] = st[src]
				}
			}
		}
	}
}

// lhsLocalObj resolves an assignment destination to a function-local
// variable object, or nil when the destination escapes the frame (struct
// field, slice/map element, dereference, or package-level variable).
func (c *checker) lhsLocalObj(lhs ast.Expr) types.Object {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := c.pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = c.pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return nil
	}
	if v, ok := obj.(*types.Var); ok {
		if v.Parent() != nil && v.Parent() != c.pass.Pkg.Scope() && !v.IsField() {
			return obj
		}
	}
	return nil
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// aliasedLease reports the tracked lease object an expression's value may
// alias: the lease variable itself, a slice of it, or an append growing it.
// Results of ordinary calls are not aliases — the protocol obliges callees
// to copy — and neither are copying constructs (append to a fresh base,
// string conversion).
func (c *checker) aliasedLease(e ast.Expr, st leaseState) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			if _, ok := st[obj]; ok {
				return obj
			}
		}
	case *ast.SliceExpr:
		return c.aliasedLease(e.X, st)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				return c.aliasedLease(e.Args[0], st)
			}
		}
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if obj := c.aliasedLease(elt, st); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// checkStaleUses flags references to invalidated leases inside an expression.
func (c *checker) checkStaleUses(node ast.Expr, st leaseState) {
	if node == nil {
		return
	}
	c.checkStaleUsesNode(node, st)
}

func (c *checker) checkStaleUsesNode(node ast.Node, st leaseState) {
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
				if info, tracked := st[obj]; tracked && info.stale {
					c.reportf(id.Pos(), "use of a leased read buffer after a later read invalidated the lease; copy before the next read")
				}
			}
		}
		return true
	})
}

// containsInvalidatingCall reports whether the expression performs a read
// call that ends outstanding leases (receiver is a connection-like type).
func (c *checker) containsInvalidatingCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if invalidatingMethods[sel.Sel.Name] && receiverTypeName(c.pass, sel.X) == "Conn" {
			found = true
		}
		return true
	})
	return found
}

// isLeaseCall reports whether the expression is (exactly) a lease-returning
// call on a connection.
func (c *checker) isLeaseCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return leaseMethods[sel.Sel.Name] && receiverTypeName(c.pass, sel.X) == "Conn"
}

func invalidate(st leaseState) {
	for k, v := range st {
		v.stale = true
		st[k] = v
	}
}

// receiverTypeName returns the named type of expr after stripping pointers.
func receiverTypeName(pass *analysis.Pass, expr ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
