// Package e exercises the bufown analyzer: the lease protocol on
// connection read buffers. The Conn type mirrors wsock.Conn's lease surface
// (bufown matches lease methods by receiver type name).
package e

// Conn mimics a wsock connection with a reusable read buffer.
type Conn struct{ rbuf []byte }

func (c *Conn) ReadTextLease() ([]byte, error)          { return c.rbuf, nil }
func (c *Conn) TryReadTextLease() ([]byte, bool, error) { return c.rbuf, false, nil }
func (c *Conn) ReadText() ([]byte, error)               { return append([]byte(nil), c.rbuf...), nil }
func (c *Conn) RecvBatch() int                          { return 0 }

type holder struct{ buf []byte }

var global []byte

func use([]byte) {}

// goodUseBeforeNextRead uses the lease within its validity window.
func goodUseBeforeNextRead(c *Conn) error {
	data, err := c.ReadTextLease()
	if err != nil {
		return err
	}
	use(data)
	return nil
}

// goodCopyReturn takes ownership by copying into a fresh slice.
func goodCopyReturn(c *Conn) []byte {
	data, _ := c.ReadTextLease()
	return append([]byte(nil), data...)
}

// goodStringCopy converts (which copies) before storing.
func goodStringCopy(c *Conn, h *holder) {
	data, _ := c.ReadTextLease()
	h.buf = []byte(string(data))
}

// goodBatchLoop rebinds the lease each iteration before using it — the
// transport.RecvBatch drain pattern.
func goodBatchLoop(c *Conn) {
	for {
		data, ok, _ := c.TryReadTextLease()
		if !ok {
			return
		}
		use(data)
	}
}

// goodReadTextRetain keeps ReadText's result: that method copies, so its
// return value is the caller's to keep.
func goodReadTextRetain(c *Conn, h *holder) {
	data, _ := c.ReadText()
	h.buf = data
}

func badReturn(c *Conn) []byte {
	data, _ := c.ReadTextLease()
	return data // want `returning a leased read buffer`
}

func badReturnSlice(c *Conn) []byte {
	data, _ := c.ReadTextLease()
	return data[1:] // want `returning a leased read buffer`
}

func badReturnAppendGrow(c *Conn) []byte {
	data, _ := c.ReadTextLease()
	return append(data, 0) // want `returning a leased read buffer`
}

func badReturnAlias(c *Conn) []byte {
	data, _ := c.ReadTextLease()
	alias := data
	return alias // want `returning a leased read buffer`
}

func badFieldStore(c *Conn, h *holder) {
	data, _ := c.ReadTextLease()
	h.buf = data // want `stored outside the function`
}

func badGlobalStore(c *Conn) {
	data, _ := c.ReadTextLease()
	global = data // want `stored outside the function`
}

func badSliceElemStore(c *Conn, out [][]byte) {
	data, _ := c.ReadTextLease()
	out[0] = data // want `stored outside the function`
}

func badChannelSend(c *Conn, ch chan []byte) {
	data, _ := c.ReadTextLease()
	ch <- data // want `sent on a channel`
}

func badGoroutineCapture(c *Conn) {
	data, _ := c.ReadTextLease()
	go use(data) // want `captured by a spawned goroutine`
}

func badUseAfterNextLease(c *Conn) {
	a, _ := c.ReadTextLease()
	b, _ := c.ReadTextLease()
	use(a) // want `after a later read invalidated the lease`
	use(b)
}

func badUseAfterReadText(c *Conn) {
	a, _ := c.ReadTextLease()
	c.ReadText()
	use(a) // want `after a later read invalidated the lease`
}

// badCrossIterationUse keeps the previous iteration's lease across the next
// read call: the loop's own TryReadTextLease invalidates it (caught on the
// second body walk, which sees the back edge).
func badCrossIterationUse(c *Conn) {
	var prev []byte
	for {
		data, ok, _ := c.TryReadTextLease()
		if !ok {
			return
		}
		use(prev) // want `after a later read invalidated the lease`
		prev = data
	}
}

// The coalesced-write path: flushers batch prepared frames and hand them to
// SendPreparedBatch. Sends are writes — they do not advance the read cursor,
// so they never invalidate a lease; what ends the lease is the next read,
// and what escapes it is stashing it in batch scratch that outlives the
// frame.

func (c *Conn) SendPreparedBatch(frames ...[]byte) error { return nil }

// batcher mirrors a flusher's per-connection state: scratch that persists
// across flush rounds.
type batcher struct{ pending [][]byte }

// goodSendDoesNotInvalidate: a write between taking the lease and using it
// is fine; only reads recycle the buffer.
func goodSendDoesNotInvalidate(c *Conn) {
	data, _ := c.ReadTextLease()
	_ = c.SendPreparedBatch([]byte("frame"))
	use(data)
}

// goodBatchCopyThenSend takes ownership by copying into the batch scratch
// before the next read: append with a non-lease base copies the bytes.
func goodBatchCopyThenSend(c *Conn, scratch []byte) {
	data, _ := c.ReadTextLease()
	scratch = append(scratch[:0], data...)
	_ = c.SendPreparedBatch(scratch)
}

// badStashLeaseInBatchSlot parks the lease itself in caller-owned batch
// scratch: the slot outlives the frame and the next read rewrites it.
func badStashLeaseInBatchSlot(c *Conn, batch [][]byte) {
	data, _ := c.ReadTextLease()
	batch[0] = data // want `stored outside the function`
}

// badStashLeaseInPending stores the lease in the flusher's persistent
// per-connection scratch.
func badStashLeaseInPending(c *Conn, b *batcher) {
	data, _ := c.ReadTextLease()
	b.pending[0] = data // want `stored outside the function`
}

// badBatchLiteralOnChannel ships a batch containing the raw lease to another
// goroutine.
func badBatchLiteralOnChannel(c *Conn, ch chan [][]byte) {
	data, _ := c.ReadTextLease()
	ch <- [][]byte{data} // want `sent on a channel`
}

// badUseAfterRecvBatch: a batched read invalidates like any other read.
func badUseAfterRecvBatch(c *Conn) {
	data, _ := c.ReadTextLease()
	c.RecvBatch()
	use(data) // want `after a later read invalidated the lease`
}
