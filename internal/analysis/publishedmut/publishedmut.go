// Package publishedmut enforces the aliasing contract of the encode-once
// broadcast design (DESIGN.md §7–8): once a sync.Message, *sync.Prepared,
// server.Broadcast or server.Outbound value has been handed to the publish
// side — NewPrepared, HandleBroadcast/Handle, a transport Send, or the
// broadcast log — it is shared by every cursor follower and must never be
// written again. A Message's reference-typed parts (Vec, Snapshot,
// Estimates) alias the published copy even though the struct itself is
// passed by value, and NewPrepared's doc makes the whole struct immutable
// after wrapping; this analyzer turns that comment into a diagnostic.
//
// The check is intraprocedural and position-ordered: a field or element
// write that textually follows the value's escape in the same function body
// is flagged. Writes before the escape (stamping Origin/Worker/TS before
// Apply+publish) are the sanctioned pattern and pass.
package publishedmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdfill/internal/analysis"
)

// targetTypes are the shared-after-publish types, by package path and name.
var targetTypes = map[[2]string]bool{
	{"crowdfill/internal/sync", "Message"}:     true,
	{"crowdfill/internal/sync", "Prepared"}:    true,
	{"crowdfill/internal/server", "Broadcast"}: true,
	{"crowdfill/internal/server", "Outbound"}:  true,
}

// sinkNames are functions and methods through which a value escapes to the
// broadcast plane.
var sinkNames = map[string]bool{
	"Publish": true, "publish": true,
	"HandleBroadcast": true, "Handle": true,
	"Send": true, "SendPrepared": true, "WriteText": true,
	"NewPrepared": true,
}

// New returns the publishedmut analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "publishedmut",
		Doc: "flags writes through sync.Message/sync.Prepared/server.Broadcast/" +
			"server.Outbound values after they escape to the publish side " +
			"(NewPrepared, HandleBroadcast, transport Send, the broadcast log); " +
			"published messages are immutable because every recipient aliases them",
		Run: run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkBody(pass, n.Body)
				}
				return false // bodies handle their own nested FuncLits
			}
			return true
		})
	}
	return nil
}

// checkBody analyzes one function body. Nested function literals get their
// own independent scope: a closure mutating a captured message is a dynamic
// question this positional analysis cannot answer, so each body is judged on
// its own ordering.
func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	escaped := make(map[*types.Var]token.Pos) // var -> earliest escape
	type write struct {
		v    *types.Var
		pos  token.Pos
		name string
	}
	var writes []write

	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				checkBody(pass, n.Body)
				return false
			case *ast.CallExpr:
				if calleeName(n) != "" && sinkNames[calleeName(n)] {
					for _, arg := range n.Args {
						if v := targetRoot(pass, arg); v != nil {
							if p, ok := escaped[v]; !ok || n.Pos() < p {
								escaped[v] = n.Pos()
							}
						}
					}
				}
			case *ast.CompositeLit:
				// Placing a value into a Broadcast/Outbound/record literal
				// shares it with the broadcast plane.
				if isTargetType(pass.TypesInfo.Types[n].Type) {
					for _, el := range n.Elts {
						expr := el
						if kv, ok := el.(*ast.KeyValueExpr); ok {
							expr = kv.Value
						}
						if v := targetRoot(pass, expr); v != nil {
							if p, ok := escaped[v]; !ok || n.Pos() < p {
								escaped[v] = n.Pos()
							}
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if v, steps := rootVar(pass, lhs); v != nil && steps > 0 && isTargetType(v.Type()) {
						writes = append(writes, write{v: v, pos: lhs.Pos(), name: v.Name()})
					}
				}
			case *ast.IncDecStmt:
				if v, steps := rootVar(pass, n.X); v != nil && steps > 0 && isTargetType(v.Type()) {
					writes = append(writes, write{v: v, pos: n.Pos(), name: v.Name()})
				}
			}
			return true
		})
	}
	walk(body)

	for _, w := range writes {
		if esc, ok := escaped[w.v]; ok && esc < w.pos {
			pass.Reportf(w.pos, "write to field of %s after it escaped to the broadcast plane at line %d; published messages are shared by every recipient and must not be mutated",
				w.name, pass.Fset.Position(esc).Line)
		}
	}
}

// calleeName returns the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// targetRoot returns the variable at the root of expr if expr denotes (part
// of) a value of a target type: v, &v, v.Field, v[i] and chains thereof.
func targetRoot(pass *analysis.Pass, expr ast.Expr) *types.Var {
	v, _ := rootVar(pass, expr)
	if v == nil || !isTargetType(v.Type()) {
		return nil
	}
	return v
}

// rootVar unwraps selector/index/deref/address chains to the root variable,
// counting the selector and index steps taken.
func rootVar(pass *analysis.Pass, expr ast.Expr) (*types.Var, int) {
	steps := 0
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			// Only field selections stay on the value; package selectors and
			// method values do not.
			if sel, ok := pass.TypesInfo.Selections[e]; !ok || sel.Kind() != types.FieldVal {
				return nil, 0
			}
			expr = e.X
			steps++
		case *ast.IndexExpr:
			expr = e.X
			steps++
		case *ast.StarExpr:
			expr = e.X
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return nil, 0
			}
			expr = e.X
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[e].(*types.Var); ok {
				return v, steps
			}
			return nil, 0
		default:
			return nil, 0
		}
	}
}

// isTargetType reports whether t (or what it points to) is one of the
// shared-after-publish types.
func isTargetType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return targetTypes[[2]string{obj.Pkg().Path(), obj.Name()}]
}
