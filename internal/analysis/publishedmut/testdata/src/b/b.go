// Package b exercises the publishedmut analyzer: writes to broadcast-plane
// values before and after they escape to the publish side.
package b

import (
	"crowdfill/internal/server"
	"crowdfill/internal/sync"
)

// stampThenPublish is the sanctioned pattern: all writes happen before the
// message escapes.
func stampThenPublish(core *server.Core, m sync.Message, ts int64) {
	m.Origin = "client-1"
	m.TS = ts
	_, _ = core.HandleBroadcast("client-1", m)
}

// mutateAfterHandle writes a field after the message escaped into the
// broadcast plane.
func mutateAfterHandle(core *server.Core, m sync.Message, ts int64) {
	_, _ = core.HandleBroadcast("client-1", m)
	m.TS = ts // want `write to field of m after it escaped`
}

// mutateVecAfterPrepare mutates the message's shared slice after wrapping it
// in a Prepared: every recipient aliases Vec.
func mutateVecAfterPrepare(m sync.Message) *sync.Prepared {
	p := sync.NewPrepared(m)
	m.Vec[0].Val = "tampered" // want `write to field of m after it escaped`
	return p
}

// mutateBeforePrepare is fine: the write precedes the escape.
func mutateBeforePrepare(m sync.Message) *sync.Prepared {
	m.Vec[0].Val = "stamped"
	return sync.NewPrepared(m)
}

// Publish stands in for the broadcast log's publish side.
func Publish(bs ...server.Broadcast) {}

// buildThenPublish is fine: Broadcast fields are set before publishing.
func buildThenPublish(p *sync.Prepared) {
	b := server.Broadcast{Prepared: p}
	b.Exclude = "client-2"
	Publish(b)
}

// mutateAfterPublish rebinds a Broadcast's fields after it was published.
func mutateAfterPublish(b server.Broadcast) {
	Publish(b)
	b.Exclude = "client-2" // want `write to field of b after it escaped`
}

// outboundEscape covers the Outbound literal sink.
func outboundEscape(m sync.Message) []server.Outbound {
	out := []server.Outbound{{To: "c", Msg: m}}
	m.Seq++ // want `write to field of m after it escaped`
	return out
}

// allowedMutation uses the escape hatch with justification.
func allowedMutation(core *server.Core, m sync.Message, ts int64) {
	_, _ = core.HandleBroadcast("client-1", m)
	m.TS = ts //lint:allow publishedmut test fixture rewinds its own unshared copy
}

// freshCopyIsFine: a different variable is not the escaped one.
func freshCopyIsFine(core *server.Core, m sync.Message, ts int64) {
	_, _ = core.HandleBroadcast("client-1", m)
	other := sync.Message{Type: sync.MsgUpvote}
	other.TS = ts
	_ = other
}
