package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// parseSrc writes src to a real file (onOwnLine re-reads the source) and
// parses it with comments.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*Allow) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "f.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, CollectAllows(fset, []*ast.File{f})
}

func TestCollectAllowsCoverage(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //lint:allow simdet inline covers its own line
	//lint:allow lockscope standalone covers the next line
	_ = 2
	_ = 3 //lint:allow hotalloc reason text // trailing comment is not justification
}
`
	fset, allows := parseSrc(t, src)
	_ = fset
	if len(allows) != 3 {
		t.Fatalf("collected %d allows, want 3: %+v", len(allows), allows)
	}
	byAnalyzer := make(map[string]*Allow)
	for _, a := range allows {
		byAnalyzer[a.Analyzer] = a
	}
	if a := byAnalyzer["simdet"]; a.Line != 4 {
		t.Errorf("inline directive covers line %d, want its own line 4", a.Line)
	}
	if a := byAnalyzer["lockscope"]; a.Line != 6 {
		t.Errorf("standalone directive covers line %d, want the next line 6", a.Line)
	}
	if a := byAnalyzer["hotalloc"]; a.Justification != "reason text" {
		t.Errorf("justification = %q, want the nested // comment cut off", a.Justification)
	}
}

// TestMultiAnalyzerSameLine: when two analyzers report on one line, an allow
// suppresses only the analyzer it names; the other finding survives, and
// neither directive goes stale.
func TestMultiAnalyzerSameLine(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("f.go", -1, 1000)
	f.SetLines([]int{0, 50, 100, 150, 200})
	pos := f.LineStart(3)

	allows := []*Allow{
		{Analyzer: "simdet", Justification: "seeded", File: "f.go", Line: 3},
		{Analyzer: "lockscope", Justification: "startup only", File: "f.go", Line: 3},
	}
	simdetDiags := []Diagnostic{{Pos: pos, Message: "wall clock"}}
	lockDiags := []Diagnostic{{Pos: pos, Message: "send under lock"}}

	kept, extras := Filter(fset, allows, "simdet", simdetDiags)
	if len(kept) != 0 || len(extras) != 0 {
		t.Fatalf("simdet: kept=%v extras=%v, want both empty", kept, extras)
	}
	kept, extras = Filter(fset, allows, "lockscope", lockDiags)
	if len(kept) != 0 || len(extras) != 0 {
		t.Fatalf("lockscope: kept=%v extras=%v, want both empty", kept, extras)
	}
	// A Filter run for an analyzer with no diagnostics must not consume or
	// complain about the other analyzers' directives.
	kept, extras = Filter(fset, allows, "hotalloc", nil)
	if len(kept) != 0 || len(extras) != 0 {
		t.Fatalf("hotalloc: kept=%v extras=%v, want no cross-analyzer effects", kept, extras)
	}
}

// TestStaleWhenFindingMoves: a directive whose finding drifted to another
// line stops suppressing and is itself reported, so the original finding
// resurfaces rather than rotting silently.
func TestStaleWhenFindingMoves(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("f.go", -1, 1000)
	f.SetLines([]int{0, 50, 100, 150, 200, 250})

	allows := []*Allow{
		{Analyzer: "simdet", Justification: "was on line 3", File: "f.go", Line: 3},
	}
	diags := []Diagnostic{{Pos: f.LineStart(5), Message: "moved finding"}}
	kept, extras := Filter(fset, allows, "simdet", diags)
	if len(kept) != 1 || kept[0].Message != "moved finding" {
		t.Fatalf("kept = %+v, want the moved finding reported", kept)
	}
	if len(extras) != 1 {
		t.Fatalf("extras = %+v, want one stale-directive finding", extras)
	}
}

// TestUseAllowFeedsStaleCheck: a directive consumed through Shared.UseAllow
// (hotalloc's pruned call edges act before diagnostics exist) is marked used
// for the later Filter pass; untouched directives still go stale.
func TestUseAllowFeedsStaleCheck(t *testing.T) {
	fset := token.NewFileSet()
	allows := []*Allow{
		{Analyzer: "hotalloc", Justification: "pruned edge", File: "f.go", Line: 3},
		{Analyzer: "hotalloc", Justification: "never consumed", File: "f.go", Line: 9},
	}
	s := &Shared{allows: map[string][]*Allow{"p": allows}, memo: map[string]any{}}
	if !s.UseAllow("hotalloc", "f.go", 3) {
		t.Fatal("UseAllow did not match the covering directive")
	}
	if s.UseAllow("hotalloc", "f.go", 4) {
		t.Fatal("UseAllow matched an uncovered line")
	}
	if s.UseAllow("lockscope", "f.go", 3) {
		t.Fatal("UseAllow matched a different analyzer's directive")
	}
	_, extras := Filter(fset, allows, "hotalloc", nil)
	if len(extras) != 1 {
		t.Fatalf("extras = %+v, want exactly the untouched directive stale", extras)
	}
}
