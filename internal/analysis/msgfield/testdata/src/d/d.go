// Package d exercises the msgfield analyzer against the real message
// vocabulary: no-default switches must be exhaustive, and the local
// Core.HandleBroadcast / Rebuild pair models the accept-vs-replay contract.
package d

import (
	"errors"

	"crowdfill/internal/sync"
)

// exhaustive covers every declared MsgType and needs no default.
func exhaustive(t sync.MsgType) string {
	switch t {
	case sync.MsgInsert:
		return "insert"
	case sync.MsgReplace:
		return "replace"
	case sync.MsgUpvote:
		return "upvote"
	case sync.MsgDownvote:
		return "downvote"
	case sync.MsgSnapshot:
		return "snapshot"
	case sync.MsgDone:
		return "done"
	case sync.MsgEstimate:
		return "estimate"
	case sync.MsgUnupvote:
		return "unupvote"
	case sync.MsgUndownvote:
		return "undownvote"
	}
	return ""
}

// partialNoDefault silently drops every kind it does not list.
func partialNoDefault(t sync.MsgType) bool {
	switch t { // want `switch over sync.MsgType without a default clause is missing MsgDone`
	case sync.MsgInsert, sync.MsgReplace:
		return true
	case sync.MsgUpvote:
		return true
	}
	return false
}

// partialWithDefault marks the partial dispatch intentionally.
func partialWithDefault(t sync.MsgType) bool {
	switch t {
	case sync.MsgInsert, sync.MsgReplace:
		return true
	default:
		return false
	}
}

// notAMsgType switches are out of scope.
func notAMsgType(n int) bool {
	switch n {
	case 1:
		return true
	}
	return false
}

// Core mirrors the server core for the cross-package contract check.
type Core struct{}

// HandleBroadcast accepts MsgSnapshot from clients, but Rebuild below does
// not replay it — the Finish hook reports the broken contract here.
func (c *Core) HandleBroadcast(m *sync.Message) error {
	switch m.Type { // want `client-accepted message types MsgSnapshot are not handled by replay.Rebuild`
	case sync.MsgInsert, sync.MsgReplace, sync.MsgUpvote, sync.MsgSnapshot:
		return nil
	default:
		return errors.New("rejected")
	}
}

// Rebuild replays a strict subset of what HandleBroadcast accepts.
func Rebuild(msgs []sync.Message) error {
	for _, m := range msgs {
		switch m.Type {
		case sync.MsgInsert, sync.MsgReplace, sync.MsgUpvote:
		default:
			return errors.New("unreplayable")
		}
	}
	return nil
}
