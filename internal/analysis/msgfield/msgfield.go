// Package msgfield turns the "Handle is the executable spec" convention
// into a static exhaustiveness check over the wire-message vocabulary:
//
//  1. Any switch over sync.MsgType written without a default clause claims
//     to handle every message kind, and is flagged when a declared MsgType
//     constant is missing from its cases — so adding MsgX to internal/sync
//     breaks the build of every dispatcher that silently ignores it
//     (MsgType.String, Replica.Apply's kind tables, client dispatch). A
//     switch that intentionally handles a subset marks that by carrying a
//     default clause (possibly empty).
//  2. Cross-package: every message type Core.HandleBroadcast accepts from
//     clients lands in the stored trace, so it must also be accepted by
//     replay.Rebuild's switch — otherwise the bookkeeping trace (paper
//     §3.3) stops being replayable and crowdfill-replay/Audit break. The
//     contract is checked after all packages are analyzed.
package msgfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdfill/internal/analysis"
)

// syncPkgPath is the package defining the message vocabulary.
const syncPkgPath = "crowdfill/internal/sync"

// New returns the msgfield analyzer. The returned instance accumulates
// cross-package facts; use a fresh instance per lint run.
func New() *analysis.Analyzer {
	st := &state{}
	return &analysis.Analyzer{
		Name: "msgfield",
		Doc: "exhaustiveness of sync.MsgType dispatch: no-default switches must " +
			"cover every declared message kind, and every client-accepted type in " +
			"Core.HandleBroadcast must be replayable by replay.Rebuild",
		Run:    st.run,
		Finish: st.finish,
	}
}

type state struct {
	// accepted is the set of MsgType constant names Core.HandleBroadcast
	// admits from clients; acceptedPos anchors contract findings.
	accepted    map[string]bool
	acceptedPos token.Pos
	// rebuild is the set replay.Rebuild replays.
	rebuild map[string]bool
}

func (st *state) run(pass *analysis.Pass) error {
	msgType := findMsgType(pass)
	if msgType == nil {
		return nil // package does not see the message vocabulary
	}
	all := declaredConstants(msgType)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				tv, ok := pass.TypesInfo.Types[sw.Tag]
				if !ok || !types.Identical(tv.Type, msgType) {
					return true
				}
				cases, hasDefault := switchCases(pass, sw)
				if !hasDefault {
					var missing []string
					for _, c := range all {
						if !cases[c] {
							missing = append(missing, c)
						}
					}
					if len(missing) > 0 {
						pass.Reportf(sw.Pos(), "switch over sync.MsgType without a default clause is missing %s; handle the new kinds or add a (possibly empty) default to mark intentional partial dispatch",
							strings.Join(missing, ", "))
					}
				}
				st.record(pass, fd, sw, cases)
				return true
			})
		}
	}
	return nil
}

// record captures the case sets of the two contract endpoints.
func (st *state) record(pass *analysis.Pass, fd *ast.FuncDecl, sw *ast.SwitchStmt, cases map[string]bool) {
	switch {
	case fd.Name.Name == "HandleBroadcast" && receiverNamed(fd, "Core"):
		if st.accepted == nil {
			st.accepted = make(map[string]bool)
			st.acceptedPos = sw.Pos()
		}
		for c := range cases {
			st.accepted[c] = true
		}
	case fd.Name.Name == "Rebuild" && fd.Recv == nil:
		if st.rebuild == nil {
			st.rebuild = make(map[string]bool)
		}
		for c := range cases {
			st.rebuild[c] = true
		}
	}
}

func (st *state) finish(report func(analysis.Diagnostic)) {
	if st.accepted == nil || st.rebuild == nil {
		return // one endpoint not in this run; nothing to compare
	}
	var missing []string
	for c := range st.accepted {
		if !st.rebuild[c] {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	report(analysis.Diagnostic{
		Pos: st.acceptedPos,
		Message: "client-accepted message types " + strings.Join(missing, ", ") +
			" are not handled by replay.Rebuild; the stored trace would no longer replay (add the cases to Rebuild)",
	})
}

// switchCases resolves the MsgType constant names listed in the switch's
// case clauses and whether a default clause exists.
func switchCases(pass *analysis.Pass, sw *ast.SwitchStmt) (map[string]bool, bool) {
	cases := make(map[string]bool)
	hasDefault := false
	for _, cc := range sw.Body.List {
		cl, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cl.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cl.List {
			var id *ast.Ident
			switch e := ast.Unparen(e).(type) {
			case *ast.Ident:
				id = e
			case *ast.SelectorExpr:
				id = e.Sel
			}
			if id == nil {
				continue
			}
			if c, ok := pass.TypesInfo.Uses[id].(*types.Const); ok {
				cases[c.Name()] = true
			}
		}
	}
	return cases, hasDefault
}

// findMsgType locates the sync.MsgType named type visible to this package
// (the package itself or any of its direct imports).
func findMsgType(pass *analysis.Pass) types.Type {
	lookup := func(p *types.Package) types.Type {
		if p.Path() != syncPkgPath {
			return nil
		}
		if obj, ok := p.Scope().Lookup("MsgType").(*types.TypeName); ok {
			return obj.Type()
		}
		return nil
	}
	if t := lookup(pass.Pkg); t != nil {
		return t
	}
	for _, imp := range pass.Pkg.Imports() {
		if t := lookup(imp); t != nil {
			return t
		}
	}
	return nil
}

// declaredConstants returns the sorted names of every constant of the
// MsgType type declared in its defining package.
func declaredConstants(msgType types.Type) []string {
	named, ok := msgType.(*types.Named)
	if !ok {
		return nil
	}
	scope := named.Obj().Pkg().Scope()
	var names []string
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), msgType) {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// receiverNamed reports whether fd's receiver base type is named name.
func receiverNamed(fd *ast.FuncDecl, name string) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == name
}
