// Package d exercises the interprocedural half of lockscope: blocking and
// lock acquisition found through chains of module calls via call-graph
// summaries, not just literally inside a critical section. (Package c covers
// the direct, single-function cases.)
package d

import "sync"

type bcastLog struct {
	mu   sync.Mutex
	head uint64
}

type NetServer struct {
	mu  sync.Mutex
	ch  chan int
	log *bcastLog
}

// emit blocks but holds nothing itself: no finding on the leaf.
func (s *NetServer) emit() { s.ch <- 1 }

// relay is a plain passthrough; the block is two calls deep from its callers.
func (s *NetServer) relay() { s.emit() }

// broadcastUnderLock smuggles the blocking send into the critical section
// through two module calls: reported transitively with the via chain.
func (s *NetServer) broadcastUnderLock() {
	s.mu.Lock()
	s.relay() // want `call to NetServer.relay blocks — channel send \(via NetServer.emit\)`
	s.mu.Unlock()
}

// relayAfterUnlock is fine: the chain runs outside the section.
func (s *NetServer) relayAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.relay()
}

// headSeq opens and closes the log's critical section.
func (l *bcastLog) headSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.head
}

// snapshot acquires transitively: its summary carries headSeq's acquire.
func (l *bcastLog) snapshot() uint64 { return l.headSeq() }

// doubleEntry re-enters the log lock through two calls: transitive
// self-reentry, found from the callee's derived acquire set.
func (l *bcastLog) doubleEntry() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.snapshot() // want `call acquires bcastLog.mu while a bcastLog.mu critical section is open`
}

// publish opens the log's critical section directly.
func (l *bcastLog) publish() {
	l.mu.Lock()
	l.head++
	l.mu.Unlock()
}

// publishWrapped hides the acquisition one call deeper.
func (l *bcastLog) publishWrapped() { l.publish() }

// goodOrderDeep nests NetServer.mu → bcastLog.mu through the wrapper: the
// sanctioned order, no finding even though the acquire is transitive.
func (s *NetServer) goodOrderDeep() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.publishWrapped()
}

type flushQueue struct {
	mu sync.Mutex
	q  []int
}

func (q *flushQueue) push(v int) {
	q.mu.Lock()
	q.q = append(q.q, v)
	q.mu.Unlock()
}

// pushWrapped hides the queue acquisition one call deeper.
func (q *flushQueue) pushWrapped(v int) { q.push(v) }

// pushDeepUnderLogLock nests flushQueue.mu under bcastLog.mu through the
// wrapper: the ordering violation is derived from the callee's summary.
func (l *bcastLog) pushDeepUnderLogLock(fq *flushQueue) {
	l.mu.Lock()
	fq.pushWrapped(1) // want `lock ordering: acquiring flushQueue.mu while holding bcastLog.mu`
	l.mu.Unlock()
}

// goUnderLock launches the blocking chain in a new goroutine: the goroutine
// does not hold the caller's lock, so no finding.
func (s *NetServer) goUnderLock() {
	s.mu.Lock()
	go s.relay()
	s.mu.Unlock()
}

// deferredRelay defers the blocking chain: it runs at return time, after the
// explicit unlock below, so no finding.
func (s *NetServer) deferredRelay() {
	s.mu.Lock()
	defer s.relay()
	s.mu.Unlock()
}

// closureUnderLock builds (but does not run) the blocking chain under the
// lock: function literals are not call edges.
func (s *NetServer) closureUnderLock() func() {
	s.mu.Lock()
	fn := func() { s.relay() }
	s.mu.Unlock()
	return fn
}
