// Package c exercises the lockscope analyzer: blocking operations inside
// guarded critical sections and lock-ordering at modeled call sites. The
// type names mirror the broadcast plane's (lockscope models lock footprints
// by receiver type name).
package c

import (
	"encoding/json"
	"sync"
	"time"
)

// Conn mimics a transport connection.
type Conn struct{}

func (Conn) Send(v any) error                 { return nil }
func (Conn) SendPreparedBatch(v ...any) error { return nil }
func (Conn) Recv() (int, error)               { return 0, nil }
func (Conn) Close() error                     { return nil }

type bcastLog struct {
	mu   sync.RWMutex
	cond *sync.Cond
	head uint64
}

func (l *bcastLog) publish() {
	l.mu.Lock()
	l.head++
	l.mu.Unlock()
}

func (l *bcastLog) headSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.head
}

type NetServer struct {
	mu   sync.Mutex
	log  *bcastLog
	conn Conn
	ch   chan int
	logf func(string, ...any)
}

// goodOrder acquires bcastLog.mu (via the modeled publish) under
// NetServer.mu: the sanctioned order.
func (s *NetServer) goodOrder() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.publish()
}

// badOrder acquires NetServer.mu inside a bcastLog.mu critical section.
func (l *bcastLog) badOrder(s *NetServer) {
	l.mu.Lock()
	s.mu.Lock() // want `lock ordering: acquiring NetServer.mu while holding bcastLog.mu`
	s.mu.Unlock()
	l.mu.Unlock()
}

// selfDeadlock calls a method that re-acquires the lock already held.
func (l *bcastLog) selfDeadlock() {
	l.mu.Lock()
	_ = l.headSeq() // want `call acquires bcastLog.mu while a bcastLog.mu critical section is open`
	l.mu.Unlock()
}

// sendUnderLock performs a channel send inside a guarded section.
func (s *NetServer) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send inside a NetServer.mu critical section`
	s.mu.Unlock()
}

// sendAfterUnlock is fine: the send happens outside the section.
func (s *NetServer) sendAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

// recvUnderDeferredLock blocks on a receive while the deferred unlock still
// holds the lock.
func (s *NetServer) recvUnderDeferredLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive inside a NetServer.mu critical section`
}

// nonBlockingSelect is the sanctioned doorbell ring: select with default.
func (s *NetServer) nonBlockingSelect() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// blockingSelect lacks the default and parks under the lock.
func (s *NetServer) blockingSelect() {
	s.mu.Lock()
	select { // want `select without a default clause`
	case s.ch <- 1:
	}
	s.mu.Unlock()
}

// transportSendUnderLock writes to a connection inside the section.
func (s *NetServer) transportSendUnderLock() {
	s.mu.Lock()
	_ = s.conn.Send(1) // want `transport Send`
	s.mu.Unlock()
}

// jsonUnderLock encodes under the lock.
func (s *NetServer) jsonUnderLock(v any) {
	s.mu.Lock()
	_, _ = json.Marshal(v) // want `json.Marshal`
	s.mu.Unlock()
}

// sleepUnderLock stalls every publisher.
func (s *NetServer) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep inside a NetServer.mu critical section`
	s.mu.Unlock()
}

// logfUnderLock may block on log I/O.
func (s *NetServer) logfUnderLock() {
	s.mu.Lock()
	s.logf("under lock") // want `call through logf`
	s.mu.Unlock()
}

// condWaitIsAllowed: the designed follower wait releases the lock.
func (l *bcastLog) condWaitIsAllowed() {
	l.mu.RLock()
	for l.head == 0 {
		l.cond.Wait()
	}
	l.mu.RUnlock()
}

// closureNotUnderLock: a function literal built under the lock does not run
// under it.
func (s *NetServer) closureNotUnderLock() func() {
	s.mu.Lock()
	fn := func() { s.ch <- 1 }
	s.mu.Unlock()
	return fn
}

// branchUnlockThenBlock: a branch that unlocks before blocking is fine.
func (s *NetServer) branchUnlockThenBlock(stop bool) {
	s.mu.Lock()
	if stop {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	s.mu.Unlock()
}

// allowedEscapeHatch documents an intentional in-lock send.
func (s *NetServer) allowedEscapeHatch() {
	s.mu.Lock()
	s.ch <- 1 //lint:allow lockscope startup-only path, single-threaded before serving
	s.mu.Unlock()
}

// deltaAdj mirrors the planner's delta engine: ProbableDeltaListener
// callbacks run inside index flushes — on the server, always under Core's
// critical section — so their bodies carry an implicit Core hold.
type deltaAdj struct {
	ch   chan int
	logf func(string, ...any)
}

func (e *deltaAdj) ProbableAdded(r *int) {
	e.ch <- 1 // want `channel send inside a Core.mu critical section`
}

func (e *deltaAdj) IndexReset() {
	e.logf("reset") // want `call through logf`
}

// compact is in the modeled always-under-Core set for deltaAdj receivers.
func (e *deltaAdj) compact() {
	<-e.ch // want `channel receive inside a Core.mu critical section`
}

// rebalance is NOT a modeled method: no implicit hold, no finding.
func (e *deltaAdj) rebalance() {
	e.ch <- 1
}

// TableIndex mirrors the model package's index: its flush machinery runs
// under Core.
type TableIndex struct {
	ch chan int
}

func (x *TableIndex) flush() {
	select { // want `select without a default clause`
	case x.ch <- 1:
	}
}

// Probable is not modeled as under-Core: no finding.
func (x *TableIndex) Probable() {
	x.ch <- 1
}

// Planner mirrors the constraint planner: the repair paths run under Core.
type Planner struct {
	conn Conn
}

func (p *Planner) repairIncremental() {
	_ = p.conn.Send(1) // want `transport Send`
}

// ProbableAdded on any receiver type carries the implicit hold (listener
// dispatch is by interface, not by a known concrete type).
type otherListener struct {
	ch chan int
}

func (o *otherListener) ProbableRemoved(r *int) {
	o.ch <- 1 // want `channel send inside a Core.mu critical section`
}

// unguardedMutexesAreOrderingOnly: blocking ops under a non-plane mutex are
// not flagged.
type ledger struct {
	mu sync.Mutex
	ch chan int
}

func (g *ledger) record() {
	g.mu.Lock()
	g.ch <- 1 // not a guarded owner: no finding
	g.mu.Unlock()
}

// flushQueue mirrors the flusher pool's dirty-connection work queue. Its mu
// is a guarded owner with no allowedOrder entry: it must never nest with
// bcastLog.mu in either direction.
type flushQueue struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []*flushConn
}

type flushConn struct {
	conn Conn
}

func (q *flushQueue) push(fc *flushConn) {
	q.mu.Lock()
	q.q = append(q.q, fc)
	q.mu.Unlock()
}

func (q *flushQueue) pop() *flushConn {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.q) == 0 {
		q.cond.Wait()
	}
	fc := q.q[0]
	q.q = q.q[1:]
	return fc
}

// pushUnderLogLock enqueues dirty connections while still inside the
// broadcast log's critical section: the classic flusher-pool deadlock shape.
func (l *bcastLog) pushUnderLogLock(fq *flushQueue, fc *flushConn) {
	l.mu.Lock()
	fq.push(fc) // want `lock ordering: acquiring flushQueue.mu while holding bcastLog.mu`
	l.mu.Unlock()
}

// popUnderLogLock parks on the work queue's condition variable with the log
// lock held.
func (l *bcastLog) popUnderLogLock(fq *flushQueue) *flushConn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return fq.pop() // want `lock ordering: acquiring flushQueue.mu while holding bcastLog.mu`
}

// publishUnderQueueLock is the reverse nesting: also forbidden.
func (q *flushQueue) publishUnderQueueLock(l *bcastLog) {
	q.mu.Lock()
	l.publish() // want `lock ordering: acquiring bcastLog.mu while holding flushQueue.mu`
	q.mu.Unlock()
}

// collectThenPush is the sanctioned pattern: gather dirty connections under
// the log lock, release it, then push to the queue lock-free.
func (l *bcastLog) collectThenPush(fq *flushQueue, parked []*flushConn) {
	var wake []*flushConn
	l.mu.Lock()
	wake = append(wake, parked...)
	l.mu.Unlock()
	for _, fc := range wake {
		fq.push(fc)
	}
}

// batchSendUnderQueueLock performs coalesced transport I/O while holding the
// work queue's mutex; flushers must claim the connection and release the
// queue before writing.
func (q *flushQueue) batchSendUnderQueueLock(fc *flushConn) {
	q.mu.Lock()
	_ = fc.conn.SendPreparedBatch(1, 2) // want `transport SendPreparedBatch`
	q.mu.Unlock()
}

// batchSendUnderLogLock: the coalesced write is just as blocking under the
// log lock.
func (l *bcastLog) batchSendUnderLogLock(c Conn) {
	l.mu.Lock()
	_ = c.SendPreparedBatch(1) // want `transport SendPreparedBatch`
	l.mu.Unlock()
}

// batchSendLockFree is the flusher's real shape: drain state under the log
// lock, release, then write.
func (l *bcastLog) batchSendLockFree(c Conn) {
	l.mu.Lock()
	l.head++
	l.mu.Unlock()
	_ = c.SendPreparedBatch(1)
}
