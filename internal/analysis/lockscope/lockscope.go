// Package lockscope guards the broadcast plane's lock discipline (DESIGN.md
// §8): publish latency stays flat only because nothing blocking ever runs
// inside the critical sections of server.bcastLog.mu and NetServer.mu — no
// channel operations, no transport sends, no JSON encoding of whole
// replicas, no Logf calls that may block on I/O — and because locks are only
// ever acquired in the NetServer.mu → bcastLog.mu order (the reverse order
// deadlocks against the publish path).
//
// Since PR 8 the analysis is interprocedural: it consumes the module call
// graph (internal/analysis/callgraph), whose scanner tracks
// Lock/RLock/Unlock/RUnlock and defer-Unlock through each body with
// branch-cloned lock state and whose fixed point derives, per function,
// whether it may block and which locks it transitively acquires. "Blocking
// under lock" and "self-reentry" are therefore found through any depth of
// module calls; the hand-maintained model that previously listed the lock
// footprint of every broadcast-plane method is gone, replaced by derived
// summaries. What remains hand-written is policy, not mechanics: which
// owners are guarded, which nesting order is sanctioned, and which bodies
// run inside Core's critical section without a literal Lock (delta-listener
// callbacks, the planner's repair paths, the index flush machinery — seeded
// as an implicit Core hold). The blocking leaves (transport I/O on
// Conn-named receivers, time.Sleep, encoding/json, logf) live with the
// scanner in callgraph. sync.Cond.Wait is exempt: it releases the lock while
// parked and is the designed follower wait. Function literals and goroutine
// bodies are skipped — code built under a lock does not run under it.
package lockscope

import (
	"go/ast"
	"go/token"
	"strings"

	"crowdfill/internal/analysis"
	"crowdfill/internal/analysis/callgraph"
)

// guardedOwners are the struct types (by name) whose critical sections must
// stay non-blocking. Other mutexes in the codebase (wsock.Conn.wmu
// serializing frame writers, marketplace ledgers) legitimately cover I/O and
// are tracked only for ordering.
var guardedOwners = map[string]bool{
	"NetServer":  true,
	"bcastLog":   true,
	"Core":       true,
	"Replica":    true,
	"flushQueue": true,
	// The readiness read plane (PR 10): the poller's descriptor-table lock
	// and its dispatch queue follow the same collect-then-push discipline
	// as the flusher pool — critical sections are map/slice operations
	// only, epoll_ctl and handler dispatch happen outside them.
	"Poller":    true,
	"pollQueue": true,
}

// allowedOrder lists the sanctioned nested-acquisition pairs: outer → inner.
// flushQueue.mu appears in no pair on purpose: the flusher pool's work queue
// must never nest with bcastLog.mu in either order (producers collect dirty
// connections under the log lock, release it, then push), so any nesting is
// an ordering violation. lockorder independently checks this global relation
// for cycles, so adding a pair here cannot silently sanction a deadlock.
var allowedOrder = map[[2]string]bool{
	{"NetServer", "bcastLog"}: true,
	// Conn.wmu is the innermost leaf: the per-connection frame-write lock.
	// Nothing under it acquires module locks (its critical sections end at
	// net.Conn writes), so closing a connection while the server lock is
	// held (register's already-closed branch) cannot invert any order.
	{"NetServer", "Conn"}: true,
	// metrics.Recorder.mu is another innermost leaf: the flight recorder's
	// ring lock. Its critical section is a ring write (the log sink is
	// invoked only after release), and nothing under it acquires module
	// locks, so recording an operational event from inside the server's
	// critical section (e.g. the Central Client's overrun note under
	// NetServer.mu) cannot invert any order. These pairs sanction ordering,
	// not blocking — the sink's potential I/O remains subject to the
	// non-blocking-critical-section check. bcastLog.mu is deliberately NOT
	// paired with Recorder: drop notes on the broadcast plane must be made
	// after release (lockorder pins that as a neverNested pair).
	{"NetServer", "Recorder"}: true,
	{"Core", "Recorder"}:      true,
}

// deltaListenerMethods are the model.ProbableDeltaListener callbacks. The
// table index delivers them synchronously while flushing, and on the server
// every flush happens inside Core's critical section (planner repair, key
// stats, estimator queries all run under it) — so listener bodies are
// analyzed as if Core.mu were held, regardless of the receiver type.
var deltaListenerMethods = map[string]bool{
	"ProbableAdded":   true,
	"ProbableRemoved": true,
	"ProbableUpdated": true,
	"IndexReset":      true,
}

// implicitGuards seeds the lock state of methods that only ever run inside a
// Core critical section — the planner's repair paths (both the full-rebuild
// spec and the delta-driven fast path, plus the engine helpers the deltas
// drive) and the table index's flush machinery. Keyed by receiver type name
// then method name, valued by the guarding owner.
var implicitGuards = map[string]map[string]string{
	"Planner": {
		"Repair": "Core", "repairFull": "Core",
		"repairIncremental": "Core", "crossCheckRepair": "Core",
	},
	"TableIndex": {"flush": "Core", "flushKey": "Core"},
	"deltaAdj": {
		"allocSlot": "Core", "insertAdj": "Core", "compact": "Core",
		"candidateTemplates": "Core", "indexTemplate": "Core", "removeTemplate": "Core",
	},
}

// New returns the lockscope analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockscope",
		Doc: "flags blocking operations (channel ops, transport sends, JSON " +
			"encoding, Logf — directly or through any chain of module calls) " +
			"inside bcastLog.mu/NetServer.mu critical sections and enforces " +
			"the NetServer.mu → bcastLog.mu lock ordering via call-graph summaries",
		Run: run,
	}
}

type checker struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, graph: callgraph.Get(pass.Shared)}
	for _, n := range c.graph.PkgNodes(pass.Pkg.Path()) {
		c.checkNode(n)
	}
	return nil
}

func (c *checker) checkNode(n *callgraph.Node) {
	seed := implicitOwner(n.Decl)
	for _, ev := range n.Events {
		held := ev.Held
		if seed != "" {
			held = append([]callgraph.Lock{{Key: "implicit:" + seed, Owner: seed, Name: seed + ".mu"}}, held...)
		}
		switch ev.Kind {
		case callgraph.KBlock:
			if ev.Deferred {
				continue // runs at return time, not under this state
			}
			if guardedHeld(held) {
				c.report(ev.Pos, held, ev.What)
			}
		case callgraph.KAcquire:
			c.checkAcquire(ev.Pos, held, ev.Lock, false)
		case callgraph.KCall:
			if ev.Deferred {
				continue
			}
			c.checkCallEvent(ev, held)
		}
	}
}

// checkCallEvent validates one resolved call site against its callees'
// derived summaries. A call whose callees acquire locks is checked for
// self-reentry and ordering (at most one diagnostic per call site) and, like
// the critical sections it opens, is otherwise trusted; a lock-free callee
// that may block is a blocking operation smuggled into the caller's critical
// section and is reported transitively.
func (c *checker) checkCallEvent(ev callgraph.Event, held []callgraph.Lock) {
	seen := make(map[string]bool)
	acquiresAny := false
	for _, ck := range ev.Callees {
		sum := c.graph.Summary(ck)
		if sum == nil {
			continue
		}
		for _, acq := range callgraph.SortedAcquires(sum) {
			if seen[acq.Lock.Key] {
				continue
			}
			seen[acq.Lock.Key] = true
			acquiresAny = true
			if c.checkAcquire(ev.Pos, held, acq.Lock, true) {
				return
			}
		}
	}
	if acquiresAny || !guardedHeld(held) {
		return
	}
	for _, ck := range ev.Callees {
		sum := c.graph.Summary(ck)
		if sum == nil || !sum.Blocks {
			continue
		}
		what := "call to " + ev.Display + " blocks — " + sum.BlockWhat
		if len(sum.BlockVia) > 0 {
			what += " (via " + strings.Join(sum.BlockVia, " → ") + ")"
		}
		c.report(ev.Pos, held, what)
		return
	}
}

// checkAcquire validates a new acquisition (literal, or derived at a call
// site) against the locks currently held. Reports at most one diagnostic;
// returns whether it reported.
func (c *checker) checkAcquire(pos token.Pos, held []callgraph.Lock, lock callgraph.Lock, isCall bool) bool {
	for _, h := range held {
		if !isCall && lock.Key != "" && h.Key == lock.Key {
			c.pass.Reportf(pos, "acquiring %s while already holding it (self-deadlock)", lock.Name)
			return true
		}
		if isCall && lock.Owner != "" && h.Owner == lock.Owner {
			c.pass.Reportf(pos, "call acquires %s.mu while a %s.mu critical section is open (self-deadlock)", lock.Owner, h.Owner)
			return true
		}
		if isCall && lock.Owner == "" && lock.Key != "" && h.Key == lock.Key {
			c.pass.Reportf(pos, "call acquires %s while a %s critical section is open (self-deadlock)", lock.Name, h.Name)
			return true
		}
		if h.Owner == "" || lock.Owner == "" {
			continue
		}
		if allowedOrder[[2]string{h.Owner, lock.Owner}] {
			continue
		}
		if guardedOwners[h.Owner] || guardedOwners[lock.Owner] {
			c.pass.Reportf(pos, "lock ordering: acquiring %s.mu while holding %s.mu; the sanctioned order is NetServer.mu → bcastLog.mu only", lock.Owner, h.Owner)
			return true
		}
	}
	return false
}

// guardedHeld reports whether any currently-held lock belongs to a guarded
// owner type.
func guardedHeld(held []callgraph.Lock) bool {
	for _, h := range held {
		if guardedOwners[h.Owner] {
			return true
		}
	}
	return false
}

func (c *checker) report(pos token.Pos, held []callgraph.Lock, what string) {
	owner := ""
	for _, h := range held {
		if guardedOwners[h.Owner] {
			owner = h.Owner
		}
	}
	c.pass.Reportf(pos, "%s inside a %s.mu critical section; the broadcast plane requires non-blocking critical sections", what, owner)
}

// implicitOwner returns the owner whose critical section fd's body always
// runs inside ("" for most functions): the delta-listener callbacks and the
// modeled always-under-Core methods.
func implicitOwner(fd *ast.FuncDecl) string {
	recv := recvDeclTypeName(fd)
	if recv == "" {
		return ""
	}
	if deltaListenerMethods[fd.Name.Name] {
		return "Core"
	}
	if m, ok := implicitGuards[recv]; ok {
		return m[fd.Name.Name]
	}
	return ""
}

// recvDeclTypeName returns the declared receiver type name of a method, or
// "" for plain functions.
func recvDeclTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
