// Package lockscope guards the broadcast plane's lock discipline (DESIGN.md
// §8): publish latency stays flat only because nothing blocking ever runs
// inside the critical sections of server.bcastLog.mu and NetServer.mu — no
// channel operations, no transport sends, no JSON encoding of whole
// replicas, no Logf calls that may block on I/O — and because locks are only
// ever acquired in the NetServer.mu → bcastLog.mu order (the reverse order
// deadlocks against the publish path).
//
// The analysis is intraprocedural: it tracks Lock/RLock/Unlock/RUnlock and
// defer-Unlock on sync.Mutex/RWMutex fields through each function body
// (branches analyzed with a copy of the lock state), flags blocking
// operations while a guarded lock is held, and models the lock footprint of
// the broadcast-plane methods themselves (bcastLog.publish acquires
// bcastLog.mu, NetServer.handleAndPublish acquires NetServer.mu, ...) so
// ordering violations show up at call sites, not just at literal mu.Lock()
// lines. Some bodies never see a literal Lock yet always run inside Core's
// critical section — delta-listener callbacks (ProbableAdded and friends,
// delivered during index flushes), the planner's repair paths, and the table
// index's flush machinery — so those start their analysis with an implicit
// Core hold. sync.Cond.Wait is exempt: it releases the lock while parked and
// is the designed follower wait. Function literals are skipped — a closure
// built under a lock does not run under it.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdfill/internal/analysis"
)

// guardedOwners are the struct types (by name) whose critical sections must
// stay non-blocking. Other mutexes in the codebase (wsock.Conn.wmu
// serializing frame writers, marketplace ledgers) legitimately cover I/O and
// are tracked only for ordering.
var guardedOwners = map[string]bool{
	"NetServer":  true,
	"bcastLog":   true,
	"Core":       true,
	"Replica":    true,
	"flushQueue": true,
}

// allowedOrder lists the sanctioned nested-acquisition pairs: outer → inner.
// flushQueue.mu appears in no pair on purpose: the flusher pool's work queue
// must never nest with bcastLog.mu in either order (producers collect dirty
// connections under the log lock, release it, then push), so any nesting is
// an ordering violation.
var allowedOrder = map[[2]string]bool{
	{"NetServer", "bcastLog"}: true,
}

// deltaListenerMethods are the model.ProbableDeltaListener callbacks. The
// table index delivers them synchronously while flushing, and on the server
// every flush happens inside Core's critical section (planner repair, key
// stats, estimator queries all run under it) — so listener bodies are
// analyzed as if Core.mu were held, regardless of the receiver type.
var deltaListenerMethods = map[string]bool{
	"ProbableAdded":   true,
	"ProbableRemoved": true,
	"ProbableUpdated": true,
	"IndexReset":      true,
}

// implicitGuards seeds the lock state of methods that only ever run inside a
// Core critical section — the planner's repair paths (both the full-rebuild
// spec and the delta-driven fast path, plus the engine helpers the deltas
// drive) and the table index's flush machinery. Keyed like acquires by
// receiver type name then method name, valued by the guarding owner.
var implicitGuards = map[string]map[string]string{
	"Planner": {
		"Repair": "Core", "repairFull": "Core",
		"repairIncremental": "Core", "crossCheckRepair": "Core",
	},
	"TableIndex": {"flush": "Core", "flushKey": "Core"},
	"deltaAdj": {
		"allocSlot": "Core", "insertAdj": "Core", "compact": "Core",
		"candidateTemplates": "Core", "indexTemplate": "Core", "removeTemplate": "Core",
	},
}

// acquires models the lock footprint of broadcast-plane methods, keyed by
// receiver type name then method name, valued by the owner type of the
// mutex the method acquires.
var acquires = map[string]map[string]string{
	"bcastLog": {
		"publish": "bcastLog", "newCursor": "bcastLog", "close": "bcastLog",
		"headSeq": "bcastLog",
		// Flusher-pool entry points (register is the sanctioned
		// NetServer.mu → bcastLog.mu nesting; the rest must be called
		// lock-free).
		"register": "bcastLog", "deregister": "bcastLog", "dropConn": "bcastLog",
		"flushOne": "bcastLog", "poolStats": "bcastLog",
		// enqueue touches only the flush queue; modeling it as a
		// flushQueue acquisition flags enqueue-under-log-lock call sites.
		"enqueue": "flushQueue",
	},
	"logCursor": {
		"nextBatch": "bcastLog", "next": "bcastLog", "tryNext": "bcastLog",
		"markLagged": "bcastLog", "stop": "bcastLog", "lag": "bcastLog",
		"drainBatch": "bcastLog",
	},
	"flushQueue": {
		"push": "flushQueue", "pop": "flushQueue", "close": "flushQueue",
	},
	"NetServer": {
		"handleAndPublish": "NetServer", "Done": "NetServer", "WithCore": "NetServer",
	},
}

// blockingConnMethods are methods that perform (or wait on) I/O when called
// on a connection-like receiver (a type named Conn).
var blockingConnMethods = map[string]bool{
	"Send": true, "SendPrepared": true, "SendPreparedBatch": true,
	"Recv": true, "RecvBatch": true,
	"Read": true, "Write": true, "ReadText": true, "WriteText": true,
	"ReadTextLease": true, "WritePrepared": true, "WritePreparedBatch": true,
}

// New returns the lockscope analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockscope",
		Doc: "flags blocking operations (channel ops, transport sends, JSON " +
			"encoding, Logf) inside bcastLog.mu/NetServer.mu critical sections " +
			"and enforces the NetServer.mu → bcastLog.mu lock ordering",
		Run: run,
	}
}

// held is one live lock acquisition.
type held struct {
	obj   types.Object // the mutex field/var, when resolvable
	owner string       // name of the struct type owning the mutex ("" for locals)
	pos   token.Pos
}

type checker struct {
	pass *analysis.Pass
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.walkStmts(fd.Body.List, initialState(fd))
			}
		}
	}
	return nil
}

// initialState builds the lock state a function body starts with: empty for
// most, an implicit Core hold for delta-listener callbacks and the modeled
// always-under-Core methods.
func initialState(fd *ast.FuncDecl) *[]held {
	state := &[]held{}
	recv := recvDeclTypeName(fd)
	if recv == "" {
		return state
	}
	owner := ""
	if deltaListenerMethods[fd.Name.Name] {
		owner = "Core"
	} else if m, ok := implicitGuards[recv]; ok {
		owner = m[fd.Name.Name]
	}
	if owner != "" {
		*state = append(*state, held{owner: owner, pos: fd.Pos()})
	}
	return state
}

// recvDeclTypeName returns the declared receiver type name of a method, or
// "" for plain functions.
func recvDeclTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

func (c *checker) walkStmts(stmts []ast.Stmt, state *[]held) {
	for _, s := range stmts {
		c.walkStmt(s, state)
	}
}

// clone copies the lock state for a branch: acquisitions and releases inside
// a conditional do not propagate to the statements after it (branches in
// this codebase that unlock early always return).
func clone(state *[]held) *[]held {
	cp := append([]held(nil), *state...)
	return &cp
}

func (c *checker) walkStmt(s ast.Stmt, state *[]held) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && c.mutexOp(call, state) {
			return
		}
		c.scan(s, state)
	case *ast.DeferStmt:
		if c.isUnlockCall(s.Call) {
			return // defer mu.Unlock(): held until return; nothing to pop
		}
		// Other deferred calls run at return time; out of scope.
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks.
	case *ast.BlockStmt:
		c.walkStmts(s.List, state)
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, state)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		c.scan(s.Cond, state)
		c.walkStmts(s.Body.List, clone(state))
		if s.Else != nil {
			c.walkStmt(s.Else, clone(state))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			c.scan(s.Cond, state)
		}
		body := clone(state)
		c.walkStmts(s.Body.List, body)
		if s.Post != nil {
			c.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan && c.guardedHeld(state) {
				c.report(s.Pos(), state, "ranging over a channel (blocking receive)")
			}
		}
		c.scan(s.X, state)
		c.walkStmts(s.Body.List, clone(state))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			c.scan(s.Tag, state)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, clone(state))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cl.Body, clone(state))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && c.guardedHeld(state) {
			c.report(s.Pos(), state, "select without a default clause (blocking)")
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cl.Body, clone(state))
			}
		}
	case *ast.SendStmt:
		if c.guardedHeld(state) {
			c.report(s.Pos(), state, "channel send")
		}
	default:
		c.scan(s, state)
	}
}

// scan inspects an expression-bearing node while locks may be held: it flags
// blocking operations and models nested lock acquisitions at call sites.
// Function literals are not entered.
func (c *checker) scan(node ast.Node, state *[]held) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && c.guardedHeld(state) {
				c.report(n.Pos(), state, "channel receive")
			}
		case *ast.CallExpr:
			c.checkCall(n, state)
		}
		return true
	})
}

func (c *checker) checkCall(call *ast.CallExpr, state *[]held) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Calls through plain identifiers: flag logf-style function values.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && isLogfName(id.Name) && c.guardedHeld(state) {
			c.report(call.Pos(), state, "call through "+id.Name+" (may block on log I/O)")
		}
		return
	}
	name := sel.Sel.Name

	// Package-level calls: time.Sleep, encoding/json.
	if pkg := pkgPath(c.pass, sel); pkg != "" {
		if !c.guardedHeld(state) {
			return
		}
		switch {
		case pkg == "time" && name == "Sleep":
			c.report(call.Pos(), state, "time.Sleep")
		case pkg == "encoding/json" && (name == "Marshal" || name == "MarshalIndent" || name == "Unmarshal"):
			c.report(call.Pos(), state, "json."+name+" (encode/decode off-lock and publish the bytes)")
		}
		return
	}

	recv := receiverTypeName(c.pass, sel.X)

	// sync.Cond is the sanctioned in-lock wait/wake mechanism.
	if recv == "Cond" && (name == "Wait" || name == "Broadcast" || name == "Signal") {
		return
	}

	// Modeled broadcast-plane methods: treat the call as acquiring the
	// owner's mutex for ordering purposes.
	if m, ok := acquires[recv]; ok {
		if owner, ok := m[name]; ok {
			c.checkAcquire(call.Pos(), state, nil, owner)
			return
		}
	}

	if !c.guardedHeld(state) {
		return
	}
	switch {
	case recv == "Conn" && blockingConnMethods[name]:
		c.report(call.Pos(), state, "transport "+name+" (blocks until the peer drains)")
	case recv == "WaitGroup" && name == "Wait":
		c.report(call.Pos(), state, "sync.WaitGroup.Wait")
	case isLogfName(name):
		c.report(call.Pos(), state, "call through "+name+" (may block on log I/O)")
	}
}

// mutexOp handles a statement-level mutex call, updating state. Reports
// ordering violations on acquisition. Returns true when the call was a
// Lock/RLock/Unlock/RUnlock on a sync.Mutex or RWMutex.
func (c *checker) mutexOp(call *ast.CallExpr, state *[]held) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return false
	}
	recvType, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(recvType.Type) {
		return false
	}
	obj, owner := mutexIdentity(c.pass, sel.X)
	switch name {
	case "Lock", "RLock":
		c.checkAcquire(call.Pos(), state, obj, owner)
		*state = append(*state, held{obj: obj, owner: owner, pos: call.Pos()})
	case "Unlock", "RUnlock":
		for i := len(*state) - 1; i >= 0; i-- {
			h := (*state)[i]
			if (obj != nil && h.obj == obj) || (obj == nil && h.owner == owner) {
				*state = append((*state)[:i], (*state)[i+1:]...)
				break
			}
		}
	}
	return true
}

// checkAcquire validates a new acquisition (explicit or modeled) against the
// locks currently held.
func (c *checker) checkAcquire(pos token.Pos, state *[]held, obj types.Object, owner string) {
	for _, h := range *state {
		if obj != nil && h.obj != nil && h.obj == obj {
			name := obj.Name()
			if owner != "" {
				name = owner + "." + name
			}
			c.pass.Reportf(pos, "acquiring %s while already holding it (self-deadlock)", name)
			return
		}
		if h.owner == "" || owner == "" {
			continue
		}
		if h.owner == owner && obj == nil {
			c.pass.Reportf(pos, "call acquires %s.mu while a %s.mu critical section is open (self-deadlock)", owner, h.owner)
			return
		}
		if allowedOrder[[2]string{h.owner, owner}] {
			continue
		}
		if guardedOwners[h.owner] || guardedOwners[owner] {
			c.pass.Reportf(pos, "lock ordering: acquiring %s.mu while holding %s.mu; the sanctioned order is NetServer.mu → bcastLog.mu only", owner, h.owner)
			return
		}
	}
}

// isUnlockCall reports whether call is <mutex>.Unlock or RUnlock.
func (c *checker) isUnlockCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	return ok && isMutexType(tv.Type)
}

// guardedHeld reports whether any currently-held lock belongs to a guarded
// owner type.
func (c *checker) guardedHeld(state *[]held) bool {
	for _, h := range *state {
		if guardedOwners[h.owner] {
			return true
		}
	}
	return false
}

func (c *checker) report(pos token.Pos, state *[]held, what string) {
	owner := ""
	for _, h := range *state {
		if guardedOwners[h.owner] {
			owner = h.owner
		}
	}
	c.pass.Reportf(pos, "%s inside a %s.mu critical section; the broadcast plane requires non-blocking critical sections", what, owner)
}

// mutexIdentity resolves the mutex expression (s.mu, l.mu, mu) to its object
// and the name of the struct type that owns it.
func mutexIdentity(pass *analysis.Pass, expr ast.Expr) (types.Object, string) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		var obj types.Object
		if s, ok := pass.TypesInfo.Selections[e]; ok && s.Kind() == types.FieldVal {
			obj = s.Obj()
		}
		owner := receiverTypeName(pass, e.X)
		return obj, owner
	case *ast.Ident:
		return pass.TypesInfo.Uses[e], ""
	}
	return nil, ""
}

// receiverTypeName returns the named type of expr after stripping pointers.
func receiverTypeName(pass *analysis.Pass, expr ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a pointer
// to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func isLogfName(name string) bool { return name == "logf" || name == "Logf" }

// pkgPath returns the import path when sel is a package-qualified reference
// (time.Sleep), or "".
func pkgPath(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
