package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/build/constraint"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, the unit an analyzer runs
// over.
type Package struct {
	// Path is the import path ("crowdfill/internal/server"), or a synthetic
	// path for testdata packages.
	Path string
	// Dir is the directory the files came from.
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of the enclosing module without
// cmd/go: module-internal import paths resolve to directories under the
// module root, and everything else (the standard library) type-checks from
// GOROOT source via the stdlib source importer. Loaded packages are cached,
// so a whole-module run type-checks each package once.
type Loader struct {
	Fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	cache   map[string]*Package // import path -> package
	loading map[string]bool     // cycle detection
}

// NewLoader builds a loader for the module containing dir (any directory
// inside the repo).
func NewLoader(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The fallback source importer type-checks dependencies from GOROOT
	// source; with cgo enabled it would shell out to the cgo tool for
	// packages like net. Pure-Go variants exist for everything this module
	// uses, so force them.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modPath: path,
		modRoot: root,
		std:     newStdImporter(fset, root),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModRoot returns the module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

// ModPath returns the module import path.
func (l *Loader) ModPath() string { return l.modPath }

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, path string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer: module-internal paths load from the
// module tree, everything else falls through to the stdlib source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		pkg, err := l.LoadImportPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// LoadImportPath loads a module-internal package by import path.
func (l *Loader) LoadImportPath(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	return l.load(dir, path, false)
}

// LoadImportPathTests loads a module-internal package with its in-package
// _test.go files type-checked alongside the regular sources, so test-only
// code (bench harnesses, concurrency tests) is analyzed too. External test
// packages (package foo_test) are out of scope: they form a separate
// package, and this module keeps its tests in-package. When the directory
// has no in-package test files the plain variant is returned, so callers can
// use this unconditionally. Dependents importing the package still see the
// plain variant — the test-augmented type-check is a leaf, never imported.
func (l *Loader) LoadImportPathTests(path string) (*Package, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
	dir := filepath.Join(l.modRoot, filepath.FromSlash(rel))
	return l.load(dir, path, true)
}

// LoadDir loads the package in dir (which may live outside the module's
// import graph, e.g. an analysistest testdata package). importPath is the
// synthetic path to give it.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	return l.load(dir, importPath, false)
}

func (l *Loader) load(dir, path string, withTests bool) (*Package, error) {
	// Plain and test-augmented loads of the same path are distinct cache
	// entries: the augmented variant re-type-checks every file, and its
	// objects must not leak into dependents, which always import plain.
	key := path
	if withTests {
		key += "\x00tests"
	}
	if p, ok := l.cache[key]; ok {
		return p, nil
	}
	if l.loading[key] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[key] = true
	defer delete(l.loading, key)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var names, testNames []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") {
			if withTests {
				testNames = append(testNames, name)
			}
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	sort.Strings(testNames)
	var files []*ast.File
	for _, name := range names {
		if !fileNameIncluded(name) {
			continue
		}
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, perr)
		}
		if !fileConstraintIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	pkgName := files[0].Name.Name
	nTests := 0
	for _, name := range testNames {
		if !fileNameIncluded(name) {
			continue
		}
		f, perr := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, perr)
		}
		if f.Name.Name != pkgName {
			continue // external test package (foo_test): separate package, skipped
		}
		if !fileConstraintIncluded(f) {
			continue
		}
		files = append(files, f)
		nTests++
	}
	if withTests && nTests == 0 {
		p, err := l.load(dir, path, false)
		if err == nil {
			l.cache[key] = p
		}
		return p, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, TypesInfo: info}
	l.cache[key] = p
	return p, nil
}

// unixGOOS mirrors the GOOS set the "unix" build tag matches; the analyzers
// run on the host platform, so constraint evaluation follows runtime.GOOS.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// buildTagMatches evaluates one build tag against the host platform: GOOS,
// GOARCH, the "unix" umbrella tag, and go1.* release tags (always satisfied
// — the toolchain running the analyzers is at least as new as anything the
// module requires). Unknown tags are unsatisfied.
func buildTagMatches(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixGOOS[runtime.GOOS]
	case strings.HasPrefix(tag, "go1"):
		return true
	}
	return false
}

// fileNameIncluded applies filename-based platform constraints (_GOOS.go /
// _GOARCH.go suffixes), so the loader sees the same file set cmd/go builds:
// platform-split files would otherwise collide as duplicate declarations.
func fileNameIncluded(name string) bool {
	base := strings.TrimSuffix(strings.TrimSuffix(name, ".go"), "_test")
	parts := strings.Split(base, "_")
	// Per cmd/go, a leading segment is never a constraint ("linux.go" is
	// unconstrained); check the last one or two underscore segments.
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownGOARCH[last] {
			if len(parts) >= 3 && knownGOOS[parts[len(parts)-2]] {
				return parts[len(parts)-2] == runtime.GOOS && last == runtime.GOARCH
			}
			return last == runtime.GOARCH
		}
		if knownGOOS[last] {
			return last == runtime.GOOS
		}
	}
	return true
}

var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mips64": true, "mips64le": true, "mipsle": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true,
	"wasm": true,
}

// fileConstraintIncluded evaluates the file's //go:build line (if any)
// against the host platform. Files without one are always included.
func fileConstraintIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed line: let the real build complain
			}
			return expr.Eval(buildTagMatches)
		}
	}
	return true
}

// ModulePackages walks the module tree and returns the import paths of every
// buildable package, skipping testdata, hidden and vendor directories. The
// result is sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo := false
		entries, rerr := os.ReadDir(p)
		if rerr != nil {
			return rerr
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, rerr := filepath.Rel(l.modRoot, p)
		if rerr != nil {
			return rerr
		}
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
