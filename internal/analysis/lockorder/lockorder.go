// Package lockorder detects lock-order deadlocks module-wide: it assembles
// the global lock-acquisition-order graph from the call graph's summaries
// (an edge A → B for every site that acquires B — directly or through any
// chain of calls — while holding A) and reports every cycle in that
// relation. Two threads traversing a cycle's edges in different positions
// can each hold one lock and wait for the other forever; an acyclic global
// order makes that impossible, whatever the interleaving.
//
// On top of cycle detection, neverNested pins PR 6's collect-then-push
// discipline as a checked invariant: bcastLog.mu and flushQueue.mu must not
// nest in either direction — producers collect dirty connections under the
// log lock, release it, then push to the queue; flushers claim work under
// the queue lock and drain the log only after releasing it. A nesting in
// only one direction is not yet a cycle, so the cycle check alone would
// accept the first half of a future deadlock; the pair check rejects it
// outright.
package lockorder

import (
	"fmt"
	"go/token"
	"sort"
	"strings"

	"crowdfill/internal/analysis"
	"crowdfill/internal/analysis/callgraph"
)

// neverNested lists owner pairs that must not nest in either direction.
var neverNested = [][2]string{
	{"bcastLog", "flushQueue"},
	// The flight recorder's ring lock must not nest with the broadcast
	// log's either way: drop/evict notes are recorded only after bcastLog.mu
	// is released (the single-noter teardown discipline), and the recorder
	// never calls back into the serving plane. Pinned here so a future
	// "just record it under the lock" shortcut fails the build instead of
	// putting the recorder's sink I/O on the publish path.
	{"bcastLog", "Recorder"},
	// The readiness poller mirrors the flusher pool's discipline: the
	// waiter resolves ready tokens under Poller.mu, releases it, then
	// pushes to the dispatch queue; workers claim under the queue lock and
	// run handlers after releasing it. Pinning the pair keeps epoll-side
	// bookkeeping and dispatch parking from ever nesting.
	{"Poller", "pollQueue"},
}

// New returns the lockorder analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "lockorder",
		Doc: "assembles the global lock-acquisition-order graph from call-graph " +
			"summaries and reports cycles (potential deadlocks) and forbidden " +
			"nestings (bcastLog.mu vs flushQueue.mu, the collect-then-push rule)",
		Run: run,
	}
}

// rec is one computed finding with the package that owns its position.
type rec struct {
	pkgPath string
	diag    analysis.Diagnostic
}

func run(pass *analysis.Pass) error {
	recs := pass.Shared.Memo("lockorder.findings", func() any {
		return compute(pass.Shared)
	}).([]rec)
	for _, r := range recs {
		if r.pkgPath == pass.Pkg.Path() {
			pass.Report(r.diag)
		}
	}
	return nil
}

// compute runs once per lint invocation over the whole module's order graph.
func compute(shared *analysis.Shared) []rec {
	g := callgraph.Get(shared)
	fset := token.NewFileSet()
	if len(shared.Packages) > 0 {
		fset = shared.Packages[0].Fset
	}
	var recs []rec

	// Forbidden pairs: any edge between the named owners, either direction.
	for _, e := range g.OrderEdges {
		for _, p := range neverNested {
			if (e.From.Owner == p[0] && e.To.Owner == p[1]) ||
				(e.From.Owner == p[1] && e.To.Owner == p[0]) {
				msg := fmt.Sprintf(
					"forbidden nesting: %s acquired while holding %s in %s%s; %s.mu and %s.mu must never nest (collect under the log lock, release, then push)",
					e.To.Name, e.From.Name, e.FnDisplay, viaSuffix(e.Via), p[0], p[1])
				recs = append(recs, rec{pkgPath: e.PkgPath, diag: analysis.Diagnostic{Pos: e.Pos, Message: msg}})
			}
		}
	}

	// Cycles: strongly connected components of the order graph with more
	// than one lock. One finding per component, anchored at its first
	// witness edge.
	adj := make(map[string][]callgraph.OrderEdge)
	for _, e := range g.OrderEdges {
		adj[e.From.Key] = append(adj[e.From.Key], e)
	}
	for _, comp := range sccs(adj) {
		if len(comp) < 2 {
			continue
		}
		recs = append(recs, cycleFinding(fset, adj, comp))
	}
	return recs
}

func viaSuffix(via []string) string {
	if len(via) == 0 {
		return ""
	}
	return " (via " + strings.Join(via, " → ") + ")"
}

// cycleFinding walks one deterministic cycle inside a strongly connected
// component and formats it with per-edge witnesses.
func cycleFinding(fset *token.FileSet, adj map[string][]callgraph.OrderEdge, comp []string) rec {
	in := make(map[string]bool, len(comp))
	for _, k := range comp {
		in[k] = true
	}
	sort.Strings(comp)

	// Greedy smallest-successor walk from the smallest lock: inside an SCC
	// every step stays walkable, so the path must revisit a node; the
	// segment from the first visit is the reported cycle.
	next := func(k string) (callgraph.OrderEdge, bool) {
		var best callgraph.OrderEdge
		found := false
		for _, e := range adj[k] {
			if !in[e.To.Key] {
				continue
			}
			if !found || e.To.Key < best.To.Key {
				best, found = e, true
			}
		}
		return best, found
	}
	pathIdx := map[string]int{comp[0]: 0}
	var edges []callgraph.OrderEdge
	cur := comp[0]
	for {
		e, ok := next(cur)
		if !ok {
			break // unreachable for a true SCC; bail defensively
		}
		edges = append(edges, e)
		if i, seen := pathIdx[e.To.Key]; seen {
			edges = edges[i:]
			break
		}
		pathIdx[e.To.Key] = len(edges)
		cur = e.To.Key
	}
	if len(edges) == 0 {
		return rec{diag: analysis.Diagnostic{Message: "lock-order cycle among " + strings.Join(comp, ", ")}}
	}

	var names, wits []string
	for _, e := range edges {
		names = append(names, e.From.Name)
		pos := fset.Position(e.Pos)
		wits = append(wits, fmt.Sprintf("%s → %s in %s%s (%s:%d)",
			e.From.Name, e.To.Name, e.FnDisplay, viaSuffix(e.Via), pos.Filename, pos.Line))
	}
	names = append(names, edges[0].From.Name)
	msg := fmt.Sprintf("lock-order cycle: %s [%s]",
		strings.Join(names, " → "), strings.Join(wits, "; "))
	first := edges[0]
	return rec{pkgPath: first.PkgPath, diag: analysis.Diagnostic{Pos: first.Pos, Message: msg}}
}

// sccs returns the strongly connected components of the order graph
// (Tarjan, iterative over sorted keys for determinism).
func sccs(adj map[string][]callgraph.OrderEdge) [][]string {
	keys := make([]string, 0, len(adj))
	seenKey := make(map[string]bool)
	addKey := func(k string) {
		if !seenKey[k] {
			seenKey[k] = true
			keys = append(keys, k)
		}
	}
	for k, edges := range adj {
		addKey(k)
		for _, e := range edges {
			addKey(e.To.Key)
		}
	}
	sort.Strings(keys)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	var comps [][]string
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.To.Key
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var comp []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				comp = append(comp, w)
				if w == v {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for _, k := range keys {
		if _, ok := index[k]; !ok {
			strongconnect(k)
		}
	}
	return comps
}
