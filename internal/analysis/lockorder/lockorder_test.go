package lockorder_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"crowdfill/internal/analysis/analysistest"
	"crowdfill/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	_, file, _, _ := runtime.Caller(0)
	testdata := filepath.Join(filepath.Dir(file), "testdata")
	analysistest.Run(t, testdata, lockorder.New(), "lo")
}
