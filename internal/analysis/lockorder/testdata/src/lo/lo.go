// Package lo exercises the lockorder analyzer: the global
// lock-acquisition-order graph must be acyclic, and bcastLog.mu must never
// nest with flushQueue.mu in either direction (the collect-then-push rule).
package lo

import "sync"

// alpha → beta → gamma → alpha is a seeded three-lock ordering cycle: no two
// of the nestings is wrong by itself, but three threads at the three sites
// deadlock. The finding is anchored at the first witness edge (alpha → beta).
type alpha struct{ mu sync.Mutex }
type beta struct{ mu sync.Mutex }
type gamma struct{ mu sync.Mutex }

func (a *alpha) thenBeta(b *beta) {
	a.mu.Lock()
	b.mu.Lock() // want `lock-order cycle: alpha.mu → beta.mu → gamma.mu → alpha.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func (b *beta) thenGamma(g *gamma) {
	b.mu.Lock()
	g.mu.Lock()
	g.mu.Unlock()
	b.mu.Unlock()
}

// lockUnlock lets the cycle's closing edge be observed transitively: the
// acquisition of alpha.mu reaches gamma's critical section through a call.
func (a *alpha) lockUnlock() {
	a.mu.Lock()
	a.mu.Unlock()
}

func (g *gamma) thenAlpha(a *alpha) {
	g.mu.Lock()
	a.lockUnlock()
	g.mu.Unlock()
}

// bcastLog and flushQueue mirror the broadcast plane's pair: nesting them is
// forbidden in either direction even before a reverse edge closes a cycle.
type bcastLog struct {
	mu   sync.Mutex
	head uint64
}

type flushQueue struct {
	mu sync.Mutex
	q  []int
}

func (q *flushQueue) push(v int) {
	q.mu.Lock()
	q.q = append(q.q, v)
	q.mu.Unlock()
}

// pushUnderLogLock enqueues while still inside the log's critical section:
// the forbidden nesting, observed through push's derived summary.
func (l *bcastLog) pushUnderLogLock(q *flushQueue) {
	l.mu.Lock()
	q.push(1) // want `forbidden nesting: flushQueue.mu acquired while holding bcastLog.mu`
	l.mu.Unlock()
}

// collectThenPush is the sanctioned discipline: gather under the log lock,
// release, then push — no edge, no finding.
func (l *bcastLog) collectThenPush(q *flushQueue, dirty []int) {
	var wake []int
	l.mu.Lock()
	wake = append(wake, dirty...)
	l.mu.Unlock()
	for _, v := range wake {
		q.push(v)
	}
}

// deferredPush runs at return time, after the explicit unlock: deferred
// calls are not order edges.
func (l *bcastLog) deferredPush(q *flushQueue) {
	l.mu.Lock()
	defer q.push(1)
	l.mu.Unlock()
}

// goPush hands the work to a new goroutine that does not hold the log lock.
func (l *bcastLog) goPush(q *flushQueue) {
	l.mu.Lock()
	go q.push(1)
	l.mu.Unlock()
}
