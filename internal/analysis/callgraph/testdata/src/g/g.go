// Package g exercises the call-graph builder directly: per-function
// summaries (blocking with via chains, transitive lock acquisition,
// may-allocate), hotpath annotation, interface resolution to module
// implementers, and lock-order edge assembly.
package g

import "sync"

type logT struct {
	mu   sync.Mutex
	head uint64
}

type srvT struct {
	mu  sync.Mutex
	log *logT
	ch  chan int
}

func (l *logT) acquireLeaf() {
	l.mu.Lock()
	l.head++
	l.mu.Unlock()
}

func (l *logT) wrap() { l.acquireLeaf() }

func (s *srvT) blockLeaf() { s.ch <- 1 }

func (s *srvT) blockWrap() { s.blockLeaf() }

//lint:hotpath
func hotRoot(dst []byte) []byte { return grow(dst) }

// grow is the amortized append shape: not an allocation.
func grow(dst []byte) []byte { return append(dst, 0) }

// fresh builds a new slice: allocates.
func fresh(xs []int) []int {
	out := []int{}
	out = append(out, xs...)
	return out
}

type pinger interface{ Ping() }

type impl struct{}

func (impl) Ping() {}

func callIface(v pinger) { v.Ping() }

// orderSite nests logT.mu under srvT.mu through two calls: one order edge
// with a via chain.
func (s *srvT) orderSite() {
	s.mu.Lock()
	s.log.wrap()
	s.mu.Unlock()
}
