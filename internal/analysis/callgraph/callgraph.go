// Package callgraph builds a module-wide call graph with per-function
// summaries, the interprocedural substrate under the lockscope, lockorder
// and hotalloc analyzers (DESIGN.md §13).
//
// The graph covers every function declaration in the packages of one
// analysis run (analysis.Shared). Call edges are static: direct calls and
// method calls resolve to their declarations; calls through interface
// methods resolve to every module type implementing the interface (the
// repo's interface surface — transport.Conn, model.ProbableDeltaListener —
// is small, so the over-approximation is tight); calls through function
// values are recorded as dynamic and never resolved. Goroutine launches and
// function literals are deliberately not edges: code spawned with `go` does
// not run under the caller's locks, and a closure built somewhere does not
// run there (both mirrors of lockscope's long-standing intraprocedural
// policy).
//
// Each function gets a scanner pass (scan.go) that records events — lock
// acquisitions by qualified mutex identity, blocking leaf operations,
// allocation sites, call sites — each with a snapshot of the locks held at
// that point, computed with lockscope's branch-cloning walker semantics. A
// fixed point over call edges then derives per-function summaries: does the
// function (transitively) block, and which locks does it (transitively)
// acquire. Finally the global lock-acquisition-order graph is assembled
// from held-set × acquire pairs; lockorder consumes it for cycle detection.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"crowdfill/internal/analysis"
)

// Lock identifies one mutex by a string key that is stable across separate
// type-check universes (the plain and test-augmented variants of a package
// re-type-check the same sources into distinct types.Object sets; string
// identity keeps their locks unified).
type Lock struct {
	// Key is "pkgpath:Owner.field" for struct-field mutexes and
	// "var@file:line:col" for local or package-level mutex variables.
	Key string
	// Owner is the name of the struct type owning the mutex ("" otherwise).
	Owner string
	// Name is the display name: "bcastLog.mu" or a bare variable name.
	Name string
}

// Kind discriminates scanner events.
type Kind int

const (
	// KAcquire is a literal mu.Lock()/mu.RLock() on a sync mutex.
	KAcquire Kind = iota
	// KBlock is a blocking leaf: channel ops, blocking select, time.Sleep,
	// WaitGroup.Wait, transport I/O, logf, encoding/json.
	KBlock
	// KCall is a call site with statically resolved candidate callees (or
	// Dynamic when unresolvable).
	KCall
	// KAlloc is an allocation site: composite literal, make/new, fresh-slice
	// append, closure, go statement, string conversion/concat, interface
	// boxing, allocating stdlib call.
	KAlloc
)

// Event is one scanner observation inside a function body.
type Event struct {
	Kind Kind
	Pos  token.Pos
	// Held snapshots the locks held just before the event.
	Held []Lock
	// Lock is the acquired mutex (KAcquire only).
	Lock Lock
	// What describes the event: the blocking operation (KBlock, phrased
	// exactly as lockscope reports it) or what allocates (KAlloc).
	What string
	// Callees holds candidate callee node keys (KCall).
	Callees []string
	// Display names the callee for messages: "flushQueue.push".
	Display string
	// Dynamic marks a call through a function value (unresolvable).
	Dynamic bool
	// Deferred marks a deferred call: it runs at return time, so held-state
	// checks do not apply, but its lock/alloc footprint still belongs to
	// the function's summary.
	Deferred bool
}

// Acq is one (transitively) acquired lock in a summary.
type Acq struct {
	Lock Lock
	// Pos is the witness position inside the summarized function (the
	// literal Lock call, or the call site the acquisition came through).
	Pos token.Pos
	// Via is the call chain below this function ([] for a direct acquire).
	Via []string
}

// Summary is the derived interprocedural footprint of one function.
type Summary struct {
	// Blocks is set when the function may block (transitively).
	Blocks bool
	// BlockWhat is the leaf blocking operation, lockscope-phrased.
	BlockWhat string
	// BlockVia is the call chain from this function down to the leaf's
	// containing function ([] when the leaf is in this function).
	BlockVia []string
	// Acquires maps lock key → acquisition info, transitively.
	Acquires map[string]Acq
	// Allocates is set when the function may allocate (transitively).
	Allocates bool
}

// Node is one function declaration in the graph.
type Node struct {
	// Key is "pkgpath.Recv.Name" for methods, "pkgpath.Name" for functions.
	Key string
	// Display is "Recv.Name" or "Name".
	Display string
	PkgPath string
	Decl    *ast.FuncDecl
	// Hot is set when the declaration's doc comment carries //lint:hotpath.
	Hot    bool
	Events []Event
	Sum    Summary
}

// OrderEdge is one observed lock-acquisition ordering: To was acquired while
// From was held.
type OrderEdge struct {
	From, To Lock
	// Pos is the witness acquisition (or call) site.
	Pos token.Pos
	// PkgPath is the package containing the witness, FnDisplay its function.
	PkgPath   string
	FnDisplay string
	// Via is the call chain when the acquisition is transitive.
	Via []string
}

// Graph is the module-wide call graph for one analysis run.
type Graph struct {
	Nodes map[string]*Node
	// OrderEdges is the deduplicated global lock-order graph, one witness
	// per (From.Key, To.Key) pair, deterministic across runs.
	OrderEdges []OrderEdge

	byPkg      map[string][]*Node
	sortedKeys []string
	namedTypes []*types.Named
	implCache  map[implKey]bool
}

type implKey struct {
	named *types.Named
	iface *types.Interface
	ptr   bool
}

// Get returns the call graph for the run, building it on first use and
// memoizing it in shared.
func Get(shared *analysis.Shared) *Graph {
	return shared.Memo("callgraph", func() any { return build(shared) }).(*Graph)
}

// PkgNodes returns the graph nodes declared in the named package, in source
// order.
func (g *Graph) PkgNodes(pkgPath string) []*Node { return g.byPkg[pkgPath] }

// Summary returns the summary for a node key, or nil for functions outside
// the graph (stdlib, unresolved).
func (g *Graph) Summary(key string) *Summary {
	if n := g.Nodes[key]; n != nil {
		return &n.Sum
	}
	return nil
}

// SortedAcquires returns a summary's acquisitions in deterministic (key)
// order.
func SortedAcquires(sum *Summary) []Acq {
	keys := make([]string, 0, len(sum.Acquires))
	for k := range sum.Acquires {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Acq, 0, len(keys))
	for _, k := range keys {
		out = append(out, sum.Acquires[k])
	}
	return out
}

func build(shared *analysis.Shared) *Graph {
	g := &Graph{
		Nodes:     make(map[string]*Node),
		byPkg:     make(map[string][]*Node),
		implCache: make(map[implKey]bool),
	}
	// Pass 1: register every function declaration and collect the module's
	// named types for interface-call resolution.
	for _, pkg := range shared.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := FuncKey(fn)
				if key == "" || g.Nodes[key] != nil {
					continue
				}
				n := &Node{
					Key:     key,
					Display: displayName(fn),
					PkgPath: pkg.Path,
					Decl:    fd,
					Hot:     hasHotpathDirective(fd),
				}
				g.Nodes[key] = n
				g.byPkg[pkg.Path] = append(g.byPkg[pkg.Path], n)
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				if _, isIface := named.Underlying().(*types.Interface); !isIface {
					g.namedTypes = append(g.namedTypes, named)
				}
			}
		}
	}
	g.sortedKeys = make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		g.sortedKeys = append(g.sortedKeys, k)
	}
	sort.Strings(g.sortedKeys)

	// Pass 2: scan every body into events.
	for _, pkg := range shared.Packages {
		for _, n := range g.byPkg[pkg.Path] {
			sc := &scanner{pkg: pkg, graph: g, node: n}
			sc.scanFunc()
		}
	}

	g.propagate()
	g.buildOrderEdges()
	return g
}

// FuncKey names a function or method by package path, receiver type and
// name — a string so the plain and test-augmented type-check universes of a
// package agree on node identity.
func FuncKey(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		rname := namedName(recv.Type())
		if rname == "" {
			return ""
		}
		return pkg.Path() + "." + rname + "." + fn.Name()
	}
	return pkg.Path() + "." + fn.Name()
}

func displayName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if rname := namedName(sig.Recv().Type()); rname != "" {
			return rname + "." + fn.Name()
		}
	}
	return fn.Name()
}

// namedName strips pointers and reports the named type's name, "" otherwise.
func namedName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

const hotpathDirective = "//lint:hotpath"

func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotpathDirective || strings.HasPrefix(c.Text, hotpathDirective+" ") {
			return true
		}
	}
	return false
}

// implementers returns the node keys of the module methods satisfying an
// interface method call: for every module named type implementing iface, the
// defining declaration of its method named name.
func (g *Graph) implementers(iface *types.Interface, name string) []string {
	var keys []string
	for _, named := range g.namedTypes {
		ptr := types.NewPointer(named)
		if !g.implementsCached(named, iface, false) && !g.implementsCached(named, iface, true) {
			continue
		}
		sel := types.NewMethodSet(ptr).Lookup(nil, name)
		if sel == nil {
			// Method may be package-private to the interface's package.
			if named.Obj().Pkg() != nil {
				sel = types.NewMethodSet(ptr).Lookup(named.Obj().Pkg(), name)
			}
		}
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			if key := FuncKey(fn); key != "" {
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

func (g *Graph) implementsCached(named *types.Named, iface *types.Interface, ptr bool) bool {
	k := implKey{named: named, iface: iface, ptr: ptr}
	if v, ok := g.implCache[k]; ok {
		return v
	}
	var t types.Type = named
	if ptr {
		t = types.NewPointer(named)
	}
	v := types.Implements(t, iface) || implementsByString(t, iface)
	g.implCache[k] = v
	return v
}

// implementsByString is the cross-universe fallback for types.Implements.
// With -tests, a package's test variant re-type-checks its sources into a
// fresh universe while its dependents still import the plain variant, so an
// interface and its implementation can come from different types.Object
// worlds and pointer-identity comparison fails. Signatures printed with
// full package paths are stable across universes, so method-by-method string
// comparison recovers the relation.
func implementsByString(t types.Type, iface *types.Interface) bool {
	if iface.NumMethods() == 0 {
		return false // interface{} matches everything; never a call target here
	}
	ms := types.NewMethodSet(t)
	for i := 0; i < iface.NumMethods(); i++ {
		want := iface.Method(i)
		sel := ms.Lookup(want.Pkg(), want.Name())
		if sel == nil {
			// The implementation may live in another package; exported
			// methods are found with a nil package qualifier.
			sel = ms.Lookup(nil, want.Name())
		}
		if sel == nil {
			return false
		}
		got, ok1 := sel.Obj().Type().(*types.Signature)
		wsig, ok2 := want.Type().(*types.Signature)
		if !ok1 || !ok2 || !sigEqualStable(got, wsig) {
			return false
		}
	}
	return true
}

// sigEqualStable compares two signatures by their parameter and result types
// printed with full package paths (parameter names ignored — declarations
// and interfaces are free to name them differently).
func sigEqualStable(a, b *types.Signature) bool {
	if a.Variadic() != b.Variadic() {
		return false
	}
	return tupleEqualStable(a.Params(), b.Params()) &&
		tupleEqualStable(a.Results(), b.Results())
}

func tupleEqualStable(a, b *types.Tuple) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		if typeStringStable(a.At(i).Type()) != typeStringStable(b.At(i).Type()) {
			return false
		}
	}
	return true
}

// typeStringStable prints a type with full package paths, identical across
// separate type-check universes of the same sources.
func typeStringStable(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Path() })
}

// propagate runs the summary fixed point: direct events seed each node, then
// call edges (excluding goroutine launches and function literals, which are
// never edges) union callee acquisitions and blocking into callers until
// stable. The merge is monotone — acquire keys are only added, the first
// block witness wins — so termination is by lattice height.
func (g *Graph) propagate() {
	for _, key := range g.sortedKeys {
		n := g.Nodes[key]
		n.Sum.Acquires = make(map[string]Acq)
		for _, ev := range n.Events {
			switch ev.Kind {
			case KAcquire:
				if _, ok := n.Sum.Acquires[ev.Lock.Key]; !ok {
					n.Sum.Acquires[ev.Lock.Key] = Acq{Lock: ev.Lock, Pos: ev.Pos}
				}
			case KBlock:
				if !n.Sum.Blocks {
					n.Sum.Blocks = true
					n.Sum.BlockWhat = ev.What
				}
			case KAlloc:
				n.Sum.Allocates = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, key := range g.sortedKeys {
			n := g.Nodes[key]
			for _, ev := range n.Events {
				if ev.Kind != KCall {
					continue
				}
				for _, ck := range ev.Callees {
					c := g.Nodes[ck]
					if c == nil || c == n {
						continue
					}
					for lk, acq := range c.Sum.Acquires {
						if _, ok := n.Sum.Acquires[lk]; ok {
							continue
						}
						via := append([]string{c.Display}, acq.Via...)
						n.Sum.Acquires[lk] = Acq{Lock: acq.Lock, Pos: ev.Pos, Via: via}
						changed = true
					}
					if c.Sum.Blocks && !n.Sum.Blocks {
						n.Sum.Blocks = true
						n.Sum.BlockWhat = c.Sum.BlockWhat
						n.Sum.BlockVia = append([]string{c.Display}, c.Sum.BlockVia...)
						changed = true
					}
					if c.Sum.Allocates && !n.Sum.Allocates {
						n.Sum.Allocates = true
						changed = true
					}
				}
			}
		}
	}
}

// buildOrderEdges assembles the global lock-order graph: a directed edge
// From → To for every acquisition of To observed (directly, or through a
// call's transitive acquire set) while From was held. One witness per pair,
// chosen deterministically (node-key then event order).
func (g *Graph) buildOrderEdges() {
	seen := make(map[[2]string]bool)
	add := func(from, to Lock, pos token.Pos, n *Node, via []string) {
		if from.Key == "" || to.Key == "" || from.Key == to.Key {
			return
		}
		pk := [2]string{from.Key, to.Key}
		if seen[pk] {
			return
		}
		seen[pk] = true
		g.OrderEdges = append(g.OrderEdges, OrderEdge{
			From: from, To: to, Pos: pos,
			PkgPath: n.PkgPath, FnDisplay: n.Display, Via: via,
		})
	}
	for _, key := range g.sortedKeys {
		n := g.Nodes[key]
		for _, ev := range n.Events {
			switch ev.Kind {
			case KAcquire:
				for _, h := range ev.Held {
					add(h, ev.Lock, ev.Pos, n, nil)
				}
			case KCall:
				if ev.Deferred {
					continue
				}
				if len(ev.Held) == 0 {
					continue
				}
				for _, ck := range ev.Callees {
					c := g.Nodes[ck]
					if c == nil {
						continue
					}
					for _, acq := range SortedAcquires(&c.Sum) {
						for _, h := range ev.Held {
							via := append([]string{c.Display}, acq.Via...)
							add(h, acq.Lock, ev.Pos, n, via)
						}
					}
				}
			}
		}
	}
}
