package callgraph_test

import (
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"crowdfill/internal/analysis"
	"crowdfill/internal/analysis/callgraph"
)

// loadG builds the call graph over testdata/src/g.
func loadG(t *testing.T) *callgraph.Graph {
	t.Helper()
	_, file, _, _ := runtime.Caller(0)
	dir := filepath.Join(filepath.Dir(file), "testdata", "src", "g")
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "g")
	if err != nil {
		t.Fatal(err)
	}
	return callgraph.Get(analysis.NewShared([]*analysis.Package{pkg}))
}

func node(t *testing.T, g *callgraph.Graph, key string) *callgraph.Node {
	t.Helper()
	n := g.Nodes[key]
	if n == nil {
		t.Fatalf("node %s missing from graph", key)
	}
	return n
}

func TestBlockingSummaryWithViaChain(t *testing.T) {
	g := loadG(t)
	leaf := node(t, g, "g.srvT.blockLeaf")
	if !leaf.Sum.Blocks || leaf.Sum.BlockWhat != "channel send" {
		t.Errorf("blockLeaf summary = %+v, want Blocks with \"channel send\"", leaf.Sum)
	}
	if len(leaf.Sum.BlockVia) != 0 {
		t.Errorf("blockLeaf BlockVia = %v, want direct (empty)", leaf.Sum.BlockVia)
	}
	wrap := node(t, g, "g.srvT.blockWrap")
	if !wrap.Sum.Blocks || wrap.Sum.BlockWhat != "channel send" {
		t.Errorf("blockWrap summary = %+v, want transitive channel send", wrap.Sum)
	}
	if want := []string{"srvT.blockLeaf"}; !reflect.DeepEqual(wrap.Sum.BlockVia, want) {
		t.Errorf("blockWrap BlockVia = %v, want %v", wrap.Sum.BlockVia, want)
	}
}

func TestTransitiveAcquires(t *testing.T) {
	g := loadG(t)
	leaf := node(t, g, "g.logT.acquireLeaf")
	acq, ok := leaf.Sum.Acquires["g:logT.mu"]
	if !ok {
		t.Fatalf("acquireLeaf does not record g:logT.mu; acquires = %v", leaf.Sum.Acquires)
	}
	if acq.Lock.Owner != "logT" || acq.Lock.Name != "logT.mu" || len(acq.Via) != 0 {
		t.Errorf("acquireLeaf acq = %+v, want direct logT.mu", acq)
	}
	wrap := node(t, g, "g.logT.wrap")
	acq, ok = wrap.Sum.Acquires["g:logT.mu"]
	if !ok {
		t.Fatalf("wrap does not inherit g:logT.mu; acquires = %v", wrap.Sum.Acquires)
	}
	if want := []string{"logT.acquireLeaf"}; !reflect.DeepEqual(acq.Via, want) {
		t.Errorf("wrap acq via = %v, want %v", acq.Via, want)
	}
}

func TestHotAnnotationAndAllocation(t *testing.T) {
	g := loadG(t)
	if !node(t, g, "g.hotRoot").Hot {
		t.Error("hotRoot not marked Hot despite //lint:hotpath doc directive")
	}
	for _, key := range []string{"g.grow", "g.srvT.blockLeaf"} {
		if n := node(t, g, key); n.Hot {
			t.Errorf("%s marked Hot without a directive", key)
		}
	}
	// Amortized self-append is not an allocation; a fresh slice literal is.
	if n := node(t, g, "g.grow"); n.Sum.Allocates {
		t.Errorf("grow (amortized append) marked allocating: %+v", n.Events)
	}
	if n := node(t, g, "g.fresh"); !n.Sum.Allocates {
		t.Error("fresh (slice literal) not marked allocating")
	}
	// hotRoot inherits grow's (clean) footprint.
	if n := node(t, g, "g.hotRoot"); n.Sum.Allocates {
		t.Error("hotRoot marked allocating through amortized grow")
	}
}

func TestInterfaceResolution(t *testing.T) {
	g := loadG(t)
	n := node(t, g, "g.callIface")
	var callees []string
	for _, ev := range n.Events {
		if ev.Kind == callgraph.KCall {
			callees = append(callees, ev.Callees...)
		}
	}
	if want := []string{"g.impl.Ping"}; !reflect.DeepEqual(callees, want) {
		t.Errorf("callIface callees = %v, want %v", callees, want)
	}
}

func TestOrderEdgeWithViaChain(t *testing.T) {
	g := loadG(t)
	for _, e := range g.OrderEdges {
		if e.From.Key == "g:srvT.mu" && e.To.Key == "g:logT.mu" {
			if e.FnDisplay != "srvT.orderSite" {
				t.Errorf("edge witness = %s, want srvT.orderSite", e.FnDisplay)
			}
			if want := []string{"logT.wrap", "logT.acquireLeaf"}; !reflect.DeepEqual(e.Via, want) {
				t.Errorf("edge via = %v, want %v", e.Via, want)
			}
			return
		}
	}
	t.Fatalf("no srvT.mu → logT.mu order edge; edges = %+v", g.OrderEdges)
}
