package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"crowdfill/internal/analysis"
)

// blockingConnMethods are the transport/syscall leaves: methods that perform
// (or wait on) I/O when called on a connection-like receiver (a type named
// Conn — transport.Conn, wsock.Conn and test doubles alike). This is the one
// hand-maintained blocking list left after the summary migration: everything
// above these leaves is derived from the call graph.
var blockingConnMethods = map[string]bool{
	"Send": true, "SendPrepared": true, "SendPreparedBatch": true,
	"Recv": true, "RecvBatch": true,
	"Read": true, "Write": true, "ReadText": true, "WriteText": true,
	"ReadTextLease": true, "WritePrepared": true, "WritePreparedBatch": true,
}

// scanner walks one function body with lockscope's held-lock semantics
// (branch analysis on cloned state, defer-Unlock holds to return, function
// literals and go statements skipped) and records events on its node.
type scanner struct {
	pkg   *analysis.Package
	graph *Graph
	node  *Node
	// amortized marks append calls of the self-growth shape
	// (x = append(x, ...) and return append(dst, ...)): the pooled-buffer
	// idiom whose growth is amortized by the caller-owned backing array.
	amortized map[*ast.CallExpr]bool
}

func (sc *scanner) scanFunc() {
	sc.amortized = make(map[*ast.CallExpr]bool)
	ast.Inspect(sc.node.Decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) == len(s.Rhs) {
				for i, rhs := range s.Rhs {
					if call := appendCall(sc.pkg, rhs); call != nil && len(call.Args) > 0 &&
						types.ExprString(s.Lhs[i]) == types.ExprString(call.Args[0]) {
						sc.amortized[call] = true
					}
				}
			}
		case *ast.ReturnStmt:
			// return append(dst, ...) extends a caller-provided buffer; the
			// caller's own assignment shape decides whether that's amortized.
			for _, r := range s.Results {
				if call := appendCall(sc.pkg, r); call != nil {
					sc.amortized[call] = true
				}
			}
		}
		return true
	})
	state := &[]Lock{}
	sc.walkStmts(sc.node.Decl.Body.List, state)
}

func appendCall(pkg *analysis.Package, e ast.Expr) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := pkg.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return call
}

func (sc *scanner) emit(ev Event, state *[]Lock) {
	ev.Held = append([]Lock(nil), *state...)
	sc.node.Events = append(sc.node.Events, ev)
}

func (sc *scanner) walkStmts(stmts []ast.Stmt, state *[]Lock) {
	for _, s := range stmts {
		sc.walkStmt(s, state)
	}
}

// clone copies the lock state for a branch: acquisitions and releases inside
// a conditional do not propagate to the statements after it (branches in
// this codebase that unlock early always return).
func clone(state *[]Lock) *[]Lock {
	cp := append([]Lock(nil), *state...)
	return &cp
}

func (sc *scanner) walkStmt(s ast.Stmt, state *[]Lock) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && sc.mutexOp(call, state) {
			return
		}
		sc.scan(s, state, false)
	case *ast.DeferStmt:
		if sc.isUnlockCall(s.Call) {
			return // defer mu.Unlock(): held until return; nothing to pop
		}
		// Other deferred calls run at return time: held-state checks do not
		// apply, but the call's footprint belongs to this function.
		sc.scan(s.Call, state, true)
	case *ast.GoStmt:
		// The goroutine does not run under the caller's locks and is not a
		// call edge; the statement itself allocates the new goroutine.
		sc.emit(Event{Kind: KAlloc, Pos: s.Pos(), What: "go statement (new goroutine)"}, state)
	case *ast.BlockStmt:
		sc.walkStmts(s.List, state)
	case *ast.LabeledStmt:
		sc.walkStmt(s.Stmt, state)
	case *ast.IfStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init, state)
		}
		sc.scan(s.Cond, state, false)
		sc.walkStmts(s.Body.List, clone(state))
		if s.Else != nil {
			sc.walkStmt(s.Else, clone(state))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init, state)
		}
		if s.Cond != nil {
			sc.scan(s.Cond, state, false)
		}
		body := clone(state)
		sc.walkStmts(s.Body.List, body)
		if s.Post != nil {
			sc.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		if tv, ok := sc.pkg.TypesInfo.Types[s.X]; ok {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				sc.emit(Event{Kind: KBlock, Pos: s.Pos(), What: "ranging over a channel (blocking receive)"}, state)
			}
		}
		sc.scan(s.X, state, false)
		sc.walkStmts(s.Body.List, clone(state))
	case *ast.SwitchStmt:
		if s.Init != nil {
			sc.walkStmt(s.Init, state)
		}
		if s.Tag != nil {
			sc.scan(s.Tag, state, false)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				sc.walkStmts(cl.Body, clone(state))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				sc.walkStmts(cl.Body, clone(state))
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok && cl.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			sc.emit(Event{Kind: KBlock, Pos: s.Pos(), What: "select without a default clause (blocking)"}, state)
		}
		for _, cc := range s.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				sc.walkStmts(cl.Body, clone(state))
			}
		}
	case *ast.SendStmt:
		sc.emit(Event{Kind: KBlock, Pos: s.Pos(), What: "channel send"}, state)
		sc.scan(s.Chan, state, false)
		sc.scan(s.Value, state, false)
	default:
		sc.scan(s, state, false)
	}
}

// scan inspects an expression-bearing node, recording blocking, call and
// allocation events. Function literals are recorded as one allocation and
// not entered: their bodies do not run here.
func (sc *scanner) scan(node ast.Node, state *[]Lock, deferred bool) {
	if node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sc.emit(Event{Kind: KAlloc, Pos: n.Pos(), What: "closure (function literal)", Deferred: deferred}, state)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sc.emit(Event{Kind: KBlock, Pos: n.Pos(), What: "channel receive", Deferred: deferred}, state)
			}
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					sc.emit(Event{Kind: KAlloc, Pos: n.Pos(), What: "address-taken composite literal", Deferred: deferred}, state)
				}
			}
		case *ast.BinaryExpr:
			sc.checkConcat(n, state, deferred)
		case *ast.CompositeLit:
			sc.checkCompositeLit(n, state, deferred)
		case *ast.CallExpr:
			sc.checkCall(n, state, deferred)
		}
		return true
	})
}

// checkConcat flags non-constant string concatenation (a fresh backing
// array every evaluation).
func (sc *scanner) checkConcat(n *ast.BinaryExpr, state *[]Lock, deferred bool) {
	if n.Op != token.ADD {
		return
	}
	tv, ok := sc.pkg.TypesInfo.Types[n]
	if !ok || tv.Value != nil || tv.Type == nil {
		return
	}
	if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
		sc.emit(Event{Kind: KAlloc, Pos: n.Pos(), What: "string concatenation", Deferred: deferred}, state)
	}
}

// checkCompositeLit flags heap-bound composite literals: address-taken
// struct literals, and slice/map literals (which allocate their backing
// store). A plain struct value literal is copied into place and flagged only
// if something else makes it escape.
func (sc *scanner) checkCompositeLit(n *ast.CompositeLit, state *[]Lock, deferred bool) {
	tv, ok := sc.pkg.TypesInfo.Types[n]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		sc.emit(Event{Kind: KAlloc, Pos: n.Pos(), What: "slice literal", Deferred: deferred}, state)
	case *types.Map:
		sc.emit(Event{Kind: KAlloc, Pos: n.Pos(), What: "map literal", Deferred: deferred}, state)
	}
}

func (sc *scanner) checkCall(call *ast.CallExpr, state *[]Lock, deferred bool) {
	info := sc.pkg.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Type conversions.
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		sc.checkConversion(call, tv.Type, state, deferred)
		return
	}

	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			sc.checkBuiltin(call, obj.Name(), state, deferred)
			return
		case *types.Func:
			sc.boxingArgs(call, state, deferred)
			if obj.Pkg() != nil && sc.isModulePkg(obj.Pkg().Path()) {
				sc.emit(Event{Kind: KCall, Pos: call.Pos(),
					Callees: []string{FuncKey(obj)}, Display: displayName(obj), Deferred: deferred}, state)
			}
			return
		default:
			// Function value (local, parameter, or field shorthand).
			if isLogfName(fun.Name) {
				sc.emit(Event{Kind: KBlock, Pos: call.Pos(),
					What: "call through " + fun.Name + " (may block on log I/O)", Deferred: deferred}, state)
				return
			}
			sc.boxingArgs(call, state, deferred)
			sc.emit(Event{Kind: KCall, Pos: call.Pos(), Dynamic: true, Display: fun.Name, Deferred: deferred}, state)
			return
		}
	case *ast.SelectorExpr:
		sc.checkSelectorCall(call, fun, state, deferred)
		return
	}
	// Immediate calls of function literals and other exotic callees: the
	// literal's alloc event is recorded by scan; the call is out of scope.
}

func (sc *scanner) checkSelectorCall(call *ast.CallExpr, sel *ast.SelectorExpr, state *[]Lock, deferred bool) {
	info := sc.pkg.TypesInfo
	name := sel.Sel.Name

	// Package-qualified references: time.Sleep, encoding/json, fmt, module
	// package-level functions.
	if pkg := pkgPathOf(info, sel); pkg != "" {
		if sc.isModulePkg(pkg) {
			sc.boxingArgs(call, state, deferred)
			if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
				sc.emit(Event{Kind: KCall, Pos: call.Pos(),
					Callees: []string{FuncKey(fn)}, Display: displayName(fn), Deferred: deferred}, state)
			} else {
				sc.emit(Event{Kind: KCall, Pos: call.Pos(), Dynamic: true, Display: name, Deferred: deferred}, state)
			}
			return
		}
		sc.checkStdCall(call, pkg, name, state, deferred)
		return
	}

	recv := receiverTypeName(info, sel.X)

	// sync.Cond is the sanctioned in-lock wait/wake mechanism.
	if recv == "Cond" && (name == "Wait" || name == "Broadcast" || name == "Signal") {
		return
	}
	if recv == "Conn" && blockingConnMethods[name] {
		sc.emit(Event{Kind: KBlock, Pos: call.Pos(),
			What: "transport " + name + " (blocks until the peer drains)", Deferred: deferred}, state)
		return
	}
	if recv == "WaitGroup" && name == "Wait" {
		sc.emit(Event{Kind: KBlock, Pos: call.Pos(), What: "sync.WaitGroup.Wait", Deferred: deferred}, state)
		return
	}
	if isLogfName(name) {
		sc.emit(Event{Kind: KBlock, Pos: call.Pos(),
			What: "call through " + name + " (may block on log I/O)", Deferred: deferred}, state)
		return
	}

	s, ok := info.Selections[sel]
	if !ok {
		return
	}
	switch s.Kind() {
	case types.MethodVal:
		fn, ok := s.Obj().(*types.Func)
		if !ok {
			return
		}
		sc.boxingArgs(call, state, deferred)
		if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
			// Interface dispatch: candidates are every module implementation.
			// Interfaces with no module implementation (stdlib error values
			// and friends) resolve to nothing and follow the stdlib default
			// (assumed non-blocking, allocation-free).
			impls := sc.graph.implementers(iface, name)
			if len(impls) > 0 {
				sc.emit(Event{Kind: KCall, Pos: call.Pos(), Callees: impls,
					Display: receiverTypeName(info, sel.X) + "." + name, Deferred: deferred}, state)
			}
			return
		}
		if fn.Pkg() != nil && sc.isModulePkg(fn.Pkg().Path()) {
			sc.emit(Event{Kind: KCall, Pos: call.Pos(),
				Callees: []string{FuncKey(fn)}, Display: displayName(fn), Deferred: deferred}, state)
			return
		}
		sc.checkStdMethod(call, fn, recv, name, state, deferred)
	case types.FieldVal:
		// Calling a function-typed field: dynamic.
		sc.boxingArgs(call, state, deferred)
		sc.emit(Event{Kind: KCall, Pos: call.Pos(), Dynamic: true, Display: name, Deferred: deferred}, state)
	}
}

func (sc *scanner) checkBuiltin(call *ast.CallExpr, name string, state *[]Lock, deferred bool) {
	switch name {
	case "make":
		sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "make", Deferred: deferred}, state)
	case "new":
		sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "new", Deferred: deferred}, state)
	case "append":
		if !sc.amortized[call] {
			sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "append into a fresh slice", Deferred: deferred}, state)
		}
	}
}

// checkConversion flags conversions that copy into a fresh backing store or
// box into an interface.
func (sc *scanner) checkConversion(call *ast.CallExpr, target types.Type, state *[]Lock, deferred bool) {
	if len(call.Args) != 1 {
		return
	}
	argTV, ok := sc.pkg.TypesInfo.Types[call.Args[0]]
	if !ok || argTV.Type == nil {
		return
	}
	if argTV.Value != nil {
		return // constant conversions are materialized at compile time
	}
	switch tt := target.Underlying().(type) {
	case *types.Interface:
		if boxes(argTV.Type) {
			sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "interface conversion (boxing)", Deferred: deferred}, state)
		}
	case *types.Basic:
		if tt.Info()&types.IsString != 0 {
			if _, isSlice := argTV.Type.Underlying().(*types.Slice); isSlice {
				sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "[]byte→string conversion", Deferred: deferred}, state)
			}
		}
	case *types.Slice:
		if basic, ok := argTV.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
			sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "string→slice conversion", Deferred: deferred}, state)
		}
	}
}

// boxingArgs flags non-constant, non-pointer-shaped arguments passed to
// interface-typed parameters: each such pass heap-allocates the value's box.
func (sc *scanner) boxingArgs(call *ast.CallExpr, state *[]Lock, deferred bool) {
	tv, ok := sc.pkg.TypesInfo.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	np := sig.Params().Len()
	if np == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis.IsValid() {
				if i == np-1 {
					pt = sig.Params().At(np - 1).Type() // x... passes the slice itself
				}
			} else if st, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = st.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		atv, ok := sc.pkg.TypesInfo.Types[arg]
		if !ok || atv.Type == nil || atv.Value != nil || atv.IsNil() {
			continue
		}
		if boxes(atv.Type) {
			sc.emit(Event{Kind: KAlloc, Pos: arg.Pos(), What: "interface boxing of argument", Deferred: deferred}, state)
		}
	}
}

// boxes reports whether converting a value of type t to an interface
// heap-allocates: pointer-shaped values (pointers, maps, channels, funcs,
// unsafe pointers) ride in the interface word; interfaces re-wrap for free.
func boxes(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Map, *types.Chan, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UnsafePointer && b.Kind() != types.Invalid
	}
	return true
}

// mutexOp handles a statement-level mutex call, updating state and emitting
// an acquire event. Returns true when the call was Lock/RLock/Unlock/RUnlock
// on a sync.Mutex or RWMutex.
func (sc *scanner) mutexOp(call *ast.CallExpr, state *[]Lock) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return false
	}
	recvType, ok := sc.pkg.TypesInfo.Types[sel.X]
	if !ok || !isMutexType(recvType.Type) {
		return false
	}
	lk := sc.mutexIdentity(sel.X)
	switch name {
	case "Lock", "RLock":
		sc.emit(Event{Kind: KAcquire, Pos: call.Pos(), Lock: lk}, state)
		*state = append(*state, lk)
	case "Unlock", "RUnlock":
		for i := len(*state) - 1; i >= 0; i-- {
			h := (*state)[i]
			if (lk.Key != "" && h.Key == lk.Key) || (lk.Key == "" && h.Owner == lk.Owner) {
				*state = append((*state)[:i], (*state)[i+1:]...)
				break
			}
		}
	}
	return true
}

// isUnlockCall reports whether call is <mutex>.Unlock or RUnlock.
func (sc *scanner) isUnlockCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Unlock" && sel.Sel.Name != "RUnlock") {
		return false
	}
	tv, ok := sc.pkg.TypesInfo.Types[sel.X]
	return ok && isMutexType(tv.Type)
}

// mutexIdentity resolves a mutex expression (s.mu, l.mu, mu) to a Lock with
// a universe-stable key.
func (sc *scanner) mutexIdentity(expr ast.Expr) Lock {
	info := sc.pkg.TypesInfo
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		owner := receiverTypeName(info, e.X)
		if s, ok := info.Selections[e]; ok && s.Kind() == types.FieldVal {
			obj := s.Obj()
			pkgPath := ""
			if obj.Pkg() != nil {
				pkgPath = obj.Pkg().Path()
			}
			name := obj.Name()
			display := name
			if owner != "" {
				display = owner + "." + name
			}
			return Lock{Key: pkgPath + ":" + owner + "." + name, Owner: owner, Name: display}
		}
		return Lock{Owner: owner}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil {
			pos := sc.pkg.Fset.Position(obj.Pos())
			return Lock{Key: "var@" + pos.String(), Name: obj.Name()}
		}
	}
	return Lock{}
}

// isModulePkg reports whether path was loaded into this run (and therefore
// has graph nodes): exactly the packages whose calls can resolve to edges.
func (sc *scanner) isModulePkg(path string) bool {
	_, ok := sc.graph.byPkg[path]
	return ok
}

// stdAllocFns lists standard-library package-level functions that allocate
// on every call. Unlisted stdlib calls are assumed allocation-free — extend
// this table as hot paths grow new dependencies.
var stdAllocFns = map[string]map[string]bool{
	"fmt": {"*": true},
	"errors": {
		"New": true, "Join": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true,
		"FormatBool": true, "Quote": true, "QuoteToASCII": true, "Unquote": true,
	},
	"strings": {
		"Split": true, "SplitN": true, "SplitAfter": true, "SplitAfterN": true,
		"Fields": true, "FieldsFunc": true, "Join": true, "Repeat": true,
		"Replace": true, "ReplaceAll": true, "ToUpper": true, "ToLower": true,
		"ToTitle": true, "Map": true, "Clone": true,
		"NewReader": true, "NewReplacer": true,
	},
	"bytes": {
		"Split": true, "SplitN": true, "SplitAfter": true, "SplitAfterN": true,
		"Fields": true, "Join": true, "Repeat": true, "Replace": true,
		"ReplaceAll": true, "ToUpper": true, "ToLower": true, "Clone": true,
		"NewReader": true, "NewBuffer": true, "NewBufferString": true,
	},
	"sort": {
		"Slice": true, "SliceStable": true, "SliceIsSorted": true, // reflect.Swapper allocates
	},
	"time": {
		"NewTimer": true, "NewTicker": true, "After": true, "Tick": true,
		"AfterFunc": true, "Parse": true, "ParseDuration": true,
	},
	"slices": {
		"Clone": true, "Collect": true, "Sorted": true, "Concat": true,
		"Insert": true, "AppendSeq": true,
	},
	"maps": {
		"Clone": true, "Collect": true,
	},
	"log":             {"*": true},
	"encoding/json":   {"*": true},
	"encoding/base64": {"*": true},
	"encoding/hex":    {"*": true},
	"regexp":          {"*": true},
	"reflect":         {"*": true},
}

// stdAllocMethods lists allocating methods on stdlib types, by receiver type
// name then method name.
var stdAllocMethods = map[string]map[string]bool{
	"Builder": {"String": true, "Grow": true, "WriteString": true, "WriteByte": true, "Write": true, "WriteRune": true},
	"Buffer":  {"String": true, "Bytes": true},
	"Time":    {"Format": true, "String": true},
	"Regexp":  {"*": true},
}

func stdTableHas(table map[string]map[string]bool, key, name string) bool {
	m, ok := table[key]
	if !ok {
		return false
	}
	return m["*"] || m[name]
}

// checkStdCall models a standard-library package-level call: the few
// blocking ones lockscope has always flagged, plus the allocation table.
func (sc *scanner) checkStdCall(call *ast.CallExpr, pkg, name string, state *[]Lock, deferred bool) {
	switch {
	case pkg == "time" && name == "Sleep":
		sc.emit(Event{Kind: KBlock, Pos: call.Pos(), What: "time.Sleep", Deferred: deferred}, state)
		return
	case pkg == "encoding/json" && (name == "Marshal" || name == "MarshalIndent" || name == "Unmarshal"):
		sc.emit(Event{Kind: KBlock, Pos: call.Pos(),
			What: "json." + name + " (encode/decode off-lock and publish the bytes)", Deferred: deferred}, state)
		sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "allocating call to json." + name, Deferred: deferred}, state)
		return
	}
	sc.boxingArgs(call, state, deferred)
	if stdTableHas(stdAllocFns, pkg, name) {
		base := pkg
		if i := lastSlash(pkg); i >= 0 {
			base = pkg[i+1:]
		}
		sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "allocating call to " + base + "." + name, Deferred: deferred}, state)
	}
}

// checkStdMethod models methods on stdlib receivers via the allocation
// table; everything else defaults to free.
func (sc *scanner) checkStdMethod(call *ast.CallExpr, fn *types.Func, recv, name string, state *[]Lock, deferred bool) {
	if stdTableHas(stdAllocMethods, recv, name) {
		sc.emit(Event{Kind: KAlloc, Pos: call.Pos(), What: "allocating call to " + recv + "." + name, Deferred: deferred}, state)
	}
}

func lastSlash(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '/' {
			return i
		}
	}
	return -1
}

func isLogfName(name string) bool { return name == "logf" || name == "Logf" }

// receiverTypeName returns the named type of expr after stripping pointers.
func receiverTypeName(info *types.Info, expr ast.Expr) string {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (or a pointer
// to one).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// pkgPathOf returns the import path when sel is a package-qualified
// reference (time.Sleep), or "".
func pkgPathOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
