// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the stdlib-only framework.
//
// Layout: <testdata>/src/<pkg>/*.go. A comment of the form
//
//	code() // want "regexp" "another regexp"
//
// asserts that each listed pattern matches the message of a distinct
// diagnostic reported on that line; lines without a want comment must be
// diagnostic-free. The //lint:allow filtering (including stale-directive and
// missing-justification findings) is applied before matching, exactly as
// cmd/crowdfill-lint applies it.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"crowdfill/internal/analysis"
)

// Run analyzes testdata/src/<pkg> for each named package and reports
// mismatches as test errors.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		runOne(t, dir, pkg, a)
	}
}

func runOne(t *testing.T, dir, name string, a *analysis.Analyzer) {
	t.Helper()
	loader, err := analysis.NewLoader(dir)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	pkg, err := loader.LoadDir(dir, name)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	// One Shared per testdata package: interprocedural analyzers see just
	// this package, and directives consumed via Shared.UseAllow (hotalloc's
	// pruned call edges) stay visible to Filter's stale-directive check.
	shared := analysis.NewShared([]*analysis.Package{pkg})
	raw, err := analysis.RunAnalyzer(a, pkg, shared)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if a.Finish != nil {
		a.Finish(func(d analysis.Diagnostic) { raw = append(raw, d) })
	}
	allows := shared.AllowsFor(pkg.Path)
	kept, extras := analysis.Filter(pkg.Fset, allows, a.Name, raw)
	diags := append(kept, extras...)

	wants := collectWants(t, pkg.Fset, pkg.Files)
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := lineKey(pos.Filename, pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, list := range wants {
		for _, w := range list {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.rx)
			}
		}
	}
}

type want struct {
	rx      *regexp.Regexp
	pos     token.Position
	matched bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					key := lineKey(pos.Filename, pos.Line)
					out[key] = append(out[key], &want{rx: rx, pos: pos})
				}
			}
		}
	}
	return out
}

// splitQuoted extracts the double-quoted and backquoted strings from s.
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexAny(s, "\"`")
		if i < 0 {
			return out
		}
		quote := s[i]
		j := i + 1
		for j < len(s) {
			if quote == '"' && s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == quote {
				break
			}
			j++
		}
		if j >= len(s) {
			return out
		}
		out = append(out, s[i:j+1])
		s = s[j+1:]
	}
}

func lineKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
