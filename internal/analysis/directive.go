package analysis

import (
	"go/ast"
	"go/token"
	"os"
	"strconv"
	"strings"
)

// Allow is one parsed //lint:allow directive: an explicit, justified
// suppression of a single analyzer on a single line. A directive at the end
// of a code line covers that line; a directive on its own line covers the
// next line.
type Allow struct {
	Analyzer      string
	Justification string
	Pos           token.Pos
	// File and Line identify the line the directive covers.
	File string
	Line int
	// Used is set when the directive suppressed at least one diagnostic.
	Used bool
}

const allowPrefix = "//lint:allow"

// CollectAllows parses every //lint:allow directive in the files.
func CollectAllows(fset *token.FileSet, files []*ast.File) []*Allow {
	var allows []*Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				a := &Allow{Pos: c.Pos()}
				if len(fields) > 0 {
					a.Analyzer = fields[0]
					just := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
					// A nested "//" starts a comment about the directive
					// (e.g. analysistest want patterns), not justification.
					if i := strings.Index(just, "//"); i >= 0 {
						just = strings.TrimSpace(just[:i])
					}
					a.Justification = just
				}
				pos := fset.Position(c.Pos())
				a.File = pos.Filename
				a.Line = pos.Line
				if onOwnLine(pos) {
					a.Line++ // a standalone directive covers the next line
				}
				allows = append(allows, a)
			}
		}
	}
	return allows
}

// onOwnLine reports whether the directive at pos is the first thing on its
// source line (nothing but whitespace before it), by re-reading the file.
func onOwnLine(pos token.Position) bool {
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return pos.Column == 1
	}
	// Offset of the line start: walk back from the comment offset.
	start := pos.Offset
	for start > 0 && data[start-1] != '\n' {
		start--
	}
	for _, b := range data[start:pos.Offset] {
		if b != ' ' && b != '\t' {
			return false
		}
	}
	return true
}

// Filter applies the allow directives for one analyzer to its diagnostics:
// suppressed findings are dropped (and their directive marked used), and the
// returned extras hold directive-hygiene findings — a stale allow (no
// finding under it) and an allow with no justification are themselves
// reported, so suppressions cannot rot silently. Directives naming other
// analyzers are left for their own Filter calls.
func Filter(fset *token.FileSet, allows []*Allow, analyzer string, diags []Diagnostic) (kept, extras []Diagnostic) {
	mine := make(map[string][]*Allow) // "file:line" -> directives
	for _, a := range allows {
		if a.Analyzer == analyzer {
			mine[lineKey(a.File, a.Line)] = append(mine[lineKey(a.File, a.Line)], a)
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		if list := mine[lineKey(pos.Filename, pos.Line)]; len(list) > 0 {
			for _, a := range list {
				a.Used = true
			}
			continue
		}
		kept = append(kept, d)
	}
	for _, a := range allows {
		if a.Analyzer != analyzer {
			continue
		}
		if !a.Used {
			extras = append(extras, Diagnostic{Pos: a.Pos, Message: "stale //lint:allow " + analyzer + " directive: no " + analyzer + " finding on the covered line"})
			continue
		}
		if a.Justification == "" {
			extras = append(extras, Diagnostic{Pos: a.Pos, Message: "//lint:allow " + analyzer + " needs a justification after the analyzer name"})
		}
	}
	return kept, extras
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}
