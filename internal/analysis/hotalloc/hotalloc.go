// Package hotalloc enforces allocation-freedom on the module's hot paths.
// A function whose doc comment carries //lint:hotpath (the codec append and
// decode paths, the wsock prepared-frame writers, the flusher's drainBatch,
// the planner's incremental Repair, the estimator's delta path) must be
// transitively allocation-free: the analyzer walks the call graph from every
// annotated root and reports each allocation site it can reach — composite
// literals, make/new, non-amortized appends, closures, goroutine launches,
// string conversions, interface boxing, allocating stdlib calls — plus every
// dynamic call, which cannot be proven free.
//
// Two suppression shapes exist, both spelled //lint:allow hotalloc <reason>:
// on an allocation site it excuses that one site (a cold error path, a
// debug-only branch); on a call site it prunes the call edge, excusing the
// whole subtree (a callee that only runs under a debug flag). Pruning
// consumes the directive through the shared allow state, so the
// stale-directive check still fires when the code moves out from under it.
package hotalloc

import (
	"go/token"
	"sort"
	"strings"

	"crowdfill/internal/analysis"
	"crowdfill/internal/analysis/callgraph"
)

// New returns the hotalloc analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "hotalloc",
		Doc: "requires //lint:hotpath-annotated functions to be transitively " +
			"allocation-free (per call-graph summaries), apart from " +
			"//lint:allow hotalloc sites and pruned call edges",
		Run: run,
	}
}

// rec is one computed finding with the package that owns its position.
type rec struct {
	pkgPath string
	diag    analysis.Diagnostic
}

func run(pass *analysis.Pass) error {
	recs := pass.Shared.Memo("hotalloc.findings", func() any {
		return compute(pass.Shared)
	}).([]rec)
	for _, r := range recs {
		if r.pkgPath == pass.Pkg.Path() {
			pass.Report(r.diag)
		}
	}
	return nil
}

// visit records how a node became hot-reachable: the annotated root and the
// call chain (function display names) from the root's first callee down to
// the node itself (empty for the root).
type visit struct {
	root string
	via  []string
}

// compute walks the call graph from every //lint:hotpath root (BFS over call
// edges, deferred calls included — a deferred allocation on the hot path is
// still an allocation) and reports the allocation sites and dynamic calls of
// every reachable function. Call edges whose site carries
// //lint:allow hotalloc are pruned, consuming the directive.
func compute(shared *analysis.Shared) []rec {
	g := callgraph.Get(shared)
	fset := token.NewFileSet()
	if len(shared.Packages) > 0 {
		fset = shared.Packages[0].Fset
	}

	keys := make([]string, 0, len(g.Nodes))
	for k := range g.Nodes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	visited := make(map[string]visit)
	var queue []string
	for _, k := range keys {
		if g.Nodes[k].Hot {
			visited[k] = visit{root: g.Nodes[k].Display}
			queue = append(queue, k)
		}
	}

	var recs []rec
	seen := make(map[string]bool) // dedup (pos|message) across multi-edge reaches
	report := func(n *callgraph.Node, pos token.Pos, msg string) {
		dk := fset.Position(pos).String() + "|" + msg
		if seen[dk] {
			return
		}
		seen[dk] = true
		recs = append(recs, rec{pkgPath: n.PkgPath, diag: analysis.Diagnostic{Pos: pos, Message: msg}})
	}

	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		n := g.Nodes[k]
		vi := visited[k]
		for _, ev := range n.Events {
			if ev.Kind != callgraph.KCall {
				continue
			}
			pos := fset.Position(ev.Pos)
			if shared.UseAllow("hotalloc", pos.Filename, pos.Line) {
				continue // pruned edge: the whole subtree is excused
			}
			if ev.Dynamic {
				report(n, ev.Pos, "hot-path dynamic call through "+ev.Display+
					" cannot be proven allocation-free"+locate(n, vi))
				continue
			}
			for _, ck := range ev.Callees {
				c := g.Nodes[ck]
				if c == nil {
					continue
				}
				if _, ok := visited[ck]; ok {
					continue
				}
				if inTestFile(fset, c) {
					// A test double reached through interface dispatch (the
					// -tests load variant widens the implementer sets) is not
					// a production hot path; the gate binds shipped code.
					continue
				}
				via := make([]string, 0, len(vi.via)+1)
				via = append(append(via, vi.via...), c.Display)
				visited[ck] = visit{root: vi.root, via: via}
				queue = append(queue, ck)
			}
		}
	}

	// Report allocation sites of every reachable node, in deterministic
	// (node-key, event) order.
	reached := make([]string, 0, len(visited))
	for k := range visited {
		reached = append(reached, k)
	}
	sort.Strings(reached)
	for _, k := range reached {
		n := g.Nodes[k]
		vi := visited[k]
		for _, ev := range n.Events {
			if ev.Kind != callgraph.KAlloc {
				continue
			}
			report(n, ev.Pos, "hot-path allocation: "+ev.What+locate(n, vi))
		}
	}
	return recs
}

// inTestFile reports whether a node's declaration lives in a _test.go file.
func inTestFile(fset *token.FileSet, n *callgraph.Node) bool {
	if n.Decl == nil {
		return false
	}
	return strings.HasSuffix(fset.Position(n.Decl.Pos()).Filename, "_test.go")
}

// locate phrases where a finding sits relative to its hot root.
func locate(n *callgraph.Node, vi visit) string {
	if len(vi.via) == 0 {
		return " in //lint:hotpath function " + n.Display
	}
	return " in " + n.Display + " (reachable from //lint:hotpath " + vi.root +
		" via " + strings.Join(vi.via, " → ") + ")"
}
