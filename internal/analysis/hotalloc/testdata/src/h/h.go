// Package h exercises the hotalloc analyzer: //lint:hotpath roots must be
// transitively allocation-free apart from //lint:allow hotalloc sites and
// pruned call edges; dynamic calls cannot be proven free and are reported.
package h

// appendByte is the amortized hot append shape: growing a slice the caller
// owns is O(1) amortized and not an allocation event.
//
//lint:hotpath
func appendByte(dst []byte, b byte) []byte {
	dst = append(dst, b)
	return dst
}

// directAlloc allocates right inside the annotated root.
//
//lint:hotpath
func directAlloc(n int) []byte {
	return make([]byte, n) // want `hot-path allocation: make in //lint:hotpath function directAlloc`
}

// deepRoot reaches an allocation two module calls down: the finding names
// the root and the via chain.
//
//lint:hotpath
func deepRoot(dst []byte) []byte {
	return level1(dst)
}

func level1(dst []byte) []byte { return level2(dst) }

func level2(dst []byte) []byte {
	counts := map[int]int{} // want `hot-path allocation: map literal in level2 \(reachable from //lint:hotpath deepRoot via level1 → level2\)`
	counts[len(dst)]++
	return dst
}

// excusedAlloc documents a cold branch on the hot path: the site allow
// suppresses the finding and is consumed (not stale).
//
//lint:hotpath
func excusedAlloc(cold bool) []byte {
	if cold {
		return make([]byte, 64) //lint:allow hotalloc cold branch, taken once at startup
	}
	return nil
}

// withDebug prunes a call edge: the allow on the call site excuses
// dumpState's whole subtree.
//
//lint:hotpath
func withDebug(dst []byte, debug bool) []byte {
	if debug {
		dumpState() //lint:allow hotalloc debug-only dump, off the configured hot path
	}
	return dst
}

// dumpState allocates, but is only reachable through the pruned edge.
func dumpState() {
	_ = make([]int, 8)
}

// dispatch calls through a function value: unresolvable, reported as such.
//
//lint:hotpath
func dispatch(f func()) {
	f() // want `hot-path dynamic call through f cannot be proven allocation-free in //lint:hotpath function dispatch`
}

func sink(v any) { _ = v }

// boxesArg boxes an integer into an interface argument.
//
//lint:hotpath
func boxesArg(v int) {
	sink(v) // want `hot-path allocation: interface boxing of argument in //lint:hotpath function boxesArg`
}

// closureAlloc builds a closure on the hot path: one allocation.
//
//lint:hotpath
func closureAlloc(xs []int) func() int {
	return func() int { return len(xs) } // want `hot-path allocation: closure \(function literal\) in //lint:hotpath function closureAlloc`
}

// coldPath is not annotated and not hot-reachable: allocations are fine.
func coldPath() []int {
	return make([]int, 4)
}
