package analysis

import (
	"go/token"
	"testing"
)

func TestLoaderLoadsServerPackage(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := l.LoadImportPath("crowdfill/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "server" {
		t.Fatalf("package name = %q, want server", pkg.Types.Name())
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no files loaded")
	}
	// Loading again hits the cache (same pointer).
	again, err := l.LoadImportPath("crowdfill/internal/server")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("second load did not hit the cache")
	}
}

func TestLoadImportPathTests(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := l.LoadImportPath("crowdfill/internal/wsock")
	if err != nil {
		t.Fatal(err)
	}
	withTests, err := l.LoadImportPathTests("crowdfill/internal/wsock")
	if err != nil {
		t.Fatal(err)
	}
	if len(withTests.Files) <= len(plain.Files) {
		t.Fatalf("test variant has %d files, plain %d; want in-package _test.go files added",
			len(withTests.Files), len(plain.Files))
	}
	testFiles := 0
	for _, f := range withTests.Files {
		if name := l.Fset.Position(f.Pos()).Filename; contains(name, "_test.go") {
			testFiles++
		}
	}
	if testFiles == 0 {
		t.Fatal("test variant loaded no _test.go files")
	}
	// The two variants are distinct cache entries: the plain load is not
	// clobbered by the test-augmented one.
	plainAgain, err := l.LoadImportPath("crowdfill/internal/wsock")
	if err != nil {
		t.Fatal(err)
	}
	if plainAgain != plain {
		t.Fatal("plain load no longer cached after test-variant load")
	}
	testsAgain, err := l.LoadImportPathTests("crowdfill/internal/wsock")
	if err != nil {
		t.Fatal(err)
	}
	if testsAgain != withTests {
		t.Fatal("test-variant load not cached")
	}
}

func TestModulePackagesSkipsTestdata(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
	}
	for _, want := range []string{"crowdfill", "crowdfill/internal/server", "crowdfill/internal/sync"} {
		if !seen[want] {
			t.Errorf("ModulePackages missing %s (got %d paths)", want, len(paths))
		}
	}
	for p := range seen {
		if contains(p, "testdata") {
			t.Errorf("ModulePackages included testdata package %s", p)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestFilterAllows(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("f.go", -1, 1000)
	f.SetLines([]int{0, 50, 100, 150, 200, 250, 300, 350, 400, 450})
	posOnLine := func(line int) token.Pos { return f.LineStart(line) }

	allows := []*Allow{
		{Analyzer: "simdet", Justification: "covered by a seeded rand", File: "f.go", Line: 3},
		{Analyzer: "simdet", Justification: "never fires", File: "f.go", Line: 9},
		{Analyzer: "simdet", File: "f.go", Line: 5}, // used but unjustified
		{Analyzer: "lockscope", Justification: "other analyzer", File: "f.go", Line: 3},
	}
	diags := []Diagnostic{
		{Pos: posOnLine(3), Message: "suppressed"},
		{Pos: posOnLine(5), Message: "suppressed without justification"},
		{Pos: posOnLine(7), Message: "kept"},
	}
	kept, extras := Filter(fset, allows, "simdet", diags)
	if len(kept) != 1 || kept[0].Message != "kept" {
		t.Fatalf("kept = %+v, want only the unsuppressed diagnostic", kept)
	}
	// One stale directive (line 9) + one missing justification (line 5).
	if len(extras) != 2 {
		t.Fatalf("extras = %+v, want stale + unjustified", extras)
	}
}
