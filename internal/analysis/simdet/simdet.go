// Package simdet enforces determinism in the simulation packages: runs must
// be exactly reproducible from their seeds, because CrowdFill's bookkeeping
// trace (paper §3.3) is an audit artifact — crowdfill-replay recomputes
// compensation from it, and the replay-determinism tests compare exported
// trace bytes across runs. Wall-clock reads, the process-global math/rand
// source, and map-iteration-ordered output all silently break that.
package simdet

import (
	"go/ast"
	"go/types"
	"strings"

	"crowdfill/internal/analysis"
)

// DefaultPackages are the deterministic-sim packages crowdfill-lint applies
// this analyzer to. Time must come from an injected simclock.Clock and
// randomness from an injected, seeded *rand.Rand in these packages only;
// live-server code (transport, wsock, frontend) legitimately uses the wall
// clock.
var DefaultPackages = []string{
	"crowdfill/internal/client",
	"crowdfill/internal/crowd",
	"crowdfill/internal/exp",
	"crowdfill/internal/marketplace",
	"crowdfill/internal/microtask",
}

// bannedTime are time-package functions that read the wall clock or block on
// it. time.Duration arithmetic and construction remain fine.
var bannedTime = map[string]string{
	"Now":       "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"After":     "schedules on the wall clock",
	"Tick":      "schedules on the wall clock",
	"NewTimer":  "schedules on the wall clock",
	"NewTicker": "schedules on the wall clock",
	"AfterFunc": "schedules on the wall clock",
}

// bannedRand are math/rand top-level functions, all of which draw from the
// process-global source; rand.New(rand.NewSource(seed)) and methods on an
// injected *rand.Rand are the sanctioned route.
var bannedRand = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// New returns the simdet analyzer.
func New() *analysis.Analyzer {
	return &analysis.Analyzer{
		Name: "simdet",
		Doc: "flags nondeterminism in simulation packages: wall-clock reads " +
			"(time.Now/Sleep/...; inject simclock.Clock), global math/rand " +
			"draws (inject a seeded *rand.Rand), and slice/print output built " +
			"while ranging over a map without sorting",
		Run: run,
	}
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// The determinism contract binds the simulation itself, not its test
		// harness: tests drive real goroutines with wall-clock timeouts and
		// never feed the replayed trace.
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	callsSort := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, name := pkgFunc(pass, call); pkg == "sort" && name != "" {
				callsSort = true
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkg, name := pkgFunc(pass, n)
			switch pkg {
			case "time":
				if why, bad := bannedTime[name]; bad {
					pass.Reportf(n.Pos(), "time.%s %s; deterministic-sim packages must take time from an injected simclock.Clock", name, why)
				}
			case "math/rand", "math/rand/v2":
				if bannedRand[name] {
					pass.Reportf(n.Pos(), "rand.%s draws from the process-global source; inject a seeded *rand.Rand so runs replay bit-identically", name)
				}
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n, callsSort)
		}
		return true
	})
}

// checkMapRange flags a range over a map whose body emits ordered output
// (slice appends or direct printing) in a function that never sorts: the
// iteration order leaks into results and differs between runs. Appending and
// sorting afterwards is the sanctioned pattern and is not flagged.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, callsSort bool) {
	if callsSort {
		return
	}
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	emits := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
			if obj, found := pass.TypesInfo.Uses[id]; found {
				if _, builtin := obj.(*types.Builtin); builtin {
					emits = true
				}
			}
		}
		if pkg, _ := pkgFunc(pass, call); pkg == "fmt" {
			emits = true
		}
		return true
	})
	if emits {
		pass.Reportf(rng.Pos(), "output built while ranging over a map without sorting: iteration order differs between runs; collect and sort before emitting")
	}
}

// pkgFunc resolves a call to (package path, function name) when the callee
// is a package-level function referenced through its package name; otherwise
// it returns ("", "").
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
