// Package a exercises the simdet analyzer: wall-clock reads, global
// math/rand draws, and map-range-ordered output.
package a

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func wallClock() int64 {
	t := time.Now()                     // want `time.Now reads the wall clock`
	time.Sleep(time.Millisecond)        // want `time.Sleep blocks on the wall clock`
	d := time.Since(t)                  // want `time.Since reads the wall clock`
	_ = time.Duration(42) * time.Second // duration arithmetic is fine
	return int64(d)
}

func globalRand() int {
	n := rand.Intn(10)                 // want `rand.Intn draws from the process-global source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand.Shuffle draws from the process-global source`
	return n
}

func seededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // injected seeded source: allowed
	return rng.Float64()
}

func injected(rng *rand.Rand) int {
	return rng.Intn(10) // method on injected *rand.Rand: allowed
}

func mapOrderLeak(m map[string]int) []string {
	var out []string
	for k := range m { // want `output built while ranging over a map without sorting`
		out = append(out, k)
	}
	return out
}

func mapOrderPrinted(m map[string]int) {
	for k, v := range m { // want `output built while ranging over a map without sorting`
		fmt.Println(k, v)
	}
}

func mapOrderSorted(m map[string]int) []string {
	var out []string
	for k := range m { // sorted afterwards: allowed
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func mapAccumulate(m map[string]int) int {
	sum := 0
	for _, v := range m { // commutative accumulation: allowed
		sum += v
	}
	return sum
}

func allowed() int64 {
	//lint:allow simdet boot-time banner only, never feeds the trace
	return time.Now().UnixNano()
}

func allowedInline() int64 {
	return time.Now().UnixNano() //lint:allow simdet boot-time banner only, never feeds the trace
}

func staleAllow() int {
	//lint:allow simdet nothing to suppress here // want `stale //lint:allow simdet directive`
	return 7
}

func unjustifiedAllow() int64 {
	//lint:allow simdet // want `needs a justification`
	return time.Now().UnixNano()
}
