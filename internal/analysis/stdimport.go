package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// stdImporter resolves standard-library imports. It prefers the compiler's
// binary export data, located once via `go list -export std` — reading export
// files takes milliseconds where type-checking the stdlib from source takes
// seconds per lint run. The import-path → export-file index is cached on disk
// keyed by the toolchain version (a GOROOT upgrade invalidates it), and any
// failure to build or use the index falls back to the source importer, so the
// loader never gets slower than it was, only faster.
//
// Set CROWDFILL_LINT_STD=source to force the source importer (e.g. to
// diagnose export-data skew after a toolchain change).
type stdImporter struct {
	gc    types.Importer    // export-data importer; nil when unavailable
	src   types.Importer    // source importer fallback
	index map[string]string // import path -> export file
	memo  map[string]*types.Package
}

func newStdImporter(fset *token.FileSet, modRoot string) *stdImporter {
	s := &stdImporter{
		src:  importer.ForCompiler(fset, "source", nil),
		memo: make(map[string]*types.Package),
	}
	if os.Getenv("CROWDFILL_LINT_STD") == "source" {
		return s
	}
	index, err := stdExportIndex(modRoot)
	if err != nil {
		return s
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := index[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	gc := importer.ForCompiler(fset, "gc", lookup)
	// Probe one import before committing: if export data works at all it
	// works for the whole index, and committing per-run (not per-path)
	// keeps every std package in a single type-check universe.
	if _, err := gc.Import("fmt"); err != nil {
		return s
	}
	s.gc, s.index = gc, index
	return s
}

// Import implements types.Importer. Results are memoized so a given path
// always resolves to the same *types.Package within one loader.
func (s *stdImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.memo[path]; ok {
		return p, nil
	}
	var p *types.Package
	var err error
	if s.gc != nil {
		if _, ok := s.index[path]; ok {
			p, err = s.gc.Import(path)
		} else {
			err = fmt.Errorf("analysis: %q not in std export index", path)
		}
	} else {
		p, err = s.src.Import(path)
	}
	if err != nil {
		return nil, err
	}
	s.memo[path] = p
	return p, nil
}

// stdExportCacheFile returns the on-disk location of the export index for
// this toolchain. The key includes runtime.Version() and the GOROOT path, so
// switching toolchains (or moving GOROOT) rebuilds the index instead of
// pointing at stale build-cache entries.
func stdExportCacheFile() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	key := runtime.Version() + "-" + sanitizeKey(runtime.GOROOT())
	return filepath.Join(base, "crowdfill-lint", "stdexport-"+key+".json"), nil
}

func sanitizeKey(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '.', r == '-':
			return r
		default:
			return '_'
		}
	}, s)
}

// stdExportIndex returns the import-path → export-file map for the standard
// library, from the disk cache when valid, else by asking cmd/go and caching
// the answer. A cached index is revalidated by stat'ing every export file:
// go's build cache trims old entries, and a single missing file means the
// index must be rebuilt.
func stdExportIndex(modRoot string) (map[string]string, error) {
	cacheFile, cerr := stdExportCacheFile()
	if cerr == nil {
		if index := readExportCache(cacheFile); index != nil {
			return index, nil
		}
	}
	index, err := buildStdExportIndex(modRoot)
	if err != nil {
		return nil, err
	}
	if cerr == nil {
		writeExportCache(cacheFile, index)
	}
	return index, nil
}

func readExportCache(file string) map[string]string {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil
	}
	var index map[string]string
	if json.Unmarshal(data, &index) != nil || len(index) == 0 {
		return nil
	}
	for _, f := range index {
		if _, err := os.Stat(f); err != nil {
			return nil
		}
	}
	return index
}

func writeExportCache(file string, index map[string]string) {
	// Best-effort: a failed cache write only costs the next run a `go list`.
	if err := os.MkdirAll(filepath.Dir(file), 0o755); err != nil {
		return
	}
	data, err := json.Marshal(index)
	if err != nil {
		return
	}
	tmp := file + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, file)
}

func buildStdExportIndex(modRoot string) (map[string]string, error) {
	cmd := exec.Command("go", "list", "-export", "-e",
		"-f", "{{.ImportPath}}\t{{.Export}}", "std")
	cmd.Dir = modRoot
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list -export std: %w", err)
	}
	index := make(map[string]string)
	for _, line := range strings.Split(string(out), "\n") {
		path, file, ok := strings.Cut(line, "\t")
		if !ok || file == "" {
			continue
		}
		index[path] = file
	}
	if len(index) == 0 {
		return nil, fmt.Errorf("analysis: go list -export std produced no export files")
	}
	return index, nil
}
