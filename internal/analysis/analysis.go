// Package analysis is a small, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough framework to express
// CrowdFill's source-level invariants as typed AST checks and drive them
// from one multichecker binary (cmd/crowdfill-lint) and from analysistest
// suites. The container this repo builds in has no module proxy access, so
// the framework is built entirely on go/ast, go/parser, go/types and the
// standard library's source importer.
//
// The shape mirrors x/tools on purpose — Analyzer{Name, Doc, Run},
// Pass{Fset, Files, Pkg, TypesInfo, Report} — so the suite could be ported
// to the real framework by swapping imports if a vendored x/tools ever
// lands.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one source-level invariant check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards (shown by crowdfill-lint -help).
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
	// Finish, if non-nil, runs once after every package has been analyzed.
	// Cross-package contracts (e.g. msgfield's server↔replay message-set
	// comparison) report their findings here.
	Finish func(report func(Diagnostic))
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one finding.
	Report func(Diagnostic)
	// Shared carries whole-run state (every loaded package, their
	// //lint:allow directives, memoized cross-package artifacts like the
	// call graph). Never nil inside Run.
	Shared *Shared
}

// Shared is the whole-run state handed to every analyzer pass: the full set
// of packages loaded for this lint/test invocation, their directives, and a
// memo space for expensive cross-package artifacts (the call graph is built
// once here and reused by lockscope, lockorder and hotalloc). The driver
// builds one Shared after loading everything and before running anything, so
// module-wide analyses see the whole program.
type Shared struct {
	Packages []*Package
	allows   map[string][]*Allow // package path -> directives
	memo     map[string]any
}

// NewShared collects the //lint:allow directives of every package and
// returns the run-wide state. The same Allow instances are returned by
// AllowsFor and consumed by Filter, so Used marks set anywhere are visible
// everywhere.
func NewShared(pkgs []*Package) *Shared {
	s := &Shared{
		Packages: pkgs,
		allows:   make(map[string][]*Allow, len(pkgs)),
		memo:     make(map[string]any),
	}
	for _, p := range pkgs {
		s.allows[p.Path] = CollectAllows(p.Fset, p.Files)
	}
	return s
}

// AllowsFor returns the directives collected from one loaded package.
func (s *Shared) AllowsFor(path string) []*Allow { return s.allows[path] }

// Memo builds an artifact once per run and caches it under key.
func (s *Shared) Memo(key string, build func() any) any {
	if v, ok := s.memo[key]; ok {
		return v
	}
	v := build()
	s.memo[key] = v
	return v
}

// UseAllow reports whether a //lint:allow directive for the named analyzer
// covers file:line, marking every matching directive used. Analyzers whose
// suppression semantics act before diagnostics exist (hotalloc's pruned call
// edges) consume directives through this instead of through Filter, so the
// stale-directive check still accounts for them.
func (s *Shared) UseAllow(analyzer, file string, line int) bool {
	used := false
	for _, list := range s.allows {
		for _, a := range list {
			if a.Analyzer == analyzer && a.File == file && a.Line == line {
				a.Used = true
				used = true
			}
		}
	}
	return used
}

// Reportf formats and reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// RunAnalyzer executes one analyzer over a loaded package and returns its
// raw diagnostics (before //lint:allow filtering), sorted by position.
// shared may be nil, in which case a single-package Shared is synthesized —
// interprocedural analyzers then see only this package.
func RunAnalyzer(a *Analyzer, pkg *Package, shared *Shared) ([]Diagnostic, error) {
	if shared == nil {
		shared = NewShared([]*Package{pkg})
	}
	var diags []Diagnostic
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Report:    func(d Diagnostic) { diags = append(diags, d) },
		Shared:    shared,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	sortDiags(pkg.Fset, diags)
	return diags, nil
}

func sortDiags(fset *token.FileSet, diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
}
