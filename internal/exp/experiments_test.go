package exp

import (
	"strings"
	"testing"
	"time"
)

func TestE1PaperShape(t *testing.T) {
	r := E1(representative(t))
	if !r.Done {
		t.Fatalf("E1 run must converge")
	}
	// Paper: 10m44s, 20 final rows, 23 candidate rows, all accurate.
	if r.FinalRows != 20 {
		t.Errorf("final rows = %d", r.FinalRows)
	}
	if r.CandidateRows < r.FinalRows {
		t.Errorf("candidate rows %d < final rows %d", r.CandidateRows, r.FinalRows)
	}
	if r.CandidateRows != r.FinalRows+r.DownvotedRows+r.ExtraRows {
		t.Errorf("row accounting wrong: %d != %d+%d+%d",
			r.CandidateRows, r.FinalRows, r.DownvotedRows, r.ExtraRows)
	}
	if r.Accuracy < 0.9 {
		t.Errorf("accuracy = %.2f", r.Accuracy)
	}
	if r.Duration <= 0 {
		t.Errorf("duration = %v", r.Duration)
	}
}

func TestE2PaperShape(t *testing.T) {
	r := E2(representative(t))
	if len(r.Workers) != 5 {
		t.Fatalf("workers = %d", len(r.Workers))
	}
	// Sorted ascending by pay, and pay correlates with action volume at the
	// extremes (the paper's $0.51/9-action vs $3.49/54-action contrast).
	for i := 1; i < len(r.Workers); i++ {
		if r.Workers[i].Actual < r.Workers[i-1].Actual {
			t.Fatalf("not sorted by pay")
		}
	}
	lo, hi := r.Workers[0], r.Workers[len(r.Workers)-1]
	if hi.Actual < 2*lo.Actual {
		t.Errorf("pay spread too narrow: %.2f vs %.2f", lo.Actual, hi.Actual)
	}
	if hi.Actions <= lo.Actions {
		t.Errorf("actions should track pay at the extremes: %d vs %d", lo.Actions, hi.Actions)
	}
}

func TestE3PaperShape(t *testing.T) {
	r := E3(representative(t))
	if r.MAPERaw <= 0 || r.MAPERaw > 100 {
		t.Fatalf("raw MAPE = %.1f", r.MAPERaw)
	}
	// The paper's central claim for Figure 5: correcting for
	// non-contributing actions improves the estimates.
	if r.MAPECorrected >= r.MAPERaw {
		t.Fatalf("corrected MAPE %.1f should beat raw %.1f", r.MAPECorrected, r.MAPERaw)
	}
	for _, w := range r.Workers {
		// Estimates assume every action contributes, so raw estimates
		// should not be dramatically below actual pay.
		if w.RawEstimate < w.Actual*0.5 {
			t.Errorf("%s: raw estimate %.2f far below actual %.2f", w.Name, w.RawEstimate, w.Actual)
		}
	}
}

func TestE4PaperShape(t *testing.T) {
	res := representative(t)
	r, err := E4(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workers) != 5 {
		t.Fatalf("workers = %d", len(r.Workers))
	}
	// Budgets match across schemes up to the unassigned indirect remainder.
	var dualSum, uniSum float64
	for i := range r.Workers {
		dualSum += r.Dual[i]
		uniSum += r.Uniform[i]
	}
	if dualSum > 10+1e-9 || uniSum > 10+1e-9 {
		t.Fatalf("allocations exceed budget: %.2f / %.2f", dualSum, uniSum)
	}
	// The paper saw >25% shift for one worker; we demand a visible shift.
	if r.MaxRelDiff < 0.05 {
		t.Errorf("scheme change should visibly shift someone's pay, max diff %.1f%%", r.MaxRelDiff*100)
	}
}

func TestE5PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E5([]int64{21, 22, 23})
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs == 0 {
		t.Fatalf("no runs converged")
	}
	for i, m := range r.MAPE {
		if m <= 0 || m > 100 {
			t.Fatalf("MAPE[%d] = %.1f", i, m)
		}
	}
	// Paper ordering: the simpler the scheme, the better the estimates.
	// Uniform must not be the worst (weighted schemes add weight-estimation
	// error on top of the shared denominators).
	uniform, column, dual := r.MAPE[0], r.MAPE[1], r.MAPE[2]
	if uniform > column+5 && uniform > dual+5 {
		t.Errorf("uniform (%.1f) should not be clearly worst (column %.1f, dual %.1f)",
			uniform, column, dual)
	}
}

func TestE6PaperShape(t *testing.T) {
	res := representative(t)
	r, err := E6(res)
	if err != nil {
		t.Fatal(err)
	}
	if r.Workers[0] == r.Workers[1] || r.Workers[0] == "" {
		t.Fatalf("two distinct workers required: %v", r.Workers)
	}
	for i := 0; i < 2; i++ {
		for _, curve := range [][]CurvePoint{r.Weighted[i], r.Uniform[i]} {
			if len(curve) < 2 {
				t.Fatalf("curve too short: %v", curve)
			}
			if got := curve[len(curve)-1].Frac; got < 0.999 {
				t.Fatalf("curve must reach 1.0, got %v", got)
			}
		}
		if r.StabilityWeighted[i] < 0 || r.StabilityUniform[i] < 0 {
			t.Fatalf("negative deviation")
		}
	}
	if r.Duration != res.Duration {
		t.Fatalf("duration mismatch")
	}
}

func TestSampleCurve(t *testing.T) {
	curve := []CurvePoint{{0, 0}, {10 * time.Second, 0.5}, {20 * time.Second, 1}}
	cases := []struct {
		t    time.Duration
		want float64
	}{
		{0, 0}, {5 * time.Second, 0}, {10 * time.Second, 0.5},
		{15 * time.Second, 0.5}, {25 * time.Second, 1},
	}
	for _, tc := range cases {
		if got := sampleCurve(curve, tc.t); got != tc.want {
			t.Errorf("sampleCurve(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestCurveDeviation(t *testing.T) {
	// A perfectly diagonal curve has zero deviation.
	diag := []CurvePoint{{0, 0}, {50 * time.Second, 0.5}, {100 * time.Second, 1}}
	if got := curveDeviation(diag, 100*time.Second); got != 0 {
		t.Errorf("diagonal deviation = %v", got)
	}
	// Earning everything at the start deviates maximally mid-run.
	front := []CurvePoint{{0, 1}}
	if got := curveDeviation(front, 100*time.Second); got != 1 {
		t.Errorf("front-loaded deviation = %v", got)
	}
	if got := curveDeviation(nil, time.Second); got != 0 {
		t.Errorf("empty curve deviation = %v", got)
	}
}

func TestE7SpammerImpact(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E7(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Spammers) != 3 {
		t.Fatalf("variants = %d", len(r.Spammers))
	}
	// Contribution-based pay must punish spam whenever spammers acted.
	for i, n := range r.Spammers {
		if n == 0 {
			if r.SpamPayShare[i] != 0 {
				t.Fatalf("no spammers but spam pay = %v", r.SpamPayShare[i])
			}
			continue
		}
		if r.SpamActionShare[i] > 0 && r.SpamPayShare[i] >= r.SpamActionShare[i] {
			t.Fatalf("spam pay share %.2f not below action share %.2f (n=%d)",
				r.SpamPayShare[i], r.SpamActionShare[i], n)
		}
	}
	if s := r.String(); len(s) < 100 {
		t.Fatalf("report too short: %q", s)
	}
}

func TestE8ScalingWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E8(DefaultSeed, []int{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Workers) != 2 {
		t.Fatalf("variants = %d", len(r.Workers))
	}
	for i := range r.Workers {
		if !r.Done[i] {
			t.Fatalf("%d-worker run did not converge", r.Workers[i])
		}
	}
	// More workers must not slow collection down dramatically; typically
	// they speed it up.
	if r.Duration[1] > r.Duration[0]*3/2 {
		t.Fatalf("5 workers (%v) much slower than 2 (%v)", r.Duration[1], r.Duration[0])
	}
	if s := r.String(); len(s) < 100 {
		t.Fatalf("report too short: %q", s)
	}
}

func TestCSVExports(t *testing.T) {
	res := representative(t)
	e3 := E3(res)
	csv := e3.CSV()
	if !strings.HasPrefix(csv, "worker,actual,estimate,corrected\n") {
		t.Fatalf("figure5 csv header wrong:\n%s", csv)
	}
	if got := strings.Count(csv, "\n"); got != len(e3.Workers)+1 {
		t.Fatalf("figure5 csv rows = %d", got)
	}
	e6, err := E6(res)
	if err != nil {
		t.Fatal(err)
	}
	csv6 := e6.CSV()
	lines := strings.Split(strings.TrimSpace(csv6), "\n")
	if len(lines) != 52 { // header + 51 samples
		t.Fatalf("figure6 csv rows = %d", len(lines))
	}
	last := lines[len(lines)-1]
	if !strings.HasPrefix(last, "1.00,1.0000,1.0000") {
		t.Fatalf("figure6 final sample should reach 1.0: %s", last)
	}
}

func TestE9ScoringSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E9(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Names) != 3 {
		t.Fatalf("variants = %d", len(r.Names))
	}
	// Heavier verification must cost strictly more votes.
	if !(r.Votes[0] < r.Votes[1] && r.Votes[1] < r.Votes[2]) {
		t.Fatalf("vote ordering wrong: %v", r.Votes)
	}
	for i := range r.Names {
		if !r.Done[i] {
			t.Fatalf("%s did not converge", r.Names[i])
		}
	}
	if s := r.String(); len(s) < 100 {
		t.Fatalf("report too short")
	}
}

func TestE10StrategyAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E10([]int64{DefaultSeed})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Strategies) != 2 || r.Strategies[0] != "random" {
		t.Fatalf("strategies = %v", r.Strategies)
	}
	for i := range r.Strategies {
		if r.Done[i] && r.Duration[i] <= 0 {
			t.Fatalf("%s duration = %v", r.Strategies[i], r.Duration[i])
		}
	}
	if s := r.String(); len(s) < 100 {
		t.Fatalf("report too short")
	}
}

func TestE11LatencySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E11(DefaultSeed, []time.Duration{0, 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Latency) != 2 {
		t.Fatalf("variants = %d", len(r.Latency))
	}
	for i := range r.Latency {
		if !r.Done[i] {
			t.Fatalf("latency %v run did not converge", r.Latency[i])
		}
		if r.Accuracy[i] < 0.9 {
			t.Fatalf("latency %v accuracy = %.2f", r.Latency[i], r.Accuracy[i])
		}
	}
	// §2.4.1: staler views must produce more conflict churn.
	if r.Conflicts[1] <= r.Conflicts[0] {
		t.Fatalf("latency should increase churn: %v", r.Conflicts)
	}
	if s := r.String(); len(s) < 100 {
		t.Fatalf("report too short")
	}
}

func TestE12PerformanceTracking(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run experiment")
	}
	r, err := E12(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tracking) != 2 || r.Tracking[0] || !r.Tracking[1] {
		t.Fatalf("variants = %v", r.Tracking)
	}
	// Tracking must pull the spammer's projected earnings down toward their
	// actual pay.
	if r.SpamEstimate[1] >= r.SpamEstimate[0] {
		t.Fatalf("tracking should shrink spam estimates: %.2f -> %.2f",
			r.SpamEstimate[0], r.SpamEstimate[1])
	}
	if s := r.String(); len(s) < 100 {
		t.Fatalf("report too short")
	}
}
