package exp

import (
	"fmt"
	"strings"
	"time"

	"crowdfill/internal/crowd"
	"crowdfill/internal/model"
	"crowdfill/internal/pay"
)

// E7Report is the spammer-impact exploration the paper flags as "an
// extremely important area of investigation" (§8): the same representative
// workload with 0, 1, and 2 spammers injected, measuring how collection
// time, final accuracy, and the spammers' share of the budget respond.
type E7Report struct {
	Spammers []int
	Done     []bool
	Duration []time.Duration
	Accuracy []float64
	// SpamPayShare is the fraction of distributed budget earned by
	// spammers; SpamActionShare their fraction of paid actions.
	SpamPayShare    []float64
	SpamActionShare []float64
}

// E7 runs the spammer-impact experiment.
func E7(seed int64) (E7Report, error) {
	r := E7Report{}
	for _, n := range []int{0, 1, 2} {
		cfg := RepresentativeConfig(seed)
		for i := 0; i < n; i++ {
			cfg.Workers = append(cfg.Workers, crowd.Spec{
				Name:    fmt.Sprintf("spammer%d", i+1),
				Spammer: true,
				Seed:    seed*97 + int64(i),
			})
		}
		cfg.MaxVirtual = 6 * time.Hour
		res, err := Run(cfg)
		if err != nil {
			return E7Report{}, err
		}
		var spamPay, totalPay float64
		var spamActs, totalActs int
		for _, w := range res.Workers {
			totalPay += w.Actual
			totalActs += w.Actions
			if strings.HasPrefix(w.Name, "spammer") {
				spamPay += w.Actual
				spamActs += w.Actions
			}
		}
		r.Spammers = append(r.Spammers, n)
		r.Done = append(r.Done, res.Done)
		r.Duration = append(r.Duration, res.Duration.Round(time.Second))
		r.Accuracy = append(r.Accuracy, res.Accuracy)
		payShare, actShare := 0.0, 0.0
		if totalPay > 0 {
			payShare = spamPay / totalPay
		}
		if totalActs > 0 {
			actShare = float64(spamActs) / float64(totalActs)
		}
		r.SpamPayShare = append(r.SpamPayShare, payShare)
		r.SpamActionShare = append(r.SpamActionShare, actShare)
	}
	return r, nil
}

// String renders the report.
func (r E7Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E7  Spammer impact (§8 exploration)\n")
	fmt.Fprintf(&b, "    %-9s %6s %10s %10s %14s %16s\n",
		"spammers", "done", "duration", "accuracy", "spam pay", "spam actions")
	for i := range r.Spammers {
		fmt.Fprintf(&b, "    %-9d %6v %10v %9.0f%% %13.1f%% %15.1f%%\n",
			r.Spammers[i], r.Done[i], r.Duration[i], r.Accuracy[i]*100,
			r.SpamPayShare[i]*100, r.SpamActionShare[i]*100)
	}
	fmt.Fprintf(&b, "    (contribution-based pay should hold spam pay share far below its action share)\n")
	return b.String()
}

// E8Report is the worker-scaling exploration (§8: "more concurrent workers"
// as part of larger-scale evaluations): collection time and churn as the
// crowd grows on a fixed 20-row task.
type E8Report struct {
	Workers       []int
	Done          []bool
	Duration      []time.Duration
	CandidateRows []int
	Messages      []int
}

// E8 runs the worker-scaling experiment.
func E8(seed int64, counts []int) (E8Report, error) {
	if len(counts) == 0 {
		counts = []int{2, 5, 8}
	}
	r := E8Report{}
	base := RepresentativeConfig(seed).Workers
	for _, n := range counts {
		cfg := RepresentativeConfig(seed)
		cfg.Workers = nil
		for i := 0; i < n; i++ {
			spec := base[i%len(base)]
			spec.Name = fmt.Sprintf("worker%d", i+1)
			spec.Seed = seed*131 + int64(i)
			cfg.Workers = append(cfg.Workers, spec)
		}
		cfg.MaxVirtual = 6 * time.Hour
		res, err := Run(cfg)
		if err != nil {
			return E8Report{}, err
		}
		r.Workers = append(r.Workers, n)
		r.Done = append(r.Done, res.Done)
		r.Duration = append(r.Duration, res.Duration.Round(time.Second))
		r.CandidateRows = append(r.CandidateRows, res.CandidateRows)
		r.Messages = append(r.Messages, len(res.Core.Trace()))
	}
	return r, nil
}

// String renders the report.
func (r E8Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E8  Scaling the crowd (§8 exploration, fixed 20-row task)\n")
	fmt.Fprintf(&b, "    %-8s %6s %10s %12s %10s\n", "workers", "done", "duration", "candidates", "messages")
	for i := range r.Workers {
		fmt.Fprintf(&b, "    %-8d %6v %10v %12d %10d\n",
			r.Workers[i], r.Done[i], r.Duration[i], r.CandidateRows[i], r.Messages[i])
	}
	fmt.Fprintf(&b, "    (more workers should shorten collection; conflicts grow only mildly)\n")
	return b.String()
}

// CSV renders Figure 5's bar values as comma-separated rows
// (worker,actual,estimate,corrected) for external plotting.
func (r E3Report) CSV() string {
	var b strings.Builder
	b.WriteString("worker,actual,estimate,corrected\n")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, "%s,%.4f,%.4f,%.4f\n", w.Name, w.Actual, w.RawEstimate, w.CorrectedEstimate)
	}
	return b.String()
}

// CSV renders Figure 6's earning-rate series sampled at 2%-of-runtime steps:
// t_frac,<w1> weighted,<w1> uniform,<w2> weighted,<w2> uniform.
func (r E6Report) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t_frac,%s_weighted,%s_uniform,%s_weighted,%s_uniform\n",
		r.Workers[0], r.Workers[0], r.Workers[1], r.Workers[1])
	for step := 0; step <= 50; step++ {
		frac := float64(step) / 50
		t := time.Duration(float64(r.Duration) * frac)
		fmt.Fprintf(&b, "%.2f,%.4f,%.4f,%.4f,%.4f\n", frac,
			sampleCurve(r.Weighted[0], t), sampleCurve(r.Uniform[0], t),
			sampleCurve(r.Weighted[1], t), sampleCurve(r.Uniform[1], t))
	}
	return b.String()
}

// E9Report sweeps the scoring function — the cost-latency-quality tradeoff
// the paper frames the whole problem around (§1, [15]): lighter verification
// finishes sooner but admits more errors.
type E9Report struct {
	Names    []string
	Done     []bool
	Duration []time.Duration
	Accuracy []float64
	Votes    []int // manual (paid) votes cast
}

// E9 runs the representative workload under default (u−d), majority-of-3,
// and majority-of-5 scoring.
func E9(seed int64) (E9Report, error) {
	variants := []struct {
		name       string
		score      model.ScoreFunc
		decidedNet int
	}{
		{"default (u-d)", model.DefaultScore, 1},
		{"majority-of-3", model.MajorityShortcut(3), 2},
		{"net-margin-3", model.NetMargin(3), 3},
	}
	r := E9Report{}
	for _, v := range variants {
		cfg := RepresentativeConfig(seed)
		cfg.Score = v.score
		cfg.MaxVotesPerRow = 0 // let heavier schemes gather the votes they need
		for i := range cfg.Workers {
			cfg.Workers[i].DecidedNet = v.decidedNet
		}
		cfg.MaxVirtual = 6 * time.Hour
		res, err := Run(cfg)
		if err != nil {
			return E9Report{}, err
		}
		votes := 0
		for _, w := range res.Workers {
			votes += w.Upvotes + w.Downvotes
		}
		r.Names = append(r.Names, v.name)
		r.Done = append(r.Done, res.Done)
		r.Duration = append(r.Duration, res.Duration.Round(time.Second))
		r.Accuracy = append(r.Accuracy, res.Accuracy)
		r.Votes = append(r.Votes, votes)
	}
	return r, nil
}

// String renders the report.
func (r E9Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E9  Scoring-function sweep (cost-latency-quality tradeoff, §1)\n")
	fmt.Fprintf(&b, "    %-15s %6s %10s %10s %8s\n", "scoring", "done", "duration", "accuracy", "votes")
	for i := range r.Names {
		fmt.Fprintf(&b, "    %-15s %6v %10v %9.0f%% %8d\n",
			r.Names[i], r.Done[i], r.Duration[i], r.Accuracy[i]*100, r.Votes[i])
	}
	fmt.Fprintf(&b, "    (heavier verification costs votes and time, and buys quality)\n")
	return b.String()
}

// E10Report is the §8 recommendation-strategy ablation: random fill choice
// (the current system's randomized row presentation) against a
// complete-nearest-row-first strategy.
type E10Report struct {
	Strategies []string
	Done       []bool
	Duration   []time.Duration
	Candidates []int
}

// E10 compares fill-selection strategies over several seeds (single runs
// are noisy); durations are averaged over the converged runs.
func E10(seeds []int64) (E10Report, error) {
	if len(seeds) == 0 {
		seeds = []int64{DefaultSeed, DefaultSeed + 1, DefaultSeed + 2}
	}
	r := E10Report{Strategies: []string{"random", "focus"}}
	for _, focus := range []bool{false, true} {
		var total time.Duration
		var cands, done int
		for _, seed := range seeds {
			cfg := RepresentativeConfig(seed)
			for i := range cfg.Workers {
				cfg.Workers[i].FocusFill = focus
			}
			res, err := Run(cfg)
			if err != nil {
				return E10Report{}, err
			}
			if res.Done {
				done++
				total += res.Duration
				cands += res.CandidateRows
			}
		}
		allDone := done == len(seeds)
		var avg time.Duration
		var avgCand int
		if done > 0 {
			avg = (total / time.Duration(done)).Round(time.Second)
			avgCand = cands / done
		}
		r.Done = append(r.Done, allDone)
		r.Duration = append(r.Duration, avg)
		r.Candidates = append(r.Candidates, avgCand)
	}
	return r, nil
}

// String renders the report.
func (r E10Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E10 Fill-selection strategy ablation (§8 recommendation idea)\n")
	fmt.Fprintf(&b, "    %-10s %6s %12s %12s\n", "strategy", "done", "avg duration", "avg cands")
	for i := range r.Strategies {
		fmt.Fprintf(&b, "    %-10s %6v %12v %12d\n",
			r.Strategies[i], r.Done[i], r.Duration[i], r.Candidates[i])
	}
	fmt.Fprintf(&b, "    (uncoordinated focus LOSES: everyone piles onto the same row and\n")
	fmt.Fprintf(&b, "     collides — evidence for the paper's per-worker row randomization, §3.4)\n")
	return b.String()
}

// E11Report probes §2.4.1's concurrency story: as propagation latency grows,
// workers act on staler table copies, so conflicting fills multiply — extra
// rows appear and collection slows — while convergence keeps the final table
// correct.
type E11Report struct {
	Latency  []time.Duration
	Done     []bool
	Duration []time.Duration
	// Candidates counts end-of-run candidate rows; Conflicts the rows
	// beyond final+downvoted (the paper's "extra row added by a conflict").
	Candidates []int
	Conflicts  []int
	Accuracy   []float64
}

// E11 sweeps propagation latency on the representative workload.
func E11(seed int64, latencies []time.Duration) (E11Report, error) {
	if len(latencies) == 0 {
		latencies = []time.Duration{0, 2 * time.Second, 10 * time.Second, 30 * time.Second}
	}
	r := E11Report{}
	for _, lat := range latencies {
		cfg := RepresentativeConfig(seed)
		cfg.Latency = lat
		cfg.MaxVirtual = 8 * time.Hour
		res, err := Run(cfg)
		if err != nil {
			return E11Report{}, err
		}
		e1 := E1(res)
		r.Latency = append(r.Latency, lat)
		r.Done = append(r.Done, res.Done)
		r.Duration = append(r.Duration, res.Duration.Round(time.Second))
		r.Candidates = append(r.Candidates, res.CandidateRows)
		r.Conflicts = append(r.Conflicts, e1.ExtraRows+e1.DownvotedRows)
		r.Accuracy = append(r.Accuracy, res.Accuracy)
	}
	return r, nil
}

// String renders the report.
func (r E11Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E11 Propagation-latency sweep (§2.4.1 conflict behaviour)\n")
	fmt.Fprintf(&b, "    %-10s %6s %10s %12s %10s %10s\n",
		"latency", "done", "duration", "candidates", "churn", "accuracy")
	for i := range r.Latency {
		fmt.Fprintf(&b, "    %-10v %6v %10v %12d %10d %9.0f%%\n",
			r.Latency[i], r.Done[i], r.Duration[i], r.Candidates[i], r.Conflicts[i],
			r.Accuracy[i]*100)
	}
	fmt.Fprintf(&b, "    (staler views mean more conflicting fills; convergence keeps results correct)\n")
	return b.String()
}

// E12Report evaluates the §5.3 performance-tracking refinement the paper
// sets aside: with per-worker performance scaling on, a spammer's displayed
// earnings projection collapses toward their (near-zero) actual pay, while
// honest workers' estimates stay calibrated.
type E12Report struct {
	Tracking []bool
	// SpamEstimate / SpamActual are the spammer's raw-estimate sum and
	// actual pay; HonestMAPE the raw MAPE over the honest workers.
	SpamEstimate []float64
	SpamActual   []float64
	HonestMAPE   []float64
	Done         []bool
}

// E12 runs the representative workload plus one spammer, with and without
// performance-tracked estimates.
func E12(seed int64) (E12Report, error) {
	r := E12Report{}
	for _, tracking := range []bool{false, true} {
		cfg := RepresentativeConfig(seed)
		cfg.Workers = append(cfg.Workers, crowd.Spec{
			Name: "spammer", Spammer: true, Seed: seed*89 + 7,
		})
		cfg.TrackPerformance = tracking
		cfg.MaxVirtual = 6 * time.Hour
		res, err := Run(cfg)
		if err != nil {
			return E12Report{}, err
		}
		honest := map[string]float64{}
		honestEst := map[string]float64{}
		var spamEst, spamActual float64
		for _, w := range res.Workers {
			if w.Name == "spammer" {
				spamEst = w.RawEstimate
				spamActual = w.Actual
				continue
			}
			honest[w.Name] = w.Actual
			honestEst[w.Name] = w.RawEstimate
		}
		r.Tracking = append(r.Tracking, tracking)
		r.SpamEstimate = append(r.SpamEstimate, spamEst)
		r.SpamActual = append(r.SpamActual, spamActual)
		r.HonestMAPE = append(r.HonestMAPE, pay.MAPE(honest, honestEst))
		r.Done = append(r.Done, res.Done)
	}
	return r, nil
}

// String renders the report.
func (r E12Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E12 Performance-tracked estimates vs a spammer (§5.3 refinement)\n")
	fmt.Fprintf(&b, "    %-10s %6s %14s %12s %12s\n",
		"tracking", "done", "spam est($)", "spam pay($)", "honest MAPE")
	for i := range r.Tracking {
		fmt.Fprintf(&b, "    %-10v %6v %14.2f %12.2f %11.1f%%\n",
			r.Tracking[i], r.Done[i], r.SpamEstimate[i], r.SpamActual[i], r.HonestMAPE[i])
	}
	fmt.Fprintf(&b, "    (tracking shrinks the spammer's projected earnings toward reality)\n")
	return b.String()
}
