package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"crowdfill/internal/constraint"
	"crowdfill/internal/crowd"
	"crowdfill/internal/model"
	"crowdfill/internal/pay"
)

// DefaultSeed selects the default representative run. Chosen (like the
// paper's "representative run") as a typical, well-behaved session; other
// seeds vary in duration, churn, and estimate accuracy.
const DefaultSeed = 11

// RepresentativeConfig reproduces §6's representative run: five workers of
// varying diligence collecting 20 soccer players with caps in [80, 99] from
// an empty table, majority-of-3 scoring, a $10 budget, and dual-weighted
// allocation. The ground truth holds 220 players (the paper estimates >200
// eligible players), so key discovery never becomes the bottleneck — which
// is exactly why the paper observed no "slowdown" and dual-weighted equalled
// column-weighted allocation.
func RepresentativeConfig(seed int64) SimConfig {
	truth := crowd.SoccerPlayers(seed, 220)
	sec := func(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }
	fillTimes := func(scale float64) []time.Duration {
		// name, nationality, position, caps, goals, dob — names and dates
		// take longer than picking a position.
		base := []float64{10, 6, 4, 7, 7, 12}
		out := make([]time.Duration, len(base))
		for i, b := range base {
			out[i] = sec(b * scale)
		}
		return out
	}
	workers := []crowd.Spec{
		{Name: "worker1", Knowledge: 0.85, FillAccuracy: 0.97, VoteAccuracy: 0.96,
			VotePreference: 0.55, ResearchProb: 0.4, ReconsiderProb: 0.15, FillTime: fillTimes(1.0), VoteTime: sec(3), Seed: seed*31 + 1},
		{Name: "worker2", Knowledge: 0.70, FillAccuracy: 0.95, VoteAccuracy: 0.95,
			VotePreference: 0.65, ResearchProb: 0.4, ReconsiderProb: 0.15, FillTime: fillTimes(1.3), VoteTime: sec(4), Seed: seed*31 + 2},
		{Name: "worker3", Knowledge: 0.60, FillAccuracy: 0.96, VoteAccuracy: 0.95,
			VotePreference: 0, ResearchProb: 0, FillTime: fillTimes(1.1), VoteTime: sec(4), Seed: seed*31 + 3},
		{Name: "worker4", Knowledge: 0.75, FillAccuracy: 0.93, VoteAccuracy: 0.94,
			VotePreference: 0.75, ResearchProb: 0.5, ReconsiderProb: 0.15, FillTime: fillTimes(1.6), VoteTime: sec(5), Seed: seed*31 + 4},
		{Name: "worker5", Knowledge: 0.15, FillAccuracy: 0.92, VoteAccuracy: 0.93,
			VotePreference: 0.6, ResearchProb: 0.3, ReconsiderProb: 0.1, FillTime: fillTimes(3.0), VoteTime: sec(8), Seed: seed*31 + 5},
	}
	return SimConfig{
		Truth:    truth,
		Template: constraint.Cardinality(truth.Schema, 20),
		Score:    model.MajorityShortcut(3),
		Budget:   10,
		Scheme:   pay.DualWeighted,
		Workers:  workers,
		// The paper's guard against excessive voting (§3.4).
		MaxVotesPerRow: 5,
	}
}

// E1Report is §6's "overall effectiveness" summary (in-text table).
type E1Report struct {
	Duration      time.Duration
	FinalRows     int
	CandidateRows int
	DownvotedRows int
	ExtraRows     int
	Accuracy      float64
	Done          bool
}

// E1 summarizes a representative run's overall effectiveness.
func E1(res *SimResult) E1Report {
	extra := res.CandidateRows - res.FinalRows - res.DownvotedRows
	if extra < 0 {
		extra = 0
	}
	return E1Report{
		Duration:      res.Duration.Round(time.Second),
		FinalRows:     res.FinalRows,
		CandidateRows: res.CandidateRows,
		DownvotedRows: res.DownvotedRows,
		ExtraRows:     extra,
		Accuracy:      res.Accuracy,
		Done:          res.Done,
	}
}

// String renders the report in the paper's style.
func (r E1Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E1  Overall effectiveness (representative run)\n")
	fmt.Fprintf(&b, "    collection time        %v\n", r.Duration)
	fmt.Fprintf(&b, "    final rows             %d\n", r.FinalRows)
	fmt.Fprintf(&b, "    candidate rows         %d\n", r.CandidateRows)
	fmt.Fprintf(&b, "    rows downvoted >=2x    %d\n", r.DownvotedRows)
	fmt.Fprintf(&b, "    extra rows (conflicts) %d\n", r.ExtraRows)
	fmt.Fprintf(&b, "    final-row accuracy     %.1f%%\n", r.Accuracy*100)
	return b.String()
}

// E2Report is §6's worker-compensation table under dual-weighted allocation.
type E2Report struct {
	Scheme  pay.Scheme
	Budget  float64
	Workers []WorkerReport // sorted by actual pay ascending
	ZKey    float64        // fitted z for the first key column
}

// E2 reports per-worker compensation from a run.
func E2(res *SimResult) E2Report {
	ws := append([]WorkerReport(nil), res.Workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Actual < ws[j].Actual })
	var z float64
	if res.Alloc != nil && len(res.Alloc.Weights.Z) > 0 {
		z = res.Alloc.Weights.Z[0]
	}
	return E2Report{Scheme: res.Alloc.Scheme, Budget: 10, Workers: ws, ZKey: z}
}

// String renders the report.
func (r E2Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E2  Worker compensation (%s allocation)\n", r.Scheme)
	fmt.Fprintf(&b, "    %-10s %8s %8s %8s %8s %8s\n", "worker", "pay($)", "actions", "fills", "up", "down")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, "    %-10s %8.2f %8d %8d %8d %8d\n",
			w.Name, w.Actual, w.Actions, w.Fills, w.Upvotes, w.Downvotes)
	}
	fmt.Fprintf(&b, "    fitted z (first key column): %.3f\n", r.ZKey)
	return b.String()
}

// E3Report is Figure 5: actual vs raw-estimated vs corrected-estimated
// compensation per worker.
type E3Report struct {
	Workers       []WorkerReport
	MAPERaw       float64
	MAPECorrected float64
}

// E3 compares estimates against actual compensation (Figure 5).
func E3(res *SimResult) E3Report {
	return E3Report{
		Workers:       res.Workers,
		MAPERaw:       pay.MAPE(Actuals(res.Workers), RawEstimates(res.Workers)),
		MAPECorrected: pay.MAPE(Actuals(res.Workers), CorrectedEstimates(res.Workers)),
	}
}

// String renders the report (the bar values of Figure 5).
func (r E3Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3  Figure 5: accuracy of estimated compensation\n")
	fmt.Fprintf(&b, "    %-10s %10s %12s %14s\n", "worker", "actual($)", "estimate($)", "corrected($)")
	for _, w := range r.Workers {
		fmt.Fprintf(&b, "    %-10s %10.2f %12.2f %14.2f\n",
			w.Name, w.Actual, w.RawEstimate, w.CorrectedEstimate)
	}
	fmt.Fprintf(&b, "    MAPE raw %.1f%%   corrected %.1f%%   (paper: 16.1%% / 9.9%%)\n",
		r.MAPERaw, r.MAPECorrected)
	return b.String()
}

// E4Report compares dual-weighted against uniform allocation over the same
// trace (§6 "comparing allocation schemes").
type E4Report struct {
	Workers    []string
	Dual       []float64
	Uniform    []float64
	MaxRelDiff float64 // largest |uniform-dual|/dual (paper: >25% for the non-voter)
	MaxWorker  string
}

// E4 recomputes the run's compensation uniformly and reports the deltas.
func E4(res *SimResult) (E4Report, error) {
	uni, err := res.Core.ComputePayWith(pay.Uniform)
	if err != nil {
		return E4Report{}, err
	}
	r := E4Report{}
	for _, w := range res.Workers {
		r.Workers = append(r.Workers, w.Name)
		d := w.Actual
		u := uni.PerWorker[w.Name]
		r.Dual = append(r.Dual, d)
		r.Uniform = append(r.Uniform, u)
		if d > 0 {
			rel := (u - d) / d
			if rel < 0 {
				rel = -rel
			}
			if rel > r.MaxRelDiff {
				r.MaxRelDiff = rel
				r.MaxWorker = w.Name
			}
		}
	}
	return r, nil
}

// String renders the report.
func (r E4Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E4  Allocation scheme comparison on one trace\n")
	fmt.Fprintf(&b, "    %-10s %12s %12s %8s\n", "worker", "dual($)", "uniform($)", "diff%%")
	for i, w := range r.Workers {
		diff := 0.0
		if r.Dual[i] > 0 {
			diff = (r.Uniform[i] - r.Dual[i]) / r.Dual[i] * 100
		}
		fmt.Fprintf(&b, "    %-10s %12.2f %12.2f %7.1f%%\n", w, r.Dual[i], r.Uniform[i], diff)
	}
	fmt.Fprintf(&b, "    largest relative shift: %.1f%% (%s)  (paper: >25%% for the non-voting worker)\n",
		r.MaxRelDiff*100, r.MaxWorker)
	return b.String()
}

// E5Report is §6's estimation-accuracy-by-scheme comparison across many
// experiments (paper: ~3% uniform, ~16% column-weighted, ~25% dual-weighted).
type E5Report struct {
	Schemes []pay.Scheme
	MAPE    []float64 // mean raw MAPE per scheme
	Runs    int
}

// E5 runs several workloads under each allocation scheme and averages the
// raw estimation MAPE.
func E5(seeds []int64) (E5Report, error) {
	schemes := []pay.Scheme{pay.Uniform, pay.ColumnWeighted, pay.DualWeighted}
	report := E5Report{Schemes: schemes, MAPE: make([]float64, len(schemes))}
	counts := make([]int, len(schemes))
	for _, seed := range seeds {
		for _, mk := range []func(int64) SimConfig{soccerWorkload, productWorkload} {
			for si, scheme := range schemes {
				cfg := mk(seed)
				cfg.Scheme = scheme
				res, err := Run(cfg)
				if err != nil {
					return E5Report{}, err
				}
				if !res.Done {
					continue // a stalled run yields no final compensation
				}
				report.MAPE[si] += pay.MAPE(Actuals(res.Workers), RawEstimates(res.Workers))
				counts[si]++
				report.Runs++
			}
		}
	}
	for i := range report.MAPE {
		if counts[i] > 0 {
			report.MAPE[i] /= float64(counts[i])
		}
	}
	return report, nil
}

// soccerWorkload is a smaller, cleaner soccer run for the multi-run
// estimation experiments: diligent volunteers with high accuracy, like the
// paper's locally-recruited workers.
func soccerWorkload(seed int64) SimConfig {
	cfg := RepresentativeConfig(seed)
	cfg.Template = constraint.Cardinality(cfg.Truth.Schema, 12)
	cfg.Workers = cfg.Workers[:4]
	for i := range cfg.Workers {
		cfg.Workers[i].Knowledge = 0.85
		cfg.Workers[i].FillAccuracy = 0.99
		cfg.Workers[i].VoteAccuracy = 0.99
		cfg.Workers[i].ResearchProb = 0.9
		cfg.Workers[i].ReconsiderProb = 0.3
		if cfg.Workers[i].VotePreference > 0 {
			cfg.Workers[i].VotePreference = 0.5
		}
	}
	return cfg
}

// productWorkload varies the schema (a product catalog), per §6's "different
// schemas and workloads".
func productWorkload(seed int64) SimConfig {
	schema := model.MustSchema("Product", []model.Column{
		{Name: "sku", Type: model.TypeString},
		{Name: "category", Type: model.TypeString, Domain: []string{"audio", "video", "home", "toys"}},
		{Name: "price", Type: model.TypeFloat},
		{Name: "stock", Type: model.TypeInt},
	}, "sku")
	truth := crowd.Generic(seed+1000, schema, 120)
	sec := func(n float64) time.Duration { return time.Duration(n * float64(time.Second)) }
	workers := []crowd.Spec{
		{Name: "worker1", Knowledge: 0.9, FillAccuracy: 0.99, VoteAccuracy: 0.99, VotePreference: 0.5,
			ResearchProb: 0.9, ReconsiderProb: 0.3, FillTime: []time.Duration{sec(8), sec(4), sec(6), sec(5)}, VoteTime: sec(3), Seed: seed*17 + 1},
		{Name: "worker2", Knowledge: 0.85, FillAccuracy: 0.99, VoteAccuracy: 0.99, VotePreference: 0.6,
			ResearchProb: 0.9, ReconsiderProb: 0.3, FillTime: []time.Duration{sec(11), sec(5), sec(8), sec(6)}, VoteTime: sec(4), Seed: seed*17 + 2},
		{Name: "worker3", Knowledge: 0.8, FillAccuracy: 0.99, VoteAccuracy: 0.99, VotePreference: 0.7,
			ResearchProb: 0.9, ReconsiderProb: 0.3, FillTime: []time.Duration{sec(9), sec(5), sec(7), sec(6)}, VoteTime: sec(4), Seed: seed*17 + 3},
	}
	return SimConfig{
		Truth:          truth,
		Template:       constraint.Cardinality(schema, 10),
		Score:          model.MajorityShortcut(3),
		Budget:         8,
		Scheme:         pay.Uniform,
		Workers:        workers,
		MaxVotesPerRow: 5,
	}
}

// String renders the report.
func (r E5Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E5  Estimation MAPE by allocation scheme (%d runs)\n", r.Runs)
	for i, s := range r.Schemes {
		fmt.Fprintf(&b, "    %-16s %6.1f%%\n", s.String(), r.MAPE[i])
	}
	fmt.Fprintf(&b, "    (paper: ~3%% uniform, ~16%% column-weighted, ~25%% dual-weighted)\n")
	return b.String()
}

// E6Report is Figure 6: earning-rate curves for two representative workers
// under the run's weighted allocation and under uniform allocation.
type E6Report struct {
	Workers  [2]string
	Weighted [2][]CurvePoint
	Uniform  [2][]CurvePoint
	// Stability is the mean absolute deviation of each curve from the
	// steady-earning diagonal (lower = steadier earning rate).
	StabilityWeighted [2]float64
	StabilityUniform  [2]float64
	Duration          time.Duration
}

// E6 extracts earning-rate curves for the two busiest workers.
func E6(res *SimResult) (E6Report, error) {
	uni, err := res.Core.ComputePayWith(pay.Uniform)
	if err != nil {
		return E6Report{}, err
	}
	ws := append([]WorkerReport(nil), res.Workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].Actions > ws[j].Actions })
	if len(ws) < 2 {
		return E6Report{}, fmt.Errorf("exp: E6 needs at least two workers")
	}
	r := E6Report{Duration: res.Duration}
	trace := res.Core.Trace()
	start := res.Core.StartTime()
	for i := 0; i < 2; i++ {
		name := ws[i].Name
		r.Workers[i] = name
		r.Weighted[i] = EarningCurve(trace, res.Alloc.PerMessage, name, start)
		r.Uniform[i] = EarningCurve(trace, uni.PerMessage, name, start)
		r.StabilityWeighted[i] = curveDeviation(r.Weighted[i], res.Duration)
		r.StabilityUniform[i] = curveDeviation(r.Uniform[i], res.Duration)
	}
	return r, nil
}

// curveDeviation measures the mean absolute deviation of a cumulative
// earning curve from the perfectly steady diagonal earning rate.
func curveDeviation(curve []CurvePoint, total time.Duration) float64 {
	if len(curve) == 0 || total <= 0 {
		return 0
	}
	var sum float64
	for _, p := range curve {
		ideal := float64(p.T) / float64(total)
		d := p.Frac - ideal
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(curve))
}

// String renders the curves as sampled series (one row per 10% of run time).
func (r E6Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "E6  Figure 6: earning rates, weighted vs uniform\n")
	fmt.Fprintf(&b, "    %-8s %10s %10s %10s %10s\n", "t/T",
		r.Workers[0]+" wtd", r.Workers[0]+" uni", r.Workers[1]+" wtd", r.Workers[1]+" uni")
	for step := 0; step <= 10; step++ {
		frac := float64(step) / 10
		t := time.Duration(float64(r.Duration) * frac)
		fmt.Fprintf(&b, "    %-8.1f %10.2f %10.2f %10.2f %10.2f\n", frac,
			sampleCurve(r.Weighted[0], t), sampleCurve(r.Uniform[0], t),
			sampleCurve(r.Weighted[1], t), sampleCurve(r.Uniform[1], t))
	}
	fmt.Fprintf(&b, "    deviation from steady rate: %s wtd %.3f uni %.3f | %s wtd %.3f uni %.3f\n",
		r.Workers[0], r.StabilityWeighted[0], r.StabilityUniform[0],
		r.Workers[1], r.StabilityWeighted[1], r.StabilityUniform[1])
	return b.String()
}

// sampleCurve returns the cumulative fraction earned at elapsed time t.
func sampleCurve(curve []CurvePoint, t time.Duration) float64 {
	frac := 0.0
	for _, p := range curve {
		if p.T > t {
			break
		}
		frac = p.Frac
	}
	return frac
}
