// Package exp is the experiment harness that regenerates every table and
// figure of the paper's §6 evaluation (see DESIGN.md's experiment index).
// Runs are deterministic: a virtual clock drives simulated workers against
// the real server core, and all compensation statistics derive from virtual
// timestamps.
package exp

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"crowdfill/internal/client"
	"crowdfill/internal/constraint"
	"crowdfill/internal/crowd"
	"crowdfill/internal/metrics"
	"crowdfill/internal/model"
	"crowdfill/internal/pay"
	"crowdfill/internal/server"
	"crowdfill/internal/simclock"
	"crowdfill/internal/sync"
)

// SimConfig describes one simulated data-collection run.
type SimConfig struct {
	// Truth is the ground truth workers partially know.
	Truth *crowd.Dataset
	// Template is the constraint; zero-value means Cardinality(20).
	Template constraint.Template
	// Score defaults to the paper's majority-of-3 scheme.
	Score model.ScoreFunc
	// Budget is the monetary budget B (dollars).
	Budget float64
	// Scheme drives both the estimator during the run and the final
	// allocation.
	Scheme pay.Scheme
	// Workers are the simulated crowd.
	Workers []crowd.Spec
	// MaxVotesPerRow caps votes per row at the clients (0 = unlimited).
	MaxVotesPerRow int
	// MaxVirtual stops a run that cannot converge (default 4h virtual).
	MaxVirtual time.Duration
	// TrackPerformance enables the estimator's per-worker performance
	// scaling (§5.3's noted refinement).
	TrackPerformance bool
	// Latency, when positive, delays each server→client delivery by a
	// jittered one-way delay (per-link FIFO order preserved). Zero means
	// instantaneous propagation. Client→server stays immediate: the server
	// timestamp is what compensation uses either way, and the interesting
	// concurrency effects (stale views, conflicting fills, §2.4.1) come
	// from how old each worker's table copy is.
	Latency time.Duration
}

// WorkerReport aggregates one worker's run outcome.
type WorkerReport struct {
	Name      string
	Fills     int
	Upvotes   int
	Downvotes int
	// Actions counts paid actions: fills and manual votes (the paper's "54
	// actions (fill, upvote, and downvote combined)").
	Actions int
	// Actual is the final compensation; RawEstimate sums the estimates
	// shown at action time; CorrectedEstimate sums only estimates of
	// actions that ended up contributing (Figure 5's corrected bars).
	Actual            float64
	RawEstimate       float64
	CorrectedEstimate float64
}

// CurvePoint is one point of a Figure 6 earning-rate curve.
type CurvePoint struct {
	T    time.Duration // elapsed virtual time
	Frac float64       // cumulative fraction of the worker's final pay
}

// SimResult is the outcome of one run.
type SimResult struct {
	Done          bool
	Duration      time.Duration
	CandidateRows int
	FinalRows     int
	// Accuracy is the fraction of final rows exactly matching ground truth.
	Accuracy float64
	// DownvotedRows counts candidate rows with ≥ 2 downvotes (the paper
	// reports "two rows were downvoted twice or more").
	DownvotedRows int
	Workers       []WorkerReport
	Alloc         *pay.Allocation
	Core          *server.Core
	// Metrics is the run's private registry: every simulated run reports
	// through the same instrument set as the live server (message-type
	// counters, repair histograms, estimate-coalescing counters), so
	// experiment assertions and operational dashboards read the same series.
	Metrics *metrics.Registry
	// Recorder is the run's flight recorder (repair overruns, drops).
	Recorder *metrics.Recorder
}

// Run executes one simulated collection and computes all reports.
func Run(cfg SimConfig) (*SimResult, error) {
	if cfg.Truth == nil {
		return nil, errors.New("exp: config needs a ground truth dataset")
	}
	if cfg.Score == nil {
		cfg.Score = model.MajorityShortcut(3)
	}
	if cfg.Template.Schema == nil {
		cfg.Template = constraint.Cardinality(cfg.Truth.Schema, 20)
	}
	if cfg.MaxVirtual == 0 {
		cfg.MaxVirtual = 4 * time.Hour
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("exp: config needs workers")
	}

	clk := simclock.NewSim(0)
	// Per-run registry and recorder: run isolation keeps counts exact for
	// assertions, and the sim exercises the same instrumentation paths as
	// the live server (the registry holds only atomics, so determinism is
	// untouched; the recorder's wall timestamps are observability metadata,
	// not simulation state).
	reg := metrics.NewRegistry()
	rec := metrics.NewRecorder(256)
	core, err := server.New(server.Config{
		Schema:           cfg.Truth.Schema,
		Score:            cfg.Score,
		Template:         cfg.Template,
		Budget:           cfg.Budget,
		Scheme:           cfg.Scheme,
		MaxVotesPerRow:   cfg.MaxVotesPerRow,
		Clock:            clk,
		TrackPerformance: cfg.TrackPerformance,
		Metrics:          server.NewMetrics(reg, rec),
	})
	if err != nil {
		return nil, err
	}

	clients := make(map[string]*client.Client, len(cfg.Workers))
	workers := make([]*crowd.Worker, len(cfg.Workers))
	rng := rand.New(rand.NewSource(int64(len(cfg.Workers))*1_000_003 + int64(cfg.Latency)))
	// lastDue keeps per-link FIFO delivery under jittered latency (the
	// model's reliable in-order assumption, §2.4).
	lastDue := make(map[string]int64)
	deliver := func(out []server.Outbound) {
		for _, o := range out {
			c, ok := clients[o.To]
			if !ok {
				continue
			}
			if cfg.Latency <= 0 {
				if err := c.HandleServer(o.Msg); err != nil {
					panic(fmt.Sprintf("exp: deliver: %v", err))
				}
				continue
			}
			delay := time.Duration(float64(cfg.Latency) * (0.5 + rng.Float64()))
			due := clk.Now() + int64(delay)
			if due <= lastDue[o.To] {
				due = lastDue[o.To] + 1
			}
			lastDue[o.To] = due
			m := o.Msg
			clk.At(due, func() {
				if err := c.HandleServer(m); err != nil {
					panic(fmt.Sprintf("exp: delayed deliver: %v", err))
				}
			})
		}
	}
	for i, spec := range cfg.Workers {
		c, cerr := client.New(client.Config{
			ID:             spec.Name,
			Worker:         spec.Name,
			Schema:         cfg.Truth.Schema,
			MaxVotesPerRow: cfg.MaxVotesPerRow,
		})
		if cerr != nil {
			return nil, cerr
		}
		clients[spec.Name] = c
		workers[i] = crowd.NewWorker(spec, cfg.Truth)
		deliver(core.AddClient(spec.Name, spec.Name))
	}

	var doneAt int64 = -1
	maxNs := int64(cfg.MaxVirtual)

	// Each worker is a decide → think → commit loop on the virtual clock.
	var step func(i int)
	commit := func(i int, d crowd.Decision) {
		if core.Done() || clk.Now() > maxNs {
			return
		}
		c := clients[cfg.Workers[i].Name]
		var msgs []sync.Message
		var aerr error
		switch d.Kind {
		case crowd.ActFill:
			msgs, aerr = c.Fill(d.Row, d.Col, d.Value)
		case crowd.ActUpvote:
			var m sync.Message
			m, aerr = c.Upvote(d.Row)
			if aerr == nil {
				msgs = []sync.Message{m}
			}
		case crowd.ActDownvote:
			var m sync.Message
			m, aerr = c.Downvote(d.Row)
			if aerr == nil {
				msgs = []sync.Message{m}
			}
		case crowd.ActReconsider:
			row := c.Replica().Table().Get(d.Row)
			if row == nil {
				break
			}
			vec := row.Vec.Clone()
			var undo, revote sync.Message
			undo, aerr = c.UndoVote(vec)
			if aerr != nil {
				break
			}
			if d.Up {
				revote, aerr = c.Upvote(d.Row)
			} else {
				revote, aerr = c.Downvote(d.Row)
			}
			if aerr != nil {
				// The undo alone still counts; send it.
				msgs = []sync.Message{undo}
				aerr = nil
				break
			}
			msgs = []sync.Message{undo, revote}
		}
		// Stale decisions (the row changed while thinking) just lose the
		// turn — the human analogue re-reads the table.
		if aerr == nil {
			for _, m := range msgs {
				out, herr := core.Handle(cfg.Workers[i].Name, m)
				if herr != nil {
					panic(fmt.Sprintf("exp: handle: %v", herr))
				}
				deliver(out)
			}
		}
		if core.Done() {
			if doneAt < 0 {
				doneAt = clk.Now()
			}
			return
		}
		step(i)
	}
	step = func(i int) {
		if core.Done() || clk.Now() > maxNs {
			return
		}
		d := workers[i].Decide(clients[cfg.Workers[i].Name])
		clk.After(d.Think, func() { commit(i, d) })
	}
	for i := range workers {
		// Stagger arrivals slightly so first actions don't tie.
		i := i
		clk.After(time.Duration(i)*731*time.Millisecond, func() { step(i) })
	}

	for clk.Pending() > 0 && !core.Done() && clk.Now() <= maxNs {
		clk.Step()
	}
	if core.Done() && doneAt < 0 {
		doneAt = clk.Now()
	}

	res := &SimResult{
		Done:          core.Done(),
		CandidateRows: core.Master().Table().Len(),
		Core:          core,
		Metrics:       reg,
		Recorder:      rec,
	}
	if doneAt >= 0 {
		res.Duration = time.Duration(doneAt - core.StartTime())
	} else {
		res.Duration = time.Duration(clk.Now() - core.StartTime())
	}
	final := core.FinalTable()
	res.FinalRows = len(final)
	correct := 0
	for _, r := range final {
		if cfg.Truth.Contains(r.Vec) {
			correct++
		}
	}
	if len(final) > 0 {
		res.Accuracy = float64(correct) / float64(len(final))
	}
	core.Master().Table().Each(func(r *model.Row) {
		if r.Down >= 2 {
			res.DownvotedRows++
		}
	})

	alloc, err := core.ComputePay()
	if err != nil {
		return nil, err
	}
	res.Alloc = alloc
	res.Workers = workerReports(cfg, core, alloc)
	return res, nil
}

// workerReports builds per-worker aggregates from the trace, the allocation,
// and the estimator records.
func workerReports(cfg SimConfig, core *server.Core, alloc *pay.Allocation) []WorkerReport {
	byName := make(map[string]*WorkerReport)
	for _, spec := range cfg.Workers {
		byName[spec.Name] = &WorkerReport{Name: spec.Name}
	}
	for _, m := range core.Trace() {
		r := byName[m.Worker]
		if r == nil {
			continue
		}
		switch m.Type {
		case sync.MsgReplace:
			r.Fills++
			r.Actions++
		case sync.MsgUpvote:
			if !m.Auto {
				r.Upvotes++
				r.Actions++
			}
		case sync.MsgDownvote:
			r.Downvotes++
			r.Actions++
		default:
			// Inserts, unvotes and server-originated traffic earn no
			// per-worker action credit.
		}
	}
	for w, amt := range alloc.PerWorker {
		if r := byName[w]; r != nil {
			r.Actual = amt
		}
	}
	for _, rec := range core.Estimator().Records {
		r := byName[rec.Worker]
		if r == nil {
			continue
		}
		r.RawEstimate += rec.Estimate
		if rec.TraceIdx < len(alloc.PerMessage) && alloc.PerMessage[rec.TraceIdx] > 0 {
			r.CorrectedEstimate += rec.Estimate
		}
	}
	out := make([]WorkerReport, 0, len(byName))
	for _, r := range byName {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// EarningCurve computes a worker's cumulative earning fraction over time
// under the given per-message allocation (Figure 6). The curve starts at
// (0, 0) and ends at (duration, 1) for workers with nonzero pay.
func EarningCurve(trace []sync.Message, perMessage []float64, worker string, start int64) []CurvePoint {
	var total float64
	for i, m := range trace {
		if m.Worker == worker {
			total += perMessage[i]
		}
	}
	curve := []CurvePoint{{T: 0, Frac: 0}}
	if total == 0 {
		return curve
	}
	var cum float64
	for i, m := range trace {
		if m.Worker != worker || perMessage[i] == 0 {
			continue
		}
		cum += perMessage[i]
		curve = append(curve, CurvePoint{
			T:    time.Duration(m.TS - start),
			Frac: cum / total,
		})
	}
	return curve
}

// RawEstimates / CorrectedEstimates project worker reports into the maps
// MAPE expects.
func RawEstimates(ws []WorkerReport) map[string]float64 {
	out := make(map[string]float64, len(ws))
	for _, w := range ws {
		out[w.Name] = w.RawEstimate
	}
	return out
}

// CorrectedEstimates returns per-worker corrected estimate sums.
func CorrectedEstimates(ws []WorkerReport) map[string]float64 {
	out := make(map[string]float64, len(ws))
	for _, w := range ws {
		out[w.Name] = w.CorrectedEstimate
	}
	return out
}

// Actuals returns per-worker actual compensation.
func Actuals(ws []WorkerReport) map[string]float64 {
	out := make(map[string]float64, len(ws))
	for _, w := range ws {
		out[w.Name] = w.Actual
	}
	return out
}
