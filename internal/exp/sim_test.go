package exp

import (
	"fmt"
	"strings"
	gosync "sync"
	"testing"
	"time"

	"crowdfill/internal/crowd"
	"crowdfill/internal/pay"
)

// repOnce caches the representative run: several tests inspect the same run,
// exactly like the paper derives E1–E4 and Figure 5/6 from one session.
var (
	repOnce sync_Once
	repRes  *SimResult
	repErr  error
)

type sync_Once = gosync.Once

func representative(t *testing.T) *SimResult {
	t.Helper()
	repOnce.Do(func() {
		repRes, repErr = Run(RepresentativeConfig(DefaultSeed))
	})
	if repErr != nil {
		t.Fatalf("representative run: %v", repErr)
	}
	return repRes
}

func TestRepresentativeRunShape(t *testing.T) {
	res := representative(t)
	if !res.Done {
		t.Fatalf("representative run did not converge")
	}
	if res.FinalRows != 20 {
		t.Fatalf("final rows = %d, want 20", res.FinalRows)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("accuracy = %.2f, want >= 0.9", res.Accuracy)
	}
	// Paper: 10m44s; shape target is minutes, not hours or seconds.
	if res.Duration < 2*time.Minute || res.Duration > 40*time.Minute {
		t.Fatalf("duration = %v, outside plausible range", res.Duration)
	}
	// Paper: 23 candidate rows for 20 final.
	if res.CandidateRows < 20 || res.CandidateRows > 45 {
		t.Fatalf("candidate rows = %d", res.CandidateRows)
	}
	if !res.Core.Planner().CheckPRI(res.Core.Master()) {
		t.Fatalf("PRI violated at end of run")
	}
	if !res.Core.Satisfied() {
		t.Fatalf("constraint unsatisfied at end of run")
	}
}

func TestRepresentativeCompensationShape(t *testing.T) {
	res := representative(t)
	if res.Alloc.Allocated > 10+1e-9 {
		t.Fatalf("allocated %.3f exceeds the $10 budget", res.Alloc.Allocated)
	}
	if res.Alloc.Allocated < 7 {
		t.Fatalf("allocated %.3f — most of the budget should be distributable", res.Alloc.Allocated)
	}
	// The paper's headline: wide pay range tracking contribution.
	var minPay, maxPay float64 = 1e9, 0
	var minName, maxName string
	for _, w := range res.Workers {
		if w.Actual < minPay {
			minPay, minName = w.Actual, w.Name
		}
		if w.Actual > maxPay {
			maxName = w.Name
			maxPay = w.Actual
		}
	}
	if maxPay < 2*minPay {
		t.Fatalf("pay spread too narrow: %.2f..%.2f", minPay, maxPay)
	}
	// More pay should go with more actions for the extremes.
	var minActions, maxActions int
	for _, w := range res.Workers {
		if w.Name == minName {
			minActions = w.Actions
		}
		if w.Name == maxName {
			maxActions = w.Actions
		}
	}
	if maxActions <= minActions {
		t.Fatalf("top earner (%s, %d actions) did not out-act bottom earner (%s, %d)",
			maxName, maxActions, minName, minActions)
	}
}

func TestRepresentativeDeterminism(t *testing.T) {
	a, err := Run(RepresentativeConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RepresentativeConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.CandidateRows != b.CandidateRows || a.FinalRows != b.FinalRows {
		t.Fatalf("same seed must reproduce the run exactly: %+v vs %+v", a, b)
	}
	for i := range a.Workers {
		if a.Workers[i] != b.Workers[i] {
			t.Fatalf("worker report differs: %+v vs %+v", a.Workers[i], b.Workers[i])
		}
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(SimConfig{}); err == nil {
		t.Errorf("missing truth should fail")
	}
	cfg := RepresentativeConfig(1)
	cfg.Workers = nil
	if _, err := Run(cfg); err == nil {
		t.Errorf("missing workers should fail")
	}
}

func TestEarningCurveShape(t *testing.T) {
	res := representative(t)
	for _, w := range res.Workers {
		curve := EarningCurve(res.Core.Trace(), res.Alloc.PerMessage, w.Name, res.Core.StartTime())
		if len(curve) == 0 || curve[0].Frac != 0 {
			t.Fatalf("%s: curve must start at 0: %+v", w.Name, curve[:1])
		}
		for i := 1; i < len(curve); i++ {
			if curve[i].Frac < curve[i-1].Frac || curve[i].T < curve[i-1].T {
				t.Fatalf("%s: curve not monotone at %d", w.Name, i)
			}
		}
		if w.Actual > 0 {
			last := curve[len(curve)-1].Frac
			if last < 0.999 || last > 1.001 {
				t.Fatalf("%s: curve must end at 1, got %v", w.Name, last)
			}
		}
	}
	// Unknown worker: just the origin point.
	if got := EarningCurve(res.Core.Trace(), res.Alloc.PerMessage, "ghost", 0); len(got) != 1 {
		t.Fatalf("ghost curve = %v", got)
	}
}

// TestSpammerResistance is an §8-motivated ablation: adding a spammer must
// not poison the final table — honest votes push garbage out.
func TestSpammerResistance(t *testing.T) {
	cfg := RepresentativeConfig(3)
	cfg.Workers = append(cfg.Workers, crowd.Spec{
		Name: "spammer", Spammer: true, Seed: 999,
	})
	cfg.MaxVirtual = 6 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Skipf("spammer run did not converge within the budget (seed-dependent)")
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("accuracy with spammer = %.2f, want >= 0.85", res.Accuracy)
	}
	// The spammer's pay share must be far below their action share.
	var spamPay, totalPay float64
	var spamActs, totalActs int
	for _, w := range res.Workers {
		totalPay += w.Actual
		totalActs += w.Actions
		if w.Name == "spammer" {
			spamPay = w.Actual
			spamActs = w.Actions
		}
	}
	if spamActs == 0 {
		t.Skipf("spammer never acted")
	}
	payShare := spamPay / totalPay
	actShare := float64(spamActs) / float64(totalActs)
	if payShare > actShare {
		t.Fatalf("contribution-based pay should punish spam: pay share %.2f > action share %.2f",
			payShare, actShare)
	}
}

func TestWorkerReportsConsistency(t *testing.T) {
	res := representative(t)
	var sumPay float64
	for _, w := range res.Workers {
		sumPay += w.Actual
		if w.Actual > 0 && w.Actions == 0 {
			t.Fatalf("%s paid without actions", w.Name)
		}
		if w.CorrectedEstimate > w.RawEstimate+1e-9 {
			t.Fatalf("%s: corrected estimate exceeds raw", w.Name)
		}
	}
	if diff := sumPay - res.Alloc.Allocated; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("worker pay sum %.6f != allocated %.6f", sumPay, res.Alloc.Allocated)
	}
}

func TestEstimatesHelpers(t *testing.T) {
	ws := []WorkerReport{
		{Name: "a", Actual: 1, RawEstimate: 2, CorrectedEstimate: 1.5},
		{Name: "b", Actual: 3, RawEstimate: 3.3, CorrectedEstimate: 3.1},
	}
	if got := Actuals(ws)["b"]; got != 3 {
		t.Errorf("Actuals = %v", got)
	}
	if got := RawEstimates(ws)["a"]; got != 2 {
		t.Errorf("RawEstimates = %v", got)
	}
	if got := CorrectedEstimates(ws)["a"]; got != 1.5 {
		t.Errorf("CorrectedEstimates = %v", got)
	}
	if m := pay.MAPE(Actuals(ws), RawEstimates(ws)); m <= 0 {
		t.Errorf("MAPE = %v", m)
	}
}

func TestReportStringsRender(t *testing.T) {
	res := representative(t)
	e4, err := E4(res)
	if err != nil {
		t.Fatal(err)
	}
	e6, err := E6(res)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"E1": E1(res).String(),
		"E2": E2(res).String(),
		"E3": E3(res).String(),
		"E4": e4.String(),
		"E6": e6.String(),
	} {
		if !strings.Contains(s, name) || len(s) < 50 {
			t.Errorf("%s report looks wrong:\n%s", name, s)
		}
	}
}

// TestSoakLargeCollection is a scale check: 10 workers collecting 50 rows
// from a 400-entity truth.
func TestSoakLargeCollection(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := RepresentativeConfig(2)
	cfg.Truth = crowd.SoccerPlayers(2, 400)
	cfg.Template = cfg.Template.WithCardinality(0) // keep schema
	cfg.Template.Rows = cfg.Template.Rows[:0]
	cfg.Template = cfg.Template.WithCardinality(50)
	base := cfg.Workers
	cfg.Workers = nil
	for i := 0; i < 10; i++ {
		spec := base[i%len(base)]
		spec.Name = fmt.Sprintf("worker%d", i+1)
		spec.Seed = 1000 + int64(i)
		cfg.Workers = append(cfg.Workers, spec)
	}
	cfg.MaxVirtual = 8 * time.Hour
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Done {
		t.Fatalf("soak run did not converge: %d/%d rows", res.FinalRows, 50)
	}
	if res.Accuracy < 0.9 {
		t.Fatalf("soak accuracy = %.2f", res.Accuracy)
	}
	if !res.Core.Planner().CheckPRI(res.Core.Master()) {
		t.Fatalf("PRI violated at scale")
	}
	if res.Alloc.Allocated > 10+1e-9 {
		t.Fatalf("budget exceeded at scale")
	}
}

// TestLatencyRunsDeterministic guards the broadcast-order fix: latency-
// injected runs must reproduce exactly (the server emits outbounds in
// sorted client order, so jitter draws are stable).
func TestLatencyRunsDeterministic(t *testing.T) {
	run := func() *SimResult {
		cfg := RepresentativeConfig(4)
		cfg.Latency = 5 * time.Second
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.CandidateRows != b.CandidateRows {
		t.Fatalf("latency runs diverged: %v/%d vs %v/%d",
			a.Duration, a.CandidateRows, b.Duration, b.CandidateRows)
	}
}
