package exp

import (
	"testing"

	"crowdfill/internal/sync"
)

// TestSimMetricsMatchTrace cross-checks the representative run's metrics
// snapshot against its trace: the simulation reports through the same
// instrument set as the live server, so the counters must agree exactly
// with the ground truth the deterministic run provides.
func TestSimMetricsMatchTrace(t *testing.T) {
	res := representative(t)
	if res.Metrics == nil || res.Recorder == nil {
		t.Fatalf("run has no metrics registry/recorder")
	}
	snap := res.Metrics.Snapshot()

	counter := func(name string) uint64 {
		for _, c := range snap.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	histCount := func(name string) uint64 {
		for _, h := range snap.Histograms {
			if h.Name == name {
				return h.Count
			}
		}
		return 0
	}

	// Per-type message counters must match the trace exactly.
	trace := res.Core.Trace()
	byType := make(map[sync.MsgType]uint64)
	for _, m := range trace {
		byType[m.Type]++
	}
	for typ, want := range byType {
		name := `crowdfill_core_msgs_total{type="` + typ.String() + `"}`
		if got := counter(name); got != want {
			t.Errorf("%s = %d, want %d (trace)", name, got, want)
		}
	}
	if len(byType) == 0 {
		t.Fatalf("empty trace — run produced no worker messages")
	}

	// One convergence loop per handled message, plus the §4.2 init repair.
	want := uint64(len(trace)) + 1
	if got := histCount("crowdfill_repair_ns"); got != want {
		t.Errorf("crowdfill_repair_ns count = %d, want %d (trace+init)", got, want)
	}

	// Every handled message makes exactly one estimate-broadcast decision.
	estDecisions := counter("crowdfill_estimate_bcasts_total") + counter("crowdfill_estimate_skipped_total")
	if estDecisions != uint64(len(trace)) {
		t.Errorf("estimate decisions = %d, want %d (one per handled message)", estDecisions, len(trace))
	}
	// The coalescing must actually suppress something on this workload.
	if counter("crowdfill_estimate_skipped_total") == 0 {
		t.Errorf("no estimate broadcasts were suppressed — coalescing not exercised")
	}

	// A clean simulated run drops no clients and overruns no repairs.
	for _, cause := range []string{"cursor-lag", "send-error", "write-deadline", "handler-reject"} {
		name := `crowdfill_client_drops_total{cause="` + cause + `"}`
		if got := counter(name); got != 0 {
			t.Errorf("%s = %d, want 0", name, got)
		}
	}
	if got := counter("crowdfill_repair_overruns_total"); got != 0 {
		t.Errorf("repair overruns = %d, want 0", got)
	}
	if got := res.Recorder.Total(); got != 0 {
		t.Errorf("flight recorder has %d events on a clean run: %+v", got, res.Recorder.Events())
	}

	// The run-long RepairStats gauges mirror the core's final counters.
	gauge := func(name string) int64 {
		for _, g := range snap.Gauges {
			if g.Name == name {
				return g.Value
			}
		}
		return -1
	}
	rs := res.Core.RepairStats()
	if got := gauge("crowdfill_repair_calls"); got != int64(rs.Repairs) {
		t.Errorf("crowdfill_repair_calls = %d, want %d", got, rs.Repairs)
	}
	if got := gauge("crowdfill_repair_inserts"); got != int64(rs.Inserts) {
		t.Errorf("crowdfill_repair_inserts = %d, want %d", got, rs.Inserts)
	}
	// All clients left? No: the sim never removes clients, so the gauge
	// still reports the full crowd.
	if got := gauge("crowdfill_core_clients"); got != int64(res.Core.Clients()) {
		t.Errorf("crowdfill_core_clients = %d, want %d", got, res.Core.Clients())
	}
}
