package constraint

import (
	"errors"
	"fmt"

	"crowdfill/internal/model"
)

// TemplateRow is one constraint-template row: one predicate per schema
// column. An all-Any row is an "empty" template row (a cardinality slot).
type TemplateRow []Pred

// IsValuesRow reports whether the row uses only OpAny/OpEq predicates (a
// values-constraint row, which the Central Client can pre-fill).
func (tr TemplateRow) IsValuesRow() bool {
	for _, p := range tr {
		if p.Op != OpAny && p.Op != OpEq {
			return false
		}
	}
	return true
}

// IsEmpty reports whether every predicate is Any.
func (tr TemplateRow) IsEmpty() bool {
	for _, p := range tr {
		if p.Op != OpAny {
			return false
		}
	}
	return true
}

// EqVector returns the vector of the row's OpEq cells — the value the
// Central Client seeds when inserting a row for this template row.
func (tr TemplateRow) EqVector() model.Vector {
	v := model.NewVector(len(tr))
	for i, p := range tr {
		if p.Op == OpEq {
			v[i] = model.Cell{Set: true, Val: p.Val}
		}
	}
	return v
}

// Template is a set of template rows over a schema — the unified form of the
// paper's cardinality, values, and predicates constraints (§2.3): the final
// table must contain, for each template row t, a unique row s with s ⊇* t.
type Template struct {
	Schema *model.Schema
	Rows   []TemplateRow
}

// Cardinality returns a template of n empty rows — the paper's cardinality
// constraint, absorbed into the values constraint as n empty template rows.
func Cardinality(s *model.Schema, n int) Template {
	t := Template{Schema: s}
	for i := 0; i < n; i++ {
		t.Rows = append(t.Rows, make(TemplateRow, s.NumColumns()))
	}
	return t
}

// ValuesTemplate builds a values constraint from partially-filled vectors
// (set cells become OpEq predicates).
func ValuesTemplate(s *model.Schema, rows ...model.Vector) (Template, error) {
	t := Template{Schema: s}
	for _, v := range rows {
		if len(v) != s.NumColumns() {
			return Template{}, fmt.Errorf("constraint: template row width %d, schema has %d columns", len(v), s.NumColumns())
		}
		tr := make(TemplateRow, s.NumColumns())
		for i, c := range v {
			if c.Set {
				tr[i] = Eq(c.Val)
			}
		}
		t.Rows = append(t.Rows, tr)
	}
	if err := t.Validate(); err != nil {
		return Template{}, err
	}
	return t, nil
}

// PredTemplate builds a predicates constraint from explicit rows.
func PredTemplate(s *model.Schema, rows ...TemplateRow) (Template, error) {
	t := Template{Schema: s, Rows: rows}
	if err := t.Validate(); err != nil {
		return Template{}, err
	}
	return t, nil
}

// WithCardinality pads the template with empty rows until it has at least n
// rows, absorbing a cardinality constraint into the values constraint.
func (t Template) WithCardinality(n int) Template {
	out := Template{Schema: t.Schema, Rows: append([]TemplateRow(nil), t.Rows...)}
	for len(out.Rows) < n {
		out.Rows = append(out.Rows, make(TemplateRow, t.Schema.NumColumns()))
	}
	return out
}

// Validate checks the template is well-formed: row widths match the schema,
// OpEq operands are valid column values, comparison predicates only appear
// on ordered types, and no two rows pin the same complete primary key (the
// paper assumes a satisfying final table exists).
func (t Template) Validate() error {
	if t.Schema == nil {
		return errors.New("constraint: template has no schema")
	}
	seenKeys := make(map[string]bool)
	for ri, tr := range t.Rows {
		if len(tr) != t.Schema.NumColumns() {
			return fmt.Errorf("constraint: template row %d has %d cells, schema has %d columns", ri, len(tr), t.Schema.NumColumns())
		}
		for ci, p := range tr {
			if p.Op == OpAny {
				continue
			}
			col := t.Schema.Columns[ci]
			canon, err := model.CanonicalValue(col.Type, p.Val)
			if err != nil {
				return fmt.Errorf("constraint: template row %d column %q: %w", ri, col.Name, err)
			}
			if p.Op == OpEq {
				if _, err := t.Schema.CheckValue(ci, p.Val); err != nil {
					return fmt.Errorf("constraint: template row %d: %w", ri, err)
				}
			}
			_ = canon
		}
		// Detect duplicate fully-pinned primary keys.
		eq := tr.EqVector()
		if eq.KeyComplete(t.Schema) {
			k := eq.KeyOf(t.Schema)
			if seenKeys[k] {
				return fmt.Errorf("constraint: template rows share the complete primary key of row %d", ri)
			}
			seenKeys[k] = true
		}
	}
	return nil
}

// MatchCandidate reports whether candidate-row value v can correspond to
// template row tr for PRI purposes: OpEq cells must be present and equal
// (the paper's r ⊇ t subsumption); inequality predicates are satisfied
// optimistically while the cell is still empty (the row can evolve to
// satisfy them) and strictly once filled. See DESIGN.md §5.
func (t Template) MatchCandidate(tr TemplateRow, v model.Vector) bool {
	for i, p := range tr {
		switch p.Op {
		case OpAny:
		case OpEq:
			if !v[i].Set || v[i].Val != p.Val {
				return false
			}
		default:
			if v[i].Set && !p.Holds(t.Schema.Columns[i].Type, v[i].Val) {
				return false
			}
		}
	}
	return true
}

// MatchFinal reports s ⊇* tr for a final-table row: every constrained cell
// must be present and satisfy its predicate.
func (t Template) MatchFinal(tr TemplateRow, v model.Vector) bool {
	for i, p := range tr {
		if p.Op == OpAny {
			continue
		}
		if !v[i].Set || !p.Holds(t.Schema.Columns[i].Type, v[i].Val) {
			return false
		}
	}
	return true
}

// SatisfiedBy reports whether the final table satisfies the constraint:
// there is an injective mapping from template rows to final rows with
// s ⊇* t — i.e. a maximum bipartite matching of size |T|.
func (t Template) SatisfiedBy(final []*model.Row) bool {
	adj := make([][]int, len(t.Rows))
	for ti, tr := range t.Rows {
		for si, s := range final {
			if t.MatchFinal(tr, s.Vec) {
				adj[ti] = append(adj[ti], si)
			}
		}
	}
	m := MaxMatching(adj, len(final))
	return m.Size == len(t.Rows)
}

// EmptyCells returns the number of unpinned (non-OpEq) cells across the
// template — the paper's estimate of |C| for compensation estimation (§5.3).
func (t Template) EmptyCells() int {
	n := 0
	for _, tr := range t.Rows {
		for _, p := range tr {
			if p.Op != OpEq {
				n++
			}
		}
	}
	return n
}

// EmptyCellsInColumn returns the number of unpinned cells in column ci.
func (t Template) EmptyCellsInColumn(ci int) int {
	n := 0
	for _, tr := range t.Rows {
		if tr[ci].Op != OpEq {
			n++
		}
	}
	return n
}

// Clone deep-copies the template.
func (t Template) Clone() Template {
	out := Template{Schema: t.Schema, Rows: make([]TemplateRow, len(t.Rows))}
	for i, tr := range t.Rows {
		out.Rows[i] = append(TemplateRow(nil), tr...)
	}
	return out
}
