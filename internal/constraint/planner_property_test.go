package constraint

import (
	"fmt"
	"math/rand"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// TestPlannerMaintainsPRIUnderRandomOps is the §4 guarantee as an executable
// property: whatever valid fills and votes workers throw at the table, after
// every Central Client repair either the PRI holds or the planner has
// (observably) dropped unsatisfiable template rows.
func TestPlannerMaintainsPRIUnderRandomOps(t *testing.T) {
	seeds := 25
	if testing.Short() {
		seeds = 5
	}
	for seed := 0; seed < seeds; seed++ {
		runPlannerFuzz(t, int64(seed))
	}
}

func runPlannerFuzz(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	s := model.MustSchema("T", []model.Column{
		{Name: "k"},
		{Name: "a", Domain: []string{"x", "y", "z"}},
		{Name: "b", Type: model.TypeInt},
	}, "k")
	f := model.MajorityShortcut(3)

	// Random template: a couple of pinned rows plus empty slots.
	var rows []model.Vector
	for i := 0; i < 1+rng.Intn(2); i++ {
		rows = append(rows, model.VectorOf("", []string{"x", "y", "z"}[rng.Intn(3)], ""))
	}
	tmpl, err := ValuesTemplate(s, rows...)
	if err != nil {
		t.Fatalf("seed %d: template: %v", seed, err)
	}
	tmpl = tmpl.WithCardinality(3 + rng.Intn(3))

	rep := sync.NewReplica(s)
	g := sync.NewIDGen("w")
	ccg := sync.NewIDGen("cc")
	p := NewPlanner(tmpl, f)

	exec := func(a Action) {
		if a.Kind != ActionInsert {
			return
		}
		ins, err := rep.Insert(ccg.Next())
		if err != nil {
			t.Fatalf("seed %d: cc insert: %v", seed, err)
		}
		cur := ins.Row
		for col, cell := range a.Seed {
			if !cell.Set {
				continue
			}
			m, err := rep.Fill(cur, col, cell.Val, ccg.Next())
			if err != nil {
				t.Fatalf("seed %d: cc fill: %v", seed, err)
			}
			cur = m.NewRow
		}
		if a.Upvote {
			if _, err := rep.Upvote(cur); err != nil {
				t.Fatalf("seed %d: cc upvote: %v", seed, err)
			}
		}
	}
	repair := func() {
		for iter := 0; iter < 100; iter++ {
			actions := p.Repair(rep)
			if len(actions) == 0 {
				return
			}
			for _, a := range actions {
				exec(a)
			}
		}
		t.Fatalf("seed %d: repair did not stabilize", seed)
	}

	for _, a := range p.InitActions() {
		exec(a)
	}
	repair()

	values := []string{"v1", "v2", "v3"}
	for step := 0; step < 150; step++ {
		// One random valid worker operation.
		all := rep.Table().Rows()
		if len(all) == 0 {
			break
		}
		r := all[rng.Intn(len(all))]
		switch rng.Intn(3) {
		case 0: // fill a random empty cell
			empties := []int{}
			for col, cell := range r.Vec {
				if !cell.Set {
					empties = append(empties, col)
				}
			}
			if len(empties) == 0 {
				continue
			}
			col := empties[rng.Intn(len(empties))]
			var val string
			switch col {
			case 0:
				val = fmt.Sprintf("key%d", rng.Intn(8))
			case 1:
				val = []string{"x", "y", "z"}[rng.Intn(3)]
			default:
				val = values[rng.Intn(len(values))]
				val = fmt.Sprint(len(val)) // int column
			}
			if _, err := rep.Fill(r.ID, col, val, g.Next()); err != nil {
				t.Fatalf("seed %d: fill: %v", seed, err)
			}
		case 1:
			if r.Vec.IsComplete() {
				if _, err := rep.Upvote(r.ID); err != nil {
					t.Fatalf("seed %d: upvote: %v", seed, err)
				}
			}
		case 2:
			if r.Vec.IsPartial() {
				if _, err := rep.Downvote(r.ID); err != nil {
					t.Fatalf("seed %d: downvote: %v", seed, err)
				}
			}
		}
		repair()
		if !p.CheckPRI(rep) {
			t.Fatalf("seed %d step %d: PRI violated after repair (removed=%d)",
				seed, step, p.RemovedCount())
		}
	}
}

// TestPlannerIncrementalMatchesScratch: the planner's incremental matching
// must always reach the same (maximum) size a from-scratch computation does.
func TestPlannerIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := model.MustSchema("T", []model.Column{{Name: "k"}, {Name: "v"}}, "k")
	f := model.MajorityShortcut(3)
	tmpl := Cardinality(s, 4)

	rep := sync.NewReplica(s)
	g := sync.NewIDGen("w")
	p := NewPlanner(tmpl, f)
	for _, a := range p.InitActions() {
		ins, _ := rep.Insert(g.Next())
		_ = a
		_ = ins
	}
	for step := 0; step < 80; step++ {
		rows := rep.Table().Rows()
		if len(rows) > 0 && rng.Intn(2) == 0 {
			r := rows[rng.Intn(len(rows))]
			for col, cell := range r.Vec {
				if !cell.Set {
					rep.Fill(r.ID, col, fmt.Sprintf("v%d", rng.Intn(5)), g.Next())
					break
				}
			}
		} else if len(rows) > 0 {
			r := rows[rng.Intn(len(rows))]
			if r.Vec.IsPartial() {
				rep.Downvote(r.ID)
			}
		}
		p.Repair(rep)
		// From-scratch maximum matching over the same graph.
		prob := Probable(rep.Table(), f)
		act := p.Template()
		adj := make([][]int, len(act.Rows))
		for ti, tr := range act.Rows {
			for pi, row := range prob {
				if act.MatchCandidate(tr, row.Vec) {
					adj[ti] = append(adj[ti], pi)
				}
			}
		}
		want := MaxMatching(adj, len(prob)).Size
		got := 0
		for _, id := range p.Assignment() {
			if id != "" {
				got++
			}
		}
		if got > want {
			t.Fatalf("step %d: incremental matching %d exceeds maximum %d", step, got, want)
		}
	}
}
