package constraint

// Matching is the result of a maximum bipartite matching between template
// rows (left vertices) and probable rows (right vertices).
type Matching struct {
	// Left[t] is the right-vertex index matched to left vertex t, or -1.
	Left []int
	// Right[p] is the left-vertex index matched to right vertex p, or -1.
	Right []int
	// Size is the number of matched pairs.
	Size int

	// seen is the augmenting search's visited-marks scratch, epoch-stamped
	// so repeated Augment calls neither allocate nor clear it: seen[p] ==
	// epoch means right vertex p was visited by the current search. It only
	// grows (and only reallocates when the right side outgrows it).
	seen  []uint64
	epoch uint64
}

// MaxMatching computes a maximum bipartite matching by repeated augmenting
// path search (Berge's theorem: a matching is maximum iff it admits no
// augmenting path). adj[t] lists the right-vertex indexes adjacent to left
// vertex t; nRight is the number of right vertices.
func MaxMatching(adj [][]int, nRight int) Matching {
	m := Matching{
		Left:  make([]int, len(adj)),
		Right: make([]int, nRight),
	}
	for i := range m.Left {
		m.Left[i] = -1
	}
	for i := range m.Right {
		m.Right[i] = -1
	}
	for t := range adj {
		if m.Augment(adj, t) {
			m.Size++
		}
	}
	return m
}

// Augment searches for an augmenting path from free left vertex t (the
// paper's BFS from a free template row, §4.2 — implemented as the standard
// alternating-path search) and flips it into the matching if found.
// Returns whether the matching grew.
func (m *Matching) Augment(adj [][]int, t int) bool {
	if len(m.seen) < len(m.Right) {
		m.seen = make([]uint64, len(m.Right))
	}
	m.epoch++
	return m.tryKuhn(adj, t)
}

func (m *Matching) tryKuhn(adj [][]int, t int) bool {
	for _, p := range adj[t] {
		if m.seen[p] == m.epoch {
			continue
		}
		m.seen[p] = m.epoch
		if m.Right[p] == -1 || m.tryKuhn(adj, m.Right[p]) {
			m.Right[p] = t
			m.Left[t] = p
			return true
		}
	}
	return false
}

// Unmatch removes the pair containing left vertex t, if matched.
func (m *Matching) Unmatch(t int) {
	if p := m.Left[t]; p != -1 {
		m.Left[t] = -1
		m.Right[p] = -1
		m.Size--
	}
}
