package constraint

import (
	"strings"
	"testing"

	"crowdfill/internal/model"
)

func soccerSchema(t testing.TB) *model.Schema {
	t.Helper()
	return model.MustSchema("SoccerPlayer", []model.Column{
		{Name: "name", Type: model.TypeString},
		{Name: "nationality", Type: model.TypeString},
		{Name: "position", Type: model.TypeString, Domain: []string{"GK", "DF", "MF", "FW"}},
		{Name: "caps", Type: model.TypeInt},
		{Name: "goals", Type: model.TypeInt},
	}, "name", "nationality")
}

// paperValuesTemplate is §2.3's example: a forward from any country, any
// player from Brazil, and any player from Spain.
func paperValuesTemplate(t testing.TB) Template {
	t.Helper()
	tmpl, err := ValuesTemplate(soccerSchema(t),
		model.VectorOf("", "", "FW", "", ""),
		model.VectorOf("", "Brazil", "", "", ""),
		model.VectorOf("", "Spain", "", "", ""),
	)
	if err != nil {
		t.Fatalf("ValuesTemplate: %v", err)
	}
	return tmpl
}

// paperFinalTable is §2.2's final table.
func paperFinalTable() []*model.Row {
	return []*model.Row{
		{ID: "r-01", Vec: model.VectorOf("Lionel Messi", "Argentina", "FW", "83", "37")},
		{ID: "r-02", Vec: model.VectorOf("Ronaldinho", "Brazil", "MF", "97", "33")},
		{ID: "r-04", Vec: model.VectorOf("Iker Casillas", "Spain", "GK", "150", "0")},
	}
}

func TestValuesConstraintPaperExample(t *testing.T) {
	tmpl := paperValuesTemplate(t)
	if !tmpl.SatisfiedBy(paperFinalTable()) {
		t.Fatalf("paper's final table should satisfy the §2.3 values template")
	}
	// Without the Spanish player the constraint fails.
	if tmpl.SatisfiedBy(paperFinalTable()[:2]) {
		t.Fatalf("missing Spain row should violate the constraint")
	}
}

// TestPredicatesConstraintPaperExample is §2.3's predicates template: the
// forward and the Brazilian need ≥30 goals, the Spaniard ≥100 caps.
func TestPredicatesConstraintPaperExample(t *testing.T) {
	s := soccerSchema(t)
	tmpl, err := PredTemplate(s,
		TemplateRow{Any, Any, Eq("FW"), Any, Ge("30")},
		TemplateRow{Any, Eq("Brazil"), Any, Any, Ge("30")},
		TemplateRow{Any, Eq("Spain"), Any, Ge("100"), Any},
	)
	if err != nil {
		t.Fatalf("PredTemplate: %v", err)
	}
	if !tmpl.SatisfiedBy(paperFinalTable()) {
		t.Fatalf("paper's final table should satisfy the §2.3 predicates template")
	}
	// Tighten the caps requirement beyond Casillas' 150: now unsatisfiable.
	tight, err := PredTemplate(s,
		TemplateRow{Any, Eq("Spain"), Any, Ge("200"), Any},
	)
	if err != nil {
		t.Fatal(err)
	}
	if tight.SatisfiedBy(paperFinalTable()) {
		t.Fatalf("caps ≥ 200 should not be satisfied")
	}
}

// TestValuesConstraintUniqueness: one row cannot satisfy two template rows —
// the mapping must be injective ("a unique row s ∈ S").
func TestValuesConstraintUniqueness(t *testing.T) {
	s := soccerSchema(t)
	tmpl, err := ValuesTemplate(s,
		model.VectorOf("", "Brazil", "", "", ""),
		model.VectorOf("", "Brazil", "", "", ""),
	)
	if err != nil {
		t.Fatal(err)
	}
	oneBrazilian := []*model.Row{
		{ID: "r-02", Vec: model.VectorOf("Ronaldinho", "Brazil", "MF", "97", "33")},
	}
	if tmpl.SatisfiedBy(oneBrazilian) {
		t.Fatalf("two Brazil template rows need two distinct Brazilian rows")
	}
	twoBrazilians := append(oneBrazilian,
		&model.Row{ID: "r-99", Vec: model.VectorOf("Neymar", "Brazil", "FW", "83", "60")})
	if !tmpl.SatisfiedBy(twoBrazilians) {
		t.Fatalf("two distinct Brazilian rows should satisfy")
	}
}

func TestCardinalityTemplate(t *testing.T) {
	s := soccerSchema(t)
	tmpl := Cardinality(s, 3)
	if len(tmpl.Rows) != 3 {
		t.Fatalf("Cardinality rows = %d", len(tmpl.Rows))
	}
	for _, tr := range tmpl.Rows {
		if !tr.IsEmpty() || !tr.IsValuesRow() {
			t.Fatalf("cardinality rows must be empty: %v", tr)
		}
	}
	if tmpl.SatisfiedBy(paperFinalTable()[:2]) {
		t.Fatalf("2 rows cannot satisfy cardinality 3")
	}
	if !tmpl.SatisfiedBy(paperFinalTable()) {
		t.Fatalf("3 rows satisfy cardinality 3")
	}
	// WithCardinality pads an existing values template.
	vt := paperValuesTemplate(t).WithCardinality(5)
	if len(vt.Rows) != 5 {
		t.Fatalf("WithCardinality rows = %d, want 5", len(vt.Rows))
	}
	if got := vt.WithCardinality(2); len(got.Rows) != 5 {
		t.Fatalf("WithCardinality must not shrink: %d", len(got.Rows))
	}
}

func TestTemplateValidateErrors(t *testing.T) {
	s := soccerSchema(t)
	// Width mismatch.
	if _, err := ValuesTemplate(s, model.VectorOf("a", "b")); err == nil {
		t.Errorf("width mismatch should fail")
	}
	// Bad value for typed column.
	if _, err := ValuesTemplate(s, model.VectorOf("", "", "", "abc", "")); err == nil {
		t.Errorf("non-integer caps should fail")
	}
	// Out-of-domain position.
	if _, err := ValuesTemplate(s, model.VectorOf("", "", "XX", "", "")); err == nil {
		t.Errorf("out-of-domain position should fail")
	}
	// Duplicate complete primary keys.
	_, err := ValuesTemplate(s,
		model.VectorOf("Messi", "Argentina", "", "", ""),
		model.VectorOf("Messi", "Argentina", "FW", "", ""))
	if err == nil || !strings.Contains(err.Error(), "primary key") {
		t.Errorf("duplicate keys should fail: %v", err)
	}
	// No schema.
	if err := (Template{}).Validate(); err == nil {
		t.Errorf("nil schema should fail")
	}
	// Predicates on ints with bad operand.
	if _, err := PredTemplate(s, TemplateRow{Any, Any, Any, Ge("abc"), Any}); err == nil {
		t.Errorf("Ge(abc) on int column should fail")
	}
}

func TestMatchCandidateOptimism(t *testing.T) {
	s := soccerSchema(t)
	tmpl, err := PredTemplate(s, TemplateRow{Any, Eq("Brazil"), Any, Any, Ge("30")})
	if err != nil {
		t.Fatal(err)
	}
	tr := tmpl.Rows[0]
	// Eq cell must be present; the Ge cell may still be empty.
	if !tmpl.MatchCandidate(tr, model.VectorOf("", "Brazil", "", "", "")) {
		t.Errorf("candidate with Brazil and empty goals should match optimistically")
	}
	if tmpl.MatchCandidate(tr, model.VectorOf("", "", "", "", "")) {
		t.Errorf("candidate missing the Eq cell should not match")
	}
	if tmpl.MatchCandidate(tr, model.VectorOf("", "Brazil", "", "", "10")) {
		t.Errorf("candidate with goals=10 violates Ge(30)")
	}
	// Final matching is strict: the Ge cell must be present.
	if tmpl.MatchFinal(tr, model.VectorOf("", "Brazil", "", "", "")) {
		t.Errorf("final row with empty goals must not match")
	}
	if !tmpl.MatchFinal(tr, model.VectorOf("Neymar", "Brazil", "FW", "83", "60")) {
		t.Errorf("complete satisfying row must match")
	}
}

func TestTemplateCounters(t *testing.T) {
	tmpl := paperValuesTemplate(t)
	// 3 rows × 5 columns = 15 cells, 3 pinned -> 12 empty.
	if got := tmpl.EmptyCells(); got != 12 {
		t.Errorf("EmptyCells = %d, want 12", got)
	}
	if got := tmpl.EmptyCellsInColumn(1); got != 1 {
		t.Errorf("EmptyCellsInColumn(nationality) = %d, want 1", got)
	}
	if got := tmpl.EmptyCellsInColumn(0); got != 3 {
		t.Errorf("EmptyCellsInColumn(name) = %d, want 3", got)
	}
}

func TestEqVector(t *testing.T) {
	tr := TemplateRow{Eq("Messi"), Any, Ge("10"), Any, Any}
	v := tr.EqVector()
	if !v[0].Set || v[0].Val != "Messi" || v[2].Set {
		t.Fatalf("EqVector = %v", v)
	}
	if tr.IsValuesRow() {
		t.Errorf("row with Ge is not a values row")
	}
	if (TemplateRow{Eq("x"), Any}).IsEmpty() {
		t.Errorf("row with Eq is not empty")
	}
}

func TestTemplateCloneIndependent(t *testing.T) {
	tmpl := paperValuesTemplate(t)
	c := tmpl.Clone()
	c.Rows[0][0] = Eq("changed")
	if tmpl.Rows[0][0].Op != OpAny {
		t.Fatalf("Clone aliased rows")
	}
}
