package constraint

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// newIncrementalPlanner wires a planner to a replica the way server.Core
// does: a TableIndex observing the replica feeds the delta-driven engine.
func newIncrementalPlanner(rep *sync.Replica, tmpl Template, score model.ScoreFunc) (*Planner, *model.TableIndex) {
	idx := model.NewTableIndex(rep.Table(), score)
	rep.SetObserver(idx)
	p := NewPlanner(tmpl, score)
	p.UseIncremental(idx)
	return p, idx
}

// TestPlannerIncrementalEquivalenceRandom is the incremental repair's
// property test: a spec planner (full rebuild, no index) and an incremental
// planner run side by side over randomized fills, votes, undos, and snapshot
// reloads, and must emit identical action streams, assignments, and removal
// sets at every repair — with CheckPRI holding at every stable point. The
// template mixes pinned OpEq rows (exercising shuffle and removal) with
// cardinality slots, and the op mix is the same one the index cross-check
// uses.
func TestPlannerIncrementalEquivalenceRandom(t *testing.T) {
	schema := model.MustSchema("kv", []model.Column{
		{Name: "k1", Type: model.TypeString},
		{Name: "k2", Type: model.TypeString},
		{Name: "v", Type: model.TypeString},
	}, "k1", "k2")

	var totInserts, totRemovals int
	for seed := int64(0); seed < 10; seed++ {
		tmpl, err := ValuesTemplate(schema,
			model.VectorOf("v1", "", ""), // pinned: k1=v1 (fills use v0/v1/v2)
			model.VectorOf("v0", "v2", ""),
			model.NewVector(3), // cardinality slots
			model.NewVector(3),
		)
		if err != nil {
			t.Fatal(err)
		}
		score := model.MajorityShortcut(3)
		rep := sync.NewReplica(schema)
		gen := sync.NewIDGen(fmt.Sprintf("s%d", seed))
		cc := sync.NewIDGen(fmt.Sprintf("cc%d", seed))
		rng := rand.New(rand.NewSource(seed))

		spec := NewPlanner(tmpl, score)
		incr, _ := newIncrementalPlanner(rep, tmpl, score)
		incr.SetDebug(true) // panic with detail inside Repair on divergence
		if incr.Mode() != "incremental" || spec.Mode() != "full-rebuild" {
			t.Fatalf("modes = %s/%s", incr.Mode(), spec.Mode())
		}

		repairBoth := func(step int) {
			t.Helper()
			for iter := 0; ; iter++ {
				if iter > 50 {
					t.Fatalf("seed %d step %d: repair did not stabilize", seed, step)
				}
				specActs := spec.Repair(rep)
				incrActs := incr.Repair(rep)
				if !reflect.DeepEqual(specActs, incrActs) {
					t.Fatalf("seed %d step %d: actions diverge\n spec %v\n incr %v",
						seed, step, specActs, incrActs)
				}
				if sa, ia := spec.Assignment(), incr.Assignment(); !reflect.DeepEqual(sa, ia) {
					t.Fatalf("seed %d step %d: assignment diverges\n spec %v\n incr %v",
						seed, step, sa, ia)
				}
				if len(incrActs) == 0 {
					break
				}
				for _, a := range incrActs {
					execAction(t, rep, cc, a)
				}
			}
			if !incr.CheckPRI(rep) {
				t.Fatalf("seed %d step %d: PRI violated at stable point", seed, step)
			}
		}

		for _, a := range incr.InitActions() {
			execAction(t, rep, cc, a)
		}
		repairBoth(-1)

		var castUp, castDown []model.Vector
		for step := 0; step < 150; step++ {
			if rng.Intn(25) == 0 {
				// Snapshot reload: the index resets and rebuilds; the engine
				// must survive losing every slot without perturbing the
				// assignment.
				rep.LoadSnapshot(rep.TakeSnapshot())
				castUp, castDown = nil, nil
			} else {
				doRandomOp(t, rep, gen, rng, &castUp, &castDown)
			}
			repairBoth(step)
		}

		if spec.Repairs != incr.Repairs || spec.Augments != incr.Augments ||
			spec.Inserts != incr.Inserts || spec.Removals != incr.Removals {
			t.Fatalf("seed %d: stats diverge: spec {rep %d aug %d ins %d rem %d}, incr {rep %d aug %d ins %d rem %d}",
				seed, spec.Repairs, spec.Augments, spec.Inserts, spec.Removals,
				incr.Repairs, incr.Augments, incr.Inserts, incr.Removals)
		}
		totInserts += incr.Inserts
		totRemovals += incr.Removals
	}
	if totInserts == 0 || totRemovals == 0 {
		t.Fatalf("op mix too tame: inserts=%d removals=%d across seeds — the equivalence was not exercised",
			totInserts, totRemovals)
	}
}

// TestPlannerIncrementalShuffle replays the §4.2 shuffle scenario through the
// incremental path (with the debug cross-check on).
func TestPlannerIncrementalShuffle(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	tmpl, err := ValuesTemplate(s,
		model.VectorOf("Messi", "Argentina", "", "", ""),
		model.NewVector(5),
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("w")
	sRow := mkRow(t, rep, g, "Messi", "Argentina", "FW", "83", "37")
	rm := mkRow(t, rep, g, "Messi", "Argentina")

	p, _ := newIncrementalPlanner(rep, tmpl, f)
	p.SetDebug(true)
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("both rows probable: no actions expected, got %v", acts)
	}
	if asg := p.Assignment(); asg[0] != rm || asg[1] != sRow {
		t.Fatalf("assignment = %v, want [%s %s]", asg, rm, sRow)
	}

	rep.Upvote(sRow)
	rep.Upvote(sRow)
	acts := p.Repair(rep)
	if len(acts) != 1 || acts[0].Kind != ActionInsert || acts[0].Template != 1 {
		t.Fatalf("want one insert for template 1 via shuffle, got %v", acts)
	}
	if asg := p.Assignment(); asg[0] != sRow {
		t.Fatalf("template 0 should now hold the positive row, got %v", asg)
	}
	execAction(t, rep, g, acts[0])
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("post-shuffle repair should be clean, got %v", acts)
	}
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold after shuffle")
	}
}

// TestPlannerIncrementalRemoveTemplate replays the template-removal scenario
// through the incremental path: the removed template must also leave the
// engine's inverted index, so later rows stop matching it.
func TestPlannerIncrementalRemoveTemplate(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	tmpl, err := ValuesTemplate(s, model.VectorOf("Messi", "Brazil", "", "", ""))
	if err != nil {
		t.Fatal(err)
	}
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("cc")

	p, _ := newIncrementalPlanner(rep, tmpl, f)
	p.SetDebug(true)
	seeded := execAction(t, rep, g, p.InitActions()[0])
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("seeded template should satisfy PRI, got %v", acts)
	}

	rep.Downvote(seeded)
	rep.Downvote(seeded)
	acts := p.Repair(rep)
	if len(acts) != 1 || acts[0].Kind != ActionRemoveTemplate || acts[0].Template != 0 {
		t.Fatalf("want template removal, got %v", acts)
	}
	if p.RemovedCount() != 1 {
		t.Fatalf("RemovedCount = %d", p.RemovedCount())
	}
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("post-removal repair should be clean, got %v", acts)
	}

	// New rows matching the removed template must not grow its adjacency.
	mkRow(t, rep, g, "Messi", "Brazil", "FW")
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("removed template must stay removed, got %v", acts)
	}
}
