package constraint

import (
	"fmt"
	"math/rand"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// TestTableIndexMatchesFromScratch drives a replica with randomized valid
// message sequences (the same op mix as the sync package's netSim
// convergence harness, which is test-internal there and mirrored here) and
// checks after every applied message that the incrementally maintained
// TableIndex agrees exactly with the from-scratch Probable and FinalTable
// computations.
func TestTableIndexMatchesFromScratch(t *testing.T) {
	schema := model.MustSchema("kv", []model.Column{
		{Name: "k1", Type: model.TypeString},
		{Name: "k2", Type: model.TypeString},
		{Name: "v", Type: model.TypeString},
	}, "k1", "k2")

	scores := map[string]model.ScoreFunc{
		"default":   model.DefaultScore,
		"majority3": model.MajorityShortcut(3),
	}
	for name, score := range scores {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				runIndexCrossCheck(t, schema, score, seed, 400)
			}
		})
	}
}

func runIndexCrossCheck(t *testing.T, schema *model.Schema, score model.ScoreFunc, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	rep := sync.NewReplica(schema)
	idx := model.NewTableIndex(rep.Table(), score)
	idx.SetDebug(true) // panics inside flush on any divergence, with detail
	rep.SetObserver(idx)
	gen := sync.NewIDGen(fmt.Sprintf("s%d", seed))

	var castUp, castDown []model.Vector
	for i := 0; i < ops; i++ {
		doRandomOp(t, rep, gen, rng, &castUp, &castDown)
		assertIndexAgrees(t, idx, rep, score, seed, i)
	}

	// A snapshot reload must reset and rebuild the index, not corrupt it.
	snap := rep.TakeSnapshot()
	rep2 := sync.NewReplica(schema)
	idx2 := model.NewTableIndex(rep2.Table(), score)
	rep2.SetObserver(idx2)
	rep2.LoadSnapshot(snap)
	assertIndexAgrees(t, idx2, rep2, score, seed, -1)
}

// doRandomOp performs one random valid primitive op against the replica
// (insert / fill / upvote / downvote / undo-upvote / undo-downvote), the same
// action mix the convergence netSim generates.
func doRandomOp(t *testing.T, rep *sync.Replica, gen *sync.IDGen, rng *rand.Rand, castUp, castDown *[]model.Vector) {
	t.Helper()
	rows := rep.Table().Rows()
	type action struct {
		kind int
		row  *model.Row
		col  int
	}
	actions := []action{{kind: 0}} // insert is always possible
	for _, r := range rows {
		for col := range r.Vec {
			if !r.Vec[col].Set {
				actions = append(actions, action{kind: 1, row: r, col: col})
			}
		}
		if r.Vec.IsComplete() {
			actions = append(actions, action{kind: 2, row: r})
		}
		if r.Vec.IsPartial() {
			actions = append(actions, action{kind: 3, row: r})
		}
	}
	if len(*castUp) > 0 {
		actions = append(actions, action{kind: 4})
	}
	if len(*castDown) > 0 {
		actions = append(actions, action{kind: 5})
	}
	a := actions[rng.Intn(len(actions))]
	var err error
	switch a.kind {
	case 0:
		_, err = rep.Insert(gen.Next())
	case 1:
		_, err = rep.Fill(a.row.ID, a.col, fmt.Sprintf("v%d", rng.Intn(3)), gen.Next())
	case 2:
		var m sync.Message
		m, err = rep.Upvote(a.row.ID)
		if err == nil {
			*castUp = append(*castUp, m.Vec.Clone())
		}
	case 3:
		var m sync.Message
		m, err = rep.Downvote(a.row.ID)
		if err == nil {
			*castDown = append(*castDown, m.Vec.Clone())
		}
	case 4:
		j := rng.Intn(len(*castUp))
		v := (*castUp)[j]
		*castUp = append((*castUp)[:j], (*castUp)[j+1:]...)
		_, err = rep.UndoUpvote(v)
	case 5:
		j := rng.Intn(len(*castDown))
		v := (*castDown)[j]
		*castDown = append((*castDown)[:j], (*castDown)[j+1:]...)
		_, err = rep.UndoDownvote(v)
	}
	if err != nil {
		t.Fatalf("op kind %d: %v", a.kind, err)
	}
}

func assertIndexAgrees(t *testing.T, idx *model.TableIndex, rep *sync.Replica, score model.ScoreFunc, seed int64, op int) {
	t.Helper()
	wantProb := Probable(rep.Table(), score)
	gotProb := idx.Probable()
	if !sameRows(gotProb, wantProb) {
		t.Fatalf("seed %d op %d: probable mismatch\n got %v\nwant %v",
			seed, op, rowIDs(gotProb), rowIDs(wantProb))
	}
	wantFinal := model.FinalTable(rep.Table(), score)
	gotFinal := idx.FinalTable()
	if !sameRows(gotFinal, wantFinal) {
		t.Fatalf("seed %d op %d: final table mismatch\n got %v\nwant %v",
			seed, op, rowIDs(gotFinal), rowIDs(wantFinal))
	}
}

func sameRows(a, b []*model.Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Up != b[i].Up || a[i].Down != b[i].Down {
			return false
		}
	}
	return true
}

func rowIDs(rows []*model.Row) []model.RowID {
	out := make([]model.RowID, len(rows))
	for i, r := range rows {
		out[i] = r.ID
	}
	return out
}
