package constraint

import (
	"encoding/json"
	"testing"

	"crowdfill/internal/model"
)

func TestParsePred(t *testing.T) {
	cases := []struct {
		in   string
		want Pred
		err  bool
	}{
		{"", Any, false},
		{"=FW", Eq("FW"), false},
		{"FW", Eq("FW"), false},
		{">=30", Ge("30"), false},
		{"<=100", Le("100"), false},
		{">5", Gt("5"), false},
		{"<5", Lt("5"), false},
		{"!=GK", Ne("GK"), false},
		{"  =Brazil ", Eq("Brazil"), false},
		{">=", Pred{}, true},
		{"=", Pred{}, true},
	}
	for _, tc := range cases {
		got, err := ParsePred(tc.in)
		if tc.err {
			if err == nil {
				t.Errorf("ParsePred(%q): want error", tc.in)
			}
			continue
		}
		if err != nil || got != tc.want {
			t.Errorf("ParsePred(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
}

func TestPredStringRoundTrip(t *testing.T) {
	for _, p := range []Pred{Any, Eq("x"), Ne("x"), Lt("3"), Le("3"), Gt("3"), Ge("3")} {
		got, err := ParsePred(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v -> %q -> %v, %v", p, p.String(), got, err)
		}
	}
}

func TestPredHolds(t *testing.T) {
	cases := []struct {
		p    Pred
		typ  model.Type
		val  string
		want bool
	}{
		{Any, model.TypeString, "anything", true},
		{Eq("FW"), model.TypeString, "FW", true},
		{Eq("FW"), model.TypeString, "MF", false},
		{Ne("FW"), model.TypeString, "MF", true},
		{Ge("30"), model.TypeInt, "30", true},
		{Ge("30"), model.TypeInt, "29", false},
		{Ge("30"), model.TypeInt, "100", true},
		{Gt("30"), model.TypeInt, "30", false},
		{Le("100"), model.TypeInt, "100", true},
		{Lt("100"), model.TypeInt, "99", true},
		{Ge("9"), model.TypeInt, "10", true},     // numeric, not lexicographic
		{Ge("9"), model.TypeString, "10", false}, // lexicographic for strings
		{Ge("1980-01-01"), model.TypeDate, "1987-06-24", true},
	}
	for _, tc := range cases {
		if got := tc.p.Holds(tc.typ, tc.val); got != tc.want {
			t.Errorf("%v.Holds(%v, %q) = %v, want %v", tc.p, tc.typ, tc.val, got, tc.want)
		}
	}
}

func TestPredJSON(t *testing.T) {
	in := []Pred{Any, Eq("Brazil"), Ge("30")}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out []Pred
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("round trip [%d]: %v != %v", i, out[i], in[i])
		}
	}
	var bad Pred
	if err := json.Unmarshal([]byte(`5`), &bad); err == nil {
		t.Errorf("unmarshal non-string should fail")
	}
	if err := json.Unmarshal([]byte(`">="`), &bad); err == nil {
		t.Errorf("unmarshal operandless pred should fail")
	}
}
