package constraint

import (
	"sort"

	"crowdfill/internal/model"
)

// Probable computes the set of probable rows of a candidate table (paper
// §4.1): rows that, given the current state, may still contribute to the
// final table. A row r is probable iff one of:
//
//  1. some primary-key cell is empty and f(u_r,d_r) = 0;
//  2. all key cells are filled, f(u_r,d_r) = 0, and no other row with the
//     same key has a positive score;
//  3. r is complete with a positive score, no same-key row scores higher,
//     and r wins the deterministic tie-break (lowest row id) among equals.
//
// The result is sorted by row id.
func Probable(c *model.Candidate, f model.ScoreFunc) []*model.Row {
	s := c.Schema()

	// Pass 1: per-key best positive score among complete rows, and whether
	// any row with the key has a positive score at all.
	type keyInfo struct {
		maxScore int        // highest positive score among complete rows
		best     *model.Row // deterministic winner at maxScore
		positive bool       // some row with this key scores > 0
	}
	keys := make(map[string]*keyInfo)
	c.Each(func(r *model.Row) {
		if !r.Vec.KeyComplete(s) {
			return
		}
		k := r.Vec.KeyOf(s)
		info := keys[k]
		if info == nil {
			info = &keyInfo{}
			keys[k] = info
		}
		score := f(r.Up, r.Down)
		if score > 0 {
			info.positive = true
			if r.Vec.IsComplete() {
				if info.best == nil || score > info.maxScore ||
					(score == info.maxScore && r.ID < info.best.ID) {
					info.maxScore = score
					info.best = r
				}
			}
		}
	})

	var out []*model.Row
	c.Each(func(r *model.Row) {
		score := f(r.Up, r.Down)
		if !r.Vec.KeyComplete(s) {
			if score == 0 {
				out = append(out, r)
			}
			return
		}
		info := keys[r.Vec.KeyOf(s)]
		if score == 0 {
			if !info.positive {
				out = append(out, r)
			}
			return
		}
		if score > 0 && r.Vec.IsComplete() && info.best == r {
			out = append(out, r)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WouldBeProbable reports whether a hypothetical new row with value v would
// be probable if inserted into c right now, given the vote histories it
// would inherit (up = uh if complete, down = subset sum of DH). The Central
// Client uses this before inserting a template row's value (paper §4.2:
// "inserting row q with value t does not always make q probable").
func WouldBeProbable(c *model.Candidate, f model.ScoreFunc, v model.Vector, inheritedUp, inheritedDown int) bool {
	s := c.Schema()
	up := 0
	if v.IsComplete() {
		up = inheritedUp
	}
	score := f(up, inheritedDown)
	if !v.KeyComplete(s) {
		return score == 0
	}
	// Key complete: look at competing rows with the same key.
	k := v.KeyOf(s)
	positive := false
	maxOther := 0
	c.Each(func(r *model.Row) {
		if !r.Vec.KeyComplete(s) || r.Vec.KeyOf(s) != k {
			return
		}
		sc := f(r.Up, r.Down)
		if sc > 0 {
			positive = true
			if sc > maxOther {
				maxOther = sc
			}
		}
	})
	if score == 0 {
		return !positive
	}
	if score > 0 && v.IsComplete() {
		// New row must not be dominated; ties lose to the incumbent (the
		// incumbent has the older id), so require strictly greater.
		return score > maxOther
	}
	return false
}
