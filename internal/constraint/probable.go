package constraint

import (
	"crowdfill/internal/model"
)

// Probable computes the set of probable rows of a candidate table (paper
// §4.1): rows that, given the current state, may still contribute to the
// final table. A row r is probable iff one of:
//
//  1. some primary-key cell is empty and f(u_r,d_r) = 0;
//  2. all key cells are filled, f(u_r,d_r) = 0, and no other row with the
//     same key has a positive score;
//  3. r is complete with a positive score, no same-key row scores higher,
//     and r wins the deterministic tie-break (lowest row id) among equals.
//
// The result is sorted by row id. This is the from-scratch path
// (model.ProbableRows); servers on the hot path use an incrementally
// maintained model.TableIndex instead and cross-check against this.
func Probable(c *model.Candidate, f model.ScoreFunc) []*model.Row {
	return model.ProbableRows(c, f)
}

// WouldBeProbable reports whether a hypothetical new row with value v would
// be probable if inserted into c right now, given the vote histories it
// would inherit (up = uh if complete, down = subset sum of DH). The Central
// Client uses this before inserting a template row's value (paper §4.2:
// "inserting row q with value t does not always make q probable").
func WouldBeProbable(c *model.Candidate, f model.ScoreFunc, v model.Vector, inheritedUp, inheritedDown int) bool {
	s := c.Schema()
	up := 0
	if v.IsComplete() {
		up = inheritedUp
	}
	score := f(up, inheritedDown)
	if !v.KeyComplete(s) {
		return score == 0
	}
	// Key complete: look at competing rows with the same key.
	k := v.KeyOf(s)
	positive := false
	maxOther := 0
	c.Each(func(r *model.Row) {
		if !r.Vec.KeyComplete(s) || r.Vec.KeyOf(s) != k {
			return
		}
		sc := f(r.Up, r.Down)
		if sc > 0 {
			positive = true
			if sc > maxOther {
				maxOther = sc
			}
		}
	})
	if score == 0 {
		return !positive
	}
	if score > 0 && v.IsComplete() {
		// New row must not be dominated; ties lose to the incumbent (the
		// incumbent has the older id), so require strictly greater.
		return score > maxOther
	}
	return false
}

// WouldBeProbableIndexed is WouldBeProbable evaluated against a maintained
// TableIndex: the same-key competition comes from the index's per-key
// statistics instead of a full table scan.
func WouldBeProbableIndexed(idx *model.TableIndex, s *model.Schema, f model.ScoreFunc, v model.Vector, inheritedUp, inheritedDown int) bool {
	up := 0
	if v.IsComplete() {
		up = inheritedUp
	}
	score := f(up, inheritedDown)
	if !v.KeyComplete(s) {
		return score == 0
	}
	stat, _ := idx.KeyStat(v.KeyOf(s))
	if score == 0 {
		return !stat.Positive
	}
	if score > 0 && v.IsComplete() {
		return score > stat.MaxAny
	}
	return false
}
