package constraint

import (
	"testing"

	"crowdfill/internal/model"
)

func TestProbableConditions(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	c := model.NewCandidate(s)
	put := func(id string, vec model.Vector, up, down int) {
		c.Put(&model.Row{ID: model.RowID(id), Vec: vec, Up: up, Down: down})
	}
	// Condition 1: key-incomplete rows with zero score are probable.
	put("r-01", model.NewVector(5), 0, 0)                         // probable
	put("r-02", model.VectorOf("Neymar", "", "FW", "", ""), 0, 1) // score 0 (1 vote) -> probable
	put("r-03", model.VectorOf("Kaka", "", "", "", ""), 0, 2)     // score -2 -> not probable
	// Condition 2: key-complete zero-score rows, unless a same-key row
	// scores positive.
	put("r-04", model.VectorOf("Xavi", "Spain", "", "", ""), 0, 0)        // probable
	put("r-05", model.VectorOf("Pele", "Brazil", "FW", "", ""), 0, 0)     // same key as r-06 which is positive -> NOT probable
	put("r-06", model.VectorOf("Pele", "Brazil", "FW", "92", "77"), 3, 0) // complete, +3, max -> probable
	// Condition 3: complete positive rows must be undominated; ties break
	// to lowest id.
	put("r-07", model.VectorOf("Romario", "Brazil", "FW", "70", "55"), 2, 0) // tie with r-08
	put("r-08", model.VectorOf("Romario", "Brazil", "MF", "70", "55"), 2, 0) // tie, loses on id
	put("r-09", model.VectorOf("Zico", "Brazil", "MF", "71", "48"), 2, 3)    // negative -> not probable

	got := map[model.RowID]bool{}
	for _, r := range Probable(c, f) {
		got[r.ID] = true
	}
	want := map[model.RowID]bool{
		"r-01": true, "r-02": true, "r-04": true, "r-06": true, "r-07": true,
	}
	for id := range want {
		if !got[id] {
			t.Errorf("row %s should be probable", id)
		}
	}
	for id := range got {
		if !want[id] {
			t.Errorf("row %s should NOT be probable", id)
		}
	}
}

func TestProbableSortedByID(t *testing.T) {
	s := soccerSchema(t)
	c := model.NewCandidate(s)
	for _, id := range []string{"z-1", "a-1", "m-1"} {
		c.Put(&model.Row{ID: model.RowID(id), Vec: model.NewVector(5)})
	}
	p := Probable(c, model.DefaultScore)
	if len(p) != 3 || p[0].ID != "a-1" || p[1].ID != "m-1" || p[2].ID != "z-1" {
		t.Fatalf("Probable order wrong: %v", p)
	}
}

func TestWouldBeProbable(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	c := model.NewCandidate(s)
	c.Put(&model.Row{ID: "r-01", Vec: model.VectorOf("Pele", "Brazil", "FW", "92", "77"), Up: 3, Down: 0})

	// Key-incomplete seed with no inherited downvotes: probable.
	if !WouldBeProbable(c, f, model.VectorOf("", "", "FW", "", ""), 0, 0) {
		t.Errorf("clean partial seed should be insertable")
	}
	// Inherited downvotes give it a negative score: not probable.
	if WouldBeProbable(c, f, model.VectorOf("", "", "FW", "", ""), 0, 2) {
		t.Errorf("downvoted seed should not be insertable")
	}
	// Key-complete seed whose key already has a positive row: not probable.
	if WouldBeProbable(c, f, model.VectorOf("Pele", "Brazil", "", "", ""), 0, 0) {
		t.Errorf("seed whose key has a positive competitor should not be insertable")
	}
	// Key-complete seed with a fresh key: probable.
	if !WouldBeProbable(c, f, model.VectorOf("Xavi", "Spain", "", "", ""), 0, 0) {
		t.Errorf("fresh-key seed should be insertable")
	}
	// Complete seed with inherited positive score exceeding competitors.
	if !WouldBeProbable(c, f, model.VectorOf("Zico", "Brazil", "MF", "71", "48"), 4, 0) {
		t.Errorf("complete positively-voted seed should be insertable")
	}
	// Complete seed tied with an incumbent loses the tie-break.
	c.Put(&model.Row{ID: "r-02", Vec: model.VectorOf("Zico", "Brazil", "MF", "71", "48"), Up: 4, Down: 0})
	if WouldBeProbable(c, f, model.VectorOf("Zico", "Brazil", "MF", "71", "48"), 4, 0) {
		t.Errorf("tied complete seed should lose to incumbent")
	}
	// Partial seed with positive inherited score: inherits only if complete,
	// so up is ignored and score is 0; with a positive competitor -> no.
	if WouldBeProbable(c, f, model.VectorOf("Zico", "Brazil", "", "", ""), 5, 0) {
		t.Errorf("partial seed with positive same-key competitor should not be insertable")
	}
}

func TestMaxMatchingBasic(t *testing.T) {
	// Classic: 3 left, 3 right, perfect matching exists but needs augmenting.
	adj := [][]int{{0, 1}, {0}, {1, 2}}
	m := MaxMatching(adj, 3)
	if m.Size != 3 {
		t.Fatalf("matching size = %d, want 3", m.Size)
	}
	// Infeasible: two left vertices fight over one right vertex.
	m = MaxMatching([][]int{{0}, {0}}, 1)
	if m.Size != 1 {
		t.Fatalf("matching size = %d, want 1", m.Size)
	}
	// Empty graph.
	m = MaxMatching(nil, 0)
	if m.Size != 0 {
		t.Fatalf("empty matching size = %d", m.Size)
	}
}

// TestMaxMatchingAgainstBruteForce cross-checks the augmenting-path matcher
// against exhaustive search on small random graphs.
func TestMaxMatchingAgainstBruteForce(t *testing.T) {
	rng := newLCG(7)
	for trial := 0; trial < 200; trial++ {
		nl := 1 + int(rng.next(5))
		nr := 1 + int(rng.next(5))
		adj := make([][]int, nl)
		for i := range adj {
			for j := 0; j < nr; j++ {
				if rng.next(2) == 0 {
					adj[i] = append(adj[i], j)
				}
			}
		}
		got := MaxMatching(adj, nr).Size
		want := bruteMatch(adj, nr, 0, make([]bool, nr))
		if got != want {
			t.Fatalf("trial %d: MaxMatching = %d, brute force = %d, adj = %v", trial, got, want, adj)
		}
	}
}

func bruteMatch(adj [][]int, nr, i int, used []bool) int {
	if i == len(adj) {
		return 0
	}
	best := bruteMatch(adj, nr, i+1, used) // leave i unmatched
	for _, j := range adj[i] {
		if !used[j] {
			used[j] = true
			if v := 1 + bruteMatch(adj, nr, i+1, used); v > best {
				best = v
			}
			used[j] = false
		}
	}
	return best
}

type lcg struct{ s int64 }

func newLCG(seed int64) *lcg { return &lcg{s: seed} }

func (l *lcg) next(n int64) int64 {
	l.s = (l.s*6364136223846793005 + 1442695040888963407) % (1 << 31)
	if l.s < 0 {
		l.s = -l.s
	}
	return l.s % n
}

func TestMatchingUnmatch(t *testing.T) {
	m := MaxMatching([][]int{{0}, {1}}, 2)
	if m.Size != 2 {
		t.Fatalf("size = %d", m.Size)
	}
	m.Unmatch(0)
	if m.Size != 1 || m.Left[0] != -1 || m.Right[0] != -1 {
		t.Fatalf("Unmatch wrong: %+v", m)
	}
	m.Unmatch(0) // idempotent on unmatched vertex
	if m.Size != 1 {
		t.Fatalf("double Unmatch changed size")
	}
}
