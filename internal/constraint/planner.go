package constraint

import (
	"fmt"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// ActionKind enumerates the Central Client actions a PRI repair can demand.
type ActionKind int

const (
	// ActionInsert inserts a new row seeded with a template row's OpEq
	// values (insert + fills + optional auto-upvote when the seed is a
	// complete row, per §4.2 initialization).
	ActionInsert ActionKind = iota
	// ActionRemoveTemplate drops a template row that can no longer be
	// satisfied — the paper's last-resort reduction of T, possibly
	// violating the user's original intention (§4.2).
	ActionRemoveTemplate
)

// Action is one planned Central Client step.
type Action struct {
	Kind     ActionKind
	Template int          // index into the original template rows
	Seed     model.Vector // ActionInsert: values to fill after inserting
	Upvote   bool         // ActionInsert: upvote after seeding (complete template rows)
}

// Planner maintains the Probable Rows Invariant (§4.1): each template row t
// corresponds to a unique probable row r with r ⊇ t. It incrementally keeps
// a maximum bipartite matching between template rows and probable rows; when
// a change leaves a template row free and no augmenting path exists, it
// plans a row insertion (when the inserted row would be probable), attempts
// to shuffle the matching so a different, insertable template row becomes
// free, or removes the template row.
type Planner struct {
	tmpl  Template
	score model.ScoreFunc
	idx   *model.TableIndex // optional: incremental probable-row source
	eng   *deltaAdj         // optional: delta-driven repair engine (UseIncremental)
	debug bool              // cross-check incremental repairs against the spec

	removed  []bool
	assigned []model.RowID // assigned[t] = probable row currently matched, "" if none

	// Stats for benchmarks and reports.
	Repairs  int
	Inserts  int
	Removals int
	Augments int
}

// NewPlanner returns a planner for the given template and scoring function.
func NewPlanner(t Template, score model.ScoreFunc) *Planner {
	return &Planner{
		tmpl:     t.Clone(),
		score:    score,
		removed:  make([]bool, len(t.Rows)),
		assigned: make([]model.RowID, len(t.Rows)),
	}
}

// Template returns the active template (removed rows excluded), used for
// final-constraint checking and compensation estimation.
func (p *Planner) Template() Template {
	out := Template{Schema: p.tmpl.Schema}
	for i, tr := range p.tmpl.Rows {
		if !p.removed[i] {
			out.Rows = append(out.Rows, append(TemplateRow(nil), tr...))
		}
	}
	return out
}

// RemovedCount returns how many template rows have been dropped.
func (p *Planner) RemovedCount() int {
	n := 0
	for _, r := range p.removed {
		if r {
			n++
		}
	}
	return n
}

// InitActions returns the startup actions: populate the candidate table with
// the template rows, upvoting complete ones (§4.2 initialization).
func (p *Planner) InitActions() []Action {
	var out []Action
	for i, tr := range p.tmpl.Rows {
		seed := tr.EqVector()
		out = append(out, Action{
			Kind:     ActionInsert,
			Template: i,
			Seed:     seed,
			Upvote:   seed.IsComplete(),
		})
	}
	return out
}

// Assignment returns the current template→row correspondence (for tests and
// introspection). Unmatched or removed templates map to "".
func (p *Planner) Assignment() []model.RowID {
	return append([]model.RowID(nil), p.assigned...)
}

// AssignedRow returns the probable row currently matched to template row t
// ("" when unmatched or removed) without copying the whole assignment.
func (p *Planner) AssignedRow(t int) model.RowID { return p.assigned[t] }

// UseIndex makes Repair draw probable rows and same-key competition from an
// incrementally maintained TableIndex instead of rescanning the candidate
// table on every call. The index must be attached to the same replica Repair
// is called with (e.g. via rep.SetObserver), so it reflects every applied
// message. Repair still rebuilds the template×probable adjacency per call;
// UseIncremental removes that cost too.
func (p *Planner) UseIndex(idx *model.TableIndex) { p.idx = idx }

// UseIncremental switches Repair to the delta-driven fast path: a listener
// registered on the index maintains a persistent template×probable-row
// adjacency and the repair re-runs augmenting searches only for template
// rows a delta dirtied, so per-repair cost is proportional to the
// probable-set delta instead of |T|·|P|. The full-rebuild path remains the
// executable spec (and stays selected when UseIncremental is not called);
// both produce identical actions and assignments.
//
// Like UseIndex, the index must observe the same replica Repair is called
// with. Call once, before the first Repair.
func (p *Planner) UseIncremental(idx *model.TableIndex) {
	p.idx = idx
	p.eng = newDeltaAdj(p)
	idx.AddDeltaListener(p.eng)
	for _, r := range idx.Probable() {
		p.eng.ProbableAdded(r)
	}
}

// SetDebug enables the opt-in cross-check mode: every incremental Repair is
// replayed through the full-rebuild spec on a shadow planner and the two
// must produce identical actions, assignments, and removals, panicking on
// divergence. Expensive (it restores the O(|T|·|P|) spec cost); tests only.
func (p *Planner) SetDebug(on bool) { p.debug = on }

// Mode reports which repair path Repair runs ("full-rebuild" or
// "incremental"), for stats and reports.
func (p *Planner) Mode() string {
	if p.eng != nil {
		return "incremental"
	}
	return "full-rebuild"
}

// Repair revalidates the matching against the replica's current state and
// returns the actions needed to restore the PRI. Planned insertions are
// treated as satisfying their template row (the caller must execute them);
// the next Repair then matches the actually-inserted rows.
//
// With UseIncremental configured this runs the delta-driven fast path;
// otherwise the full-rebuild spec below.
//
//lint:hotpath
func (p *Planner) Repair(rep *sync.Replica) []Action {
	if p.eng != nil {
		return p.repairIncremental(rep)
	}
	return p.repairFull(rep) //lint:allow hotalloc full-rebuild spec path; the configured hot path is the incremental engine
}

// repairFull is the executable spec of one PRI repair: rebuild the
// template×probable adjacency from scratch, seed the matching with the
// previous assignment, and augment every free template row. The incremental
// path must produce byte-identical actions and assignments; tests and the
// planner's debug mode cross-check that.
func (p *Planner) repairFull(rep *sync.Replica) []Action {
	p.Repairs++
	var prob []*model.Row
	if p.idx != nil {
		prob = p.idx.Probable()
	} else {
		prob = Probable(rep.Table(), p.score)
	}

	// Index probable rows and build adjacency for active template rows.
	rowIdx := make(map[model.RowID]int, len(prob))
	for i, r := range prob {
		rowIdx[r.ID] = i
	}
	active := make([]int, 0, len(p.tmpl.Rows)) // template indexes still in T
	for t := range p.tmpl.Rows {
		if !p.removed[t] {
			active = append(active, t)
		}
	}
	adj := make([][]int, len(active))
	for ai, t := range active {
		tr := p.tmpl.Rows[t]
		for pi, r := range prob {
			if p.tmpl.MatchCandidate(tr, r.Vec) {
				adj[ai] = append(adj[ai], pi)
			}
		}
	}

	// Seed the matching with still-valid previous assignments (incremental
	// maintenance: only freed template rows need augmenting searches).
	m := Matching{Left: make([]int, len(active)), Right: make([]int, len(prob))}
	for i := range m.Left {
		m.Left[i] = -1
	}
	for i := range m.Right {
		m.Right[i] = -1
	}
	for ai, t := range active {
		id := p.assigned[t]
		if id == "" {
			continue
		}
		pi, ok := rowIdx[id]
		if !ok || m.Right[pi] != -1 || !p.tmpl.MatchCandidate(p.tmpl.Rows[t], prob[pi].Vec) {
			continue
		}
		m.Left[ai] = pi
		m.Right[pi] = ai
		m.Size++
	}

	// Augment every free template row.
	var free []int // indexes into active
	for ai := range active {
		if m.Left[ai] == -1 {
			p.Augments++
			if m.Augment(adj, ai) {
				m.Size++
			} else {
				free = append(free, ai)
			}
		}
	}

	// Handle templates that no existing probable row can satisfy.
	var actions []Action
	for _, ai := range free {
		t := active[ai]
		if p.insertable(rep, t) {
			actions = append(actions, p.insertAction(t))
			continue
		}
		// Shuffle: find a matched, insertable template row t' that can give
		// up its row to an alternating path from t, so t becomes matched
		// and t' (insertable) becomes free instead.
		shuffled := false
		for bi, t2 := range active {
			if bi == ai || m.Left[bi] == -1 || !p.insertable(rep, t2) {
				continue
			}
			saved := m.Left[bi]
			m.Unmatch(bi)
			p.Augments++
			if m.Augment(adj, ai) {
				m.Size++
				actions = append(actions, p.insertAction(t2))
				shuffled = true
				break
			}
			// Restore t2's pairing.
			m.Left[bi] = saved
			m.Right[saved] = bi
			m.Size++
		}
		if shuffled {
			continue
		}
		// No option left: drop the template row (§4.2).
		p.removed[t] = true
		p.Removals++
		actions = append(actions, Action{Kind: ActionRemoveTemplate, Template: t})
	}

	// Persist the assignment for the next incremental repair.
	for i := range p.assigned {
		p.assigned[i] = ""
	}
	for ai, t := range active {
		if pi := m.Left[ai]; pi != -1 {
			p.assigned[t] = prob[pi].ID
		}
	}
	return actions
}

// repairIncremental is the delta-driven fast path: the persistent adjacency
// maintained by the deltaAdj listener replaces the per-call rebuild, and the
// matching is re-seeded from the persisted assignment in O(|T|), so the only
// per-|P| work left is the augmenting searches for templates a delta
// actually freed. Step for step it mirrors repairFull — same seeding rule,
// same template order, same sorted-by-row-id exploration — so the two paths
// produce identical actions and assignments.
func (p *Planner) repairIncremental(rep *sync.Replica) []Action {
	var preAssigned []model.RowID
	var preRemoved []bool
	if p.debug {
		preAssigned = append([]model.RowID(nil), p.assigned...) //lint:allow hotalloc debug-mode snapshot for the cross-check replay
		preRemoved = append([]bool(nil), p.removed...)          //lint:allow hotalloc debug-mode snapshot for the cross-check replay
	}

	p.Repairs++
	// Flush the index so every delta up to the replica's current state has
	// reached the engine (Version is the cheapest flushing query).
	p.idx.Version()
	e := p.eng
	e.beginRepair()

	// Seed the matching with still-valid previous assignments (the spec's
	// seeding step, against the engine's slots instead of a rebuilt row
	// index).
	for t := range p.tmpl.Rows {
		if p.removed[t] {
			continue
		}
		id := p.assigned[t]
		if id == "" {
			continue
		}
		s, ok := e.rowSlot[id]
		if !ok || !e.live[s] || e.slotHolder(s) != -1 ||
			!p.tmpl.MatchCandidate(p.tmpl.Rows[t], e.slots[s].Vec) {
			continue
		}
		e.match(t, s)
	}

	// Augment every free template row, in template order.
	free := e.freeT[:0]
	for t := range p.tmpl.Rows {
		if p.removed[t] || e.matchT[t] != -1 {
			continue
		}
		p.Augments++
		if !e.augment(t) {
			free = append(free, t)
		}
	}
	e.freeT = free

	// Handle templates that no existing probable row can satisfy — the same
	// insert / shuffle / remove ladder as the spec.
	var actions []Action
	for _, t := range free {
		//lint:allow hotalloc insertion planning runs only for freed template rows (the rare augment ladder), off the per-delta path
		if p.insertable(rep, t) {
			actions = append(actions, p.insertAction(t)) //lint:allow hotalloc seeding an insert action is rare-path work for a freed template row
			continue
		}
		shuffled := false
		for t2 := range p.tmpl.Rows {
			//lint:allow hotalloc insertion planning runs only for freed template rows (the rare augment ladder), off the per-delta path
			if t2 == t || p.removed[t2] || e.matchT[t2] == -1 || !p.insertable(rep, t2) {
				continue
			}
			saved := e.matchT[t2]
			e.matchT[t2] = -1
			e.unmatchSlot(saved)
			p.Augments++
			if e.augment(t) {
				actions = append(actions, p.insertAction(t2)) //lint:allow hotalloc seeding an insert action is rare-path work for a freed template row
				shuffled = true
				break
			}
			e.match(t2, saved)
		}
		if shuffled {
			continue
		}
		p.removed[t] = true
		p.Removals++
		e.removeTemplate(t) //lint:allow hotalloc template removal is the last-resort action (section 4.2), not the per-delta path
		actions = append(actions, Action{Kind: ActionRemoveTemplate, Template: t})
	}

	// Persist the assignment for the next repair.
	for t := range p.tmpl.Rows {
		if p.removed[t] || e.matchT[t] == -1 {
			p.assigned[t] = ""
		} else {
			p.assigned[t] = e.slots[e.matchT[t]].ID
		}
	}

	if p.debug {
		p.crossCheckRepair(rep, preAssigned, preRemoved, actions) //lint:allow hotalloc debug-only replay through the full-rebuild spec
	}
	return actions
}

// crossCheckRepair replays the repair just performed through the
// full-rebuild spec, starting from the captured pre-repair state, and panics
// if the spec's actions, assignment, or removals differ (debug mode only).
func (p *Planner) crossCheckRepair(rep *sync.Replica, preAssigned []model.RowID, preRemoved []bool, actions []Action) {
	spec := &Planner{
		tmpl:     p.tmpl,
		score:    p.score,
		removed:  preRemoved,
		assigned: preAssigned,
	}
	specActions := spec.repairFull(rep)
	if len(specActions) != len(actions) {
		panic(fmt.Sprintf("constraint: incremental repair divergence: %d actions, spec %d (incr %v, spec %v)",
			len(actions), len(specActions), actions, specActions))
	}
	for i := range actions {
		a, b := actions[i], specActions[i]
		if a.Kind != b.Kind || a.Template != b.Template || a.Upvote != b.Upvote || !a.Seed.Equal(b.Seed) {
			panic(fmt.Sprintf("constraint: incremental repair divergence at action %d: incr %+v, spec %+v", i, a, b))
		}
	}
	for t := range p.assigned {
		if p.assigned[t] != spec.assigned[t] {
			panic(fmt.Sprintf("constraint: incremental repair divergence: template %d assigned %q, spec %q",
				t, p.assigned[t], spec.assigned[t]))
		}
		if p.removed[t] != spec.removed[t] {
			panic(fmt.Sprintf("constraint: incremental repair divergence: template %d removed=%v, spec %v",
				t, p.removed[t], spec.removed[t]))
		}
	}
}

func (p *Planner) insertAction(t int) Action {
	p.Inserts++
	seed := p.tmpl.Rows[t].EqVector()
	return Action{Kind: ActionInsert, Template: t, Seed: seed, Upvote: seed.IsComplete()}
}

// insertable reports whether inserting template row t's seed value now would
// produce a probable row, accounting for the vote counts the new row would
// inherit from the histories.
func (p *Planner) insertable(rep *sync.Replica, t int) bool {
	seed := p.tmpl.Rows[t].EqVector()
	up := rep.UH().Get(seed)
	down := rep.DH().SubsetSum(seed)
	if p.idx != nil {
		return WouldBeProbableIndexed(p.idx, rep.Schema(), p.score, seed, up, down)
	}
	return WouldBeProbable(rep.Table(), p.score, seed, up, down)
}

// CheckPRI verifies the Probable Rows Invariant against the replica: every
// active template row must have a distinct probable row subsuming it. Used
// by tests and the simulation harness.
func (p *Planner) CheckPRI(rep *sync.Replica) bool {
	prob := Probable(rep.Table(), p.score)
	act := p.Template()
	adj := make([][]int, len(act.Rows))
	for ti, tr := range act.Rows {
		for pi, r := range prob {
			if act.MatchCandidate(tr, r.Vec) {
				adj[ti] = append(adj[ti], pi)
			}
		}
	}
	return MaxMatching(adj, len(prob)).Size == len(act.Rows)
}
