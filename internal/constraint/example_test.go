package constraint_test

import (
	"fmt"

	"crowdfill/internal/constraint"
	"crowdfill/internal/model"
)

// ExampleTemplate_SatisfiedBy checks the paper's §2.3 values constraint
// against its §2.2 final table.
func ExampleTemplate_SatisfiedBy() {
	s := model.MustSchema("SoccerPlayer", []model.Column{
		{Name: "name"}, {Name: "nationality"}, {Name: "position"},
		{Name: "caps", Type: model.TypeInt}, {Name: "goals", Type: model.TypeInt},
	}, "name", "nationality")
	// One forward from any country, one Brazilian, one Spaniard.
	tmpl, _ := constraint.ValuesTemplate(s,
		model.VectorOf("", "", "FW", "", ""),
		model.VectorOf("", "Brazil", "", "", ""),
		model.VectorOf("", "Spain", "", "", ""),
	)
	final := []*model.Row{
		{ID: "r-1", Vec: model.VectorOf("Lionel Messi", "Argentina", "FW", "83", "37")},
		{ID: "r-2", Vec: model.VectorOf("Ronaldinho", "Brazil", "MF", "97", "33")},
		{ID: "r-3", Vec: model.VectorOf("Iker Casillas", "Spain", "GK", "150", "0")},
	}
	fmt.Println(tmpl.SatisfiedBy(final))
	fmt.Println(tmpl.SatisfiedBy(final[:2]))
	// Output:
	// true
	// false
}

// ExampleParsePred shows the predicate text forms the §2.3 predicates
// constraint uses.
func ExampleParsePred() {
	for _, s := range []string{"", "=FW", "Brazil", ">=30"} {
		p, _ := constraint.ParsePred(s)
		fmt.Printf("%q -> %q\n", s, p.String())
	}
	// Output:
	// "" -> ""
	// "=FW" -> "=FW"
	// "Brazil" -> "=Brazil"
	// ">=30" -> ">=30"
}
