package constraint

import (
	"fmt"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

func benchTable(n int) *model.Candidate {
	s := model.MustSchema("T", []model.Column{{Name: "k"}, {Name: "v"}}, "k")
	c := model.NewCandidate(s)
	for i := 0; i < n; i++ {
		vec := model.VectorOf(fmt.Sprintf("k%d", i), "x")
		if i%5 == 0 {
			vec[1] = model.Cell{}
		}
		c.Put(&model.Row{ID: model.RowID(fmt.Sprintf("r-%06d", i)), Vec: vec, Up: i % 3})
	}
	return c
}

func BenchmarkProbable(b *testing.B) {
	for _, n := range []int{20, 200, 2000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			c := benchTable(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Probable(c, model.MajorityShortcut(3))
			}
		})
	}
}

// BenchmarkPlannerRepair measures one Central Client message round at steady
// state: a vote flips one row out of the probable set (freeing its template),
// a repair reassigns it, the vote is undone, and a second repair settles.
// Votes travel the indexed per-value path, so the replica's share of the cost
// is O(1); the difference between modes is the repair itself. mode=full is
// the full-rebuild spec over the TableIndex (per-repair adjacency rebuild,
// O(|T|·|P|)); mode=incr is the delta-driven engine, whose per-repair cost
// must stay flat in the probable-set size (the acceptance bar: 1000-row cost
// within 3× of the 10-row cost; scripts/bench.sh extracts BENCH_planner.json
// from this benchmark's output).
func BenchmarkPlannerRepair(b *testing.B) {
	for _, mode := range []string{"full", "incr"} {
		for _, n := range []int{10, 100, 1000} {
			for _, tsize := range []int{4, 16} {
				if tsize+2 > n {
					continue // not enough probable rows: repairs would plan inserts
				}
				b.Run(fmt.Sprintf("mode=%s/rows=%d/tmpl=%d", mode, n, tsize), func(b *testing.B) {
					benchPlannerRepair(b, mode, n, tsize)
				})
			}
		}
	}
}

func benchPlannerRepair(b *testing.B, mode string, n, tsize int) {
	s := model.MustSchema("B", []model.Column{{Name: "k"}, {Name: "v"}}, "k")
	f := model.DefaultScore
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("b")

	// A same-key pair with the lowest row ids (so both start matched), then
	// distinct-key filler rows. All score 0 → all probable (rule 2). Upvoting
	// the pair's first row makes it positive, pushing its partner out of the
	// probable set; undoing restores it — an O(1)-message toggle.
	toggle := mkRow(b, rep, g, "k-pair", "x")
	toggleVec := model.VectorOf("k-pair", "x")
	mkRow(b, rep, g, "k-pair", "y")
	for i := 0; i < n-2; i++ {
		mkRow(b, rep, g, fmt.Sprintf("k%04d", i), "x")
	}

	idx := model.NewTableIndex(rep.Table(), f)
	rep.SetObserver(idx)
	p := NewPlanner(Cardinality(s, tsize), f)
	switch mode {
	case "full":
		p.UseIndex(idx)
	case "incr":
		p.UseIncremental(idx)
	}
	if acts := p.Repair(rep); len(acts) != 0 {
		b.Fatalf("setup repair planned actions: %v", acts)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rep.Upvote(toggle); err != nil {
			b.Fatal(err)
		}
		if acts := p.Repair(rep); len(acts) != 0 {
			b.Fatalf("repair planned actions: %v", acts)
		}
		if _, err := rep.UndoUpvote(toggleVec); err != nil {
			b.Fatal(err)
		}
		if acts := p.Repair(rep); len(acts) != 0 {
			b.Fatalf("repair planned actions: %v", acts)
		}
	}
}

// BenchmarkMatchingAugment measures one Unmatch+Augment cycle on a warm
// matching; the epoch-stamped scratch must keep it allocation-free.
func BenchmarkMatchingAugment(b *testing.B) {
	const n = 200
	adj := make([][]int, n)
	for i := range adj {
		for j := 0; j < n; j++ {
			adj[i] = append(adj[i], j)
		}
	}
	m := MaxMatching(adj, n)
	if m.Size != n {
		b.Fatal("matching broken")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Unmatch(0)
		if !m.Augment(adj, 0) {
			b.Fatal("augment failed")
		}
		m.Size++
	}
}

func BenchmarkMaxMatching(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Dense bipartite graph: every template row matches every row.
			adj := make([][]int, n)
			for i := range adj {
				for j := 0; j < n; j++ {
					adj[i] = append(adj[i], j)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m := MaxMatching(adj, n); m.Size != n {
					b.Fatal("matching broken")
				}
			}
		})
	}
}
