package constraint

import (
	"fmt"
	"testing"

	"crowdfill/internal/model"
)

func benchTable(n int) *model.Candidate {
	s := model.MustSchema("T", []model.Column{{Name: "k"}, {Name: "v"}}, "k")
	c := model.NewCandidate(s)
	for i := 0; i < n; i++ {
		vec := model.VectorOf(fmt.Sprintf("k%d", i), "x")
		if i%5 == 0 {
			vec[1] = model.Cell{}
		}
		c.Put(&model.Row{ID: model.RowID(fmt.Sprintf("r-%06d", i)), Vec: vec, Up: i % 3})
	}
	return c
}

func BenchmarkProbable(b *testing.B) {
	for _, n := range []int{20, 200, 2000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			c := benchTable(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Probable(c, model.MajorityShortcut(3))
			}
		})
	}
}

func BenchmarkMaxMatching(b *testing.B) {
	for _, n := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			// Dense bipartite graph: every template row matches every row.
			adj := make([][]int, n)
			for i := range adj {
				for j := 0; j < n; j++ {
					adj[i] = append(adj[i], j)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if m := MaxMatching(adj, n); m.Size != n {
					b.Fatal("matching broken")
				}
			}
		})
	}
}
