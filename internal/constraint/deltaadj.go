package constraint

import (
	"sort"

	"crowdfill/internal/model"
)

// eqKey identifies one (column, value) equality cell of a template row — the
// unit the delta adjacency's inverted index is keyed by.
type eqKey struct {
	col int
	val string
}

// deltaAdj is the incremental-repair engine behind Planner.UseIncremental:
// a persistent template×probable-row adjacency plus an epoch-stamped
// matching, maintained from model.TableIndex probable-set deltas so one
// PRI repair costs O(delta), not O(|T|·|P|).
//
// Structure:
//
//   - Every probable row ever seen occupies a slot; the row's adjacency
//     (which template rows it can satisfy, per Template.MatchCandidate) is
//     computed once on first sight, because a row's vector never changes
//     for its lifetime (fills replace rows wholesale, minting new ids).
//     Which templates to even check comes from an inverted index over the
//     templates' OpEq values: a row can only satisfy a template whose every
//     OpEq cell it contains, so templates are bucketed by their first OpEq
//     (column, value) — plus an "always" bucket for templates with no OpEq
//     cell — and a new row pulls only the buckets its set cells select.
//   - A row leaving the probable set merely marks its slot dead (O(1)):
//     vote changes move rows out of and back into the probable set without
//     changing their vectors, so the adjacency is kept and revived on
//     re-entry. Dead slots are compacted away once they outnumber the live
//     ones, keeping the amortized per-delta cost proportional to the delta.
//   - Per-template adjacency lists are kept sorted by row id — exactly the
//     exploration order the full-rebuild Repair uses (its probable rows
//     arrive sorted by id) — so the incremental augmenting searches visit
//     rows in the same order and reproduce the spec's assignments exactly.
//   - The matching is re-seeded from Planner.assigned at the start of every
//     repair (mirroring the spec's seeding step); the seed plus the
//     epoch-stamped matchR/seen arrays mean a repair clears O(|T|) state,
//     never O(|P|).
//
// The engine is driven inside index flushes (it implements
// model.ProbableDeltaListener); it never calls back into the index.
type deltaAdj struct {
	p *Planner

	// Inverted index over template OpEq values. Each active template row
	// appears in exactly one bucket: byEq under its first OpEq cell, or
	// always when it has none.
	always []int
	byEq   map[eqKey][]int

	// Probable-row slots. slots[s] is nil when the slot is free; live[s]
	// reports whether the slot's row is currently in the probable set.
	slots     []*model.Row
	live      []bool
	rowSlot   map[model.RowID]int
	freeSlots []int
	deadSlots int

	// adjT[t] lists the slots whose rows can satisfy template row t,
	// sorted by row id (dead slots included until compaction).
	adjT [][]int

	// Matching state. matchT[t] is the slot matched to template t (-1 when
	// unmatched); a slot s is matched iff matchREp[s] == repairEp, in which
	// case matchR[s] is its template. seenEp carries the augmenting
	// searches' visited marks, stamped with augEp.
	matchT   []int
	matchR   []int
	matchREp []uint64
	seenEp   []uint64
	repairEp uint64
	augEp    uint64

	freeT []int // scratch: templates still free after augmenting
}

func newDeltaAdj(p *Planner) *deltaAdj {
	e := &deltaAdj{
		p:       p,
		byEq:    make(map[eqKey][]int),
		rowSlot: make(map[model.RowID]int),
		adjT:    make([][]int, len(p.tmpl.Rows)),
		matchT:  make([]int, len(p.tmpl.Rows)),
	}
	for t, tr := range p.tmpl.Rows {
		if !p.removed[t] {
			e.indexTemplate(t, tr)
		}
	}
	return e
}

// indexTemplate files template row t under its inverted-index bucket.
func (e *deltaAdj) indexTemplate(t int, tr TemplateRow) {
	for col, pr := range tr {
		if pr.Op == OpEq {
			k := eqKey{col: col, val: pr.Val}
			e.byEq[k] = append(e.byEq[k], t)
			return
		}
	}
	e.always = append(e.always, t)
}

// removeTemplate drops template row t from the inverted index and releases
// its adjacency; the planner calls this when it removes t from T.
func (e *deltaAdj) removeTemplate(t int) {
	drop := func(lst []int) []int {
		for i, have := range lst {
			if have == t {
				return append(lst[:i], lst[i+1:]...)
			}
		}
		return lst
	}
	filed := false
	for col, pr := range e.p.tmpl.Rows[t] {
		if pr.Op == OpEq {
			k := eqKey{col: col, val: pr.Val}
			e.byEq[k] = drop(e.byEq[k])
			if len(e.byEq[k]) == 0 {
				delete(e.byEq, k)
			}
			filed = true
			break
		}
	}
	if !filed {
		e.always = drop(e.always)
	}
	e.adjT[t] = nil
}

// candidateTemplates visits every template row that could possibly match a
// row with vector v: the always bucket plus, for each set cell, the bucket
// of templates whose first OpEq cell is that (column, value). Each template
// lives in exactly one bucket, so no template is visited twice.
func (e *deltaAdj) candidateTemplates(v model.Vector, visit func(t int)) {
	for _, t := range e.always {
		visit(t) //lint:allow hotalloc non-escaping visit callback over index buckets
	}
	for col, cell := range v {
		if !cell.Set {
			continue
		}
		for _, t := range e.byEq[eqKey{col: col, val: cell.Val}] {
			visit(t) //lint:allow hotalloc non-escaping visit callback over index buckets
		}
	}
}

// allocSlot assigns a slot to a newly-seen probable row.
func (e *deltaAdj) allocSlot(r *model.Row) int {
	var s int
	if n := len(e.freeSlots); n > 0 {
		s = e.freeSlots[n-1]
		e.freeSlots = e.freeSlots[:n-1]
		e.slots[s] = r
		e.live[s] = true
		e.matchR[s], e.matchREp[s], e.seenEp[s] = -1, 0, 0
	} else {
		s = len(e.slots)
		e.slots = append(e.slots, r)
		e.live = append(e.live, true)
		e.matchR = append(e.matchR, -1)
		e.matchREp = append(e.matchREp, 0)
		e.seenEp = append(e.seenEp, 0)
	}
	e.rowSlot[r.ID] = s
	return s
}

// insertAdj adds slot s into template t's adjacency, keeping it sorted by
// row id.
func (e *deltaAdj) insertAdj(t, s int) {
	lst := e.adjT[t]
	id := e.slots[s].ID
	i := sort.Search(len(lst), func(i int) bool { return e.slots[lst[i]].ID >= id })
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = s
	e.adjT[t] = lst
}

// compact drops dead slots and filters them out of every adjacency list.
// Triggered when dead slots outnumber live ones, so its O(|P| + Σ deg) cost
// amortizes to O(1) per delta.
func (e *deltaAdj) compact() {
	dead := make([]bool, len(e.slots)) //lint:allow hotalloc compaction amortizes to O(1) per delta; the scratch bitmap is its one allocation
	for s, r := range e.slots {
		if r != nil && !e.live[s] {
			dead[s] = true
			delete(e.rowSlot, r.ID)
			e.slots[s] = nil
			e.freeSlots = append(e.freeSlots, s)
		}
	}
	for t, lst := range e.adjT {
		out := lst[:0]
		for _, s := range lst {
			if !dead[s] {
				out = append(out, s)
			}
		}
		e.adjT[t] = out
	}
	e.deadSlots = 0
}

// --- model.ProbableDeltaListener ---

// ProbableAdded registers a row entering the probable set: a revival flips
// the existing slot live in O(1); a genuinely new row gets a slot and its
// adjacency, computed against only the templates the inverted index selects.
func (e *deltaAdj) ProbableAdded(r *model.Row) {
	if s, ok := e.rowSlot[r.ID]; ok {
		if !e.live[s] {
			e.live[s] = true
			e.slots[s] = r
			e.deadSlots--
		}
		return
	}
	s := e.allocSlot(r)
	e.candidateTemplates(r.Vec,
		//lint:allow hotalloc non-escaping visit callback
		func(t int) {
			if !e.p.removed[t] && e.p.tmpl.MatchCandidate(e.p.tmpl.Rows[t], r.Vec) {
				e.insertAdj(t, s)
			}
		})
}

// ProbableRemoved marks the row's slot dead. The adjacency is retained: if
// the removal is a vote flip the row will revive with the same vector, and
// if the row truly left the table the slot is reclaimed at the next compact.
func (e *deltaAdj) ProbableRemoved(r *model.Row) {
	s, ok := e.rowSlot[r.ID]
	if !ok || !e.live[s] {
		return
	}
	e.live[s] = false
	e.deadSlots++
	if e.deadSlots > (len(e.rowSlot)-e.deadSlots)+16 {
		e.compact()
	}
}

// ProbableUpdated is a vote change on a row that stayed probable: adjacency
// and matching depend only on the vector, so there is nothing to maintain.
func (e *deltaAdj) ProbableUpdated(*model.Row) {}

// IndexReset drops every slot and adjacency list; the index's rebuild
// re-delivers a ProbableAdded per surviving probable row, and the next
// repair re-seeds the matching from the planner's persisted assignment
// (exactly the spec's seeding step, so a snapshot reload does not perturb
// the assignment).
func (e *deltaAdj) IndexReset() {
	e.slots = nil
	e.live = nil
	e.rowSlot = make(map[model.RowID]int)
	e.freeSlots = nil
	e.deadSlots = 0
	e.matchR = nil
	e.matchREp = nil
	e.seenEp = nil
	for t := range e.adjT {
		e.adjT[t] = nil
	}
}

// --- matching operations (valid within one repair epoch) ---

// beginRepair opens a new matching epoch: every template and slot starts
// unmatched, at O(|T|) cost (slot state is invalidated by the epoch bump).
func (e *deltaAdj) beginRepair() {
	e.repairEp++
	for t := range e.matchT {
		e.matchT[t] = -1
	}
}

// slotHolder returns the template matched to slot s this epoch, or -1.
func (e *deltaAdj) slotHolder(s int) int {
	if e.matchREp[s] == e.repairEp {
		return e.matchR[s]
	}
	return -1
}

// match pairs template t with slot s.
func (e *deltaAdj) match(t, s int) {
	e.matchT[t] = s
	e.matchR[s] = t
	e.matchREp[s] = e.repairEp
}

// unmatchSlot frees slot s (its template's matchT entry is the caller's to
// fix up).
func (e *deltaAdj) unmatchSlot(s int) { e.matchREp[s] = 0 }

// augment searches for an augmenting path from free template t over the
// persistent adjacency — the same alternating-path search, in the same
// sorted-by-row-id exploration order, as the full-rebuild spec.
func (e *deltaAdj) augment(t int) bool {
	e.augEp++
	return e.kuhn(t)
}

func (e *deltaAdj) kuhn(t int) bool {
	for _, s := range e.adjT[t] {
		if !e.live[s] || e.seenEp[s] == e.augEp {
			continue
		}
		e.seenEp[s] = e.augEp
		if h := e.slotHolder(s); h == -1 || e.kuhn(h) {
			e.match(t, s)
			return true
		}
	}
	return false
}
