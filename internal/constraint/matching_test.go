package constraint

import (
	"math/rand"
	"testing"
)

// TestMatchingAugmentNoAllocs proves the epoch-stamped visited marks make
// repeated Unmatch+Augment cycles allocation-free once the scratch array has
// grown to the right side's size.
func TestMatchingAugmentNoAllocs(t *testing.T) {
	const nLeft, nRight = 32, 64
	rng := rand.New(rand.NewSource(11))
	adj := make([][]int, nLeft)
	for l := range adj {
		for r := 0; r < nRight; r++ {
			if rng.Intn(3) == 0 {
				adj[l] = append(adj[l], r)
			}
		}
	}
	m := MaxMatching(adj, nRight) // warms the scratch to nRight
	if m.Size == 0 {
		t.Fatal("degenerate instance: empty matching")
	}

	l := 0
	for m.Left[l] == -1 {
		l++
	}
	allocs := testing.AllocsPerRun(100, func() {
		m.Unmatch(l)
		if !m.Augment(adj, l) {
			t.Fatal("augmenting a just-unmatched vertex must succeed")
		}
		m.Size++
	})
	if allocs != 0 {
		t.Fatalf("Unmatch+Augment allocated %.1f times per run, want 0", allocs)
	}
}

// TestMatchingScratchGrows checks Augment stays correct when the right side
// grows between calls (the scratch must follow).
func TestMatchingScratchGrows(t *testing.T) {
	adj := [][]int{{0}}
	m := MaxMatching(adj, 1)
	if m.Size != 1 {
		t.Fatalf("size = %d, want 1", m.Size)
	}

	// Grow the right side and add a left vertex adjacent to old and new.
	adj = [][]int{{0}, {0, 5}}
	m.Left = append(m.Left, -1)
	m.Right = append(m.Right, -1, -1, -1, -1, -1)
	if !m.Augment(adj, 1) {
		t.Fatal("augment after growth failed")
	}
	if m.Left[1] != 5 || m.Right[5] != 1 {
		t.Fatalf("new vertex matched to %d, want 5", m.Left[1])
	}
}
