// Package constraint implements CrowdFill's constraints on collected data
// (paper §2.3 and §4): cardinality constraints, values constraints, and the
// predicates-constraint generalization (described but not implemented in the
// paper's system; implemented here). It also provides the probable-rows
// computation, maximum bipartite matching between template rows and probable
// rows, and the Probable Rows Invariant repair planner that drives the
// system's Central Client.
package constraint

import (
	"encoding/json"
	"fmt"
	"strings"

	"crowdfill/internal/model"
)

// Op is a predicate operator on a template cell.
type Op int

const (
	// OpAny means the template cell is empty: any collected value (or no
	// value, for probable-row matching) is acceptable.
	OpAny Op = iota
	// OpEq requires the cell to hold exactly the operand value — this is
	// the paper's values constraint ("a value v is equivalent to =v").
	OpEq
	// OpNe requires the cell value to differ from the operand.
	OpNe
	// OpLt, OpLe, OpGt, OpGe compare using the column's type ordering.
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = map[Op]string{
	OpAny: "", OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

// Pred is one template-cell predicate.
type Pred struct {
	Op  Op
	Val string
}

// Any is the unconstrained predicate.
var Any = Pred{Op: OpAny}

// Eq returns the "=v" predicate.
func Eq(v string) Pred { return Pred{Op: OpEq, Val: v} }

// Ge returns the ">=v" predicate.
func Ge(v string) Pred { return Pred{Op: OpGe, Val: v} }

// Le returns the "<=v" predicate.
func Le(v string) Pred { return Pred{Op: OpLe, Val: v} }

// Gt returns the ">v" predicate.
func Gt(v string) Pred { return Pred{Op: OpGt, Val: v} }

// Lt returns the "<v" predicate.
func Lt(v string) Pred { return Pred{Op: OpLt, Val: v} }

// Ne returns the "!=v" predicate.
func Ne(v string) Pred { return Pred{Op: OpNe, Val: v} }

// String renders the predicate in its parseable text form.
func (p Pred) String() string {
	if p.Op == OpAny {
		return ""
	}
	return opNames[p.Op] + p.Val
}

// ParsePred parses the text form: "" (any), "=v", "!=v", "<v", "<=v", ">v",
// ">=v". A bare value with no operator is treated as "=value".
func ParsePred(s string) (Pred, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Any, nil
	case strings.HasPrefix(s, ">="):
		return mk(OpGe, s[2:])
	case strings.HasPrefix(s, "<="):
		return mk(OpLe, s[2:])
	case strings.HasPrefix(s, "!="):
		return mk(OpNe, s[2:])
	case strings.HasPrefix(s, "="):
		return mk(OpEq, s[1:])
	case strings.HasPrefix(s, ">"):
		return mk(OpGt, s[1:])
	case strings.HasPrefix(s, "<"):
		return mk(OpLt, s[1:])
	default:
		return mk(OpEq, s)
	}
}

func mk(op Op, val string) (Pred, error) {
	val = strings.TrimSpace(val)
	if val == "" {
		return Any, fmt.Errorf("constraint: predicate %q has no operand", opNames[op])
	}
	return Pred{Op: op, Val: val}, nil
}

// Holds reports whether a present value satisfies the predicate, comparing
// with the column type's ordering.
func (p Pred) Holds(t model.Type, val string) bool {
	switch p.Op {
	case OpAny:
		return true
	case OpEq:
		return val == p.Val
	case OpNe:
		return val != p.Val
	case OpLt:
		return model.CompareTyped(t, val, p.Val) < 0
	case OpLe:
		return model.CompareTyped(t, val, p.Val) <= 0
	case OpGt:
		return model.CompareTyped(t, val, p.Val) > 0
	case OpGe:
		return model.CompareTyped(t, val, p.Val) >= 0
	}
	return false
}

// MarshalJSON encodes the predicate as its text form.
func (p Pred) MarshalJSON() ([]byte, error) { return json.Marshal(p.String()) }

// UnmarshalJSON decodes the text form.
func (p *Pred) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	got, err := ParsePred(s)
	if err != nil {
		return err
	}
	*p = got
	return nil
}
