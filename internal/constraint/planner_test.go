package constraint

import (
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// execAction applies a planner action to the replica the way the Central
// Client does: insert, then fill the seed's cells, then optionally upvote.
// Returns the final row id (or "" for removals).
func execAction(t testing.TB, rep *sync.Replica, g *sync.IDGen, a Action) model.RowID {
	t.Helper()
	if a.Kind != ActionInsert {
		return ""
	}
	m, err := rep.Insert(g.Next())
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	cur := m.Row
	for col, cell := range a.Seed {
		if !cell.Set {
			continue
		}
		nid := g.Next()
		if _, err := rep.Fill(cur, col, cell.Val, nid); err != nil {
			t.Fatalf("seed fill: %v", err)
		}
		cur = nid
	}
	if a.Upvote {
		if _, err := rep.Upvote(cur); err != nil {
			t.Fatalf("seed upvote: %v", err)
		}
	}
	return cur
}

// mkRow builds a row in the replica via insert+fills, returning its final id.
func mkRow(t testing.TB, rep *sync.Replica, g *sync.IDGen, vals ...string) model.RowID {
	t.Helper()
	m, err := rep.Insert(g.Next())
	if err != nil {
		t.Fatalf("insert: %v", err)
	}
	cur := m.Row
	for col, v := range vals {
		if v == "" {
			continue
		}
		nid := g.Next()
		if _, err := rep.Fill(cur, col, v, nid); err != nil {
			t.Fatalf("fill: %v", err)
		}
		cur = nid
	}
	return cur
}

// TestPlannerFigure4 walks the paper's §4.3 example: the bipartite matching
// survives one repair via an augmenting path (Figure 4b–d) and requires a
// row insertion in the next (Figure 4e–f).
func TestPlannerFigure4(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	tmpl := paperValuesTemplate(t) // a: FW, b: Brazil, c: Spain
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("w")

	r1 := mkRow(t, rep, g, "Neymar", "Brazil", "FW")
	r2 := mkRow(t, rep, g, "Ronaldinho", "Brazil", "FW")
	mkRow(t, rep, g, "", "Spain", "")
	r4 := mkRow(t, rep, g, "Messi", "Spain", "FW")
	if _, err := rep.Downvote(r2); err != nil { // row 2 starts with one downvote
		t.Fatal(err)
	}

	p := NewPlanner(tmpl, f)
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("initial repair should need no actions, got %v", acts)
	}
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold after initial repair")
	}

	// Figure 4b-d: a second downvote removes row 2 from P; the augmenting
	// path b–1–a–4 restores the matching without inserting.
	if _, err := rep.Downvote(r2); err != nil {
		t.Fatal(err)
	}
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("repair after row-2 removal should find an augmenting path, got %v", acts)
	}
	asg := p.Assignment()
	if asg[1] != r1 { // template b (Brazil) must take row 1, the only Brazilian left
		t.Fatalf("template b assigned %s, want %s", asg[1], r1)
	}
	if asg[0] != r4 { // template a (FW) shifts to row 4
		t.Fatalf("template a assigned %s, want %s", asg[0], r4)
	}
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold after augmenting")
	}

	// Figure 4e-f: Messi's caps get filled (row 4 -> 4'), then 4' is
	// downvoted twice; no augmenting path exists for template a, so the
	// planner inserts a row seeded with a's value (position=FW).
	var r4p model.RowID
	{
		m, err := rep.Fill(r4, 3, "82", g.Next())
		if err != nil {
			t.Fatal(err)
		}
		r4p = m.NewRow
	}
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("fill alone should not break the PRI, got %v", acts)
	}
	for i := 0; i < 2; i++ {
		if _, err := rep.Downvote(r4p); err != nil {
			t.Fatal(err)
		}
	}
	acts := p.Repair(rep)
	if len(acts) != 1 || acts[0].Kind != ActionInsert || acts[0].Template != 0 {
		t.Fatalf("want one insert for template a, got %v", acts)
	}
	if !acts[0].Seed.Equal(model.VectorOf("", "", "FW", "", "")) {
		t.Fatalf("insert seed = %v, want (·,·,FW,·,·)", acts[0].Seed)
	}
	if acts[0].Upvote {
		t.Fatalf("partial seed must not be auto-upvoted")
	}
	execAction(t, rep, g, acts[0])
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("repair after insert should be clean, got %v", acts)
	}
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold at the end of the scenario")
	}
	if rep.Table().Len() != 5 {
		t.Fatalf("candidate table has %d rows, want 5 (paper's final state)", rep.Table().Len())
	}
	if p.Inserts != 1 || p.Removals != 0 {
		t.Fatalf("stats: inserts=%d removals=%d", p.Inserts, p.Removals)
	}
}

// TestPlannerShuffle forces the §4.2 "shuffle" case: the free template row's
// own value cannot be inserted (its key is owned by a positive row), but
// handing that row over and re-inserting for a different, insertable
// template row repairs the PRI.
func TestPlannerShuffle(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	tmpl, err := ValuesTemplate(s,
		model.VectorOf("Messi", "Argentina", "", "", ""), // t0: pinned key
		model.NewVector(5), // t1: empty (cardinality slot)
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("w")
	// Create the complete row first so its id sorts before the partial one;
	// Kuhn's recursive reassignment then leaves t0 holding the partial row.
	sRow := mkRow(t, rep, g, "Messi", "Argentina", "FW", "83", "37")
	rm := mkRow(t, rep, g, "Messi", "Argentina") // partial, matches t0

	p := NewPlanner(tmpl, f)
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("both rows probable: no actions expected, got %v", acts)
	}
	asg := p.Assignment()
	if asg[0] != rm || asg[1] != sRow {
		t.Fatalf("assignment = %v, want [%s %s]", asg, rm, sRow)
	}

	// Two upvotes make sRow positive; rm (same key, zero score) drops out
	// of P. t0 is freed; inserting (Messi, Argentina) would conflict with
	// the positive row, so the planner shuffles: t0 takes sRow and a new
	// row is inserted for the empty template t1.
	rep.Upvote(sRow)
	rep.Upvote(sRow)
	acts := p.Repair(rep)
	if len(acts) != 1 || acts[0].Kind != ActionInsert || acts[0].Template != 1 {
		t.Fatalf("want one insert for template 1 via shuffle, got %v", acts)
	}
	asg = p.Assignment()
	if asg[0] != sRow {
		t.Fatalf("template 0 should now hold the positive row, got %v", asg)
	}
	execAction(t, rep, g, acts[0])
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("post-shuffle repair should be clean, got %v", acts)
	}
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold after shuffle")
	}
}

// TestPlannerRemoveTemplate: when a template row's value is voted down and
// nothing can satisfy it, the planner drops it from T (§4.2's last resort).
func TestPlannerRemoveTemplate(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	tmpl, err := ValuesTemplate(s, model.VectorOf("Messi", "Brazil", "", "", "")) // wrong data
	if err != nil {
		t.Fatal(err)
	}
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("cc")

	p := NewPlanner(tmpl, f)
	init := p.InitActions()
	if len(init) != 1 || init[0].Upvote {
		t.Fatalf("init actions = %v", init)
	}
	seeded := execAction(t, rep, g, init[0])
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("seeded template should satisfy PRI, got %v", acts)
	}

	// Workers downvote the bogus (Messi, Brazil) combination twice: the
	// seeded row leaves P, reinsertion would inherit the downvotes, and no
	// shuffle can help a single-row template.
	rep.Downvote(seeded)
	rep.Downvote(seeded)
	acts := p.Repair(rep)
	if len(acts) != 1 || acts[0].Kind != ActionRemoveTemplate || acts[0].Template != 0 {
		t.Fatalf("want template removal, got %v", acts)
	}
	if p.RemovedCount() != 1 {
		t.Fatalf("RemovedCount = %d", p.RemovedCount())
	}
	if got := len(p.Template().Rows); got != 0 {
		t.Fatalf("active template rows = %d, want 0", got)
	}
	// Repair is now stable.
	if acts := p.Repair(rep); len(acts) != 0 {
		t.Fatalf("post-removal repair should be clean, got %v", acts)
	}
}

// TestPlannerInitActions: complete template rows are upvoted at seeding time
// (§4.2: CC upvotes all complete template rows).
func TestPlannerInitActions(t *testing.T) {
	s := soccerSchema(t)
	tmpl, err := ValuesTemplate(s,
		model.VectorOf("Lionel Messi", "Argentina", "FW", "83", "37"), // complete
		model.VectorOf("", "Brazil", "", "", ""),                      // partial
	)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlanner(tmpl, model.MajorityShortcut(3))
	acts := p.InitActions()
	if len(acts) != 2 {
		t.Fatalf("init actions = %d, want 2", len(acts))
	}
	if !acts[0].Upvote || acts[1].Upvote {
		t.Fatalf("only the complete template row should be upvoted: %v", acts)
	}

	// Executing the init actions satisfies the PRI immediately.
	rep := sync.NewReplica(s)
	g := sync.NewIDGen("cc")
	for _, a := range acts {
		execAction(t, rep, g, a)
	}
	if got := p.Repair(rep); len(got) != 0 {
		t.Fatalf("repair after init = %v, want none", got)
	}
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold after init")
	}
}

// TestPlannerCardinalityGrowth: with a pure cardinality constraint, workers
// completing and downvoting rows cause the planner to keep exactly enough
// probable rows around.
func TestPlannerCardinalityGrowth(t *testing.T) {
	s := soccerSchema(t)
	f := model.MajorityShortcut(3)
	p := NewPlanner(Cardinality(s, 4), f)
	rep := sync.NewReplica(s)
	cc := sync.NewIDGen("cc")
	w := sync.NewIDGen("w")

	for _, a := range p.InitActions() {
		execAction(t, rep, cc, a)
	}
	if got := p.Repair(rep); len(got) != 0 {
		t.Fatalf("init repair: %v", got)
	}

	// A worker ruins one empty row by filling it with a combination that
	// then gets downvoted out of P; the planner must insert a replacement.
	rows := Probable(rep.Table(), f)
	id := rows[0].ID
	m, err := rep.Fill(id, 0, "Junk", w.Next())
	if err != nil {
		t.Fatal(err)
	}
	rep.Downvote(m.NewRow)
	rep.Downvote(m.NewRow)
	acts := p.Repair(rep)
	if len(acts) != 1 || acts[0].Kind != ActionInsert {
		t.Fatalf("want one replacement insert, got %v", acts)
	}
	execAction(t, rep, cc, acts[0])
	if !p.CheckPRI(rep) {
		t.Fatalf("PRI should hold after replacement")
	}
	if got := len(Probable(rep.Table(), f)); got < 4 {
		t.Fatalf("probable rows = %d, want >= 4", got)
	}
}
