// Package frontend implements CrowdFill's front-end server (paper §3.2): the
// REST API applications use to create, update, and delete table
// specifications, launch data collection (publishing a task on the
// marketplace and starting a back-end collection), retrieve collected data,
// and pay workers. Metadata and results live in the embedded document store.
package frontend

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	gosync "sync"

	"crowdfill/internal/docstore"
	"crowdfill/internal/marketplace"
	"crowdfill/internal/model"
	"crowdfill/internal/server"
	"crowdfill/internal/spec"
	"crowdfill/internal/sync"
)

// specDoc is the stored form of a specification and its lifecycle state.
type specDoc struct {
	Spec   spec.TableSpec `json:"spec"`
	Status string         `json:"status"` // "draft", "running", "done", "paid"
	HITID  string         `json:"hitId,omitempty"`
}

// resultDoc is the stored form of a finished collection.
type resultDoc struct {
	Rows [][]string         `json:"rows"`
	Pay  map[string]float64 `json:"pay,omitempty"`
}

// traceDoc archives the complete worker-action trace the back-end keeps for
// bookkeeping (§3.3), plus the Central Client's log.
type traceDoc struct {
	Trace []sync.Message `json:"trace"`
	CCLog []sync.Message `json:"ccLog"`
}

// Frontend is the front-end server state.
type Frontend struct {
	mu      gosync.Mutex
	store   *docstore.Store
	market  *marketplace.Marketplace
	running map[string]*server.NetServer
	// maxWorkers caps assignments per published HIT.
	maxWorkers int
}

// New builds a front-end over a document store and a marketplace.
func New(store *docstore.Store, market *marketplace.Marketplace, maxWorkers int) *Frontend {
	if maxWorkers <= 0 {
		maxWorkers = 10
	}
	return &Frontend{
		store:      store,
		market:     market,
		running:    make(map[string]*server.NetServer),
		maxWorkers: maxWorkers,
	}
}

// Handler returns the REST API plus the per-collection WebSocket endpoints:
//
//	POST   /api/specs            create a table specification
//	GET    /api/specs            list specifications
//	GET    /api/specs/{id}       fetch one
//	PUT    /api/specs/{id}       update a draft
//	DELETE /api/specs/{id}       delete a draft
//	POST   /api/specs/{id}/start publish a HIT and start collection
//	GET    /api/specs/{id}/status collection progress
//	GET    /api/specs/{id}/result the final table (once done)
//	POST   /api/specs/{id}/pay   compute compensation and pay bonuses
//	GET    /ws/{id}?worker=W     worker WebSocket endpoint
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/specs", f.handleSpecs)
	mux.HandleFunc("/api/specs/", f.handleSpec)
	mux.HandleFunc("/ws/", f.handleWS)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (f *Frontend) specs() *docstore.Collection { return f.store.Collection("specs") }

func (f *Frontend) handleSpecs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var ts spec.TableSpec
		if err := json.NewDecoder(r.Body).Decode(&ts); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if _, err := ts.Build(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		id, err := f.specs().Insert(specDoc{Spec: ts, Status: "draft"})
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id, "status": "draft"})
	case http.MethodGet:
		docs := f.specs().All()
		out := make([]map[string]any, 0, len(docs))
		for _, d := range docs {
			var sd specDoc
			if err := d.Decode(&sd); err != nil {
				continue
			}
			out = append(out, map[string]any{"id": d.ID, "name": sd.Spec.Name, "status": sd.Status})
		}
		writeJSON(w, http.StatusOK, out)
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET or POST"))
	}
}

// handleSpec dispatches /api/specs/{id}[/{action}].
func (f *Frontend) handleSpec(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/specs/")
	id, action, _ := strings.Cut(rest, "/")
	if id == "" {
		writeErr(w, http.StatusNotFound, errors.New("missing spec id"))
		return
	}
	var sd specDoc
	if err := f.specs().Get(id, &sd); err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	switch action {
	case "":
		f.handleSpecCRUD(w, r, id, sd)
	case "start":
		f.handleStart(w, r, id, sd)
	case "status":
		f.handleStatus(w, r, id, sd)
	case "result":
		f.handleResult(w, r, id, sd)
	case "trace":
		f.handleTrace(w, r, id)
	case "statements":
		f.handleStatements(w, r, id)
	case "pay":
		f.handlePay(w, r, id, sd)
	default:
		writeErr(w, http.StatusNotFound, fmt.Errorf("unknown action %q", action))
	}
}

func (f *Frontend) handleSpecCRUD(w http.ResponseWriter, r *http.Request, id string, sd specDoc) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "spec": sd.Spec, "status": sd.Status})
	case http.MethodPut:
		if sd.Status != "draft" {
			writeErr(w, http.StatusConflict, errors.New("only drafts can be updated"))
			return
		}
		var ts spec.TableSpec
		if err := json.NewDecoder(r.Body).Decode(&ts); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		if _, err := ts.Build(); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		sd.Spec = ts
		if err := f.specs().Put(id, sd); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": sd.Status})
	case http.MethodDelete:
		if sd.Status == "running" {
			writeErr(w, http.StatusConflict, errors.New("stop the collection first"))
			return
		}
		if err := f.specs().Delete(id); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": "deleted"})
	default:
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET, PUT or DELETE"))
	}
}

func (f *Frontend) handleStart(w http.ResponseWriter, r *http.Request, id string, sd specDoc) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if sd.Status != "draft" {
		writeErr(w, http.StatusConflict, fmt.Errorf("spec is %s", sd.Status))
		return
	}
	cfg, err := sd.Spec.Build()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	core, err := server.New(cfg)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	wsPath := "/ws/" + id
	hit, err := f.market.CreateHIT("CrowdFill: "+sd.Spec.Name, wsPath, f.maxWorkers)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	f.running[id] = server.NewNetServer(core, nil)
	sd.Status = "running"
	sd.HITID = hit.ID
	if err := f.specs().Put(id, sd); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{
		"id": id, "status": "running", "hit": hit.ID, "ws": wsPath,
	})
}

func (f *Frontend) handleStatus(w http.ResponseWriter, r *http.Request, id string, sd specDoc) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	f.mu.Lock()
	ns := f.running[id]
	f.mu.Unlock()
	out := map[string]any{"id": id, "status": sd.Status}
	if ns != nil {
		ns.WithCore(func(c *server.Core) {
			out["finalRows"] = len(c.FinalTable())
			out["candidateRows"] = c.Master().Table().Len()
			out["done"] = c.Done()
			out["clients"] = c.Clients()
			out["messages"] = len(c.Trace())
		})
		if done, _ := out["done"].(bool); done && sd.Status == "running" {
			f.finish(id, &sd, ns)
			out["status"] = sd.Status
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// finish persists the final table and the action trace, then flips the spec
// to done; idempotent.
func (f *Frontend) finish(id string, sd *specDoc, ns *server.NetServer) {
	var rows [][]string
	var td traceDoc
	ns.WithCore(func(c *server.Core) {
		for _, row := range c.FinalTable() {
			rows = append(rows, vectorToStrings(row.Vec))
		}
		td.Trace = append(td.Trace, c.Trace()...)
		td.CCLog = append(td.CCLog, c.CCLog()...)
	})
	_ = f.store.Collection("results").Put(id, resultDoc{Rows: rows})
	_ = f.store.Collection("traces").Put(id, td)
	sd.Status = "done"
	_ = f.specs().Put(id, *sd)
	if sd.HITID != "" {
		_ = f.market.Expire(sd.HITID)
	}
}

func vectorToStrings(v model.Vector) []string {
	out := make([]string, len(v))
	for i, c := range v {
		if c.Set {
			out[i] = c.Val
		}
	}
	return out
}

func (f *Frontend) handleResult(w http.ResponseWriter, r *http.Request, id string, sd specDoc) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	var rd resultDoc
	if err := f.store.Collection("results").Get(id, &rd); err != nil {
		// Fall back to a live snapshot for running collections.
		f.mu.Lock()
		ns := f.running[id]
		f.mu.Unlock()
		if ns == nil {
			writeErr(w, http.StatusNotFound, errors.New("no result yet"))
			return
		}
		ns.WithCore(func(c *server.Core) {
			for _, row := range c.FinalTable() {
				rd.Rows = append(rd.Rows, vectorToStrings(row.Vec))
			}
		})
	}
	writeJSON(w, http.StatusOK, rd)
}

func (f *Frontend) handlePay(w http.ResponseWriter, r *http.Request, id string, sd specDoc) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use POST"))
		return
	}
	f.mu.Lock()
	ns := f.running[id]
	f.mu.Unlock()
	if ns == nil {
		writeErr(w, http.StatusConflict, errors.New("collection not running or already archived"))
		return
	}
	if !ns.Done() {
		writeErr(w, http.StatusConflict, errors.New("collection not finished"))
		return
	}
	var perWorker map[string]float64
	var payErr error
	ns.WithCore(func(c *server.Core) {
		alloc, err := c.ComputePay()
		if err != nil {
			payErr = err
			return
		}
		perWorker = alloc.PerWorker
	})
	if payErr != nil {
		writeErr(w, http.StatusInternalServerError, payErr)
		return
	}
	for worker, amount := range perWorker {
		if amount <= 0 {
			continue
		}
		// Workers may have been recruited out-of-band (the paper's own
		// experiments did exactly that) rather than through a HIT.
		f.market.Register(worker)
		if err := f.market.PayBonus(worker, amount, "CrowdFill "+id); err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
	}
	var rd resultDoc
	_ = f.store.Collection("results").Get(id, &rd)
	rd.Pay = perWorker
	_ = f.store.Collection("results").Put(id, rd)
	sd.Status = "paid"
	_ = f.specs().Put(id, sd)
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "status": "paid", "pay": perWorker})
}

// handleTrace serves the archived (or live) worker-action trace.
func (f *Frontend) handleTrace(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	var td traceDoc
	if err := f.store.Collection("traces").Get(id, &td); err != nil {
		f.mu.Lock()
		ns := f.running[id]
		f.mu.Unlock()
		if ns == nil {
			writeErr(w, http.StatusNotFound, errors.New("no trace yet"))
			return
		}
		ns.WithCore(func(c *server.Core) {
			td.Trace = append(td.Trace, c.Trace()...)
			td.CCLog = append(td.CCLog, c.CCLog()...)
		})
	}
	writeJSON(w, http.StatusOK, td)
}

// handleStatements renders per-worker pay statements (itemized §5.2
// allocations) for a finished collection.
func (f *Frontend) handleStatements(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, errors.New("use GET"))
		return
	}
	f.mu.Lock()
	ns := f.running[id]
	f.mu.Unlock()
	if ns == nil {
		writeErr(w, http.StatusConflict, errors.New("collection not running or already archived"))
		return
	}
	statements := map[string]string{}
	var serr error
	ns.WithCore(func(c *server.Core) {
		alloc, err := c.ComputePay()
		if err != nil {
			serr = err
			return
		}
		cols := make([]string, c.Master().Schema().NumColumns())
		for i, col := range c.Master().Schema().Columns {
			cols[i] = col.Name
		}
		for worker := range alloc.PerWorker {
			statements[worker] = alloc.FormatStatement(worker, c.Trace(), cols, c.StartTime())
		}
	})
	if serr != nil {
		writeErr(w, http.StatusInternalServerError, serr)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "statements": statements})
}

// handleWS upgrades worker connections for a running collection. Workers
// normally arrive by accepting the HIT; the worker query parameter carries
// the marketplace identity.
func (f *Frontend) handleWS(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/ws/")
	f.mu.Lock()
	ns := f.running[id]
	f.mu.Unlock()
	if ns == nil {
		writeErr(w, http.StatusNotFound, errors.New("no running collection"))
		return
	}
	ns.Handler().ServeHTTP(w, r)
}

// AcceptWorker simulates a marketplace worker accepting the spec's HIT,
// returning the worker identity to connect with.
func (f *Frontend) AcceptWorker(id string) (string, error) {
	var sd specDoc
	if err := f.specs().Get(id, &sd); err != nil {
		return "", err
	}
	if sd.HITID == "" {
		return "", errors.New("frontend: collection has no HIT")
	}
	return f.market.Accept(sd.HITID)
}

// Collection exposes the running back-end server for a spec id (nil if not
// running), for in-process drivers and tests.
func (f *Frontend) Collection(id string) *server.NetServer {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.running[id]
}
