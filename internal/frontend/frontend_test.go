package frontend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"crowdfill/internal/client"
	"crowdfill/internal/docstore"
	"crowdfill/internal/marketplace"
	"crowdfill/internal/spec"
	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
	"crowdfill/internal/wsock"
)

func testFrontend(t *testing.T) (*Frontend, *httptest.Server, *marketplace.Marketplace) {
	t.Helper()
	store, err := docstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	market := marketplace.New(1, 20, true)
	f := New(store, market, 5)
	srv := httptest.NewServer(f.Handler())
	t.Cleanup(srv.Close)
	return f, srv, market
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode, out
}

func kvSpec() spec.TableSpec {
	return spec.TableSpec{
		Name:        "KV",
		Columns:     []spec.ColumnSpec{{Name: "k"}, {Name: "v"}},
		Key:         []string{"k"},
		Scoring:     spec.ScoringSpec{Kind: "majority", K: 3},
		Cardinality: 2,
		Budget:      4,
		Scheme:      "uniform",
	}
}

func TestSpecCRUD(t *testing.T) {
	_, srv, _ := testFrontend(t)
	// Create.
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", kvSpec())
	if code != http.StatusCreated {
		t.Fatalf("create = %d %v", code, out)
	}
	id := out["id"].(string)

	// List.
	code, _ = doJSON(t, "GET", srv.URL+"/api/specs", nil)
	if code != http.StatusOK {
		t.Fatalf("list = %d", code)
	}
	// Fetch.
	code, out = doJSON(t, "GET", srv.URL+"/api/specs/"+id, nil)
	if code != http.StatusOK || out["status"] != "draft" {
		t.Fatalf("get = %d %v", code, out)
	}
	// Update.
	updated := kvSpec()
	updated.Budget = 6
	code, _ = doJSON(t, "PUT", srv.URL+"/api/specs/"+id, updated)
	if code != http.StatusOK {
		t.Fatalf("put = %d", code)
	}
	// Delete.
	code, _ = doJSON(t, "DELETE", srv.URL+"/api/specs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("delete = %d", code)
	}
	code, _ = doJSON(t, "GET", srv.URL+"/api/specs/"+id, nil)
	if code != http.StatusNotFound {
		t.Fatalf("get after delete = %d", code)
	}
}

func TestSpecValidationRejected(t *testing.T) {
	_, srv, _ := testFrontend(t)
	bad := kvSpec()
	bad.Columns = nil
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs", bad); code != http.StatusBadRequest {
		t.Fatalf("invalid spec accepted: %d", code)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/ghost", nil); code != http.StatusNotFound {
		t.Fatalf("missing id = %d", code)
	}
	if code, _ := doJSON(t, "PATCH", srv.URL+"/api/specs", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("bad method = %d", code)
	}
}

// TestFullLifecycle drives spec → start → workers collect over WebSocket →
// status/result → pay, checking the marketplace ledger at the end.
func TestFullLifecycle(t *testing.T) {
	f, srv, market := testFrontend(t)
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", kvSpec())
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	id := out["id"].(string)

	// Start publishes a HIT.
	code, out = doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/start", nil)
	if code != http.StatusOK {
		t.Fatalf("start = %d %v", code, out)
	}
	wsPath := out["ws"].(string)
	// Starting twice conflicts.
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/start", nil); code != http.StatusConflict {
		t.Fatalf("double start = %d", code)
	}

	// Two marketplace workers accept the HIT and collect the table.
	cfg, err := kvSpec().Build()
	if err != nil {
		t.Fatal(err)
	}
	wsBase := "ws" + strings.TrimPrefix(srv.URL, "http") + wsPath
	var runners []*client.Runner
	for i := 0; i < 2; i++ {
		worker, err := f.AcceptWorker(id)
		if err != nil {
			t.Fatalf("AcceptWorker: %v", err)
		}
		ws, err := wsock.Dial(wsBase + "?worker=" + worker)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c, err := client.New(client.Config{ID: worker, Worker: worker, Schema: cfg.Schema})
		if err != nil {
			t.Fatal(err)
		}
		runners = append(runners, client.NewRunner(c, transport.WrapWS(ws)))
	}
	defer func() {
		for _, r := range runners {
			r.Close()
		}
	}()

	// Worker 0 fills both rows; worker 1 upvotes them.
	fillAll := func(r *client.Runner, keys []string) {
		for _, key := range keys {
			key := key
			waitFor(t, func() bool {
				err := r.Do(func(c *client.Client) ([]sync.Message, error) {
					for _, row := range c.Rows(nil) {
						if row.Vec.IsEmpty() {
							return c.Fill(row.ID, 0, key)
						}
					}
					return nil, fmt.Errorf("no empty row yet")
				})
				return err == nil
			})
			waitFor(t, func() bool {
				err := r.Do(func(c *client.Client) ([]sync.Message, error) {
					for _, row := range c.Rows(nil) {
						if row.Vec[0].Set && row.Vec[0].Val == key && !row.Vec[1].Set {
							return c.Fill(row.ID, 1, "val-"+key)
						}
					}
					return nil, fmt.Errorf("row not found")
				})
				return err == nil
			})
		}
	}
	fillAll(runners[0], []string{"alpha", "bravo"})
	for _, key := range []string{"alpha", "bravo"} {
		key := key
		waitFor(t, func() bool {
			err := runners[1].Do(func(c *client.Client) ([]sync.Message, error) {
				for _, row := range c.Rows(nil) {
					if row.Vec.IsComplete() && row.Vec[0].Val == key && !c.VotedOn(row.Vec) {
						m, err := c.Upvote(row.ID)
						if err != nil {
							return nil, err
						}
						return []sync.Message{m}, nil
					}
				}
				return nil, fmt.Errorf("row not complete yet")
			})
			return err == nil
		})
	}
	waitFor(t, func() bool { return runners[0].Done() && runners[1].Done() })

	// Status flips to done and archives the result.
	code, out = doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/status", nil)
	if code != http.StatusOK || out["done"] != true {
		t.Fatalf("status = %d %v", code, out)
	}
	code, out = doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result = %d %v", code, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 2 {
		t.Fatalf("result rows = %v", rows)
	}

	// Pay distributes the budget via marketplace bonuses.
	code, out = doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/pay", nil)
	if code != http.StatusOK {
		t.Fatalf("pay = %d %v", code, out)
	}
	if got := market.TotalPaid(); got <= 0 || got > 4.0001 {
		t.Fatalf("marketplace total paid = %v", got)
	}
	if len(market.Ledger()) == 0 {
		t.Fatalf("ledger empty")
	}
}

func TestResultBeforeStart(t *testing.T) {
	_, srv, _ := testFrontend(t)
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", kvSpec())
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := out["id"].(string)
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/result", nil); code != http.StatusNotFound {
		t.Fatalf("result before start = %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/pay", nil); code != http.StatusConflict {
		t.Fatalf("pay before start = %d", code)
	}
	// WS endpoint 404s for unknown collections.
	resp, err := http.Get(srv.URL + "/ws/ghost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ws ghost = %d", resp.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("condition not reached in time")
}

// TestSpecsPersistAcrossRestart: specs and archived results live in the
// document store, so a new front-end over the same file sees them.
func TestSpecsPersistAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/store.json"
	store, err := docstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	market := marketplace.New(1, 5, true)
	f := New(store, market, 5)
	srv := httptest.NewServer(f.Handler())
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", kvSpec())
	if code != http.StatusCreated {
		t.Fatalf("create: %d", code)
	}
	id := out["id"].(string)
	srv.Close()

	store2, err := docstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	f2 := New(store2, marketplace.New(1, 5, true), 5)
	srv2 := httptest.NewServer(f2.Handler())
	defer srv2.Close()
	code, out = doJSON(t, "GET", srv2.URL+"/api/specs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("get after restart = %d %v", code, out)
	}
	if out["status"] != "draft" {
		t.Fatalf("status after restart = %v", out["status"])
	}
}

func TestSpecCRUDEdgeCases(t *testing.T) {
	f, srv, _ := testFrontend(t)
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", kvSpec())
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := out["id"].(string)

	// Invalid update payloads rejected.
	if code, _ := doJSON(t, "PUT", srv.URL+"/api/specs/"+id, "not-a-spec"); code != http.StatusBadRequest {
		t.Fatalf("bad put = %d", code)
	}
	bad := kvSpec()
	bad.Columns = nil
	if code, _ := doJSON(t, "PUT", srv.URL+"/api/specs/"+id, bad); code != http.StatusBadRequest {
		t.Fatalf("invalid put = %d", code)
	}
	// Wrong methods on the CRUD endpoint.
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id, nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("post on id = %d", code)
	}
	// Unknown action.
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/frobnicate", nil); code != http.StatusNotFound {
		t.Fatalf("unknown action = %d", code)
	}
	// Wrong methods on the action endpoints.
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/start", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET start = %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/status", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/result", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("POST result = %d", code)
	}
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/pay", nil); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET pay = %d", code)
	}
	// Missing id segment.
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/", nil); code != http.StatusNotFound {
		t.Fatalf("empty id = %d", code)
	}
	// AcceptWorker before start fails.
	if _, err := f.AcceptWorker(id); err == nil {
		t.Fatalf("accept before start should fail")
	}
	if _, err := f.AcceptWorker("ghost"); err == nil {
		t.Fatalf("accept on missing spec should fail")
	}
	// Collection handle is nil before start.
	if f.Collection(id) != nil {
		t.Fatalf("collection before start should be nil")
	}

	// Start, then: delete running conflicts, update running conflicts,
	// live-result path works, pay-before-done conflicts.
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/start", nil); code != http.StatusOK {
		t.Fatalf("start failed")
	}
	if f.Collection(id) == nil {
		t.Fatalf("collection after start should exist")
	}
	if code, _ := doJSON(t, "DELETE", srv.URL+"/api/specs/"+id, nil); code != http.StatusConflict {
		t.Fatalf("delete running = %d", code)
	}
	if code, _ := doJSON(t, "PUT", srv.URL+"/api/specs/"+id, kvSpec()); code != http.StatusConflict {
		t.Fatalf("update running = %d", code)
	}
	code, out = doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("live result = %d %v", code, out)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/pay", nil); code != http.StatusConflict {
		t.Fatalf("pay before done = %d", code)
	}
	// Default maxWorkers path in New.
	f2 := New(mustStore(t), marketplace.New(2, 3, true), 0)
	if f2.maxWorkers != 10 {
		t.Fatalf("default maxWorkers = %d", f2.maxWorkers)
	}
}

func mustStore(t *testing.T) *docstore.Store {
	t.Helper()
	s, err := docstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTraceEndpoint: the §3.3 bookkeeping trace is available live and stays
// archived after completion.
func TestTraceEndpoint(t *testing.T) {
	f, srv, _ := testFrontend(t)
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", kvSpec())
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := out["id"].(string)
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/trace", nil); code != http.StatusNotFound {
		t.Fatalf("trace before start = %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/start", nil); code != http.StatusOK {
		t.Fatal("start failed")
	}
	// Live trace: CC seeding appears even before workers act.
	code, out = doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/trace", nil)
	if code != http.StatusOK {
		t.Fatalf("live trace = %d %v", code, out)
	}
	if cc, ok := out["ccLog"].([]any); !ok || len(cc) == 0 {
		t.Fatalf("cc log missing: %v", out)
	}
	// A worker acts; the trace grows.
	worker, err := f.AcceptWorker(id)
	if err != nil {
		t.Fatal(err)
	}
	ns := f.Collection(id)
	serverSide, clientSide := transport.Pipe(64)
	go ns.ServeConn(serverSide, worker)
	cfg, _ := kvSpec().Build()
	cl, err := client.New(client.Config{ID: worker, Worker: worker, Schema: cfg.Schema})
	if err != nil {
		t.Fatal(err)
	}
	run := client.NewRunner(cl, clientSide)
	defer run.Close()
	waitFor(t, func() bool {
		ok := false
		run.View(func(c *client.Client) { ok = len(c.Rows(nil)) == 2 })
		return ok
	})
	if err := run.Do(func(c *client.Client) ([]sync.Message, error) {
		return c.Fill(c.Rows(nil)[0].ID, 0, "x")
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, out := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/trace", nil)
		tr, _ := out["trace"].([]any)
		return len(tr) >= 1
	})
}

func TestStatementsEndpoint(t *testing.T) {
	f, srv, _ := testFrontend(t)
	// Default (u−d) scoring: a completed row is final from its auto-upvote,
	// so the fill contributes (and appears on the statement) immediately.
	ks := kvSpec()
	ks.Scoring = spec.ScoringSpec{}
	code, out := doJSON(t, "POST", srv.URL+"/api/specs", ks)
	if code != http.StatusCreated {
		t.Fatal(code)
	}
	id := out["id"].(string)
	if code, _ := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/statements", nil); code != http.StatusConflict {
		t.Fatalf("statements before start = %d", code)
	}
	if code, _ := doJSON(t, "POST", srv.URL+"/api/specs/"+id+"/start", nil); code != http.StatusOK {
		t.Fatal("start failed")
	}
	// One worker contributes a fill so a statement exists.
	worker, err := f.AcceptWorker(id)
	if err != nil {
		t.Fatal(err)
	}
	ns := f.Collection(id)
	serverSide, clientSide := transport.Pipe(64)
	go ns.ServeConn(serverSide, worker)
	cfg, _ := ks.Build()
	cl, _ := client.New(client.Config{ID: worker, Worker: worker, Schema: cfg.Schema})
	run := client.NewRunner(cl, clientSide)
	defer run.Close()
	waitFor(t, func() bool {
		ok := false
		run.View(func(c *client.Client) { ok = len(c.Rows(nil)) == 2 })
		return ok
	})
	if err := run.Do(func(c *client.Client) ([]sync.Message, error) {
		return c.Fill(c.Rows(nil)[0].ID, 0, "x")
	}); err != nil {
		t.Fatal(err)
	}
	if err := run.Do(func(c *client.Client) ([]sync.Message, error) {
		for _, row := range c.Rows(nil) {
			if row.Vec[0].Set && !row.Vec[1].Set {
				return c.Fill(row.ID, 1, "1")
			}
		}
		return nil, fmt.Errorf("not ready")
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		code, out := doJSON(t, "GET", srv.URL+"/api/specs/"+id+"/statements", nil)
		if code != http.StatusOK {
			return false
		}
		sts, _ := out["statements"].(map[string]any)
		s, _ := sts[worker].(string)
		return strings.Contains(s, "fill k") && strings.Contains(s, "total")
	})
}
