package sync

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"crowdfill/internal/model"
)

// codecMessages is the shared table of messages exercising every field,
// every omitempty boundary, string-escaping edge cases, and float rendering
// edge cases. Both the encoder identity test and the decoder parity test run
// over it.
func codecMessages() []Message {
	return []Message{
		{},
		{Type: MsgInsert, Row: "r1", NewRow: "r1"},
		{Type: MsgReplace, Row: "r1", NewRow: "r2", Vec: model.VectorOf("a", ""), Origin: "c1", Worker: "w1", Seq: 7, TS: 42, Col: 1, Val: "a"},
		{Type: MsgUpvote, Vec: model.VectorOf("", "b"), Auto: true},
		{Type: MsgDownvote, Vec: model.Vector{}},                        // empty vec → omitted
		{Type: MsgDone, Seq: -3, TS: -1, Col: -2},                       // negative ints survive omitempty
		{Type: MsgType(-7), Row: "?", Val: "x"},                         // unknown negative type
		{Type: MsgReplace, Vec: model.Vector{{}, {Set: true}}, Val: ""}, // unset + set-empty cells
		// String escaping: quotes, backslashes, control bytes, HTML escapes,
		// U+2028/U+2029, invalid UTF-8, multibyte runes.
		{Type: MsgInsert, Val: `quote " backslash \ slash /`},
		{Type: MsgInsert, Val: "tab\tnewline\ncr\rbell\x07null\x00"},
		{Type: MsgInsert, Val: "<script>&amp;</script>"},
		{Type: MsgInsert, Val: "line\u2028para\u2029sep"},
		{Type: MsgInsert, Val: "bad utf8 \xff\xfe mid \xc3\x28 end"},
		{Type: MsgInsert, Val: "héllo wörld 漢字 🙂"},
		{Type: MsgInsert, Row: model.RowID("key with \" and \\ and \x1f")},
		// Snapshots: nil and empty collections, multiple sorted map keys,
		// rows with nil and populated vectors.
		{Type: MsgSnapshot, Snapshot: &Snapshot{}},
		{Type: MsgSnapshot, Snapshot: &Snapshot{
			Rows:   []model.Row{},
			UH:     map[string]int{},
			DH:     map[string]int{},
			UHVecs: map[string]model.Vector{},
			DHVecs: map[string]model.Vector{},
		}},
		{Type: MsgSnapshot, Snapshot: &Snapshot{
			Rows: []model.Row{
				{ID: "r1", Vec: model.VectorOf("a", "b"), Up: 2, Down: 1},
				{ID: "r2"}, // nil vector encodes as []
				{ID: "r3", Vec: model.Vector{{}, {Set: true, Val: "x"}}, Up: -1},
			},
			UH:     map[string]int{"z": 1, "a": 2, "m": 3, "": 0},
			DH:     map[string]int{"1|a": -5},
			UHVecs: map[string]model.Vector{"z": model.VectorOf("z"), "a": nil, "m": {}},
			DHVecs: map[string]model.Vector{"1|a": {{Set: true, Val: "a"}}},
		}},
		// Estimates: float rendering boundaries for the ES6-style encoder.
		{Type: MsgEstimate, Estimates: &Estimates{}},
		{Type: MsgEstimate, Estimates: &Estimates{
			PerColumn: []float64{0, 1, -1, 0.1, 2.5, 1e-6, 9.9e-7, 1e-7, 1e20, 1e21, 1e22, -1e21,
				1e-21, 123456789.123456789, math.MaxFloat64, math.SmallestNonzeroFloat64,
				math.Copysign(0, -1), 3, 0.30000000000000004},
			Upvote:   1e-9,
			Downvote: -2.5e21,
		}},
		{Type: MsgEstimate, Estimates: &Estimates{PerColumn: []float64{}}},
	}
}

// TestCodecWireByteIdentity proves the append-based encoder emits exactly
// the bytes json.Marshal does, message by message.
func TestCodecWireByteIdentity(t *testing.T) {
	for i, m := range codecMessages() {
		want, err := encodeMessageJSON(m)
		if err != nil {
			t.Fatalf("message %d: reference encode: %v", i, err)
		}
		got := AppendMessage(nil, m)
		if !bytes.Equal(got, want) {
			t.Errorf("message %d: wire bytes differ\n got: %s\nwant: %s", i, got, want)
		}
		got2, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("message %d: EncodeMessage: %v", i, err)
		}
		if !bytes.Equal(got2, want) {
			t.Errorf("message %d: EncodeMessage differs from json.Marshal", i)
		}
	}
}

// TestCodecAppendPreservesPrefix checks AppendMessage really appends.
func TestCodecAppendPreservesPrefix(t *testing.T) {
	prefix := []byte("PREFIX")
	out := AppendMessage(append([]byte(nil), prefix...), Message{Type: MsgDone})
	if !bytes.HasPrefix(out, prefix) {
		t.Fatalf("prefix clobbered: %s", out)
	}
	if string(out[len(prefix):]) != `{"type":6}` {
		t.Fatalf("appended bytes = %s", out[len(prefix):])
	}
}

// TestCodecEncodeNonFinite: json.Marshal rejects NaN/Inf; EncodeMessage must
// as well.
func TestCodecEncodeNonFinite(t *testing.T) {
	bad := []Message{
		{Type: MsgEstimate, Estimates: &Estimates{Upvote: math.NaN()}},
		{Type: MsgEstimate, Estimates: &Estimates{Downvote: math.Inf(1)}},
		{Type: MsgEstimate, Estimates: &Estimates{PerColumn: []float64{0, math.Inf(-1)}}},
	}
	for i, m := range bad {
		if _, err := encodeMessageJSON(m); err == nil {
			t.Fatalf("message %d: reference encoder accepted non-finite float", i)
		}
		if _, err := EncodeMessage(m); err == nil {
			t.Errorf("message %d: EncodeMessage accepted non-finite float", i)
		}
	}
}

// codecDecodeInputs are wire inputs — valid, degenerate, and malformed —
// whose decode behavior must match json.Unmarshal exactly: same
// accept/reject verdict, and identical resulting Message on accept.
func codecDecodeInputs() []string {
	return []string{
		// Well-formed messages.
		`{"type":1}`,
		`{"type":2,"row":"r1","newRow":"r2","vec":["a",null],"origin":"c","worker":"w","seq":7,"ts":42,"auto":true,"col":1,"val":"a"}`,
		`{"type":5,"snapshot":{"rows":[{"id":"r1","vec":["a"],"up":1,"down":0}],"uh":{"a":1},"dh":null,"uhVecs":{"a":["a"]},"dhVecs":null}}`,
		`{"type":7,"estimates":{"perColumn":[0.5,1e-9,2.5e21],"upvote":0.1,"downvote":0.2}}`,
		// Whitespace tolerance.
		" \t\r\n {\"type\" : 1 , \"row\" :\n\"r\" } \n",
		// Top-level null and null fields.
		`null`,
		`{"type":null,"row":null,"vec":null,"auto":null,"seq":null,"snapshot":null,"estimates":null}`,
		`{"vec":null}`, // pointer-receiver UnmarshalJSON on addressable field runs → empty non-nil Vector
		`{"snapshot":{"rows":null,"uh":{"k":null},"uhVecs":{"k":null}}}`,
		`{"estimates":{"perColumn":[1,null,3],"upvote":null}}`,
		`{"snapshot":{"rows":[null,{"id":"r"}]}}`, // null array element → zero Row
		// Unknown fields skipped, any value shape.
		`{"type":1,"bogus":{"deep":[1,"two",{"three":null},true]},"row":"r"}`,
		`{"unknown":"only"}`,
		// Case-insensitive fallback + exact-match priority + duplicate keys.
		`{"TYPE":3}`,
		`{"Type":3,"type":4}`,
		`{"type":4,"TYPE":3}`,
		`{"NEWROW":"x","newRow":"y"}`,
		`{"newrow":"z"}`,
		`{"type":1,"type":2}`, // duplicate key: last wins
		// Kelvin sign (U+212A) folds to 'k' under EqualFold — exercises the
		// non-ASCII fold path ("wor\u212aer" must match the "worker" field).
		"{\"wor\u212aer\":\"w\"}",
		// Number edge cases.
		`{"seq":-0}`,
		`{"seq":9223372036854775807}`,
		`{"seq":9223372036854775808}`,    // int64 overflow → error both sides
		`{"seq":1.0}`,                    // float syntax into int → error
		`{"seq":1e2}`,                    // exponent into int → error
		`{"ts":01}`,                      // leading zero → syntax error
		`{"estimates":{"upvote":1e400}}`, // ParseFloat range error
		`{"estimates":{"upvote":-1.5e-3}}`,
		`{"estimates":{"upvote":5}}`,
		// String edge cases: escapes, surrogates, lone surrogates, invalid
		// UTF-8, control chars.
		`{"val":"Aé三"}`,
		`{"val":"😀"}`,
		`{"val":"\ud83d"}`,
		`{"val":"\ud83dx"}`,
		`{"val":"\ude00\ud83dA"}`,
		`{"val":"\ud83d\ude00"}`, // escaped surrogate pair
		`{"val":"a\/b\"c\\d\be\ff\ng\rh\ti"}`,
		`{"val":"\x41"}`, // invalid escape
		`{"val":"\u12g4"}`,
		`{"val":"\u"}`,
		"{\"val\":\"raw\xffbytes\"}",
		"{\"val\":\"ctrl\x01char\"}", // raw control char in string → error
		`{"val":"unterminated`,
		// Wrong-type values into fields.
		`{"type":"1"}`,
		`{"row":1}`,
		`{"auto":"true"}`,
		`{"vec":{"a":1}}`,
		`{"vec":[1]}`,
		`{"vec":["a",["b"]]}`,
		`{"snapshot":[1]}`,
		`{"snapshot":{"rows":{"a":1}}}`,
		`{"snapshot":{"uh":[1]}}`,
		`{"snapshot":{"uh":{"a":"b"}}}`,
		`{"estimates":{"perColumn":["x"]}}`,
		// Structural syntax errors.
		``,
		` `,
		`not json`,
		`{`,
		`}`,
		`{}`,
		`{}x`,
		`{} ` + "\x00",
		`{"type":1,}`,
		`{,"type":1}`,
		`{"type" 1}`,
		`{"type":1 "row":"r"}`,
		`[{"type":1}]`,
		`"just a string"`,
		`123`,
		`true`,
		`nul`,
		`nullx`,
		`{"type":tru}`,
		`{"vec":["a",]}`,
		`{"vec":["a"`,
		`{"seq":}`,
		`{"seq":-}`,
		`{"seq":1.}`,
		`{"seq":1e}`,
		`{"seq":1e+}`,
		// Deep nesting just under and over json's 10000-depth scanner limit
		// (inside an unknown field, so only skipValue sees it).
		`{"x":` + strings.Repeat(`[`, 9998) + strings.Repeat(`]`, 9998) + `}`,
		`{"x":` + strings.Repeat(`[`, 10001) + strings.Repeat(`]`, 10001) + `}`,
	}
}

// TestCodecDecodeParity proves DecodeMessageInto accepts exactly what
// json.Unmarshal accepts and yields an identical Message when it does.
func TestCodecDecodeParity(t *testing.T) {
	for i, in := range codecDecodeInputs() {
		want, wantErr := decodeMessageJSON([]byte(in))
		got, gotErr := DecodeMessage([]byte(in))
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("input %d %.60q: verdict mismatch: json err=%v, codec err=%v", i, in, wantErr, gotErr)
			continue
		}
		if wantErr != nil {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("input %d %.60q: decoded message differs\n got: %#v\nwant: %#v", i, in, got, want)
		}
	}
}

// TestCodecDecodeDoesNotRetainInput: mutating the input buffer after decode
// must not change the decoded message — the transport reuses read buffers.
func TestCodecDecodeDoesNotRetainInput(t *testing.T) {
	data := []byte(`{"type":2,"row":"row-id","vec":["alpha","beta"],"val":"esc\nval","snapshot":{"uh":{"key":1},"uhVecs":{"key":["k"]}}}`)
	var m Message
	if err := DecodeMessageInto(data, &m); err != nil {
		t.Fatal(err)
	}
	before, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		data[i] = 'Z'
	}
	after, err := EncodeMessage(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("decoded message aliases input buffer:\nbefore: %s\n after: %s", before, after)
	}
}

// TestCodecDecodeIntoResets: a reused target must not leak fields from the
// previous decode.
func TestCodecDecodeIntoResets(t *testing.T) {
	var m Message
	if err := DecodeMessageInto([]byte(`{"type":2,"row":"r","val":"v","auto":true,"snapshot":{}}`), &m); err != nil {
		t.Fatal(err)
	}
	if err := DecodeMessageInto([]byte(`{"type":1}`), &m); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, Message{Type: MsgInsert}) {
		t.Fatalf("stale fields survived reuse: %#v", m)
	}
}

// TestCodecEncodeAllocs: encoding into a pre-grown buffer allocates nothing
// for snapshot-free messages (the hot path: every op message).
func TestCodecEncodeAllocs(t *testing.T) {
	m := Message{Type: MsgReplace, Row: "r1", NewRow: "r2", Vec: model.VectorOf("a", "b"),
		Origin: "client-1", Worker: "w1", Seq: 123, TS: 456789, Col: 1, Val: "b"}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendMessage(buf[:0], m)
	})
	if allocs != 0 {
		t.Errorf("AppendMessage: %v allocs/op, want 0", allocs)
	}
}

// TestCodecDecodeAllocs: decoding a typical op message allocates only what
// the message retains (strings + one vector), bounded well below
// encoding/json's reflection machinery.
func TestCodecDecodeAllocs(t *testing.T) {
	data := []byte(`{"type":2,"row":"r1","newRow":"r2","vec":["a","b"],"origin":"client-1","worker":"w1","seq":123,"ts":456789,"col":1,"val":"b"}`)
	var m Message
	allocs := testing.AllocsPerRun(200, func() {
		if err := DecodeMessageInto(data, &m); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 10
	if allocs > maxAllocs {
		t.Errorf("DecodeMessageInto: %v allocs/op, want <= %d", allocs, maxAllocs)
	}
}
