package sync

import (
	"crowdfill/internal/model"

	"bytes"
	"testing"
)

// FuzzMessageDecode checks that the wire codec never panics on arbitrary
// input and that decoding is stable: any input that decodes must survive an
// encode → decode round trip with an identical re-encoding (the trace relies
// on this to replay byte-identically).
func FuzzMessageDecode(f *testing.F) {
	seed := []Message{
		{Type: MsgInsert, Row: "r1", NewRow: "r1"},
		{Type: MsgReplace, Row: "r1", Vec: model.VectorOf("a", ""), Worker: "w1", Seq: 7, TS: 42},
		{Type: MsgUpvote, Vec: model.VectorOf("", "b"), Auto: true},
		{Type: MsgEstimate, Estimates: &Estimates{PerColumn: []float64{0.1}, Upvote: 0.02}},
		{Type: MsgSnapshot, Snapshot: &Snapshot{UH: map[string]int{"a|b": 2}}},
	}
	for _, m := range seed {
		data, err := EncodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"type":99,"row":"?"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return // malformed input is rejected, not round-tripped
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		enc2, err := EncodeMessage(m2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable round trip:\n first: %s\nsecond: %s", enc, enc2)
		}
	})
}
