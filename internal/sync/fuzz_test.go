package sync

import (
	"crowdfill/internal/model"

	"bytes"
	"reflect"
	"testing"
)

// FuzzMessageDecode checks that the wire codec never panics on arbitrary
// input and that decoding is stable: any input that decodes must survive an
// encode → decode round trip with an identical re-encoding (the trace relies
// on this to replay byte-identically).
func FuzzMessageDecode(f *testing.F) {
	seed := []Message{
		{Type: MsgInsert, Row: "r1", NewRow: "r1"},
		{Type: MsgReplace, Row: "r1", Vec: model.VectorOf("a", ""), Worker: "w1", Seq: 7, TS: 42},
		{Type: MsgUpvote, Vec: model.VectorOf("", "b"), Auto: true},
		{Type: MsgEstimate, Estimates: &Estimates{PerColumn: []float64{0.1}, Upvote: 0.02}},
		{Type: MsgSnapshot, Snapshot: &Snapshot{UH: map[string]int{"a|b": 2}}},
	}
	for _, m := range seed {
		data, err := EncodeMessage(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"type":99,"row":"?"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			// Malformed input is rejected, not round-tripped — but the
			// hand-rolled decoder must reject exactly what the reference
			// json decoder rejects.
			if _, jerr := decodeMessageJSON(data); jerr == nil {
				t.Fatalf("codec rejected input json.Unmarshal accepts: %v", err)
			}
			return
		}
		if jm, jerr := decodeMessageJSON(data); jerr != nil {
			t.Fatalf("codec accepted input json.Unmarshal rejects: %v", jerr)
		} else if !reflect.DeepEqual(m, jm) {
			t.Fatalf("codec and json decode disagree:\ncodec: %#v\n json: %#v", m, jm)
		}
		enc, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v", err)
		}
		if jenc, jerr := encodeMessageJSON(m); jerr != nil || !bytes.Equal(enc, jenc) {
			t.Fatalf("codec and json encodings differ:\ncodec: %s\n json: %s (err=%v)", enc, jenc, jerr)
		}
		m2, err := DecodeMessage(enc)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v", err)
		}
		enc2, err := EncodeMessage(m2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("unstable round trip:\n first: %s\nsecond: %s", enc, enc2)
		}
	})
}

// FuzzCodecDifferential drives the hand-rolled codec and the encoding/json
// reference over the same arbitrary input: accept/reject verdicts must
// match, accepted inputs must decode to identical messages, and re-encoding
// both must yield identical wire bytes. This is the standing proof that the
// codec swap cannot change what any peer observes on the wire.
func FuzzCodecDifferential(f *testing.F) {
	for _, m := range codecMessages() {
		if data, err := encodeMessageJSON(m); err == nil {
			f.Add(data)
		}
	}
	for _, in := range codecDecodeInputs() {
		f.Add([]byte(in))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		jm, jerr := decodeMessageJSON(data)
		var m Message
		cerr := DecodeMessageInto(data, &m)
		if (jerr == nil) != (cerr == nil) {
			t.Fatalf("verdict mismatch on %q: json err=%v, codec err=%v", data, jerr, cerr)
		}
		if jerr != nil {
			return
		}
		if !reflect.DeepEqual(m, jm) {
			t.Fatalf("decode mismatch on %q:\ncodec: %#v\n json: %#v", data, m, jm)
		}
		jenc, jerr := encodeMessageJSON(jm)
		if jerr != nil {
			t.Fatalf("reference re-encode failed: %v", jerr)
		}
		cenc := AppendMessage(nil, m)
		if !bytes.Equal(cenc, jenc) {
			t.Fatalf("re-encode mismatch on %q:\ncodec: %s\n json: %s", data, cenc, jenc)
		}
	})
}
