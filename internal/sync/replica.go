package sync

import (
	"errors"
	"fmt"

	"crowdfill/internal/model"
)

// Replica is one copy of the candidate table plus its vote histories — the
// server's master copy and every client copy are Replicas. Local primitive
// operations (paper §2.2) are performed through the Insert/Fill/Upvote/
// Downvote methods, which mutate the replica and return the message to send;
// messages received from elsewhere are applied with Apply. Both paths run
// the identical state transition, which the convergence proof relies on.
type Replica struct {
	schema *model.Schema
	table  *model.Candidate
	uh     *VoteHist
	dh     *VoteHist
	obs    TableObserver
	epoch  uint64
}

// TableObserver receives fine-grained change notifications as messages are
// applied to a replica, so derived structures (e.g. model.TableIndex) can be
// maintained incrementally instead of rescanning the table per message.
// Callbacks fire after the table mutation they describe.
type TableObserver interface {
	// RowAdded fires after a row enters the table.
	RowAdded(*model.Row)
	// RowRemoved fires after a row leaves the table.
	RowRemoved(*model.Row)
	// RowVotesChanged fires after a row's Up/Down counts change.
	RowVotesChanged(*model.Row)
	// TableReset fires when the replica's entire table is replaced (snapshot
	// load); the argument is the new candidate table.
	TableReset(*model.Candidate)
}

// NewReplica returns an empty replica over schema s.
func NewReplica(s *model.Schema) *Replica {
	return &Replica{
		schema: s,
		table:  model.NewCandidate(s),
		uh:     NewVoteHist(),
		dh:     NewVoteHist(),
	}
}

// Schema returns the replica's schema.
func (r *Replica) Schema() *model.Schema { return r.schema }

// Table returns the replica's candidate table. Callers must treat it as
// read-only; all mutation goes through operations and Apply.
func (r *Replica) Table() *model.Candidate { return r.table }

// UH returns the upvote history (read-only for callers).
func (r *Replica) UH() *VoteHist { return r.uh }

// DH returns the downvote history (read-only for callers).
func (r *Replica) DH() *VoteHist { return r.dh }

// SetObserver attaches a change observer (nil detaches). The observer is
// immediately synchronized with the current table via TableReset.
func (r *Replica) SetObserver(o TableObserver) {
	r.obs = o
	if o != nil {
		o.TableReset(r.table)
	}
}

// Errors returned by local operations whose preconditions fail.
var (
	ErrNoSuchRow     = errors.New("sync: no such row")
	ErrRowExists     = errors.New("sync: row id already exists")
	ErrCellFilled    = errors.New("sync: cell already filled")
	ErrNotComplete   = errors.New("sync: row is not complete")
	ErrNotPartial    = errors.New("sync: row has no values")
	ErrBadColumn     = errors.New("sync: column index out of range")
	ErrWidthMismatch = errors.New("sync: vector width does not match schema")
)

// Insert performs the insert(r) primitive: a new empty row with the given id
// enters the table with zero vote counts. Returns the message to propagate.
func (r *Replica) Insert(id model.RowID) (Message, error) {
	if r.table.Has(id) {
		return Message{}, fmt.Errorf("%w: %s", ErrRowExists, id)
	}
	m := Message{Type: MsgInsert, Row: id}
	r.mustApply(m)
	return m, nil
}

// Fill performs fill(r, col, val): the row is deleted and a newly-constructed
// row with id newID and the column filled in takes its place (paper §2.4 —
// minting a new row id per fill is the key to seamless concurrency). val must
// already be canonical for the schema (clients validate first). Returns the
// replace message to propagate.
func (r *Replica) Fill(id model.RowID, col int, val string, newID model.RowID) (Message, error) {
	row := r.table.Get(id)
	if row == nil {
		return Message{}, fmt.Errorf("%w: %s", ErrNoSuchRow, id)
	}
	if col < 0 || col >= r.schema.NumColumns() {
		return Message{}, fmt.Errorf("%w: %d", ErrBadColumn, col)
	}
	if row.Vec[col].Set {
		return Message{}, fmt.Errorf("%w: row %s column %d", ErrCellFilled, id, col)
	}
	if r.table.Has(newID) {
		return Message{}, fmt.Errorf("%w: %s", ErrRowExists, newID)
	}
	m := Message{
		Type:   MsgReplace,
		Row:    id,
		NewRow: newID,
		Vec:    row.Vec.With(col, val),
		Col:    col,
		Val:    val,
	}
	r.mustApply(m)
	return m, nil
}

// Upvote performs upvote(r) on a complete row present in this replica.
// Returns the value-carrying upvote message to propagate.
func (r *Replica) Upvote(id model.RowID) (Message, error) {
	row := r.table.Get(id)
	if row == nil {
		return Message{}, fmt.Errorf("%w: %s", ErrNoSuchRow, id)
	}
	if !row.Vec.IsComplete() {
		return Message{}, fmt.Errorf("%w: %s", ErrNotComplete, id)
	}
	m := Message{Type: MsgUpvote, Vec: row.Vec.Clone()}
	r.mustApply(m)
	return m, nil
}

// Downvote performs downvote(r) on a partial row present in this replica.
// Returns the value-carrying downvote message to propagate.
func (r *Replica) Downvote(id model.RowID) (Message, error) {
	row := r.table.Get(id)
	if row == nil {
		return Message{}, fmt.Errorf("%w: %s", ErrNoSuchRow, id)
	}
	if !row.Vec.IsPartial() {
		return Message{}, fmt.Errorf("%w: %s", ErrNotPartial, id)
	}
	m := Message{Type: MsgDownvote, Vec: row.Vec.Clone()}
	r.mustApply(m)
	return m, nil
}

// DownvoteValue downvotes an explicit value-vector (used by the worker-level
// "modify" extension, which downvotes the old cell combination it replaces).
func (r *Replica) DownvoteValue(v model.Vector) (Message, error) {
	if len(v) != r.schema.NumColumns() {
		return Message{}, ErrWidthMismatch
	}
	if !v.IsPartial() {
		return Message{}, ErrNotPartial
	}
	m := Message{Type: MsgDownvote, Vec: v.Clone()}
	r.mustApply(m)
	return m, nil
}

// UndoUpvote retracts one previously-cast upvote for value v (§8 extension).
// The caller (the worker client) is responsible for ensuring the worker
// actually cast a matching vote.
func (r *Replica) UndoUpvote(v model.Vector) (Message, error) {
	if len(v) != r.schema.NumColumns() {
		return Message{}, ErrWidthMismatch
	}
	m := Message{Type: MsgUnupvote, Vec: v.Clone()}
	r.mustApply(m)
	return m, nil
}

// UndoDownvote retracts one previously-cast downvote for value v (§8
// extension).
func (r *Replica) UndoDownvote(v model.Vector) (Message, error) {
	if len(v) != r.schema.NumColumns() {
		return Message{}, ErrWidthMismatch
	}
	m := Message{Type: MsgUndownvote, Vec: v.Clone()}
	r.mustApply(m)
	return m, nil
}

// Epoch returns a counter that increases whenever the replica's state
// changes (any applied mutating message or snapshot load). Cheap change
// detection for snapshot caching: equal epochs imply identical state.
func (r *Replica) Epoch() uint64 { return r.epoch }

// ApplyAll applies a batch of messages in order, stopping at the first
// error (the batch prefix before the error has been applied; convergence
// only needs per-message atomicity). Batching exists so a receiver that
// drained a burst of frames can apply them all under one lock acquisition
// and wake downstream listeners once, instead of once per message.
func (r *Replica) ApplyAll(msgs []Message) error {
	for i := range msgs {
		if err := r.Apply(msgs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Apply processes a message received from the server or a client (paper
// §2.4 "Processing received messages"). Snapshot, done and estimate messages
// mutate nothing here.
func (r *Replica) Apply(m Message) error {
	switch m.Type {
	case MsgInsert, MsgReplace, MsgUpvote, MsgDownvote, MsgUnupvote, MsgUndownvote:
		// Votes on vectors no row carries still mutate the histories, so any
		// message reaching the switch below dirties the state.
		r.epoch++
	default:
		// Snapshot, done and estimate messages leave the replica unchanged.
	}
	switch m.Type {
	case MsgInsert:
		if m.Row == "" {
			return errors.New("sync: insert without row id")
		}
		if r.table.Has(m.Row) {
			return fmt.Errorf("%w: %s", ErrRowExists, m.Row)
		}
		row := &model.Row{ID: m.Row, Vec: model.NewVector(r.schema.NumColumns())}
		r.table.Put(row)
		if r.obs != nil {
			r.obs.RowAdded(row)
		}
		return nil

	case MsgReplace:
		if len(m.Vec) != r.schema.NumColumns() {
			return ErrWidthMismatch
		}
		if m.NewRow == "" {
			return errors.New("sync: replace without new row id")
		}
		// If the old row is still present, delete it; concurrent fills may
		// already have replaced it elsewhere, which is fine.
		if old := r.table.Get(m.Row); old != nil {
			r.table.Delete(m.Row)
			if r.obs != nil {
				r.obs.RowRemoved(old)
			}
		}
		q := &model.Row{ID: m.NewRow, Vec: m.Vec.Clone()}
		if q.Vec.IsComplete() {
			q.Up = r.uh.Get(q.Vec)
		}
		q.Down = r.dh.SubsetSum(q.Vec)
		r.table.Put(q)
		if r.obs != nil {
			r.obs.RowAdded(q)
		}
		return nil

	case MsgUpvote:
		if len(m.Vec) != r.schema.NumColumns() {
			return ErrWidthMismatch
		}
		r.table.EachWithValue(m.Vec, func(row *model.Row) {
			row.Up++
			if r.obs != nil {
				r.obs.RowVotesChanged(row)
			}
		})
		r.uh.Inc(m.Vec)
		return nil

	case MsgDownvote:
		if len(m.Vec) != r.schema.NumColumns() {
			return ErrWidthMismatch
		}
		r.table.Each(func(row *model.Row) {
			if row.Vec.Superset(m.Vec) {
				row.Down++
				if r.obs != nil {
					r.obs.RowVotesChanged(row)
				}
			}
		})
		r.dh.Inc(m.Vec)
		return nil

	case MsgUnupvote:
		if len(m.Vec) != r.schema.NumColumns() {
			return ErrWidthMismatch
		}
		r.table.EachWithValue(m.Vec, func(row *model.Row) {
			row.Up--
			if r.obs != nil {
				r.obs.RowVotesChanged(row)
			}
		})
		r.uh.Dec(m.Vec)
		return nil

	case MsgUndownvote:
		if len(m.Vec) != r.schema.NumColumns() {
			return ErrWidthMismatch
		}
		r.table.Each(func(row *model.Row) {
			if row.Vec.Superset(m.Vec) {
				row.Down--
				if r.obs != nil {
					r.obs.RowVotesChanged(row)
				}
			}
		})
		r.dh.Dec(m.Vec)
		return nil

	case MsgSnapshot:
		if m.Snapshot == nil {
			return errors.New("sync: snapshot message without payload")
		}
		r.LoadSnapshot(m.Snapshot)
		return nil

	case MsgDone, MsgEstimate:
		return nil
	}
	return fmt.Errorf("sync: unknown message type %v", m.Type)
}

// mustApply applies a locally-generated message whose preconditions were just
// checked; failure indicates a bug, not bad input.
func (r *Replica) mustApply(m Message) {
	if err := r.Apply(m); err != nil {
		panic(fmt.Sprintf("sync: applying locally-generated %s message: %v", m.Type, err))
	}
}

// TakeSnapshot serializes the replica for a late-joining client.
func (r *Replica) TakeSnapshot() *Snapshot {
	s := &Snapshot{}
	for _, row := range r.table.Rows() {
		s.Rows = append(s.Rows, *row.Clone())
	}
	s.UH, s.UHVecs = r.uh.export()
	s.DH, s.DHVecs = r.dh.export()
	return s
}

// LoadSnapshot replaces the replica's entire state with the snapshot.
func (r *Replica) LoadSnapshot(s *Snapshot) {
	r.epoch++
	r.table = model.NewCandidate(r.schema)
	for i := range s.Rows {
		row := s.Rows[i].Clone()
		r.table.Put(row)
	}
	r.uh.importFrom(s.UH, s.UHVecs)
	r.dh.importFrom(s.DH, s.DHVecs)
	if r.obs != nil {
		r.obs.TableReset(r.table)
	}
}

// SnapshotText renders the full replica state canonically (rows + both
// histories), used to compare replicas in convergence tests.
func (r *Replica) SnapshotText() string {
	return "rows:\n" + r.table.Snapshot() + "uh:\n" + r.uh.Snapshot() + "dh:\n" + r.dh.Snapshot()
}

// CheckLemma3 verifies the paper's Lemma 3 invariants on every row:
// u_r = UH[r̄] for complete rows (0 otherwise in effect, since UH counts
// whole-row values and only complete rows can be upvoted), and
// d_r = Σ_{w⊆r̄} DH[w]. Returns the first violation found.
func (r *Replica) CheckLemma3() error {
	var err error
	r.table.Each(func(row *model.Row) {
		if err != nil {
			return
		}
		wantUp := 0
		if row.Vec.IsComplete() {
			wantUp = r.uh.Get(row.Vec)
		} else {
			wantUp = r.uh.Get(row.Vec) // partial rows are never upvoted; stays 0
		}
		if row.Up != wantUp {
			err = fmt.Errorf("sync: lemma3 upvote invariant violated on %s: u=%d UH=%d", row.ID, row.Up, wantUp)
			return
		}
		if want := r.dh.SubsetSum(row.Vec); row.Down != want {
			err = fmt.Errorf("sync: lemma3 downvote invariant violated on %s: d=%d Σ=%d", row.ID, row.Down, want)
		}
	})
	return err
}
