package sync

import (
	"errors"
	"strings"
	"testing"

	"crowdfill/internal/model"
)

func testSchema(t testing.TB) *model.Schema {
	t.Helper()
	return model.MustSchema("SoccerPlayer", []model.Column{
		{Name: "name", Type: model.TypeString},
		{Name: "nationality", Type: model.TypeString},
		{Name: "position", Type: model.TypeString},
		{Name: "caps", Type: model.TypeInt},
		{Name: "goals", Type: model.TypeInt},
	}, "name", "nationality")
}

func TestInsertAndFill(t *testing.T) {
	r := NewReplica(testSchema(t))
	if _, err := r.Insert("c1-1"); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := r.Insert("c1-1"); !errors.Is(err, ErrRowExists) {
		t.Fatalf("duplicate Insert err = %v, want ErrRowExists", err)
	}
	m, err := r.Fill("c1-1", 0, "Messi", "c1-2")
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if m.Type != MsgReplace || m.Row != "c1-1" || m.NewRow != "c1-2" || m.Col != 0 || m.Val != "Messi" {
		t.Fatalf("replace message wrong: %+v", m)
	}
	if r.Table().Has("c1-1") {
		t.Fatalf("old row should be deleted by fill")
	}
	q := r.Table().Get("c1-2")
	if q == nil || !q.Vec[0].Set || q.Vec[0].Val != "Messi" {
		t.Fatalf("new row wrong: %v", q)
	}
	// Filling an already-filled cell fails.
	if _, err := r.Fill("c1-2", 0, "Ronaldo", "c1-3"); !errors.Is(err, ErrCellFilled) {
		t.Fatalf("refill err = %v, want ErrCellFilled", err)
	}
	if _, err := r.Fill("nope", 1, "x", "c1-4"); !errors.Is(err, ErrNoSuchRow) {
		t.Fatalf("missing row err = %v, want ErrNoSuchRow", err)
	}
	if _, err := r.Fill("c1-2", 99, "x", "c1-5"); !errors.Is(err, ErrBadColumn) {
		t.Fatalf("bad column err = %v, want ErrBadColumn", err)
	}
}

// fillAll completes a row through successive fills, returning the final row id.
func fillAll(t testing.TB, r *Replica, g *IDGen, id model.RowID, vals []string) model.RowID {
	t.Helper()
	for col, v := range vals {
		if v == "" || r.Table().Get(id).Vec[col].Set {
			continue
		}
		nid := g.Next()
		if _, err := r.Fill(id, col, v, nid); err != nil {
			t.Fatalf("fill col %d: %v", col, err)
		}
		id = nid
	}
	return id
}

func TestUpvoteDownvoteSemantics(t *testing.T) {
	r := NewReplica(testSchema(t))
	g := NewIDGen("c1")
	id1, _ := r.Insert(g.Next())
	full := fillAll(t, r, g, id1.Row, []string{"Messi", "Argentina", "FW", "83", "37"})

	// Upvote requires a complete row.
	id2, _ := r.Insert(g.Next())
	if _, err := r.Upvote(id2.Row); !errors.Is(err, ErrNotComplete) {
		t.Fatalf("upvote empty row err = %v", err)
	}
	if _, err := r.Downvote(id2.Row); !errors.Is(err, ErrNotPartial) {
		t.Fatalf("downvote empty row err = %v", err)
	}

	if _, err := r.Upvote(full); err != nil {
		t.Fatalf("Upvote: %v", err)
	}
	if got := r.Table().Get(full).Up; got != 1 {
		t.Fatalf("up count = %d, want 1", got)
	}
	if got := r.UH().Get(r.Table().Get(full).Vec); got != 1 {
		t.Fatalf("UH = %d, want 1", got)
	}

	// Downvoting a subset increments every superset row.
	pid, _ := r.Insert(g.Next())
	partial := fillAll(t, r, g, pid.Row, []string{"Messi", "Argentina", "", "", ""})
	if _, err := r.Downvote(partial); err != nil {
		t.Fatalf("Downvote: %v", err)
	}
	if got := r.Table().Get(full).Down; got != 1 {
		t.Fatalf("superset row down = %d, want 1", got)
	}
	if got := r.Table().Get(partial).Down; got != 1 {
		t.Fatalf("downvoted row down = %d, want 1", got)
	}
	if err := r.CheckLemma3(); err != nil {
		t.Fatalf("lemma3: %v", err)
	}
}

// TestFillInheritsHistories: a row completed after votes were cast on its
// value inherits UH[q̄] upvotes and Σ DH[w⊆q̄] downvotes (paper §2.4).
func TestFillInheritsHistories(t *testing.T) {
	r := NewReplica(testSchema(t))
	g := NewIDGen("c1")
	// First copy of the row gets completed and voted.
	a, _ := r.Insert(g.Next())
	fullA := fillAll(t, r, g, a.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	r.Upvote(fullA)
	r.Upvote(fullA)
	// Downvote a partial value-combination.
	p, _ := r.Insert(g.Next())
	partial := fillAll(t, r, g, p.Row, []string{"Messi", "", "", "", ""})
	r.Downvote(partial)

	// A second copy completed with the same value inherits both counts.
	b, _ := r.Insert(g.Next())
	fullB := fillAll(t, r, g, b.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	row := r.Table().Get(fullB)
	if row.Up != 2 {
		t.Fatalf("inherited up = %d, want 2 (from UH)", row.Up)
	}
	// Downvotes: DH has {Messi,·,·,·,·}:1 plus the partial row itself got
	// downvoted... subsets of the full vector: the one downvote.
	if row.Down != 1 {
		t.Fatalf("inherited down = %d, want 1 (from DH subset sum)", row.Down)
	}
	if err := r.CheckLemma3(); err != nil {
		t.Fatalf("lemma3: %v", err)
	}
}

// TestConcurrentFillSameRow reproduces the paper's §2.4.1 example: two
// clients fill different columns of the same row concurrently; after both
// messages propagate everywhere, all replicas hold two rows, one per fill,
// rather than a merged row neither client intended.
func TestConcurrentFillSameRow(t *testing.T) {
	schema := testSchema(t)
	server := NewReplica(schema)
	c1 := NewReplica(schema)
	c2 := NewReplica(schema)

	seed, err := server.Insert("cc-1")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the seed row partially on the server side and sync all.
	m2, _ := server.Fill("cc-1", 2, "FW", "cc-2")
	for _, rep := range []*Replica{c1, c2} {
		if err := rep.Apply(seed); err != nil {
			t.Fatal(err)
		}
		if err := rep.Apply(m2); err != nil {
			t.Fatal(err)
		}
	}

	// Concurrently: c1 fills name, c2 fills nationality, both on cc-2.
	f1, err := c1.Fill("cc-2", 0, "Lionel Messi", "c1-1")
	if err != nil {
		t.Fatal(err)
	}
	f2, err := c2.Fill("cc-2", 1, "Brazil", "c2-1")
	if err != nil {
		t.Fatal(err)
	}
	// Server receives f1 then f2; c1 receives f2; c2 receives f1.
	for _, m := range []Message{f1, f2} {
		if err := server.Apply(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := c1.Apply(f2); err != nil {
		t.Fatal(err)
	}
	if err := c2.Apply(f1); err != nil {
		t.Fatal(err)
	}

	// All replicas identical, containing two rows (c1-1 and c2-1).
	want := server.SnapshotText()
	if c1.SnapshotText() != want || c2.SnapshotText() != want {
		t.Fatalf("replicas diverged:\nserver:\n%s\nc1:\n%s\nc2:\n%s",
			want, c1.SnapshotText(), c2.SnapshotText())
	}
	if server.Table().Len() != 2 {
		t.Fatalf("table has %d rows, want 2: %v", server.Table().Len(), server.Table().Rows())
	}
	r1 := server.Table().Get("c1-1")
	r2 := server.Table().Get("c2-1")
	if r1 == nil || r2 == nil {
		t.Fatalf("expected rows c1-1 and c2-1, got %v", server.Table().Rows())
	}
	if !r1.Vec.Equal(model.VectorOf("Lionel Messi", "", "FW", "", "")) {
		t.Errorf("c1-1 = %v", r1.Vec)
	}
	if !r2.Vec.Equal(model.VectorOf("", "Brazil", "FW", "", "")) {
		t.Errorf("c2-1 = %v", r2.Vec)
	}
}

func TestApplyReplaceForMissingRowStillInserts(t *testing.T) {
	// Concurrent fills on the same row: the second replace arrives after the
	// original row was already replaced. The new row must still be inserted.
	r := NewReplica(testSchema(t))
	r.Apply(Message{Type: MsgInsert, Row: "x-1"})
	r.Apply(Message{Type: MsgReplace, Row: "x-1", NewRow: "a-1", Vec: model.VectorOf("A", "", "", "", "")})
	err := r.Apply(Message{Type: MsgReplace, Row: "x-1", NewRow: "b-1", Vec: model.VectorOf("", "B", "", "", "")})
	if err != nil {
		t.Fatalf("second replace: %v", err)
	}
	if !r.Table().Has("a-1") || !r.Table().Has("b-1") {
		t.Fatalf("both fill results must exist: %v", r.Table().Rows())
	}
}

func TestApplyErrors(t *testing.T) {
	r := NewReplica(testSchema(t))
	if err := r.Apply(Message{Type: MsgInsert}); err == nil {
		t.Errorf("insert without row id should fail")
	}
	if err := r.Apply(Message{Type: MsgReplace, NewRow: "q", Vec: model.VectorOf("a")}); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("width mismatch: %v", err)
	}
	if err := r.Apply(Message{Type: MsgReplace, Row: "r", Vec: model.NewVector(5)}); err == nil {
		t.Errorf("replace without new row id should fail")
	}
	if err := r.Apply(Message{Type: MsgUpvote, Vec: model.VectorOf("a")}); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("upvote width mismatch: %v", err)
	}
	if err := r.Apply(Message{Type: MsgSnapshot}); err == nil {
		t.Errorf("snapshot without payload should fail")
	}
	if err := r.Apply(Message{Type: MsgType(99)}); err == nil {
		t.Errorf("unknown type should fail")
	}
	if err := r.Apply(Message{Type: MsgDone}); err != nil {
		t.Errorf("done should be a no-op: %v", err)
	}
}

func TestDownvoteValue(t *testing.T) {
	r := NewReplica(testSchema(t))
	g := NewIDGen("c1")
	id, _ := r.Insert(g.Next())
	full := fillAll(t, r, g, id.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	v := model.VectorOf("Messi", "", "", "", "")
	if _, err := r.DownvoteValue(v); err != nil {
		t.Fatalf("DownvoteValue: %v", err)
	}
	if got := r.Table().Get(full).Down; got != 1 {
		t.Fatalf("down = %d, want 1", got)
	}
	if _, err := r.DownvoteValue(model.NewVector(5)); !errors.Is(err, ErrNotPartial) {
		t.Errorf("empty vector: %v", err)
	}
	if _, err := r.DownvoteValue(model.VectorOf("a")); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("width: %v", err)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	r := NewReplica(testSchema(t))
	g := NewIDGen("c1")
	id, _ := r.Insert(g.Next())
	full := fillAll(t, r, g, id.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	r.Upvote(full)
	p, _ := r.Insert(g.Next())
	partial := fillAll(t, r, g, p.Row, []string{"Neymar", "", "", "", ""})
	r.Downvote(partial)

	snap := r.TakeSnapshot()
	r2 := NewReplica(r.Schema())
	if err := r2.Apply(Message{Type: MsgSnapshot, Snapshot: snap}); err != nil {
		t.Fatalf("apply snapshot: %v", err)
	}
	if r.SnapshotText() != r2.SnapshotText() {
		t.Fatalf("snapshot round trip diverged:\n%s\nvs\n%s", r.SnapshotText(), r2.SnapshotText())
	}
	// Continued operations stay in sync.
	m, err := r2.Fill(partial, 1, "Brazil", "c2-1")
	if err != nil {
		t.Fatalf("fill after snapshot: %v", err)
	}
	if err := r.Apply(m); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if r.SnapshotText() != r2.SnapshotText() {
		t.Fatalf("post-snapshot op diverged")
	}
}

func TestMessageEncodeDecode(t *testing.T) {
	m := Message{
		Type: MsgReplace, Row: "a-1", NewRow: "a-2",
		Vec:    model.VectorOf("Messi", "", "FW", "", ""),
		Origin: "c1", Worker: "w1", Seq: 7, TS: 123, Col: 2, Val: "FW",
	}
	data, err := EncodeMessage(m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Type != m.Type || got.Row != m.Row || got.NewRow != m.NewRow ||
		!got.Vec.Equal(m.Vec) || got.Origin != m.Origin || got.Worker != m.Worker ||
		got.Seq != m.Seq || got.TS != m.TS || got.Col != m.Col || got.Val != m.Val {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
	}
	if _, err := DecodeMessage([]byte("{bad")); err == nil {
		t.Fatalf("decode of invalid JSON should fail")
	}
	for _, typ := range []MsgType{MsgInsert, MsgReplace, MsgUpvote, MsgDownvote, MsgSnapshot, MsgDone, MsgEstimate, MsgType(42)} {
		if typ.String() == "" {
			t.Errorf("MsgType(%d).String empty", typ)
		}
	}
}

func TestIDGen(t *testing.T) {
	g := NewIDGen("c7")
	a, b := g.Next(), g.Next()
	if a == b {
		t.Fatalf("ids not unique: %s", a)
	}
	if !strings.HasPrefix(string(a), "c7-") {
		t.Fatalf("id prefix wrong: %s", a)
	}
	if a >= b {
		t.Fatalf("ids not lexicographically increasing: %s >= %s", a, b)
	}
	if g.Count() != 2 {
		t.Fatalf("Count = %d, want 2", g.Count())
	}
}

func TestVoteHist(t *testing.T) {
	h := NewVoteHist()
	v1 := model.VectorOf("a", "", "")
	v2 := model.VectorOf("a", "b", "")
	full := model.VectorOf("a", "b", "c")
	h.Inc(v1)
	h.Inc(v1)
	h.Inc(v2)
	if got := h.Get(v1); got != 2 {
		t.Fatalf("Get = %d, want 2", got)
	}
	if got := h.Get(full); got != 0 {
		t.Fatalf("Get(unvoted) = %d, want 0", got)
	}
	if got := h.SubsetSum(full); got != 3 {
		t.Fatalf("SubsetSum = %d, want 3", got)
	}
	if got := h.SubsetSum(model.VectorOf("a", "x", "y")); got != 2 {
		t.Fatalf("SubsetSum(partial overlap) = %d, want 2", got)
	}
	if h.Len() != 2 {
		t.Fatalf("Len = %d, want 2", h.Len())
	}
	clone := h.Clone()
	h.Inc(v1)
	if clone.Get(v1) != 2 {
		t.Fatalf("Clone aliased state")
	}
	n := 0
	clone.Each(func(v model.Vector, c int) { n += c })
	if n != 3 {
		t.Fatalf("Each total = %d, want 3", n)
	}
	if h.Snapshot() == clone.Snapshot() {
		t.Fatalf("snapshots should differ after Inc")
	}
}

// TestUndoVotes covers the §8 undo extension: retracting a vote restores
// counts and histories, including for rows constructed later.
func TestUndoVotes(t *testing.T) {
	r := NewReplica(testSchema(t))
	g := NewIDGen("c1")
	id, _ := r.Insert(g.Next())
	full := fillAll(t, r, g, id.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	r.Upvote(full)
	r.Upvote(full)
	if _, err := r.UndoUpvote(r.Table().Get(full).Vec); err != nil {
		t.Fatalf("UndoUpvote: %v", err)
	}
	if got := r.Table().Get(full).Up; got != 1 {
		t.Fatalf("up after undo = %d, want 1", got)
	}
	if err := r.CheckLemma3(); err != nil {
		t.Fatalf("lemma3 after undo: %v", err)
	}

	p, _ := r.Insert(g.Next())
	partial := fillAll(t, r, g, p.Row, []string{"Messi", "", "", "", ""})
	r.Downvote(partial)
	if got := r.Table().Get(full).Down; got != 1 {
		t.Fatalf("down = %d, want 1", got)
	}
	if _, err := r.UndoDownvote(r.Table().Get(partial).Vec); err != nil {
		t.Fatalf("UndoDownvote: %v", err)
	}
	if got := r.Table().Get(full).Down; got != 0 {
		t.Fatalf("down after undo = %d, want 0", got)
	}
	// A row completed after the undo inherits the corrected counts.
	q, _ := r.Insert(g.Next())
	dup := fillAll(t, r, g, q.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	row := r.Table().Get(dup)
	if row.Up != 1 || row.Down != 0 {
		t.Fatalf("inherited counts after undo = u%d d%d, want u1 d0", row.Up, row.Down)
	}
	// Width checks.
	if _, err := r.UndoUpvote(model.VectorOf("a")); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("UndoUpvote width: %v", err)
	}
	if _, err := r.UndoDownvote(model.VectorOf("a")); !errors.Is(err, ErrWidthMismatch) {
		t.Errorf("UndoDownvote width: %v", err)
	}
}

// TestUndoneHistorySnapshotCanonical: a fully-undone vote leaves the replica
// canonically identical to one that never saw the vote.
func TestUndoneHistorySnapshotCanonical(t *testing.T) {
	a := NewReplica(testSchema(t))
	b := NewReplica(testSchema(t))
	ga, gb := NewIDGen("c1"), NewIDGen("c1")
	ia, _ := a.Insert(ga.Next())
	fa := fillAll(t, a, ga, ia.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	ib, _ := b.Insert(gb.Next())
	fillAll(t, b, gb, ib.Row, []string{"Messi", "Argentina", "FW", "83", "37"})
	a.Upvote(fa)
	a.UndoUpvote(a.Table().Get(fa).Vec)
	if a.SnapshotText() != b.SnapshotText() {
		t.Fatalf("undone vote should be canonically invisible:\n%s\nvs\n%s",
			a.SnapshotText(), b.SnapshotText())
	}
}
