// Hand-rolled wire codec for Message: an append-based encoder and an
// allocation-conscious scanner decoder that are byte-for-byte and
// behavior-for-behavior compatible with the encoding/json forms the system
// has always spoken (json.Marshal with HTML escaping; json.Unmarshal with
// case-folded field matching). The stored traces, the committed fuzz corpora
// and every deployed client depend on the exact bytes, so compatibility is
// the contract here — proven by TestCodecWireByteIdentity and the
// FuzzCodecDifferential target, which cross-check every path against the
// encoding/json reference implementations kept in message.go.
//
// Why hand-rolled: encoding/json costs ~30-50 heap allocations per message
// (reflection machinery, intermediate field buffers, the decoder's state).
// AppendMessage allocates nothing beyond growing dst, and DecodeMessageInto
// allocates only what the decoded message itself retains (its strings and
// vectors) — never scratch, never scanner state — which is what lets the
// transport layer decode straight out of a leased read buffer.
package sync

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"

	"crowdfill/internal/model"
)

// --- Encoder ---------------------------------------------------------------

// AppendMessage appends the JSON encoding of m to dst and returns the
// extended slice. The bytes are identical to json.Marshal(m). Float fields
// (Estimates) must be finite; EncodeMessage performs that check and is the
// error-returning entry point.
//
//lint:hotpath
func AppendMessage(dst []byte, m Message) []byte {
	dst = append(dst, `{"type":`...)
	dst = strconv.AppendInt(dst, int64(m.Type), 10)
	if m.Row != "" {
		dst = append(dst, `,"row":`...)
		dst = appendJSONString(dst, string(m.Row))
	}
	if m.NewRow != "" {
		dst = append(dst, `,"newRow":`...)
		dst = appendJSONString(dst, string(m.NewRow))
	}
	if len(m.Vec) > 0 {
		dst = append(dst, `,"vec":`...)
		dst = appendVector(dst, m.Vec)
	}
	if m.Origin != "" {
		dst = append(dst, `,"origin":`...)
		dst = appendJSONString(dst, m.Origin)
	}
	if m.Worker != "" {
		dst = append(dst, `,"worker":`...)
		dst = appendJSONString(dst, m.Worker)
	}
	if m.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendInt(dst, m.Seq, 10)
	}
	if m.TS != 0 {
		dst = append(dst, `,"ts":`...)
		dst = strconv.AppendInt(dst, m.TS, 10)
	}
	if m.Auto {
		dst = append(dst, `,"auto":true`...)
	}
	if m.Col != 0 {
		dst = append(dst, `,"col":`...)
		dst = strconv.AppendInt(dst, int64(m.Col), 10)
	}
	if m.Val != "" {
		dst = append(dst, `,"val":`...)
		dst = appendJSONString(dst, m.Val)
	}
	if m.Snapshot != nil {
		dst = append(dst, `,"snapshot":`...)
		dst = appendSnapshot(dst, m.Snapshot) //lint:allow hotalloc snapshot records are join-time private messages, not steady-state broadcasts
	}
	if m.Estimates != nil {
		dst = append(dst, `,"estimates":`...)
		dst = appendEstimates(dst, m.Estimates)
	}
	return append(dst, '}')
}

// appendVector mirrors Vector.MarshalJSON: a compact array where null marks
// an empty cell. A nil vector encodes as [] (MarshalJSON is called on the
// value, not skipped), which matters inside snapshot rows.
func appendVector(dst []byte, v model.Vector) []byte {
	dst = append(dst, '[')
	for i, c := range v {
		if i > 0 {
			dst = append(dst, ',')
		}
		if c.Set {
			dst = appendJSONString(dst, c.Val)
		} else {
			dst = append(dst, `null`...)
		}
	}
	return append(dst, ']')
}

func appendSnapshot(dst []byte, s *Snapshot) []byte {
	dst = append(dst, `{"rows":`...)
	if s.Rows == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i := range s.Rows {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendRow(dst, &s.Rows[i])
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"uh":`...)
	dst = appendIntMap(dst, s.UH)
	dst = append(dst, `,"dh":`...)
	dst = appendIntMap(dst, s.DH)
	dst = append(dst, `,"uhVecs":`...)
	dst = appendVecMap(dst, s.UHVecs)
	dst = append(dst, `,"dhVecs":`...)
	dst = appendVecMap(dst, s.DHVecs)
	return append(dst, '}')
}

func appendRow(dst []byte, r *model.Row) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendJSONString(dst, string(r.ID))
	dst = append(dst, `,"vec":`...)
	dst = appendVector(dst, r.Vec)
	dst = append(dst, `,"up":`...)
	dst = strconv.AppendInt(dst, int64(r.Up), 10)
	dst = append(dst, `,"down":`...)
	dst = strconv.AppendInt(dst, int64(r.Down), 10)
	return append(dst, '}')
}

// appendIntMap encodes a map like encoding/json: null for nil, otherwise
// keys sorted lexicographically.
func appendIntMap(dst []byte, m map[string]int) []byte {
	if m == nil {
		return append(dst, `null`...)
	}
	keys := sortedKeysInt(m)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		dst = strconv.AppendInt(dst, int64(m[k]), 10)
	}
	return append(dst, '}')
}

func appendVecMap(dst []byte, m map[string]model.Vector) []byte {
	if m == nil {
		return append(dst, `null`...)
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dst = append(dst, '{')
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, k)
		dst = append(dst, ':')
		dst = appendVector(dst, m[k])
	}
	return append(dst, '}')
}

func sortedKeysInt(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func appendEstimates(dst []byte, e *Estimates) []byte {
	dst = append(dst, `{"perColumn":`...)
	if e.PerColumn == nil {
		dst = append(dst, `null`...)
	} else {
		dst = append(dst, '[')
		for i, f := range e.PerColumn {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONFloat(dst, f)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"upvote":`...)
	dst = appendJSONFloat(dst, e.Upvote)
	dst = append(dst, `,"downvote":`...)
	dst = appendJSONFloat(dst, e.Downvote)
	return append(dst, '}')
}

// appendJSONFloat matches encoding/json's ES6-style number rendering:
// shortest representation, 'f' form inside [1e-6, 1e21), 'e' form outside
// with the exponent's leading zero trimmed (1e-09 → 1e-9).
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString matches encoding/json's string encoder with HTML escaping
// on (the json.Marshal default the wire has always used): `<`, `>`, `&`,
// U+2028 and U+2029 are \u-escaped, control bytes use the short escapes where
// they exist, and invalid UTF-8 bytes each become �.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if jsonSafe(b) {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				// Bytes < 0x20 without a short escape, plus <, >, &.
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i++
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// jsonSafe reports whether an ASCII byte passes through the encoder
// unescaped (encoding/json's htmlSafeSet).
func jsonSafe(b byte) bool {
	return b >= 0x20 && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&'
}

// ValidateEncodable reports whether m can be encoded: json.Marshal (and so
// this codec) rejects NaN and ±Inf floats, the only inexpressible values a
// Message can hold. Callers encoding with AppendMessage directly check this
// once up front instead of paying an error return on the hot path.
func ValidateEncodable(m Message) error {
	if !finiteFloats(m) {
		return fmt.Errorf("sync: encode message: unsupported value: non-finite float in estimates")
	}
	return nil
}

// finiteFloats reports whether every float the message carries is encodable
// (json.Marshal rejects NaN and ±Inf; so does EncodeMessage).
func finiteFloats(m Message) bool {
	e := m.Estimates
	if e == nil {
		return true
	}
	for _, f := range e.PerColumn {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return !(math.IsNaN(e.Upvote) || math.IsInf(e.Upvote, 0) ||
		math.IsNaN(e.Downvote) || math.IsInf(e.Downvote, 0))
}

// --- Decoder ---------------------------------------------------------------

// maxNestingDepth mirrors encoding/json's scanner limit, so deeply nested
// (adversarial) inputs are rejected instead of recursing unboundedly.
const maxNestingDepth = 10000

// errSyntax stands in for the whole family of encoding/json syntax errors.
// Error identity is not part of the wire contract — only whether an input is
// accepted — so one sentinel wrapped with position context suffices.
var errSyntax = errors.New("invalid JSON syntax")

// DecodeMessageInto parses a JSON-encoded message into *m, resetting it
// first. It accepts exactly the inputs json.Unmarshal accepts for Message —
// unknown fields are skipped, field names match case-insensitively as a
// fallback, null is a field-level no-op — and produces an identical result,
// without retaining any part of data (every string is copied out), so data
// may be a transport-owned buffer that is reused immediately after.
//
//lint:hotpath
func DecodeMessageInto(data []byte, m *Message) error {
	*m = Message{}
	d := decoder{data: data}
	d.skipSpace()
	if d.eof() {
		return d.fail("unexpected end of input")
	}
	if d.peek() == 'n' {
		// Top-level null: json.Unmarshal leaves the target untouched.
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
	} else if err := d.decodeMessage(m); err != nil {
		return err
	}
	d.skipSpace()
	if !d.eof() {
		return d.fail("trailing data after top-level value")
	}
	return nil
}

type decoder struct {
	data  []byte
	pos   int
	depth int
}

func (d *decoder) eof() bool  { return d.pos >= len(d.data) }
func (d *decoder) peek() byte { return d.data[d.pos] }
func (d *decoder) fail(msg string) error {
	return fmt.Errorf("sync: decode message: %w: %s at offset %d", errSyntax, msg, d.pos) //lint:allow hotalloc error construction happens only on malformed input
}

func (d *decoder) skipSpace() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

func (d *decoder) push() error {
	d.depth++
	if d.depth > maxNestingDepth {
		return d.fail("exceeded max nesting depth")
	}
	return nil
}

func (d *decoder) pop() { d.depth-- }

func (d *decoder) expectLiteral(lit string) error {
	if len(d.data)-d.pos < len(lit) || string(d.data[d.pos:d.pos+len(lit)]) != lit { //lint:allow hotalloc comparison-context conversion, the compiler elides the copy
		return d.fail("invalid literal")
	}
	d.pos += len(lit)
	return nil
}

// next scans the byte starting the next value (after leading whitespace) and
// returns it without consuming, or an error at EOF.
func (d *decoder) next() (byte, error) {
	d.skipSpace()
	if d.eof() {
		return 0, d.fail("unexpected end of input")
	}
	return d.peek(), nil
}

// decodeObject drives the shared object-decoding loop: it parses keys,
// matches them against names (exact first, then Unicode-case-folded in
// declaration order, as encoding/json does), and calls decodeField with the
// matched index — or skips the value for unknown keys. decodeField must
// consume exactly one value.
func (d *decoder) decodeObject(names []string, decodeField func(i int) error) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c != '{' {
		return d.fail("expected object")
	}
	if err := d.push(); err != nil {
		return err
	}
	defer d.pop()
	d.pos++
	c, err = d.next()
	if err != nil {
		return err
	}
	if c == '}' {
		d.pos++
		return nil
	}
	for {
		c, err = d.next()
		if err != nil {
			return err
		}
		if c != '"' {
			return d.fail("expected object key")
		}
		key, err := d.decodeStringBytes()
		if err != nil {
			return err
		}
		idx := matchField(key, names)
		c, err = d.next()
		if err != nil {
			return err
		}
		if c != ':' {
			return d.fail("expected ':' after object key")
		}
		d.pos++
		if idx >= 0 {
			if err := decodeField(idx); err != nil { //lint:allow hotalloc non-escaping decode callback, the concrete field decoders are in this file
				return err
			}
		} else if err := d.skipValue(); err != nil {
			return err
		}
		c, err = d.next()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.fail("expected ',' or '}' in object")
		}
	}
}

// matchField resolves a decoded key against field names: exact match wins;
// otherwise the first case-fold-equal name in declaration order (mirroring
// encoding/json's byExactName/byFoldedName lookup). Returns -1 for unknown.
func matchField(key []byte, names []string) int {
	for i, n := range names {
		if string(key) == n { //lint:allow hotalloc comparison-context conversion, the compiler elides the copy
			return i
		}
	}
	for i, n := range names {
		if foldEqual(key, n) {
			return i
		}
	}
	return -1
}

// foldEqual is bytes.EqualFold(key, name) without converting name; the
// canonical names are ASCII so ASCII-folding the name side suffices, while
// the key side folds full Unicode the way encoding/json's foldName does.
func foldEqual(key []byte, name string) bool {
	j := 0
	for i := 0; i < len(key); {
		if j >= len(name) {
			return false
		}
		kr, size := rune(key[i]), 1
		if key[i] >= utf8.RuneSelf {
			kr, size = utf8.DecodeRune(key[i:])
		}
		nr := rune(name[j])
		if !runeFoldEqual(kr, nr) {
			return false
		}
		i += size
		j++
	}
	return j == len(name)
}

// runeFoldEqual reports simple-case-fold equality, matching bytes.EqualFold.
func runeFoldEqual(a, b rune) bool {
	if a == b {
		return true
	}
	if a < b {
		a, b = b, a
	}
	// Fast path for ASCII b (all canonical field-name runes are ASCII).
	if a < utf8.RuneSelf {
		return 'A' <= b && b <= 'Z' && a == b+'a'-'A'
	}
	// Slow path: walk a's fold orbit, as strings.EqualFold does.
	r := simpleFold(a)
	for r != a && r < a {
		if r == b {
			return true
		}
		r = simpleFold(r)
	}
	return r == b
}

// simpleFold is unicode.SimpleFold, kept behind one name so the decode
// path's dependency on the Unicode tables is explicit.
func simpleFold(r rune) rune { return unicode.SimpleFold(r) }

// decodeMessage decodes a JSON object (already vetted to start with '{' or
// be reachable) into m.
func (d *decoder) decodeMessage(m *Message) error {
	return d.decodeObject(messageFields,
		//lint:allow hotalloc non-escaping field callback, it never outlives the decode call
		func(i int) error {
			switch i {
			case 0: // type
				return d.decodeInt64(func(v int64) { m.Type = MsgType(v) })
			case 1: // row
				return d.decodeString(func(s string) { m.Row = model.RowID(s) })
			case 2: // newRow
				return d.decodeString(func(s string) { m.NewRow = model.RowID(s) })
			case 3: // vec
				return d.decodeVector(&m.Vec)
			case 4: // origin
				return d.decodeString(func(s string) { m.Origin = s })
			case 5: // worker
				return d.decodeString(func(s string) { m.Worker = s })
			case 6: // seq
				return d.decodeInt64(func(v int64) { m.Seq = v })
			case 7: // ts
				return d.decodeInt64(func(v int64) { m.TS = v })
			case 8: // auto
				return d.decodeBool(&m.Auto)
			case 9: // col
				return d.decodeInt64(func(v int64) { m.Col = int(v) })
			case 10: // val
				return d.decodeString(func(s string) { m.Val = s })
			case 11: // snapshot
				return d.decodeSnapshotPtr(&m.Snapshot)
			case 12: // estimates
				return d.decodeEstimatesPtr(&m.Estimates)
			}
			return d.fail("unreachable field index")
		})
}

var messageFields = []string{
	"type", "row", "newRow", "vec", "origin", "worker",
	"seq", "ts", "auto", "col", "val", "snapshot", "estimates",
}

var snapshotFields = []string{"rows", "uh", "dh", "uhVecs", "dhVecs"}

var rowFields = []string{"id", "vec", "up", "down"}

var estimatesFields = []string{"perColumn", "upvote", "downvote"}

func (d *decoder) decodeSnapshotPtr(p **Snapshot) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*p = nil
		return nil
	}
	s := *p
	if s == nil {
		s = &Snapshot{}
	}
	err = d.decodeObject(snapshotFields, func(i int) error {
		switch i {
		case 0: // rows
			return d.decodeRows(&s.Rows)
		case 1: // uh
			return d.decodeIntMap(&s.UH)
		case 2: // dh
			return d.decodeIntMap(&s.DH)
		case 3: // uhVecs
			return d.decodeVecMap(&s.UHVecs)
		case 4: // dhVecs
			return d.decodeVecMap(&s.DHVecs)
		}
		return d.fail("unreachable field index")
	})
	if err != nil {
		return err
	}
	*p = s
	return nil
}

func (d *decoder) decodeEstimatesPtr(p **Estimates) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*p = nil
		return nil
	}
	e := *p
	if e == nil {
		e = &Estimates{}
	}
	err = d.decodeObject(estimatesFields, func(i int) error {
		switch i {
		case 0: // perColumn
			return d.decodeFloatSlice(&e.PerColumn)
		case 1: // upvote
			return d.decodeFloat64(&e.Upvote)
		case 2: // downvote
			return d.decodeFloat64(&e.Downvote)
		}
		return d.fail("unreachable field index")
	})
	if err != nil {
		return err
	}
	*p = e
	return nil
}

func (d *decoder) decodeRows(rows *[]model.Row) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*rows = nil
		return nil
	}
	if c != '[' {
		return d.fail("expected array of rows")
	}
	if err := d.push(); err != nil {
		return err
	}
	defer d.pop()
	d.pos++
	out := []model.Row{}
	c, err = d.next()
	if err != nil {
		return err
	}
	if c == ']' {
		d.pos++
		*rows = out
		return nil
	}
	for {
		var r model.Row
		if err := d.decodeRow(&r); err != nil {
			return err
		}
		out = append(out, r)
		c, err = d.next()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.pos++
		case ']':
			d.pos++
			*rows = out
			return nil
		default:
			return d.fail("expected ',' or ']' in array")
		}
	}
}

func (d *decoder) decodeRow(r *model.Row) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		// A null array element leaves the zero Row in place.
		return d.expectLiteral("null")
	}
	return d.decodeObject(rowFields, func(i int) error {
		switch i {
		case 0: // id
			return d.decodeString(func(s string) { r.ID = model.RowID(s) })
		case 1: // vec
			return d.decodeVector(&r.Vec)
		case 2: // up
			return d.decodeInt64(func(v int64) { r.Up = int(v) })
		case 3: // down
			return d.decodeInt64(func(v int64) { r.Down = int(v) })
		}
		return d.fail("unreachable field index")
	})
}

// decodeVector mirrors Vector.UnmarshalJSON (array of string-or-null via
// []*string): null and [] both produce a non-nil empty Vector, exactly as
// make(Vector, 0) does there.
func (d *decoder) decodeVector(v *model.Vector) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*v = make(model.Vector, 0)
		return nil
	}
	if c != '[' {
		return d.fail("expected vector array")
	}
	if err := d.push(); err != nil {
		return err
	}
	defer d.pop()
	d.pos++
	out := make(model.Vector, 0, 4)
	c, err = d.next()
	if err != nil {
		return err
	}
	if c == ']' {
		d.pos++
		*v = out
		return nil
	}
	for {
		c, err = d.next()
		if err != nil {
			return err
		}
		switch c {
		case 'n':
			if err := d.expectLiteral("null"); err != nil {
				return err
			}
			out = append(out, model.Cell{})
		case '"':
			s, err := d.decodeStringBytes()
			if err != nil {
				return err
			}
			out = append(out, model.Cell{Set: true, Val: string(s)})
		default:
			return d.fail("vector cell must be a string or null")
		}
		c, err = d.next()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.pos++
		case ']':
			d.pos++
			*v = out
			return nil
		default:
			return d.fail("expected ',' or ']' in array")
		}
	}
}

func (d *decoder) decodeIntMap(mp *map[string]int) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*mp = nil
		return nil
	}
	out := *mp
	if out == nil {
		out = make(map[string]int)
	}
	err = d.decodeMapBody(func(key string) error {
		// Null values store the zero, matching encoding/json's map decode
		// (the element is decoded into a fresh zero value, then stored).
		var v int64
		if err := d.decodeInt64Nullable(func(n int64) { v = n }); err != nil {
			return err
		}
		out[key] = int(v)
		return nil
	})
	if err != nil {
		return err
	}
	*mp = out
	return nil
}

func (d *decoder) decodeVecMap(mp *map[string]model.Vector) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*mp = nil
		return nil
	}
	out := *mp
	if out == nil {
		out = make(map[string]model.Vector)
	}
	err = d.decodeMapBody(func(key string) error {
		var v model.Vector
		if err := d.decodeVector(&v); err != nil {
			return err
		}
		out[key] = v
		return nil
	})
	if err != nil {
		return err
	}
	*mp = out
	return nil
}

// decodeMapBody parses {"key": <value>, ...}, calling decodeValue for each
// key with the cursor at the value.
func (d *decoder) decodeMapBody(decodeValue func(key string) error) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c != '{' {
		return d.fail("expected object")
	}
	if err := d.push(); err != nil {
		return err
	}
	defer d.pop()
	d.pos++
	c, err = d.next()
	if err != nil {
		return err
	}
	if c == '}' {
		d.pos++
		return nil
	}
	for {
		c, err = d.next()
		if err != nil {
			return err
		}
		if c != '"' {
			return d.fail("expected object key")
		}
		key, err := d.decodeStringBytes()
		if err != nil {
			return err
		}
		keyStr := string(key)
		c, err = d.next()
		if err != nil {
			return err
		}
		if c != ':' {
			return d.fail("expected ':' after object key")
		}
		d.pos++
		if err := decodeValue(keyStr); err != nil {
			return err
		}
		c, err = d.next()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.pos++
		case '}':
			d.pos++
			return nil
		default:
			return d.fail("expected ',' or '}' in object")
		}
	}
}

func (d *decoder) decodeFloatSlice(p *[]float64) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		if err := d.expectLiteral("null"); err != nil {
			return err
		}
		*p = nil
		return nil
	}
	if c != '[' {
		return d.fail("expected array of numbers")
	}
	if err := d.push(); err != nil {
		return err
	}
	defer d.pop()
	d.pos++
	out := []float64{}
	c, err = d.next()
	if err != nil {
		return err
	}
	if c == ']' {
		d.pos++
		*p = out
		return nil
	}
	for {
		c, err = d.next()
		if err != nil {
			return err
		}
		if c == 'n' {
			// null array element decodes as the zero value.
			if err := d.expectLiteral("null"); err != nil {
				return err
			}
			out = append(out, 0)
		} else {
			var f float64
			if err := d.decodeFloat64(&f); err != nil {
				return err
			}
			out = append(out, f)
		}
		c, err = d.next()
		if err != nil {
			return err
		}
		switch c {
		case ',':
			d.pos++
		case ']':
			d.pos++
			*p = out
			return nil
		default:
			return d.fail("expected ',' or ']' in array")
		}
	}
}

// decodeInt64 parses a JSON number with integer syntax (strconv.ParseInt on
// the literal, as encoding/json does for integer fields — "1.0" and "1e2"
// are rejected). A null is a no-op, so set only fires on a real number.
func (d *decoder) decodeInt64(set func(int64)) error {
	return d.decodeInt64Nullable(set)
}

func (d *decoder) decodeInt64Nullable(set func(int64)) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.expectLiteral("null")
	}
	lit, err := d.numberLiteral()
	if err != nil {
		return err
	}
	v, perr := strconv.ParseInt(string(lit), 10, 64)
	if perr != nil {
		return fmt.Errorf("sync: decode message: cannot unmarshal number %s into integer field", lit)
	}
	set(v)
	return nil
}

func (d *decoder) decodeFloat64(p *float64) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.expectLiteral("null")
	}
	lit, err := d.numberLiteral()
	if err != nil {
		return err
	}
	v, perr := strconv.ParseFloat(string(lit), 64)
	if perr != nil {
		return fmt.Errorf("sync: decode message: cannot unmarshal number %s into float field", lit)
	}
	*p = v
	return nil
}

func (d *decoder) decodeBool(p *bool) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	switch c {
	case 't':
		if err := d.expectLiteral("true"); err != nil {
			return err
		}
		*p = true
		return nil
	case 'f':
		if err := d.expectLiteral("false"); err != nil {
			return err
		}
		*p = false
		return nil
	case 'n':
		return d.expectLiteral("null")
	}
	return d.fail("expected boolean")
}

// decodeString parses a JSON string into a freshly-copied Go string; null is
// a no-op (set not called), any other value errors, mirroring encoding/json
// decoding into a string field.
func (d *decoder) decodeString(set func(string)) error {
	c, err := d.next()
	if err != nil {
		return err
	}
	if c == 'n' {
		return d.expectLiteral("null")
	}
	if c != '"' {
		return d.fail("expected string")
	}
	b, err := d.decodeStringBytes()
	if err != nil {
		return err
	}
	set(string(b))
	return nil
}

// numberLiteral consumes a syntactically-valid JSON number and returns its
// raw bytes.
func (d *decoder) numberLiteral() ([]byte, error) {
	start := d.pos
	if !d.eof() && d.peek() == '-' {
		d.pos++
	}
	switch {
	case d.eof():
		return nil, d.fail("truncated number")
	case d.peek() == '0':
		d.pos++
	case d.peek() >= '1' && d.peek() <= '9':
		for !d.eof() && d.peek() >= '0' && d.peek() <= '9' {
			d.pos++
		}
	default:
		return nil, d.fail("invalid number")
	}
	if !d.eof() && d.peek() == '.' {
		d.pos++
		if d.eof() || d.peek() < '0' || d.peek() > '9' {
			return nil, d.fail("truncated fraction")
		}
		for !d.eof() && d.peek() >= '0' && d.peek() <= '9' {
			d.pos++
		}
	}
	if !d.eof() && (d.peek() == 'e' || d.peek() == 'E') {
		d.pos++
		if !d.eof() && (d.peek() == '+' || d.peek() == '-') {
			d.pos++
		}
		if d.eof() || d.peek() < '0' || d.peek() > '9' {
			return nil, d.fail("truncated exponent")
		}
		for !d.eof() && d.peek() >= '0' && d.peek() <= '9' {
			d.pos++
		}
	}
	return d.data[start:d.pos], nil
}

// decodeStringBytes consumes a JSON string (cursor on the opening quote) and
// returns its unescaped contents. When the string needs no unescaping the
// returned slice aliases d.data — callers copy before retaining. Escape
// handling matches encoding/json's unquote: \uXXXX with surrogate pairing,
// lone surrogates and invalid UTF-8 become U+FFFD.
func (d *decoder) decodeStringBytes() ([]byte, error) {
	if d.eof() || d.peek() != '"' {
		return nil, d.fail("expected string")
	}
	d.pos++
	start := d.pos
	// Fast path: scan for a clean span (no escapes, no control bytes, valid
	// UTF-8).
	i := d.pos
	for i < len(d.data) {
		c := d.data[i]
		if c == '"' {
			out := d.data[start:i]
			d.pos = i + 1
			return out, nil
		}
		if c == '\\' || c < 0x20 {
			break
		}
		if c < utf8.RuneSelf {
			i++
			continue
		}
		r, size := utf8.DecodeRune(d.data[i:])
		if r == utf8.RuneError && size == 1 {
			break
		}
		i += size
	}
	// Slow path: build the unescaped form.
	out := append([]byte(nil), d.data[start:i]...) //lint:allow hotalloc unescape slow path, reached only by strings containing escapes
	for i < len(d.data) {
		c := d.data[i]
		switch {
		case c == '"':
			d.pos = i + 1
			return out, nil
		case c < 0x20:
			d.pos = i
			return nil, d.fail("control character in string")
		case c == '\\':
			i++
			if i >= len(d.data) {
				d.pos = i
				return nil, d.fail("truncated escape")
			}
			switch d.data[i] {
			case '"', '\\', '/':
				out = append(out, d.data[i])
				i++
			case 'b':
				out = append(out, '\b')
				i++
			case 'f':
				out = append(out, '\f')
				i++
			case 'n':
				out = append(out, '\n')
				i++
			case 'r':
				out = append(out, '\r')
				i++
			case 't':
				out = append(out, '\t')
				i++
			case 'u':
				r := getu4(d.data[i-1:])
				if r < 0 {
					d.pos = i
					return nil, d.fail("invalid \\u escape")
				}
				i += 5
				if utf16.IsSurrogate(r) {
					r1 := getu4(d.data[i:])
					if dec := utf16.DecodeRune(r, r1); dec != utf8.RuneError {
						i += 6
						out = utf8.AppendRune(out, dec)
						break
					}
					r = utf8.RuneError
				}
				out = utf8.AppendRune(out, r)
			default:
				d.pos = i
				return nil, d.fail("invalid escape character")
			}
		case c < utf8.RuneSelf:
			out = append(out, c)
			i++
		default:
			r, size := utf8.DecodeRune(d.data[i:])
			// Invalid UTF-8 bytes each decode to U+FFFD (size 1).
			out = utf8.AppendRune(out, r)
			i += size
		}
	}
	d.pos = len(d.data)
	return nil, d.fail("unterminated string")
}

// getu4 parses \uXXXX at the start of s, returning -1 on malformed input
// (mirrors encoding/json's getu4).
func getu4(s []byte) rune {
	if len(s) < 6 || s[0] != '\\' || s[1] != 'u' {
		return -1
	}
	var r rune
	for _, c := range s[2:6] {
		switch {
		case '0' <= c && c <= '9':
			c -= '0'
		case 'a' <= c && c <= 'f':
			c = c - 'a' + 10
		case 'A' <= c && c <= 'F':
			c = c - 'A' + 10
		default:
			return -1
		}
		r = r*16 + rune(c)
	}
	return r
}

// skipValue consumes one syntactically-valid JSON value of any shape
// (unknown fields), enforcing the same nesting-depth limit as the scanner.
func (d *decoder) skipValue() error {
	c, err := d.next()
	if err != nil {
		return err
	}
	switch c {
	case '{':
		if err := d.push(); err != nil {
			return err
		}
		defer d.pop()
		d.pos++
		c, err = d.next()
		if err != nil {
			return err
		}
		if c == '}' {
			d.pos++
			return nil
		}
		for {
			c, err = d.next()
			if err != nil {
				return err
			}
			if c != '"' {
				return d.fail("expected object key")
			}
			if _, err := d.decodeStringBytes(); err != nil {
				return err
			}
			c, err = d.next()
			if err != nil {
				return err
			}
			if c != ':' {
				return d.fail("expected ':' after object key")
			}
			d.pos++
			if err := d.skipValue(); err != nil {
				return err
			}
			c, err = d.next()
			if err != nil {
				return err
			}
			switch c {
			case ',':
				d.pos++
			case '}':
				d.pos++
				return nil
			default:
				return d.fail("expected ',' or '}' in object")
			}
		}
	case '[':
		if err := d.push(); err != nil {
			return err
		}
		defer d.pop()
		d.pos++
		c, err = d.next()
		if err != nil {
			return err
		}
		if c == ']' {
			d.pos++
			return nil
		}
		for {
			if err := d.skipValue(); err != nil {
				return err
			}
			c, err = d.next()
			if err != nil {
				return err
			}
			switch c {
			case ',':
				d.pos++
			case ']':
				d.pos++
				return nil
			default:
				return d.fail("expected ',' or ']' in array")
			}
		}
	case '"':
		_, err := d.decodeStringBytes()
		return err
	case 't':
		return d.expectLiteral("true")
	case 'f':
		return d.expectLiteral("false")
	case 'n':
		return d.expectLiteral("null")
	default:
		_, err := d.numberLiteral()
		return err
	}
}
