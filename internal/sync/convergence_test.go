package sync

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"crowdfill/internal/model"
)

// netSim models the paper's execution environment: one server, K clients,
// reliable in-order links in both directions. Clients generate random valid
// primitive operations against their own replica; the scheduler interleaves
// op generation and message deliveries arbitrarily. At quiescence the
// convergence theorem demands identical candidate tables and histories
// everywhere.
type netSim struct {
	schema  *model.Schema
	server  *Replica
	clients []*Replica
	gens    []*IDGen
	// toServer[i] is the FIFO queue client i -> server;
	// toClient[i] is the FIFO queue server -> client i.
	toServer [][]Message
	toClient [][]Message
	rng      *rand.Rand
	ops      int
	// castUp and castDown track votes each client has cast and not yet
	// undone, so the generator can issue valid §8 undo operations.
	castUp   [][]model.Vector
	castDown [][]model.Vector
	// lemma1 maps each row id to the value it was created with: Lemma 1
	// says no id is ever associated with a second value, anywhere.
	lemma1 map[model.RowID]string
	t      *testing.T
}

func newNetSim(schema *model.Schema, k int, seed int64) *netSim {
	ns := &netSim{
		schema:   schema,
		server:   NewReplica(schema),
		rng:      rand.New(rand.NewSource(seed)),
		toServer: make([][]Message, k),
		toClient: make([][]Message, k),
	}
	for i := 0; i < k; i++ {
		ns.clients = append(ns.clients, NewReplica(schema))
		ns.gens = append(ns.gens, NewIDGen(fmt.Sprintf("c%d", i)))
	}
	ns.castUp = make([][]model.Vector, k)
	ns.castDown = make([][]model.Vector, k)
	ns.lemma1 = make(map[model.RowID]string)
	return ns
}

// checkLemma1 records/validates the value associated with a row id.
func (ns *netSim) checkLemma1(m Message) {
	var id model.RowID
	var val string
	switch m.Type {
	case MsgInsert:
		id = m.Row
		val = model.NewVector(ns.schema.NumColumns()).Encode()
	case MsgReplace:
		id = m.NewRow
		val = m.Vec.Encode()
	default:
		return
	}
	if prev, ok := ns.lemma1[id]; ok {
		if prev != val && ns.t != nil {
			ns.t.Fatalf("lemma 1 violated: row %s associated with two values", id)
		}
		return
	}
	ns.lemma1[id] = val
}

// genOp makes client i perform one random valid primitive operation, if any
// is possible, and enqueues the message to the server.
func (ns *netSim) genOp(i int) bool {
	c := ns.clients[i]
	g := ns.gens[i]
	rows := c.Table().Rows()

	type action struct {
		kind int
		row  *model.Row
		col  int
	}
	var actions []action
	// insert is always possible (the model allows any client to insert;
	// the production system restricts it to CC, but the theorem covers it).
	actions = append(actions, action{kind: 0})
	for _, r := range rows {
		for col := range r.Vec {
			if !r.Vec[col].Set {
				actions = append(actions, action{kind: 1, row: r, col: col})
			}
		}
		if r.Vec.IsComplete() {
			actions = append(actions, action{kind: 2, row: r})
		}
		if r.Vec.IsPartial() {
			actions = append(actions, action{kind: 3, row: r})
		}
	}
	if len(ns.castUp[i]) > 0 {
		actions = append(actions, action{kind: 4})
	}
	if len(ns.castDown[i]) > 0 {
		actions = append(actions, action{kind: 5})
	}
	a := actions[ns.rng.Intn(len(actions))]
	var m Message
	var err error
	switch a.kind {
	case 0:
		m, err = c.Insert(g.Next())
	case 1:
		m, err = c.Fill(a.row.ID, a.col, fmt.Sprintf("v%d", ns.rng.Intn(4)), g.Next())
	case 2:
		m, err = c.Upvote(a.row.ID)
		if err == nil {
			ns.castUp[i] = append(ns.castUp[i], m.Vec.Clone())
		}
	case 3:
		m, err = c.Downvote(a.row.ID)
		if err == nil {
			ns.castDown[i] = append(ns.castDown[i], m.Vec.Clone())
		}
	case 4: // §8 undo: retract one of this client's own upvotes
		j := ns.rng.Intn(len(ns.castUp[i]))
		v := ns.castUp[i][j]
		ns.castUp[i] = append(ns.castUp[i][:j], ns.castUp[i][j+1:]...)
		m, err = c.UndoUpvote(v)
	case 5:
		j := ns.rng.Intn(len(ns.castDown[i]))
		v := ns.castDown[i][j]
		ns.castDown[i] = append(ns.castDown[i][:j], ns.castDown[i][j+1:]...)
		m, err = c.UndoDownvote(v)
	}
	if err != nil {
		panic(fmt.Sprintf("locally valid op failed: %v", err))
	}
	m.Origin = fmt.Sprintf("c%d", i)
	ns.toServer[i] = append(ns.toServer[i], m)
	ns.ops++
	return true
}

// deliverToServer pops one message from client i's queue, applies it at the
// server, and forwards it to every other client.
func (ns *netSim) deliverToServer(i int) {
	if len(ns.toServer[i]) == 0 {
		return
	}
	m := ns.toServer[i][0]
	ns.toServer[i] = ns.toServer[i][1:]
	ns.checkLemma1(m)
	if err := ns.server.Apply(m); err != nil {
		panic(fmt.Sprintf("server apply: %v", err))
	}
	for j := range ns.clients {
		if j != i {
			ns.toClient[j] = append(ns.toClient[j], m)
		}
	}
}

// deliverToClient pops one message from the server->client j queue.
func (ns *netSim) deliverToClient(j int) {
	if len(ns.toClient[j]) == 0 {
		return
	}
	m := ns.toClient[j][0]
	ns.toClient[j] = ns.toClient[j][1:]
	if err := ns.clients[j].Apply(m); err != nil {
		panic(fmt.Sprintf("client %d apply: %v", j, err))
	}
}

// step performs one random schedulable event. budget limits op generation.
func (ns *netSim) step(opBudget int) {
	k := len(ns.clients)
	// Choose among: generate op (if budget), deliver to server, deliver to client.
	for tries := 0; tries < 10; tries++ {
		switch ns.rng.Intn(3) {
		case 0:
			if ns.ops < opBudget {
				ns.genOp(ns.rng.Intn(k))
				return
			}
		case 1:
			i := ns.rng.Intn(k)
			if len(ns.toServer[i]) > 0 {
				ns.deliverToServer(i)
				return
			}
		case 2:
			j := ns.rng.Intn(k)
			if len(ns.toClient[j]) > 0 {
				ns.deliverToClient(j)
				return
			}
		}
	}
}

// quiesce drains every queue.
func (ns *netSim) quiesce() {
	for {
		moved := false
		for i := range ns.clients {
			if len(ns.toServer[i]) > 0 {
				ns.deliverToServer(i)
				moved = true
			}
		}
		for j := range ns.clients {
			for len(ns.toClient[j]) > 0 {
				ns.deliverToClient(j)
				moved = true
			}
		}
		if !moved {
			return
		}
	}
}

// TestConvergenceTheorem is the paper's §2.4.2 theorem as an executable
// property: for many random op streams and delivery schedules, at quiescence
// the server and all clients hold identical candidate tables and identical
// vote histories, and Lemma 3's invariants hold everywhere.
func TestConvergenceTheorem(t *testing.T) {
	schema := model.MustSchema("T", []model.Column{
		{Name: "a"}, {Name: "b"}, {Name: "c"},
	}, "a")
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := 0; seed < seeds; seed++ {
		ns := newNetSim(schema, 2+seed%4, int64(seed))
		ns.t = t
		opBudget := 30 + seed*3
		for step := 0; step < opBudget*10; step++ {
			ns.step(opBudget)
		}
		ns.quiesce()
		want := ns.server.SnapshotText()
		for j, c := range ns.clients {
			if got := c.SnapshotText(); got != want {
				t.Fatalf("seed %d: client %d diverged from server\nserver:\n%s\nclient:\n%s",
					seed, j, want, got)
			}
		}
		if err := ns.server.CheckLemma3(); err != nil {
			t.Fatalf("seed %d: server %v", seed, err)
		}
		for j, c := range ns.clients {
			if err := c.CheckLemma3(); err != nil {
				t.Fatalf("seed %d: client %d %v", seed, j, err)
			}
		}
	}
}

// TestConvergenceLateJoin extends the theorem to snapshot-initialized
// late-joining clients: a client that joins mid-collection from a server
// snapshot converges with everyone else.
func TestConvergenceLateJoin(t *testing.T) {
	schema := model.MustSchema("T", []model.Column{{Name: "a"}, {Name: "b"}}, "a")
	for seed := int64(0); seed < 10; seed++ {
		ns := newNetSim(schema, 2, seed)
		for step := 0; step < 200; step++ {
			ns.step(25)
		}
		// A third client joins from the server's current snapshot. All
		// messages the server processed so far are reflected in the
		// snapshot; in-flight server->client queues don't concern it.
		late := NewReplica(schema)
		late.LoadSnapshot(ns.server.TakeSnapshot())
		ns.clients = append(ns.clients, late)
		ns.gens = append(ns.gens, NewIDGen("late"))
		ns.toServer = append(ns.toServer, nil)
		ns.toClient = append(ns.toClient, nil)
		ns.castUp = append(ns.castUp, nil)
		ns.castDown = append(ns.castDown, nil)
		for step := 0; step < 200; step++ {
			ns.step(50)
		}
		ns.quiesce()
		want := ns.server.SnapshotText()
		for j, c := range ns.clients {
			if got := c.SnapshotText(); got != want {
				t.Fatalf("seed %d: client %d diverged after late join", seed, j)
			}
		}
	}
}

// TestConvergenceFinalTablesAgree: since candidate tables and vote counts
// converge, the derived final tables agree too.
func TestConvergenceFinalTablesAgree(t *testing.T) {
	schema := model.MustSchema("T", []model.Column{{Name: "a"}, {Name: "b"}}, "a")
	ns := newNetSim(schema, 3, 99)
	for step := 0; step < 800; step++ {
		ns.step(80)
	}
	ns.quiesce()
	f := model.MajorityShortcut(3)
	want := fmt.Sprint(model.FinalVectors(ns.server.Table(), f))
	for j, c := range ns.clients {
		if got := fmt.Sprint(model.FinalVectors(c.Table(), f)); got != want {
			t.Fatalf("client %d final table diverged: %s vs %s", j, got, want)
		}
	}
}

func BenchmarkReplicaApplyReplace(b *testing.B) {
	schema := model.MustSchema("T", []model.Column{{Name: "a"}, {Name: "b"}, {Name: "c"}}, "a")
	r := NewReplica(schema)
	g := NewIDGen("c")
	ids := make([]model.RowID, 0, b.N)
	for i := 0; i < b.N; i++ {
		m, _ := r.Insert(g.Next())
		ids = append(ids, m.Row)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Fill(ids[i], 0, "v", g.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReplicaApplyVote(b *testing.B) {
	schema := model.MustSchema("T", []model.Column{{Name: "a"}, {Name: "b"}}, "a")
	r := NewReplica(schema)
	g := NewIDGen("c")
	// 100-row table to vote over.
	var target model.RowID
	for i := 0; i < 100; i++ {
		m, _ := r.Insert(g.Next())
		id := m.Row
		id2 := g.Next()
		r.Fill(id, 0, fmt.Sprintf("k%d", i), id2)
		id3 := g.Next()
		r.Fill(id2, 1, "v", id3)
		target = id3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Upvote(target); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDecodeMessageNeverPanics fuzzes the wire decoder with arbitrary bytes.
func TestDecodeMessageNeverPanics(t *testing.T) {
	f := func(data []byte) bool {
		// Must not panic; errors are fine.
		_, _ = DecodeMessage(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestEncodeDecodePropertyRoundTrip: any message built from the operation
// surface survives the wire.
func TestEncodeDecodePropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schema := model.MustSchema("T", []model.Column{{Name: "a"}, {Name: "b"}}, "a")
	rep := NewReplica(schema)
	g := NewIDGen("c")
	for i := 0; i < 200; i++ {
		rows := rep.Table().Rows()
		var m Message
		var err error
		if len(rows) == 0 || rng.Intn(4) == 0 {
			m, err = rep.Insert(g.Next())
		} else {
			r := rows[rng.Intn(len(rows))]
			filled := false
			for col, cell := range r.Vec {
				if !cell.Set {
					m, err = rep.Fill(r.ID, col, fmt.Sprintf("v|%d:", rng.Intn(9)), g.Next())
					filled = true
					break
				}
			}
			if !filled {
				m, err = rep.Upvote(r.ID)
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeMessage(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != m.Type || got.Row != m.Row || got.NewRow != m.NewRow || !got.Vec.Equal(m.Vec) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, m)
		}
	}
}
