package sync

import gosync "sync"

// Prepared is a message prepared for delivery to many clients: the JSON
// encoding — and, one layer down, the transport frame — is produced once and
// shared by every recipient, so a broadcast to N clients costs one encode
// instead of N (the same idea as gorilla/websocket's PreparedMessage).
//
// Encoding is lazy: wrapping a single-recipient message in a Prepared costs
// nothing until a transport actually asks for bytes, and in-process
// transports that deliver the Message value directly never encode at all.
// All methods are safe for concurrent use by multiple sender goroutines.
type Prepared struct {
	msg Message

	once gosync.Once
	data []byte
	err  error

	frameOnce gosync.Once
	frame     any
	frameErr  error
}

// NewPrepared wraps a message for shared delivery. The message must not be
// mutated afterwards.
func NewPrepared(m Message) *Prepared { return &Prepared{msg: m} }

// Message returns the wrapped message value.
func (p *Prepared) Message() Message { return p.msg }

// Payload returns the message's JSON encoding, marshalling on first use and
// returning the same shared bytes afterwards. Callers must not modify the
// returned slice.
func (p *Prepared) Payload() ([]byte, error) {
	p.once.Do(func() { p.data, p.err = EncodeMessage(p.msg) })
	return p.data, p.err
}

// Frame returns the transport-level frame for this message, building it with
// build on first use and returning the same shared value afterwards. The
// transport layer supplies build (e.g. wrapping Payload in a cached RFC 6455
// frame); sync stays transport-agnostic.
func (p *Prepared) Frame(build func(payload []byte) (any, error)) (any, error) {
	p.frameOnce.Do(func() {
		data, err := p.Payload()
		if err != nil {
			p.frameErr = err
			return
		}
		p.frame, p.frameErr = build(data)
	})
	return p.frame, p.frameErr
}
