package sync

import (
	"fmt"
	"sort"
	"strings"

	"crowdfill/internal/model"
)

// VoteHist is a vote history (UH or DH, paper §2.4): a map from value-vectors
// to the number of votes cast for exactly that vector. It keeps the decoded
// vector alongside each count so subset sums (Σ_{w⊆q} DH[w]) can be computed.
type VoteHist struct {
	m map[string]*histEntry
}

type histEntry struct {
	vec model.Vector
	n   int
}

// NewVoteHist returns an empty history.
func NewVoteHist() *VoteHist { return &VoteHist{m: make(map[string]*histEntry)} }

// Inc increments the count for vector v and returns the new count.
func (h *VoteHist) Inc(v model.Vector) int {
	k := v.Encode()
	e, ok := h.m[k]
	if !ok {
		e = &histEntry{vec: v.Clone()}
		h.m[k] = e
	}
	e.n++
	return e.n
}

// Dec decrements the count for vector v (the §8 undo extension) and returns
// the new count. Callers enforce that an undo follows a matching vote; the
// structure itself tolerates any count.
func (h *VoteHist) Dec(v model.Vector) int {
	k := v.Encode()
	e, ok := h.m[k]
	if !ok {
		e = &histEntry{vec: v.Clone()}
		h.m[k] = e
	}
	e.n--
	return e.n
}

// Get returns the count for exactly vector v (0 if never voted).
func (h *VoteHist) Get(v model.Vector) int {
	if e, ok := h.m[v.Encode()]; ok {
		return e.n
	}
	return 0
}

// SubsetSum returns Σ over entries w ⊆ v of their counts — the downvote count
// a newly-constructed row with value v must carry (paper §2.4).
func (h *VoteHist) SubsetSum(v model.Vector) int {
	total := 0
	for _, e := range h.m {
		if e.vec.Subset(v) {
			total += e.n
		}
	}
	return total
}

// Len returns the number of distinct voted vectors.
func (h *VoteHist) Len() int { return len(h.m) }

// Each calls fn for every (vector, count) entry.
func (h *VoteHist) Each(fn func(v model.Vector, n int)) {
	for _, e := range h.m {
		fn(e.vec, e.n)
	}
}

// Clone deep-copies the history.
func (h *VoteHist) Clone() *VoteHist {
	out := NewVoteHist()
	for k, e := range h.m {
		out.m[k] = &histEntry{vec: e.vec.Clone(), n: e.n}
	}
	return out
}

// Snapshot renders a canonical textual form (sorted), for replica comparison
// in convergence tests.
func (h *VoteHist) Snapshot() string {
	keys := make([]string, 0, len(h.m))
	for k := range h.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		// Zero-count entries (a vote fully undone) are canonically identical
		// to vectors never voted on.
		if h.m[k].n == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s=%d\n", k, h.m[k].n)
	}
	return b.String()
}

// export returns the wire form for snapshots.
func (h *VoteHist) export() (counts map[string]int, vecs map[string]model.Vector) {
	counts = make(map[string]int, len(h.m))
	vecs = make(map[string]model.Vector, len(h.m))
	for k, e := range h.m {
		counts[k] = e.n
		vecs[k] = e.vec.Clone()
	}
	return counts, vecs
}

// importFrom loads the wire form produced by export.
func (h *VoteHist) importFrom(counts map[string]int, vecs map[string]model.Vector) {
	h.m = make(map[string]*histEntry, len(counts))
	for k, n := range counts {
		h.m[k] = &histEntry{vec: vecs[k].Clone(), n: n}
	}
}
