package sync_test

import (
	"fmt"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// Example reproduces the paper's §2.4.1 concurrency walkthrough: two clients
// fill different columns of the same row; once both replace messages
// propagate, every replica holds two rows — one per intent — rather than a
// merged row neither client meant.
func Example() {
	schema := model.MustSchema("SoccerPlayer", []model.Column{
		{Name: "name"}, {Name: "nationality"}, {Name: "position"},
	}, "name", "nationality")
	server := sync.NewReplica(schema)
	c1 := sync.NewReplica(schema)
	c2 := sync.NewReplica(schema)

	// The Central Client seeds a row holding position=FW.
	seed, _ := server.Insert("cc-1")
	fill, _ := server.Fill("cc-1", 2, "FW", "cc-2")
	for _, rep := range []*sync.Replica{c1, c2} {
		rep.Apply(seed)
		rep.Apply(fill)
	}

	// Concurrently: client 1 fills the name, client 2 the nationality.
	f1, _ := c1.Fill("cc-2", 0, "Lionel Messi", "c1-1")
	f2, _ := c2.Fill("cc-2", 1, "Brazil", "c2-1")
	server.Apply(f1)
	server.Apply(f2)
	c1.Apply(f2)
	c2.Apply(f1)

	fmt.Println("replicas equal:", server.SnapshotText() == c1.SnapshotText() &&
		c1.SnapshotText() == c2.SnapshotText())
	for _, r := range server.Table().Rows() {
		fmt.Println(r.Vec)
	}
	// Output:
	// replicas equal: true
	// (Lionel Messi, ·, FW)
	// (·, Brazil, FW)
}
