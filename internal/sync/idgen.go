package sync

import (
	"fmt"

	"crowdfill/internal/model"
)

// IDGen mints globally-unique row identifiers for insert and fill operations
// (paper §2.4 assumes fills generate globally-unique ids for the rows they
// construct). Uniqueness comes from a per-client prefix plus a counter; the
// fixed-width counter keeps ids lexicographically ordered per origin, which
// the deterministic tie-breaks rely on.
type IDGen struct {
	prefix string
	n      int64
}

// NewIDGen returns a generator whose ids are "<prefix>-<counter>".
func NewIDGen(prefix string) *IDGen { return &IDGen{prefix: prefix} }

// Next returns a fresh row id.
func (g *IDGen) Next() model.RowID {
	g.n++
	return model.RowID(fmt.Sprintf("%s-%08d", g.prefix, g.n))
}

// Count returns how many ids have been minted.
func (g *IDGen) Count() int64 { return g.n }
