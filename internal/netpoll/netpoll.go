// Package netpoll is a small readiness poller for server-side sockets: the
// kernel-facing half of the readiness-driven read plane (DESIGN.md §15).
// On Linux it wraps epoll directly through the syscall package; elsewhere
// New reports ErrUnsupported and servers keep the goroutine-per-connection
// blocking read loop.
//
// The design mirrors the flusher pool's parking discipline on the write
// side: a fixed worker pool blocks on a condition-variable queue, the
// single waiter goroutine blocks in epoll_wait, and an idle connection
// costs zero goroutines — it is exactly one armed ONESHOT entry in the
// kernel's interest set.
//
// Ownership protocol: every registered descriptor is, at any instant, in
// exactly one of four states — idle (armed in the kernel, or disarmed and
// untouched), queued (readiness reported, waiting for a worker), running
// (exactly one worker executing its handler), or gone (deregistered).
// ONESHOT registration plus the state machine's CAS transitions guarantee
// at most one worker runs a connection's handler at a time, which is what
// lets the wsock reassembly state stay single-reader without a lock. The
// handler re-arms (or re-queues, when its read budget ran out) as its last
// action and must not touch connection read state afterwards.
package netpoll

import (
	"errors"
	gosync "sync"
	"sync/atomic"
	"syscall"
)

// ErrUnsupported is returned by New on platforms without a readiness
// backend; the server falls back to blocking reads.
var ErrUnsupported = errors.New("netpoll: readiness polling unsupported on this platform")

// ErrClosed is returned by Register after Close.
var ErrClosed = errors.New("netpoll: poller closed")

// scratchBytes is each worker's read buffer: large enough to drain several
// typical frames per readiness event, small enough that the pool's total
// footprint is a few hundred kilobytes regardless of connection count.
const scratchBytes = 32 << 10

// wakeToken is the reserved epoll token of the internal wake pipe;
// connection tokens start above it.
const wakeToken = 0

// Stats receives the poller's operational series; implementations must be
// cheap and safe for concurrent use (the server's metrics plane wires its
// atomic instruments in here). A nil Stats disables instrumentation.
type Stats interface {
	// PollRegistered reports the new registered-descriptor count after a
	// register or deregister.
	PollRegistered(n int)
	// PollWakeup reports one epoll_wait return that delivered ready
	// readiness events for ready connections.
	PollWakeup(ready int)
	// PollQueueDelta reports a change in dispatch-queue depth.
	PollQueueDelta(d int)
	// PollDispatch reports one handler dispatch to a worker.
	PollDispatch()
}

// Descriptor dispatch states; see the package comment's ownership protocol.
const (
	descIdle int32 = iota
	descQueued
	descRunning
	descGone
)

// Desc is one registered connection's poller handle.
type Desc struct {
	p     *Poller
	tok   uint64
	rc    syscall.RawConn
	run   func(scratch []byte)
	state atomic.Int32
}

// Poller owns the kernel interest set, the dispatch queue, and the worker
// pool. The zero value is not usable; construct with New.
type Poller struct {
	// mu guards descs, next, and closed; critical sections only touch the
	// map (no I/O, no blocking calls) and epoll_ctl happens outside it.
	mu     gosync.Mutex
	descs  map[uint64]*Desc
	next   uint64
	closed bool

	q       *pollQueue
	workers gosync.WaitGroup
	waiter  gosync.WaitGroup
	st      Stats
	os      osPoller
}

// OSSupported reports whether this platform has a readiness backend at all
// (build-time: true only on Linux). The bench harness keys its
// goroutines-per-connection expectations on it.
func OSSupported() bool { return osSupported }

// New starts a poller with the given worker-pool size. It returns
// ErrUnsupported where no backend exists and the epoll setup error when the
// kernel refuses (descriptor exhaustion); callers treat any error as "run
// the blocking read path".
func New(workers int, st Stats) (*Poller, error) {
	if !osSupported {
		return nil, ErrUnsupported
	}
	if workers < 1 {
		workers = 1
	}
	p := &Poller{descs: make(map[uint64]*Desc), next: wakeToken + 1, st: st}
	p.q = newPollQueue(st)
	if err := p.osInit(); err != nil {
		return nil, err
	}
	p.waiter.Add(1)
	go p.wait()
	p.workers.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p, nil
}

// Supported reports whether this poller instance can accept registrations;
// nil-safe so servers can hold a nil *Poller on fallback platforms.
func (p *Poller) Supported() bool { return p != nil }

// Registered returns the current registered-descriptor count (tests and
// debug surfaces).
func (p *Poller) Registered() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	n := len(p.descs)
	p.mu.Unlock()
	return n
}

// Register adds a connection to the interest set, disarmed: no readiness
// event fires until the first Rearm. Callers Kick the descriptor once after
// registration so a worker performs the initial drain (bytes that arrived
// before registration would otherwise never be reported) and arms it.
func (p *Poller) Register(rc syscall.RawConn, run func(scratch []byte)) (*Desc, error) {
	if p == nil {
		return nil, ErrUnsupported
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	tok := p.next
	p.next++
	d := &Desc{p: p, tok: tok, rc: rc, run: run}
	p.descs[tok] = d
	n := len(p.descs)
	p.mu.Unlock()
	if err := p.osAdd(rc, tok); err != nil {
		p.mu.Lock()
		delete(p.descs, tok)
		p.mu.Unlock()
		d.state.Store(descGone)
		return nil, err
	}
	if p.st != nil {
		p.st.PollRegistered(n)
	}
	return d, nil
}

// Kick queues the descriptor for dispatch as if the kernel had reported it
// readable. Used for the initial post-registration drain.
func (p *Poller) Kick(d *Desc) {
	if p == nil || d == nil {
		return
	}
	p.enqueue(d)
}

// enqueue moves an idle descriptor to the dispatch queue; descriptors
// already queued, running, or gone are left alone (the state machine is the
// dedup: a spurious event for a running connection is safe to drop because
// the handler will observe whatever condition caused it on its next read,
// and re-arming re-delivers anything still pending under level-triggered
// ONESHOT).
func (p *Poller) enqueue(d *Desc) {
	if d.state.CompareAndSwap(descIdle, descQueued) {
		p.q.push(d)
	}
}

// Rearm re-enables readiness events after a handler drained the socket. It
// must be the handler's final touch on the connection: the instant the
// kernel is re-armed another worker may be dispatched. Returns a non-nil
// error when the kernel refused (connection closed under us) — the handler
// must tear the connection down then. A no-op on deregistered descriptors.
func (d *Desc) Rearm() error {
	if !d.state.CompareAndSwap(descRunning, descIdle) {
		return nil // deregistered mid-dispatch; teardown owns the conn now
	}
	return d.p.osArm(d.rc, d.tok)
}

// Requeue puts the descriptor straight back on the dispatch queue instead
// of re-arming it — the budgeted-drain path for connections with more data
// than one dispatch's read budget. Same final-touch contract as Rearm.
func (d *Desc) Requeue() {
	if d.state.CompareAndSwap(descRunning, descQueued) {
		d.p.q.push(d)
	}
}

// Deregister removes the connection from the interest set. Idempotent and
// nil-safe; safe to call while a handler is running (the handler's
// subsequent Rearm becomes a no-op). The kernel-side removal is best-effort
// because a locally closed descriptor has already left the epoll set.
func (p *Poller) Deregister(d *Desc) {
	if p == nil || d == nil {
		return
	}
	p.mu.Lock()
	_, present := p.descs[d.tok]
	delete(p.descs, d.tok)
	n := len(p.descs)
	p.mu.Unlock()
	d.state.Store(descGone)
	if !present {
		return
	}
	p.osDel(d.rc)
	if p.st != nil {
		p.st.PollRegistered(n)
	}
}

// Close stops the waiter and the worker pool and releases the kernel
// resources. Descriptors still queued are dropped — callers close the
// underlying connections during shutdown, which fires their own teardown
// hooks. Idempotent and nil-safe.
func (p *Poller) Close() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.osWake()
	p.waiter.Wait()
	p.q.close()
	p.workers.Wait()
	p.osDestroy()
}

// worker is one pool goroutine: it parks on the dispatch queue, claims
// descriptors with a queued→running transition, and runs their handlers
// against its own scratch buffer. The scratch is per-worker, not per
// connection — connection count does not multiply read-buffer footprint.
func (p *Poller) worker() {
	defer p.workers.Done()
	scratch := make([]byte, scratchBytes)
	for {
		d, ok := p.q.pop()
		if !ok {
			return
		}
		if !d.state.CompareAndSwap(descQueued, descRunning) {
			continue // deregistered while waiting in the queue
		}
		if p.st != nil {
			p.st.PollDispatch()
		}
		d.run(scratch)
	}
}

// pollQueue is the dispatch queue: the same cond-parked FIFO as the write
// plane's flushQueue, so idle workers hold no CPU and a push wakes exactly
// as many workers as there is work for.
type pollQueue struct {
	mu     gosync.Mutex
	cond   *gosync.Cond
	q      []*Desc
	closed bool
	st     Stats
}

func newPollQueue(st Stats) *pollQueue {
	q := &pollQueue{st: st}
	q.cond = gosync.NewCond(&q.mu)
	return q
}

// push appends descriptors and wakes idle workers. Pushes after close are
// dropped: shutdown tears every connection down anyway.
func (q *pollQueue) push(ds ...*Desc) {
	if len(ds) == 0 {
		return
	}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.q = append(q.q, ds...)
	if q.st != nil {
		q.st.PollQueueDelta(len(ds))
	}
	if len(ds) == 1 {
		q.cond.Signal()
	} else {
		q.cond.Broadcast()
	}
	q.mu.Unlock()
}

// pop blocks until a descriptor is available; ok is false once the queue is
// closed (remaining entries are dropped).
func (q *pollQueue) pop() (d *Desc, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.q) == 0 {
		if q.closed {
			return nil, false
		}
		q.cond.Wait()
	}
	d = q.q[0]
	q.q[0] = nil
	q.q = q.q[1:]
	if q.st != nil {
		q.st.PollQueueDelta(-1)
	}
	return d, true
}

// close wakes every worker with ok=false.
func (q *pollQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}
