package netpoll

import (
	"net"
	"runtime"
	gosync "sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// tcpPair returns two ends of a loopback TCP connection as *net.TCPConn so
// tests can pull syscall.RawConn handles.
func tcpPair(t *testing.T) (cli net.Conn, srv *net.TCPConn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	cli, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	srv = c.(*net.TCPConn)
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func rawConn(t *testing.T, c *net.TCPConn) syscall.RawConn {
	t.Helper()
	rc, err := c.SyscallConn()
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func newTestPoller(t *testing.T, workers int) *Poller {
	t.Helper()
	p, err := New(workers, nil)
	if err == ErrUnsupported {
		t.Skip("no readiness backend on this platform")
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// drainRearm builds a handler that drains the socket non-blocking, counts
// the bytes seen, and re-arms — the canonical handler shape.
func drainRearm(t *testing.T, rc syscall.RawConn, total *atomic.Int64, dispatches *atomic.Int64) func(d **Desc) func([]byte) {
	return func(d **Desc) func([]byte) {
		return func(scratch []byte) {
			dispatches.Add(1)
			for {
				var n int
				var rerr error
				err := rc.Read(func(fd uintptr) bool {
					n, rerr = syscall.Read(int(fd), scratch)
					return true
				})
				if err != nil || rerr != nil || n <= 0 {
					break
				}
				total.Add(int64(n))
			}
			(*d).Rearm()
		}
	}
}

// waitCond polls cond with a deadline.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s: not reached in time", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPollerDispatchCycle runs the full descriptor lifecycle: disarmed
// registration, manual Kick for the pre-registration bytes, kernel-driven
// wakeups after Rearm, and Deregister going quiet.
func TestPollerDispatchCycle(t *testing.T) {
	p := newTestPoller(t, 2)
	cli, srv := tcpPair(t)
	rc := rawConn(t, srv)

	var total, dispatches atomic.Int64
	var d *Desc
	handler := drainRearm(t, rc, &total, &dispatches)(&d)
	d, err := p.Register(rc, handler)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if p.Registered() != 1 {
		t.Fatalf("Registered = %d, want 1", p.Registered())
	}

	// Bytes written before the Kick: the kernel never reports them (the
	// descriptor is disarmed), so only the manual dispatch can find them.
	if _, err := cli.Write(make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // let the bytes land in the socket buffer
	p.Kick(d)
	waitCond(t, "initial drain", func() bool { return total.Load() == 100 })

	// Now armed: kernel readiness drives dispatch with no Kick.
	for i := 0; i < 5; i++ {
		if _, err := cli.Write(make([]byte, 10)); err != nil {
			t.Fatal(err)
		}
		waitCond(t, "armed wakeup", func() bool { return total.Load() == int64(100+10*(i+1)) })
	}

	p.Deregister(d)
	if p.Registered() != 0 {
		t.Fatalf("Registered after Deregister = %d", p.Registered())
	}
	// Events for a gone descriptor must not dispatch.
	before := dispatches.Load()
	cli.Write(make([]byte, 10))
	time.Sleep(20 * time.Millisecond)
	if got := dispatches.Load(); got != before {
		t.Fatalf("dispatches after Deregister: %d -> %d", before, got)
	}
	p.Deregister(d) // idempotent
}

// TestPollerSingleDispatch: ONESHOT plus the state machine must never run a
// descriptor's handler on two workers at once, even with a worker pool larger
// than one, continuous traffic, and Requeue in the mix.
func TestPollerSingleDispatch(t *testing.T) {
	p := newTestPoller(t, 4)
	cli, srv := tcpPair(t)
	rc := rawConn(t, srv)

	var concurrent, peak, runs atomic.Int64
	var d *Desc
	handler := func(scratch []byte) {
		c := concurrent.Add(1)
		if c > peak.Load() {
			peak.Store(c)
		}
		for {
			var n int
			var rerr error
			err := rc.Read(func(fd uintptr) bool {
				n, rerr = syscall.Read(int(fd), scratch[:16]) // tiny reads force many dispatches
				return true
			})
			if err != nil || rerr != nil || n <= 0 {
				break
			}
			break // one read per dispatch, then requeue: exercises queued-state dedup
		}
		concurrent.Add(-1)
		runs.Add(1)
		if runs.Load()%2 == 0 {
			d.Requeue()
		} else if err := d.Rearm(); err != nil {
			return
		}
	}
	var err error
	d, err = p.Register(rc, handler)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Deregister(d)

	stop := make(chan struct{})
	var wg gosync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, 64)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cli.Write(buf)
			runtime.Gosched()
		}
	}()
	p.Kick(d)
	waitCond(t, "many dispatches", func() bool { return runs.Load() > 200 })
	close(stop)
	wg.Wait()
	if peak.Load() > 1 {
		t.Fatalf("handler ran on %d workers concurrently", peak.Load())
	}
}

// TestPollerCloseStopsGoroutines: Close joins the waiter and every worker —
// no poller goroutine survives — and further registrations are refused.
func TestPollerCloseStopsGoroutines(t *testing.T) {
	if !OSSupported() {
		t.Skip("no readiness backend on this platform")
	}
	baseline := runtime.NumGoroutine()
	p, err := New(4, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, srv := tcpPair(t)
	rc := rawConn(t, srv)
	d, err := p.Register(rc, func([]byte) {})
	if err != nil {
		t.Fatal(err)
	}
	_ = d
	p.Close()
	p.Close() // idempotent
	waitCond(t, "goroutines joined", func() bool { return runtime.NumGoroutine() <= baseline })
	if _, err := p.Register(rc, func([]byte) {}); err != ErrClosed {
		t.Fatalf("Register after Close err = %v, want ErrClosed", err)
	}
}

// TestPollerNilSafe: the fallback path holds a nil *Poller; every method must
// be a safe no-op on it.
func TestPollerNilSafe(t *testing.T) {
	var p *Poller
	if p.Supported() {
		t.Fatal("nil poller claims support")
	}
	if p.Registered() != 0 {
		t.Fatal("nil poller has registrations")
	}
	if _, err := p.Register(nil, nil); err != ErrUnsupported {
		t.Fatalf("nil Register err = %v", err)
	}
	p.Kick(nil)
	p.Deregister(nil)
	p.Close()
}

// TestPollerDeregisterMidDispatch: deregistering while the handler runs must
// turn the handler's final Rearm into a no-op instead of resurrecting the
// descriptor.
func TestPollerDeregisterMidDispatch(t *testing.T) {
	p := newTestPoller(t, 2)
	cli, srv := tcpPair(t)
	rc := rawConn(t, srv)

	entered := make(chan struct{})
	release := make(chan struct{})
	var rearmsAfterGone atomic.Int64
	var d *Desc
	var err error
	d, err = p.Register(rc, func(scratch []byte) {
		entered <- struct{}{}
		<-release
		if err := d.Rearm(); err == nil && d.state.Load() != descGone {
			// Rearm must have been a no-op: state stays gone.
			rearmsAfterGone.Add(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cli.Write([]byte("x"))
	p.Kick(d)
	<-entered
	p.Deregister(d)
	close(release)
	waitCond(t, "handler returned", func() bool { return d.state.Load() == descGone })
	if rearmsAfterGone.Load() != 0 {
		t.Fatal("Rearm re-armed a deregistered descriptor")
	}
	// Fresh traffic must not dispatch the dead descriptor.
	cli.Write([]byte("y"))
	time.Sleep(20 * time.Millisecond)
}
