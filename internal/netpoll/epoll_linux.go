//go:build linux

package netpoll

import (
	"syscall"
)

const osSupported = true

// osPoller holds the kernel-facing state: the epoll instance and a
// non-blocking wake pipe whose read end sits permanently in the interest
// set under the reserved wakeToken, so Close can pull the waiter out of
// epoll_wait without signals.
type osPoller struct {
	epfd  int
	wakeR int
	wakeW int
}

// armedEvents is the interest mask for an armed connection: readable data,
// peer half-close, and one-shot delivery so at most one dispatch per arm.
// EPOLLERR/EPOLLHUP are implicit (the kernel always reports them), which is
// exactly what we want: a broken connection gets dispatched once, the
// handler's read fails, and teardown runs.
const armedEvents = syscall.EPOLLIN | syscall.EPOLLRDHUP | syscall.EPOLLONESHOT

// setToken stores a 64-bit token in the event's user-data field. The
// syscall package splits epoll_data into Fd+Pad int32s, so the token rides
// as two halves; evToken reassembles it.
func setToken(ev *syscall.EpollEvent, tok uint64) {
	ev.Fd = int32(uint32(tok))
	ev.Pad = int32(uint32(tok >> 32))
}

func evToken(ev *syscall.EpollEvent) uint64 {
	return uint64(uint32(ev.Fd)) | uint64(uint32(ev.Pad))<<32
}

func (p *Poller) osInit() error {
	epfd, err := syscall.EpollCreate1(syscall.EPOLL_CLOEXEC)
	if err != nil {
		return err
	}
	var pipe [2]int
	if err := syscall.Pipe2(pipe[:], syscall.O_NONBLOCK|syscall.O_CLOEXEC); err != nil {
		syscall.Close(epfd)
		return err
	}
	ev := syscall.EpollEvent{Events: syscall.EPOLLIN}
	setToken(&ev, wakeToken)
	if err := syscall.EpollCtl(epfd, syscall.EPOLL_CTL_ADD, pipe[0], &ev); err != nil {
		syscall.Close(epfd)
		syscall.Close(pipe[0])
		syscall.Close(pipe[1])
		return err
	}
	p.os = osPoller{epfd: epfd, wakeR: pipe[0], wakeW: pipe[1]}
	return nil
}

// epollCtl runs one epoll_ctl on the connection's descriptor inside the
// RawConn.Control callback, which pins the runtime's fd reference for the
// duration — the descriptor cannot be closed and reused mid-call. An fd may
// sit in both the runtime's netpoller and ours; readiness is not exclusive.
func (p *Poller) epollCtl(rc syscall.RawConn, op int, tok uint64, events uint32) error {
	var opErr error
	cerr := rc.Control(func(fd uintptr) {
		var ev syscall.EpollEvent
		ev.Events = events
		setToken(&ev, tok)
		opErr = syscall.EpollCtl(p.os.epfd, op, int(fd), &ev)
	})
	if cerr != nil {
		return cerr // connection already closed locally
	}
	return opErr
}

// osAdd registers disarmed: ONESHOT with no interest bits, so nothing is
// reported until the first Rearm. (EPOLLERR/EPOLLHUP still fire for a
// connection that breaks before its initial drain — harmless, the dispatch
// state machine dedups against the initial Kick.)
func (p *Poller) osAdd(rc syscall.RawConn, tok uint64) error {
	return p.epollCtl(rc, syscall.EPOLL_CTL_ADD, tok, syscall.EPOLLONESHOT)
}

func (p *Poller) osArm(rc syscall.RawConn, tok uint64) error {
	return p.epollCtl(rc, syscall.EPOLL_CTL_MOD, tok, armedEvents)
}

// osDel is best-effort: a locally closed descriptor already left the
// interest set, and rc.Control on a closed connection errors out — both
// fine, the token table is the source of truth.
func (p *Poller) osDel(rc syscall.RawConn) {
	_ = p.epollCtl(rc, syscall.EPOLL_CTL_DEL, 0, 0)
}

func (p *Poller) osWake() {
	var b [1]byte
	_, _ = syscall.Write(p.os.wakeW, b[:])
}

func (p *Poller) osDestroy() {
	syscall.Close(p.os.epfd)
	syscall.Close(p.os.wakeR)
	syscall.Close(p.os.wakeW)
}

// wait is the single waiter goroutine: it parks in epoll_wait and feeds
// ready descriptors to the dispatch queue. Tokens are resolved against the
// descriptor table under the poller lock — an event for a token no longer
// in the table (connection torn down between readiness and resolution, or
// an fd number already reused by a later connection under a fresh token) is
// dropped, which is the fd-reuse safety the token indirection buys.
func (p *Poller) wait() {
	defer p.waiter.Done()
	evs := make([]syscall.EpollEvent, 128)
	ready := make([]*Desc, 0, 128)
	for {
		n, err := syscall.EpollWait(p.os.epfd, evs, -1)
		if err == syscall.EINTR {
			continue
		}
		if err != nil {
			return
		}
		ready = ready[:0]
		p.mu.Lock()
		closed := p.closed
		for i := 0; i < n; i++ {
			tok := evToken(&evs[i])
			if tok == wakeToken {
				continue
			}
			if d := p.descs[tok]; d != nil {
				ready = append(ready, d)
			}
		}
		p.mu.Unlock()
		if closed {
			return
		}
		if len(ready) == 0 {
			continue
		}
		if p.st != nil {
			p.st.PollWakeup(len(ready))
		}
		// Collect-then-push: queue mutations happen after the descriptor
		// table lock is released, never nested inside it.
		for _, d := range ready {
			p.enqueue(d)
		}
	}
}
