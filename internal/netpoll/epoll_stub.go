//go:build !linux

package netpoll

import "syscall"

const osSupported = false

// osPoller has no kernel backend off Linux; New fails with ErrUnsupported
// before any of these run, and servers fall back to blocking reads. The
// stubs exist so the portable core compiles everywhere (the CI cross-build
// leg keeps this path honest).
type osPoller struct{}

func (p *Poller) osInit() error                                 { return ErrUnsupported }
func (p *Poller) osAdd(rc syscall.RawConn, tok uint64) error    { return ErrUnsupported }
func (p *Poller) osArm(rc syscall.RawConn, tok uint64) error    { return ErrUnsupported }
func (p *Poller) osDel(rc syscall.RawConn)                      {}
func (p *Poller) osWake()                                       {}
func (p *Poller) osDestroy()                                    {}

func (p *Poller) wait() { p.waiter.Done() }
