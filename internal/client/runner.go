package client

import (
	gosync "sync"

	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
)

// Runner drives a Client over a network link: a background goroutine pumps
// server messages into the client, and Do serializes worker actions with
// that pump, sending the resulting messages upstream. This is the live-mode
// counterpart of the simulation harness's direct calls.
//
// The pump drains the link in batches (transport.Conn.RecvBatch) and applies
// each batch under one lock acquisition, bumping a change epoch once per
// batch. Pollers use Epoch/WaitChange to sleep between replica changes
// instead of spinning on View.
type Runner struct {
	mu     gosync.Mutex
	change *gosync.Cond // signalled on every epoch bump and on pump exit
	c      *Client
	conn   transport.Conn
	errc   chan error

	// epoch counts applied batches; stopped marks pump exit so waiters do
	// not block forever on a dead link. Both are guarded by mu.
	epoch   uint64
	stopped bool

	// batch is the pump-owned receive buffer, reused across RecvBatch calls.
	batch []sync.Message
}

// NewRunner wraps a client and its server link and starts the receive pump.
func NewRunner(c *Client, conn transport.Conn) *Runner {
	r := &Runner{c: c, conn: conn, errc: make(chan error, 1), batch: make([]sync.Message, 64)}
	r.change = gosync.NewCond(&r.mu)
	go r.pump()
	return r
}

func (r *Runner) pump() {
	defer func() {
		r.mu.Lock()
		r.stopped = true
		r.mu.Unlock()
		r.change.Broadcast()
	}()
	for {
		n, err := r.conn.RecvBatch(r.batch)
		if n > 0 {
			r.mu.Lock()
			aerr := r.c.HandleServerBatch(r.batch[:n])
			r.epoch++
			r.mu.Unlock()
			r.change.Broadcast()
			if aerr != nil {
				r.errc <- aerr
				return
			}
		}
		if err != nil {
			r.errc <- err
			return
		}
	}
}

// Do runs fn against the client under the runner's lock and sends every
// returned message to the server. fn should perform one worker action and
// return the messages it produced (or nil and an error).
func (r *Runner) Do(fn func(*Client) ([]sync.Message, error)) error {
	r.mu.Lock()
	msgs, err := fn(r.c)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if err := r.conn.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// View runs fn with read access to the client under the lock.
func (r *Runner) View(fn func(*Client)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.c)
}

// Epoch returns the current change epoch. Read it before inspecting replica
// state; if the inspection comes up empty, WaitChange(epoch) sleeps until
// the state may have changed, with no missed-wakeup window.
func (r *Runner) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// WaitChange blocks until the runner's epoch differs from epoch (a server
// batch was applied) or the pump has stopped, and returns the current epoch.
func (r *Runner) WaitChange(epoch uint64) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	for r.epoch == epoch && !r.stopped {
		r.change.Wait()
	}
	return r.epoch
}

// ReplicaEpoch returns the replica's mutation counter under the runner's
// lock. Equivalent to reading Replica().Epoch() inside View, minus the
// escaping closure: latency pollers call this once per wakeup per receiver,
// so the closure-free path keeps poll cost flat in the receiver count.
func (r *Runner) ReplicaEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c.Replica().Epoch()
}

// Done reports whether the server declared completion.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c.Done()
}

// Err returns the pump's terminal error channel (closed connection etc.).
func (r *Runner) Err() <-chan error { return r.errc }

// Close shuts the link down.
func (r *Runner) Close() error { return r.conn.Close() }
