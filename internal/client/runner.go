package client

import (
	gosync "sync"

	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
)

// Runner drives a Client over a network link: a background goroutine pumps
// server messages into the client, and Do serializes worker actions with
// that pump, sending the resulting messages upstream. This is the live-mode
// counterpart of the simulation harness's direct calls.
type Runner struct {
	mu   gosync.Mutex
	c    *Client
	conn transport.Conn
	errc chan error
}

// NewRunner wraps a client and its server link and starts the receive pump.
func NewRunner(c *Client, conn transport.Conn) *Runner {
	r := &Runner{c: c, conn: conn, errc: make(chan error, 1)}
	go r.pump()
	return r
}

func (r *Runner) pump() {
	for {
		m, err := r.conn.Recv()
		if err != nil {
			r.errc <- err
			return
		}
		r.mu.Lock()
		aerr := r.c.HandleServer(m)
		r.mu.Unlock()
		if aerr != nil {
			r.errc <- aerr
			return
		}
	}
}

// Do runs fn against the client under the runner's lock and sends every
// returned message to the server. fn should perform one worker action and
// return the messages it produced (or nil and an error).
func (r *Runner) Do(fn func(*Client) ([]sync.Message, error)) error {
	r.mu.Lock()
	msgs, err := fn(r.c)
	r.mu.Unlock()
	if err != nil {
		return err
	}
	for _, m := range msgs {
		if err := r.conn.Send(m); err != nil {
			return err
		}
	}
	return nil
}

// View runs fn with read access to the client under the lock.
func (r *Runner) View(fn func(*Client)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fn(r.c)
}

// Done reports whether the server declared completion.
func (r *Runner) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c.Done()
}

// Err returns the pump's terminal error channel (closed connection etc.).
func (r *Runner) Err() <-chan error { return r.errc }

// Close shuts the link down.
func (r *Runner) Close() error { return r.conn.Close() }
