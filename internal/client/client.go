// Package client implements the worker-client runtime (paper §3.4): a local
// replica of the candidate table, the fill/upvote/downvote worker actions
// with their client-side restrictions (one vote per worker per row, one
// upvote per primary key, automatic upvote on row completion, a cap on votes
// per row), plus the §8 extensions: modify, vote undo, and cell
// recommendation. The runtime is transport-agnostic: actions return the
// messages to send to the server, and server traffic is fed to HandleServer.
package client

import (
	"errors"
	"fmt"
	"math/rand"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

// Config configures one worker client.
type Config struct {
	// ID is the client id (the message Origin); must be unique per
	// connection.
	ID string
	// Worker identifies the human (or simulated) worker for compensation.
	Worker string
	// Schema is the collected table's schema.
	Schema *model.Schema
	// MaxVotesPerRow caps up+down votes per row; 0 means unlimited
	// (the paper's optional excessive-voting guard, §3.4).
	MaxVotesPerRow int
	// AllowModify enables the §8 "modify" extension, which needs the
	// client to issue insert operations.
	AllowModify bool
}

// Client is one worker client.
type Client struct {
	cfg Config
	rep *sync.Replica
	gen *sync.IDGen
	seq int64

	// voted tracks value-vectors this worker has voted on (directly or
	// indirectly, including auto-upvotes), keyed by Vector.Encode.
	voted map[string]voteKind
	// upvotedKeys tracks primary keys this worker has upvoted.
	upvotedKeys map[string]bool

	done      bool
	estimates *sync.Estimates
}

type voteKind int

const (
	votedNone voteKind = iota
	votedUp
	votedDown
)

// Errors returned when an action violates a client-side restriction.
var (
	ErrAlreadyVoted   = errors.New("client: worker already voted on this row")
	ErrKeyUpvoted     = errors.New("client: worker already upvoted a row with this primary key")
	ErrVoteCapReached = errors.New("client: row reached the maximum number of votes")
	ErrNotVoted       = errors.New("client: no vote by this worker to undo")
	ErrDone           = errors.New("client: data collection has finished")
	ErrModifyDisabled = errors.New("client: modify extension not enabled")
	ErrCellEmpty      = errors.New("client: modify requires a non-empty cell")
)

// New returns a worker client with an empty local table (the server sends a
// snapshot on join).
func New(cfg Config) (*Client, error) {
	if cfg.ID == "" || cfg.Worker == "" {
		return nil, errors.New("client: needs ID and Worker")
	}
	if err := cfg.Schema.Validate(); err != nil {
		return nil, err
	}
	return &Client{
		cfg:         cfg,
		rep:         sync.NewReplica(cfg.Schema),
		gen:         sync.NewIDGen(cfg.ID),
		voted:       make(map[string]voteKind),
		upvotedKeys: make(map[string]bool),
	}, nil
}

// Replica exposes the client's local table copy (read-only for callers).
func (c *Client) Replica() *sync.Replica { return c.rep }

// Done reports whether the server has declared collection complete.
func (c *Client) Done() bool { return c.done }

// Estimates returns the latest per-action compensation estimates broadcast
// by the server (nil before the first broadcast).
func (c *Client) Estimates() *sync.Estimates { return c.estimates }

// HandleServer processes a message received from the server.
func (c *Client) HandleServer(m sync.Message) error {
	switch m.Type {
	case sync.MsgDone:
		c.done = true
		return nil
	case sync.MsgEstimate:
		c.estimates = m.Estimates
		return nil
	default:
		return c.rep.Apply(m)
	}
}

// HandleServerBatch processes a burst of server messages in order, stopping
// at the first error. Replica mutations route through Replica.ApplyAll's
// contract: the prefix before an error is applied.
func (c *Client) HandleServerBatch(msgs []sync.Message) error {
	for i := range msgs {
		if err := c.HandleServer(msgs[i]); err != nil {
			return err
		}
	}
	return nil
}

// stamp fills the bookkeeping fields on an outgoing message.
func (c *Client) stamp(m *sync.Message) {
	c.seq++
	m.Origin = c.cfg.ID
	m.Worker = c.cfg.Worker
	m.Seq = c.seq
}

// Fill fills the empty column col of row id with raw value v. The value is
// validated and canonicalized against the schema. If the fill completes the
// row, the client automatically upvotes it (paper §3.4), with the upvote
// flagged Auto so it earns no separate compensation. Returns the messages to
// send to the server, in order.
func (c *Client) Fill(id model.RowID, col int, raw string) ([]sync.Message, error) {
	if c.done {
		return nil, ErrDone
	}
	val, err := c.cfg.Schema.CheckValue(col, raw)
	if err != nil {
		return nil, err
	}
	m, err := c.rep.Fill(id, col, val, c.gen.Next())
	if err != nil {
		return nil, err
	}
	c.stamp(&m)
	out := []sync.Message{m}

	newRow := c.rep.Table().Get(m.NewRow)
	if newRow != nil && newRow.Vec.IsComplete() {
		// Auto-upvote the completed row; this counts as the worker's one
		// vote on the row and their one upvote for its key.
		if c.voted[newRow.Vec.Encode()] == votedNone && !c.upvotedKeys[newRow.Vec.KeyOf(c.cfg.Schema)] {
			up, uerr := c.rep.Upvote(newRow.ID)
			if uerr == nil {
				up.Auto = true
				c.stamp(&up)
				c.recordVote(newRow.Vec, votedUp)
				out = append(out, up)
			}
		}
	}
	return out, nil
}

// FillByName is Fill with a column name.
func (c *Client) FillByName(id model.RowID, column, raw string) ([]sync.Message, error) {
	col := c.cfg.Schema.ColumnIndex(column)
	if col < 0 {
		return nil, fmt.Errorf("client: unknown column %q", column)
	}
	return c.Fill(id, col, raw)
}

func (c *Client) recordVote(v model.Vector, kind voteKind) {
	c.voted[v.Encode()] = kind
	if kind == votedUp {
		c.upvotedKeys[v.KeyOf(c.cfg.Schema)] = true
	}
}

// voteCapOK checks the optional per-row vote cap.
func (c *Client) voteCapOK(r *model.Row) bool {
	return c.cfg.MaxVotesPerRow <= 0 || r.Up+r.Down < c.cfg.MaxVotesPerRow
}

// Upvote casts this worker's upvote on a complete row.
func (c *Client) Upvote(id model.RowID) (sync.Message, error) {
	if c.done {
		return sync.Message{}, ErrDone
	}
	row := c.rep.Table().Get(id)
	if row == nil {
		return sync.Message{}, fmt.Errorf("%w: %s", sync.ErrNoSuchRow, id)
	}
	if c.voted[row.Vec.Encode()] != votedNone {
		return sync.Message{}, ErrAlreadyVoted
	}
	if row.Vec.IsComplete() && c.upvotedKeys[row.Vec.KeyOf(c.cfg.Schema)] {
		return sync.Message{}, ErrKeyUpvoted
	}
	if !c.voteCapOK(row) {
		return sync.Message{}, ErrVoteCapReached
	}
	m, err := c.rep.Upvote(id)
	if err != nil {
		return sync.Message{}, err
	}
	c.stamp(&m)
	c.recordVote(m.Vec, votedUp)
	return m, nil
}

// Downvote casts this worker's downvote on a partial row.
func (c *Client) Downvote(id model.RowID) (sync.Message, error) {
	if c.done {
		return sync.Message{}, ErrDone
	}
	row := c.rep.Table().Get(id)
	if row == nil {
		return sync.Message{}, fmt.Errorf("%w: %s", sync.ErrNoSuchRow, id)
	}
	if c.voted[row.Vec.Encode()] != votedNone {
		return sync.Message{}, ErrAlreadyVoted
	}
	if !c.voteCapOK(row) {
		return sync.Message{}, ErrVoteCapReached
	}
	m, err := c.rep.Downvote(id)
	if err != nil {
		return sync.Message{}, err
	}
	c.stamp(&m)
	c.recordVote(m.Vec, votedDown)
	return m, nil
}

// UndoVote retracts this worker's earlier vote on the given value-vector
// (§8 extension). The vector form is used because the row may since have
// been replaced.
func (c *Client) UndoVote(v model.Vector) (sync.Message, error) {
	if c.done {
		return sync.Message{}, ErrDone
	}
	kind := c.voted[v.Encode()]
	var m sync.Message
	var err error
	switch kind {
	case votedUp:
		m, err = c.rep.UndoUpvote(v)
		if err == nil {
			delete(c.upvotedKeys, v.KeyOf(c.cfg.Schema))
		}
	case votedDown:
		m, err = c.rep.UndoDownvote(v)
	default:
		return sync.Message{}, ErrNotVoted
	}
	if err != nil {
		return sync.Message{}, err
	}
	c.stamp(&m)
	delete(c.voted, v.Encode())
	return m, nil
}

// Modify implements the §8 "modify" worker action: overwrite the non-empty
// cell col of row id with a new value. It translates to a downvote of the
// row's current value, an insert of a fresh row, and fills copying every
// other cell plus the new value — exactly the primitive-operation series the
// paper sketches. Returns the messages to send, in order.
func (c *Client) Modify(id model.RowID, col int, raw string) ([]sync.Message, error) {
	if c.done {
		return nil, ErrDone
	}
	if !c.cfg.AllowModify {
		return nil, ErrModifyDisabled
	}
	row := c.rep.Table().Get(id)
	if row == nil {
		return nil, fmt.Errorf("%w: %s", sync.ErrNoSuchRow, id)
	}
	if col < 0 || col >= c.cfg.Schema.NumColumns() {
		return nil, sync.ErrBadColumn
	}
	if !row.Vec[col].Set {
		return nil, ErrCellEmpty
	}
	val, err := c.cfg.Schema.CheckValue(col, raw)
	if err != nil {
		return nil, err
	}
	oldVec := row.Vec.Clone()

	var out []sync.Message
	// If the worker previously upvoted this value (e.g. the automatic
	// upvote when they completed the row), retract it first so the
	// corrective downvote is permitted.
	if c.voted[oldVec.Encode()] == votedUp {
		undo, uerr := c.UndoVote(oldVec)
		if uerr != nil {
			return nil, uerr
		}
		out = append(out, undo)
	}
	// Downvote the value being corrected, unless this worker already
	// downvoted it.
	if c.voted[oldVec.Encode()] == votedNone {
		dv, derr := c.rep.Downvote(id)
		if derr != nil {
			return nil, derr
		}
		c.stamp(&dv)
		c.recordVote(dv.Vec, votedDown)
		out = append(out, dv)
	}
	// Insert a fresh row and fill it with the corrected values.
	ins, err := c.rep.Insert(c.gen.Next())
	if err != nil {
		return nil, err
	}
	c.stamp(&ins)
	out = append(out, ins)
	cur := ins.Row
	for i := range oldVec {
		var v string
		switch {
		case i == col:
			v = val
		case oldVec[i].Set:
			v = oldVec[i].Val
		default:
			continue
		}
		fills, ferr := c.Fill(cur, i, v)
		if ferr != nil {
			return nil, ferr
		}
		out = append(out, fills...)
		cur = fills[0].NewRow
	}
	return out, nil
}

// VotedOn reports whether this worker has an outstanding vote on the value.
func (c *Client) VotedOn(v model.Vector) bool { return c.voted[v.Encode()] != votedNone }

// VoteDirection returns +1 (upvoted), -1 (downvoted), or 0 (no outstanding
// vote) for this worker's vote on the value.
func (c *Client) VoteDirection(v model.Vector) int {
	switch c.voted[v.Encode()] {
	case votedUp:
		return 1
	case votedDown:
		return -1
	}
	return 0
}

// Rows returns the client's current view of the candidate table. When rng is
// non-nil the order is randomized, mirroring the data-entry interface's
// per-worker row shuffling (§3.4); otherwise rows come sorted by id.
func (c *Client) Rows(rng *rand.Rand) []*model.Row {
	rows := c.rep.Table().Rows()
	if rng != nil {
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	}
	return rows
}

// Recommend suggests an empty cell for this worker to fill (§8's
// recommendation extension). The strategy prefers the most-complete
// non-complete row (fewest empty cells), breaking ties by row id, and
// returns its first empty column. Returns ok=false when the table has no
// empty cells.
func (c *Client) Recommend() (id model.RowID, col int, ok bool) {
	best := -1
	for _, r := range c.rep.Table().Rows() {
		n := r.Vec.CountSet()
		if n == len(r.Vec) {
			continue
		}
		if n > best {
			best = n
			id = r.ID
			for i, cell := range r.Vec {
				if !cell.Set {
					col = i
					break
				}
			}
			ok = true
		}
	}
	return id, col, ok
}
