package client

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
)

// fakeServer echoes a scripted behavior over the server side of a pipe.
func runnerFixture(t *testing.T) (*Runner, transport.Conn) {
	t.Helper()
	c, err := New(Config{ID: "c1", Worker: "w1", Schema: kvSchema(t)})
	if err != nil {
		t.Fatal(err)
	}
	serverSide, clientSide := transport.Pipe(16)
	r := NewRunner(c, clientSide)
	t.Cleanup(func() { r.Close() })
	return r, serverSide
}

func TestRunnerPumpAppliesServerMessages(t *testing.T) {
	r, srv := runnerFixture(t)
	if err := srv.Send(sync.Message{Type: sync.MsgInsert, Row: "cc-1", Origin: "cc"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		r.View(func(c *Client) { n = len(c.Rows(nil)) })
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	var rows int
	r.View(func(c *Client) { rows = len(c.Rows(nil)) })
	if rows != 1 {
		t.Fatalf("pump did not apply the insert")
	}
}

func TestRunnerDoSendsMessages(t *testing.T) {
	r, srv := runnerFixture(t)
	if err := srv.Send(sync.Message{Type: sync.MsgInsert, Row: "cc-1", Origin: "cc"}); err != nil {
		t.Fatal(err)
	}
	// Wait for the row, then fill through Do.
	waitRunner(t, r, func(c *Client) bool { return len(c.Rows(nil)) == 1 })
	if err := r.Do(func(c *Client) ([]sync.Message, error) {
		return c.Fill("cc-1", 0, "x")
	}); err != nil {
		t.Fatalf("Do: %v", err)
	}
	m, err := srv.Recv()
	if err != nil || m.Type != sync.MsgReplace || m.Val != "x" {
		t.Fatalf("server received %+v, %v", m, err)
	}
	// Do propagates action errors without sending.
	err = r.Do(func(c *Client) ([]sync.Message, error) {
		return nil, errors.New("nope")
	})
	if err == nil || err.Error() != "nope" {
		t.Fatalf("Do error = %v", err)
	}
}

func TestRunnerDoneAndErr(t *testing.T) {
	r, srv := runnerFixture(t)
	if r.Done() {
		t.Fatalf("fresh runner done")
	}
	if err := srv.Send(sync.Message{Type: sync.MsgDone}); err != nil {
		t.Fatal(err)
	}
	waitRunner(t, r, func(c *Client) bool { return c.Done() })
	if !r.Done() {
		t.Fatalf("runner should be done")
	}
	// Closing the link surfaces a terminal error on Err.
	srv.Close()
	select {
	case <-r.Err():
	case <-time.After(5 * time.Second):
		t.Fatalf("no terminal error after close")
	}
}

func TestRunnerPumpStopsOnBadMessage(t *testing.T) {
	r, srv := runnerFixture(t)
	// A width-mismatched vector makes HandleServer fail; the pump reports it.
	if err := srv.Send(sync.Message{Type: sync.MsgUpvote, Vec: model.VectorOf("a")}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-r.Err():
		if err == nil {
			t.Fatalf("expected an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("pump never surfaced the apply error")
	}
}

func waitRunner(t *testing.T, r *Runner, cond func(*Client) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ok := false
		r.View(func(c *Client) { ok = cond(c) })
		if ok {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached")
}

func TestVotedOnAndDirection(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")
	m, _ := c.Fill("cc-1", 0, "x")
	id := m[0].NewRow
	vec := c.Replica().Table().Get(id).Vec.Clone()
	if c.VotedOn(vec) || c.VoteDirection(vec) != 0 {
		t.Fatalf("fresh row should be unvoted")
	}
	if _, err := c.Downvote(id); err != nil {
		t.Fatal(err)
	}
	if !c.VotedOn(vec) || c.VoteDirection(vec) != -1 {
		t.Fatalf("downvote direction = %d", c.VoteDirection(vec))
	}
	if _, err := c.UndoVote(vec); err != nil {
		t.Fatal(err)
	}
	// Complete the row: the auto-upvote flips the direction.
	m2, _ := c.Fill(id, 1, "1")
	full := c.Replica().Table().Get(m2[0].NewRow).Vec.Clone()
	if c.VoteDirection(full) != 1 {
		t.Fatalf("auto-upvote direction = %d", c.VoteDirection(full))
	}
}

func TestRunnerConcurrentDoAndPump(t *testing.T) {
	r, srv := runnerFixture(t)
	// Server floods inserts while the client acts; the runner's lock must
	// keep the replica consistent (run with -race).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if err := srv.Send(sync.Message{Type: sync.MsgInsert, Row: model.RowID(fmt.Sprintf("cc-%d", i)), Origin: "cc"}); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		_ = r.Do(func(c *Client) ([]sync.Message, error) {
			for _, row := range c.Rows(nil) {
				if !row.Vec[0].Set {
					return c.Fill(row.ID, 0, fmt.Sprintf("v%d", i))
				}
			}
			return nil, nil
		})
	}
	<-done
}
