package client

import (
	"errors"
	"math/rand"
	"testing"

	"crowdfill/internal/model"
	"crowdfill/internal/sync"
)

func kvSchema(t testing.TB) *model.Schema {
	t.Helper()
	return model.MustSchema("KV", []model.Column{
		{Name: "k", Type: model.TypeString},
		{Name: "v", Type: model.TypeInt},
	}, "k")
}

func newClient(t testing.TB, opts ...func(*Config)) *Client {
	t.Helper()
	cfg := Config{ID: "c1", Worker: "w1", Schema: kvSchema(t)}
	for _, o := range opts {
		o(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// seedRow injects a server-originated empty row into the client's replica.
func seedRow(t testing.TB, c *Client, id model.RowID) {
	t.Helper()
	if err := c.HandleServer(sync.Message{Type: sync.MsgInsert, Row: id, Origin: "cc"}); err != nil {
		t.Fatalf("seed insert: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Worker: "w", Schema: kvSchema(t)}); err == nil {
		t.Errorf("missing ID should fail")
	}
	if _, err := New(Config{ID: "c", Worker: "w"}); err == nil {
		t.Errorf("missing schema should fail")
	}
}

func TestFillValidatesAndAutoUpvotes(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")

	// Bad value for the int column.
	if _, err := c.Fill("cc-1", 1, "abc"); err == nil {
		t.Fatalf("non-integer fill should fail")
	}
	msgs, err := c.Fill("cc-1", 0, "x")
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if len(msgs) != 1 || msgs[0].Type != sync.MsgReplace {
		t.Fatalf("partial fill should yield one replace, got %v", msgs)
	}
	if msgs[0].Origin != "c1" || msgs[0].Worker != "w1" || msgs[0].Seq != 1 {
		t.Fatalf("stamping wrong: %+v", msgs[0])
	}
	// Completing the row triggers the automatic upvote (§3.4).
	msgs, err = c.Fill(msgs[0].NewRow, 1, "07")
	if err != nil {
		t.Fatalf("Fill: %v", err)
	}
	if len(msgs) != 2 || msgs[1].Type != sync.MsgUpvote || !msgs[1].Auto {
		t.Fatalf("completing fill should auto-upvote, got %v", msgs)
	}
	if msgs[0].Val != "7" {
		t.Fatalf("value not canonicalized: %q", msgs[0].Val)
	}
	row := c.Replica().Table().Get(msgs[0].NewRow)
	if row.Up != 1 {
		t.Fatalf("auto-upvote not applied locally: %v", row)
	}
	// The auto-upvote consumed this worker's vote on the row.
	if _, err := c.Upvote(row.ID); !errors.Is(err, ErrAlreadyVoted) {
		t.Fatalf("second vote err = %v, want ErrAlreadyVoted", err)
	}
}

func TestFillByName(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")
	if _, err := c.FillByName("cc-1", "nope", "x"); err == nil {
		t.Fatalf("unknown column should fail")
	}
	msgs, err := c.FillByName("cc-1", "k", "x")
	if err != nil || msgs[0].Col != 0 {
		t.Fatalf("FillByName: %v %v", msgs, err)
	}
}

func TestOneUpvotePerPrimaryKey(t *testing.T) {
	c := newClient(t)
	// Two complete rows share the key "x" (different v).
	srv := sync.NewReplica(kvSchema(t))
	g := sync.NewIDGen("s")
	for _, v := range []string{"1", "2"} {
		ins, _ := srv.Insert(g.Next())
		m1, _ := srv.Fill(ins.Row, 0, "x", g.Next())
		m2, _ := srv.Fill(m1.NewRow, 1, v, g.Next())
		for _, m := range []sync.Message{ins, m1, m2} {
			if err := c.HandleServer(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	rows := c.Rows(nil)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if _, err := c.Upvote(rows[0].ID); err != nil {
		t.Fatalf("first upvote: %v", err)
	}
	if _, err := c.Upvote(rows[1].ID); !errors.Is(err, ErrKeyUpvoted) {
		t.Fatalf("same-key upvote err = %v, want ErrKeyUpvoted", err)
	}
	// A downvote on the second row is still allowed.
	if _, err := c.Downvote(rows[1].ID); err != nil {
		t.Fatalf("downvote: %v", err)
	}
	// But not twice.
	if _, err := c.Downvote(rows[1].ID); !errors.Is(err, ErrAlreadyVoted) {
		t.Fatalf("double downvote err = %v", err)
	}
}

func TestMaxVotesPerRow(t *testing.T) {
	c := newClient(t, func(cfg *Config) { cfg.MaxVotesPerRow = 2 })
	seedRow(t, c, "cc-1")
	m1, _ := c.Fill("cc-1", 0, "x")
	id := m1[0].NewRow
	// Two votes from other workers arrive via the server.
	other := sync.Message{Type: sync.MsgDownvote, Vec: model.VectorOf("x", ""), Origin: "c9", Worker: "w9"}
	c.HandleServer(other)
	c.HandleServer(other)
	if _, err := c.Downvote(id); !errors.Is(err, ErrVoteCapReached) {
		t.Fatalf("vote cap err = %v, want ErrVoteCapReached", err)
	}
}

func TestUndoVote(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")
	m1, _ := c.Fill("cc-1", 0, "x")
	id := m1[0].NewRow
	vec := c.Replica().Table().Get(id).Vec.Clone()

	if _, err := c.UndoVote(vec); !errors.Is(err, ErrNotVoted) {
		t.Fatalf("undo before voting err = %v", err)
	}
	if _, err := c.Downvote(id); err != nil {
		t.Fatal(err)
	}
	m, err := c.UndoVote(vec)
	if err != nil || m.Type != sync.MsgUndownvote {
		t.Fatalf("UndoVote = %+v, %v", m, err)
	}
	if got := c.Replica().Table().Get(id).Down; got != 0 {
		t.Fatalf("down after undo = %d", got)
	}
	// The worker can vote again after undoing.
	if _, err := c.Downvote(id); err != nil {
		t.Fatalf("re-vote after undo: %v", err)
	}
}

func TestUndoUpvoteFreesKey(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")
	m1, _ := c.Fill("cc-1", 0, "x")
	m2, _ := c.Fill(m1[0].NewRow, 1, "1") // auto-upvote fires
	id := m2[0].NewRow
	vec := c.Replica().Table().Get(id).Vec.Clone()
	if _, err := c.UndoVote(vec); err != nil {
		t.Fatalf("undo auto-upvote: %v", err)
	}
	// The key slot is free again.
	if _, err := c.Upvote(id); err != nil {
		t.Fatalf("upvote after undo: %v", err)
	}
}

func TestModify(t *testing.T) {
	c := newClient(t, func(cfg *Config) { cfg.AllowModify = true })
	seedRow(t, c, "cc-1")
	m1, _ := c.Fill("cc-1", 0, "x")
	m2, _ := c.Fill(m1[0].NewRow, 1, "1")
	id := m2[0].NewRow

	msgs, err := c.Modify(id, 1, "2")
	if err != nil {
		t.Fatalf("Modify: %v", err)
	}
	// The worker auto-upvoted (x,1) when completing it, so modify first
	// retracts that vote, then downvotes, inserts, and refills.
	var kinds []sync.MsgType
	for _, m := range msgs {
		kinds = append(kinds, m.Type)
	}
	if kinds[0] != sync.MsgUnupvote || kinds[1] != sync.MsgDownvote || kinds[2] != sync.MsgInsert {
		t.Fatalf("modify sequence = %v", kinds)
	}
	// The corrected row exists with v=2.
	found := false
	for _, r := range c.Rows(nil) {
		if r.Vec.Equal(model.VectorOf("x", "2")) {
			found = true
		}
	}
	if !found {
		t.Fatalf("corrected row missing: %v", c.Rows(nil))
	}
	// Old value was downvoted.
	old := model.VectorOf("x", "1")
	if got := c.Replica().DH().Get(old); got != 1 {
		t.Fatalf("old value downvotes = %d", got)
	}

	// Modify requires the extension flag and a non-empty cell.
	c2 := newClient(t)
	seedRow(t, c2, "cc-1")
	if _, err := c2.Modify("cc-1", 0, "x"); !errors.Is(err, ErrModifyDisabled) {
		t.Fatalf("modify disabled err = %v", err)
	}
	c3 := newClient(t, func(cfg *Config) { cfg.AllowModify = true })
	seedRow(t, c3, "cc-1")
	if _, err := c3.Modify("cc-1", 0, "x"); !errors.Is(err, ErrCellEmpty) {
		t.Fatalf("modify empty cell err = %v", err)
	}
}

func TestDoneBlocksActions(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")
	c.HandleServer(sync.Message{Type: sync.MsgDone})
	if !c.Done() {
		t.Fatalf("Done not set")
	}
	if _, err := c.Fill("cc-1", 0, "x"); !errors.Is(err, ErrDone) {
		t.Fatalf("fill after done err = %v", err)
	}
	if _, err := c.Upvote("cc-1"); !errors.Is(err, ErrDone) {
		t.Fatalf("upvote after done err = %v", err)
	}
}

func TestEstimatesStored(t *testing.T) {
	c := newClient(t)
	est := &sync.Estimates{PerColumn: []float64{1, 2}, Upvote: 0.5, Downvote: 0.25}
	c.HandleServer(sync.Message{Type: sync.MsgEstimate, Estimates: est})
	if got := c.Estimates(); got == nil || got.PerColumn[1] != 2 {
		t.Fatalf("Estimates = %+v", got)
	}
}

func TestRowsShuffleDeterministic(t *testing.T) {
	c := newClient(t)
	for i := 0; i < 8; i++ {
		seedRow(t, c, model.RowID(rune('a'+i))+"-1")
	}
	a := c.Rows(rand.New(rand.NewSource(7)))
	b := c.Rows(rand.New(rand.NewSource(7)))
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatalf("same seed must give same order")
		}
	}
	sorted := c.Rows(nil)
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].ID > sorted[i].ID {
			t.Fatalf("nil rng must give sorted rows")
		}
	}
}

func TestRecommendPrefersNearComplete(t *testing.T) {
	c := newClient(t)
	seedRow(t, c, "cc-1")
	seedRow(t, c, "cc-2")
	m, _ := c.Fill("cc-2", 0, "x") // cc-2's successor has 1 of 2 cells
	id, col, ok := c.Recommend()
	if !ok || id != m[0].NewRow || col != 1 {
		t.Fatalf("Recommend = %v %d %v, want %v 1 true", id, col, ok, m[0].NewRow)
	}
	// Complete the row; recommendation falls back to the empty row.
	c.Fill(m[0].NewRow, 1, "1")
	id, col, ok = c.Recommend()
	if !ok || id != "cc-1" || col != 0 {
		t.Fatalf("Recommend fallback = %v %d %v", id, col, ok)
	}
	// No empty cells anywhere -> not ok.
	c.Fill("cc-1", 0, "y")
	rows := c.Rows(nil)
	for _, r := range rows {
		if !r.Vec.IsComplete() {
			for i, cell := range r.Vec {
				if !cell.Set {
					c.Fill(r.ID, i, "9")
				}
			}
		}
	}
	if _, _, ok := c.Recommend(); ok {
		t.Fatalf("Recommend should fail with a complete table")
	}
}
