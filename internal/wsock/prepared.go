package wsock

import "encoding/binary"

// PreparedFrame is a text message assembled into its RFC 6455 server frame
// exactly once, so a broadcast hub can write the same bytes to every
// connection instead of re-framing per client. Server frames are unmasked,
// which is what makes the byte-for-byte sharing possible; client connections
// must mask with a fresh key per frame and fall back to normal framing.
type PreparedFrame struct {
	payload []byte // the text payload, for masked (client) fallback
	frame   []byte // header + payload, FIN text frame, unmasked
}

// NewPreparedText builds the shared unmasked text frame for a payload. The
// payload must not be modified afterwards.
func NewPreparedText(payload []byte) *PreparedFrame {
	var hdr [10]byte
	hdr[0] = 0x80 | opText // FIN set
	n := 2
	switch {
	case len(payload) < 126:
		hdr[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(payload)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(payload)))
		n = 10
	}
	frame := make([]byte, 0, n+len(payload))
	frame = append(frame, hdr[:n]...)
	frame = append(frame, payload...)
	return &PreparedFrame{payload: payload, frame: frame}
}

// Payload returns the text payload the frame carries.
func (f *PreparedFrame) Payload() []byte { return f.payload }

// WritePrepared sends a prepared text message. On server connections the
// cached frame bytes are written as-is (one buffer, no per-client framing
// work); client connections re-frame with a fresh mask, as RFC 6455 requires.
//
//lint:hotpath
func (c *Conn) WritePrepared(f *PreparedFrame) error {
	if c.client {
		return c.writeFrame(opText, f.payload)
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	_, err := c.nc.Write(f.frame)
	if err == nil {
		c.countWrite(1, len(f.frame))
	}
	return err
}

// WritePreparedBatch sends several prepared text messages in one Write: the
// frames are assembled back to back into the connection's pooled write buffer
// and emitted with a single syscall, so a burst of K adjacent broadcasts
// costs one write instead of K (writev-style coalescing — the frames are
// already contiguous server frames, so concatenation is the vector write).
// The wire bytes are exactly what K individual WritePrepared calls would
// have produced; client connections mask each frame with a fresh key while
// copying into the shared buffer, still one Write. Same serialization as
// every other writer (wmu).
//
//lint:hotpath
func (c *Conn) WritePreparedBatch(frames []*PreparedFrame) error {
	if len(frames) == 0 {
		return nil
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed {
		return ErrClosed
	}
	buf := c.wbuf[:0]
	if c.client {
		var err error
		for _, f := range frames {
			if buf, err = c.appendFrame(buf, opText, f.payload); err != nil {
				return err
			}
		}
	} else {
		for _, f := range frames {
			buf = append(buf, f.frame...)
		}
	}
	c.wbuf = buf // retain grown capacity for the next batch
	_, err := c.nc.Write(buf)
	if err == nil {
		c.countWrite(len(frames), len(buf))
	}
	return err
}
