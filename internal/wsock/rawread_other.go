//go:build !unix

package wsock

// makeReadFn on platforms without raw non-blocking reads reports every read
// as unsupported; StartPoll still succeeds so the state machine is testable,
// but servers fall back to the blocking read loop before getting here (the
// netpoll package reports Supported() == false on these platforms).
func (pr *pollReader) makeReadFn() func(fd uintptr) bool {
	return func(fd uintptr) bool {
		pr.rn, pr.rerr = 0, ErrPollUnsupported
		return true
	}
}
