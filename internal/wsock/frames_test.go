package wsock

import (
	"bufio"
	"crypto/rand"
	"encoding/base64"
	"encoding/binary"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// rawDial performs the client handshake by hand and returns the raw TCP
// connection, so tests can craft arbitrary frames.
func rawDial(t *testing.T, srv *httptest.Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	nc, err := net.Dial("tcp", strings.TrimPrefix(srv.URL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		t.Fatal(err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	req := "GET / HTTP/1.1\r\nHost: x\r\nUpgrade: websocket\r\nConnection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\nSec-WebSocket-Version: 13\r\n\r\n"
	if _, err := nc.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimRight(line, "\r\n") == "" {
			break
		}
	}
	return nc, br
}

// writeRawFrame writes one masked frame with explicit fin and opcode.
func writeRawFrame(t *testing.T, nc net.Conn, fin bool, opcode byte, payload []byte) {
	t.Helper()
	var hdr []byte
	b0 := opcode
	if fin {
		b0 |= 0x80
	}
	hdr = append(hdr, b0)
	switch {
	case len(payload) < 126:
		hdr = append(hdr, 0x80|byte(len(payload)))
	case len(payload) <= 0xFFFF:
		hdr = append(hdr, 0x80|126)
		var ext [2]byte
		binary.BigEndian.PutUint16(ext[:], uint16(len(payload)))
		hdr = append(hdr, ext[:]...)
	default:
		hdr = append(hdr, 0x80|127)
		var ext [8]byte
		binary.BigEndian.PutUint64(ext[:], uint64(len(payload)))
		hdr = append(hdr, ext[:]...)
	}
	mask := []byte{1, 2, 3, 4}
	hdr = append(hdr, mask...)
	masked := make([]byte, len(payload))
	for i := range payload {
		masked[i] = payload[i] ^ mask[i%4]
	}
	if _, err := nc.Write(append(hdr, masked...)); err != nil {
		t.Fatal(err)
	}
}

// echoOnce starts a server that reads one text message and echoes it back.
func echoOnce(t *testing.T) (*httptest.Server, chan []byte) {
	t.Helper()
	got := make(chan []byte, 1)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		msg, err := c.ReadText()
		if err != nil {
			close(got)
			return
		}
		got <- msg
	}))
	t.Cleanup(srv.Close)
	return srv, got
}

func TestFragmentedMessageAssembled(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	// "hello world" split across three fragments: text, continuation,
	// continuation(fin).
	writeRawFrame(t, nc, false, opText, []byte("hel"))
	writeRawFrame(t, nc, false, opContinuation, []byte("lo wo"))
	writeRawFrame(t, nc, true, opContinuation, []byte("rld"))
	select {
	case msg := <-got:
		if string(msg) != "hello world" {
			t.Fatalf("assembled = %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never assembled the message")
	}
}

func TestInterleavedPingDuringFragments(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	// Control frames may interleave with a fragmented message (RFC 6455
	// §5.4); the reader must answer the ping and keep assembling.
	writeRawFrame(t, nc, false, opText, []byte("ab"))
	writeRawFrame(t, nc, true, opPing, []byte("beat"))
	writeRawFrame(t, nc, true, opContinuation, []byte("cd"))
	select {
	case msg := <-got:
		if string(msg) != "abcd" {
			t.Fatalf("assembled = %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never assembled the message")
	}
}

func TestContinuationWithoutStartRejected(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	writeRawFrame(t, nc, true, opContinuation, []byte("orphan"))
	select {
	case msg, ok := <-got:
		if ok {
			t.Fatalf("server accepted an orphan continuation: %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on orphan continuation")
	}
}

func TestNewTextDuringFragmentsRejected(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	writeRawFrame(t, nc, false, opText, []byte("ab"))
	writeRawFrame(t, nc, true, opText, []byte("cd")) // protocol violation
	select {
	case msg, ok := <-got:
		if ok {
			t.Fatalf("server accepted interleaved text: %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on protocol violation")
	}
}

func TestBinaryFrameRejected(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	writeRawFrame(t, nc, true, opBinary, []byte{1, 2, 3})
	select {
	case msg, ok := <-got:
		if ok {
			t.Fatalf("server accepted binary: %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on binary frame")
	}
}

func TestRSVBitsRejected(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	// Set RSV1 by hand.
	payload := []byte("x")
	hdr := []byte{0x80 | 0x40 | opText, 0x80 | byte(len(payload)), 1, 2, 3, 4}
	masked := []byte{payload[0] ^ 1}
	if _, err := nc.Write(append(hdr, masked...)); err != nil {
		t.Fatal(err)
	}
	select {
	case msg, ok := <-got:
		if ok {
			t.Fatalf("server accepted RSV bits: %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on RSV bits")
	}
}

func TestOversizeFrameRejected(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	// Declare an absurd 64-bit length without sending the body.
	hdr := []byte{0x80 | opText, 0x80 | 127}
	var ext [8]byte
	binary.BigEndian.PutUint64(ext[:], 1<<40)
	hdr = append(hdr, ext[:]...)
	hdr = append(hdr, 1, 2, 3, 4) // mask
	if _, err := nc.Write(hdr); err != nil {
		t.Fatal(err)
	}
	select {
	case msg, ok := <-got:
		if ok {
			t.Fatalf("server accepted oversize frame: %q", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on oversize frame")
	}
}

// TestMaskingPropertyRoundTrip: arbitrary payload bytes survive the client
// masking + server unmasking path.
func TestMaskingPropertyRoundTrip(t *testing.T) {
	srv, got := echoOnce(t)
	nc, _ := rawDial(t, srv)
	payload := make([]byte, 257)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	writeRawFrame(t, nc, true, opText, payload)
	select {
	case msg := <-got:
		if string(msg) != string(payload) {
			t.Fatalf("payload corrupted through masking")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no echo")
	}
}
