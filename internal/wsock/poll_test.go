package wsock

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"
)

// newFeedConn returns a connection in poll mode whose reassembly machine can
// be driven by hand with feed — no socket, no poller. Writes (pong and close
// echoes) land in the returned fakeConn's buffer.
func newFeedConn() (*Conn, *fakeConn) {
	wire := &fakeConn{}
	c := &Conn{nc: wire}
	c.poll = &pollReader{}
	return c, wire
}

// diffResult captures everything observable about one reader's run over a
// wire stream: delivered messages, bytes written back, terminal error.
type diffResult struct {
	msgs [][]byte
	wire []byte
	err  error
}

// runBlocking drives the blocking reader over data until it errors (EOF at
// the latest).
func runBlocking(data []byte) diffResult {
	wire := &fakeConn{r: bytes.NewReader(data)}
	c := &Conn{nc: wire, br: bufio.NewReader(wire)}
	var res diffResult
	for {
		m, err := c.ReadTextLease()
		if err != nil {
			res.err = err
			break
		}
		res.msgs = append(res.msgs, append([]byte(nil), m...))
	}
	res.wire = wire.w.Bytes()
	return res
}

// runPoll drives the non-blocking reassembly machine over data, delivering it
// in chunks whose sizes come from next (clamped to what remains).
func runPoll(data []byte, next func(remaining int) int) diffResult {
	c, wire := newFeedConn()
	var res diffResult
	onMsg := func(m []byte) error {
		res.msgs = append(res.msgs, append([]byte(nil), m...))
		return nil
	}
	p := data
	for len(p) > 0 && res.err == nil {
		n := next(len(p))
		if n < 1 {
			n = 1
		}
		if n > len(p) {
			n = len(p)
		}
		res.err = c.feed(p[:n], onMsg)
		p = p[n:]
	}
	res.wire = wire.w.Bytes()
	return res
}

// compareReaders holds the two paths to the differential contract: identical
// messages in order, identical echoed wire bytes, and compatible terminal
// errors — the poll side reporting nothing on a truncated stream corresponds
// to the blocking side's EOF (the socket would simply stay parked).
func compareReaders(t *testing.T, label string, b, p diffResult) {
	t.Helper()
	if p.err == nil {
		if b.err != nil && !errors.Is(b.err, io.EOF) && !errors.Is(b.err, io.ErrUnexpectedEOF) {
			t.Fatalf("%s: blocking err %v but poll side saw no error", label, b.err)
		}
	} else if b.err == nil || b.err.Error() != p.err.Error() {
		t.Fatalf("%s: error mismatch: blocking %v, poll %v", label, b.err, p.err)
	}
	if len(b.msgs) != len(p.msgs) {
		t.Fatalf("%s: message count mismatch: blocking %d, poll %d", label, len(b.msgs), len(p.msgs))
	}
	for i := range b.msgs {
		if !bytes.Equal(b.msgs[i], p.msgs[i]) {
			t.Fatalf("%s: message %d differs: blocking %q, poll %q", label, i, b.msgs[i], p.msgs[i])
		}
	}
	if !bytes.Equal(b.wire, p.wire) {
		t.Fatalf("%s: echoed wire bytes differ:\nblocking %x\npoll     %x", label, b.wire, p.wire)
	}
}

// frame hand-assembles one unmasked frame.
func frame(fin bool, opcode byte, payload string) []byte {
	b := []byte{opcode, 0}
	if fin {
		b[0] |= 0x80
	}
	switch {
	case len(payload) < 126:
		b[1] = byte(len(payload))
	case len(payload) <= 0xFFFF:
		b = append(b, 0, 0)
		b[1] = 126
		b[2], b[3] = byte(len(payload)>>8), byte(len(payload))
	default:
		panic("test frame too large")
	}
	return append(b, payload...)
}

// TestFeedByteAtATimeMatchesBlocking dribbles a stream exercising every
// frame shape — small, 16-bit length, masked, fragmented, interleaved
// control, close — one byte per feed and checks the differential contract
// against the blocking reader.
func TestFeedByteAtATimeMatchesBlocking(t *testing.T) {
	// A masked frame written by a real client-role writer.
	mw := &fakeConn{}
	sender := &Conn{nc: mw, client: true}
	if err := sender.WriteText([]byte("masked payload")); err != nil {
		t.Fatal(err)
	}

	var stream []byte
	stream = append(stream, frame(true, opText, "hello")...)
	stream = append(stream, frame(true, opText, strings.Repeat("x", 300))...) // 16-bit length
	stream = append(stream, mw.w.Bytes()...)
	stream = append(stream, frame(false, opText, "frag-")...)
	stream = append(stream, frame(true, opPing, "beat")...)
	stream = append(stream, frame(false, opContinuation, "men")...)
	stream = append(stream, frame(true, opPong, "")...)
	stream = append(stream, frame(true, opContinuation, "ted")...)
	stream = append(stream, frame(true, opText, "")...)
	stream = append(stream, frame(true, opClose, "")...)

	blocking := runBlocking(stream)
	if len(blocking.msgs) != 5 || !errors.Is(blocking.err, ErrClosed) {
		t.Fatalf("blocking baseline broken: %d msgs, err %v", len(blocking.msgs), blocking.err)
	}
	if string(blocking.msgs[3]) != "frag-mented" {
		t.Fatalf("fragment assembly = %q", blocking.msgs[3])
	}
	compareReaders(t, "byte-at-a-time", blocking, runPoll(stream, func(int) int { return 1 }))
	compareReaders(t, "whole-stream", blocking, runPoll(stream, func(r int) int { return r }))
	compareReaders(t, "sevens", blocking, runPoll(stream, func(int) int { return 7 }))
}

// TestPollControlFrameInsideFragment is the readiness-path regression for a
// ping arriving between the fragments of a partially-delivered message, with
// the ping itself split across dispatches: the pong must echo immediately
// (before the message completes) and assembly must resume undisturbed.
func TestPollControlFrameInsideFragment(t *testing.T) {
	c, wire := newFeedConn()
	var msgs [][]byte
	onMsg := func(m []byte) error {
		msgs = append(msgs, append([]byte(nil), m...))
		return nil
	}

	var stream []byte
	stream = append(stream, frame(false, opText, "par")...)
	pingAt := len(stream)
	stream = append(stream, frame(true, opPing, "ctl")...)
	pingMid := pingAt + 2 // header delivered, payload still pending
	stream = append(stream, frame(true, opContinuation, "tial")...)

	// First dispatch ends mid-ping: header consumed, payload missing.
	if err := c.feed(stream[:pingMid], onMsg); err != nil {
		t.Fatalf("feed to mid-ping: %v", err)
	}
	if len(msgs) != 0 {
		t.Fatalf("message delivered before its final fragment: %q", msgs)
	}
	if wire.w.Len() != 0 {
		t.Fatalf("pong written before the ping payload completed: %x", wire.w.Bytes())
	}
	// Second dispatch completes the ping: the pong echoes now, mid-message.
	pingEnd := pingAt + 2 + 3
	if err := c.feed(stream[pingMid:pingEnd], onMsg); err != nil {
		t.Fatalf("feed ping payload: %v", err)
	}
	if want := frame(true, opPong, "ctl"); !bytes.Equal(wire.w.Bytes(), want) {
		t.Fatalf("pong = %x, want %x", wire.w.Bytes(), want)
	}
	if len(msgs) != 0 {
		t.Fatalf("message delivered early: %q", msgs)
	}
	// Final dispatch delivers the assembled message.
	if err := c.feed(stream[pingEnd:], onMsg); err != nil {
		t.Fatalf("feed continuation: %v", err)
	}
	if len(msgs) != 1 || string(msgs[0]) != "partial" {
		t.Fatalf("assembled = %q, want one %q", msgs, "partial")
	}
}

// tcpPair returns two ends of a loopback TCP connection.
func tcpPair(t *testing.T) (cli, srv net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	cli, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	srv, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

// pollUntil calls PollRead until cond holds, sleeping between parked polls
// (standing in for the poller's readiness wakeups).
func pollUntil(t *testing.T, c *Conn, scratch []byte, onMsg func([]byte) error, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached by polling")
		}
		more, err := c.PollRead(scratch, onMsg)
		if err != nil {
			t.Fatalf("PollRead: %v", err)
		}
		if !more {
			time.Sleep(time.Millisecond)
		}
	}
}

// TestPollReadRealSocket runs the poll-mode reader against a real TCP socket:
// bytes buffered before the mode switch (the handshake leftovers) are drained
// first, raw non-blocking reads take over, blocking reads are refused, and
// oversized lease buffers shrink once the connection parks.
func TestPollReadRealSocket(t *testing.T) {
	cliNC, srvNC := tcpPair(t)
	cli := &Conn{nc: cliNC, br: bufio.NewReader(cliNC), client: true}
	srv := &Conn{nc: srvNC, br: bufio.NewReader(srvNC)}

	if err := cli.WriteText([]byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := cli.WriteText([]byte("m2")); err != nil {
		t.Fatal(err)
	}
	// Read m1 the blocking way and wait until at least part of m2 is sitting
	// in the bufio reader — the poll switch must not lose those bytes.
	if m, err := srv.ReadText(); err != nil || string(m) != "m1" {
		t.Fatalf("blocking read before switch = %q, %v", m, err)
	}
	if _, err := srv.br.Peek(1); err != nil {
		t.Fatalf("priming buffered bytes: %v", err)
	}

	if _, err := srv.StartPoll(); err != nil {
		t.Fatalf("StartPoll: %v", err)
	}
	if _, err := srv.ReadTextLease(); err != errPollMode {
		t.Fatalf("blocking read in poll mode err = %v, want errPollMode", err)
	}

	var msgs []string
	onMsg := func(m []byte) error {
		msgs = append(msgs, string(m))
		return nil
	}
	scratch := make([]byte, 32<<10)
	pollUntil(t, srv, scratch, onMsg, func() bool { return len(msgs) >= 1 })
	if msgs[0] != "m2" {
		t.Fatalf("drained message = %q, want m2", msgs[0])
	}
	if srv.br != nil {
		t.Fatal("bufio reader not released after the poll switch drained it")
	}

	// Raw reads now: one small message, then one large enough to grow rbuf
	// past the park threshold.
	big := strings.Repeat("y", 4096)
	if err := cli.WriteText([]byte("m3")); err != nil {
		t.Fatal(err)
	}
	if err := cli.WriteText([]byte(big)); err != nil {
		t.Fatal(err)
	}
	pollUntil(t, srv, scratch, onMsg, func() bool { return len(msgs) >= 3 })
	if msgs[1] != "m3" || msgs[2] != big {
		t.Fatalf("raw-read messages wrong: %q, len %d", msgs[1], len(msgs[2]))
	}
	// The last PollRead that found the socket drained parked the connection;
	// the 4KB data buffer must have been released.
	if _, err := srv.PollRead(scratch, onMsg); err != nil {
		t.Fatal(err)
	}
	if cap(srv.rbuf) > pollIdleDataBufMax {
		t.Fatalf("rbuf cap %d survived parking (max %d)", cap(srv.rbuf), pollIdleDataBufMax)
	}

	// Peer-initiated close: the close frame surfaces as ErrClosed and the
	// OnClose hook fires exactly once.
	fired := 0
	srv.OnClose(func() { fired++ })
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("close frame never surfaced")
		}
		_, err := srv.PollRead(scratch, onMsg)
		if err == nil {
			time.Sleep(time.Millisecond)
			continue
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("PollRead after peer close err = %v, want ErrClosed", err)
		}
		break
	}
	if fired != 1 {
		t.Fatalf("OnClose fired %d times, want 1", fired)
	}
}

// TestOnCloseAfterClose: registering the hook on an already-closed connection
// fires it immediately (the poller registration race), and local Close fires
// a hook registered before it exactly once.
func TestOnCloseAfterClose(t *testing.T) {
	c := &Conn{nc: &fakeConn{}}
	fired := 0
	c.OnClose(func() { fired++ })
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("hook fired %d times after Close, want 1", fired)
	}
	c.Close() // double close must not re-fire
	if fired != 1 {
		t.Fatalf("hook re-fired on double close: %d", fired)
	}

	c2 := &Conn{nc: &fakeConn{}}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	fired2 := 0
	c2.OnClose(func() { fired2++ })
	if fired2 != 1 {
		t.Fatalf("late-registered hook fired %d times, want 1 (immediately)", fired2)
	}
	if !c2.Closed() {
		t.Fatal("Closed() = false after Close")
	}
}

// TestStartPollUnsupported: in-memory conns have no descriptor; the switch
// must fail cleanly and leave blocking reads working.
func TestStartPollUnsupported(t *testing.T) {
	wire := &fakeConn{r: bytes.NewReader(frame(true, opText, "ok"))}
	c := &Conn{nc: wire, br: bufio.NewReader(wire)}
	if _, err := c.StartPoll(); !errors.Is(err, ErrPollUnsupported) {
		t.Fatalf("StartPoll on fakeConn err = %v, want ErrPollUnsupported", err)
	}
	if m, err := c.ReadText(); err != nil || string(m) != "ok" {
		t.Fatalf("blocking read after failed switch = %q, %v", m, err)
	}
}

// FuzzFrameReassembly is the differential fuzz between the two readers: any
// byte stream, delivered byte-at-a-time and in seeded random splits, must
// produce byte-identical messages, byte-identical echoed wire responses, and
// a compatible terminal error versus the blocking reader consuming the same
// stream (truncation surfaces as EOF on the blocking side and as a parked
// connection on the poll side).
func FuzzFrameReassembly(f *testing.F) {
	f.Add([]byte{0x81, 0x02, 'h', 'i'}, uint64(1))
	f.Add([]byte{0x81, 0x82, 1, 2, 3, 4, 'h' ^ 1, 'i' ^ 2}, uint64(2))
	f.Add([]byte{0x01, 0x03, 'p', 'a', 'r', 0x89, 0x01, 'x', 0x80, 0x04, 't', 'i', 'a', 'l'}, uint64(3))
	f.Add([]byte{0x89, 0x00, 0x81, 0x01, 'x', 0x88, 0x00}, uint64(4))
	f.Add([]byte{0x81, 0x7E, 0x01, 0x2C}, uint64(5))
	f.Add([]byte{0x81, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}, uint64(6))
	f.Add([]byte{0x91, 0x01, 'z'}, uint64(7))
	f.Add(append([]byte{0x81, 0x7E, 0x01, 0x2C}, bytes.Repeat([]byte("w"), 300)...), uint64(8))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64) {
		blocking := runBlocking(data)
		compareReaders(t, "byte-at-a-time", blocking, runPoll(data, func(int) int { return 1 }))
		rng := seed | 1
		compareReaders(t, "random-splits", blocking, runPoll(data, func(int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			return int((rng>>33)%17) + 1
		}))
	})
}
