// Package wsock is a minimal RFC 6455 WebSocket implementation built only on
// the standard library — the stand-in for the Socket.IO layer the paper's
// back-end server used (§3.3). It supports the handshake (server upgrade and
// client dial), text frames with fragmentation, client-to-server masking,
// ping/pong, and the closing handshake. Exactly what a broadcast hub needs;
// nothing more.
package wsock

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	gosync "sync"
)

// guid is the fixed RFC 6455 handshake GUID.
const guid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Frame opcodes.
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// ErrClosed is returned when reading from a connection after the closing
// handshake.
var ErrClosed = errors.New("wsock: connection closed")

// Conn is one WebSocket connection.
type Conn struct {
	nc     net.Conn
	br     *bufio.Reader
	client bool // client connections mask outgoing frames

	wmu    gosync.Mutex
	closed bool
}

// AcceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + guid))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade performs the server side of the WebSocket handshake on an HTTP
// request and returns the connection. The ResponseWriter must support
// hijacking.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: method must be GET", http.StatusMethodNotAllowed)
		return nil, errors.New("wsock: method not GET")
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: not an upgrade request", http.StatusBadRequest)
		return nil, errors.New("wsock: missing upgrade headers")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("wsock: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: hijacking unsupported", http.StatusInternalServerError)
		return nil, errors.New("wsock: response writer cannot hijack")
	}
	nc, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsock: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: write handshake: %w", err)
	}
	if err := rw.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: flush handshake: %w", err)
	}
	return &Conn{nc: nc, br: rw.Reader}, nil
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial opens a client WebSocket connection to a ws:// URL.
func Dial(rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("wsock: parse url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("wsock: unsupported scheme %q (only ws://)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	nc, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("wsock: dial: %w", err)
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := nc.Write([]byte(req)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: write handshake: %w", err)
	}
	br := bufio.NewReader(nc)
	status, err := br.ReadString('\n')
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: read handshake: %w", err)
	}
	if !strings.Contains(status, "101") {
		nc.Close()
		return nil, fmt.Errorf("wsock: handshake rejected: %s", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("wsock: read handshake headers: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != AcceptKey(key) {
		nc.Close()
		return nil, errors.New("wsock: bad Sec-WebSocket-Accept")
	}
	return &Conn{nc: nc, br: br, client: true}, nil
}

// WriteText sends one text message (fin, unfragmented).
func (c *Conn) WriteText(p []byte) error { return c.writeFrame(opText, p) }

func (c *Conn) writeFrame(opcode byte, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed && opcode != opClose {
		return ErrClosed
	}
	var hdr [14]byte
	hdr[0] = 0x80 | opcode // FIN set
	n := 2
	switch {
	case len(p) < 126:
		hdr[1] = byte(len(p))
	case len(p) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(p)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(p)))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		var mask [4]byte
		if _, err := rand.Read(mask[:]); err != nil {
			return fmt.Errorf("wsock: mask: %w", err)
		}
		copy(hdr[n:n+4], mask[:])
		n += 4
		masked := make([]byte, len(p))
		for i := range p {
			masked[i] = p[i] ^ mask[i%4]
		}
		p = masked
	}
	if _, err := c.nc.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := c.nc.Write(p)
	return err
}

// ReadText reads the next text message, transparently answering pings and
// assembling fragmented messages. It returns ErrClosed after the closing
// handshake, and io.EOF-wrapped errors on abrupt connection loss.
func (c *Conn) ReadText() ([]byte, error) {
	var msg []byte
	assembling := false
	for {
		opcode, fin, payload, err := c.readFrame()
		if err != nil {
			return nil, err
		}
		switch opcode {
		case opText:
			if assembling {
				return nil, errors.New("wsock: new text frame during fragmented message")
			}
			if fin {
				return payload, nil
			}
			msg = append(msg[:0], payload...)
			assembling = true
		case opContinuation:
			if !assembling {
				return nil, errors.New("wsock: continuation without start")
			}
			msg = append(msg, payload...)
			if fin {
				return msg, nil
			}
		case opBinary:
			return nil, errors.New("wsock: unexpected binary frame")
		case opPing:
			if err := c.writeFrame(opPong, payload); err != nil {
				return nil, err
			}
		case opPong:
			// ignore
		case opClose:
			c.wmu.Lock()
			alreadyClosed := c.closed
			c.closed = true
			c.wmu.Unlock()
			if !alreadyClosed {
				// Echo the close to complete the handshake.
				_ = c.writeFrame(opClose, payload)
			}
			c.nc.Close()
			return nil, ErrClosed
		default:
			return nil, fmt.Errorf("wsock: unknown opcode %d", opcode)
		}
	}
}

func (c *Conn) readFrame() (opcode byte, fin bool, payload []byte, err error) {
	var h [2]byte
	if _, err = io.ReadFull(c.br, h[:]); err != nil {
		return 0, false, nil, err
	}
	fin = h[0]&0x80 != 0
	if h[0]&0x70 != 0 {
		return 0, false, nil, errors.New("wsock: nonzero RSV bits")
	}
	opcode = h[0] & 0x0F
	masked := h[1]&0x80 != 0
	length := uint64(h[1] & 0x7F)
	switch length {
	case 126:
		var ext [2]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = uint64(binary.BigEndian.Uint16(ext[:]))
	case 127:
		var ext [8]byte
		if _, err = io.ReadFull(c.br, ext[:]); err != nil {
			return 0, false, nil, err
		}
		length = binary.BigEndian.Uint64(ext[:])
	}
	const maxFrame = 64 << 20
	if length > maxFrame {
		return 0, false, nil, fmt.Errorf("wsock: frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, mask[:]); err != nil {
			return 0, false, nil, err
		}
	}
	payload = make([]byte, length)
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, false, nil, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	return opcode, fin, payload, nil
}

// Ping sends a ping frame (liveness probes).
func (c *Conn) Ping(data []byte) error { return c.writeFrame(opPing, data) }

// Close performs the closing handshake from this side and closes the
// underlying connection.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		return nil
	}
	c.closed = true
	c.wmu.Unlock()
	_ = c.writeFrame(opClose, nil)
	return c.nc.Close()
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }
