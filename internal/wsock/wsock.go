// Package wsock is a minimal RFC 6455 WebSocket implementation built only on
// the standard library — the stand-in for the Socket.IO layer the paper's
// back-end server used (§3.3). It supports the handshake (server upgrade and
// client dial), text frames with fragmentation, client-to-server masking,
// ping/pong, and the closing handshake. Exactly what a broadcast hub needs;
// nothing more.
package wsock

import (
	"bufio"
	"crypto/rand"
	"crypto/sha1"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	gosync "sync"
	"time"
)

// guid is the fixed RFC 6455 handshake GUID.
const guid = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

// Frame opcodes.
const (
	opContinuation = 0x0
	opText         = 0x1
	opBinary       = 0x2
	opClose        = 0x8
	opPing         = 0x9
	opPong         = 0xA
)

// ErrClosed is returned when reading from a connection after the closing
// handshake.
var ErrClosed = errors.New("wsock: connection closed")

// Conn is one WebSocket connection.
//
// Buffer ownership: the read side assembles every text message into rbuf,
// which ReadTextLease hands to the caller as a lease — valid only until the
// next ReadText/ReadTextLease/TryReadTextLease call on this connection.
// Control-frame payloads land in the separate cbuf, so a ping interleaved
// with a fragmented message can never clobber the partially-assembled data
// (RFC 6455 §5.4 allows that interleaving). The write side assembles
// header+payload into wbuf under wmu and emits each frame with a single
// Write. All buffers start nil and grow lazily, so a zero Conn with just nc
// (and br for readers) works — the fuzz harness relies on that.
type Conn struct {
	nc     net.Conn
	br     *bufio.Reader
	client bool // client connections mask outgoing frames

	// Read-side state; owned by the single reader goroutine.
	rbuf    []byte  // reusable message-assembly buffer, leased to the caller
	cbuf    []byte  // control-frame payload buffer (ping/pong/close)
	scratch [8]byte // header/mask scratch; a field so io.ReadFull's interface call can't force a per-frame heap escape

	wmu    gosync.Mutex
	closed bool
	wbuf   []byte // frame-assembly buffer: header + (masked) payload
	// maskPool buffers crypto/rand output so client connections draw a
	// 4-byte frame mask without a syscall per frame.
	maskPool  [256]byte
	maskAvail int

	// stats, when non-nil, receives wire-level metrics; statShard is this
	// connection's stable shard index (see stats.go). Set before traffic,
	// read by both the reader goroutine and writers.
	stats     *Stats
	statShard uint32

	// poll, when non-nil, holds the incremental reassembly state of a
	// connection switched into non-blocking read mode (see poll.go). Owned
	// by whichever single poller worker the connection is dispatched to.
	poll *pollReader

	// onClose, registered via OnClose and guarded by wmu, runs exactly once
	// (onCloseOnce) when the connection closes from either side; the read
	// plane uses it to reap poller state for locally-closed descriptors.
	onClose     func()
	onCloseOnce gosync.Once
}

// AcceptKey computes the Sec-WebSocket-Accept value for a handshake key.
func AcceptKey(key string) string {
	h := sha1.Sum([]byte(key + guid))
	return base64.StdEncoding.EncodeToString(h[:])
}

// Upgrade performs the server side of the WebSocket handshake on an HTTP
// request and returns the connection. The ResponseWriter must support
// hijacking.
func Upgrade(w http.ResponseWriter, r *http.Request) (*Conn, error) {
	if r.Method != http.MethodGet {
		http.Error(w, "websocket: method must be GET", http.StatusMethodNotAllowed)
		return nil, errors.New("wsock: method not GET")
	}
	if !headerContainsToken(r.Header, "Connection", "upgrade") ||
		!strings.EqualFold(r.Header.Get("Upgrade"), "websocket") {
		http.Error(w, "websocket: not an upgrade request", http.StatusBadRequest)
		return nil, errors.New("wsock: missing upgrade headers")
	}
	key := r.Header.Get("Sec-WebSocket-Key")
	if key == "" {
		http.Error(w, "websocket: missing Sec-WebSocket-Key", http.StatusBadRequest)
		return nil, errors.New("wsock: missing key")
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "websocket: hijacking unsupported", http.StatusInternalServerError)
		return nil, errors.New("wsock: response writer cannot hijack")
	}
	nc, rw, err := hj.Hijack()
	if err != nil {
		return nil, fmt.Errorf("wsock: hijack: %w", err)
	}
	resp := "HTTP/1.1 101 Switching Protocols\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Accept: " + AcceptKey(key) + "\r\n\r\n"
	if _, err := rw.WriteString(resp); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: write handshake: %w", err)
	}
	if err := rw.Flush(); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: flush handshake: %w", err)
	}
	return &Conn{nc: nc, br: rw.Reader}, nil
}

func headerContainsToken(h http.Header, name, token string) bool {
	for _, v := range h.Values(name) {
		for _, part := range strings.Split(v, ",") {
			if strings.EqualFold(strings.TrimSpace(part), token) {
				return true
			}
		}
	}
	return false
}

// Dial opens a client WebSocket connection to a ws:// URL.
func Dial(rawURL string) (*Conn, error) {
	u, err := url.Parse(rawURL)
	if err != nil {
		return nil, fmt.Errorf("wsock: parse url: %w", err)
	}
	if u.Scheme != "ws" {
		return nil, fmt.Errorf("wsock: unsupported scheme %q (only ws://)", u.Scheme)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	nc, err := net.Dial("tcp", host)
	if err != nil {
		return nil, fmt.Errorf("wsock: dial: %w", err)
	}
	keyBytes := make([]byte, 16)
	if _, err := rand.Read(keyBytes); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: nonce: %w", err)
	}
	key := base64.StdEncoding.EncodeToString(keyBytes)
	path := u.RequestURI()
	if path == "" {
		path = "/"
	}
	req := "GET " + path + " HTTP/1.1\r\n" +
		"Host: " + u.Host + "\r\n" +
		"Upgrade: websocket\r\n" +
		"Connection: Upgrade\r\n" +
		"Sec-WebSocket-Key: " + key + "\r\n" +
		"Sec-WebSocket-Version: 13\r\n\r\n"
	if _, err := nc.Write([]byte(req)); err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: write handshake: %w", err)
	}
	br := bufio.NewReader(nc)
	status, err := br.ReadString('\n')
	if err != nil {
		nc.Close()
		return nil, fmt.Errorf("wsock: read handshake: %w", err)
	}
	if !strings.Contains(status, "101") {
		nc.Close()
		return nil, fmt.Errorf("wsock: handshake rejected: %s", strings.TrimSpace(status))
	}
	var accept string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			nc.Close()
			return nil, fmt.Errorf("wsock: read handshake headers: %w", err)
		}
		line = strings.TrimRight(line, "\r\n")
		if line == "" {
			break
		}
		if k, v, ok := strings.Cut(line, ":"); ok && strings.EqualFold(strings.TrimSpace(k), "Sec-WebSocket-Accept") {
			accept = strings.TrimSpace(v)
		}
	}
	if accept != AcceptKey(key) {
		nc.Close()
		return nil, errors.New("wsock: bad Sec-WebSocket-Accept")
	}
	return &Conn{nc: nc, br: br, client: true}, nil
}

// WriteText sends one text message (fin, unfragmented).
func (c *Conn) WriteText(p []byte) error { return c.writeFrame(opText, p) }

// writeFrame assembles one FIN frame — header, mask key, payload — into the
// connection's pooled write buffer and emits it with a single Write. One
// write instead of two halves the syscalls per frame and keeps header and
// payload in one TCP segment for small messages; the pooled buffer makes the
// steady state allocation-free. Client frames mask in place while copying
// into the buffer, with mask keys drawn from the buffered rand pool.
func (c *Conn) writeFrame(opcode byte, p []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.closed && opcode != opClose {
		return ErrClosed
	}
	buf, err := c.appendFrame(c.wbuf[:0], opcode, p)
	if err != nil {
		return err
	}
	c.wbuf = buf // retain grown capacity for the next frame
	_, err = c.nc.Write(buf)
	if err == nil {
		c.countWrite(1, len(buf))
	}
	return err
}

// appendFrame appends one assembled FIN frame (header, mask key for client
// connections, payload) to buf and returns it. Callers hold wmu; the batch
// write path appends several frames into one buffer before a single Write.
func (c *Conn) appendFrame(buf []byte, opcode byte, p []byte) ([]byte, error) {
	var hdr [14]byte
	hdr[0] = 0x80 | opcode // FIN set
	n := 2
	switch {
	case len(p) < 126:
		hdr[1] = byte(len(p))
	case len(p) <= 0xFFFF:
		hdr[1] = 126
		binary.BigEndian.PutUint16(hdr[2:4], uint16(len(p)))
		n = 4
	default:
		hdr[1] = 127
		binary.BigEndian.PutUint64(hdr[2:10], uint64(len(p)))
		n = 10
	}
	if c.client {
		hdr[1] |= 0x80
		mask, err := c.nextMask()
		if err != nil {
			return nil, err
		}
		copy(hdr[n:n+4], mask[:])
		n += 4
		start := len(buf)
		buf = append(buf, hdr[:n]...)
		buf = append(buf, p...)
		body := buf[start+n:]
		for i := range body {
			body[i] ^= mask[i%4]
		}
	} else {
		buf = append(buf, hdr[:n]...)
		buf = append(buf, p...)
	}
	return buf, nil
}

// nextMask returns a fresh 4-byte frame mask from the buffered crypto/rand
// pool, refilling it with one syscall per 64 frames instead of one per
// frame. Caller holds wmu.
func (c *Conn) nextMask() ([4]byte, error) {
	var m [4]byte
	if c.maskAvail < 4 {
		if _, err := rand.Read(c.maskPool[:]); err != nil {
			return m, fmt.Errorf("wsock: mask: %w", err) //lint:allow hotalloc crypto-rand failure is fatal connection teardown
		}
		c.maskAvail = len(c.maskPool)
		c.countMaskRefill()
	}
	copy(m[:], c.maskPool[len(c.maskPool)-c.maskAvail:])
	c.maskAvail -= 4
	return m, nil
}

// ReadText reads the next text message, transparently answering pings and
// assembling fragmented messages. It returns ErrClosed after the closing
// handshake, and io.EOF-wrapped errors on abrupt connection loss. The
// returned slice is the caller's to keep; allocation-sensitive readers use
// ReadTextLease instead.
func (c *Conn) ReadText() ([]byte, error) {
	p, err := c.ReadTextLease()
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), p...), nil
}

// ReadTextLease reads the next text message into the connection's reusable
// read buffer and returns it without copying. The returned slice is a
// lease: it is valid only until the next ReadText, ReadTextLease, or
// TryReadTextLease call on this connection, which reuses the same backing
// buffer. Callers that need the bytes longer must copy them first (see
// DESIGN.md §11 for the ownership protocol; the bufown analyzer enforces
// it).
func (c *Conn) ReadTextLease() ([]byte, error) {
	if c.poll != nil {
		return nil, errPollMode
	}
	c.rbuf = c.rbuf[:0]
	assembling := false
	for {
		opcode, fin, err := c.readFrameInto()
		if err != nil {
			return nil, err
		}
		switch opcode {
		case opText:
			if assembling {
				return nil, errors.New("wsock: new text frame during fragmented message")
			}
			if fin {
				c.countLease()
				return c.rbuf, nil
			}
			assembling = true
		case opContinuation:
			if !assembling {
				return nil, errors.New("wsock: continuation without start")
			}
			if fin {
				c.countLease()
				return c.rbuf, nil
			}
		case opBinary:
			return nil, errors.New("wsock: unexpected binary frame")
		case opPing:
			// The pong echoes from cbuf through the pooled write buffer:
			// no allocation, and no aliasing of the data being assembled
			// in rbuf.
			if err := c.writeFrame(opPong, c.cbuf); err != nil {
				return nil, err
			}
		case opPong:
			// ignore
		case opClose:
			return nil, c.handleClose()
		default:
			return nil, fmt.Errorf("wsock: unknown opcode %d", opcode)
		}
	}
}

// TryReadTextLease returns the next text message without blocking, but only
// if a complete unfragmented text frame is already sitting in the read
// buffer. Fully-buffered control frames are processed transparently (pongs
// answered, close handshake completed). ok is false when nothing complete
// is buffered — including fragmented or protocol-violating frames, which
// are deferred to the next blocking read. The same lease discipline as
// ReadTextLease applies.
func (c *Conn) TryReadTextLease() (payload []byte, ok bool, err error) {
	if c.poll != nil || c.br == nil {
		return nil, false, nil
	}
	for {
		opcode, fin, ready := c.peekFrame()
		if !ready {
			return nil, false, nil
		}
		switch {
		case opcode == opText && fin:
			c.rbuf = c.rbuf[:0]
			// The frame is fully buffered, so this cannot block.
			if _, _, err := c.readFrameInto(); err != nil {
				return nil, false, err
			}
			c.countLease()
			return c.rbuf, true, nil
		case opcode == opPing, opcode == opPong, opcode == opClose:
			if _, _, err := c.readFrameInto(); err != nil {
				return nil, false, err
			}
			switch opcode {
			case opPing:
				if err := c.writeFrame(opPong, c.cbuf); err != nil {
					return nil, false, err
				}
			case opClose:
				return nil, false, c.handleClose()
			}
		default:
			return nil, false, nil
		}
	}
}

// peekFrame inspects the buffered bytes for one complete frame without
// consuming anything and without touching the underlying connection (Peek
// is only called with lengths at or below Buffered, so it cannot block).
// ready is false when the frame is incomplete, too large to ever buffer, or
// malformed — malformed frames are left for the blocking path to turn into
// errors.
func (c *Conn) peekFrame() (opcode byte, fin bool, ready bool) {
	buffered := c.br.Buffered()
	if buffered < 2 {
		return 0, false, false
	}
	h, err := c.br.Peek(2)
	if err != nil {
		return 0, false, false
	}
	if h[0]&0x70 != 0 {
		return 0, false, false
	}
	opcode = h[0] & 0x0F
	fin = h[0]&0x80 != 0
	masked := h[1]&0x80 != 0
	hdrLen := 2
	switch h[1] & 0x7F {
	case 126:
		hdrLen += 2
	case 127:
		hdrLen += 8
	}
	if masked {
		hdrLen += 4
	}
	if buffered < hdrLen {
		return 0, false, false
	}
	full, err := c.br.Peek(hdrLen)
	if err != nil {
		return 0, false, false
	}
	var length uint64
	switch h[1] & 0x7F {
	case 126:
		length = uint64(binary.BigEndian.Uint16(full[2:4]))
	case 127:
		length = binary.BigEndian.Uint64(full[2:10])
	default:
		length = uint64(h[1] & 0x7F)
	}
	if length > maxFrame {
		return 0, false, false
	}
	if uint64(buffered-hdrLen) < length {
		return 0, false, false
	}
	return opcode, fin, true
}

// handleClose completes the closing handshake after a close frame whose
// payload is in cbuf, and always returns ErrClosed.
func (c *Conn) handleClose() error {
	c.wmu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	c.wmu.Unlock()
	if !alreadyClosed {
		// Echo the close to complete the handshake.
		_ = c.writeFrame(opClose, c.cbuf)
	}
	c.nc.Close()
	c.fireOnClose()
	return ErrClosed
}

// maxFrame bounds a single frame's payload.
const maxFrame = 64 << 20

// readFrameInto reads one frame, appending data payloads (text,
// continuation, binary) to rbuf — so fragment assembly is just consecutive
// appends — and landing control payloads in cbuf. Both buffers are reused
// across frames; the steady state allocates nothing.
func (c *Conn) readFrameInto() (opcode byte, fin bool, err error) {
	if _, err = io.ReadFull(c.br, c.scratch[:2]); err != nil {
		return 0, false, err
	}
	h0, h1 := c.scratch[0], c.scratch[1]
	fin = h0&0x80 != 0
	if h0&0x70 != 0 {
		return 0, false, errors.New("wsock: nonzero RSV bits")
	}
	opcode = h0 & 0x0F
	masked := h1&0x80 != 0
	length := uint64(h1 & 0x7F)
	hdrBytes := 2
	switch length {
	case 126:
		if _, err = io.ReadFull(c.br, c.scratch[:2]); err != nil {
			return 0, false, err
		}
		length = uint64(binary.BigEndian.Uint16(c.scratch[:2]))
		hdrBytes += 2
	case 127:
		if _, err = io.ReadFull(c.br, c.scratch[:8]); err != nil {
			return 0, false, err
		}
		length = binary.BigEndian.Uint64(c.scratch[:8])
		hdrBytes += 8
	}
	if length > maxFrame {
		return 0, false, fmt.Errorf("wsock: frame of %d bytes exceeds limit", length)
	}
	var mask [4]byte
	if masked {
		if _, err = io.ReadFull(c.br, c.scratch[:4]); err != nil {
			return 0, false, err
		}
		copy(mask[:], c.scratch[:4])
		hdrBytes += 4
	}
	var payload []byte
	if opcode >= opClose {
		if cap(c.cbuf) < int(length) {
			c.countBufGrow()
		}
		c.cbuf = growLen(c.cbuf[:0], int(length))
		payload = c.cbuf
	} else {
		start := len(c.rbuf)
		if cap(c.rbuf)-start < int(length) {
			c.countBufGrow()
		}
		c.rbuf = growLen(c.rbuf, int(length))
		payload = c.rbuf[start:]
	}
	if _, err = io.ReadFull(c.br, payload); err != nil {
		return 0, false, err
	}
	if masked {
		for i := range payload {
			payload[i] ^= mask[i%4]
		}
	}
	c.countRead(hdrBytes + int(length))
	return opcode, fin, nil
}

// growLen extends b by n bytes (contents of the extension undefined),
// reusing capacity when available.
func growLen(b []byte, n int) []byte {
	if cap(b)-len(b) >= n {
		return b[:len(b)+n]
	}
	nb := make([]byte, len(b)+n, (len(b)+n)*2)
	copy(nb, b)
	return nb
}

// Ping sends a ping frame (liveness probes).
func (c *Conn) Ping(data []byte) error { return c.writeFrame(opPing, data) }

// SetWriteDeadline bounds how long subsequent writes may block. The flusher
// pool uses it as a backstop so one stalled socket cannot wedge a shared
// flusher indefinitely; a write that hits the deadline leaves the stream
// mid-frame, so callers must treat the error as fatal and drop the
// connection. The zero time clears the deadline.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.nc.SetWriteDeadline(t) }

// Close performs the closing handshake from this side and closes the
// underlying connection.
func (c *Conn) Close() error {
	c.wmu.Lock()
	if c.closed {
		c.wmu.Unlock()
		return nil
	}
	c.closed = true
	c.wmu.Unlock()
	_ = c.writeFrame(opClose, nil)
	err := c.nc.Close()
	c.fireOnClose()
	return err
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.nc.RemoteAddr() }
