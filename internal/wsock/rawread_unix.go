//go:build unix

package wsock

import (
	"io"
	"syscall"
)

// makeReadFn builds the RawConn.Read callback for this connection, created
// once at StartPoll so the per-dispatch read path allocates nothing. The
// callback always returns true: would-block is reported through rerr as
// errWouldBlock instead of parking the goroutine in the runtime poller —
// parking is the kernel poller's job in this read plane.
func (pr *pollReader) makeReadFn() func(fd uintptr) bool {
	return func(fd uintptr) bool {
		for {
			n, err := syscall.Read(int(fd), pr.rdst)
			switch {
			case err == syscall.EINTR:
				continue
			case err == syscall.EAGAIN || err == syscall.EWOULDBLOCK:
				pr.rn, pr.rerr = 0, errWouldBlock
			case err != nil:
				pr.rn, pr.rerr = 0, err
			case n == 0:
				pr.rn, pr.rerr = 0, io.EOF
			default:
				pr.rn, pr.rerr = n, nil
			}
			return true
		}
	}
}
