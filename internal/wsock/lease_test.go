package wsock

import (
	"bufio"
	"bytes"
	"errors"
	"testing"
)

// countingConn wraps fakeConn and counts Write calls, so tests can prove
// single-write frame emission.
type countingConn struct {
	fakeConn
	writes int
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes++
	return c.fakeConn.Write(p)
}

// pair returns a sender writing into an in-memory wire and a function that
// finalizes the wire into a receiver connection.
func pair(client bool) (*Conn, *countingConn, func() *Conn) {
	wire := &countingConn{}
	sender := &Conn{nc: wire, client: client}
	return sender, wire, func() *Conn {
		rd := &fakeConn{r: bytes.NewReader(wire.w.Bytes())}
		return &Conn{nc: rd, br: bufio.NewReader(rd)}
	}
}

// TestSingleWriteFrameEmission: every frame — small, 16-bit extended, 64-bit
// extended, masked or not — goes out in exactly one Write call.
func TestSingleWriteFrameEmission(t *testing.T) {
	for _, client := range []bool{false, true} {
		for _, size := range []int{0, 1, 125, 126, 65535, 65536, 1 << 18} {
			sender, wire, _ := pair(client)
			payload := bytes.Repeat([]byte("q"), size)
			if err := sender.WriteText(payload); err != nil {
				t.Fatalf("client=%v size=%d: %v", client, size, err)
			}
			if wire.writes != 1 {
				t.Errorf("client=%v size=%d: frame used %d writes, want 1", client, size, wire.writes)
			}
		}
	}
}

// TestExtendedLengthRoundTrip: payloads straddling the 126 and 65536 header
// boundaries survive the pooled single-write path in both roles.
func TestExtendedLengthRoundTrip(t *testing.T) {
	for _, client := range []bool{false, true} {
		for _, size := range []int{0, 125, 126, 127, 65535, 65536, 1 << 18} {
			sender, _, recv := pair(client)
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i * 131)
			}
			if err := sender.WriteText(payload); err != nil {
				t.Fatalf("client=%v size=%d: write: %v", client, size, err)
			}
			got, err := recv().ReadTextLease()
			if err != nil {
				t.Fatalf("client=%v size=%d: read: %v", client, size, err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("client=%v size=%d: payload corrupted", client, size)
			}
		}
	}
}

// TestClientMasksDiffer: the buffered mask source must still produce a fresh
// mask per frame (RFC 6455 §5.3 requires unpredictable masks; identical
// masks across frames would be an immediate tell that pooling broke it).
func TestClientMasksDiffer(t *testing.T) {
	sender, wire, _ := pair(true)
	const frames = 8
	for i := 0; i < frames; i++ {
		if err := sender.WriteText([]byte("same payload")); err != nil {
			t.Fatal(err)
		}
	}
	raw := wire.w.Bytes()
	frameLen := 2 + 4 + len("same payload")
	masks := make(map[[4]byte]bool)
	for i := 0; i < frames; i++ {
		var m [4]byte
		copy(m[:], raw[i*frameLen+2:])
		masks[m] = true
	}
	if len(masks) < 2 {
		t.Fatalf("all %d frames used the same mask", frames)
	}
}

// TestLeaseInvalidatedByNextRead: the buffer handed out by ReadTextLease is
// reused by the next read — retaining it observes the next message's bytes.
// (This documents the lease contract rather than desirable behavior per se;
// ReadText is the copying API for callers that retain.)
func TestLeaseInvalidatedByNextRead(t *testing.T) {
	sender, _, recv := pair(false)
	if err := sender.WriteText([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := sender.WriteText([]byte("burst")); err != nil {
		t.Fatal(err)
	}
	r := recv()
	lease, err := r.ReadTextLease()
	if err != nil {
		t.Fatal(err)
	}
	if string(lease) != "first" {
		t.Fatalf("first lease = %q", lease)
	}
	if _, err := r.ReadTextLease(); err != nil {
		t.Fatal(err)
	}
	// Same length, same backing buffer: the old lease now shows new bytes.
	if string(lease) != "burst" { //lint:allow bufown this test pins the invalidation contract: the stale lease must observe the reused buffer
		t.Fatalf("lease not backed by the reused buffer: %q", lease) //lint:allow bufown deliberate stale-lease read, the assertion above explains it
	}
}

// TestPingMidFragmentLease: a ping interleaved inside a fragmented message
// must be answered from the control buffer without disturbing the data being
// assembled in the read buffer.
func TestPingMidFragmentLease(t *testing.T) {
	wireFrom := func(build func(s *Conn)) *Conn {
		wire := &fakeConn{}
		s := &Conn{nc: wire}
		build(s)
		rd := &fakeConn{r: bytes.NewReader(wire.w.Bytes())}
		return &Conn{nc: rd, br: bufio.NewReader(rd)}
	}
	r := wireFrom(func(s *Conn) {
		// text(fin=0) "hel" · ping "PINGPAYLOAD" · continuation(fin=1) "lo"
		mustWriteRaw(s, false, opText, []byte("hel"))
		mustWriteRaw(s, true, opPing, []byte("PINGPAYLOAD"))
		mustWriteRaw(s, true, opContinuation, []byte("lo"))
	})
	got, err := r.ReadTextLease()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("assembled = %q, want \"hello\" (ping corrupted reassembly)", got)
	}
	// The pong must have echoed the ping payload.
	pong := r.nc.(*fakeConn).w.Bytes()
	if len(pong) < 2 || pong[0] != 0x80|opPong || string(pong[2:]) != "PINGPAYLOAD" {
		t.Fatalf("pong frame = %x", pong)
	}
}

// mustWriteRaw emits one unmasked frame with explicit fin/opcode through the
// sender's pooled write path (writeFrame always sets FIN, so fragments are
// crafted by hand here).
func mustWriteRaw(s *Conn, fin bool, opcode byte, payload []byte) {
	b0 := opcode
	if fin {
		b0 |= 0x80
	}
	hdr := []byte{b0, byte(len(payload))}
	if _, err := s.nc.Write(append(hdr, payload...)); err != nil {
		panic(err)
	}
}

// TestTryReadTextLeaseBatching: with several complete frames buffered, Try
// drains them without blocking; when the buffer is empty it reports not
// ready instead of touching the connection.
func TestTryReadTextLeaseBatching(t *testing.T) {
	sender, wire, _ := pair(false)
	for _, m := range []string{"m1", "m2", "m3"} {
		if err := sender.WriteText([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	rd := &fakeConn{r: bytes.NewReader(wire.w.Bytes())}
	r := &Conn{nc: rd, br: bufio.NewReader(rd)}
	// Blocking read pulls everything into the bufio buffer.
	first, err := r.ReadTextLease()
	if err != nil || string(first) != "m1" {
		t.Fatalf("first = %q, %v", first, err)
	}
	for _, want := range []string{"m2", "m3"} {
		got, ok, err := r.TryReadTextLease()
		if err != nil || !ok {
			t.Fatalf("try(%s): ok=%v err=%v", want, ok, err)
		}
		if string(got) != want {
			t.Fatalf("try = %q, want %q", got, want)
		}
	}
	if _, ok, err := r.TryReadTextLease(); ok || err != nil {
		t.Fatalf("empty try: ok=%v err=%v", ok, err)
	}
}

// TestTryReadTextLeaseControlFrames: buffered pings are answered and a
// buffered close completes the handshake, all without blocking.
func TestTryReadTextLeaseControlFrames(t *testing.T) {
	wire := &fakeConn{}
	s := &Conn{nc: wire}
	mustWriteRaw(s, true, opText, []byte("hi"))
	mustWriteRaw(s, true, opPing, []byte("hb"))
	mustWriteRaw(s, true, opText, []byte("yo"))
	mustWriteRaw(s, true, opClose, nil)
	rd := &fakeConn{r: bytes.NewReader(wire.w.Bytes())}
	r := &Conn{nc: rd, br: bufio.NewReader(rd)}
	if first, err := r.ReadTextLease(); err != nil || string(first) != "hi" {
		t.Fatalf("first = %q, %v", first, err)
	}
	got, ok, err := r.TryReadTextLease()
	if err != nil || !ok || string(got) != "yo" {
		t.Fatalf("try across ping: %q ok=%v err=%v", got, ok, err)
	}
	pong := rd.w.Bytes()
	if len(pong) < 2 || pong[0] != 0x80|opPong {
		t.Fatalf("ping not answered: %x", pong)
	}
	if _, ok, err := r.TryReadTextLease(); ok || !errors.Is(err, ErrClosed) {
		t.Fatalf("close via try: ok=%v err=%v", ok, err)
	}
}

// TestWriteTextAllocs: the pooled single-write path is allocation-free in
// steady state, in both roles (the client side includes masking and the
// buffered rand source).
func TestWriteTextAllocs(t *testing.T) {
	payload := bytes.Repeat([]byte("z"), 200)
	for _, client := range []bool{false, true} {
		wire := &fakeConn{}
		c := &Conn{nc: wire, client: client}
		if err := c.WriteText(payload); err != nil { // warm the pooled buffer
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(100, func() {
			wire.w.Reset()
			if err := c.WriteText(payload); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("client=%v: WriteText allocs/op = %v, want 0", client, allocs)
		}
	}
}

// TestReadTextLeaseAllocs: steady-state message reads — including answering
// interleaved pings — allocate nothing.
func TestReadTextLeaseAllocs(t *testing.T) {
	wire := &fakeConn{}
	s := &Conn{nc: wire}
	const rounds = 220
	for i := 0; i < rounds; i++ {
		mustWriteRaw(s, true, opPing, []byte("hb"))
		mustWriteRaw(s, true, opText, bytes.Repeat([]byte("p"), 64))
	}
	rd := &fakeConn{r: bytes.NewReader(wire.w.Bytes())}
	r := &Conn{nc: rd, br: bufio.NewReaderSize(rd, 1<<16)}
	if _, err := r.ReadTextLease(); err != nil { // warm rbuf/cbuf/wbuf
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rd.w.Reset() // discard pongs so the sink doesn't grow
		if _, err := r.ReadTextLease(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("ReadTextLease allocs/op = %v, want 0", allocs)
	}
}
