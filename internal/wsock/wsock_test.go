package wsock

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// echoServer starts an httptest server that upgrades and echoes text frames.
func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			msg, err := c.ReadText()
			if err != nil {
				return
			}
			if err := c.WriteText(msg); err != nil {
				return
			}
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func wsURL(srv *httptest.Server) string {
	return "ws" + strings.TrimPrefix(srv.URL, "http")
}

func TestAcceptKeyRFCExample(t *testing.T) {
	// The example from RFC 6455 §1.3.
	got := AcceptKey("dGhlIHNhbXBsZSBub25jZQ==")
	want := "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
	if got != want {
		t.Fatalf("AcceptKey = %q, want %q", got, want)
	}
}

func TestEchoRoundTrip(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	for _, msg := range []string{"hello", "", `{"type":1,"row":"a-1"}`} {
		if err := c.WriteText([]byte(msg)); err != nil {
			t.Fatalf("WriteText(%q): %v", msg, err)
		}
		got, err := c.ReadText()
		if err != nil {
			t.Fatalf("ReadText: %v", err)
		}
		if string(got) != msg {
			t.Fatalf("echo = %q, want %q", got, msg)
		}
	}
}

func TestLargeFrames(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Exercise the 16-bit and 64-bit length encodings.
	for _, size := range []int{126, 65535, 65536, 1 << 18} {
		msg := strings.Repeat("x", size)
		if err := c.WriteText([]byte(msg)); err != nil {
			t.Fatalf("write %d bytes: %v", size, err)
		}
		got, err := c.ReadText()
		if err != nil {
			t.Fatalf("read %d bytes: %v", size, err)
		}
		if len(got) != size {
			t.Fatalf("echo size = %d, want %d", len(got), size)
		}
	}
}

func TestPingTransparent(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// A ping from the client gets ponged by the peer's read loop... the echo
	// server's ReadText answers it internally; the subsequent text flows.
	if err := c.Ping([]byte("beat")); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if err := c.WriteText([]byte("after-ping")); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadText()
	if err != nil {
		t.Fatalf("ReadText after ping: %v", err)
	}
	if string(got) != "after-ping" {
		t.Fatalf("got %q", got)
	}
}

func TestCloseHandshake(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.WriteText([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close err = %v, want ErrClosed", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestServerInitiatedClose(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		c.Close()
	}))
	defer srv.Close()
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	deadline := time.After(5 * time.Second)
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadText()
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("read err = %v, want ErrClosed", err)
		}
	case <-deadline:
		t.Fatalf("close handshake timed out")
	}
}

func TestUpgradeRejectsPlainRequests(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Errorf("plain request should not upgrade")
		}
	}))
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	// Wrong method.
	resp, err = http.Post(srv.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d, want 405", resp.StatusCode)
	}
}

func TestDialErrors(t *testing.T) {
	if _, err := Dial("http://example.com"); err == nil {
		t.Errorf("non-ws scheme should fail")
	}
	if _, err := Dial("ws://127.0.0.1:1"); err == nil {
		t.Errorf("refused connection should fail")
	}
	if _, err := Dial("://bad"); err == nil {
		t.Errorf("unparseable url should fail")
	}
	// An HTTP (non-upgrading) server rejects the handshake.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer srv.Close()
	if _, err := Dial(wsURL(srv)); err == nil {
		t.Errorf("non-101 response should fail the handshake")
	}
}

func TestConcurrentWriters(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 50
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errs <- c.WriteText([]byte("msg")) }()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("concurrent write: %v", err)
		}
	}
	for i := 0; i < n; i++ {
		if _, err := c.ReadText(); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}

func TestUpgradeMissingKey(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := Upgrade(w, r); err == nil {
			t.Errorf("keyless upgrade should fail")
		}
	}))
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	req.Header.Set("Connection", "Upgrade")
	req.Header.Set("Upgrade", "websocket")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestRemoteAddr(t *testing.T) {
	srv := echoServer(t)
	c, err := Dial(wsURL(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.RemoteAddr() == nil || c.RemoteAddr().String() == "" {
		t.Fatalf("RemoteAddr = %v", c.RemoteAddr())
	}
}

func TestDialBadAccept(t *testing.T) {
	// A server that completes the upgrade with a wrong accept key.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hj, _ := w.(http.Hijacker)
		nc, rw, err := hj.Hijack()
		if err != nil {
			return
		}
		defer nc.Close()
		rw.WriteString("HTTP/1.1 101 Switching Protocols\r\nUpgrade: websocket\r\n" +
			"Connection: Upgrade\r\nSec-WebSocket-Accept: bogus\r\n\r\n")
		rw.Flush()
	}))
	defer srv.Close()
	if _, err := Dial(wsURL(srv)); err == nil {
		t.Fatalf("bad accept key should fail the dial")
	}
}

func TestDialDefaultPort(t *testing.T) {
	// ws://host without a port implies :80; just check it doesn't panic and
	// returns some dial outcome quickly (likely refused in the sandbox).
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _ = Dial("ws://127.0.0.1/x")
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("default-port dial hung")
	}
}
