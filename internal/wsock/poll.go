// Non-blocking read mode: the connection-side half of the readiness-driven
// read plane (DESIGN.md §15). A Conn switched into poll mode with StartPoll
// no longer has a dedicated reader goroutine; instead a poller worker calls
// PollRead whenever the kernel reports the socket readable, and PollRead
// drains the socket with non-blocking raw reads, feeding the bytes through
// an incremental frame-reassembly state machine that mirrors the blocking
// reader byte for byte (the FuzzFrameReassembly differential holds the two
// paths to identical decode + identical wire responses).
//
// Ownership: at most one goroutine runs PollRead at a time (the poller's
// ONESHOT dispatch discipline guarantees it), so the reassembly state and
// the rbuf/cbuf lease buffers keep the single-reader contract the blocking
// path has. The write side (wmu-guarded) is untouched: pong and close
// echoes go through the same writeFrame as before.
package wsock

import (
	"encoding/binary"
	"errors"
	"fmt"
	"syscall"
	"time"
)

// ErrPollUnsupported is returned by StartPoll when the underlying connection
// cannot expose a raw file descriptor (in-memory test conns, exotic
// net.Conn implementations). Callers fall back to the blocking read loop.
var ErrPollUnsupported = errors.New("wsock: connection does not support readiness polling")

// errPollMode guards the blocking entry points once a connection has been
// switched to poll mode: the two readers share reassembly state and must
// never run together.
var errPollMode = errors.New("wsock: connection is in non-blocking poll mode")

// errWouldBlock is the internal rawRead sentinel for EAGAIN: the socket is
// drained and the connection should be re-armed with the poller.
var errWouldBlock = errors.New("wsock: read would block")

// Frame-reassembly states. A frame arrives in up to four pieces — fixed
// header, extended length, mask key, payload — and any piece may itself be
// split across an arbitrary number of socket reads.
const (
	psHdr     = iota // collecting the 2 fixed header bytes
	psExt            // collecting the 2- or 8-byte extended length
	psMask           // collecting the 4-byte mask key
	psPayload        // collecting payload bytes
)

// Shrink thresholds applied when a poll-mode connection parks (socket
// drained, no partial frame): idle herd members must not pin oversized
// buffers grown by one large historical message.
const (
	pollIdleDataBufMax = 2048
	pollIdleCtrlBufMax = 512
)

// pollReadBudget caps the socket reads one PollRead dispatch performs
// before reporting more=true so the poller re-queues the connection: a
// firehose sender shares the worker pool fairly with everyone else, the
// same budgeted-drain discipline the flusher pool applies to writes.
const pollReadBudget = 8

// pollReader is the per-connection incremental read state. It exists only
// on connections switched into poll mode; a nil Conn.poll means the
// connection is (still) a blocking reader.
type pollReader struct {
	rc syscall.RawConn

	// readFn is the RawConn.Read callback, allocated once at StartPoll so
	// the readiness hot path performs zero allocations per dispatch; it
	// communicates through rdst/rn/rerr.
	readFn func(fd uintptr) bool
	rdst   []byte
	rn     int
	rerr   error

	// Reassembly state machine.
	state      int
	hdr        [8]byte // fixed-header / extended-length accumulator
	hdrn       int     // bytes accumulated in the current hdr/ext piece
	extn       int     // extended-length size for this frame (2 or 8)
	fin        bool
	opcode     byte
	masked     bool
	mask       [4]byte
	maskOff    int // rolling payload offset mod 4 for incremental unmasking
	length     int // this frame's payload length
	remaining  int // payload bytes still missing
	wireHdr    int // header wire bytes (for countRead parity with readFrameInto)
	ctrl       bool
	payStart   int  // payload start offset in rbuf (data frames)
	assembling bool // between a non-fin text frame and its final continuation
}

// StartPoll switches the connection into non-blocking read mode and returns
// the raw descriptor handle for poller registration. The socket stays owned
// by the Go runtime (reads go through syscall.RawConn, which holds the fd
// referenced), so deadlines, writes, and Close keep working unchanged. The
// switch is one-way: blocking reads on this connection fail afterwards.
func (c *Conn) StartPoll() (syscall.RawConn, error) {
	if c.poll != nil {
		return c.poll.rc, nil
	}
	sc, ok := c.nc.(syscall.Conn)
	if !ok {
		return nil, ErrPollUnsupported
	}
	rc, err := sc.SyscallConn()
	if err != nil {
		return nil, err
	}
	pr := &pollReader{rc: rc}
	pr.readFn = pr.makeReadFn()
	// Any lease handed out by a blocking read expires at the mode switch:
	// poll-mode payloads append to rbuf, so a leftover lease would prefix the
	// first delivered message.
	c.rbuf = c.rbuf[:0]
	c.poll = pr
	return rc, nil
}

// PollRead drains the socket without blocking, invoking onMsg once per
// complete text message with the usual lease discipline (the slice is valid
// only during the callback). It returns more=true when the read budget ran
// out with the socket still readable — the caller should re-queue the
// connection rather than re-arm it — and a non-nil error when the
// connection is finished (closed, protocol violation, peer gone); the
// caller must tear the connection down then. A (false, nil) return means
// the socket is drained and the connection should be re-armed.
//
//lint:hotpath PollRead
func (c *Conn) PollRead(scratch []byte, onMsg func([]byte) error) (more bool, err error) {
	if c.poll == nil {
		return false, ErrPollUnsupported
	}
	// First drain any bytes the handshake left in the bufio reader: they
	// arrived before the switch to poll mode and the kernel will never
	// report them again. Afterwards the reader is dropped for good,
	// releasing its buffer — poll-mode connections read straight from the
	// socket.
	if c.br != nil {
		for c.br.Buffered() > 0 {
			n := c.br.Buffered()
			if n > len(scratch) {
				n = len(scratch)
			}
			m, rerr := c.br.Read(scratch[:n])
			if m > 0 {
				if ferr := c.feed(scratch[:m], onMsg); ferr != nil {
					return false, ferr
				}
			}
			if rerr != nil {
				return false, rerr
			}
		}
		c.br = nil
	}
	for reads := 0; ; reads++ {
		if reads >= pollReadBudget {
			return true, nil
		}
		n, rerr := c.rawRead(scratch)
		if n > 0 {
			if ferr := c.feed(scratch[:n], onMsg); ferr != nil {
				return false, ferr
			}
		}
		if rerr == errWouldBlock {
			c.shrinkOnPark()
			return false, nil
		}
		if rerr != nil {
			return false, rerr
		}
	}
}

// rawRead performs one non-blocking read from the socket into p through the
// pre-allocated RawConn callback. It returns errWouldBlock when the socket
// is drained, io.EOF on orderly shutdown, and the raw error otherwise.
func (c *Conn) rawRead(p []byte) (int, error) {
	pr := c.poll
	pr.rdst, pr.rn, pr.rerr = p, 0, nil
	err := pr.rc.Read(pr.readFn)
	pr.rdst = nil
	if err != nil {
		// The runtime refused the read: the descriptor was closed locally.
		return 0, err
	}
	return pr.rn, pr.rerr
}

// shrinkOnPark releases oversized lease buffers when the connection parks
// with no partial frame in flight, so an idle herd member's footprint is a
// few hundred bytes of struct, not the high-water mark of its traffic.
func (c *Conn) shrinkOnPark() {
	pr := c.poll
	if pr.state != psHdr || pr.hdrn != 0 || pr.assembling {
		return // mid-frame or mid-message: the buffers are live
	}
	if cap(c.rbuf) > pollIdleDataBufMax {
		c.rbuf = nil
	}
	if cap(c.cbuf) > pollIdleCtrlBufMax {
		c.cbuf = nil
	}
}

// feed runs buf through the reassembly state machine, delivering completed
// text messages to onMsg and answering control frames exactly as the
// blocking reader does. Any returned error is fatal to the connection.
//
//lint:hotpath feed
func (c *Conn) feed(buf []byte, onMsg func([]byte) error) error {
	pr := c.poll
	p := buf
	for {
		switch pr.state {
		case psHdr:
			if len(p) == 0 {
				return nil
			}
			n := copy(pr.hdr[pr.hdrn:2], p)
			pr.hdrn += n
			p = p[n:]
			if pr.hdrn < 2 {
				return nil
			}
			h0, h1 := pr.hdr[0], pr.hdr[1]
			if h0&0x70 != 0 {
				return errors.New("wsock: nonzero RSV bits") //lint:allow hotalloc fatal protocol violation, connection is torn down
			}
			pr.fin = h0&0x80 != 0
			pr.opcode = h0 & 0x0F
			pr.masked = h1&0x80 != 0
			pr.wireHdr = 2
			pr.hdrn = 0
			switch h1 & 0x7F {
			case 126:
				pr.extn = 2
				pr.state = psExt
			case 127:
				pr.extn = 8
				pr.state = psExt
			default:
				pr.length = int(h1 & 0x7F)
				c.startPayload()
			}
		case psExt:
			n := copy(pr.hdr[pr.hdrn:pr.extn], p)
			pr.hdrn += n
			p = p[n:]
			if pr.hdrn < pr.extn {
				return nil
			}
			var length uint64
			if pr.extn == 2 {
				length = uint64(binary.BigEndian.Uint16(pr.hdr[:2]))
			} else {
				length = binary.BigEndian.Uint64(pr.hdr[:8])
			}
			if length > maxFrame {
				return fmt.Errorf("wsock: frame of %d bytes exceeds limit", length) //lint:allow hotalloc fatal protocol violation, connection is torn down
			}
			pr.wireHdr += pr.extn
			pr.length = int(length)
			pr.hdrn = 0
			c.startPayload()
		case psMask:
			n := copy(pr.mask[pr.hdrn:4], p)
			pr.hdrn += n
			p = p[n:]
			if pr.hdrn < 4 {
				return nil
			}
			pr.wireHdr += 4
			pr.hdrn = 0
			c.beginPayload()
		case psPayload:
			if pr.remaining > 0 {
				if len(p) == 0 {
					return nil
				}
				var dst []byte
				if pr.ctrl {
					dst = c.cbuf
				} else {
					dst = c.rbuf
				}
				off := pr.payStart + pr.length - pr.remaining
				n := copy(dst[off:pr.payStart+pr.length], p)
				if pr.masked {
					seg := dst[off : off+n]
					for i := range seg {
						seg[i] ^= pr.mask[(pr.maskOff+i)&3]
					}
				}
				pr.maskOff = (pr.maskOff + n) & 3
				pr.remaining -= n
				p = p[n:]
				if pr.remaining > 0 {
					return nil
				}
			}
			c.countRead(pr.wireHdr + pr.length)
			pr.state = psHdr
			pr.hdrn = 0
			if err := c.finishFrame(onMsg); err != nil { //lint:allow hotalloc delivery callback is the message hot path's own gated root
				return err
			}
		}
	}
}

// startPayload routes the frame after its length is known: mask key next if
// the frame is masked, else straight to payload collection.
func (c *Conn) startPayload() {
	pr := c.poll
	if pr.masked {
		pr.hdrn = 0
		pr.state = psMask
		return
	}
	c.beginPayload()
}

// beginPayload sizes the destination buffer exactly as the blocking
// readFrameInto does — control payloads into cbuf, data payloads appended
// to rbuf so fragment assembly is consecutive — and enters payload
// collection. Zero-length frames complete on the next loop iteration
// without needing further input.
func (c *Conn) beginPayload() {
	pr := c.poll
	if pr.opcode >= opClose {
		if cap(c.cbuf) < pr.length {
			c.countBufGrow()
		}
		c.cbuf = growLen(c.cbuf[:0], pr.length) //lint:allow hotalloc amortized pooled-buffer growth, shared shape with the blocking reader
		pr.ctrl = true
		pr.payStart = 0
	} else {
		start := len(c.rbuf)
		if cap(c.rbuf)-start < pr.length {
			c.countBufGrow()
		}
		c.rbuf = growLen(c.rbuf, pr.length) //lint:allow hotalloc amortized pooled-buffer growth, shared shape with the blocking reader
		pr.ctrl = false
		pr.payStart = start
	}
	pr.remaining = pr.length
	pr.maskOff = 0
	pr.state = psPayload
}

// finishFrame applies the completed frame with exactly the semantics of the
// blocking ReadTextLease loop: same opcode dispatch, same error strings,
// same pong/close echoes through the pooled write path.
func (c *Conn) finishFrame(onMsg func([]byte) error) error {
	pr := c.poll
	switch pr.opcode {
	case opText:
		if pr.assembling {
			return errors.New("wsock: new text frame during fragmented message")
		}
		if pr.fin {
			c.countLease()
			err := onMsg(c.rbuf)
			c.rbuf = c.rbuf[:0]
			return err
		}
		pr.assembling = true
	case opContinuation:
		if !pr.assembling {
			return errors.New("wsock: continuation without start")
		}
		if pr.fin {
			pr.assembling = false
			c.countLease()
			err := onMsg(c.rbuf)
			c.rbuf = c.rbuf[:0]
			return err
		}
	case opBinary:
		return errors.New("wsock: unexpected binary frame")
	case opPing:
		return c.writeFrame(opPong, c.cbuf)
	case opPong:
		// ignore
	case opClose:
		return c.handleClose()
	default:
		return fmt.Errorf("wsock: unknown opcode %d", pr.opcode)
	}
	return nil
}

// OnClose registers fn to run exactly once when the connection closes —
// whether locally (Close from the flusher pool, eviction, shutdown) or via
// the closing handshake. The read plane uses it to tear down poller state
// for connections whose readiness events will never fire again because the
// descriptor was closed out from under the poller. If the connection is
// already closed when OnClose is called, fn runs immediately.
func (c *Conn) OnClose(fn func()) {
	c.wmu.Lock()
	c.onClose = fn
	closed := c.closed
	c.wmu.Unlock()
	if closed {
		c.fireOnClose()
	}
}

// fireOnClose runs the close hook at most once. Callers must not hold wmu.
func (c *Conn) fireOnClose() {
	c.wmu.Lock()
	fn := c.onClose
	c.wmu.Unlock()
	if fn != nil {
		c.onCloseOnce.Do(fn)
	}
}

// Closed reports whether the closing handshake has begun on this side.
func (c *Conn) Closed() bool {
	c.wmu.Lock()
	v := c.closed
	c.wmu.Unlock()
	return v
}

// SetReadDeadline bounds how long subsequent blocking reads may block; the
// zero time clears the bound. A read that hits the deadline leaves the
// stream position undefined mid-frame, so callers must treat the error as
// fatal and drop the connection — the same contract as SetWriteDeadline.
// Poll-mode connections never block on read, so the deadline only matters
// for the blocking path.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.nc.SetReadDeadline(t) }
