package wsock

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// fakeConn is an in-memory net.Conn: reads come from r, writes land in w.
// Control-frame echoes (pong, close) written while parsing are discarded
// into w so the frame reader can be driven without a real socket.
type fakeConn struct {
	r *bytes.Reader
	w bytes.Buffer
}

func (c *fakeConn) Read(p []byte) (int, error) {
	if c.r == nil {
		return 0, io.EOF
	}
	return c.r.Read(p)
}
func (c *fakeConn) Write(p []byte) (int, error)      { return c.w.Write(p) }
func (c *fakeConn) Close() error                     { return nil }
func (c *fakeConn) LocalAddr() net.Addr              { return &net.TCPAddr{} }
func (c *fakeConn) RemoteAddr() net.Addr             { return &net.TCPAddr{} }
func (c *fakeConn) SetDeadline(time.Time) error      { return nil }
func (c *fakeConn) SetReadDeadline(time.Time) error  { return nil }
func (c *fakeConn) SetWriteDeadline(time.Time) error { return nil }

// FuzzFrameRoundTrip checks that any payload written by writeFrame — masked
// (client role) or unmasked (server role) — is returned verbatim by ReadText
// on the receiving side.
func FuzzFrameRoundTrip(f *testing.F) {
	f.Add([]byte(nil), false)
	f.Add([]byte("{}"), true)
	f.Add([]byte("hello broadcast plane"), false)
	f.Add(bytes.Repeat([]byte("x"), 126), true)    // 16-bit length header
	f.Add(bytes.Repeat([]byte("y"), 70000), false) // 64-bit length header
	f.Fuzz(func(t *testing.T, payload []byte, client bool) {
		wire := &fakeConn{}
		sender := &Conn{nc: wire, client: client}
		if err := sender.WriteText(payload); err != nil {
			t.Fatalf("WriteText(%d bytes): %v", len(payload), err)
		}
		rdConn := &fakeConn{r: bytes.NewReader(wire.w.Bytes())}
		receiver := &Conn{nc: rdConn, br: bufio.NewReader(rdConn)}
		got, err := receiver.ReadText()
		if err != nil {
			t.Fatalf("ReadText after %d-byte write: %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip mismatch: wrote %d bytes, read %d", len(payload), len(got))
		}
	})
}

// FuzzFrameParse feeds arbitrary bytes to the frame reader: it must never
// panic and must terminate (every path either yields a message or an error —
// including ErrClosed for close frames and EOF for truncated input).
func FuzzFrameParse(f *testing.F) {
	// A valid single text frame, a masked frame, a ping followed by text,
	// a close frame, and headers claiming oversized/truncated payloads.
	f.Add([]byte{0x81, 0x02, 'h', 'i'})
	f.Add([]byte{0x81, 0x82, 1, 2, 3, 4, 'h' ^ 1, 'i' ^ 2})
	f.Add([]byte{0x89, 0x00, 0x81, 0x01, 'x'})
	f.Add([]byte{0x88, 0x00})
	f.Add([]byte{0x81, 0x7F, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{0x81, 0x7E, 0x10, 0x00, 'a'})
	f.Add([]byte{0x01, 0x01, 'a', 0x80, 0x01, 'b'})
	f.Fuzz(func(t *testing.T, data []byte) {
		wire := &fakeConn{r: bytes.NewReader(data)}
		c := &Conn{nc: wire, br: bufio.NewReader(wire)}
		for {
			msg, err := c.ReadText()
			if err != nil {
				if errors.Is(err, ErrClosed) && !c.closed {
					t.Fatal("ErrClosed returned without marking the connection closed")
				}
				return
			}
			// A parsed message can be no larger than the input that framed it.
			if len(msg) > len(data) {
				t.Fatalf("message of %d bytes parsed from %d input bytes", len(msg), len(data))
			}
		}
	})
}
