package wsock

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
)

// captureWrite runs write against a connection of the given role and returns
// the raw bytes it put on the wire.
func captureWrite(t *testing.T, client bool, write func(c *Conn) error) []byte {
	t.Helper()
	a, b := net.Pipe()
	c := &Conn{nc: a, br: bufio.NewReader(a), client: client}
	errc := make(chan error, 1)
	go func() {
		errc <- write(c)
		a.Close()
	}()
	got, _ := io.ReadAll(b) // the close error after a.Close() is expected
	if err := <-errc; err != nil {
		t.Fatalf("write: %v", err)
	}
	return got
}

// TestPreparedFrameBytesIdentical checks the tentpole guarantee: the cached
// frame a server broadcasts via WritePrepared is byte-for-byte what
// per-connection WriteText framing would have produced, across all three
// RFC 6455 payload-length encodings.
func TestPreparedFrameBytesIdentical(t *testing.T) {
	for _, size := range []int{0, 5, 125, 126, 65535, 65536} {
		payload := []byte(strings.Repeat("x", size))
		plain := captureWrite(t, false, func(c *Conn) error { return c.WriteText(payload) })
		prep := NewPreparedText(payload)
		shared := captureWrite(t, false, func(c *Conn) error { return c.WritePrepared(prep) })
		if !bytes.Equal(plain, shared) {
			t.Fatalf("size %d: prepared frame differs from WriteText framing\n got %d bytes\nwant %d bytes",
				size, len(shared), len(plain))
		}
		// The same Prepared written again must reuse the cached frame and
		// still produce identical bytes (it is shared across N clients).
		again := captureWrite(t, false, func(c *Conn) error { return c.WritePrepared(prep) })
		if !bytes.Equal(plain, again) {
			t.Fatalf("size %d: second prepared write differs", size)
		}
	}
}

// TestPreparedClientMasks checks the client fallback: RFC 6455 forbids
// sharing unmasked frames from a client, so WritePrepared on a client
// connection re-frames with a fresh mask and the server side still reads the
// exact payload.
func TestPreparedClientMasks(t *testing.T) {
	a, b := net.Pipe()
	cli := &Conn{nc: a, br: bufio.NewReader(a), client: true}
	srv := &Conn{nc: b, br: bufio.NewReader(b)}
	payload := []byte(`{"type":2,"row":"a-1"}`)
	errc := make(chan error, 1)
	go func() { errc <- cli.WritePrepared(NewPreparedText(payload)) }()
	got, err := srv.ReadText()
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if werr := <-errc; werr != nil {
		t.Fatalf("WritePrepared: %v", werr)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload = %q, want %q", got, payload)
	}
	if !bytes.Equal(NewPreparedText(payload).Payload(), payload) {
		t.Fatalf("Payload accessor mismatch")
	}
	a.Close()
	b.Close()
}
