package wsock

import (
	"bytes"
	"fmt"
	"testing"
)

// TestWritePreparedBatchSingleWrite: a batch of K prepared frames reaches the
// socket in exactly one Write call, in both roles and across header-size
// boundaries.
func TestWritePreparedBatchSingleWrite(t *testing.T) {
	for _, client := range []bool{false, true} {
		for _, k := range []int{1, 2, 7, 64} {
			sender, wire, recv := pair(client)
			frames := make([]*PreparedFrame, k)
			for i := range frames {
				frames[i] = NewPreparedText([]byte(fmt.Sprintf(`{"seq":%d,"pad":%q}`, i, bytes.Repeat([]byte("p"), (i*37)%200))))
			}
			if err := sender.WritePreparedBatch(frames); err != nil {
				t.Fatalf("client=%v k=%d: %v", client, k, err)
			}
			if wire.writes != 1 {
				t.Errorf("client=%v k=%d: batch used %d writes, want 1", client, k, wire.writes)
			}
			r := recv()
			for i, f := range frames {
				got, err := r.ReadText()
				if err != nil {
					t.Fatalf("client=%v k=%d frame %d: %v", client, k, i, err)
				}
				if !bytes.Equal(got, f.Payload()) {
					t.Fatalf("client=%v k=%d frame %d: payload mismatch", client, k, i)
				}
			}
		}
	}
}

// TestWritePreparedBatchBytesIdentical: the coalesced server-side batch puts
// exactly the bytes of K individual WritePrepared calls on the wire — the
// equivalence the flusher pool relies on (coalescing is a syscall
// optimization, never a framing change). Covers all three RFC 6455
// payload-length encodings in one batch.
func TestWritePreparedBatchBytesIdentical(t *testing.T) {
	frames := []*PreparedFrame{
		NewPreparedText([]byte{}),
		NewPreparedText(bytes.Repeat([]byte("a"), 125)),
		NewPreparedText(bytes.Repeat([]byte("b"), 126)),
		NewPreparedText(bytes.Repeat([]byte("c"), 65536)),
		NewPreparedText([]byte(`{"type":2}`)),
	}
	var individual []byte
	for _, f := range frames {
		individual = append(individual, captureWrite(t, false, func(c *Conn) error {
			return c.WritePrepared(f)
		})...)
	}
	batched := captureWrite(t, false, func(c *Conn) error {
		return c.WritePreparedBatch(frames)
	})
	if !bytes.Equal(individual, batched) {
		t.Fatalf("batched bytes differ from %d individual prepared writes\n got %d bytes\nwant %d bytes",
			len(frames), len(batched), len(individual))
	}
}

// TestWritePreparedBatchEmpty: an empty batch touches neither the lock state
// nor the socket.
func TestWritePreparedBatchEmpty(t *testing.T) {
	sender, wire, _ := pair(false)
	if err := sender.WritePreparedBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if wire.writes != 0 {
		t.Fatalf("empty batch wrote %d times, want 0", wire.writes)
	}
}

// TestWritePreparedBatchClosed: batches after Close fail with ErrClosed.
func TestWritePreparedBatchClosed(t *testing.T) {
	sender, _, _ := pair(false)
	sender.Close()
	err := sender.WritePreparedBatch([]*PreparedFrame{NewPreparedText([]byte("x"))})
	if err != ErrClosed {
		t.Fatalf("batch after close: err = %v, want ErrClosed", err)
	}
}
