package wsock

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func benchConn(b *testing.B) *Conn {
	b.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer c.Close()
		for {
			msg, err := c.ReadText()
			if err != nil {
				return
			}
			if err := c.WriteText(msg); err != nil {
				return
			}
		}
	}))
	b.Cleanup(srv.Close)
	c, err := Dial("ws" + strings.TrimPrefix(srv.URL, "http"))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkEchoRoundTrip measures a full masked text frame round trip over
// loopback TCP — the per-message cost of the sync layer's wire.
func BenchmarkEchoRoundTrip(b *testing.B) {
	c := benchConn(b)
	msg := []byte(`{"type":2,"row":"a-1","newRow":"a-2","vec":["x",null],"col":0,"val":"x"}`)
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteText(msg); err != nil {
			b.Fatal(err)
		}
		if _, err := c.ReadText(); err != nil {
			b.Fatal(err)
		}
	}
}
