package wsock

import (
	"runtime"
	"sync/atomic"

	"crowdfill/internal/metrics"
)

// Stats is the wire-level instrumentation for a set of connections: frame
// and byte counts each way, lease reads, read-buffer growth (the pooled
// buffers' miss counter — hit rate is frames minus grows over frames), and
// mask-pool refills. Frame and byte counters are sharded so hundreds of
// concurrent reader/flusher goroutines never contend on one cache line; each
// connection gets a stable shard index at SetStats time.
//
// All count paths are nil-receiver no-ops and transitively allocation-free,
// so the prepared-frame hot paths may call them unconditionally.
type Stats struct {
	FramesIn    *metrics.ShardedCounter
	FramesOut   *metrics.ShardedCounter
	BytesIn     *metrics.ShardedCounter
	BytesOut    *metrics.ShardedCounter
	LeaseReads  *metrics.ShardedCounter
	BufGrows    *metrics.Counter
	MaskRefills *metrics.Counter
}

// NewStats registers the wire metrics in r (get-or-create, so multiple
// servers in one process share the series) and returns the stats handle.
func NewStats(r *metrics.Registry) *Stats {
	shards := runtime.GOMAXPROCS(0)
	return &Stats{
		FramesIn:    r.ShardedCounter("crowdfill_ws_frames_in_total", "WebSocket frames read", shards),
		FramesOut:   r.ShardedCounter("crowdfill_ws_frames_out_total", "WebSocket frames written", shards),
		BytesIn:     r.ShardedCounter("crowdfill_ws_bytes_in_total", "WebSocket bytes read (frames incl. headers)", shards),
		BytesOut:    r.ShardedCounter("crowdfill_ws_bytes_out_total", "WebSocket bytes written (frames incl. headers)", shards),
		LeaseReads:  r.ShardedCounter("crowdfill_ws_lease_reads_total", "zero-copy text-message lease reads", shards),
		BufGrows:    r.Counter("crowdfill_ws_buf_grows_total", "read-buffer growth events (pooled-buffer misses)"),
		MaskRefills: r.Counter("crowdfill_ws_mask_refills_total", "client mask-pool refills (one syscall per refill)"),
	}
}

// statsShardSeq hands out one shard index per instrumented connection.
var statsShardSeq atomic.Uint32

// SetStats attaches wire instrumentation to the connection and assigns it a
// stable shard index. Call once, before the connection carries traffic; nil
// detaches.
func (c *Conn) SetStats(s *Stats) {
	c.stats = s
	c.statShard = statsShardSeq.Add(1)
}

// countRead records one inbound frame of the given total wire size.
//
//lint:hotpath
func (c *Conn) countRead(wireBytes int) {
	s := c.stats
	if s == nil {
		return
	}
	s.FramesIn.Inc(c.statShard)
	s.BytesIn.Add(c.statShard, uint64(wireBytes))
}

// countWrite records frames outbound frames totalling wireBytes on the wire.
//
//lint:hotpath
func (c *Conn) countWrite(frames, wireBytes int) {
	s := c.stats
	if s == nil {
		return
	}
	s.FramesOut.Add(c.statShard, uint64(frames))
	s.BytesOut.Add(c.statShard, uint64(wireBytes))
}

// countLease records one lease read.
//
//lint:hotpath
func (c *Conn) countLease() {
	if s := c.stats; s != nil {
		s.LeaseReads.Inc(c.statShard)
	}
}

// countBufGrow records a read-buffer growth (pooled-buffer miss).
func (c *Conn) countBufGrow() {
	if s := c.stats; s != nil {
		s.BufGrows.Inc()
	}
}

// countMaskRefill records a mask-pool refill.
func (c *Conn) countMaskRefill() {
	if s := c.stats; s != nil {
		s.MaskRefills.Inc()
	}
}
