package server

import (
	"errors"
	"runtime"
	gosync "sync"
	"testing"
	"time"

	"crowdfill/internal/constraint"
	"crowdfill/internal/model"
	"crowdfill/internal/sync"
	"crowdfill/internal/transport"
)

// recConn is a fake transport.Conn for pool tests: it records every batched
// send (as the prepared pointers delivered), blocks Recv until closed, and
// can gate or fail sends to stall a flusher deterministically.
type recConn struct {
	mu       gosync.Mutex
	batches  [][]*sync.Prepared
	sends    int           // SendPreparedBatch call count
	gate     chan struct{} // when non-nil, sends block until it closes
	failSend bool
	done     chan struct{}
	once     gosync.Once
}

func newRecConn() *recConn { return &recConn{done: make(chan struct{})} }

func (c *recConn) Send(m sync.Message) error {
	return c.SendPreparedBatch([]*sync.Prepared{sync.NewPrepared(m)})
}
func (c *recConn) SendPrepared(p *sync.Prepared) error {
	return c.SendPreparedBatch([]*sync.Prepared{p})
}

func (c *recConn) SendPreparedBatch(ps []*sync.Prepared) error {
	c.mu.Lock()
	gate, fail := c.gate, c.failSend
	c.sends++
	c.mu.Unlock()
	if fail {
		return errors.New("recConn: send failed")
	}
	if gate != nil {
		select {
		case <-gate:
		case <-c.done:
			return errors.New("recConn: closed mid-send")
		}
	}
	select {
	case <-c.done:
		return errors.New("recConn: closed")
	default:
	}
	c.mu.Lock()
	batch := make([]*sync.Prepared, len(ps))
	copy(batch, ps)
	c.batches = append(c.batches, batch)
	c.mu.Unlock()
	return nil
}

func (c *recConn) SetWriteDeadline(time.Time) error { return nil }
func (c *recConn) SetReadDeadline(time.Time) error  { return nil }

func (c *recConn) Recv() (sync.Message, error) {
	<-c.done
	return sync.Message{}, errors.New("recConn: closed")
}

func (c *recConn) RecvBatch(dst []sync.Message) (int, error) {
	_, err := c.Recv()
	return 0, err
}

func (c *recConn) Close() error {
	c.once.Do(func() { close(c.done) })
	return nil
}

func (c *recConn) closed() bool {
	select {
	case <-c.done:
		return true
	default:
		return false
	}
}

func (c *recConn) snapshot() [][]*sync.Prepared {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([][]*sync.Prepared, len(c.batches))
	copy(out, c.batches)
	return out
}

func prepSeq(seq int64) *sync.Prepared {
	return sync.NewPrepared(sync.Message{Type: sync.MsgUpvote, Seq: seq})
}

// TestFlusherCoalescesBurst: a K-record publish burst to one parked
// connection arrives as exactly one SendPreparedBatch call carrying the K
// prepared messages in log order, with records excluded for this client
// filtered out. This is the acceptance-criterion coalescing guarantee
// (byte-level frame identity of a batch vs K individual sends is proven in
// wsock's TestWritePreparedBatchBytesIdentical).
func TestFlusherCoalescesBurst(t *testing.T) {
	l := newBcastLog(64, nil, nil)
	defer l.close()
	rc := newRecConn()
	fc := l.register(rc, "self", nil, nil)
	l.enqueue(fc)

	// The empty first flush parks the connection.
	waitFor(t, func() bool { _, parked := l.poolStats(); return parked == 1 })

	const k = 5
	recs := make([]bcastRecord, 0, k+1)
	for i := 0; i < k; i++ {
		recs = append(recs, bcastRecord{prep: prepSeq(int64(i))})
	}
	recs = append(recs, bcastRecord{prep: prepSeq(999), exclude: "self"})
	l.publish(recs...)

	waitFor(t, func() bool { return len(rc.snapshot()) == 1 })
	got := rc.snapshot()[0]
	if len(got) != k {
		t.Fatalf("burst delivered as batch of %d, want %d (exclude filtered)", len(got), k)
	}
	for i, p := range got {
		if p.Message().Seq != int64(i) {
			t.Fatalf("batch[%d].Seq = %d, want %d", i, p.Message().Seq, i)
		}
	}
	rc.mu.Lock()
	sends := rc.sends
	rc.mu.Unlock()
	if sends != 1 {
		t.Fatalf("burst used %d sends, want 1 coalesced send", sends)
	}
}

// TestFlusherPoolOrdering: per-connection record order is preserved across
// many flush rounds — the concatenation of delivered batches is exactly the
// publish sequence, no gaps, no duplicates, no reordering.
func TestFlusherPoolOrdering(t *testing.T) {
	l := newBcastLog(4096, nil, nil)
	defer l.close()
	rc := newRecConn()
	fc := l.register(rc, "c1", nil, nil)
	l.enqueue(fc)

	const total = 1000
	seq := int64(0)
	for seq < total {
		burst := 1 + int(seq%7)
		recs := make([]bcastRecord, 0, burst)
		for i := 0; i < burst && seq < total; i++ {
			recs = append(recs, bcastRecord{prep: prepSeq(seq)})
			seq++
		}
		l.publish(recs...)
	}

	waitFor(t, func() bool {
		n := 0
		for _, b := range rc.snapshot() {
			n += len(b)
		}
		return n == total
	})
	want := int64(0)
	for _, b := range rc.snapshot() {
		for _, p := range b {
			if p.Message().Seq != want {
				t.Fatalf("delivery out of order: got Seq %d, want %d", p.Message().Seq, want)
			}
			want++
		}
	}
}

// TestFlusherDetectsLagAndDrops exercises the flusher-side lag check: a
// connection stalled mid-send falls more than a log capacity behind inside
// the publisher's amortized-scan window, so it is the flusher's own
// drainBatch — not the publishing side's evictor — that detects the lag and
// drops the connection (closing the transport so the reader half fails too).
func TestFlusherDetectsLagAndDrops(t *testing.T) {
	l := newBcastLog(8, nil, nil) // first publisher lag scan at head 8, next at 13
	defer l.close()
	rc := newRecConn()
	gate := make(chan struct{})
	rc.mu.Lock()
	rc.gate = gate
	rc.mu.Unlock()

	fc := l.register(rc, "c1", nil, nil)
	l.enqueue(fc)
	waitFor(t, func() bool { _, parked := l.poolStats(); return parked == 1 })

	// One record: the flusher claims the connection, drains to pos 1, and
	// blocks in the gated send.
	l.publish(bcastRecord{prep: prepSeq(0)})
	waitFor(t, func() bool {
		rc.mu.Lock()
		defer rc.mu.Unlock()
		return rc.sends == 1
	})

	// Advance the head to 10: at the head-8 scan the cursor lags by only 7
	// (≤ capacity, not evicted) and the next scan is at 13, so head 10 has
	// the cursor 9 behind with no publisher eviction possible — only the
	// flusher can notice.
	for i := 1; i < 10; i++ {
		l.publish(bcastRecord{prep: prepSeq(int64(i))})
	}
	if fc.cur.lag() != 9 {
		t.Fatalf("setup: cursor lag = %d, want 9", fc.cur.lag())
	}
	close(gate)

	waitFor(t, func() bool { return rc.closed() })
	waitFor(t, func() bool { conns, _ := l.poolStats(); return conns == 0 })
	if !fc.cur.lagged {
		t.Fatalf("cursor not marked lagged")
	}
}

// TestFlusherSendErrorTearsDownBothHalves: a send failure detected by the
// flusher closes the transport, which must fail the connection's reader loop
// so serve() unregisters the client — both halves tear down even though the
// client never sent or received another byte.
func TestFlusherSendErrorTearsDownBothHalves(t *testing.T) {
	s := kvSchema(t)
	core, err := New(Config{
		Schema:   s,
		Score:    model.MajorityShortcut(3),
		Template: constraint.Cardinality(s, 1),
		Budget:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNetServer(core, t.Logf)
	defer ns.Shutdown()

	rc := newRecConn()
	rc.failSend = true // the very first flush (join snapshot) fails
	go ns.ServeConn(rc, "w-broken")

	// The write half drops first (flusher closes the transport)...
	waitFor(t, func() bool { return rc.closed() })
	// ...and the reader half follows: serve's Recv fails, the client is
	// unregistered, and the pool forgets the connection.
	waitFor(t, func() bool {
		n := 0
		ns.WithCore(func(c *Core) { n = c.Clients() })
		return n == 0
	})
	waitFor(t, func() bool { conns, _ := ns.log.poolStats(); return conns == 0 })
}

// TestShutdownNoGoroutineLeak: Shutdown with a mix of live, parked, and
// mid-flush connections reaps every server-side goroutine — the flusher
// pool, the dispatcher, and all reader loops return to baseline.
func TestShutdownNoGoroutineLeak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := kvSchema(t)
	core, err := New(Config{
		Schema:   s,
		Score:    model.MajorityShortcut(3),
		Template: constraint.Cardinality(s, 1),
		Budget:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ns := NewNetServer(core, t.Logf)

	// Three live pipe connections whose client halves drain (they will park
	// between publishes), plus one connection wedged mid-flush behind a gate.
	var clientWG gosync.WaitGroup
	for i := 0; i < 3; i++ {
		srv, cli := transport.Pipe(64)
		go ns.ServeConn(srv, "w-live")
		clientWG.Add(1)
		go func() {
			defer clientWG.Done()
			for {
				if _, err := cli.Recv(); err != nil {
					return
				}
			}
		}()
	}
	stuck := newRecConn()
	gate := make(chan struct{})
	stuck.mu.Lock()
	stuck.gate = gate
	stuck.mu.Unlock()
	go ns.ServeConn(stuck, "w-stuck")

	// Wait for all four to register; the stuck one is mid-flush on its join
	// snapshot, the others have flushed theirs and parked.
	waitFor(t, func() bool {
		n := 0
		ns.WithCore(func(c *Core) { n = c.Clients() })
		return n == 4
	})
	waitFor(t, func() bool { _, parked := ns.log.poolStats(); return parked >= 3 })

	ns.Shutdown()
	clientWG.Wait()
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline })
	close(gate) // cleanliness; the flusher already aborted via conn close
}
