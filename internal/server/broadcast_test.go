package server

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"crowdfill/internal/client"
	"crowdfill/internal/constraint"
	"crowdfill/internal/model"
	"crowdfill/internal/pay"
	"crowdfill/internal/simclock"
	"crowdfill/internal/sync"
)

// TestLogDeliveryMatchesDirectOutbound is the delivery-equivalence check
// between the two transport planes: the materialized per-recipient Outbound
// expansion (Handle — the executable spec the simulation harness uses) and
// the sequenced broadcast log with per-connection cursors (HandleBroadcast +
// publish — what the network server runs). Two identical cores consume the
// same randomized op mix, one through each plane, and every client must
// receive a byte-identical payload sequence, including clients that join
// mid-stream.
func TestLogDeliveryMatchesDirectOutbound(t *testing.T) {
	s := kvSchema(t)
	mkCore := func() *Core {
		core, err := New(Config{
			Schema:   s,
			Score:    model.MajorityShortcut(3),
			Template: constraint.Cardinality(s, 3),
			Budget:   10,
			Scheme:   pay.DualWeighted,
			Clock:    simclock.NewSim(0),
		})
		if err != nil {
			t.Fatal(err)
		}
		return core
	}
	coreA, coreB := mkCore(), mkCore()
	logB := newBcastLog(defaultLogCapacity, nil, nil)
	defer logB.close()

	payload := func(p *sync.Prepared) []byte {
		t.Helper()
		b, err := p.Payload()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	outBytes := func(o Outbound) []byte {
		t.Helper()
		if o.Prepared != nil {
			return payload(o.Prepared)
		}
		b, err := sync.EncodeMessage(o.Msg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	seqA := make(map[string][][]byte)
	seqB := make(map[string][][]byte)
	cursors := make(map[string]*logCursor)
	mirrors := make(map[string]*client.Client)
	var active []string

	drainB := func() {
		t.Helper()
		for _, id := range active {
			cur := cursors[id]
			for {
				rec, ok, err := cur.tryNext()
				if err != nil {
					t.Fatalf("cursor %s: %v", id, err)
				}
				if !ok {
					break
				}
				if rec.exclude == id {
					continue
				}
				seqB[id] = append(seqB[id], payload(rec.prep))
			}
		}
	}

	join := func(id string) {
		t.Helper()
		worker := "w-" + id
		mc, err := client.New(client.Config{ID: id, Worker: worker, Schema: s})
		if err != nil {
			t.Fatal(err)
		}
		mirrors[id] = mc
		outA := coreA.AddClient(id, worker)
		for _, o := range outA {
			seqA[o.To] = append(seqA[o.To], outBytes(o))
			if c, ok := mirrors[o.To]; ok {
				if err := c.HandleServer(o.Msg); err != nil {
					t.Fatalf("mirror %s: %v", o.To, err)
				}
			}
		}
		// Join point pinned in the sequence exactly like NetServer.serve:
		// AddClient and cursor creation are one atomic step, so the private
		// snapshot covers everything before the cursor and nothing after.
		outB := coreB.AddClient(id, worker)
		cursors[id] = logB.newCursor(nil)
		for _, o := range outB {
			seqB[id] = append(seqB[id], outBytes(o))
		}
		active = append(active, id)
	}

	// A mirror-driven random op: fills, votes, and undos, valid against the
	// mirror's replica (which tracks core A exactly).
	rng := rand.New(rand.NewSource(42))
	vals := []string{"ada", "bob", "cyd", "dee"}
	genOp := func(c *client.Client) []sync.Message {
		rows := c.Rows(nil)
		if len(rows) == 0 {
			return nil
		}
		row := rows[rng.Intn(len(rows))]
		switch rng.Intn(5) {
		case 0, 1: // fill some empty cell
			for ci := range row.Vec {
				if !row.Vec[ci].Set {
					msgs, err := c.Fill(row.ID, ci, vals[rng.Intn(len(vals))])
					if err != nil {
						return nil
					}
					return msgs
				}
			}
		case 2:
			m, err := c.Upvote(row.ID)
			if err != nil {
				return nil
			}
			return []sync.Message{m}
		case 3:
			m, err := c.Downvote(row.ID)
			if err != nil {
				return nil
			}
			return []sync.Message{m}
		case 4:
			m, err := c.UndoVote(row.Vec)
			if err != nil {
				return nil
			}
			return []sync.Message{m}
		}
		return nil
	}

	join("c1")
	join("c2")
	for step := 0; step < 400 && !coreA.Done(); step++ {
		if step == 60 {
			join("c3")
		}
		if step == 140 {
			join("c4")
		}
		id := active[rng.Intn(len(active))]
		for _, m := range genOp(mirrors[id]) {
			outA, errA := coreA.Handle(id, m)
			bcasts, errB := coreB.HandleBroadcast(id, m)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("handle divergence: %v vs %v", errA, errB)
			}
			if errA != nil {
				continue
			}
			for _, o := range outA {
				seqA[o.To] = append(seqA[o.To], outBytes(o))
				if c, ok := mirrors[o.To]; ok {
					if err := c.HandleServer(o.Msg); err != nil {
						t.Fatalf("mirror %s: %v", o.To, err)
					}
				}
			}
			recs := make([]bcastRecord, len(bcasts))
			for i, b := range bcasts {
				recs[i] = bcastRecord{prep: b.Prepared, exclude: b.Exclude}
			}
			logB.publish(recs...)
			drainB()
		}
	}

	if coreA.Done() != coreB.Done() {
		t.Fatalf("completion divergence: %v vs %v", coreA.Done(), coreB.Done())
	}
	for _, id := range active {
		a, b := seqA[id], seqB[id]
		if len(a) == 0 {
			t.Fatalf("client %s saw no traffic; op mix too timid", id)
		}
		if len(a) != len(b) {
			t.Fatalf("client %s: %d messages via Outbound, %d via log", id, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("client %s message %d differs:\n%s\n%s", id, i, a[i], b[i])
			}
		}
	}
}

// TestJoinStormSharesSnapshotEncoding: between table mutations, every joiner
// receives the same epoch-cached Prepared snapshot (one TakeSnapshot + one
// JSON encode for the whole storm), each snapshot loads into a replica that
// matches the master exactly, and a mutation invalidates the cache.
func TestJoinStormSharesSnapshotEncoding(t *testing.T) {
	core, err := New(cardinalityConfig(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	s := core.Master().Schema()
	master := core.Master().SnapshotText()

	var shared *sync.Prepared
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("c%02d", i)
		out := core.AddClient(id, "w-"+id)
		snap := out[0]
		if snap.Msg.Type != sync.MsgSnapshot || snap.Prepared == nil {
			t.Fatalf("first join message = %+v", snap.Msg.Type)
		}
		if i == 0 {
			shared = snap.Prepared
		} else if snap.Prepared != shared {
			t.Fatalf("joiner %d re-encoded the snapshot during a join storm", i)
		}
		mc, err := client.New(client.Config{ID: id, Worker: "w-" + id, Schema: s})
		if err != nil {
			t.Fatal(err)
		}
		if err := mc.HandleServer(snap.Msg); err != nil {
			t.Fatal(err)
		}
		if got := mc.Replica().SnapshotText(); got != master {
			t.Fatalf("joiner %d snapshot does not match master:\n%s\n%s", i, got, master)
		}
	}

	// A table mutation bumps the replica epoch; the next joiner gets a fresh
	// snapshot reflecting it.
	mc := mirrorOf(t, core, "c00", "w-c00")
	var msgs []sync.Message
	for _, row := range mc.Rows(nil) {
		if !row.Vec[0].Set {
			var err error
			msgs, err = mc.Fill(row.ID, 0, "x")
			if err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	for _, m := range msgs {
		if _, err := core.Handle("c00", m); err != nil {
			t.Fatal(err)
		}
	}
	out := core.AddClient("late", "w-late")
	if out[0].Prepared == shared {
		t.Fatal("snapshot cache not invalidated by a table mutation")
	}
	if got := core.Master().SnapshotText(); got == master {
		t.Fatal("mutation did not change the master (test is vacuous)")
	}
}

// mirrorOf builds a client synced to the core's current state via AddClient's
// own snapshot (registering id as a connected client in the process).
func mirrorOf(t *testing.T, core *Core, id, worker string) *client.Client {
	t.Helper()
	mc, err := client.New(client.Config{ID: id, Worker: worker, Schema: core.Master().Schema()})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range core.AddClient(id, worker) {
		if err := mc.HandleServer(o.Msg); err != nil {
			t.Fatal(err)
		}
	}
	return mc
}
